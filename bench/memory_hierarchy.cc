/**
 * @file
 * Reproduces the Section 3.6/4.2 memory-hierarchy results: the 13x
 * SRAM:LPDDR bandwidth gap, the batch-size balance between LLS fit
 * and GEMM intensity, and the decoupled weight-broadcast kernel that
 * cuts the 512 x 26592 x 2048 merge FC latency 45% while exceeding
 * 95% of DRAM bandwidth.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/device.h"
#include "chip/kernel_cost_model.h"

using namespace mtia;

int
main()
{
    bench::banner("Sections 3.6 & 4.2 — the SRAM + LPDDR hierarchy",
                  "Bandwidth cliff, batch-size balance, and the "
                  "weight-broadcast kernel.");

    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);

    bench::section("bandwidth hierarchy at 1.35 GHz");
    std::printf("  local memory (aggregate): %7.2f TB/s\n",
                km.placementBandwidth(Placement::LocalMemory, true) /
                    1e12);
    std::printf("  shared SRAM:              %7.2f TB/s\n",
                dev.sramBandwidth() / 1e12);
    std::printf("  LPDDR5 (ECC, streamed):   %7.2f TB/s\n",
                km.placementBandwidth(Placement::Dram, true) / 1e12);
    bench::row("SRAM : LPDDR ratio", "13x",
               bench::fmt("%.1fx",
                          dev.sramBandwidth() /
                              dev.dram().effectiveReadBandwidth()));

    bench::section("batch-size balance (FC 4096 x 4096 weights)");
    std::printf("  %-8s %14s %14s %12s\n", "batch", "act bytes",
                "kernel time", "eff vs peak");
    for (std::int64_t batch : {64, 256, 1024, 4096, 16384}) {
        const FcShape s{batch, 4096, 4096};
        FcOptions opt;
        opt.weights = Placement::Dram; // weights stream while acts pin
        const KernelTime t = km.fc(s, opt);
        const Tick ideal = fromSeconds(
            s.flops() / dev.peakGemmFlops(DType::FP16));
        std::printf("  %-8lld %11.1f MB %11.0f us %11.1f%%\n",
                    static_cast<long long>(batch),
                    static_cast<double>(
                        s.activationBytes(DType::FP16)) /
                        (1 << 20),
                    toMicros(t.total),
                    t.efficiencyVs(ideal) * 100.0);
    }

    bench::section("decoupled weight broadcast: 512 x 26592 x 2048");
    const FcShape big{512, 26592, 2048};
    FcOptions opt;
    opt.weights = Placement::Dram;
    opt.coordinated_loading = true;
    const KernelTime coord = km.fc(big, opt);

    Device plain(ChipConfig::mtia2i());
    plain.noc().setBroadcastReads(false);
    KernelCostModel km_plain(plain);
    opt.coordinated_loading = false;
    const KernelTime uncoord = km_plain.fc(big, opt);

    const double dram_frac =
        static_cast<double>(big.weightBytes(DType::FP16)) /
        toSeconds(coord.total) / dev.dram().effectiveReadBandwidth();

    bench::row("weight tensor size", "109 MB",
               bench::fmt("%.0f MB",
                          static_cast<double>(
                              big.weightBytes(DType::FP16)) /
                              (1 << 20)));
    bench::row("latency improvement", "45%",
               bench::fmt("%.0f%%",
                          (1.0 - static_cast<double>(coord.total) /
                               uncoord.total) *
                              100.0));
    bench::row("DRAM bandwidth achieved", "> 95%",
               bench::fmt("%.1f%%", dram_frac * 100.0));

    bench::Report report("memory_hierarchy");
    report.metric("sram_to_lpddr_bandwidth_ratio",
                  dev.sramBandwidth() /
                      dev.dram().effectiveReadBandwidth(),
                  11.0, 15.0, "x");
    report.metric("broadcast_latency_improvement_pct",
                  (1.0 - static_cast<double>(coord.total) /
                       static_cast<double>(uncoord.total)) *
                      100.0,
                  40.0, 50.0, "%");
    report.metric("broadcast_dram_bandwidth_pct", dram_frac * 100.0,
                  95.0, 100.0, "%");
    return 0;
}
