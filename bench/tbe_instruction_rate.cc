/**
 * @file
 * Reproduces the Section 3.3 sparse-operator findings: indexed
 * DMA_IN, unaligned-address support, and 128-row SIMD accumulation
 * unblock the TBE instruction path.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/device.h"
#include "chip/kernel_cost_model.h"
#include "pe/command_processor.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 3.3 — TBE instruction-issue path",
                  "Instruction counts and kernel times for embedding "
                  "pooling, new ISA vs MTIA 1-era ISA.");

    CommandProcessor modern{IsaFeatures{}};
    CommandProcessor legacy{IsaFeatures::mtia1()};

    bench::section("custom instructions per 100k embedding rows");
    const std::uint64_t rows = 100000;
    std::printf("  new ISA (indexed DMA_IN + 128-row accum): %llu\n",
                static_cast<unsigned long long>(
                    modern.tbeInstructions(rows)));
    std::printf("  old ISA (scalar addresses + 32-row accum): %llu\n",
                static_cast<unsigned long long>(
                    legacy.tbeInstructions(rows)));

    Device dev_new(ChipConfig::mtia2i());
    ChipConfig legacy_cfg = ChipConfig::mtia2i();
    legacy_cfg.isa = IsaFeatures::mtia1();
    Device dev_old(legacy_cfg);
    KernelCostModel km_new(dev_new);
    KernelCostModel km_old(dev_old);

    bench::section("TBE kernel time vs SRAM hit rate");
    const TbeShape shape{.tables = 64,
                         .batch = 512,
                         .pooling = 40,
                         .dim = 64,
                         .dtype = DType::FP16};
    std::printf("  %-10s %14s %20s %14s\n", "hit rate", "new ISA",
                "new bottleneck", "old ISA");
    for (double hit : {0.0, 0.4, 0.6, 0.9, 0.95}) {
        const KernelTime a = km_new.tbe(shape, {.sram_hit_rate = hit});
        const KernelTime b = km_old.tbe(shape, {.sram_hit_rate = hit});
        std::printf("  %-10.2f %12.0fus %20s %12.0fus\n", hit,
                    toMicros(a.total), a.bottleneck.c_str(),
                    toMicros(b.total));
    }

    bench::section("paper vs measured");
    bench::row("instruction reduction per pooled row",
               "DMA address computation folded + 4x fewer accums",
               bench::fmt("%.1fx fewer instructions",
                          static_cast<double>(
                              legacy.tbeInstructions(rows)) /
                              modern.tbeInstructions(rows)));
    bench::row("cached TBE without new instructions",
               "instruction-bound", "reproduced at hit rate >= 0.9");

    bench::Report report("tbe_instruction_rate");
    report.metric("new_isa_instructions_per_100k_rows",
                  static_cast<double>(modern.tbeInstructions(rows)));
    report.metric("old_isa_instructions_per_100k_rows",
                  static_cast<double>(legacy.tbeInstructions(rows)));
    report.metric("instruction_reduction_factor",
                  static_cast<double>(legacy.tbeInstructions(rows)) /
                      static_cast<double>(modern.tbeInstructions(rows)),
                  3.0, 8.0, "x");
    return 0;
}
