#ifndef MTIA_BENCH_BENCH_REPORT_H_
#define MTIA_BENCH_BENCH_REPORT_H_

/**
 * @file
 * Machine-readable bench reports. Every bench binary owns one Report
 * and records the same key numbers it prints as human-readable rows;
 * on destruction (or an explicit write()) the report lands as
 * BENCH_<name>.json in the working directory — or under
 * $MTIA_BENCH_REPORT_DIR when set — so CI can archive it and later
 * PRs can diff the perf trajectory run-over-run.
 *
 * Schema (mtia-bench-report-v1):
 *   {
 *     "schema": "mtia-bench-report-v1",
 *     "bench": "<name>",
 *     "metrics": [
 *       {"name": "...", "measured": 44.0, "unit": "%",
 *        "paper_lo": 40.0, "paper_hi": 48.0, "within_band": true},
 *       ...
 *     ],
 *     "wall_clock_speedup": {"threads": 8, "speedup": 3.4}, // optional
 *     "wall_clock_ratios": [                                // optional
 *       {"name": "conversion", "ratio": 4.1}, ...
 *     ],
 *     "surrogate": {                                        // optional
 *       "mae": 0.01, "rank_correlation": 0.98, ...          // ordered
 *     },
 *     "telemetry": { <mtia-metrics-v1 snapshot> }           // optional
 *   }
 *
 * Every value recorded here must be derived from simulated state, so
 * identical builds produce byte-identical reports. The exceptions are
 * "wall_clock_speedup" — a measured serial-vs-parallel harness ratio
 * — and "wall_clock_ratios" — named scalar-vs-vectorized kernel
 * throughput ratios — which by nature vary run to run; determinism
 * comparisons must strip those fields before diffing. The "surrogate"
 * block (learned-cost-model accuracy: MAE, rank correlation, regret,
 * eval counts) is derived from deterministic evaluations and is
 * covered by the byte-identity guarantee. Export failures
 * go through the telemetry error handler (ScopedTelemetryThrow makes
 * them assertable in tests).
 */

#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace mtia::bench {

/** One bench binary's machine-readable result set. */
class Report
{
  public:
    /** @p name must be the bench binary's name, e.g. "fig6_model_sweep". */
    explicit Report(std::string name);

    /** Writes the report if write() has not run yet. */
    ~Report();

    Report(const Report &) = delete;
    Report &operator=(const Report &) = delete;

    /** Record a measured value with no paper reference band. */
    void metric(const std::string &metric_name, double measured,
                const std::string &unit = "");

    /** Record a measured value against the paper's [lo, hi] band. */
    void metric(const std::string &metric_name, double measured,
                double paper_lo, double paper_hi,
                const std::string &unit = "");

    /**
     * Record how much faster the bench's parallel section ran than a
     * single-lane rerun of the same work ( > 1 means parallelism
     * helped). Wall-clock by nature: excluded from byte-identical
     * guarantees, emitted as the top-level "wall_clock_speedup"
     * object.
     */
    void wallClockSpeedup(unsigned threads, double speedup);

    /**
     * Record a named measured throughput ratio (e.g. vectorized vs
     * scalar kernel). Wall-clock by nature: excluded from
     * byte-identical guarantees, emitted in order under the top-level
     * "wall_clock_ratios" array.
     */
    void wallClockRatio(const std::string &ratio_name, double ratio);

    /**
     * Record one field of the surrogate accuracy block (MAE,
     * rank_correlation, regret_pct, surrogate_evals, real_evals,
     * ...). Fields are emitted in recording order under the
     * top-level "surrogate" object; recording the same field twice
     * is a caller bug (checked).
     */
    void surrogate(const std::string &field, double value);

    /**
     * Attach a metric registry whose snapshot is embedded under
     * "telemetry" at write time. The registry must outlive write().
     */
    void attachTelemetry(const telemetry::MetricRegistry *metrics)
    {
        telemetry_ = metrics;
    }

    /** Destination path: $MTIA_BENCH_REPORT_DIR or the working dir. */
    std::string path() const;

    /** Serialized report (exactly the bytes write() emits). */
    std::string json() const;

    /** Write BENCH_<name>.json; idempotent. */
    void write();

  private:
    struct Entry
    {
        std::string name;
        double measured;
        double paper_lo;
        double paper_hi;
        bool has_band;
        std::string unit;
    };

    struct Ratio
    {
        std::string name;
        double ratio;
    };

    std::string name_;
    std::vector<Entry> entries_;
    std::vector<Ratio> ratios_;
    std::vector<Ratio> surrogate_fields_;
    const telemetry::MetricRegistry *telemetry_ = nullptr;
    unsigned speedup_threads_ = 0;
    double speedup_ = 0.0;
    bool has_speedup_ = false;
    bool written_ = false;
};

} // namespace mtia::bench

#endif // MTIA_BENCH_BENCH_REPORT_H_
