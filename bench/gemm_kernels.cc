/**
 * @file
 * Runtime-dispatched blocked GEMM microbenchmark: the cache-tiled,
 * multithreaded kernels in core/simd_gemm against the
 * element-at-a-time DotProductEngine reference, per dispatch tier
 * (scalar / sse2|neon / avx2 / avx512 — whatever this host supports),
 * plus the fused operator layer against its unfused composition:
 *
 *   tier sweep    gemm_kernels::gemm forced onto each supported tier;
 *                 GFLOP/s per tier and bit-equality against
 *                 DotProductEngine::gemm
 *   fused fp32    fusedGemmActivation vs gemm followed by
 *                 SimdEngine::apply (one pass over cache-hot row
 *                 blocks vs two passes over the output)
 *   fused int8    fusedQuantizedGemm vs quantizeDynamic(PerRow) →
 *                 DotProductEngine::gemmInt8 → activation
 *
 * Every path asserts bit-identical results (hard [1, 1] gates in
 * BENCH_gemm_kernels.json); throughput and the fused-vs-unfused and
 * per-tier-vs-scalar speedups are wall-clock by nature and land only
 * under "wall_clock_ratios", where CI applies a warn-only >= 4x gate
 * on avx2_vs_scalar when that tier is present.
 */

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "core/check.h"
#include "core/numerics_stats.h"
#include "core/simd_gemm.h"
#include "ops/gemm_kernels.h"
#include "pe/dpe.h"
#include "pe/simd_engine.h"
#include "sim/random.h"
#include "telemetry/metrics.h"
#include "tensor/quantize.h"

using namespace mtia;

namespace {

constexpr int kReps = 3; // best-of, to damp scheduler noise

/** FNV-1a over a byte range: the determinism checksum for each rep. */
std::uint64_t
fnv(const void *p, std::size_t n)
{
    const auto *b = static_cast<const unsigned char *>(p);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 1099511628211ull;
    }
    return h;
}

struct Timed
{
    double seconds = 0.0;
    std::uint64_t checksum = 0;
};

/** Best wall-clock of kReps identical runs; checksums must agree. */
template <typename Fn, typename Sum>
Timed
bestOf(Fn &&fn, Sum &&sum)
{
    Timed best;
    for (int r = 0; r < kReps; ++r) {
        bench::WallTimer timer;
        fn();
        const double secs = timer.seconds();
        const std::uint64_t cs = sum();
        if (r == 0) {
            best = {secs, cs};
        } else {
            MTIA_CHECK_EQ(cs, best.checksum)
                << ": non-deterministic benchmark repetition";
            best.seconds = std::min(best.seconds, secs);
        }
    }
    return best;
}

std::uint64_t
tensorSum(const Tensor &t)
{
    return fnv(t.raw().data(), t.raw().size());
}

} // namespace

int
main()
{
    bench::banner(
        "Runtime-dispatched GEMM — blocked kernels vs DPE reference",
        "Per-tier GFLOP/s, fused operator layer vs its unfused "
        "composition; bit-identical results, measured wall-clock "
        "ratios.");

    numerics::resetStats();
    telemetry::MetricRegistry metrics;
    bench::Report report("gemm_kernels");

    const std::vector<simd::SimdIsa> tiers = [] {
        std::vector<simd::SimdIsa> t;
        for (const simd::SimdIsa isa :
             {simd::SimdIsa::Scalar, simd::SimdIsa::Sse2,
              simd::SimdIsa::Neon, simd::SimdIsa::Avx2,
              simd::SimdIsa::Avx512}) {
            if (simd::isaSupported(isa))
                t.push_back(isa);
        }
        return t;
    }();
    bench::row("best supported tier", "widest available",
               simd::isaName(simd::detectBestIsa()));

    // ---- tier sweep ----------------------------------------------
    constexpr std::int64_t kM = 384, kN = 384, kK = 384;
    const double flops = 2.0 * static_cast<double>(kM) *
        static_cast<double>(kN) * static_cast<double>(kK);
    Rng rng(31);
    Tensor a(Shape{kM, kK}, DType::FP32);
    Tensor b(Shape{kK, kN}, DType::FP32);
    a.fillGaussian(rng);
    b.fillGaussian(rng);

    const DotProductEngine dpe;
    const Tensor c_ref = dpe.gemm(a, b, DType::FP32);
    const simd::GemmBlocking blk;

    bench::section("tier sweep (" + std::to_string(kM) + " x " +
                   std::to_string(kN) + " x " + std::to_string(kK) +
                   " fp32)");

    double scalar_secs = 0.0;
    for (const simd::SimdIsa isa : tiers) {
        Tensor c;
        const Timed t = bestOf(
            [&] { c = gemm_kernels::gemm(a, b, DType::FP32, isa, blk); },
            [&] { return tensorSum(c); });
        const bool equal = c.raw() == c_ref.raw();
        const std::string tier = simd::isaName(isa);
        const double gflops =
            t.seconds > 0.0 ? flops / t.seconds / 1e9 : 0.0;
        bench::row(tier + " GFLOP/s", "vs DPE reference",
                   bench::fmt("%.2f", gflops) +
                       (equal ? " (bit-identical)"
                              : " (NO — DIVERGED)"));
        report.metric(tier + "_bits_equal", equal ? 1.0 : 0.0, 1.0,
                      1.0);
        report.metric("gflops_" + tier, gflops);
        if (isa == simd::SimdIsa::Scalar)
            scalar_secs = t.seconds;
        else if (scalar_secs > 0.0 && t.seconds > 0.0)
            report.wallClockRatio(tier + "_vs_scalar",
                                  scalar_secs / t.seconds);
    }

    // ---- fused fp32 ----------------------------------------------
    bench::section("fused gemm+activation vs unfused composition");
    const Nonlinearity act = Nonlinearity::Gelu;
    Tensor fused;
    const Timed fused_t = bestOf(
        [&] {
            fused = gemm_kernels::fusedGemmActivation(
                a, b, DType::FP16, act, /*use_lut=*/true);
        },
        [&] { return tensorSum(fused); });
    Tensor unfused;
    const Timed unfused_t = bestOf(
        [&] {
            const Tensor c = gemm_kernels::gemm(a, b, DType::FP16);
            unfused = gemm_kernels::sharedSimdEngine().apply(act, c);
        },
        [&] { return tensorSum(unfused); });
    // The exact-activation flavor, untimed.
    const Tensor fused_exact = gemm_kernels::fusedGemmActivation(
        a, b, DType::FP16, act, /*use_lut=*/false);
    const Tensor unfused_exact = SimdEngine::applyExact(
        act, gemm_kernels::gemm(a, b, DType::FP16));
    const bool fused_equal = fused.raw() == unfused.raw() &&
        fused_exact.raw() == unfused_exact.raw();
    const double fused_ratio = fused_t.seconds > 0.0
        ? unfused_t.seconds / fused_t.seconds
        : 1.0;

    bench::row("unfused (gemm, then apply) ms", "baseline",
               bench::fmt("%.2f", unfused_t.seconds * 1e3));
    bench::row("fused row-block epilogue ms", "> 1x unfused",
               bench::fmt("%.2f", fused_t.seconds * 1e3));
    bench::row("speedup", "-", bench::fmt("%.2fx", fused_ratio));
    bench::row("bit-identical output (lut + exact)", "required",
               fused_equal ? "yes" : "NO — DIVERGED");
    report.metric("fused_activation_bits_equal", fused_equal ? 1.0 : 0.0,
                  1.0, 1.0);
    report.wallClockRatio("fused_vs_unfused", fused_ratio);

    // ---- fused int8 ----------------------------------------------
    bench::section("fused dynamic-int8 gemm vs unfused composition");
    const QuantizedTensor w = quantizeStatic(b);
    Tensor fused_i8;
    const Timed fused_i8_t = bestOf(
        [&] {
            fused_i8 = gemm_kernels::fusedQuantizedGemm(
                a, w, /*has_activation=*/true, Nonlinearity::Relu,
                /*use_lut=*/true);
        },
        [&] { return tensorSum(fused_i8); });
    Tensor unfused_i8;
    const Timed unfused_i8_t = bestOf(
        [&] {
            const QuantizedTensor qa =
                quantizeDynamic(a, QuantGranularity::PerRow);
            unfused_i8 = gemm_kernels::sharedSimdEngine().apply(
                Nonlinearity::Relu, dpe.gemmInt8(qa, w));
        },
        [&] { return tensorSum(unfused_i8); });
    const bool i8_equal = fused_i8.raw() == unfused_i8.raw();
    const double i8_ratio = fused_i8_t.seconds > 0.0
        ? unfused_i8_t.seconds / fused_i8_t.seconds
        : 1.0;

    bench::row("unfused (quantize, gemmInt8, apply) ms", "baseline",
               bench::fmt("%.2f", unfused_i8_t.seconds * 1e3));
    bench::row("fused int8 pipeline ms", "> 1x unfused",
               bench::fmt("%.2f", fused_i8_t.seconds * 1e3));
    bench::row("speedup", "-", bench::fmt("%.2fx", i8_ratio));
    bench::row("bit-identical output", "required",
               i8_equal ? "yes" : "NO — DIVERGED");
    report.metric("fused_int8_bits_equal", i8_equal ? 1.0 : 0.0, 1.0,
                  1.0);
    report.wallClockRatio("fused_int8_vs_unfused", i8_ratio);

    // The numerics.gemm_flops counter accumulated by the blocked-GEMM
    // runs above lands in the report's telemetry snapshot.
    numerics::publishNumericsMetrics(metrics);
    report.attachTelemetry(&metrics);
    return 0;
}
