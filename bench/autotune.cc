/**
 * @file
 * Reproduces the Section 4.1 autotuning results: ANN kernel tuning
 * ~1000x cheaper than exhaustive within 5% of its performance, batch
 * tuning with the LLS-fallback rule, and request coalescing reaching
 * >95% requests per batch.
 */

#include <algorithm>
#include <cstdio>

#include "autotune/batch_tuner.h"
#include "autotune/coalescing_tuner.h"
#include "autotune/kernel_tuner.h"
#include "bench_report.h"
#include "bench_util.h"
#include "core/parallel.h"
#include "models/model_zoo.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 4.1 — the autotuning framework",
                  "Kernel tuning (exhaustive vs ANN), batch sizing, "
                  "and request coalescing.");

    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    KernelTuner tuner(km);

    // --- Kernel tuning.
    std::vector<FcShape> corpus;
    Rng rng(7);
    for (int i = 0; i < 120; ++i) {
        corpus.push_back(FcShape{
            static_cast<std::int64_t>(32u << rng.below(7)),
            static_cast<std::int64_t>(128u << rng.below(7)),
            static_cast<std::int64_t>(128u << rng.below(6))});
    }
    // Database construction is the bench's hot fan-out; time it once
    // pinned to one lane and once at the configured lane count for
    // the wall-clock speedup ratio (both produce the same database).
    double serial_s = 0.0;
    {
        ScopedParallelism one(1);
        bench::WallTimer t;
        (void)tuner.buildDatabase(corpus);
        serial_s = t.seconds();
    }
    bench::WallTimer parallel_timer;
    PerfDatabase db = tuner.buildDatabase(corpus);
    const double parallel_s = parallel_timer.seconds();

    double worst = 1.0;
    double exhaustive_cost = 0.0;
    double ann_cost = 0.0;
    for (int i = 0; i < 100; ++i) {
        const FcShape q{
            static_cast<std::int64_t>(24u << rng.below(7)),
            static_cast<std::int64_t>(96u << rng.below(7)),
            static_cast<std::int64_t>(160u << rng.below(6))};
        const TuneResult ex = tuner.tuneExhaustive(q);
        const TuneResult ann = tuner.tuneApproximate(q, db);
        worst = std::max(worst, static_cast<double>(ann.kernel_time) /
                                    ex.kernel_time);
        exhaustive_cost += static_cast<double>(ex.tuning_cost);
        ann_cost += static_cast<double>(ann.tuning_cost);
    }
    bench::section("FC kernel tuning (120-shape database, 100 queries)");
    bench::row("tuning-time reduction", "up to 1000x",
               bench::fmt("%.0fx", exhaustive_cost / ann_cost));
    bench::row("kernel perf vs exhaustive", "within 5%",
               bench::fmt("worst +%.1f%%", (worst - 1.0) * 100.0));

    // --- Batch tuning.
    bench::section("batch-size tuning (traffic-replay snapshots)");
    BatchSizeTuner batch_tuner(dev);
    auto builder = [](std::int64_t batch) {
        RankingModelParams p;
        p.name = "bt-model";
        p.batch = batch;
        p.tbe = TbeTableSpec{.tables = 48,
                             .rows_per_table = 2 << 20,
                             .dim = 64,
                             .dtype = DType::FP16,
                             .zipf_alpha = 0.9};
        p.dhen_layers = 2;
        p.dhen_width = 512;
        return buildRankingModel(p);
    };
    std::size_t winner = 0;
    const auto snaps = batch_tuner.evaluate(
        builder, {128, 256, 512, 1024, 2048, 4096},
        fromMillis(100.0), winner);
    std::printf("  %-8s %12s %12s %10s %8s\n", "batch", "latency",
                "QPS", "LLS fit", "SLO");
    for (const auto &s : snaps) {
        std::printf("  %-8lld %9.2f ms %12.0f %10s %8s\n",
                    static_cast<long long>(s.batch),
                    s.cost.latencyMs(), s.cost.qps,
                    s.cost.activations_fit_lls ? "yes" : "spill",
                    s.meets_slo ? "ok" : "miss");
    }
    std::printf("  winner: batch %lld\n",
                static_cast<long long>(snaps[winner].batch));

    // --- Coalescing.
    bench::section("request coalescing (4000 QPS trace)");
    Rng trng(11);
    TrafficParams tp;
    tp.qps = 4000.0;
    tp.duration = fromSeconds(5.0);
    tp.candidates_mean = 64;
    const auto trace = generateTrace(trng, tp);
    CoalescingTuner ctuner(fromMillis(10.0));
    const auto candidates = ctuner.sweep(
        trace, 512,
        {fromMillis(0.5), fromMillis(2.0), fromMillis(8.0),
         fromMillis(32.0)},
        {1, 2, 4});
    std::printf("  %-12s %-10s %10s %14s %12s\n", "window", "parallel",
                "fill", "reqs/batch", "mean wait");
    for (const auto &c : candidates) {
        std::printf("  %9.1fms %-10u %9.1f%% %14.1f %9.2f ms\n",
                    toMillis(c.config.window),
                    c.config.parallel_windows,
                    c.stats.mean_fill * 100.0,
                    c.stats.mean_requests_per_batch,
                    toMillis(c.stats.mean_wait));
    }
    bench::row("requests per batch with tuning", "> 95% fill",
               bench::fmt("%.1f%%",
                          candidates.front().stats.mean_fill * 100.0));

    bench::Report report("autotune");
    report.metric("ann_tuning_speedup", exhaustive_cost / ann_cost,
                  "x");
    report.metric("ann_worst_regression_pct", (worst - 1.0) * 100.0,
                  0.0, 5.0, "%");
    report.metric("winning_batch",
                  static_cast<double>(snaps[winner].batch));
    report.metric("coalescing_best_fill_pct",
                  candidates.front().stats.mean_fill * 100.0, 95.0,
                  100.0, "%");
    report.wallClockSpeedup(parallelLanes(),
                            serial_s / std::max(parallel_s, 1e-9));
    return 0;
}
