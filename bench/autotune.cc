/**
 * @file
 * Reproduces the Section 4.1 autotuning results: ANN kernel tuning
 * ~1000x cheaper than exhaustive within 5% of its performance, batch
 * tuning with the LLS-fallback rule, and request coalescing reaching
 * >95% requests per batch — plus the surrogate-guided loop
 * (autotune/surrogate.h) that makes 100-1000x larger candidate grids
 * affordable: the bench prices a reference grid exhaustively, reruns
 * it surrogate-guided, and reports prediction accuracy (MAE, Spearman
 * rank correlation), regret, winner bit-equality, and the measured
 * end-to-end tuning wall-clock speedup.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "autotune/autotune_stats.h"
#include "autotune/batch_tuner.h"
#include "autotune/coalescing_tuner.h"
#include "autotune/kernel_tuner.h"
#include "autotune/surrogate.h"
#include "bench_report.h"
#include "bench_util.h"
#include "core/parallel.h"
#include "models/model_zoo.h"
#include "telemetry/metrics.h"

using namespace mtia;

namespace {

// Fractional ranks with average-rank ties (deterministic: sort order
// breaks value ties by index, equal values share one averaged rank).
std::vector<double>
fractionalRanks(const std::vector<double> &v)
{
    std::vector<std::size_t> order(v.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (v[a] != v[b])
                      return v[a] < v[b];
                  return a < b;
              });
    std::vector<double> rank(v.size(), 0.0);
    std::size_t i = 0;
    while (i < order.size()) {
        std::size_t j = i;
        while (j < order.size() && v[order[j]] == v[order[i]])
            ++j;
        const double avg =
            (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 +
            1.0;
        for (std::size_t k = i; k < j; ++k)
            rank[order[k]] = avg;
        i = j;
    }
    return rank;
}

// Spearman rank correlation: Pearson correlation of the fractional
// ranks. 1.0 means the surrogate orders candidates exactly like the
// real evaluator.
double
spearman(const std::vector<double> &a, const std::vector<double> &b)
{
    const std::vector<double> ra = fractionalRanks(a);
    const std::vector<double> rb = fractionalRanks(b);
    const double n = static_cast<double>(ra.size());
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        ma += ra[i];
        mb += rb[i];
    }
    ma /= n;
    mb /= n;
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        cov += (ra[i] - ma) * (rb[i] - mb);
        va += (ra[i] - ma) * (ra[i] - ma);
        vb += (rb[i] - mb) * (rb[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

// Costs at or above this are the infeasible-variant penalty tier;
// accuracy statistics only make sense over the feasible candidates.
constexpr double kFeasibleCeiling = 1e17;

} // namespace

int
main()
{
    bench::banner("Section 4.1 — the autotuning framework",
                  "Kernel tuning (exhaustive vs ANN vs surrogate), "
                  "batch sizing, and request coalescing.");

    autotune::resetStats();
    telemetry::MetricRegistry metrics;
    bench::Report report("autotune");

    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    KernelTuner tuner(km);

    // --- Kernel tuning.
    std::vector<FcShape> corpus;
    Rng rng(7);
    for (int i = 0; i < 120; ++i) {
        corpus.push_back(FcShape{
            static_cast<std::int64_t>(32u << rng.below(7)),
            static_cast<std::int64_t>(128u << rng.below(7)),
            static_cast<std::int64_t>(128u << rng.below(6))});
    }
    // Database construction is the bench's hot fan-out; time it once
    // pinned to one lane and once at the configured lane count for
    // the wall-clock speedup ratio (both produce the same database).
    double serial_s = 0.0;
    {
        ScopedParallelism one(1);
        bench::WallTimer t;
        (void)tuner.buildDatabase(corpus);
        serial_s = t.seconds();
    }
    bench::WallTimer parallel_timer;
    PerfDatabase db = tuner.buildDatabase(corpus);
    const double parallel_s = parallel_timer.seconds();

    double worst = 1.0;
    double exhaustive_cost = 0.0;
    double ann_cost = 0.0;
    for (int i = 0; i < 100; ++i) {
        const FcShape q{
            static_cast<std::int64_t>(24u << rng.below(7)),
            static_cast<std::int64_t>(96u << rng.below(7)),
            static_cast<std::int64_t>(160u << rng.below(6))};
        const TuneResult ex = tuner.tuneExhaustive(q);
        const TuneResult ann = tuner.tuneApproximate(q, db);
        worst = std::max(worst, static_cast<double>(ann.kernel_time) /
                                    ex.kernel_time);
        exhaustive_cost += static_cast<double>(ex.tuning_cost);
        ann_cost += static_cast<double>(ann.tuning_cost);
    }
    bench::section("FC kernel tuning (120-shape database, 100 queries)");
    bench::row("tuning-time reduction", "up to 1000x",
               bench::fmt("%.0fx", exhaustive_cost / ann_cost));
    bench::row("kernel perf vs exhaustive", "within 5%",
               bench::fmt("worst +%.1f%%", (worst - 1.0) * 100.0));

    // --- Surrogate-guided kernel tuning: the reference-grid gate.
    // The extended 288-variant grid is small enough to price
    // exhaustively once, which gives ground truth for every candidate:
    // the surrogate rerun must land on the bit-identical winner (zero
    // regret), and its full-grid predictions are scored for MAE and
    // rank correlation against the exhaustive costs.
    bench::section(
        "surrogate-guided kernel tuning (288-variant reference grid)");
    const std::vector<FcShape> ref_queries = {
        FcShape{256, 1024, 512}, FcShape{512, 2048, 256},
        FcShape{64, 4096, 1024}, FcShape{768, 768, 384}};
    // The max-based cost model leaves 8-32-way exact cost ties (flags
    // that don't move the bottleneck term are free); recovering the
    // canonical lowest-index tie member bit-exactly needs the verify
    // budget to cover the predicted-best cluster, so size top_k at
    // the cluster width rather than the default 8.
    SurrogateSweepOptions ref_opts;
    ref_opts.top_k = 24;
    bool bit_equal = true;
    double worst_regret_pct = 0.0;
    double worst_mae_pct = 0.0;
    double worst_topk_mae_pct = 0.0;
    double worst_rho = 1.0;
    double grid_ratio = 0.0;
    double eval_reduction = 0.0;
    for (const FcShape &q : ref_queries) {
        KernelSurrogateResult ex;
        {
            ScopedSurrogate off(false);
            ex = tuner.tuneSurrogate(q);
        }
        KernelSurrogateResult sg;
        {
            ScopedSurrogate on(true);
            sg = tuner.tuneSurrogate(q, &db, ref_opts);
        }
        const bool same =
            sg.loop.best_index == ex.loop.best_index &&
            sg.result.kernel_time == ex.result.kernel_time;
        bit_equal = bit_equal && same;
        const double regret_pct =
            (sg.loop.best_cost - ex.loop.best_cost) /
            ex.loop.best_cost * 100.0;
        worst_regret_pct = std::max(worst_regret_pct, regret_pct);
        // Accuracy over the feasible slice of the fully-priced grid.
        // Under MTIA_SURROGATE=0 the "surrogate" run is exhaustive
        // too (no predictions); the gates then degenerate to
        // bit-equality of two identical sweeps.
        double mae_pct = 0.0;
        double rho = 1.0;
        if (sg.loop.used_surrogate) {
            std::vector<double> pred, real;
            double abs_err = 0.0, real_sum = 0.0;
            for (std::size_t i = 0; i < ex.loop.measured.size(); ++i) {
                const double r = ex.loop.measured_cost[i];
                if (r >= kFeasibleCeiling)
                    continue;
                const double p = sg.loop.predicted[ex.loop.measured[i]];
                pred.push_back(p);
                real.push_back(r);
                abs_err += std::abs(p - r);
                real_sum += r;
            }
            if (!real.empty()) {
                mae_pct = abs_err / real_sum * 100.0;
                rho = spearman(pred, real);
            }
            worst_topk_mae_pct = std::max(
                worst_topk_mae_pct,
                sg.loop.mae / ex.loop.best_cost * 100.0);
        }
        worst_mae_pct = std::max(worst_mae_pct, mae_pct);
        worst_rho = std::min(worst_rho, rho);
        grid_ratio = static_cast<double>(sg.grid_size) /
            static_cast<double>(KernelTuner::variantSpace().size());
        eval_reduction = static_cast<double>(sg.grid_size) /
            static_cast<double>(sg.loop.real_evals);
        std::printf("  %5lldx%-5lldx%-5lld winner %s  regret %+.3f%%  "
                    "mae %5.1f%%  rho %.3f  evals %zu/%zu\n",
                    static_cast<long long>(q.m),
                    static_cast<long long>(q.n),
                    static_cast<long long>(q.k),
                    same ? "bit-equal" : "DIVERGED ", regret_pct,
                    mae_pct, rho, sg.loop.real_evals, sg.grid_size);
    }
    bench::row("verified winner vs exhaustive sweep", "bit-identical",
               bit_equal ? "bit-identical" : "DIVERGED");
    bench::row("surrogate regret on reference grid", "0%",
               bench::fmt("%.3f%%", worst_regret_pct));
    bench::row("grid growth vs legacy variant space", "100-1000x grids",
               bench::fmt("%.0fx candidates", grid_ratio));

    // --- Batch tuning.
    bench::section("batch-size tuning (traffic-replay snapshots)");
    BatchSizeTuner batch_tuner(dev);
    auto builder = [](std::int64_t batch) {
        RankingModelParams p;
        p.name = "bt-model";
        p.batch = batch;
        p.tbe = TbeTableSpec{.tables = 48,
                             .rows_per_table = 2 << 20,
                             .dim = 64,
                             .dtype = DType::FP16,
                             .zipf_alpha = 0.9};
        p.dhen_layers = 2;
        p.dhen_width = 512;
        return buildRankingModel(p);
    };
    std::size_t winner = 0;
    const auto snaps = batch_tuner.evaluate(
        builder, {128, 256, 512, 1024, 2048, 4096},
        fromMillis(100.0), winner);
    std::printf("  %-8s %12s %12s %10s %8s\n", "batch", "latency",
                "QPS", "LLS fit", "SLO");
    for (const auto &s : snaps) {
        std::printf("  %-8lld %9.2f ms %12.0f %10s %8s\n",
                    static_cast<long long>(s.batch),
                    s.cost.latencyMs(), s.cost.qps,
                    s.cost.activations_fit_lls ? "yes" : "spill",
                    s.meets_slo ? "ok" : "miss");
    }
    std::printf("  winner: batch %lld\n",
                static_cast<long long>(snaps[winner].batch));

    // Surrogate rerun on a 21x denser batch grid (every multiple of
    // 32) — only the seed + top-k batches pay a model build — checked
    // against an exhaustive sweep of the same grid. The QPS curve is
    // nearly flat at its top, so the seed stride matters more than
    // the seed count here: 16 seeds land the verify cluster on the
    // exact winner.
    std::vector<std::int64_t> dense_batches;
    for (std::int64_t b = 64; b <= 4096; b += 32)
        dense_batches.push_back(b);
    BatchSurrogateResult btex;
    {
        ScopedSurrogate off(false);
        btex = batch_tuner.tuneSurrogate(builder, dense_batches,
                                         fromMillis(100.0));
    }
    SurrogateSweepOptions batch_opts;
    batch_opts.seed_count = 16;
    batch_opts.top_k = 8;
    BatchSurrogateResult bt;
    {
        ScopedSurrogate on(true);
        bt = batch_tuner.tuneSurrogate(builder, dense_batches,
                                       fromMillis(100.0), batch_opts);
    }
    bit_equal = bit_equal && bt.loop.best_index == btex.loop.best_index;
    const double batch_regret_pct =
        (bt.loop.best_cost - btex.loop.best_cost) /
        std::abs(btex.loop.best_cost) * 100.0;
    std::printf("  dense grid: %zu candidates, %zu built, winner batch "
                "%lld (%.2f ms, %.0f QPS) %s exhaustive\n",
                bt.grid_size, bt.loop.real_evals,
                static_cast<long long>(bt.best.batch),
                bt.best.cost.latencyMs(), bt.best.cost.qps,
                bt.loop.best_index == btex.loop.best_index
                    ? "bit-equal to"
                    : "DIVERGED from");

    // --- Coalescing.
    bench::section("request coalescing (4000 QPS trace)");
    Rng trng(11);
    TrafficParams tp;
    tp.qps = 4000.0;
    tp.duration = fromSeconds(5.0);
    tp.candidates_mean = 64;
    const auto trace = generateTrace(trng, tp);
    CoalescingTuner ctuner(fromMillis(10.0));
    const auto candidates = ctuner.sweep(
        trace, 512,
        {fromMillis(0.5), fromMillis(2.0), fromMillis(8.0),
         fromMillis(32.0)},
        {1, 2, 4});
    std::printf("  %-12s %-10s %10s %14s %12s\n", "window", "parallel",
                "fill", "reqs/batch", "mean wait");
    for (const auto &c : candidates) {
        std::printf("  %9.1fms %-10u %9.1f%% %14.1f %9.2f ms\n",
                    toMillis(c.config.window),
                    c.config.parallel_windows,
                    c.stats.mean_fill * 100.0,
                    c.stats.mean_requests_per_batch,
                    toMillis(c.stats.mean_wait));
    }
    bench::row("requests per batch with tuning", "> 95% fill",
               bench::fmt("%.1f%%",
                          candidates.front().stats.mean_fill * 100.0));

    // --- End-to-end tuning wall-clock speedup: a window grid dense
    // enough (120 windows x 3 parallel options) that exhaustive trace
    // replay dominates, timed exhaustively vs surrogate-guided on a
    // shorter trace. Both runs replay the identical deterministic
    // workload; only who pays for which cell differs.
    bench::section("surrogate tuning speedup (480-cell coalescing grid)");
    Rng strng(13);
    TrafficParams stp;
    stp.qps = 4000.0;
    stp.duration = fromSeconds(1.5);
    stp.candidates_mean = 64;
    const auto speed_trace = generateTrace(strng, stp);
    std::vector<Tick> dense_windows;
    for (int i = 1; i <= 160; ++i)
        dense_windows.push_back(fromMillis(0.25 * i));
    CoalescingSurrogateResult cex;
    double exhaustive_s = 0.0;
    {
        ScopedSurrogate off(false);
        bench::WallTimer t;
        cex = ctuner.sweepSurrogate(speed_trace, 512, dense_windows,
                                    {1, 2, 4});
        exhaustive_s = t.seconds();
    }
    CoalescingSurrogateResult csg;
    double surrogate_s = 0.0;
    {
        ScopedSurrogate on(true);
        bench::WallTimer t;
        csg = ctuner.sweepSurrogate(speed_trace, 512, dense_windows,
                                    {1, 2, 4});
        surrogate_s = t.seconds();
    }
    const double tuning_speedup =
        exhaustive_s / std::max(surrogate_s, 1e-9);
    const double coal_regret_pct =
        (csg.loop.best_cost - cex.loop.best_cost) /
        std::abs(cex.loop.best_cost) * 100.0;
    std::printf("  exhaustive: %zu replays   surrogate: %zu replays   "
                "winner %s\n",
                cex.loop.real_evals, csg.loop.real_evals,
                csg.loop.best_index == cex.loop.best_index
                    ? "bit-equal"
                    : (csg.loop.best_cost == cex.loop.best_cost
                           ? "cost-tied"
                           : "DIVERGED"));
    bench::row("tuning wall-clock speedup", ">= 10x",
               bench::fmt("%.1fx", tuning_speedup));
    bench::row("surrogate regret on dense grid", "0%",
               bench::fmt("%.3f%%", coal_regret_pct));

    report.metric("ann_tuning_speedup", exhaustive_cost / ann_cost,
                  "x");
    report.metric("ann_worst_regression_pct", (worst - 1.0) * 100.0,
                  0.0, 5.0, "%");
    report.metric("winning_batch",
                  static_cast<double>(snaps[winner].batch));
    report.metric("coalescing_best_fill_pct",
                  candidates.front().stats.mean_fill * 100.0, 95.0,
                  100.0, "%");
    // Hard surrogate gates (CI asserts within_band): the verified
    // winner must be bit-identical to the exhaustive sweep's on the
    // reference grid, with zero regret; accuracy must clear the MAE
    // and rank-correlation floors.
    report.metric("surrogate_bitequal_winner", bit_equal ? 1.0 : 0.0,
                  1.0, 1.0);
    report.metric("surrogate_regret_pct", worst_regret_pct, 0.0, 0.0,
                  "%");
    report.metric("surrogate_mae_pct", worst_mae_pct, 0.0, 60.0, "%");
    report.metric("surrogate_topk_mae_pct", worst_topk_mae_pct, 0.0,
                  150.0, "%");
    report.metric("surrogate_rank_correlation", worst_rho, 0.75, 1.0);
    report.metric("surrogate_eval_reduction", eval_reduction, "x");
    report.metric("surrogate_dense_batch_winner",
                  static_cast<double>(bt.best.batch));
    report.surrogate("mae_pct", worst_mae_pct);
    report.surrogate("topk_mae_pct", worst_topk_mae_pct);
    report.surrogate("rank_correlation", worst_rho);
    report.surrogate("regret_pct", worst_regret_pct);
    report.surrogate("bit_equal", bit_equal ? 1.0 : 0.0);
    report.surrogate("batch_regret_pct", batch_regret_pct);
    report.surrogate("coalescing_regret_pct", coal_regret_pct);
    report.surrogate("eval_reduction_x", eval_reduction);
    report.surrogate("surrogate_evals",
                     static_cast<double>(autotune::surrogateEvals()));
    report.surrogate("real_evals",
                     static_cast<double>(autotune::realEvals()));
    report.wallClockSpeedup(parallelLanes(),
                            serial_s / std::max(parallel_s, 1e-9));
    report.wallClockRatio("surrogate_tuning_speedup", tuning_speedup);
    autotune::publishAutotuneMetrics(metrics);
    report.attachTelemetry(&metrics);
    return 0;
}
