#ifndef MTIA_BENCH_BENCH_UTIL_H_
#define MTIA_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared formatting helpers for the table/figure reproduction
 * binaries: every bench prints a banner naming the paper artifact it
 * regenerates, then rows of "paper vs measured".
 */

#include <chrono>
#include <cstdio>
#include <string>

namespace mtia::bench {

/**
 * Wall-clock stopwatch for the serial-vs-parallel speedup harness.
 * This is the one sanctioned wall-clock use in the repo: the measured
 * ratio feeds Report::wallClockSpeedup, which is explicitly excluded
 * from byte-identical report guarantees. Simulated results must never
 * depend on it.
 */
class WallTimer
{
  public:
    WallTimer()
        : start_(std::chrono::steady_clock::now()) // sim-lint: allow(wall-clock) — sanctioned speedup stopwatch
    {
    }

    /** Seconds since construction. */
    double
    seconds() const
    {
        const auto now =
            std::chrono::steady_clock::now(); // sim-lint: allow(wall-clock) — sanctioned speedup stopwatch
        return std::chrono::duration<double>(now - start_).count();
    }

  private:
    std::chrono::steady_clock::time_point start_; // sim-lint: allow(wall-clock) — sanctioned speedup stopwatch
};

inline void
banner(const std::string &artifact, const std::string &summary)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", artifact.c_str());
    std::printf("%s\n", summary.c_str());
    std::printf("==============================================================\n");
}

inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** "who wins / by how much" row: paper band vs measured value. */
inline void
row(const std::string &label, const std::string &paper,
    const std::string &measured)
{
    std::printf("  %-46s paper: %-18s measured: %s\n", label.c_str(),
                paper.c_str(), measured.c_str());
}

inline std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace mtia::bench

#endif // MTIA_BENCH_BENCH_UTIL_H_
