#ifndef MTIA_BENCH_BENCH_UTIL_H_
#define MTIA_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared formatting helpers for the table/figure reproduction
 * binaries: every bench prints a banner naming the paper artifact it
 * regenerates, then rows of "paper vs measured".
 */

#include <cstdio>
#include <string>

namespace mtia::bench {

inline void
banner(const std::string &artifact, const std::string &summary)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", artifact.c_str());
    std::printf("%s\n", summary.c_str());
    std::printf("==============================================================\n");
}

inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** "who wins / by how much" row: paper band vs measured value. */
inline void
row(const std::string &label, const std::string &paper,
    const std::string &measured)
{
    std::printf("  %-46s paper: %-18s measured: %s\n", label.c_str(),
                paper.c_str(), measured.c_str());
}

inline std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

} // namespace mtia::bench

#endif // MTIA_BENCH_BENCH_UTIL_H_
