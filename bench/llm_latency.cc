/**
 * @file
 * Reproduces the Section 3.6/8 LLM results: Llama prefill meets the
 * 600 ms time-to-first-token budget, but decode cannot generate a
 * token within 60 ms because every weight streams from LPDDR once per
 * step; 70B doesn't even fit.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/device.h"
#include "models/llm.h"

using namespace mtia;

int
main()
{
    bench::banner("Sections 3.6 & 8 — LLM serving on MTIA 2i",
                  "Prefill vs decode against the 600 ms TTFT and "
                  "60 ms/token budgets (prompt = 2048 tokens).");

    Device dev(ChipConfig::mtia2i());

    std::printf("  %-12s %12s %8s %14s %8s %10s\n", "model",
                "prefill", "TTFT ok", "decode/token", "ok",
                "params fit");
    for (const LlamaConfig &cfg :
         {LlamaConfig::llama2_7b(), LlamaConfig::llama3_8b(),
          LlamaConfig::llama3_70b()}) {
        const bool fits = cfg.paramBytes(DType::FP16) <=
            dev.config().lpddr.capacity;
        const LlmLatency lat = evaluateLlm(dev, cfg, 2048);
        std::printf("  %-12s %9.0f ms %8s %11.1f ms %8s %10s\n",
                    cfg.name.c_str(), toMillis(lat.prefill),
                    lat.meetsTtft() ? "yes" : "NO",
                    toMillis(lat.decode_per_token),
                    lat.meetsDecode() ? "yes" : "NO",
                    fits ? "yes" : "NO");
    }

    bench::section("paper vs measured");
    const LlmLatency l7 = evaluateLlm(dev, LlamaConfig::llama2_7b(),
                                      2048);
    bench::row("Llama2-7B prefill", "meets 600 ms TTFT",
               l7.meetsTtft() ? "meets" : "MISSES");
    bench::row("Llama2-7B decode", "misses 60 ms/token",
               l7.meetsDecode() ? "MEETS (wrong)" : "misses");
    bench::row("root cause", "MHA+FFN LPDDR-bandwidth bound in decode",
               "weight stream = param bytes / 182 GB/s per token");

    bench::Report report("llm_latency");
    report.metric("llama2_7b_prefill_ms", toMillis(l7.prefill), 0.0,
                  600.0, "ms");
    report.metric("llama2_7b_decode_per_token_ms",
                  toMillis(l7.decode_per_token), "ms");
    report.metric("llama2_7b_meets_ttft", l7.meetsTtft() ? 1.0 : 0.0);
    report.metric("llama2_7b_meets_decode",
                  l7.meetsDecode() ? 1.0 : 0.0);
    return 0;
}
