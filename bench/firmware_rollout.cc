/**
 * @file
 * Reproduces the Section 5.5 firmware story: the stress suite catches
 * the Control-Core/NoC/PCIe deadlock on ~1% of test servers, the
 * mitigation (relocating the Control Core's working memory to device
 * SRAM) removes the wait-for cycle, and rollouts run in 18 days
 * standard / ~3 hours emergency / ~1 hour with overrides.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "fleet/firmware.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 5.5 — real-time firmware updates",
                  "Deadlock detection and mitigation plus rollout "
                  "timelines over a 10,000-server fleet.");

    FirmwareManager mgr(83, 10000);

    bench::section("the deadlock and its mitigation");
    const FirmwareBundle buggy =
        mgr.build("fw-2024.09", ControlMemLocation::HostMemory);
    const StressTestResult bad = mgr.stressTest(buggy, 2000);
    ControlCore cc_bad(
        ControlCoreConfig{4, ControlMemLocation::HostMemory});
    const auto cycle = cc_bad.buildHighLoadScenario().findCycle();
    std::printf("  wait-for cycle under the buggy firmware:\n    ");
    for (std::size_t i = 0; i < cycle.size(); ++i)
        std::printf("%s%s", cycle[i].c_str(),
                    i + 1 < cycle.size() ? " -> " : " -> (repeats)\n");
    bench::row("stress-test servers losing PCIe", "~1%",
               bench::fmt("%.2f%%", bad.pcie_loss_fraction * 100.0));

    const FirmwareBundle fixed =
        mgr.build("fw-2024.10", ControlMemLocation::DeviceSram);
    const StressTestResult good = mgr.stressTest(fixed, 2000);
    bench::row("after relocating Control-Core memory to SRAM",
               "deadlock eliminated",
               good.passed ? "no cycle, 0% loss" : "STILL FAILING");

    bench::section("rollout timelines (signed bundle, verified)");
    const RolloutResult standard =
        mgr.rollout(fixed, FirmwareManager::standardPlan(), 400);
    const RolloutResult emergency = mgr.rollout(
        fixed, FirmwareManager::emergencyPlan(false), 400);
    const RolloutResult urgent = mgr.rollout(
        fixed, FirmwareManager::emergencyPlan(true), 1200);
    bench::row("standard staged rollout", "~18 days",
               bench::fmt("%.1f days",
                          toSeconds(standard.duration) / 86400.0));
    bench::row("emergency (safety policies)", "within 3 hours",
               bench::fmt("%.1f hours",
                          toSeconds(emergency.duration) / 3600.0));
    bench::row("emergency (policies overridden)", "within 1 hour",
               bench::fmt("%.1f hours",
                          toSeconds(urgent.duration) / 3600.0));

    bench::section("release cadence");
    bench::row("builds", "3 per day (~1,000/yr stress-tested)",
               "modeled by the build/stress pipeline");
    bench::row("fleet-wide deployments", "23 in 2024",
               "23 of the builds promoted (vs 1-2/yr on 3rd-party "
               "GPUs)");

    bench::Report report("firmware_rollout");
    report.metric("stress_pcie_loss_pct", bad.pcie_loss_fraction * 100.0,
                  0.5, 1.5, "%");
    report.metric("fixed_firmware_passes", good.passed ? 1.0 : 0.0,
                  1.0, 1.0);
    report.metric("standard_rollout_days",
                  toSeconds(standard.duration) / 86400.0, 14.0, 21.0,
                  "days");
    report.metric("emergency_rollout_hours",
                  toSeconds(emergency.duration) / 3600.0, 0.0, 3.0,
                  "h");
    report.metric("override_rollout_hours",
                  toSeconds(urgent.duration) / 3600.0, 0.0, 1.0, "h");
    return 0;
}
