/**
 * @file
 * Parallel multi-chip DES scaling: one 64-chip cluster simulation
 * (32 replicas x 2 chips under replica kills + ECC storms) partitioned
 * over the deterministic lane pool — the controller plane plus one
 * partition per replica, synchronized at conservative epoch barriers
 * of one fabric latency (see DESIGN.md "Parallel multi-chip DES").
 *
 * The same scenario runs twice: once at the ambient MTIA_THREADS lane
 * count and once pinned serial. The two summaries must match byte for
 * byte (the results_match metric is a hard CI gate, and ctest
 * bench_parallel_cluster_determinism re-checks the whole report at
 * MTIA_THREADS 1 vs 8); the wall-clock ratio between them is the
 * speedup headline (>= 8x target on a 64-chip scenario with enough
 * cores — warn-only, since CI runners and this container may have
 * fewer).
 *
 * Emits BENCH_parallel_cluster.json. Everything in it except
 * wall_clock_speedup derives from simulated state and is
 * byte-identical at any MTIA_THREADS count.
 */

#include <cstdio>
#include <string>

#include "bench_report.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"
#include "core/parallel.h"

namespace {

using namespace mtia;

ClusterConfig
sixtyFourChipConfig()
{
    ClusterConfig cfg;
    cfg.replicas = 32;
    cfg.chips_per_replica = 2; // 64 chips
    cfg.embedding_shards = 16;
    cfg.routing = RoutingPolicyKind::LeastLoaded;
    cfg.trace.users = 1'000'000;
    cfg.trace.user_zipf_alpha = 1.1;
    cfg.trace.traffic.candidates_mean = 64;
    cfg.chaos.enabled = true;
    cfg.chaos.mean_kill_interval_s = 1.0;
    cfg.chaos.mean_storm_interval_s = 0.5;
    return cfg;
}

} // namespace

int
main()
{
    bench::banner(
        "Parallel multi-chip DES, 64-chip cluster under chaos",
        "32 replicas x 2 chips partitioned over the lane pool; "
        "epoch-barrier sync, byte-identical at any MTIA_THREADS");

    bench::Report report("parallel_cluster");
    const ClusterSimulator sim(sixtyFourChipConfig());
    const double qps = 12000.0;
    const Tick duration = fromSeconds(2.0);
    const unsigned lanes = parallelLanes();

    char label[64];
    std::snprintf(label, sizeof label, "chaos run, %u lane(s)", lanes);
    bench::section(label);
    const bench::WallTimer par_timer;
    const ClusterResult par = sim.simulate(qps, duration);
    const double par_seconds = par_timer.seconds();
    std::printf("%s", par.summary().c_str());

    bench::section("same seed, pinned serial");
    double serial_seconds = 0.0;
    ClusterResult ser;
    {
        ScopedParallelism serial(1);
        const bench::WallTimer ser_timer;
        ser = sim.simulate(qps, duration);
        serial_seconds = ser_timer.seconds();
    }

    const bool match = par.summary() == ser.summary();
    bench::section("results");
    bench::row("summary bytes, parallel vs serial", "identical",
               match ? "identical" : "DIVERGED");
    bench::row("cluster SLO attainment (chaos on)", "0.80..1.00",
               bench::fmt("%.3f", par.slo_attainment));
    bench::row("failovers detected", ">= 1",
               bench::fmt("%.0f", static_cast<double>(par.failovers)));

    // The hard gate: partitioned execution must not change one byte of
    // the simulated outcome. Everything below stays lane-invariant.
    report.metric("results_match", match ? 1.0 : 0.0, 1.0, 1.0, "bool");
    report.metric("chips", 64.0);
    report.metric("partitions",
                  static_cast<double>(sim.config().replicas) + 1.0);
    report.metric("slo_attainment", par.slo_attainment, 0.80, 1.00,
                  "fraction");
    report.metric("p99_ms", par.p99_ms, "ms");
    report.metric("arrivals", static_cast<double>(par.arrivals));
    report.metric("completed", static_cast<double>(par.completed));
    report.metric("rerouted", static_cast<double>(par.rerouted));
    report.metric("dropped", static_cast<double>(par.dropped));
    report.metric("kills", par.kills);
    report.metric("failovers", par.failovers);
    report.metric("ecc_errors", static_cast<double>(par.ecc_errors));

    // Wall clock is machine-dependent by nature: it rides the one
    // report field the determinism checks strip. >= 8x is the 64-chip
    // target with >= 8 cores; fewer cores report honestly below it.
    if (par_seconds > 0.0)
        report.wallClockSpeedup(lanes, serial_seconds / par_seconds);
    std::snprintf(label, sizeof label, "%.2fx at %u lane(s)",
                  par_seconds > 0.0 ? serial_seconds / par_seconds : 0.0,
                  lanes);
    bench::row("wall-clock speedup vs serial",
               ">= 8x with >= 8 cores (warn-only)", label);

    report.write();
    std::printf("\nreport: %s\n", report.path().c_str());
    return match ? 0 : 1;
}
