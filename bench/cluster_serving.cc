/**
 * @file
 * Fleet-scale serving cluster under chaos (Sections 3.4, 5.1, 6): six
 * replicas x two chips serve a replayable million-user trace while
 * chaos kills replicas and ECC storms inject the Section 5.1
 * consequence mix. Reports cluster-wide P99 and SLO attainment per
 * routing policy, per-shard load skew, and failover detection /
 * recovery times; the qps sweep doubles as the serial-vs-parallel
 * wall-clock harness.
 *
 * Emits BENCH_cluster_serving.json. Everything in it except
 * wall_clock_speedup derives from simulated state and is
 * byte-identical at any MTIA_THREADS count (the ctest
 * bench_cluster_serving_determinism gates exactly that).
 */

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "cluster/cluster_sim.h"
#include "core/parallel.h"

namespace {

using namespace mtia;

ClusterConfig
chaosClusterConfig(RoutingPolicyKind routing)
{
    ClusterConfig cfg;
    cfg.replicas = 6;
    cfg.chips_per_replica = 2;
    cfg.embedding_shards = 8;
    cfg.routing = routing;
    cfg.trace.users = 1'000'000;
    cfg.trace.user_zipf_alpha = 1.1;
    cfg.trace.traffic.candidates_mean = 64;
    cfg.chaos.enabled = true;
    cfg.chaos.mean_kill_interval_s = 2.0;
    cfg.chaos.mean_storm_interval_s = 2.0;
    return cfg;
}

void
printSweepRow(const ClusterResult &r)
{
    std::printf("  %8.0f %10.1f %9.2f %9.2f %8.3f %7.2f %6" PRIu64
                " %6" PRIu64 " %5u %5u\n",
                r.offered_qps, r.completed_qps, r.p50_ms, r.p99_ms,
                r.slo_attainment, r.shard_skew, r.rerouted, r.dropped,
                r.kills, r.failovers);
}

} // namespace

int
main()
{
    bench::banner(
        "Cluster serving under chaos (Sections 3.4, 5.1, 6)",
        "6 replicas x 2 chips, sharded embeddings, deadline-aware "
        "batching, failover + ECC storms");

    bench::Report report("cluster_serving");
    const std::vector<double> qps = {500.0, 1500.0, 3000.0};
    const Tick duration = fromSeconds(4.0);
    const double nominal = qps[1];

    ClusterResult nominal_by_policy[2];
    const RoutingPolicyKind kinds[2] = {RoutingPolicyKind::LeastLoaded,
                                        RoutingPolicyKind::ShardHash};
    double sweep_seconds = 0.0;
    for (int k = 0; k < 2; ++k) {
        const ClusterSimulator sim(chaosClusterConfig(kinds[k]));
        bench::section(std::string("qps sweep, policy = ") +
                       routingPolicyKindName(kinds[k]));
        std::printf("  %8s %10s %9s %9s %8s %7s %6s %6s %5s %5s\n",
                    "offered", "completed", "p50_ms", "p99_ms",
                    "slo_att", "skew", "rert", "drop", "kill",
                    "fail");
        const bench::WallTimer timer;
        const std::vector<ClusterResult> sweep =
            sim.sweep(qps, duration);
        sweep_seconds += timer.seconds();
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            printSweepRow(sweep[i]);
            if (qps[i] == nominal)
                nominal_by_policy[k] = sweep[i];
        }
    }

    bench::section("nominal load, per policy");
    for (int k = 0; k < 2; ++k) {
        const ClusterResult &r = nominal_by_policy[k];
        const std::string tag = r.policy;
        bench::row(tag + " SLO attainment (chaos on)", "0.80..1.00",
                   bench::fmt("%.3f", r.slo_attainment));
        bench::row(tag + " cluster P99", "<= 50 ms",
                   bench::fmt("%.2f ms", r.p99_ms));
        bench::row(tag + " per-shard load skew (max/mean)",
                   "Zipf-headed", bench::fmt("%.2fx", r.shard_skew));
        bench::row(tag + " mean failover detection", "~15 ms",
                   bench::fmt("%.1f ms", r.mean_detection_ms));
        bench::row(tag + " mean failover recovery", "~315 ms",
                   bench::fmt("%.1f ms", r.mean_recovery_ms));
        // The warn-only CI band: chaos costs some attainment, but the
        // cluster must keep serving the overwhelming majority in SLO.
        report.metric(tag + "_slo_attainment",
                      r.slo_attainment, 0.80, 1.00, "fraction");
        report.metric(tag + "_p99_ms", r.p99_ms, "ms");
        report.metric(tag + "_shard_skew", r.shard_skew, "x");
        report.metric(tag + "_mean_detection_ms", r.mean_detection_ms,
                      "ms");
        report.metric(tag + "_mean_recovery_ms", r.mean_recovery_ms,
                      "ms");
        report.metric(tag + "_max_recovery_ms", r.max_recovery_ms,
                      "ms");
        report.metric(tag + "_kills", r.kills);
        report.metric(tag + "_failovers", r.failovers);
        report.metric(tag + "_rerouted",
                      static_cast<double>(r.rerouted));
        report.metric(tag + "_dropped",
                      static_cast<double>(r.dropped));
        report.metric(tag + "_ecc_errors",
                      static_cast<double>(r.ecc_errors));
        report.metric(tag + "_ecc_crashes",
                      static_cast<double>(r.ecc_crashes));
        report.metric(tag + "_batches_deadline_closed",
                      static_cast<double>(r.batches_deadline));
    }

    // Serial re-run of one sweep for the sanctioned wall-clock
    // speedup number (excluded from byte-identical guarantees).
    {
        const ClusterSimulator sim(
            chaosClusterConfig(RoutingPolicyKind::LeastLoaded));
        const unsigned lanes = parallelLanes();
        const bench::WallTimer timer;
        ScopedParallelism serial(1);
        (void)sim.sweep(qps, duration);
        // The parallel section above ran two policy sweeps; the serial
        // rerun covers one, so scale it before forming the ratio.
        const double serial_seconds = timer.seconds() * 2.0;
        if (sweep_seconds > 0.0)
            report.wallClockSpeedup(lanes,
                                    serial_seconds / sweep_seconds);
    }

    report.write();
    std::printf("\nreport: %s\n", report.path().c_str());
    return 0;
}
