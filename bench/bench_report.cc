#include "bench_report.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/check.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace mtia::bench {

Report::Report(std::string name) : name_(std::move(name))
{
    MTIA_CHECK(!name_.empty()) << ": bench report needs a name";
}

Report::~Report()
{
    if (!written_)
        write();
}

void
Report::metric(const std::string &metric_name, double measured,
               const std::string &unit)
{
    entries_.push_back({metric_name, measured, 0.0, 0.0, false, unit});
}

void
Report::metric(const std::string &metric_name, double measured,
               double paper_lo, double paper_hi, const std::string &unit)
{
    MTIA_CHECK_LE(paper_lo, paper_hi)
        << ": inverted paper band for " << metric_name;
    entries_.push_back(
        {metric_name, measured, paper_lo, paper_hi, true, unit});
}

void
Report::wallClockSpeedup(unsigned threads, double speedup)
{
    MTIA_CHECK_GT(threads, 0u)
        << ": wall_clock_speedup needs a thread count";
    MTIA_CHECK_GT(speedup, 0.0)
        << ": wall_clock_speedup must be a positive ratio";
    speedup_threads_ = threads;
    speedup_ = speedup;
    has_speedup_ = true;
}

void
Report::wallClockRatio(const std::string &ratio_name, double ratio)
{
    MTIA_CHECK(!ratio_name.empty())
        << ": wall_clock_ratios entry needs a name";
    MTIA_CHECK_GT(ratio, 0.0)
        << ": wall_clock_ratios " << ratio_name
        << " must be a positive ratio";
    ratios_.push_back({ratio_name, ratio});
}

void
Report::surrogate(const std::string &field, double value)
{
    MTIA_CHECK(!field.empty()) << ": surrogate block field needs a name";
    for (const Ratio &f : surrogate_fields_) {
        MTIA_CHECK(f.name != field)
            << ": surrogate block field " << field << " recorded twice";
    }
    surrogate_fields_.push_back({field, value});
}

std::string
Report::path() const
{
    const std::string file = "BENCH_" + name_ + ".json";
    const char *dir = std::getenv("MTIA_BENCH_REPORT_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return file;
    std::string p(dir);
    if (p.back() != '/')
        p += '/';
    return p + file;
}

std::string
Report::json() const
{
    std::ostringstream os;
    os << "{\"schema\":\"mtia-bench-report-v1\",\"bench\":";
    telemetry::writeJsonString(os, name_);
    os << ",\"metrics\":[";
    bool first = true;
    for (const Entry &e : entries_) {
        os << (first ? "\n" : ",\n") << "{\"name\":";
        first = false;
        telemetry::writeJsonString(os, e.name);
        os << ",\"measured\":";
        telemetry::writeJsonDouble(os, e.measured);
        if (!e.unit.empty()) {
            os << ",\"unit\":";
            telemetry::writeJsonString(os, e.unit);
        }
        if (e.has_band) {
            os << ",\"paper_lo\":";
            telemetry::writeJsonDouble(os, e.paper_lo);
            os << ",\"paper_hi\":";
            telemetry::writeJsonDouble(os, e.paper_hi);
            const bool within =
                e.measured >= e.paper_lo && e.measured <= e.paper_hi;
            os << ",\"within_band\":" << (within ? "true" : "false");
        }
        os << '}';
    }
    os << "\n]";
    if (has_speedup_) {
        os << ",\"wall_clock_speedup\":{\"threads\":" << speedup_threads_
           << ",\"speedup\":";
        telemetry::writeJsonDouble(os, speedup_);
        os << '}';
    }
    if (!ratios_.empty()) {
        os << ",\"wall_clock_ratios\":[";
        for (std::size_t i = 0; i < ratios_.size(); ++i) {
            os << (i ? "," : "") << "{\"name\":";
            telemetry::writeJsonString(os, ratios_[i].name);
            os << ",\"ratio\":";
            telemetry::writeJsonDouble(os, ratios_[i].ratio);
            os << '}';
        }
        os << ']';
    }
    if (!surrogate_fields_.empty()) {
        os << ",\"surrogate\":{";
        for (std::size_t i = 0; i < surrogate_fields_.size(); ++i) {
            os << (i ? "," : "");
            telemetry::writeJsonString(os, surrogate_fields_[i].name);
            os << ":";
            telemetry::writeJsonDouble(os, surrogate_fields_[i].ratio);
        }
        os << '}';
    }
    if (telemetry_ != nullptr) {
        std::string snap = telemetry_->json();
        while (!snap.empty() &&
               (snap.back() == '\n' || snap.back() == ' '))
            snap.pop_back();
        os << ",\"telemetry\":" << snap;
    }
    os << "}\n";
    return os.str();
}

void
Report::write()
{
    if (written_)
        return;
    written_ = true;
    const std::string p = path();
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    if (!out.is_open())
        telemetry::exportError("bench report: cannot open " + p);
    out << json();
    out.flush();
    if (!out.good())
        telemetry::exportError("bench report: write failed for " + p);
}

} // namespace mtia::bench
