/**
 * @file
 * Reproduces the Section 5.6 A/B methodology: the same trained model
 * served on MTIA 2i (LUT-approximated numerics) and the GPU baseline
 * (exact math) on identical traffic, compared on normalized entropy,
 * prediction distributions, and raw numeric divergence.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "models/model_zoo.h"
#include "serving/ab_testing.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 5.6 — large-scale A/B testing",
                  "MTIA arm vs GPU-reference arm on identical "
                  "synthetic traffic (real numerics both sides).");

    RankingModelParams p;
    p.name = "ab-model";
    p.batch = 128;
    p.dense_features = 64;
    p.bottom_mlp = {64, 32};
    p.tbe = TbeTableSpec{.tables = 8,
                         .rows_per_table = 8192,
                         .dim = 16,
                         .dtype = DType::FP16,
                         .zipf_alpha = 0.9};
    p.tbe_pooling = 8;
    p.top_mlp = {128, 1};
    p.dhen_layers = 2;
    p.dhen_width = 128;
    ModelInfo model = buildRankingModel(p);

    AbTestHarness harness;
    const AbResult r = harness.compare(model.graph, 8);

    bench::section("holistic comparison");
    std::printf("  samples scored:            %zu\n", r.samples);
    std::printf("  NE (GPU reference arm):    %.5f\n",
                r.ne_reference);
    std::printf("  NE (MTIA candidate arm):   %.5f\n",
                r.ne_candidate);
    std::printf("  mean prediction (GPU):     %.5f\n",
                r.mean_pred_reference);
    std::printf("  mean prediction (MTIA):    %.5f\n",
                r.mean_pred_candidate);
    std::printf("  max per-sample |delta|:    %.2e\n",
                r.max_pred_diff);

    bench::section("paper vs measured");
    bench::row("model quality on MTIA", "comparable (launch gate)",
               bench::fmt("NE delta %+.3f%%", r.neDeltaPercent()));
    bench::row("numeric divergence source",
               "accelerator-specific kernels (LUT nonlinearity)",
               "nonzero but tiny per-sample deltas above");

    bench::Report report("ab_testing");
    report.metric("ne_delta_pct", r.neDeltaPercent(), -0.5, 0.5, "%");
    report.metric("max_pred_diff", r.max_pred_diff);
    report.metric("samples_scored", static_cast<double>(r.samples));
    return 0;
}
