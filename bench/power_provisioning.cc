/**
 * @file
 * Reproduces the Section 5.3 result: re-deriving the rack power
 * budget from production data (the max of the P90-peak experiment
 * and the P90 fully-utilized-server analysis) cuts the provisioned
 * power by nearly 40%.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "fleet/power_provisioning.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 5.3 — reducing provisioned power",
                  "Stress-test budget vs the production-derived "
                  "budget (200 servers, 14 days of samples).");

    Device dev(ChipConfig::mtia2i());
    PowerProvisioningStudy study(73, dev);
    const PowerBudgetReport rep = study.run(200, 14);

    bench::section("per-server budgets");
    std::printf("  initial (stress test + margin):   %7.0f W\n",
                rep.initial_budget_w);
    std::printf("  experiment (24 x P90-peak load):  %7.0f W\n",
                rep.experiment_budget_w);
    std::printf("  analysis (P90 production power):  %7.0f W\n",
                rep.analysis_budget_w);
    std::printf("  final = max(experiment, analysis):%7.0f W\n",
                rep.final_budget_w);

    bench::section("paper vs measured");
    bench::row("rack power budget reduction", "nearly 40%",
               bench::fmt("%.0f%%", rep.reduction() * 100.0));
    bench::row("method", "max of experiment and analysis",
               "same (both computed above)");
    bench::row("why so large",
               "initial estimates used unoptimized models; small "
               "chips allow granular allocation",
               "margin + typical-vs-TDP + measured host power");

    bench::Report report("power_provisioning");
    report.metric("budget_reduction_pct", rep.reduction() * 100.0,
                  35.0, 45.0, "%");
    report.metric("initial_budget_w", rep.initial_budget_w, "W");
    report.metric("final_budget_w", rep.final_budget_w, "W");
    return 0;
}
