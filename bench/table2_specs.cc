/**
 * @file
 * Regenerates Table 2: MTIA 2i vs MTIA 1 specifications, printed from
 * the chip configurations together with the generational ratios the
 * paper quotes (>3x FLOPS, >3x SRAM bandwidth, >3x NoC bandwidth,
 * 2x DRAM capacity, ~1.4x DRAM bandwidth in prose / 1.16x per table).
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/chip_config.h"

using namespace mtia;

int
main()
{
    bench::banner("Table 2 — MTIA 2i vs MTIA 1 specifications",
                  "Derived from the ChipConfig factories; ratios are "
                  "computed, not hard-coded.");

    const ChipConfig c2 = ChipConfig::mtia2i();
    const ChipConfig c1 = ChipConfig::mtia1();

    auto line = [](const char *name, double v2, double v1,
                   const char *unit) {
        std::printf("  %-28s %12.1f %-8s %12.1f %-8s (%.2fx)\n", name,
                    v2, unit, v1, unit, v1 == 0.0 ? 0.0 : v2 / v1);
    };

    std::printf("  %-28s %12s %21s\n", "", "MTIA 2i", "MTIA 1");
    line("Frequency", c2.reference_frequency_ghz,
         c1.reference_frequency_ghz, "GHz");
    line("GEMM INT8", c2.peakGemmFlops(DType::INT8) / 1e12,
         c1.peakGemmFlops(DType::INT8) / 1e12, "TOPS");
    line("GEMM FP16/BF16", c2.peakGemmFlops(DType::FP16) / 1e12,
         c1.peakGemmFlops(DType::FP16) / 1e12, "TFLOPS");
    std::printf("  %-28s %12.1f %-8s %12s\n", "GEMM INT8 (2:4 sparse)",
                c2.peakGemmFlops(DType::INT8, true) / 1e12, "TOPS",
                "N/A");
    line("Per-PE local memory",
         static_cast<double>(c2.local_memory_per_pe) / 1024.0,
         static_cast<double>(c1.local_memory_per_pe) / 1024.0, "KB");
    line("On-chip SRAM", static_cast<double>(c2.sram.capacity) / (1 << 20),
         static_cast<double>(c1.sram.capacity) / (1 << 20), "MB");
    line("SRAM bandwidth", c2.sram.bandwidth / 1e12,
         c1.sram.bandwidth / 1e12, "TB/s");
    line("Local-memory bandwidth", c2.local_memory_bandwidth / 1e12,
         c1.local_memory_bandwidth / 1e12, "TB/s");
    line("LPDDR5 capacity",
         static_cast<double>(c2.lpddr.capacity) / (1ull << 30),
         static_cast<double>(c1.lpddr.capacity) / (1ull << 30), "GB");
    line("LPDDR5 bandwidth", c2.lpddr.peak_bandwidth / 1e9,
         c1.lpddr.peak_bandwidth / 1e9, "GB/s");
    line("NoC bisection bandwidth", c2.noc.bisection_bandwidth / 1e12,
         c1.noc.bisection_bandwidth / 1e12, "TB/s");
    line("PCIe per-direction",
         c2.pcie.bandwidth() / 1e9, c1.pcie.bandwidth() / 1e9, "GB/s");
    line("TDP", c2.tdp_watts, c1.tdp_watts, "W");

    bench::section("paper's generational claims");
    bench::row("peak FLOPS ratio", "> 3x",
               bench::fmt("%.2fx", c2.peakGemmFlops(DType::FP16) /
                                       c1.peakGemmFlops(DType::FP16)));
    bench::row("SRAM bandwidth ratio", "> 3x",
               bench::fmt("%.2fx",
                          c2.sram.bandwidth / c1.sram.bandwidth));
    bench::row("NoC bandwidth ratio", "3.3x",
               bench::fmt("%.2fx", c2.noc.bisection_bandwidth /
                                       c1.noc.bisection_bandwidth));
    bench::row("DRAM capacity ratio", "2x",
               bench::fmt("%.2fx",
                          static_cast<double>(c2.lpddr.capacity) /
                              static_cast<double>(c1.lpddr.capacity)));
    bench::row("DRAM bandwidth ratio", "~1.4x (prose); 1.16x (table)",
               bench::fmt("%.2fx", c2.lpddr.peak_bandwidth /
                                       c1.lpddr.peak_bandwidth));

    bench::Report report("table2_specs");
    report.metric("flops_ratio_fp16",
                  c2.peakGemmFlops(DType::FP16) /
                      c1.peakGemmFlops(DType::FP16),
                  3.0, 5.0, "x");
    report.metric("sram_bandwidth_ratio",
                  c2.sram.bandwidth / c1.sram.bandwidth, 3.0, 5.0, "x");
    report.metric("noc_bandwidth_ratio",
                  c2.noc.bisection_bandwidth /
                      c1.noc.bisection_bandwidth,
                  3.0, 3.6, "x");
    report.metric("dram_capacity_ratio",
                  static_cast<double>(c2.lpddr.capacity) /
                      static_cast<double>(c1.lpddr.capacity),
                  1.9, 2.1, "x");
    report.metric("dram_bandwidth_ratio",
                  c2.lpddr.peak_bandwidth / c1.lpddr.peak_bandwidth,
                  1.1, 1.5, "x");
    report.metric("gemm_int8_tops",
                  c2.peakGemmFlops(DType::INT8) / 1e12, "TOPS");
    report.metric("tdp_watts", c2.tdp_watts, "W");
    return 0;
}
