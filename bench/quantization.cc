/**
 * @file
 * Reproduces the Section 4.4 quantization findings: row-wise dynamic
 * INT8 activations + static INT8 weights match FP16 quality while
 * per-tensor does not; the DPE's 2x INT8 rate nets ~1.6x end to end
 * on large shapes; and end-to-end model gains are marginal unless the
 * largest layers quantize.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/kernel_cost_model.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "models/model_zoo.h"
#include "pe/dpe.h"
#include "tensor/quantize.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 4.4 — dynamic INT8 quantization",
                  "Quality by granularity (real arithmetic), kernel "
                  "speedup, and end-to-end model impact.");

    bench::section("quality: SQNR of INT8 GEMM vs FP32 (64x256x128)");
    Rng rng(3);
    DotProductEngine dpe;
    Tensor x(Shape{64, 256}, DType::FP32);
    // Rows with wildly different magnitudes (real activations do
    // this after different upstream layers).
    for (std::int64_t r = 0; r < 64; ++r) {
        const float mag = (r % 4 == 0) ? 8.0f : 0.25f;
        for (std::int64_t c = 0; c < 256; ++c)
            x.set2(r, c, static_cast<float>(rng.gaussian(0.0, mag)));
    }
    Tensor w(Shape{256, 128}, DType::FP32);
    w.fillGaussian(rng, 0.0f, 0.1f);
    const Tensor ref = dpe.gemm(x, w, DType::FP32);
    const Tensor fp16 = dpe.gemm(x, w, DType::FP16);
    const QuantizedTensor qw = quantizeStatic(w);

    std::printf("  %-26s %10s\n", "activation granularity",
                "SQNR (dB)");
    std::printf("  %-26s %10.1f\n", "fp16 baseline",
                sqnrDb(ref, fp16));
    for (auto [name, gran] :
         {std::pair{"per-tensor", QuantGranularity::PerTensor},
          std::pair{"per-row (row-wise)", QuantGranularity::PerRow},
          std::pair{"per-8-rows", QuantGranularity::PerRowGroup}}) {
        const QuantizedTensor qa = quantizeDynamic(x, gran, 8);
        const Tensor out = dpe.gemmInt8(qa, qw);
        std::printf("  %-26s %10.1f\n", name, sqnrDb(ref, out));
    }
    bench::row("row-wise dynamic INT8 quality", "comparable to FP16",
               "see SQNR table (row-wise ~ fp16, per-tensor worse)");

    bench::section("kernel speedup on 2048^3 (compute-bound)");
    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    const FcShape big{2048, 2048, 2048};
    const KernelTime t16 = km.fc(big, {});
    FcOptions i8;
    i8.dtype = DType::INT8;
    i8.dynamic_int8 = true;
    const KernelTime t8 = km.fc(big, i8);
    bench::row("DPE INT8 rate", "2x FP16", "2.00x (Table 2)");
    bench::row("end-to-end FC speedup", "~1.6x",
               bench::fmt("%.2fx", static_cast<double>(t16.total) /
                                       t8.total));
    bench::row("quant/dequant overhead",
               "reduces the 2x to ~1.6x",
               bench::fmt("%.1f us serialized",
                          toMicros(t8.quant_overhead)));

    bench::section("end-to-end model impact (SRAM-resident model)");
    // Like the paper's production models, the big FCs here live in
    // the LLC: quantization saves compute, not DRAM bandwidth.
    GraphCostOptions none;
    RankingModelParams mp;
    mp.name = "quant-e2e";
    mp.batch = 512;
    mp.tbe = TbeTableSpec{.tables = 96,
                          .rows_per_table = 4 << 20,
                          .dim = 64,
                          .dtype = DType::FP16,
                          .zipf_alpha = 0.9};
    mp.tbe_pooling = 24;
    mp.dhen_layers = 6;
    mp.dhen_width = 1024;
    GraphCostModel gcm(dev);
    ModelInfo model = buildRankingModel(mp);
    optimizeGraph(model.graph);
    const ModelCost fp = gcm.evaluate(model.graph, model.batch);
    GraphCostOptions all;
    all.int8_weight_threshold = 1; // quantize everything
    const ModelCost q_all =
        gcm.evaluate(model.graph, model.batch, all);
    GraphCostOptions largest;
    largest.int8_weight_threshold = 8_MiB; // only the biggest FCs
    const ModelCost q_big =
        gcm.evaluate(model.graph, model.batch, largest);
    std::printf("  fp16 everywhere:        %8.0f QPS\n", fp.qps);
    std::printf("  int8 largest FCs only:  %8.0f QPS (%+.1f%%)\n",
                q_big.qps, (q_big.qps / fp.qps - 1.0) * 100.0);
    std::printf("  int8 every FC:          %8.0f QPS (%+.1f%%)\n",
                q_all.qps, (q_all.qps / fp.qps - 1.0) * 100.0);
    bench::row("end-to-end gain, largest layers only",
               "a few percent unless risky layers quantized (>5%)",
               bench::fmt("%+.1f%%",
                          (q_big.qps / fp.qps - 1.0) * 100.0));

    bench::Report report("quantization");
    report.metric("fc_int8_speedup",
                  static_cast<double>(t16.total) /
                      static_cast<double>(t8.total),
                  1.4, 2.0, "x");
    report.metric("e2e_gain_largest_layers_pct",
                  (q_big.qps / fp.qps - 1.0) * 100.0, "%");
    report.metric("e2e_gain_all_layers_pct",
                  (q_all.qps / fp.qps - 1.0) * 100.0, "%");
    return 0;
}
