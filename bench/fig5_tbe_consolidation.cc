/**
 * @file
 * Regenerates Figure 5: consolidating the weighted and unweighted TBE
 * instances into one remote job. The PE-grid execution time of remote
 * and merge work is identical in both configurations; the gains come
 * from the serving stack — merges stop queueing behind later
 * requests' remote jobs. The paper reports a significant throughput
 * improvement and a P99 drop from 99 ms to 86 ms, entirely in the
 * merge component.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "serving/serving_sim.h"

using namespace mtia;

int
main()
{
    bench::banner(
        "Figure 5 — TBE consolidation vs split weighted/unweighted",
        "Remote/merge serving DES on a two-shard model; P99 SLO "
        "100 ms.");

    ServingModelParams split;
    split.remote_jobs_per_shard = 2;
    ServingModelParams merged = split;
    merged.remote_jobs_per_shard = 1;

    const Tick dur = fromSeconds(60.0);
    const ServingSimulator sim_split(split);
    const ServingSimulator sim_merged(merged);

    bench::section("throughput sweep (completed QPS, P99 ms)");
    std::printf("  %-12s %16s %22s\n", "offered QPS",
                "split (2 remotes)", "consolidated (1 remote)");
    for (double qps : {10.0, 20.0, 30.0, 35.0, 40.0, 45.0}) {
        const ServingResult a = sim_split.simulate(qps, dur);
        const ServingResult b = sim_merged.simulate(qps, dur);
        std::printf("  %-12.0f %7.1f / %6.1fms %12.1f / %6.1fms\n",
                    qps, a.completed_qps, a.p99_ms, b.completed_qps,
                    b.p99_ms);
    }

    const double qps_split = sim_split.maxQpsAtSlo(5.0, 90.0, dur);
    const double qps_merged = sim_merged.maxQpsAtSlo(5.0, 90.0, dur);

    // Latency decomposition at the split system's sustainable load.
    const ServingResult a = sim_split.simulate(qps_split, dur);
    const ServingResult b = sim_merged.simulate(qps_split, dur);

    bench::section("paper vs measured");
    bench::row("throughput at P99 SLO", "significant improvement",
               bench::fmt("%.1f", qps_split) + " -> " +
                   bench::fmt("%.1f QPS", qps_merged) +
                   bench::fmt(" (%+.0f%%)",
                              (qps_merged / qps_split - 1.0) * 100.0));
    bench::row("P99 request latency", "99 ms -> 86 ms (-13 ms)",
               bench::fmt("%.1f ms -> ", a.p99_ms) +
                   bench::fmt("%.1f ms", b.p99_ms));
    bench::row("merge-component P99", "improves by the same ~13 ms",
               bench::fmt("%.1f ms -> ", a.merge_p99_ms) +
                   bench::fmt("%.1f ms", b.merge_p99_ms));
    bench::row("remote-component P99", "unchanged",
               bench::fmt("%.1f ms -> ", a.remote_p99_ms) +
                   bench::fmt("%.1f ms", b.remote_p99_ms));
    bench::row("PE-grid execution per request", "identical",
               "identical by construction (6 ms remote + 12 ms merge)");

    bench::Report report("fig5_tbe_consolidation");
    report.metric("qps_at_slo_split", qps_split, "QPS");
    report.metric("qps_at_slo_consolidated", qps_merged, "QPS");
    report.metric("throughput_gain_pct",
                  (qps_merged / qps_split - 1.0) * 100.0, "%");
    report.metric("p99_split_ms", a.p99_ms, "ms");
    report.metric("p99_consolidated_ms", b.p99_ms, "ms");
    report.metric("p99_drop_ms", a.p99_ms - b.p99_ms, 5.0, 25.0, "ms");
    report.metric("remote_p99_delta_ms",
                  b.remote_p99_ms - a.remote_p99_ms, "ms");
    return 0;
}
