/**
 * @file
 * Vectorized numerics microbenchmark: the SIMD kernel layer
 * (core/simd.h) against the element-at-a-time reference paths it
 * replaced, over the four hot mixes the simulator actually runs:
 *
 *   conversion    bulk fp32→fp16/bf16 narrowing and fp16→fp32
 *                 widening (tensor/dtype convertBuffer vs
 *                 scalar::convertBuffer)
 *   quantization  fused min/max + scale + clamp INT8 dynamic
 *                 quantization (tensor/quantize vs scalar::*)
 *   codec         4-way interleaved rANS (format v2) vs the scalar
 *                 single-state v1 stream, plus hash-chain vs greedy LZ
 *   gather        blocked, prefetched TBE row gather-accumulate vs
 *                 the scalar reference kernel
 *
 * Every mix asserts bit-identical results between the two paths (hard
 * [1, 1] gates in BENCH_numerics.json); the measured throughput
 * ratios are wall-clock by nature and land only under the report's
 * "wall_clock_ratios" array, where CI applies a warn-only >= 2x gate
 * on the conversion and quantization entries.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "core/check.h"
#include "core/numerics_stats.h"
#include "core/simd.h"
#include "host/compression.h"
#include "ops/sparse_ops.h"
#include "sim/random.h"
#include "telemetry/metrics.h"
#include "tensor/dtype.h"
#include "tensor/quantize.h"

using namespace mtia;

namespace {

constexpr int kReps = 3; // best-of, to damp scheduler noise

/** FNV-1a over a byte range: the determinism checksum for each rep. */
std::uint64_t
fnv(const void *p, std::size_t n)
{
    const auto *b = static_cast<const unsigned char *>(p);
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 1099511628211ull;
    }
    return h;
}

struct Timed
{
    double seconds = 0.0;
    std::uint64_t checksum = 0;
};

/**
 * Best wall-clock of kReps identical runs. @p fn does the work under
 * measurement; @p sum checksums its output outside the timed region
 * and must agree across reps.
 */
template <typename Fn, typename Sum>
Timed
bestOf(Fn &&fn, Sum &&sum)
{
    Timed best;
    for (int r = 0; r < kReps; ++r) {
        bench::WallTimer timer;
        fn();
        const double secs = timer.seconds();
        const std::uint64_t cs = sum();
        if (r == 0) {
            best = {secs, cs};
        } else {
            MTIA_CHECK_EQ(cs, best.checksum)
                << ": non-deterministic benchmark repetition";
            best.seconds = std::min(best.seconds, secs);
        }
    }
    return best;
}

double
ratioOf(const Timed &scalar, const Timed &vectorized)
{
    return vectorized.seconds > 0.0
        ? scalar.seconds / vectorized.seconds
        : 1.0;
}

/** Gaussian floats with every fp16 special class sprinkled in. */
std::vector<float>
makeConversionInput(std::size_t n, Rng &rng)
{
    std::vector<float> src(n);
    for (float &v : src)
        v = static_cast<float>(rng.gaussian(0.0, 4.0));
    const float specials[] = {
        0.0f,
        -0.0f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        65504.0f,  // fp16 max normal
        65520.0f,  // first fp32 value rounding to fp16 inf
        6.1e-5f,   // near the fp16 normal/denormal boundary
        5.96e-8f,  // deep fp16 denormal range
        1e-40f,    // fp32 denormal, flushes to fp16 zero
    };
    constexpr std::size_t kSpecialCount =
        sizeof(specials) / sizeof(specials[0]);
    for (std::size_t i = 0, k = 0; i < n; i += 1009, ++k)
        src[i] = specials[k % kSpecialCount];
    return src;
}

} // namespace

int
main()
{
    bench::banner(
        "Vectorized numerics — SIMD kernel layer vs scalar reference",
        "Bulk dtype conversion, fused INT8 quantization, interleaved "
        "rANS, and TBE gather; bit-identical results, measured "
        "wall-clock ratios.");

    numerics::resetStats();
    telemetry::MetricRegistry metrics;
    bench::Report report("numerics");
    bench::row("simd backend", "sse2 / neon / scalar",
               simd::backendName());
    report.metric("simd_lanes", static_cast<double>(simd::kLanes));

    // ---- conversion ----------------------------------------------
    constexpr std::size_t kConvElems = std::size_t{1} << 22; // 16 MiB
    Rng rng(23);
    const std::vector<float> conv_src =
        makeConversionInput(kConvElems, rng);
    std::vector<std::uint16_t> h_simd(kConvElems), h_ref(kConvElems);
    std::vector<std::uint16_t> b_simd(kConvElems), b_ref(kConvElems);
    std::vector<float> w_simd(kConvElems), w_ref(kConvElems);

    const Timed conv_vec = bestOf(
        [&] {
            convertBuffer(conv_src.data(), h_simd.data(), kConvElems,
                          DType::FP16);
            convertBuffer(conv_src.data(), b_simd.data(), kConvElems,
                          DType::BF16);
            convertBuffer(h_simd.data(), w_simd.data(), kConvElems,
                          DType::FP16);
        },
        [&] {
            return fnv(h_simd.data(), kConvElems * 2) ^
                fnv(b_simd.data(), kConvElems * 2) ^
                fnv(w_simd.data(), kConvElems * 4);
        });
    const Timed conv_ref = bestOf(
        [&] {
            scalar::convertBuffer(conv_src.data(), h_ref.data(),
                                  kConvElems, DType::FP16);
            scalar::convertBuffer(conv_src.data(), b_ref.data(),
                                  kConvElems, DType::BF16);
            scalar::convertBuffer(h_ref.data(), w_ref.data(),
                                  kConvElems, DType::FP16);
        },
        [&] {
            return fnv(h_ref.data(), kConvElems * 2) ^
                fnv(b_ref.data(), kConvElems * 2) ^
                fnv(w_ref.data(), kConvElems * 4);
        });

    const bool conv_equal = h_simd == h_ref && b_simd == b_ref &&
        std::memcmp(w_simd.data(), w_ref.data(), kConvElems * 4) == 0;
    const double conv_ratio = ratioOf(conv_ref, conv_vec);

    bench::section("conversion mix (fp32->fp16, fp32->bf16, fp16->fp32)");
    bench::row("scalar reference Melems/sec", "baseline",
               bench::fmt("%.1f", conv_ref.seconds > 0.0
                              ? 3.0 * static_cast<double>(kConvElems) /
                                  conv_ref.seconds / 1e6
                              : 0.0));
    bench::row("simd kernels Melems/sec", ">= 2x scalar",
               bench::fmt("%.1f", conv_vec.seconds > 0.0
                              ? 3.0 * static_cast<double>(kConvElems) /
                                  conv_vec.seconds / 1e6
                              : 0.0));
    bench::row("speedup", "-", bench::fmt("%.2fx", conv_ratio));
    bench::row("bit-identical output", "required",
               conv_equal ? "yes" : "NO — DIVERGED");

    report.metric("conversion_bits_equal", conv_equal ? 1.0 : 0.0, 1.0,
                  1.0);
    report.wallClockRatio("conversion", conv_ratio);

    // ---- quantization --------------------------------------------
    Tensor act(Shape{512, 2048}, DType::FP32);
    act.fillGaussian(rng);

    QuantizedTensor q_vec, q_ref;
    const Timed quant_vec = bestOf(
        [&] { q_vec = quantizeDynamic(act, QuantGranularity::PerRow); },
        [&] {
            return fnv(q_vec.values.raw().data(),
                       q_vec.values.raw().size()) ^
                fnv(q_vec.scales.data(), q_vec.scales.size() * 4);
        });
    const Timed quant_ref = bestOf(
        [&] {
            q_ref = scalar::quantizeDynamic(act,
                                            QuantGranularity::PerRow);
        },
        [&] {
            return fnv(q_ref.values.raw().data(),
                       q_ref.values.raw().size()) ^
                fnv(q_ref.scales.data(), q_ref.scales.size() * 4);
        });

    bool quant_equal = quant_vec.checksum == quant_ref.checksum &&
        q_vec.values.raw() == q_ref.values.raw() &&
        q_vec.scales.size() == q_ref.scales.size() &&
        std::memcmp(q_vec.scales.data(), q_ref.scales.data(),
                    q_vec.scales.size() * 4) == 0;
    // Also check the other two granularities (untimed) and the
    // dequantize direction.
    for (const QuantGranularity g : {QuantGranularity::PerTensor,
                                     QuantGranularity::PerRowGroup}) {
        const QuantizedTensor a = quantizeDynamic(act, g, 16);
        const QuantizedTensor b = scalar::quantizeDynamic(act, g, 16);
        quant_equal = quant_equal && a.values.raw() == b.values.raw() &&
            std::memcmp(a.scales.data(), b.scales.data(),
                        a.scales.size() * 4) == 0;
        const Tensor da = dequantize(a);
        const Tensor db = scalar::dequantize(b);
        quant_equal = quant_equal && da.raw() == db.raw();
    }
    const double quant_ratio = ratioOf(quant_ref, quant_vec);

    bench::section("quantization mix (dynamic INT8, per-row)");
    bench::row("scalar reference ms", "baseline",
               bench::fmt("%.2f", quant_ref.seconds * 1e3));
    bench::row("fused simd kernel ms", ">= 2x scalar",
               bench::fmt("%.2f", quant_vec.seconds * 1e3));
    bench::row("speedup", "-", bench::fmt("%.2fx", quant_ratio));
    bench::row("identical payload + scales", "required",
               quant_equal ? "yes" : "NO — DIVERGED");

    report.metric("quantization_bits_equal", quant_equal ? 1.0 : 0.0,
                  1.0, 1.0);
    report.wallClockRatio("quantization", quant_ratio);

    // ---- codec ---------------------------------------------------
    ByteBuffer int8(1 << 20);
    for (auto &b : int8)
        b = static_cast<std::uint8_t>(static_cast<std::int8_t>(
            std::clamp(rng.gaussian(0.0, 4.0), -127.0, 127.0)));
    ByteBuffer features(1 << 20);
    for (std::size_t i = 0; i < features.size(); ++i) {
        features[i] = static_cast<std::uint8_t>((i % 128) * 3);
        if (rng.chance(0.02))
            features[i] ^= 0xff;
    }

    ByteBuffer rans_v2, rans_v2_back;
    const Timed codec_vec = bestOf(
        [&] {
            rans_v2 =
                RansCodec::compress(int8, RansFormat::V2Interleaved);
            rans_v2_back = RansCodec::decompress(rans_v2);
        },
        [&] {
            return fnv(rans_v2.data(), rans_v2.size()) ^
                fnv(rans_v2_back.data(), rans_v2_back.size());
        });
    ByteBuffer rans_v1, rans_v1_back;
    const Timed codec_ref = bestOf(
        [&] {
            rans_v1 = RansCodec::compress(int8, RansFormat::V1Scalar);
            rans_v1_back = RansCodec::decompress(rans_v1);
        },
        [&] {
            return fnv(rans_v1.data(), rans_v1.size()) ^
                fnv(rans_v1_back.data(), rans_v1_back.size());
        });

    const ByteBuffer lz_chain = LzCodec::compress(features);
    const ByteBuffer lz_greedy = LzCodec::compressGreedy(features);
    const bool codec_ok = rans_v2_back == int8 && rans_v1_back == int8 &&
        LzCodec::decompress(lz_chain) == features &&
        LzCodec::decompress(lz_greedy) == features &&
        lz_chain.size() <= lz_greedy.size();
    const double codec_ratio = ratioOf(codec_ref, codec_vec);

    bench::section("codec mix (1 MiB INT8 spectrum round-trip)");
    bench::row("v1 scalar rANS MB/sec", "baseline",
               bench::fmt("%.1f", codec_ref.seconds > 0.0
                              ? 1.0 / codec_ref.seconds
                              : 0.0));
    bench::row("v2 interleaved rANS MB/sec", "> 1x scalar",
               bench::fmt("%.1f", codec_vec.seconds > 0.0
                              ? 1.0 / codec_vec.seconds
                              : 0.0));
    bench::row("speedup", "-", bench::fmt("%.2fx", codec_ratio));
    bench::row("hash-chain LZ vs greedy bytes", "<=",
               bench::fmt("%.1f%%",
                          100.0 * static_cast<double>(lz_chain.size()) /
                              static_cast<double>(lz_greedy.size())));
    bench::row("all round-trips exact", "required",
               codec_ok ? "yes" : "NO — CORRUPTED");

    report.metric("codec_roundtrip_ok", codec_ok ? 1.0 : 0.0, 1.0, 1.0);
    report.wallClockRatio("codec", codec_ratio);

    // ---- gather --------------------------------------------------
    constexpr std::size_t kPoolRows = 1024;
    constexpr std::int64_t kDim = 103; // exercises 8/4/scalar tails
    constexpr std::size_t kGathers = 1u << 14;
    std::vector<float> pool(kPoolRows * static_cast<std::size_t>(kDim));
    for (float &v : pool)
        v = static_cast<float>(rng.gaussian(0.0, 0.2));
    std::vector<const float *> rows(kGathers);
    std::vector<float> weights(kGathers);
    for (std::size_t p = 0; p < kGathers; ++p) {
        rows[p] = pool.data() +
            rng.below(kPoolRows) * static_cast<std::size_t>(kDim);
        weights[p] = static_cast<float>(rng.uniform(0.5, 1.5));
    }
    std::vector<float> out_vec(static_cast<std::size_t>(kDim));
    std::vector<float> out_ref(static_cast<std::size_t>(kDim));

    const Timed gather_vec = bestOf(
        [&] {
            std::fill(out_vec.begin(), out_vec.end(), 0.0f);
            tbe_kernels::gatherAccumulate(rows.data(), weights.data(),
                                          kGathers, kDim,
                                          out_vec.data());
        },
        [&] { return fnv(out_vec.data(), out_vec.size() * 4); });
    const Timed gather_ref = bestOf(
        [&] {
            std::fill(out_ref.begin(), out_ref.end(), 0.0f);
            tbe_kernels::gatherAccumulateScalar(
                rows.data(), weights.data(), kGathers, kDim,
                out_ref.data());
        },
        [&] { return fnv(out_ref.data(), out_ref.size() * 4); });

    const bool gather_equal =
        std::memcmp(out_vec.data(), out_ref.data(),
                    out_vec.size() * 4) == 0;
    const double gather_ratio = ratioOf(gather_ref, gather_vec);

    bench::section("gather mix (TBE row gather-accumulate, dim 103)");
    bench::row("scalar reference Mrows/sec", "baseline",
               bench::fmt("%.1f", gather_ref.seconds > 0.0
                              ? static_cast<double>(kGathers) /
                                  gather_ref.seconds / 1e6
                              : 0.0));
    bench::row("prefetched simd kernel Mrows/sec", "> 1x scalar",
               bench::fmt("%.1f", gather_vec.seconds > 0.0
                              ? static_cast<double>(kGathers) /
                                  gather_vec.seconds / 1e6
                              : 0.0));
    bench::row("speedup", "-", bench::fmt("%.2fx", gather_ratio));
    bench::row("bit-identical accumulation", "required",
               gather_equal ? "yes" : "NO — DIVERGED");

    report.metric("gather_bits_equal", gather_equal ? 1.0 : 0.0, 1.0,
                  1.0);
    report.wallClockRatio("gather", gather_ratio);

    // The kernel-layer counters accumulated by the runs above land in
    // the report's telemetry snapshot.
    numerics::noteGatherRows(kGathers * static_cast<std::uint64_t>(
                                 kReps * 2)); // bench drives kernels
                                              // directly, so note here
    numerics::publishNumericsMetrics(metrics);
    report.attachTelemetry(&metrics);
    return 0;
}
