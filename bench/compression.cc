/**
 * @file
 * Reproduces the Section 3.3 compression findings with the real
 * codecs: rANS reaches ~50% on INT8 weight spectra but does little
 * for FP16; the LZ (GZIP-analog) engine raises effective PCIe
 * bandwidth for input-heavy retrieval models on congested links.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "host/compression.h"
#include "host/pcie.h"
#include "sim/random.h"
#include "tensor/dtype.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 3.3 — ANS weight compression & PCIe GZIP",
                  "Real rANS and LZ codecs on synthetic weight and "
                  "input-feature bytes (all round-trip verified).");

    Rng rng(9);
    bench::section("rANS on weight tensors (1 MB each)");
    std::printf("  %-36s %10s %12s\n", "payload", "ratio",
                "entropy b/B");
    auto report = [&](const char *label, const ByteBuffer &data) {
        const ByteBuffer c = RansCodec::compress(data);
        const bool ok = RansCodec::decompress(c) == data;
        const double ratio = 100.0 * static_cast<double>(c.size()) /
            static_cast<double>(data.size());
        std::printf("  %-36s %9.1f%% %12.2f %s\n", label, ratio,
                    RansCodec::entropyBitsPerByte(data),
                    ok ? "" : "ROUND-TRIP FAILED");
        return ratio;
    };

    ByteBuffer int8_narrow(1 << 20);
    for (auto &b : int8_narrow)
        b = static_cast<std::uint8_t>(static_cast<std::int8_t>(
            std::clamp(rng.gaussian(0.0, 4.0), -127.0, 127.0)));
    const double narrow_ratio =
        report("INT8 weights, narrow spectrum", int8_narrow);

    ByteBuffer int8_wide(1 << 20);
    for (auto &b : int8_wide)
        b = static_cast<std::uint8_t>(static_cast<std::int8_t>(
            std::clamp(rng.gaussian(0.0, 18.0), -127.0, 127.0)));
    report("INT8 weights, wide spectrum", int8_wide);

    ByteBuffer fp16(1 << 20);
    std::vector<float> fp16_src(fp16.size() / 2);
    for (float &v : fp16_src)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    std::vector<std::uint16_t> fp16_bits(fp16_src.size());
    convertBuffer(fp16_src.data(), fp16_bits.data(), fp16_src.size(),
                  DType::FP16);
    std::memcpy(fp16.data(), fp16_bits.data(), fp16.size());
    const double fp16_ratio = report("FP16 weights", fp16);

    bench::row("INT8 weight savings", "up to 50%",
               "see narrow-spectrum row");
    bench::row("FP16 compresses poorly", "yes",
               "see FP16 row (mantissa bytes near 8 b/B)");

    bench::section("LZ (GZIP analog) on batched input features");
    ByteBuffer features(1 << 20);
    for (std::size_t i = 0; i < features.size(); ++i) {
        features[i] = static_cast<std::uint8_t>((i % 128) * 3);
        if (rng.chance(0.02))
            features[i] ^= 0xff;
    }
    const ByteBuffer lz = LzCodec::compress(features);
    const double lz_ratio = static_cast<double>(lz.size()) /
        static_cast<double>(features.size());
    const bool lz_ok = LzCodec::decompress(lz) == features;
    std::printf("  repeated feature rows: %.1f%% of original %s\n",
                lz_ratio * 100.0, lz_ok ? "" : "ROUND-TRIP FAILED");

    bench::section("effective PCIe bandwidth (congested uplink)");
    PcieLink congested(PcieConfig{.generation = 5, .lanes = 2});
    const Bytes batch_bytes = 256ull << 20;
    const Tick raw = congested.transferTime(batch_bytes);
    const Tick comp = congested.compressedTransferTime(
        batch_bytes,
        static_cast<Bytes>(batch_bytes * lz_ratio),
        gbPerSec(25.0));
    bench::row("decompression engine rate", "up to 25 GB/s",
               "25 GB/s modeled");
    bench::row("input transfer speedup on congested link",
               "alleviates PCIe congestion (retrieval models)",
               bench::fmt("%.2fx", static_cast<double>(raw) / comp));

    bench::Report rep("compression");
    rep.metric("rans_int8_narrow_ratio_pct", narrow_ratio, 40.0, 60.0,
               "%");
    rep.metric("rans_fp16_ratio_pct", fp16_ratio, "%");
    rep.metric("lz_feature_ratio_pct", lz_ratio * 100.0, "%");
    rep.metric("pcie_congested_speedup",
               static_cast<double>(raw) / static_cast<double>(comp),
               "x");
    return 0;
}
