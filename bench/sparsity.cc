/**
 * @file
 * Reproduces the Section 3.3 sparsity finding: 2:4 weight sparsity
 * doubles effective FLOPS on the DPE, but pruning the largest (most
 * quality-critical) weight matrices loses real signal energy, which
 * is why production models rarely use it.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/kernel_cost_model.h"
#include "pe/dpe.h"
#include "tensor/quantize.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 3.3 — 2:4 weight sparsity",
                  "Throughput doubles; accuracy risk on dense "
                  "weight spectra is what blocks adoption.");

    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);

    bench::section("throughput (2048^3, compute-bound)");
    const FcShape big{2048, 2048, 2048};
    const KernelTime dense = km.fc(big, {});
    FcOptions sp;
    sp.sparse_24 = true;
    const KernelTime sparse = km.fc(big, sp);
    bench::row("2:4 speedup", "up to 2x",
               bench::fmt("%.2fx", static_cast<double>(dense.total) /
                                       sparse.total));

    bench::section("accuracy risk: energy lost by 2:4 pruning");
    Rng rng(5);
    std::printf("  %-34s %12s %12s\n", "weight distribution",
                "L2 retained", "GEMM SQNR");
    struct Case
    {
        const char *label;
        double sparse_fraction; // natural zeros before pruning
    } cases[] = {
        {"dense Gaussian (typical large FC)", 0.0},
        {"30% naturally sparse", 0.3},
        {"60% naturally sparse", 0.6},
    };
    DotProductEngine dpe;
    Tensor x(Shape{64, 256}, DType::FP32);
    x.fillGaussian(rng);
    for (const auto &[label, frac] : cases) {
        Tensor w(Shape{256, 128}, DType::FP32);
        w.fillGaussian(rng, 0.0f, 0.1f);
        for (std::int64_t i = 0; i < w.numel(); ++i) {
            if (rng.chance(frac))
                w.set(i, 0.0f);
        }
        Tensor pruned = w;
        const double retained = applyTwoFourSparsity(pruned);
        const Tensor ref = dpe.gemm(x, w, DType::FP32);
        const Tensor out = dpe.gemm(x, pruned, DType::FP32);
        std::printf("  %-34s %11.1f%% %9.1f dB\n", label,
                    retained * 100.0, sqnrDb(ref, out));
    }
    bench::row("why production avoids it",
               "largest matrices lack sparsity -> quality loss",
               "dense spectra retain <90% energy (first row)");

    bench::Report rep("sparsity");
    rep.metric("sparse_24_speedup",
               static_cast<double>(dense.total) /
                   static_cast<double>(sparse.total),
               1.5, 2.0, "x");
    return 0;
}
