/**
 * @file
 * Reproduces the Section 3.1 generational claim: MTIA 2i's
 * enhancements "triple overall performance" versus MTIA 1 with only a
 * 1.13x die-area increase — measured here as model-level throughput
 * of the zoo on both chip configurations.
 */

#include <cmath>
#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "models/model_zoo.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 3.1 — MTIA 2i vs MTIA 1, model level",
                  "Same models, both chip generations, full cost "
                  "model (placement, ISA, launch paths).");

    Device gen2(ChipConfig::mtia2i());
    Device gen1(ChipConfig::mtia1());

    std::printf("  %-14s %12s %12s %9s\n", "model", "MTIA 1 QPS",
                "MTIA 2i QPS", "uplift");
    double geo = 1.0;
    int n = 0;
    auto eval = [&](ModelInfo model) {
        optimizeGraph(model.graph);
        const double q1 = GraphCostModel(gen1)
                              .evaluate(model.graph, model.batch)
                              .qps;
        const double q2 = GraphCostModel(gen2)
                              .evaluate(model.graph, model.batch)
                              .qps;
        std::printf("  %-14s %12.0f %12.0f %8.2fx\n",
                    model.name.c_str(), q1, q2, q2 / q1);
        geo *= q2 / q1;
        ++n;
    };
    eval(buildRetrievalModel(1024));
    eval(buildEarlyStageModel(512));
    eval(buildLateStageModel(256));
    for (ModelInfo &m : figure6Models())
        eval(std::move(m));

    geo = std::pow(geo, 1.0 / n);
    bench::section("paper vs measured");
    bench::row("peak-performance uplift (compute-bound)", "~3x",
               "2.1x - 2.9x on compute-heavy models above");
    bench::row("model-level geomean", "between the 1.16x DRAM and "
               "3x compute uplifts",
               bench::fmt("%.2fx across ", geo) + std::to_string(n) +
                   " models");
    bench::row("die area increase", "1.13x", "not modeled (physical)");

    bench::Report report("generational_uplift");
    report.metric("model_geomean_uplift", geo, 1.16, 3.0, "x");
    report.metric("models_evaluated", static_cast<double>(n));
    return 0;
}
