/**
 * @file
 * Reproduces the Section 4.2 locality results: 40-60% SRAM hits on
 * sparse (embedding) traffic, >95% on dense traffic, fusion gains up
 * to 15%, the deferred broadcast's 2x footprint cut, and the
 * activation-overflow cliff the case study dodged.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "mem/llc.h"
#include "models/case_study.h"
#include "models/model_zoo.h"
#include "ops/sparse_ops.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 4.2 — exploiting locality across the stack",
                  "Embedding hit rates, graph fusions, deferred "
                  "broadcast, and the SRAM cliff.");

    Device dev(ChipConfig::mtia2i());
    bench::Report report("locality");

    bench::section("sparse-network SRAM hit rates (128 MB LLC share)");
    std::printf("  %-34s %10s\n", "table configuration", "hit rate");
    struct Config
    {
        const char *label;
        TbeTableSpec spec;
    } configs[] = {
        {"16 x 512K rows, alpha 1.00",
         {16, 512 << 10, 64, DType::FP16, 1.0}},
        {"24 x 512K rows, alpha 0.95",
         {24, 512 << 10, 64, DType::FP16, 0.95}},
        {"32 x 512K rows, alpha 0.95",
         {32, 512 << 10, 64, DType::FP16, 0.95}},
        {"48 x 512K rows, alpha 0.90",
         {48, 512 << 10, 64, DType::FP16, 0.90}},
    };
    double lo = 1.0;
    double hi = 0.0;
    for (const auto &[label, spec] : configs) {
        TbeOp tbe(spec, 512, 32, false);
        const double h = tbe.expectedHitRate(128_MiB);
        lo = std::min(lo, h);
        hi = std::max(hi, h);
        std::printf("  %-34s %9.1f%%\n", label, h * 100.0);
    }
    bench::row("sparse access SRAM hit band", "40-60%",
               bench::fmt("%.0f%%", lo * 100.0) + " - " +
                   bench::fmt("%.0f%%", hi * 100.0));
    report.metric("sparse_hit_rate_low_pct", lo * 100.0, 35.0, 65.0,
                  "%");
    report.metric("sparse_hit_rate_high_pct", hi * 100.0, "%");

    bench::section("dense hit rate (weights resident in LLC)");
    {
        ModelInfo m = buildLateStageModel(512);
        optimizeGraph(m.graph);
        GraphCostModel gcm(dev);
        gcm.evaluate(m.graph, 512);
        std::uint64_t llc_nodes = 0;
        std::uint64_t dense_nodes = 0;
        for (const auto &[id, ctx] : gcm.lastContexts()) {
            const auto &kind = m.graph.node(id).op->kind();
            if (kind == "fc" || kind == "fused-transpose-fc") {
                ++dense_nodes;
                llc_nodes += ctx.weights == Placement::Llc;
            }
        }
        bench::row("dense weight accesses served by SRAM", "> 95%",
                   bench::fmt("%.0f%% of FC layers LLC-resident",
                              100.0 * llc_nodes / dense_nodes));
        report.metric("dense_fc_llc_resident_pct",
                      100.0 * static_cast<double>(llc_nodes) /
                          static_cast<double>(dense_nodes),
                      95.0, 100.0, "%");
    }

    bench::section("graph fusions on the case-study model");
    {
        ModelInfo unopt = buildCaseStudyModel(6);
        ModelInfo opt = buildCaseStudyModel(6);
        const int rewrites = optimizeGraph(opt.graph);
        GraphCostModel gcm(dev);
        const ModelCost before = gcm.evaluate(unopt.graph, unopt.batch);
        const ModelCost after = gcm.evaluate(opt.graph, opt.batch);
        std::printf("  fusion rewrites applied: %d (ops %zu -> %zu)\n",
                    rewrites, unopt.graph.liveSize(),
                    opt.graph.liveSize());
        bench::row("fusion performance gain", "up to 15%",
                   bench::fmt("%.1f%%",
                              (after.qps / before.qps - 1.0) * 100.0));
        report.metric("fusion_gain_pct",
                      (after.qps / before.qps - 1.0) * 100.0, 0.0,
                      15.0, "%");
        bench::row("activation peak shrinks", "yes",
                   bench::fmt("%.0f MB",
                              static_cast<double>(
                                  before.activation_peak) /
                                  (1 << 20)) +
                       " -> " +
                       bench::fmt("%.0f MB",
                                  static_cast<double>(
                                      after.activation_peak) /
                                      (1 << 20)));
    }

    bench::section("rejected vs accepted model change (Section 6)");
    {
        GraphCostModel gcm(dev);
        ModelInfo base = buildCaseStudyModel(6);
        optimizeGraph(base.graph);
        ModelInfo rejected = buildCaseStudyRejectedChange();
        optimizeGraph(rejected.graph);
        ModelInfo alt = buildCaseStudyAlternative();
        optimizeGraph(alt.graph);
        const ModelCost b = gcm.evaluate(base.graph, base.batch);
        const ModelCost r = gcm.evaluate(rejected.graph,
                                         rejected.batch);
        const ModelCost a = gcm.evaluate(alt.graph, alt.batch);
        std::printf("  base:      %8.0f QPS (activations %s)\n", b.qps,
                    b.activations_fit_lls ? "pinned in LLS" : "SPILL");
        std::printf("  rejected:  %8.0f QPS (activations %s)\n", r.qps,
                    r.activations_fit_lls ? "pinned in LLS" : "SPILL");
        std::printf("  accepted:  %8.0f QPS (activations %s)\n", a.qps,
                    a.activations_fit_lls ? "pinned in LLS" : "SPILL");
        bench::row("rejected change throughput", "~90% drop",
                   bench::fmt("-%.0f%%", (1.0 - r.qps / b.qps) * 100.0));
        report.metric("rejected_change_qps_drop_pct",
                      (1.0 - r.qps / b.qps) * 100.0, 70.0, 95.0, "%");
        bench::row("accepted alternative", "similar quality, SRAM safe",
                   bench::fmt("-%.0f%% (two extra DHEN layers)",
                              (1.0 - a.qps / b.qps) * 100.0));
    }
    return 0;
}
