/**
 * @file
 * Reproduces the Section 5.1 memory-error investigation: fleet
 * telemetry (24% of 1,700 servers), region-sensitivity injection, and
 * the ECC decision (10-15% throughput penalty vs operating blind).
 */

#include <algorithm>
#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "core/check.h"
#include "chip/kernel_cost_model.h"
#include "core/parallel.h"
#include "fleet/memory_error_study.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "mem/ecc.h"
#include "models/model_zoo.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 5.1 — trade-offs in handling memory errors",
                  "Fleet telemetry, injection campaign, and the "
                  "controller-ECC decision.");

    // --- Fleet telemetry.
    LpddrConfig cfg;
    cfg.peak_bandwidth = gbPerSec(204.8);
    cfg.bit_error_rate = 1.9e-20;
    LpddrChannel channel(cfg);

    // Run the Monte-Carlo sections twice — once pinned to one lane,
    // once at the configured lane count — for the wall-clock speedup
    // ratio. The fork-based substreams make both passes byte-identical
    // (checked below); the parallel pass's results are reported.
    double serial_s = 0.0;
    FleetErrorReport serial_fleet;
    std::vector<InjectionReport> serial_regions;
    {
        ScopedParallelism one(1);
        MemoryErrorStudy study(61);
        bench::WallTimer t;
        serial_fleet = study.sampleFleet(channel, 1700, 90.0, 64_GiB);
        serial_regions = study.injectAllRegions(3000);
        serial_s = t.seconds();
    }
    MemoryErrorStudy study(61);
    bench::WallTimer parallel_timer;
    const FleetErrorReport fleet =
        study.sampleFleet(channel, 1700, 90.0, 64_GiB);
    const std::vector<InjectionReport> regions =
        study.injectAllRegions(3000);
    const double parallel_s = parallel_timer.seconds();
    MTIA_CHECK_EQ(fleet.servers_with_errors,
                  serial_fleet.servers_with_errors)
        << ": fleet sample must not depend on the lane count";
    for (std::size_t i = 0; i < regions.size(); ++i) {
        MTIA_CHECK_EQ(regions[i].corrupted, serial_regions[i].corrupted)
            << ": injection campaign must not depend on the lane count";
    }

    bench::section("fleet telemetry (1,700 servers, 90 days)");
    bench::row("servers with ECC errors", "24%",
               bench::fmt("%.0f%%",
                          fleet.serverErrorFraction() * 100.0));
    bench::row("affected servers with a single bad card", "typical",
               bench::fmt("%.0f%%",
                          100.0 * fleet.single_card_servers /
                              std::max(1u,
                                       fleet.servers_with_errors)));

    // --- Injection campaign.
    bench::section("injection campaign (3,000 flips per region)");
    std::printf("  %-18s %8s %10s %8s %14s\n", "region", "benign",
                "corrupted", "NaN", "out-of-bounds");
    for (const InjectionReport &r : regions) {
        std::printf("  %-18s %7.1f%% %9.1f%% %7.1f%% %13.1f%%\n",
                    memRegionName(r.region).c_str(),
                    100.0 * r.benign / r.trials,
                    100.0 * r.corrupted / r.trials,
                    100.0 * r.nan / r.trials,
                    100.0 * r.out_of_bounds / r.trials);
    }
    bench::row("TBE index flips", "NaNs/corruption, high probability",
               "mostly crash-equivalent (see table)");

    // --- SECDED behaviour (the codec is real).
    bench::section("SECDED(72,64) codec sanity");
    Rng rng(5);
    int corrected = 0;
    for (int t = 0; t < 10000; ++t) {
        EccCodeword cw = EccCodec::encode(rng.next());
        cw.flipBit(static_cast<unsigned>(rng.below(72)));
        std::uint64_t data = 0;
        corrected += EccCodec::decode(cw, data) ==
            EccResult::CorrectedSingle;
    }
    bench::row("single-bit correction", "100%",
               bench::fmt("%.2f%%", corrected / 100.0));

    // --- The ECC decision: end-to-end penalty.
    bench::section("end-to-end cost of controller ECC");
    // A bandwidth-sensitive early-stage model feels the penalty most.
    ModelInfo model = buildEarlyStageModel(2048);
    optimizeGraph(model.graph);

    Device with(ChipConfig::mtia2i());
    Device without(ChipConfig::mtia2i());
    without.dram().setEccMode(EccMode::None);
    const ModelCost c_with =
        GraphCostModel(with).evaluate(model.graph, model.batch);
    const ModelCost c_without =
        GraphCostModel(without).evaluate(model.graph, model.batch);
    bench::row("throughput penalty of enabling ECC", "10-15%",
               bench::fmt("%.1f%%",
                          (1.0 - c_with.qps / c_without.qps) * 100.0));
    bench::row("decision", "enable ECC despite the penalty",
               "enabled by default in ChipConfig::mtia2i()");

    bench::Report report("memory_errors");
    report.metric("fleet_server_error_pct",
                  fleet.serverErrorFraction() * 100.0, 20.0, 28.0,
                  "%");
    report.metric("secded_single_bit_correction_pct",
                  corrected / 100.0, 100.0, 100.0, "%");
    report.metric("ecc_throughput_penalty_pct",
                  (1.0 - c_with.qps / c_without.qps) * 100.0, 10.0,
                  15.0, "%");
    report.wallClockSpeedup(parallelLanes(),
                            serial_s / std::max(parallel_s, 1e-9));
    return 0;
}
