/**
 * @file
 * Reproduces the Section 3.4 server-design findings: 24 accelerators
 * per Grand Teton server amortize host cost but make host DRAM
 * bandwidth the bottleneck for low-complexity models; eliminating
 * input copies and offloading the FP32->FP16 cast halves the
 * transferred bytes.
 */

#include <cstdio>

#include "autotune/sharding.h"
#include "bench_report.h"
#include "bench_util.h"
#include "chip/device.h"
#include "host/pcie.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 3.4 — the 24-accelerator server",
                  "Per-accelerator host resources and the input-"
                  "pipeline optimizations.");

    const ServerTopology topo;
    bench::section("per-accelerator host share (2 sockets, 24 chips)");
    const double cores = 96.0 * 2 / topo.totalChips();
    const double dram_gb = 1150.0 * 2 / topo.totalChips();
    const double dram_bw = 460.0 * 2 / topo.totalChips();
    const double nic_gbps = 2.0 * 200.0 * 2 / 8.0 / topo.totalChips();
    bench::row("CPU cores", "8", bench::fmt("%.0f", cores));
    bench::row("host DRAM", "96 GB", bench::fmt("%.0f GB", dram_gb));
    bench::row("host DRAM bandwidth", "38 GB/s",
               bench::fmt("%.1f GB/s", dram_bw));
    bench::row("Ethernet", "4.17 GB/s",
               bench::fmt("%.2f GB/s", nic_gbps));

    bench::section("input pipeline: FP32->FP16 cast offload");
    // A low-complexity model at 4K batch, 512 FP32 features/sample:
    // bytes the host touches per batch, before and after the
    // copy-elimination + device-side cast.
    const double batch = 4096.0;
    const double feat_bytes_fp32 = batch * 512 * 4;
    const double naive = feat_bytes_fp32 * 3; // copy, cast, stage
    const double optimized = feat_bytes_fp32; // zero-copy, cast on dev
    const double host_bw = dram_bw * 1e9;
    bench::row("host bytes touched per batch", "halved or better",
               bench::fmt("%.0f MB -> ", naive / 1e6) +
                   bench::fmt("%.0f MB", optimized / 1e6));
    bench::row("PCIe bytes per batch", "halved (FP16 on the wire)",
               bench::fmt("%.0f MB -> ", feat_bytes_fp32 / 1e6) +
                   bench::fmt("%.0f MB", feat_bytes_fp32 / 2e6));
    const double batches_naive = host_bw / naive;
    const double batches_opt = host_bw / optimized;
    bench::row("host-DRAM-limited batch rate", "bottleneck relieved",
               bench::fmt("%.0f -> ", batches_naive) +
                   bench::fmt("%.0f batches/s per accelerator",
                              batches_opt));

    bench::section("NUMA-aware scheduling");
    ShardingPlanner planner(ChipConfig::mtia2i());
    std::vector<bool> occupied(24, false);
    const ShardingPlan plan = planner.plan(200_GiB, 8_GiB, occupied);
    std::printf("  200 GB model -> %u shards on chips [", plan.shards);
    for (std::size_t i = 0; i < plan.chips.size(); ++i)
        std::printf("%s%u", i ? ", " : "", plan.chips[i]);
    std::printf("] (same socket / PCIe switch)\n");

    bench::Report report("server_host");
    report.metric("host_cores_per_accelerator", cores, 7.5, 8.5);
    report.metric("host_dram_gb_per_accelerator", dram_gb, 90.0, 100.0,
                  "GB");
    report.metric("host_dram_bw_gbps_per_accelerator", dram_bw, 36.0,
                  40.0, "GB/s");
    report.metric("host_bytes_reduction_factor", naive / optimized,
                  2.0, 4.0, "x");
    report.metric("batch_rate_uplift", batches_opt / batches_naive,
                  "x");
    report.metric("model_200gb_shards",
                  static_cast<double>(plan.shards));
    return 0;
}
