/**
 * @file
 * google-benchmark microbenchmarks of the substrate primitives: the
 * rANS and LZ codecs, SHA-256, the SECDED codec, the LLC model, FP16
 * conversion, the functional DPE GEMM, and KD-tree ANN lookup.
 */

#include <benchmark/benchmark.h>

#include "autotune/perf_database.h"
#include "bench_report.h"
#include "host/compression.h"
#include "host/sha256.h"
#include "mem/ecc.h"
#include "mem/llc.h"
#include "pe/dpe.h"
#include "sim/random.h"
#include "tensor/dtype.h"
#include "tensor/tensor.h"

namespace mtia {
namespace {

ByteBuffer
weightBytes(std::size_t n, double sigma)
{
    Rng rng(1);
    ByteBuffer data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(static_cast<std::int8_t>(
            std::clamp(rng.gaussian(0.0, sigma), -127.0, 127.0)));
    return data;
}

void
BM_RansCompress(benchmark::State &state)
{
    const ByteBuffer data =
        weightBytes(static_cast<std::size_t>(state.range(0)), 8.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(RansCodec::compress(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_RansCompress)->Arg(64 << 10)->Arg(1 << 20);

void
BM_RansRoundTrip(benchmark::State &state)
{
    const ByteBuffer data =
        weightBytes(static_cast<std::size_t>(state.range(0)), 8.0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            RansCodec::decompress(RansCodec::compress(data)));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_RansRoundTrip)->Arg(64 << 10);

void
BM_LzCompress(benchmark::State &state)
{
    Rng rng(2);
    ByteBuffer data(static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>((i % 64) * 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(LzCodec::compress(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_LzCompress)->Arg(1 << 20);

void
BM_Sha256(benchmark::State &state)
{
    const ByteBuffer data =
        weightBytes(static_cast<std::size_t>(state.range(0)), 20.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 20);

void
BM_EccEncodeDecode(benchmark::State &state)
{
    Rng rng(3);
    std::uint64_t x = rng.next();
    for (auto _ : state) {
        EccCodeword cw = EccCodec::encode(x);
        std::uint64_t out = 0;
        benchmark::DoNotOptimize(EccCodec::decode(cw, out));
        x = x * 6364136223846793005ull + 1;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EccEncodeDecode);

void
BM_LlcZipfAccess(benchmark::State &state)
{
    LlcModel llc(
        {.capacity = 32_MiB, .line_size = 128, .associativity = 16});
    Rng rng(4);
    ZipfSampler zipf(1 << 20, 0.9);
    for (auto _ : state)
        benchmark::DoNotOptimize(llc.access(zipf.sample(rng) * 128));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LlcZipfAccess);

void
BM_Fp16Conversion(benchmark::State &state)
{
    Rng rng(5);
    float f = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        // This bench measures the per-element path on purpose.
        benchmark::DoNotOptimize(
            fp16BitsToFp32(fp32ToFp16Bits(f))); // sim-lint: allow(scalar-hot-loop) — measures the scalar path on purpose
        f += 0.001f;
    }
}
BENCHMARK(BM_Fp16Conversion);

void
BM_DpeGemmFunctional(benchmark::State &state)
{
    Rng rng(6);
    const auto n = state.range(0);
    Tensor a(Shape{n, n}, DType::FP32);
    Tensor b(Shape{n, n}, DType::FP32);
    a.fillGaussian(rng);
    b.fillGaussian(rng);
    DotProductEngine dpe;
    for (auto _ : state)
        benchmark::DoNotOptimize(dpe.gemm(a, b, DType::FP16));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_DpeGemmFunctional)->Arg(32)->Arg(64);

void
BM_KdTreeNearest(benchmark::State &state)
{
    Rng rng(7);
    std::vector<ShapeKey> pts(1000);
    for (auto &p : pts)
        for (auto &x : p)
            x = rng.uniform(0.0, 16.0);
    KdTree tree(pts);
    ShapeKey q{8.0, 8.0, 8.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.nearest(q));
        q[0] += 0.001;
        if (q[0] > 16.0)
            q[0] = 0.0;
    }
}
BENCHMARK(BM_KdTreeNearest);

} // namespace

/**
 * google-benchmark timings are wall-clock and machine-dependent, so
 * the machine-readable report records only deterministic functional
 * results of the same primitives.
 */
void
emitMicroKernelReport()
{
    bench::Report report("micro_kernels");

    const ByteBuffer weights = weightBytes(1 << 20, 8.0);
    const ByteBuffer rans = RansCodec::compress(weights);
    report.metric("rans_weight_ratio_pct",
                  100.0 * static_cast<double>(rans.size()) /
                      static_cast<double>(weights.size()),
                  "%");
    report.metric("rans_round_trip_ok",
                  RansCodec::decompress(rans) == weights ? 1.0 : 0.0,
                  1.0, 1.0);

    ByteBuffer features(1 << 20);
    for (std::size_t i = 0; i < features.size(); ++i)
        features[i] = static_cast<std::uint8_t>((i % 64) * 3);
    const ByteBuffer lz = LzCodec::compress(features);
    report.metric("lz_feature_ratio_pct",
                  100.0 * static_cast<double>(lz.size()) /
                      static_cast<double>(features.size()),
                  "%");
    report.metric("lz_round_trip_ok",
                  LzCodec::decompress(lz) == features ? 1.0 : 0.0, 1.0,
                  1.0);

    Rng rng(3);
    int corrected = 0;
    const int trials = 1000;
    for (int t = 0; t < trials; ++t) {
        EccCodeword cw = EccCodec::encode(rng.next());
        cw.flipBit(static_cast<unsigned>(rng.below(72)));
        std::uint64_t data = 0;
        corrected +=
            EccCodec::decode(cw, data) == EccResult::CorrectedSingle;
    }
    report.metric("secded_single_bit_correction_pct",
                  100.0 * corrected / trials, 100.0, 100.0, "%");
}

} // namespace mtia

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    mtia::emitMicroKernelReport();
    return 0;
}
