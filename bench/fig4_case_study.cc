/**
 * @file
 * Regenerates Figure 4: the eight-month co-design trajectory of the
 * Section 6 case-study model, from an initially inferior ~50% of the
 * GPU baseline's Perf/TCO to a final ~180%, across three model
 * variants (the figure's multiple lines). Each point re-evaluates the
 * model as it existed that month with exactly the optimizations that
 * had landed.
 */

#include <cstdio>

#include "baselines/comparison.h"
#include "bench_report.h"
#include "bench_util.h"
#include "graph/fusion.h"
#include "models/case_study.h"
#include "serving/serving_sim.h"

using namespace mtia;

namespace {

/** Throughput multiplier of TBE consolidation, measured by the same
 * serving DES that Figure 5 uses. */
double
consolidationGain()
{
    ServingModelParams split;
    split.remote_jobs_per_shard = 2;
    ServingModelParams merged = split;
    merged.remote_jobs_per_shard = 1;
    const Tick dur = fromSeconds(40.0);
    const double a =
        ServingSimulator(split).maxQpsAtSlo(5.0, 90.0, dur);
    const double b =
        ServingSimulator(merged).maxQpsAtSlo(5.0, 90.0, dur);
    return a == 0.0 ? 1.0 : b / a;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 4 — continuous optimization of a key ranking model",
        "Perf/TCO relative to the GPU baseline across the eight-month "
        "porting effort (three model variants).");

    const double tbe_gain = consolidationGain();
    std::printf("(TBE-consolidation gain measured by the Fig.5 DES: "
                "%.2fx)\n\n", tbe_gain);

    const std::vector<double> variants = {0.92, 1.0, 1.08};
    std::printf("%-5s %-46s", "month", "optimization landed");
    for (double v : variants)
        std::printf("  var%.2f", v);
    std::printf("   MF/sample\n");

    double first_ratio = 0.0;
    double final_ratio = 0.0;
    for (const CaseStudyStage &stage : caseStudyStages()) {
        std::printf("%-5d %-46s", stage.month, stage.label.c_str());
        double mf = 0.0;
        for (double scale : variants) {
            ModelInfo model = buildCaseStudyModel(stage.month, scale);
            if (stage.fusions) {
                fuseVerticalFcActivation(model.graph);
                fuseSiblingTransposeFc(model.graph);
                batchLayerNormsHorizontally(model.graph);
                simplifyMhaLayouts(model.graph);
            }
            if (stage.defer_ibb)
                deferInBatchBroadcast(model.graph);
            model.graph.validate();

            Device dev(ChipConfig::mtia2i());
            dev.setFrequencyGhz(stage.frequency_ghz);
            GraphCostOptions opt;
            opt.memory_aware_schedule = stage.memory_aware;
            opt.coordinated_loading = stage.coordinated;
            // Kernel-variant selection brings placement-aware
            // variants: before it lands, activations are not pinned.
            opt.tuned_placement = stage.coordinated;

            ComparisonHarness harness(dev);
            ModelComparison cmp = harness.compare(model, opt);
            double ratio = cmp.perfPerTcoRatio();
            if (stage.tbe_consolidated)
                ratio *= tbe_gain;
            std::printf("  %6.2f", ratio);
            if (scale == 1.0) {
                mf = cmp.mflops_per_sample;
                if (stage.month == 0)
                    first_ratio = ratio;
                final_ratio = ratio;
            }
        }
        std::printf("  %9.0f\n", mf);
    }

    bench::section("paper vs measured (primary variant)");
    bench::row("initial Perf/TCO vs GPU", "~0.5 (inferior)",
               bench::fmt("%.2f", first_ratio));
    bench::row("final Perf/TCO vs GPU", "~1.8 (superior)",
               bench::fmt("%.2f", final_ratio));
    bench::row("complexity growth", "140 -> 940 MFLOPS/sample",
               "see MF/sample column");

    bench::Report report("fig4_case_study");
    report.metric("initial_perf_per_tco_ratio", first_ratio, 0.4, 0.6,
                  "x");
    report.metric("final_perf_per_tco_ratio", final_ratio, 1.6, 2.4,
                  "x");
    report.metric("tbe_consolidation_gain", tbe_gain, "x");
    return 0;
}
