/**
 * @file
 * Regenerates Table 1: the production-model classes, their sizes and
 * complexities, from the synthetic model zoo.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "models/model_zoo.h"

using namespace mtia;

namespace {

void
printModel(const ModelInfo &m, const char *size_band,
           const char *complexity_band)
{
    std::printf("  %-16s %8.1f GB embeddings (paper: %s)   "
                "%8.2f MFLOPS/sample (paper: %s)   batch %lld\n",
                m.name.c_str(),
                static_cast<double>(m.embedding_bytes) / (1ull << 30),
                size_band, m.mflopsPerSample(), complexity_band,
                static_cast<long long>(m.batch));
}

} // namespace

int
main()
{
    bench::banner("Table 1 — production model classes",
                  "Model size (90% embeddings) and per-sample "
                  "complexity across the recommendation funnel.");

    printModel(buildRetrievalModel(), "50-100 GB", "0.001-0.01 GF");
    printModel(buildEarlyStageModel(), "100-300 GB", "0.01-0.1 GF");
    printModel(buildLateStageModel(), "100-300 GB", "0.2-2 GF");

    const ModelInfo hstu = buildHstuModel();
    std::printf("  %-16s %8.1f GB embeddings (paper: 1-2 TB class)   "
                "ragged attention over ~%.0f-event histories\n",
                hstu.name.c_str(),
                static_cast<double>(hstu.embedding_bytes) /
                    (1ull << 30),
                256.0);

    bench::section("funnel invariant");
    const double r = buildRetrievalModel().mflopsPerSample();
    const double e = buildEarlyStageModel().mflopsPerSample();
    const double l = buildLateStageModel().mflopsPerSample();
    bench::row("complexity ladder retrieval < early < late",
               "monotone",
               r < e && e < l ? "monotone (reproduced)" : "VIOLATED");

    bench::Report report("table1_models");
    // The zoo targets the paper's complexity ladder shape, not its
    // absolute MFLOPS, so only retrieval carries a paper band here.
    report.metric("retrieval_mflops_per_sample", r, 1.0, 10.0, "MF");
    report.metric("early_stage_mflops_per_sample", e, "MF");
    report.metric("late_stage_mflops_per_sample", l, "MF");
    report.metric("complexity_ladder_monotone",
                  r < e && e < l ? 1.0 : 0.0);
    report.metric(
        "hstu_embedding_gb",
        static_cast<double>(hstu.embedding_bytes) / (1ull << 30), "GB");
    return 0;
}
