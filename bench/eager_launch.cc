/**
 * @file
 * Reproduces the Section 3.3 eager-mode numbers: WQ broadcast plus
 * per-PE Work Queue Engines launch jobs in under 1 us and replace
 * them in under 0.5 us — as much as 80% faster than the MTIA 1-era
 * sequential descriptor path.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/device.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 3.3 — eager-mode job launch",
                  "Work-queue broadcast + per-PE WQE vs sequential "
                  "descriptor writes.");

    Device mtia2i(ChipConfig::mtia2i());
    Device mtia1(ChipConfig::mtia1());

    bench::section("launch path timing (64 PEs)");
    std::printf("  MTIA 2i launch:  %6.2f us\n",
                toMicros(mtia2i.jobLaunchTime()));
    std::printf("  MTIA 2i replace: %6.2f us\n",
                toMicros(mtia2i.jobReplaceTime()));
    std::printf("  MTIA 1  launch:  %6.2f us\n",
                toMicros(mtia1.jobLaunchTime()));

    const double reduction = 1.0 -
        static_cast<double>(mtia2i.jobLaunchTime()) /
            static_cast<double>(mtia1.jobLaunchTime());

    bench::section("paper vs measured");
    bench::row("job launch", "< 1 us",
               bench::fmt("%.2f us", toMicros(mtia2i.jobLaunchTime())));
    bench::row("job replace", "< 0.5 us",
               bench::fmt("%.2f us",
                          toMicros(mtia2i.jobReplaceTime())));
    bench::row("launch-time reduction vs old path", "as much as 80%",
               bench::fmt("%.0f%%", reduction * 100.0));

    bench::section("why eager mode pays: small-job amortization");
    for (double job_us : {5.0, 20.0, 100.0}) {
        const double eager_eff = job_us /
            (job_us + toMicros(mtia2i.jobLaunchTime()));
        const double old_eff =
            job_us / (job_us + toMicros(mtia1.jobLaunchTime()));
        std::printf("  %5.0f us kernels: device busy %5.1f%% (2i) vs "
                    "%5.1f%% (old path)\n",
                    job_us, eager_eff * 100.0, old_eff * 100.0);
    }

    bench::Report report("eager_launch");
    report.metric("job_launch_us", toMicros(mtia2i.jobLaunchTime()),
                  0.0, 1.0, "us");
    report.metric("job_replace_us", toMicros(mtia2i.jobReplaceTime()),
                  0.0, 0.5, "us");
    report.metric("launch_reduction_pct", reduction * 100.0, 60.0,
                  90.0, "%");
    return 0;
}
