/**
 * @file
 * Regenerates Figure 6: Perf/Watt and Perf/TCO (relative to the GPU
 * baseline) for the nine production models LC1-LC5 and HC1-HC4, plus
 * the fleet-average TCO reduction (the paper's headline 44%).
 */

#include <cstdio>

#include "baselines/comparison.h"
#include "bench_report.h"
#include "bench_util.h"
#include "graph/fusion.h"
#include "models/model_zoo.h"
#include "telemetry/telemetry.h"

using namespace mtia;

int
main()
{
    bench::banner("Figure 6 — Perf/Watt & Perf/TCO across nine models",
                  "LC = 15-105 MFLOPS/sample, HC = 480-1000; ratios "
                  "are MTIA 2i / GPU baseline.");

    Device dev(ChipConfig::mtia2i());
    ComparisonHarness harness(dev);

    std::printf("  %-6s %11s %7s %9s %10s %10s %12s\n", "model",
                "MF/sample", "batch", "perf/W", "perf/TCO",
                "TCO saved", "bottleneck");

    telemetry::MetricRegistry registry;
    bench::Report report("fig6_model_sweep");
    report.attachTelemetry(&registry);

    double sum_reduction = 0.0;
    double best_tco = 0.0;
    double worst_tco = 1e9;
    std::string best_name;
    std::string worst_name;
    int n = 0;
    for (ModelInfo &model : figure6Models()) {
        optimizeGraph(model.graph);
        const ModelComparison cmp = harness.compare(model);
        std::printf("  %-6s %11.1f %7lld %9.2f %10.2f %9.0f%% %12s\n",
                    cmp.model.c_str(), cmp.mflops_per_sample,
                    static_cast<long long>(model.batch),
                    cmp.perfPerWattRatio(), cmp.perfPerTcoRatio(),
                    cmp.tcoReduction() * 100.0,
                    model.mflopsPerSample() < 200 ? "memory/host"
                                                  : "compute/sram");
        report.metric("perf_per_tco_" + cmp.model,
                      cmp.perfPerTcoRatio(), "x");
        sum_reduction += cmp.tcoReduction();
        if (cmp.perfPerTcoRatio() > best_tco) {
            best_tco = cmp.perfPerTcoRatio();
            best_name = cmp.model;
        }
        if (cmp.perfPerTcoRatio() < worst_tco) {
            worst_tco = cmp.perfPerTcoRatio();
            worst_name = cmp.model;
        }
        ++n;
    }

    bench::section("paper vs measured");
    bench::row("fleet-average TCO reduction", "44%",
               bench::fmt("%.0f%%", sum_reduction / n * 100.0));
    bench::row("Perf/TCO easier to win than Perf/Watt", "yes",
               "yes (every row above)");
    bench::row("highest efficiency among models",
               "LC models (LC1, LC5 best)",
               "best: " + best_name + ", worst: " + worst_name);
    bench::row("batch-size effect", "LC1@4K beats LC2@512",
               "see LC1 vs LC2 rows");

    report.metric("fleet_avg_tco_reduction_pct",
                  sum_reduction / n * 100.0, 40.0, 48.0, "%");
    report.metric("best_perf_per_tco", best_tco, "x");
    report.metric("worst_perf_per_tco", worst_tco, "x");
    dev.exportTelemetry(registry, "mtia2i");
    return 0;
}
