/**
 * @file
 * Regenerates Figure 6: Perf/Watt and Perf/TCO (relative to the GPU
 * baseline) for the nine production models LC1-LC5 and HC1-HC4, plus
 * the fleet-average TCO reduction (the paper's headline 44%).
 */

#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "baselines/comparison.h"
#include "bench_report.h"
#include "bench_util.h"
#include "core/parallel.h"
#include "graph/fusion.h"
#include "models/model_zoo.h"
#include "telemetry/telemetry.h"

using namespace mtia;

namespace {

struct ModelRow
{
    ModelComparison cmp;
    std::int64_t batch = 0;
    double mflops = 0.0;
    // optional only because parallelMap default-constructs its result
    // slots; always engaged after the sweep.
    std::optional<Device> dev;
};

/**
 * One model per task: each owns its ModelInfo (optimizeGraph mutates
 * the graph) and a device clone (cost queries bump mutable traffic
 * counters). Rows land in model order, so output and report are
 * byte-identical at any MTIA_THREADS.
 */
std::vector<ModelRow>
sweepModels(const Device &dev)
{
    std::vector<ModelInfo> models = figure6Models();
    return parallelMap(models.size(), [&](std::size_t i) {
        ModelInfo &model = models[i];
        optimizeGraph(model.graph);
        ModelRow r;
        r.batch = model.batch;
        r.mflops = model.mflopsPerSample();
        r.dev.emplace(dev.cloneConfigured());
        ComparisonHarness harness(*r.dev);
        r.cmp = harness.compare(model);
        return r;
    });
}

} // namespace

int
main()
{
    bench::banner("Figure 6 — Perf/Watt & Perf/TCO across nine models",
                  "LC = 15-105 MFLOPS/sample, HC = 480-1000; ratios "
                  "are MTIA 2i / GPU baseline.");

    Device dev(ChipConfig::mtia2i());

    std::printf("  %-6s %11s %7s %9s %10s %10s %12s\n", "model",
                "MF/sample", "batch", "perf/W", "perf/TCO",
                "TCO saved", "bottleneck");

    telemetry::MetricRegistry registry;
    bench::Report report("fig6_model_sweep");
    report.attachTelemetry(&registry);

    // Speedup harness: rerun the identical sweep pinned to one lane
    // and compare wall time. Results come from the parallel pass; the
    // determinism guarantee makes both passes byte-identical anyway.
    double parallel_s = 0.0;
    std::vector<ModelRow> rows;
    {
        bench::WallTimer t;
        rows = sweepModels(dev);
        parallel_s = t.seconds();
    }
    double serial_s = 0.0;
    {
        ScopedParallelism one(1);
        bench::WallTimer t;
        (void)sweepModels(dev);
        serial_s = t.seconds();
    }

    double sum_reduction = 0.0;
    double best_tco = 0.0;
    double worst_tco = 1e9;
    std::string best_name;
    std::string worst_name;
    int n = 0;
    for (const ModelRow &r : rows) {
        const ModelComparison &cmp = r.cmp;
        std::printf("  %-6s %11.1f %7lld %9.2f %10.2f %9.0f%% %12s\n",
                    cmp.model.c_str(), cmp.mflops_per_sample,
                    static_cast<long long>(r.batch),
                    cmp.perfPerWattRatio(), cmp.perfPerTcoRatio(),
                    cmp.tcoReduction() * 100.0,
                    r.mflops < 200 ? "memory/host" : "compute/sram");
        report.metric("perf_per_tco_" + cmp.model,
                      cmp.perfPerTcoRatio(), "x");
        sum_reduction += cmp.tcoReduction();
        if (cmp.perfPerTcoRatio() > best_tco) {
            best_tco = cmp.perfPerTcoRatio();
            best_name = cmp.model;
        }
        if (cmp.perfPerTcoRatio() < worst_tco) {
            worst_tco = cmp.perfPerTcoRatio();
            worst_name = cmp.model;
        }
        ++n;
    }

    bench::section("paper vs measured");
    bench::row("fleet-average TCO reduction", "44%",
               bench::fmt("%.0f%%", sum_reduction / n * 100.0));
    bench::row("Perf/TCO easier to win than Perf/Watt", "yes",
               "yes (every row above)");
    bench::row("highest efficiency among models",
               "LC models (LC1, LC5 best)",
               "best: " + best_name + ", worst: " + worst_name);
    bench::row("batch-size effect", "LC1@4K beats LC2@512",
               "see LC1 vs LC2 rows");

    report.metric("fleet_avg_tco_reduction_pct",
                  sum_reduction / n * 100.0, 40.0, 48.0, "%");
    report.metric("best_perf_per_tco", best_tco, "x");
    report.metric("worst_perf_per_tco", worst_tco, "x");
    report.wallClockSpeedup(
        parallelLanes(),
        serial_s / std::max(parallel_s, 1e-9));
    // Each task ran against its own device clone; export them in
    // model order under per-model labels.
    for (const ModelRow &r : rows)
        r.dev->exportTelemetry(registry, "mtia2i:" + r.cmp.model);
    return 0;
}
