/**
 * @file
 * Reproduces the Section 5.2 overclocking study: ~3,000 chips, 10
 * tests, three frequencies, negligible pass-rate loss from 1.1 to
 * 1.35 GHz, and 5-20% end-to-end gains in offline replayer tests.
 */

#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "fleet/overclocking.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "models/case_study.h"
#include "models/model_zoo.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 5.2 — overclocking at scale",
                  "3,000-chip test matrix and end-to-end model "
                  "speedups from the 1.1 -> 1.35 GHz uplift.");

    OverclockingStudy study(71);
    const OverclockReport rep = study.run(3000, {1.1, 1.25, 1.35});

    bench::section("pass rates (3,000 chips x 10 tests)");
    std::printf("  %-10s %12s\n", "frequency", "pass rate");
    for (double f : {1.1, 1.25, 1.35})
        std::printf("  %-10.2f %11.3f%%\n", f,
                    rep.passRateAt(f) * 100.0);
    bench::row("pass-rate decrease 1.1 -> 1.35", "negligible",
               bench::fmt("%.3f pp", (rep.passRateAt(1.1) -
                                      rep.passRateAt(1.35)) *
                                         100.0));

    bench::section("end-to-end replayer speedups at 1.35 vs 1.1 GHz");
    std::printf("  %-22s %10s\n", "model", "speedup");
    double lo = 10.0;
    double hi = 0.0;
    auto eval = [&](ModelInfo model) {
        optimizeGraph(model.graph);
        Device slow(ChipConfig::mtia2i());
        slow.setFrequencyGhz(1.1);
        Device fast(ChipConfig::mtia2i());
        fast.setFrequencyGhz(1.35);
        const double q_slow = GraphCostModel(slow)
                                  .evaluate(model.graph, model.batch)
                                  .qps;
        const double q_fast = GraphCostModel(fast)
                                  .evaluate(model.graph, model.batch)
                                  .qps;
        const double gain = q_fast / q_slow - 1.0;
        lo = std::min(lo, gain);
        hi = std::max(hi, gain);
        std::printf("  %-22s %9.1f%%\n", model.name.c_str(),
                    gain * 100.0);
    };
    for (ModelInfo &m : figure6Models())
        eval(std::move(m));
    eval(buildCaseStudyModel(6));

    bench::section("paper vs measured");
    bench::row("frequency uplift", "1.1 -> 1.35 GHz (23%)", "same");
    bench::row("end-to-end throughput gains", "5-20%",
               bench::fmt("%.0f%%", lo * 100.0) + " - " +
                   bench::fmt("%.0f%%", hi * 100.0) +
                   " (DRAM-bound models gain least)");

    bench::Report report("overclocking");
    report.metric("pass_rate_drop_pp",
                  (rep.passRateAt(1.1) - rep.passRateAt(1.35)) * 100.0,
                  0.0, 1.0, "pp");
    report.metric("e2e_gain_low_pct", lo * 100.0, 0.0, 10.0, "%");
    report.metric("e2e_gain_high_pct", hi * 100.0, 10.0, 25.0, "%");
    return 0;
}
