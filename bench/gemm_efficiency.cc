/**
 * @file
 * Reproduces the Section 3.3 GEMM findings: >92% of peak FLOPS for
 * 2K x 2K shapes with the new multi-context/auto-increment custom
 * instructions, and the instruction-issue bottleneck that small
 * shapes hit without them.
 */

#include <algorithm>
#include <cstdio>

#include "bench_report.h"
#include "bench_util.h"
#include "chip/device.h"
#include "chip/kernel_cost_model.h"
#include "core/simd.h"
#include "ops/gemm_kernels.h"
#include "sim/random.h"
#include "tensor/tensor.h"

using namespace mtia;

int
main()
{
    bench::banner("Section 3.3 — GEMM efficiency and the issue path",
                  "Shape sweep on MTIA 2i with the new ISA vs the "
                  "MTIA 1-era instruction set.");

    Device modern(ChipConfig::mtia2i());
    ChipConfig legacy_cfg = ChipConfig::mtia2i();
    legacy_cfg.isa = IsaFeatures::mtia1();
    Device legacy(legacy_cfg);
    KernelCostModel km_new(modern);
    KernelCostModel km_old(legacy);

    const FcShape shapes[] = {
        {2048, 2048, 2048}, {1024, 1024, 1024}, {512, 512, 512},
        {256, 256, 256},    {32, 4096, 4096},   {32, 2048, 512},
        {64, 8192, 1024},
    };

    std::printf("  %-18s %11s %10s %11s %10s %16s\n", "M x N x K",
                "new ISA", "eff", "old ISA", "eff", "old bottleneck");
    FcOptions opt;
    opt.include_launch = false; // kernels inside a running job
    for (const FcShape &s : shapes) {
        const KernelTime t_new = km_new.fc(s, opt);
        const KernelTime t_old = km_old.fc(s, opt);
        const Tick ideal = fromSeconds(
            s.flops() / modern.peakGemmFlops(DType::FP16));
        std::printf("  %-18s %9.1fus %9.1f%% %9.1fus %9.1f%% %16s\n",
                    s.toString().c_str(), toMicros(t_new.total),
                    t_new.efficiencyVs(ideal) * 100.0,
                    toMicros(t_old.total),
                    t_old.efficiencyVs(ideal) * 100.0,
                    t_old.bottleneck.c_str());
    }

    const KernelTime big = km_new.fc(FcShape{2048, 2048, 2048}, opt);
    const Tick big_ideal = fromSeconds(
        FcShape{2048, 2048, 2048}.flops() /
        modern.peakGemmFlops(DType::FP16));

    bench::section("paper vs measured");
    bench::row("2K x 2K GEMM efficiency", "> 92% of peak",
               bench::fmt("%.1f%%",
                          big.efficiencyVs(big_ideal) * 100.0));
    bench::row("small shapes without new instructions",
               "issue-rate bound, low out-of-box efficiency",
               "instruction-issue bottleneck reproduced above");

    bench::Report report("gemm_efficiency");
    report.metric("gemm_2k_efficiency_pct",
                  big.efficiencyVs(big_ideal) * 100.0, 92.0, 100.0,
                  "%");
    const KernelTime small_old = km_old.fc(FcShape{256, 256, 256}, opt);
    const Tick small_ideal = fromSeconds(
        FcShape{256, 256, 256}.flops() /
        modern.peakGemmFlops(DType::FP16));
    report.metric("gemm_256_old_isa_efficiency_pct",
                  small_old.efficiencyVs(small_ideal) * 100.0, "%");

    // Alongside the modeled roofline: the measured throughput of the
    // host's functional blocked GEMM (core/simd_gemm via
    // ops/gemm_kernels) at its widest supported dispatch tier. A
    // wall-clock number by nature, so it lands as a plain metric with
    // no band; the modeled efficiencies above stay the gated ones.
    {
        const FcShape s{512, 512, 512};
        Rng rng(17);
        Tensor a(Shape{s.m, s.k}, DType::FP32);
        Tensor b(Shape{s.k, s.n}, DType::FP32);
        a.fillGaussian(rng);
        b.fillGaussian(rng);
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
            bench::WallTimer timer;
            const Tensor c = gemm_kernels::gemm(a, b, DType::FP32);
            const double secs = timer.seconds();
            if (rep == 0 || secs < best)
                best = secs;
        }
        const double gflops = best > 0.0 ? s.flops() / best / 1e9 : 0.0;
        bench::section("measured functional GEMM (host)");
        bench::row("dispatch tier", "widest supported",
                   simd::isaName(simd::activeIsa()));
        bench::row("512^3 fp32 GFLOP/s", "wall-clock, no band",
                   bench::fmt("%.2f", gflops));
        report.metric("functional_gemm_512_gflops", gflops, "GFLOP/s");
    }
    return 0;
}
