/**
 * @file
 * DES-core microbenchmark: schedule/dispatch throughput of the
 * bucketed EventQueue (calendar ring + overflow heap + InlineFunction
 * + slab recycling) against the seed binary-heap implementation it
 * replaced (std::priority_queue of std::function entries, closure
 * deep-copy on every dispatch).
 *
 * Three mixes bracket the scheduling patterns the serving, rollout,
 * and scheduler simulations produce:
 *
 *   near-future     deltas inside the calendar window — the ring
 *                   fast path (O(1) push/pop, no heap sift)
 *   same-tick burst runs of events at one tick — per-tick FIFO drain
 *   far-future      microsecond-scale deltas — overflow heap plus
 *                   window promotion
 *
 * Simulated results (event counts, final ticks, checksums, inline
 * fractions, promotion counts) are deterministic and land in
 * BENCH_event_queue.json; the measured events/sec ratio is wall-clock
 * by nature and is emitted only as the report's "wall_clock_speedup"
 * field (near-future mix) and printed rows.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <type_traits>
#include <vector>

#include "bench_report.h"
#include "core/check.h"
#include "bench_util.h"
#include "sim/event_queue.h"
#include "sim/random.h"

using namespace mtia;

namespace {

/**
 * The replaced implementation, verbatim: binary heap of (when, seq,
 * std::function) entries, contract checks and peak tracking on every
 * schedule, one closure deep-copy per dispatch. Kept here as the
 * fixed baseline the speedup is measured against.
 */
class SeedHeapQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return now_; }

    void
    schedule(Tick when, Callback cb)
    {
        MTIA_CHECK_GE(when, now_) << ": SeedHeapQueue::schedule in the past";
        MTIA_CHECK(cb != nullptr) << ": SeedHeapQueue::schedule null callback";
        heap_.push(Entry{when, nextSeq_++, std::move(cb)});
        peak_pending_ = std::max(peak_pending_, heap_.size());
    }

    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    std::size_t pending() const { return heap_.size(); }
    std::uint64_t executed() const { return executed_; }

    Tick
    run()
    {
        while (!heap_.empty()) {
            // This copy-before-pop IS the baseline behavior under
            // measurement (heap-top-copy only applies to sim core).
            Entry e = heap_.top(); // the deep copy the rewrite removed
            heap_.pop();
            now_ = e.when;
            ++executed_;
            e.cb();
        }
        return now_;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t peak_pending_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

constexpr std::size_t kDeltaCount = 4096; // power of two
constexpr unsigned kChains = 256;
constexpr std::uint64_t kEventsPerMix = 1000000;
constexpr int kReps = 3; // best-of, to damp scheduler noise

template <typename Q> struct MixState
{
    Q queue;
    const std::vector<Tick> *deltas = nullptr;
    std::size_t cursor = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t checksum = 0;
    std::uint64_t total = 0;
};

/**
 * One self-rescheduling event chain. The capture weight (32 bytes)
 * matches a production completion closure — a couple of pointers plus
 * request state — which overflows std::function's 16-byte small
 * buffer (heap box per schedule on the seed queue) but stays inside
 * InlineFunction's 48-byte buffer on the new one.
 */
template <typename Q> struct ChainTask
{
    MixState<Q> *st;
    std::uint64_t id;
    std::uint64_t salt;
    std::uint64_t shard;

    void
    operator()() const
    {
        MixState<Q> &s = *st;
        ++s.dispatched;
        s.checksum += (id * 0x9e3779b97f4a7c15ull) ^ salt ^ shard;
        if (s.scheduled < s.total) {
            ++s.scheduled;
            const Tick d =
                (*s.deltas)[s.cursor++ & (kDeltaCount - 1)];
            s.queue.scheduleAfter(
                d, ChainTask<Q>{st, id, salt + s.dispatched, shard});
        }
    }
};

struct MixResult
{
    double seconds = 0.0;
    std::uint64_t dispatched = 0;
    Tick final_tick = 0;
    std::uint64_t checksum = 0;
    std::uint64_t inline_callbacks = 0;
    std::uint64_t overflow_promotions = 0;
};

template <typename Q>
MixResult
runMix(const std::vector<Tick> &deltas)
{
    MixState<Q> state;
    state.deltas = &deltas;
    state.total = kEventsPerMix;
    bench::WallTimer timer;
    for (unsigned c = 0; c < kChains; ++c) {
        ++state.scheduled;
        const Tick d = deltas[state.cursor++ & (kDeltaCount - 1)];
        state.queue.scheduleAfter(
            d, ChainTask<Q>{&state, c, 0x5851f42dull + c, c % 16});
    }
    state.queue.run();
    MixResult out;
    out.seconds = timer.seconds();
    out.dispatched = state.dispatched;
    out.final_tick = state.queue.now();
    out.checksum = state.checksum;
    if constexpr (std::is_same_v<Q, EventQueue>) {
        out.inline_callbacks = state.queue.inlineCallbackCount();
        out.overflow_promotions = state.queue.overflowPromotions();
    }
    return out;
}

/** Best wall-clock of kReps identical runs (sim results must agree). */
template <typename Q>
MixResult
bestOf(const std::vector<Tick> &deltas)
{
    MixResult best = runMix<Q>(deltas);
    for (int r = 1; r < kReps; ++r) {
        const MixResult rep = runMix<Q>(deltas);
        MTIA_CHECK_EQ(rep.checksum, best.checksum)
            << ": non-deterministic benchmark repetition";
        MTIA_CHECK_EQ(rep.final_tick, best.final_tick)
            << ": non-deterministic benchmark repetition";
        if (rep.seconds < best.seconds)
            best.seconds = rep.seconds;
    }
    return best;
}

double
eventsPerSec(const MixResult &r)
{
    return r.seconds > 0.0
        ? static_cast<double>(r.dispatched) / r.seconds
        : 0.0;
}

std::vector<Tick>
makeDeltas(const char *mix, Rng &rng)
{
    std::vector<Tick> deltas(kDeltaCount);
    const std::string m = mix;
    for (std::size_t i = 0; i < kDeltaCount; ++i) {
        if (m == "near") {
            // Inside the calendar window: pure ring traffic.
            deltas[i] = rng.below(EventQueue::kRingSlots);
        } else if (m == "burst") {
            // Same-tick runs with an occasional short hop.
            deltas[i] = (i % 64 == 63) ? 100 + rng.below(400) : 0;
        } else {
            // Far future: 10 ns – 1 us deltas, always overflow.
            deltas[i] = fromNanos(10.0) +
                rng.below(fromMicros(1.0) - fromNanos(10.0));
        }
    }
    return deltas;
}

} // namespace

int
main()
{
    bench::banner(
        "DES core — bucketed event queue vs seed binary heap",
        "Schedule/dispatch throughput for near-future, same-tick "
        "burst, and far-future mixes; identical simulated results, "
        "measured wall-clock ratio.");

    bench::Report report("event_queue");
    const char *mixes[] = {"near", "burst", "far"};
    double near_speedup = 0.0;

    for (const char *mix : mixes) {
        Rng rng(1234);
        const std::vector<Tick> deltas = makeDeltas(mix, rng);

        const MixResult seed = bestOf<SeedHeapQueue>(deltas);
        const MixResult fast = bestOf<EventQueue>(deltas);
        const double speedup = eventsPerSec(seed) > 0.0
            ? eventsPerSec(fast) / eventsPerSec(seed)
            : 0.0;

        bench::section(std::string(mix) + " mix");
        bench::row("seed heap events/sec", "baseline",
                   bench::fmt("%.2fM", eventsPerSec(seed) / 1e6));
        bench::row("bucketed queue events/sec", ">= 3x on near mix",
                   bench::fmt("%.2fM", eventsPerSec(fast) / 1e6));
        bench::row("speedup", "-", bench::fmt("%.2fx", speedup));

        const bool match = seed.dispatched == fast.dispatched &&
            seed.final_tick == fast.final_tick &&
            seed.checksum == fast.checksum;
        bench::row("identical simulated results", "required",
                   match ? "yes" : "NO — DIVERGED");

        const std::string prefix = std::string(mix) + "_";
        report.metric(prefix + "events",
                      static_cast<double>(fast.dispatched));
        report.metric(prefix + "final_tick_us",
                      toMicros(fast.final_tick), "us");
        report.metric(prefix + "results_match_seed", match ? 1.0 : 0.0,
                      1.0, 1.0);
        report.metric(prefix + "inline_callback_fraction",
                      fast.dispatched > 0
                          ? static_cast<double>(fast.inline_callbacks) /
                              static_cast<double>(fast.dispatched)
                          : 0.0,
                      1.0, 1.0);
        report.metric(prefix + "overflow_promotions",
                      static_cast<double>(fast.overflow_promotions));

        if (std::string(mix) == "near")
            near_speedup = speedup;
    }

    // Wall-clock by nature: excluded from byte-identical guarantees,
    // emitted as the top-level wall_clock_speedup object. The CI
    // bench-reports job checks this stays >= 3.
    report.wallClockSpeedup(1, near_speedup);
    return 0;
}
