/**
 * Runtime-dispatched blocked GEMM and the fused operator layer: every
 * dispatch tier (scalar / sse2|neon / avx2 / avx512) and every thread
 * count must produce bytes identical to the element-at-a-time
 * references — DotProductEngine::gemm / gemmInt8 and the unfused
 * SimdEngine activation composition.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/numerics_stats.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "core/simd_gemm.h"
#include "ops/gemm_kernels.h"
#include "pe/dpe.h"
#include "pe/simd_engine.h"
#include "sim/random.h"
#include "telemetry/metrics.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace mtia {
namespace {

std::vector<simd::SimdIsa>
supportedTiers()
{
    std::vector<simd::SimdIsa> tiers;
    for (const simd::SimdIsa isa :
         {simd::SimdIsa::Scalar, simd::SimdIsa::Sse2,
          simd::SimdIsa::Neon, simd::SimdIsa::Avx2,
          simd::SimdIsa::Avx512}) {
        if (simd::isaSupported(isa))
            tiers.push_back(isa);
    }
    return tiers;
}

Tensor
randomTensor(Shape shape, Rng &rng)
{
    Tensor t(shape, DType::FP32);
    t.fillGaussian(rng);
    return t;
}

struct GemmCase
{
    std::int64_t m, n, k;
};

// Odd extents exercise every partial-tile path of every micro-kernel
// (mr/nr remainders, nc blocks that end mid-strip, kc tails).
constexpr GemmCase kCases[] = {
    {37, 29, 53}, {64, 48, 32}, {1, 7, 5}, {128, 96, 64}, {4, 33, 128},
};

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndBestIsSupported)
{
    EXPECT_TRUE(simd::isaSupported(simd::SimdIsa::Scalar));
    EXPECT_TRUE(simd::isaSupported(simd::detectBestIsa()));
    EXPECT_TRUE(simd::isaSupported(simd::activeIsa()));
}

TEST(SimdDispatchTest, ScopedIsaOverridesAndNests)
{
    const simd::SimdIsa base = simd::activeIsa();
    {
        simd::ScopedIsa outer(simd::SimdIsa::Scalar);
        EXPECT_EQ(simd::activeIsa(), simd::SimdIsa::Scalar);
        for (const simd::SimdIsa isa : supportedTiers()) {
            simd::ScopedIsa inner(isa);
            EXPECT_EQ(simd::activeIsa(), isa);
        }
        EXPECT_EQ(simd::activeIsa(), simd::SimdIsa::Scalar);
    }
    EXPECT_EQ(simd::activeIsa(), base);
}

TEST(SimdDispatchTest, TierNamesRoundTrip)
{
    for (const simd::SimdIsa isa : supportedTiers())
        EXPECT_STRNE(simd::isaName(isa), "");
}

TEST(GemmKernelsTest, EveryTierAndThreadCountMatchesDpeReference)
{
    const DotProductEngine dpe;
    Rng rng(101);
    for (const GemmCase &c : kCases) {
        const Tensor a = randomTensor(Shape{c.m, c.k}, rng);
        const Tensor b = randomTensor(Shape{c.k, c.n}, rng);
        for (const DType dt :
             {DType::FP32, DType::FP16, DType::BF16}) {
            const Tensor ref = dpe.gemm(a, b, dt);
            for (const simd::SimdIsa isa : supportedTiers()) {
                for (const unsigned lanes : {1u, 2u, 8u}) {
                    ScopedParallelism scope(lanes);
                    const Tensor c_out = gemm_kernels::gemm(
                        a, b, dt, isa, simd::GemmBlocking{});
                    EXPECT_EQ(c_out.raw(), ref.raw())
                        << c.m << "x" << c.n << "x" << c.k << " dtype "
                        << dtypeName(dt) << " tier "
                        << simd::isaName(isa) << " lanes " << lanes;
                }
            }
        }
    }
}

TEST(GemmKernelsTest, SmallBlockingsSplitEveryLoopIdentically)
{
    const DotProductEngine dpe;
    Rng rng(102);
    const Tensor a = randomTensor(Shape{65, 47}, rng);
    const Tensor b = randomTensor(Shape{47, 51}, rng);
    const Tensor ref = dpe.gemm(a, b, DType::FP32);
    const simd::GemmBlocking blockings[] = {
        {8, 16, 24}, {1, 1, 1}, {16, 8, 8}, {64, 256, 512}};
    for (const simd::SimdIsa isa : supportedTiers()) {
        for (const simd::GemmBlocking &blk : blockings) {
            const Tensor c =
                gemm_kernels::gemm(a, b, DType::FP32, isa, blk);
            EXPECT_EQ(c.raw(), ref.raw())
                << simd::isaName(isa) << " mc" << blk.mc << " kc"
                << blk.kc << " nc" << blk.nc;
        }
    }
}

TEST(GemmKernelsTest, FusedActivationMatchesUnfusedComposition)
{
    const DotProductEngine dpe;
    Rng rng(103);
    const Tensor a = randomTensor(Shape{45, 37}, rng);
    const Tensor b = randomTensor(Shape{37, 41}, rng);
    const Tensor c_ref = dpe.gemm(a, b, DType::FP16);
    for (const Nonlinearity f :
         {Nonlinearity::Relu, Nonlinearity::Gelu, Nonlinearity::Tanh,
          Nonlinearity::Silu}) {
        const Tensor lut_ref =
            gemm_kernels::sharedSimdEngine().apply(f, c_ref);
        const Tensor exact_ref = SimdEngine::applyExact(f, c_ref);
        for (const simd::SimdIsa isa : supportedTiers()) {
            for (const unsigned lanes : {1u, 8u}) {
                ScopedParallelism scope(lanes);
                const Tensor lut = gemm_kernels::fusedGemmActivation(
                    a, b, DType::FP16, f, /*use_lut=*/true, isa,
                    simd::GemmBlocking{});
                const Tensor exact = gemm_kernels::fusedGemmActivation(
                    a, b, DType::FP16, f, /*use_lut=*/false, isa,
                    simd::GemmBlocking{});
                EXPECT_EQ(lut.raw(), lut_ref.raw())
                    << nonlinearityName(f) << " lut tier "
                    << simd::isaName(isa) << " lanes " << lanes;
                EXPECT_EQ(exact.raw(), exact_ref.raw())
                    << nonlinearityName(f) << " exact tier "
                    << simd::isaName(isa) << " lanes " << lanes;
            }
        }
    }
}

TEST(GemmKernelsTest, FusedQuantizedGemmMatchesUnfusedComposition)
{
    const DotProductEngine dpe;
    Rng rng(104);
    const Tensor a = randomTensor(Shape{33, 61}, rng);
    const Tensor b = randomTensor(Shape{61, 29}, rng);
    const QuantizedTensor w = quantizeStatic(b);
    const QuantizedTensor qa =
        quantizeDynamic(a, QuantGranularity::PerRow);
    const Tensor plain_ref = dpe.gemmInt8(qa, w);
    const Tensor act_ref =
        gemm_kernels::sharedSimdEngine().apply(Nonlinearity::Relu,
                                               plain_ref);
    for (const simd::SimdIsa isa : supportedTiers()) {
        for (const unsigned lanes : {1u, 8u}) {
            ScopedParallelism scope(lanes);
            const Tensor plain = gemm_kernels::fusedQuantizedGemm(
                a, w, /*has_activation=*/false, Nonlinearity::Relu,
                /*use_lut=*/true, isa, simd::GemmBlocking{});
            const Tensor act = gemm_kernels::fusedQuantizedGemm(
                a, w, /*has_activation=*/true, Nonlinearity::Relu,
                /*use_lut=*/true, isa, simd::GemmBlocking{});
            EXPECT_EQ(plain.raw(), plain_ref.raw())
                << "tier " << simd::isaName(isa) << " lanes " << lanes;
            EXPECT_EQ(act.raw(), act_ref.raw())
                << "tier " << simd::isaName(isa) << " lanes " << lanes;
        }
    }
}

// Randomized property sweep mirroring tests/numerics_test.cc: a
// million-element output, Gaussian inputs, every tier and a serial vs
// wide thread count — all byte-identical to the scalar reference.
TEST(GemmKernelsTest, MillionElementPropertySweep)
{
    const DotProductEngine dpe;
    Rng rng(105);
    const Tensor a = randomTensor(Shape{1024, 64}, rng);
    const Tensor b = randomTensor(Shape{64, 1024}, rng);
    const Tensor ref = dpe.gemm(a, b, DType::FP16);
    ASSERT_EQ(ref.shape().numel(), 1024 * 1024);
    for (const simd::SimdIsa isa : supportedTiers()) {
        for (const unsigned lanes : {1u, 8u}) {
            ScopedParallelism scope(lanes);
            const Tensor c = gemm_kernels::gemm(a, b, DType::FP16, isa,
                                                simd::GemmBlocking{});
            EXPECT_EQ(c.raw(), ref.raw())
                << "tier " << simd::isaName(isa) << " lanes " << lanes;
        }
    }
}

TEST(GemmKernelsTest, ActiveIsaDefaultMatchesExplicitTier)
{
    Rng rng(106);
    const Tensor a = randomTensor(Shape{19, 23}, rng);
    const Tensor b = randomTensor(Shape{23, 31}, rng);
    for (const simd::SimdIsa isa : supportedTiers()) {
        simd::ScopedIsa scope(isa);
        const Tensor via_active = gemm_kernels::gemm(a, b, DType::FP32);
        const Tensor via_explicit = gemm_kernels::gemm(
            a, b, DType::FP32, isa, simd::GemmBlocking{});
        EXPECT_EQ(via_active.raw(), via_explicit.raw())
            << simd::isaName(isa);
    }
}

TEST(GemmKernelsTest, GemmFlopsCounterTracksWork)
{
    numerics::resetStats();
    Rng rng(107);
    const Tensor a = randomTensor(Shape{12, 34}, rng);
    const Tensor b = randomTensor(Shape{34, 56}, rng);
    (void)gemm_kernels::gemm(a, b, DType::FP32);
    EXPECT_EQ(numerics::gemmFlops(), 2ull * 12 * 34 * 56);
    (void)gemm_kernels::fusedGemmActivation(
        a, b, DType::FP32, Nonlinearity::Relu, /*use_lut=*/true);
    EXPECT_EQ(numerics::gemmFlops(), 2ull * 2ull * 12 * 34 * 56);

    telemetry::MetricRegistry metrics;
    numerics::publishNumericsMetrics(metrics);
    EXPECT_EQ(metrics.counter("numerics.gemm_flops").value(),
              2ull * 2ull * 12 * 34 * 56);
}

TEST(GemmKernelsTest, RawPointerGemmHandlesDegenerateShapes)
{
    // m == 0 / n == 0 are no-ops; k == 0 zero-fills C.
    std::vector<float> c(6, 42.0f);
    simd::gemmF32(nullptr, nullptr, c.data(), 0, 3, 4,
                  simd::SimdIsa::Scalar, simd::GemmBlocking{});
    EXPECT_EQ(c[0], 42.0f);
    simd::gemmF32(nullptr, nullptr, c.data(), 2, 3, 0,
                  simd::SimdIsa::Scalar, simd::GemmBlocking{});
    for (const float v : c)
        EXPECT_EQ(v, 0.0f);
}

} // namespace
} // namespace mtia
