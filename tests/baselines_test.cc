/**
 * @file
 * Tests for the GPU baseline and the cross-platform comparison
 * harness: launch-overhead behaviour, per-model Perf/Watt and
 * Perf/TCO ratios in the bands Section 7 reports.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/comparison.h"
#include "baselines/gpu_model.h"
#include "graph/fusion.h"
#include "models/model_zoo.h"
#include "ops/dense_ops.h"

namespace mtia {
namespace {

TEST(GpuModelTest, LaunchOverheadDominatesTinyGraphs)
{
    // A long chain of tiny FCs: the GPU pays 5 us per kernel, which
    // dwarfs the arithmetic.
    Graph g;
    int x = g.add(std::make_shared<InputOp>("x", Shape{16, 32}));
    for (int i = 0; i < 50; ++i) {
        x = g.add(std::make_shared<FullyConnectedOp>(
                      16, 32, 32, DType::FP16, false,
                      Nonlinearity::Relu,
                      static_cast<std::uint64_t>(i + 1)),
                  {x});
    }
    GpuModel gpu;
    const ModelCost cost = gpu.evaluate(g, 16);
    EXPECT_GT(toMicros(cost.latency),
              50 * toMicros(gpu.config().kernel_launch) * 0.99);
    EXPECT_LT(cost.avg_utilization, 0.01);
}

TEST(GpuModelTest, BigGemmIsComputeBound)
{
    Graph g;
    const int in =
        g.add(std::make_shared<InputOp>("x", Shape{4096, 4096}));
    g.add(std::make_shared<FullyConnectedOp>(4096, 4096, 4096,
                                             DType::FP16),
          {in});
    GpuModel gpu;
    const ModelCost cost = gpu.evaluate(g, 4096);
    // 137 GFLOP at 450 TFLOPS ~ 0.31 ms.
    EXPECT_NEAR(cost.latencyMs(), 0.31, 0.1);
}

TEST(GpuModelTest, PowerCurve)
{
    GpuModel gpu;
    EXPECT_NEAR(gpu.powerWatts(0.0), 80.0, 1.0);
    EXPECT_NEAR(gpu.powerWatts(1.0), 700.0, 1.0);
}

TEST(Comparison, Figure6BandsHold)
{
    // Section 7: MTIA 2i wins Perf/TCO clearly (fleet-average TCO
    // reduction ~44%) while Perf/Watt is a narrower win.
    Device dev(ChipConfig::mtia2i());
    ComparisonHarness harness(dev);

    double tco_sum = 0.0;
    double watt_sum = 0.0;
    int n = 0;
    for (ModelInfo &model : figure6Models()) {
        optimizeGraph(model.graph);
        const ModelComparison cmp = harness.compare(model);
        // HC2 (heaviest host-side serving features) sits lowest, at
        // or slightly below parity — exactly the paper's "lowest
        // efficiency was observed on HC2 and HC4".
        EXPECT_GT(cmp.perfPerTcoRatio(), 0.8) << model.name;
        EXPECT_GT(cmp.perfPerWattRatio(), 0.4) << model.name;
        EXPECT_GT(cmp.perfPerTcoRatio(), cmp.perfPerWattRatio())
            << model.name;
        tco_sum += cmp.tcoReduction();
        watt_sum += cmp.perfPerWattRatio();
        ++n;
    }
    const double avg_reduction = tco_sum / n;
    EXPECT_GT(avg_reduction, 0.30);
    EXPECT_LT(avg_reduction, 0.60);
    // Perf/Watt: a narrow win on average, not a blowout.
    EXPECT_GT(watt_sum / n, 0.8);
    EXPECT_LT(watt_sum / n, 2.5);
}

TEST(Comparison, ShardingPenalizesGiantEmbeddings)
{
    Device dev(ChipConfig::mtia2i());
    ComparisonHarness harness(dev);
    ModelInfo small = buildEarlyStageModel(512);
    ModelInfo big = small;
    big.embedding_bytes = 1024_GiB; // HSTU-class tables
    optimizeGraph(small.graph);
    const ModelComparison a = harness.compare(small);
    const ModelComparison b = harness.compare(big);
    EXPECT_LT(b.mtia.qps, a.mtia.qps);
}

} // namespace
} // namespace mtia
