/**
 * Telemetry subsystem tests: Chrome-trace golden file, labeled metric
 * registry contracts, bounded log-bucketed histograms, export failure
 * paths, and byte-determinism of instrumented serving runs.
 *
 * The golden trace lives in tests/golden/trace_small.json; regenerate
 * it with MTIA_REGEN_GOLDEN=1 ./telemetry_test after an intentional
 * format change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_report.h"
#include "core/check.h"
#include "serving/serving_sim.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"

namespace mtia {
namespace {

using telemetry::LogHistogram;
using telemetry::MetricRegistry;
using telemetry::Telemetry;
using telemetry::TelemetryError;
using telemetry::TraceRecorder;
using telemetry::TrackId;

// -------------------------------------------------------------- trace

/** The small deterministic trace the golden file captures. */
TraceRecorder
buildSmallTrace()
{
    TraceRecorder rec;
    const TrackId jobs = rec.track("shard0", "jobs");
    const TrackId queue = rec.track("shard0", "queue");
    const TrackId host = rec.track("host", "pcie");
    rec.complete(jobs, "remote", "job", 1'000'000, 7'500'000);
    rec.complete(jobs, "merge", "job", 7'500'000, 19'500'000);
    rec.counter(queue, "queue_depth", 1'000'000, 2);
    rec.counter(queue, "queue_depth", 7'500'000, 1);
    rec.instant(host, "dma_done", "pcie", 4'250'000);
    return rec;
}

TEST(Trace, MatchesGoldenFile)
{
    const std::string path =
        std::string(MTIA_GOLDEN_DIR) + "/trace_small.json";
    const std::string json = buildSmallTrace().json();

    if (std::getenv("MTIA_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.is_open()) << path;
        out << json;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open())
        << path << " missing; run with MTIA_REGEN_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(json, golden.str());
}

TEST(Trace, JsonHasTrackMetadataAndEventShapes)
{
    const std::string json = buildSmallTrace().json();
    // Perfetto essentials: the traceEvents wrapper, process/thread
    // naming metadata, and the three phase kinds.
    EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"shard0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Trace, TimestampsAreMicrosecondsFromTicks)
{
    TraceRecorder rec;
    const TrackId t = rec.track("d", "u");
    // 1,234,567 ps = 1.234567 us; fractions print with 6 digits.
    rec.instant(t, "e", "c", 1'234'567);
    EXPECT_NE(rec.json().find("\"ts\":1.234567"), std::string::npos);
}

TEST(Trace, DisabledRecorderRecordsNothing)
{
    TraceRecorder rec;
    rec.setEnabled(false);
    const TrackId t = rec.track("d", "u");
    rec.complete(t, "a", "c", 0, 10);
    rec.instant(t, "b", "c", 5);
    rec.counter(t, "n", 5, 1);
    EXPECT_TRUE(rec.empty());
    EXPECT_EQ(rec.dropped(), 0u);

    // The macros short-circuit on both null and disabled recorders.
    TraceRecorder *null_rec = nullptr;
    MTIA_TRACE_COMPLETE(null_rec, t, "a", "c", 0, 10);
    MTIA_TRACE_INSTANT(&rec, t, "b", "c", 5);
    MTIA_TRACE_COUNTER(&rec, t, "n", 5, 1);
    EXPECT_TRUE(rec.empty());
}

TEST(Trace, CapacityBoundsMemoryAndCountsDrops)
{
    TraceRecorder rec;
    rec.setCapacity(3);
    const TrackId t = rec.track("d", "u");
    for (Tick i = 0; i < 10; ++i)
        rec.instant(t, "e", "c", i);
    EXPECT_EQ(rec.size(), 3u);
    EXPECT_EQ(rec.dropped(), 7u);
}

TEST(Trace, CompleteRejectsInvertedSpan)
{
    ScopedCheckThrow guard;
    TraceRecorder rec;
    const TrackId t = rec.track("d", "u");
    EXPECT_THROW(rec.complete(t, "a", "c", 10, 9), CheckFailedError);
}

TEST(Trace, WriteFileFailureThrowsUnderScopedTelemetryThrow)
{
    telemetry::ScopedTelemetryThrow guard;
    const TraceRecorder rec = buildSmallTrace();
    EXPECT_THROW(rec.writeFile("/nonexistent-dir/trace.json"),
                 TelemetryError);
}

// ------------------------------------------------------------ metrics

TEST(Metrics, CounterGaugeHistogramRoundTrip)
{
    MetricRegistry reg;
    reg.counter("requests", {{"class", "merge"}}).inc(3);
    reg.counter("requests", {{"class", "remote"}}).inc();
    reg.gauge("utilization", {{"shard", "0"}}).set(0.75);
    auto &h = reg.histogram("latency_ms");
    h.add(10.0);
    h.add(20.0);

    EXPECT_EQ(reg.counter("requests", {{"class", "merge"}}).value(), 3u);
    EXPECT_EQ(reg.seriesCount(), 4u);
    const std::string json = reg.json();
    EXPECT_NE(json.find("\"schema\":\"mtia-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"requests\""), std::string::npos);
    EXPECT_NE(json.find("\"class\":\"merge\""), std::string::npos);
}

TEST(Metrics, LabelOrderIsCanonical)
{
    MetricRegistry reg;
    reg.counter("c", {{"b", "2"}, {"a", "1"}}).inc();
    // Same series regardless of label order at the call site.
    EXPECT_EQ(reg.counter("c", {{"a", "1"}, {"b", "2"}}).value(), 1u);
    EXPECT_EQ(reg.seriesCount(), 1u);
}

TEST(Metrics, RejectsKindMismatchOnReRegistration)
{
    ScopedCheckThrow guard;
    MetricRegistry reg;
    reg.counter("m");
    EXPECT_THROW(reg.gauge("m"), CheckFailedError);
    EXPECT_THROW(reg.histogram("m"), CheckFailedError);
}

TEST(Metrics, RejectsInvalidNamesAndLabels)
{
    ScopedCheckThrow guard;
    MetricRegistry reg;
    EXPECT_THROW(reg.counter(""), CheckFailedError);
    EXPECT_THROW(reg.counter("1bad"), CheckFailedError);
    EXPECT_THROW(reg.counter("has space"), CheckFailedError);
    EXPECT_THROW(reg.counter("ok", {{"", "v"}}), CheckFailedError);
    EXPECT_THROW(reg.counter("ok", {{"k", "1"}, {"k", "2"}}),
                 CheckFailedError);
}

TEST(Metrics, ResetAllClearsValuesButKeepsSeries)
{
    MetricRegistry reg;
    reg.counter("c").inc(5);
    reg.gauge("g").set(2.0);
    reg.histogram("h").add(1.0);
    reg.resetAll();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_TRUE(reg.histogram("h").empty());
    EXPECT_EQ(reg.seriesCount(), 3u);
}

// ------------------------------------------------------ log histogram

TEST(LogHistogramTest, ExactStatsAndBoundedPercentileError)
{
    LogHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    // p0/p100 are exact; interior percentiles carry the ~2.2%
    // relative bucket error of 32 sub-buckets per octave.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
    EXPECT_NEAR(h.percentile(50.0), 500.0, 500.0 * 0.03);
    EXPECT_NEAR(h.percentile(99.0), 990.0, 990.0 * 0.03);
}

TEST(LogHistogramTest, SingleSampleIsExactEverywhere)
{
    LogHistogram h;
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 42.0);
}

TEST(LogHistogramTest, UnderflowAndOverflowClampToObservedRange)
{
    LogHistogram h(LogHistogram::Config{1.0, 100.0, 8});
    h.add(0.001); // below min_value -> underflow bucket
    h.add(1e6);   // above max_value -> overflow bucket
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.min(), 0.001);
    EXPECT_DOUBLE_EQ(h.max(), 1e6);
    EXPECT_GE(h.percentile(10.0), h.min());
    EXPECT_LE(h.percentile(90.0), h.max());
}

TEST(LogHistogramTest, Contracts)
{
    ScopedCheckThrow guard;
    EXPECT_THROW(LogHistogram(LogHistogram::Config{0.0, 1.0, 8}),
                 CheckFailedError);
    EXPECT_THROW(LogHistogram(LogHistogram::Config{2.0, 1.0, 8}),
                 CheckFailedError);
    EXPECT_THROW(LogHistogram(LogHistogram::Config{1.0, 2.0, 0}),
                 CheckFailedError);
    LogHistogram h;
    EXPECT_THROW(h.percentile(50.0), CheckFailedError); // empty
    h.add(1.0);
    EXPECT_THROW(h.add(-1.0), CheckFailedError);
    EXPECT_THROW(h.percentile(101.0), CheckFailedError);
}

// ------------------------------------------------- event queue counts

TEST(EventQueueTelemetry, TracksExecutedAndPeakPending)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.schedule(30, [] {});
    EXPECT_EQ(q.peakPending(), 3u);
    q.run();
    EXPECT_EQ(q.executed(), 3u);
    EXPECT_EQ(q.peakPending(), 3u); // high-water mark persists
}

// ------------------------------------- instrumented serving: end2end

TEST(ServingTelemetry, RecordsTraceAndMetrics)
{
    ServingSimulator sim(ServingModelParams{});
    Telemetry tel;
    sim.setTelemetry(&tel);
    sim.simulate(20.0, fromSeconds(5.0), 7);

    EXPECT_FALSE(tel.trace.empty());
    const std::string trace = tel.trace.json();
    EXPECT_NE(trace.find("\"shard0\""), std::string::npos);
    EXPECT_NE(trace.find("\"queue_depth\""), std::string::npos);

    const std::string metrics = tel.metrics.json();
    EXPECT_NE(metrics.find("\"serving.latency_ms\""),
              std::string::npos);
    EXPECT_NE(metrics.find("\"class\":\"total\""), std::string::npos);
    EXPECT_NE(metrics.find("\"serving.requests\""), std::string::npos);
    EXPECT_NE(metrics.find("\"sim.events_executed\""),
              std::string::npos);
}

TEST(ServingTelemetry, IdenticalSeedsYieldByteIdenticalExports)
{
    const auto run = [] {
        ServingSimulator sim(ServingModelParams{});
        Telemetry tel;
        sim.setTelemetry(&tel);
        sim.simulate(25.0, fromSeconds(5.0), 42);
        return std::pair{tel.trace.json(), tel.metrics.json()};
    };
    const auto [trace_a, metrics_a] = run();
    const auto [trace_b, metrics_b] = run();
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_EQ(metrics_a, metrics_b);
}

TEST(ServingTelemetry, DetachedRunMatchesAttachedResults)
{
    // Telemetry must observe, not perturb: the simulated results are
    // identical with and without an attached context.
    ServingSimulator sim(ServingModelParams{});
    const ServingResult plain = sim.simulate(25.0, fromSeconds(5.0), 7);
    Telemetry tel;
    sim.setTelemetry(&tel);
    const ServingResult traced =
        sim.simulate(25.0, fromSeconds(5.0), 7);
    EXPECT_DOUBLE_EQ(plain.completed_qps, traced.completed_qps);
    EXPECT_DOUBLE_EQ(plain.p50_ms, traced.p50_ms);
    EXPECT_DOUBLE_EQ(plain.p99_ms, traced.p99_ms);
    EXPECT_DOUBLE_EQ(plain.merge_p99_ms, traced.merge_p99_ms);
    EXPECT_DOUBLE_EQ(plain.remote_p99_ms, traced.remote_p99_ms);
}

TEST(ServingTelemetry, ExportFilesWritesTraceAndMetrics)
{
    ServingSimulator sim(ServingModelParams{});
    Telemetry tel;
    sim.setTelemetry(&tel);
    sim.simulate(20.0, fromSeconds(2.0), 7);

    const std::string stem =
        ::testing::TempDir() + "telemetry_export_test";
    tel.exportFiles(stem);
    std::ifstream trace(stem + ".trace.json");
    std::ifstream metrics(stem + ".metrics.json");
    EXPECT_TRUE(trace.is_open());
    EXPECT_TRUE(metrics.is_open());
    std::ostringstream buf;
    buf << trace.rdbuf();
    EXPECT_EQ(buf.str(), tel.trace.json());

    telemetry::ScopedTelemetryThrow guard;
    EXPECT_THROW(tel.exportFiles("/nonexistent-dir/stem"),
                 TelemetryError);
}

// ------------------------------------------------------ bench report

TEST(BenchReport, EmitsSchemaWithBandsAndTelemetry)
{
    MetricRegistry reg;
    reg.counter("events").inc(12);

    // Route the destructor's write into the test temp dir.
    ASSERT_EQ(setenv("MTIA_BENCH_REPORT_DIR",
                     ::testing::TempDir().c_str(), 1),
              0);
    bench::Report report("unit_test");
    report.metric("in_band", 44.0, 40.0, 48.0, "%");
    report.metric("out_of_band", 60.0, 40.0, 48.0, "%");
    report.metric("unitless", 3.0);
    report.attachTelemetry(&reg);

    const std::string json = report.json();
    EXPECT_NE(json.find("\"schema\":\"mtia-bench-report-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"in_band\",\"measured\":44,"
                        "\"unit\":\"%\",\"paper_lo\":40,"
                        "\"paper_hi\":48,\"within_band\":true"),
              std::string::npos);
    EXPECT_NE(json.find("\"within_band\":false"), std::string::npos);
    EXPECT_NE(json.find("\"telemetry\":{\"schema\":"
                        "\"mtia-metrics-v1\""),
              std::string::npos);

    report.write(); // idempotent; lands in the temp dir
    unsetenv("MTIA_BENCH_REPORT_DIR");
}

TEST(BenchReport, WritesFileUnderReportDirEnv)
{
    const std::string dir = ::testing::TempDir();
    ASSERT_EQ(setenv("MTIA_BENCH_REPORT_DIR", dir.c_str(), 1), 0);
    {
        bench::Report report("env_test");
        report.metric("v", 1.0);
        report.write();
        report.write(); // idempotent
    }
    unsetenv("MTIA_BENCH_REPORT_DIR");

    std::ifstream in(dir + "/BENCH_env_test.json");
    ASSERT_TRUE(in.is_open());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"bench\":\"env_test\""),
              std::string::npos);
}

TEST(BenchReport, WriteFailureThrowsUnderScopedTelemetryThrow)
{
    telemetry::ScopedTelemetryThrow guard;
    ASSERT_EQ(setenv("MTIA_BENCH_REPORT_DIR", "/nonexistent-dir", 1),
              0);
    bench::Report report("bad_dir");
    report.metric("v", 1.0);
    EXPECT_THROW(report.write(), TelemetryError);
    unsetenv("MTIA_BENCH_REPORT_DIR");
}

TEST(BenchReport, RejectsInvertedBandAndEmptyName)
{
    ScopedCheckThrow guard;
    // Route the destructor's write into the test temp dir.
    ASSERT_EQ(setenv("MTIA_BENCH_REPORT_DIR",
                     ::testing::TempDir().c_str(), 1),
              0);
    EXPECT_THROW(bench::Report(""), CheckFailedError);
    {
        bench::Report report("bands");
        EXPECT_THROW(report.metric("m", 1.0, 5.0, 4.0),
                     CheckFailedError);
    }
    unsetenv("MTIA_BENCH_REPORT_DIR");
}

} // namespace
} // namespace mtia
