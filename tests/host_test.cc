/**
 * @file
 * Tests for the host interface: PCIe link model, real rANS and LZ
 * codecs (round-trip properties across data distributions and the
 * Section 3.3 compression-ratio findings), SHA-256 against FIPS test
 * vectors, and the Control Core deadlock scenario.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "host/compression.h"
#include "host/control_core.h"
#include "host/pcie.h"
#include "host/sha256.h"
#include "sim/random.h"
#include "tensor/dtype.h"

namespace mtia {
namespace {

TEST(Pcie, GenerationBandwidths)
{
    PcieConfig gen5{.generation = 5, .lanes = 8};
    PcieConfig gen4{.generation = 4, .lanes = 8};
    EXPECT_DOUBLE_EQ(gen5.bandwidth(), gbPerSec(32.0));
    EXPECT_DOUBLE_EQ(gen4.bandwidth(), gbPerSec(16.0));
}

TEST(Pcie, CompressedTransferHelpsOnCongestedLinks)
{
    // The decompression engine pays off when the achievable PCIe
    // bandwidth is constrained — e.g. 12 chips sharing a switch
    // uplink leave each chip a few GB/s — which is exactly the
    // retrieval-model regime Section 3.3 describes.
    PcieLink congested(PcieConfig{.generation = 5, .lanes = 2}); // 8 GB/s
    const Bytes logical = 1_GiB;
    const Tick raw = congested.transferTime(logical);
    const Tick comp = congested.compressedTransferTime(
        logical, logical / 2, gbPerSec(25.0));
    EXPECT_LT(comp, raw);
    EXPECT_NEAR(static_cast<double>(raw) / comp, 2.0, 0.05);

    // On an uncongested 32 GB/s link the 25 GB/s engine becomes the
    // bottleneck: compression cannot help there.
    PcieLink fast(PcieConfig{.generation = 5, .lanes = 8});
    const Tick comp2 = fast.compressedTransferTime(
        logical, logical / 2, gbPerSec(25.0));
    const Tick comp4 = fast.compressedTransferTime(
        logical, logical / 4, gbPerSec(25.0));
    EXPECT_EQ(comp2, comp4); // both pinned at the engine rate
}

class RansDistributions
    : public ::testing::TestWithParam<std::string>
{
  protected:
    ByteBuffer
    makeData(const std::string &kind, std::size_t n)
    {
        Rng rng(0xC0FFEE);
        ByteBuffer data(n);
        if (kind == "uniform") {
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.below(256));
        } else if (kind == "int8-weights") {
            // Quantized Gaussian weights: narrow, highly compressible.
            for (auto &b : data) {
                const double g = rng.gaussian(0.0, 12.0);
                b = static_cast<std::uint8_t>(
                    static_cast<std::int8_t>(std::clamp(g, -127.0,
                                                        127.0)));
            }
        } else if (kind == "fp16-weights") {
            for (std::size_t i = 0; i + 1 < n; i += 2) {
                const std::uint16_t h = fp32ToFp16Bits(
                    static_cast<float>(rng.gaussian(0.0, 1.0)));
                data[i] = static_cast<std::uint8_t>(h);
                data[i + 1] = static_cast<std::uint8_t>(h >> 8);
            }
        } else if (kind == "zeros") {
            std::fill(data.begin(), data.end(), 0);
        } else if (kind == "text") {
            const std::string phrase =
                "the quick brown fox jumps over the lazy dog ";
            for (std::size_t i = 0; i < n; ++i)
                data[i] = static_cast<std::uint8_t>(
                    phrase[i % phrase.size()]);
        }
        return data;
    }
};

TEST_P(RansDistributions, RoundTripsExactly)
{
    for (std::size_t n : {0ul, 1ul, 100ul, 65536ul, 200001ul}) {
        const ByteBuffer data = makeData(GetParam(), n);
        const ByteBuffer out =
            RansCodec::decompress(RansCodec::compress(data));
        ASSERT_EQ(out.size(), data.size()) << GetParam() << " n=" << n;
        EXPECT_EQ(out, data) << GetParam() << " n=" << n;
    }
}

TEST_P(RansDistributions, LzRoundTripsExactly)
{
    for (std::size_t n : {0ul, 1ul, 3ul, 100ul, 65536ul, 200001ul}) {
        const ByteBuffer data = makeData(GetParam(), n);
        const ByteBuffer out =
            LzCodec::decompress(LzCodec::compress(data));
        ASSERT_EQ(out.size(), data.size()) << GetParam() << " n=" << n;
        EXPECT_EQ(out, data) << GetParam() << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, RansDistributions,
                         ::testing::Values("uniform", "int8-weights",
                                           "fp16-weights", "zeros",
                                           "text"));

TEST(Rans, CompressionRatiosMatchSection33)
{
    Rng rng(0xBEEF);
    // INT8 quantized weights: ~up to 50% savings.
    ByteBuffer int8(512 * 1024);
    for (auto &b : int8) {
        b = static_cast<std::uint8_t>(static_cast<std::int8_t>(
            std::clamp(rng.gaussian(0.0, 4.0), -127.0, 127.0)));
    }
    const double r_int8 = RansCodec::ratio(int8);
    EXPECT_LT(r_int8, 0.60); // "up to 50%" on narrow weight spectra

    // FP16 weights: mantissa bytes are nearly incompressible.
    ByteBuffer fp16(512 * 1024);
    for (std::size_t i = 0; i + 1 < fp16.size(); i += 2) {
        const std::uint16_t h = fp32ToFp16Bits(
            static_cast<float>(rng.gaussian(0.0, 1.0)));
        fp16[i] = static_cast<std::uint8_t>(h);
        fp16[i + 1] = static_cast<std::uint8_t>(h >> 8);
    }
    const double r_fp16 = RansCodec::ratio(fp16);
    EXPECT_GT(r_fp16, 0.75);
    EXPECT_GT(r_fp16, r_int8 + 0.2);
}

TEST(Rans, RatioApproachesEntropyBound)
{
    Rng rng(0xF00D);
    ByteBuffer data(256 * 1024);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(16)); // 4 bits/byte
    const double entropy = RansCodec::entropyBitsPerByte(data);
    EXPECT_NEAR(entropy, 4.0, 0.01);
    const double ratio = RansCodec::ratio(data);
    // Within a few percent of the entropy bound (0.5) + table overhead.
    EXPECT_LT(ratio, 0.53);
    EXPECT_GT(ratio, 0.49);
}

TEST(Lz, RepetitiveInputCompressesHard)
{
    ByteBuffer data(64 * 1024, 0x42);
    EXPECT_LT(LzCodec::ratio(data), 0.02);
    // Batched feature rows: 64-byte records repeating with noise.
    Rng rng(0xABCD);
    ByteBuffer rows(128 * 1024);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i] = static_cast<std::uint8_t>((i % 64) * 3);
        if (rng.chance(0.01))
            rows[i] ^= 0xff;
    }
    EXPECT_LT(LzCodec::ratio(rows), 0.3);
}

TEST(Lz, RandomInputDoesNotExplode)
{
    Rng rng(0x1234);
    ByteBuffer data(64 * 1024);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_LT(LzCodec::ratio(data), 1.1);
}

TEST(Sha, FipsVectors)
{
    EXPECT_EQ(Sha256::hex(Sha256::hash(std::string(""))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
    EXPECT_EQ(Sha256::hex(Sha256::hash(std::string("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
    EXPECT_EQ(Sha256::hex(Sha256::hash(std::string(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopno"
                  "pq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
    // One million 'a' characters.
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(Sha256::hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha, IncrementalMatchesOneShot)
{
    Rng rng(77);
    std::vector<std::uint8_t> data(100000);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    Sha256 inc;
    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t take =
            std::min<std::size_t>(1 + rng.below(999), data.size() - pos);
        inc.update(data.data() + pos, take);
        pos += take;
    }
    EXPECT_EQ(inc.finish(), Sha256::hash(data));
}

TEST(Sha, SingleBitChangeChangesDigest)
{
    std::vector<std::uint8_t> a(1024, 0);
    std::vector<std::uint8_t> b = a;
    b[512] ^= 0x01;
    EXPECT_NE(Sha256::hash(a), Sha256::hash(b));
}

TEST(ControlCoreTest, DeadlockExistsOnlyWithHostWorkingMemory)
{
    ControlCore cc(ControlCoreConfig{
        .cores = 4, .working_mem = ControlMemLocation::HostMemory});
    EXPECT_TRUE(cc.buildHighLoadScenario().hasDeadlock());

    cc.relocateWorkingMem(ControlMemLocation::DeviceSram);
    EXPECT_FALSE(cc.buildHighLoadScenario().hasDeadlock());
}

} // namespace
} // namespace mtia
