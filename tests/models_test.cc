/**
 * @file
 * Tests for the model zoo: Table 1 characteristics of each archetype,
 * the case-study evolution and its rejected-vs-accepted change, the
 * LLM latency verdicts of Sections 3.6/8, and traffic generation.
 */

#include <gtest/gtest.h>

#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "models/case_study.h"
#include "models/llm.h"
#include "models/model_zoo.h"
#include "models/workload.h"

namespace mtia {
namespace {

TEST(ModelZoo, Table1Characteristics)
{
    const ModelInfo retrieval = buildRetrievalModel();
    const ModelInfo early = buildEarlyStageModel();
    const ModelInfo late = buildLateStageModel();

    // Complexity ladder: retrieval < early < late (Table 1).
    EXPECT_LT(retrieval.mflopsPerSample(), early.mflopsPerSample());
    EXPECT_LT(early.mflopsPerSample(), late.mflopsPerSample());
    // Retrieval: very low complexity, large batch, host-heavy.
    EXPECT_LT(retrieval.mflopsPerSample(), 10.0);
    EXPECT_GE(retrieval.batch, 4096);
    EXPECT_GT(retrieval.host_overhead_fraction, 0.2);
    // Embedding footprints: tens to hundreds of GB.
    EXPECT_GT(retrieval.embedding_bytes, 40_GiB);
    EXPECT_GT(early.embedding_bytes, 100_GiB);
    // Late-stage: 0.2-2 GFLOPS/sample territory.
    EXPECT_GT(late.mflopsPerSample(), 100.0);
}

TEST(ModelZoo, Figure6RegistryShape)
{
    const auto models = figure6Models();
    ASSERT_EQ(models.size(), 9u);
    // LC models stay below the HC complexity band.
    for (int i = 0; i < 5; ++i) {
        EXPECT_LT(models[i].mflopsPerSample(),
                  models[5 + i % 4].mflopsPerSample())
            << models[i].name;
    }
    // Every graph validates and carries embeddings.
    for (const auto &m : models) {
        m.graph.validate();
        EXPECT_GT(m.embedding_bytes, 0u) << m.name;
    }
    // The paper's batch-size callouts: LC1 at 4K, HC1 at 2K.
    EXPECT_EQ(models[0].batch, 4096);
    EXPECT_EQ(models[5].batch, 2048);
}

TEST(ModelZoo, HstuModelUsesRaggedAttention)
{
    const ModelInfo hstu = buildHstuModel(8, 16.0, 64);
    bool has_ragged = false;
    for (int id : hstu.graph.topoOrder())
        has_ragged |=
            hstu.graph.node(id).op->kind() == "ragged-attention";
    EXPECT_TRUE(has_ragged);
    EXPECT_GT(hstu.embedding_bytes, 100_GiB); // TB-class per Table 1
}

TEST(CaseStudy, ComplexityGrowsAcrossMonths)
{
    const ModelInfo m0 = buildCaseStudyModel(0);
    const ModelInfo m8 = buildCaseStudyModel(8);
    // 140 -> 940 MFLOPS/sample over eight months (approximate band).
    EXPECT_GT(m0.mflopsPerSample(), 80.0);
    EXPECT_LT(m0.mflopsPerSample(), 250.0);
    EXPECT_GT(m8.mflopsPerSample(), 600.0);
    EXPECT_GT(m8.mflopsPerSample(), 4.0 * m0.mflopsPerSample());
    // Tens of GB of embeddings.
    EXPECT_GT(m0.embedding_bytes, 10_GiB);
    EXPECT_LT(m0.embedding_bytes, 100_GiB);
}

TEST(CaseStudy, StagesAreMonotoneInCapability)
{
    const auto stages = caseStudyStages();
    ASSERT_EQ(stages.size(), 9u);
    EXPECT_FALSE(stages[0].fusions);
    EXPECT_TRUE(stages[8].fusions);
    EXPECT_TRUE(stages[8].tbe_consolidated);
    EXPECT_DOUBLE_EQ(stages[8].frequency_ghz, 1.35);
    // Once enabled, an optimization never regresses.
    for (std::size_t i = 1; i < stages.size(); ++i) {
        EXPECT_GE(stages[i].fusions, stages[i - 1].fusions);
        EXPECT_GE(stages[i].coordinated, stages[i - 1].coordinated);
        EXPECT_GE(stages[i].defer_ibb, stages[i - 1].defer_ibb);
    }
}

TEST(CaseStudy, RejectedChangeOverflowsSramAndCollapsesThroughput)
{
    // Section 6: tripling the remote embedding inputs pushed the
    // activation buffer out of LLS, costing ~90% of throughput; the
    // accepted alternative (two extra DHEN layers) keeps activations
    // pinned while adding compute.
    Device dev(ChipConfig::mtia2i());
    GraphCostModel gcm(dev);

    ModelInfo base = buildCaseStudyModel(6);
    optimizeGraph(base.graph);
    const ModelCost base_cost = gcm.evaluate(base.graph, base.batch);
    EXPECT_TRUE(base_cost.activations_fit_lls);

    ModelInfo rejected = buildCaseStudyRejectedChange();
    optimizeGraph(rejected.graph);
    const ModelCost rej_cost =
        gcm.evaluate(rejected.graph, rejected.batch);
    EXPECT_FALSE(rej_cost.activations_fit_lls);

    ModelInfo alt = buildCaseStudyAlternative();
    optimizeGraph(alt.graph);
    const ModelCost alt_cost = gcm.evaluate(alt.graph, alt.batch);
    EXPECT_TRUE(alt_cost.activations_fit_lls);

    // Throughput: rejected collapses (order 90% drop); the
    // alternative costs only the extra layers.
    EXPECT_LT(rej_cost.qps, 0.35 * base_cost.qps);
    EXPECT_GT(alt_cost.qps, 0.6 * base_cost.qps);
    EXPECT_GT(alt_cost.qps, 3.0 * rej_cost.qps);
}

TEST(Llm, PrefillMeetsTtftButDecodeMissesBudget)
{
    Device dev(ChipConfig::mtia2i());
    for (const auto &cfg :
         {LlamaConfig::llama2_7b(), LlamaConfig::llama3_8b()}) {
        const LlmLatency lat = evaluateLlm(dev, cfg, 2048);
        EXPECT_TRUE(lat.meetsTtft()) << cfg.name;
        EXPECT_FALSE(lat.meetsDecode()) << cfg.name;
    }
}

TEST(Llm, ParameterCountsSane)
{
    EXPECT_NEAR(LlamaConfig::llama2_7b().params() / 1e9, 6.7, 0.5);
    EXPECT_NEAR(LlamaConfig::llama3_8b().params() / 1e9, 8.0, 0.8);
    EXPECT_NEAR(LlamaConfig::llama3_70b().params() / 1e9, 70.0, 5.0);
}

TEST(Llm, SeventyBExceedsDeviceMemory)
{
    const Device dev(ChipConfig::mtia2i());
    EXPECT_GT(LlamaConfig::llama3_70b().paramBytes(DType::FP16),
              dev.config().lpddr.capacity);
}

TEST(Workload, PoissonTraceRateAndOrdering)
{
    Rng rng(21);
    TrafficParams p;
    p.qps = 5000.0;
    p.duration = fromSeconds(4.0);
    const auto trace = generateTrace(rng, p);
    EXPECT_NEAR(static_cast<double>(trace.size()) / 4.0, 5000.0,
                300.0);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
}

TEST(Workload, BurstsRaisePeakToAverage)
{
    Rng rng(23);
    TrafficParams smooth;
    smooth.qps = 2000.0;
    smooth.duration = fromSeconds(5.0);
    TrafficParams bursty = smooth;
    bursty.burst_fraction = 0.2;
    const double p2a_smooth =
        peakToAverage(generateTrace(rng, smooth), fromMillis(10.0));
    const double p2a_bursty =
        peakToAverage(generateTrace(rng, bursty), fromMillis(10.0));
    EXPECT_GT(p2a_bursty, p2a_smooth);
}

TEST(Workload, DiurnalModulationChangesWindowRates)
{
    Rng rng(25);
    TrafficParams p;
    p.qps = 3000.0;
    p.duration = fromSeconds(10.0);
    p.diurnal_depth = 0.5;
    p.diurnal_period = fromSeconds(10.0);
    const auto trace = generateTrace(rng, p);
    // First half (rising sine) should out-rate the second half.
    std::size_t first = 0;
    for (const auto &r : trace)
        first += r.arrival < fromSeconds(5.0);
    EXPECT_GT(static_cast<double>(first),
              0.55 * static_cast<double>(trace.size()));
}

} // namespace
} // namespace mtia
