/**
 * @file
 * Tests for the autotuning framework: KD-tree ANN vs brute force
 * (property sweep), kernel tuning (1000x cheaper within 5%), batch
 * tuning with the placement fallback, coalescing tuning (>95% fill),
 * and NUMA-aware sharding.
 */

#include <gtest/gtest.h>

#include "autotune/batch_tuner.h"
#include "autotune/coalescing_tuner.h"
#include "autotune/kernel_tuner.h"
#include "autotune/perf_database.h"
#include "autotune/sharding.h"
#include "models/model_zoo.h"
#include "sim/random.h"

namespace mtia {
namespace {

TEST(KdTreeTest, NearestMatchesBruteForceOnRandomSets)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.below(200);
        std::vector<ShapeKey> pts(n);
        for (auto &p : pts)
            for (auto &x : p)
                x = rng.uniform(0.0, 16.0);
        KdTree tree(pts);
        for (int q = 0; q < 20; ++q) {
            ShapeKey query;
            for (auto &x : query)
                x = rng.uniform(-1.0, 17.0);
            const std::size_t got = tree.nearest(query);
            double best = KdTree::dist2(pts[got], query);
            for (const auto &p : pts)
                EXPECT_GE(KdTree::dist2(p, query) + 1e-12, best);
        }
    }
}

TEST(PerfDatabaseTest, LookupReturnsNearestShape)
{
    PerfDatabase db;
    db.insert({FcShape{128, 256, 256}, FcOptions{}, 100});
    db.insert({FcShape{2048, 2048, 2048}, FcOptions{}, 200});
    const auto hit = db.lookup(FcShape{1900, 2100, 2000});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->shape.m, 2048);
    const auto hit2 = db.lookup(FcShape{100, 300, 200});
    ASSERT_TRUE(hit2.has_value());
    EXPECT_EQ(hit2->shape.m, 128);
}

class KernelTunerTest : public ::testing::Test
{
  protected:
    KernelTunerTest()
        : dev_(ChipConfig::mtia2i()), km_(dev_), tuner_(km_) {}

    std::vector<FcShape>
    corpus() const
    {
        std::vector<FcShape> shapes;
        Rng rng(37);
        for (int i = 0; i < 60; ++i) {
            shapes.push_back(FcShape{
                static_cast<std::int64_t>(32u << rng.below(6)),
                static_cast<std::int64_t>(128u << rng.below(6)),
                static_cast<std::int64_t>(128u << rng.below(5))});
        }
        return shapes;
    }

    Device dev_;
    KernelCostModel km_;
    KernelTuner tuner_;
};

TEST_F(KernelTunerTest, ExhaustivePicksFeasibleBest)
{
    const TuneResult r = tuner_.tuneExhaustive(FcShape{512, 512, 512});
    EXPECT_GT(r.kernel_time, 0u);
    // Small weights: the cached (LLC) variant must win over DRAM.
    EXPECT_EQ(r.variant.weights, Placement::Llc);
}

TEST_F(KernelTunerTest, HugeWeightsForceStreamingVariant)
{
    // 26592 x 20480 fp16 ~ 1 GB: cannot be LLC-resident.
    const TuneResult r =
        tuner_.tuneExhaustive(FcShape{512, 26592, 20480});
    EXPECT_EQ(r.variant.weights, Placement::Dram);
    EXPECT_TRUE(r.variant.coordinated_loading);
}

TEST_F(KernelTunerTest, AnnWithinFivePercentAndOrdersOfMagnitudeCheaper)
{
    // Section 4.1: ANN tuning cut FC tuning time by up to 1000x while
    // staying within 5% of exhaustive kernel performance.
    PerfDatabase db = tuner_.buildDatabase(corpus());
    Rng rng(41);
    double worst_ratio = 1.0;
    double total_exhaustive_cost = 0.0;
    double total_ann_cost = 0.0;
    for (int i = 0; i < 40; ++i) {
        // Query shapes near (but not equal to) the corpus.
        const FcShape q{
            static_cast<std::int64_t>(24u << rng.below(6)),
            static_cast<std::int64_t>(96u << rng.below(6)),
            static_cast<std::int64_t>(160u << rng.below(5))};
        const TuneResult ex = tuner_.tuneExhaustive(q);
        const TuneResult ann = tuner_.tuneApproximate(q, db);
        worst_ratio = std::max(
            worst_ratio, static_cast<double>(ann.kernel_time) /
                static_cast<double>(ex.kernel_time));
        total_exhaustive_cost += static_cast<double>(ex.tuning_cost);
        total_ann_cost += static_cast<double>(ann.tuning_cost);
    }
    EXPECT_LT(worst_ratio, 1.05);
    EXPECT_GT(total_exhaustive_cost / total_ann_cost, 1000.0);
}

TEST(BatchTunerTest, PrefersLargerBatchUnderSlo)
{
    Device dev(ChipConfig::mtia2i());
    BatchSizeTuner tuner(dev);
    auto builder = [](std::int64_t batch) {
        RankingModelParams p;
        p.batch = batch;
        p.tbe = TbeTableSpec{.tables = 16,
                             .rows_per_table = 1 << 20,
                             .dim = 64,
                             .dtype = DType::FP16,
                             .zipf_alpha = 0.9};
        p.dhen_layers = 1;
        p.dhen_width = 256;
        return buildRankingModel(p);
    };
    std::size_t winner = 0;
    const auto snaps = tuner.evaluate(builder, {128, 512, 2048},
                                      fromMillis(100.0), winner);
    ASSERT_EQ(snaps.size(), 3u);
    // Bigger batches amortize launches: throughput grows.
    EXPECT_GT(snaps[2].cost.qps, snaps[0].cost.qps);
    EXPECT_EQ(snaps[winner].batch, 2048);
}

TEST(CoalescingTunerTest, TunedConfigFillsBatches)
{
    Rng rng(43);
    TrafficParams t;
    t.qps = 4000.0;
    t.duration = fromSeconds(5.0);
    t.candidates_mean = 64;
    const auto trace = generateTrace(rng, t);

    CoalescingTuner tuner(fromMillis(10.0));
    const auto candidates = tuner.sweep(
        trace, /*batch_capacity=*/512,
        {fromMillis(0.5), fromMillis(2.0), fromMillis(8.0),
         fromMillis(32.0)},
        {1, 2, 4});
    ASSERT_FALSE(candidates.empty());
    // Section 4.1: with effective autotuning, >95% fill is typical.
    EXPECT_GT(candidates.front().stats.mean_fill, 0.95);
    EXPECT_LE(candidates.front().stats.mean_wait, fromMillis(40.0));
    // The sweep must actually discriminate configurations.
    EXPECT_GT(candidates.front().score, candidates.back().score);
}

TEST(ShardingTest, ShardCountFromMemoryFootprint)
{
    ShardingPlanner planner(ChipConfig::mtia2i()); // 128 GB LPDDR
    EXPECT_EQ(planner.shardsNeeded(40_GiB, 8_GiB), 1u);
    EXPECT_EQ(planner.shardsNeeded(200_GiB, 8_GiB), 2u);
    EXPECT_EQ(planner.shardsNeeded(1024_GiB, 8_GiB), 9u);
}

TEST(ShardingTest, NumaAwarePlacementStaysOnOneSocket)
{
    ShardingPlanner planner(ChipConfig::mtia2i());
    std::vector<bool> occupied(24, false);
    // Occupy most of socket 0 (chips 0..11): only 2 free there.
    for (unsigned c = 0; c < 10; ++c)
        occupied[c] = true;
    const ShardingPlan plan =
        planner.plan(300_GiB, 8_GiB, occupied); // needs 3 shards
    ASSERT_EQ(plan.shards, 3u);
    ASSERT_EQ(plan.chips.size(), 3u);
    ServerTopology topo;
    // Socket 0 has only 2 free chips: the plan must use socket 1.
    for (unsigned chip : plan.chips)
        EXPECT_EQ(topo.socketOf(chip), 1u);
}

TEST(ShardingTest, FailsCleanlyWhenNoSocketFits)
{
    ShardingPlanner planner(ChipConfig::mtia2i());
    std::vector<bool> occupied(24, true);
    occupied[0] = occupied[12] = false; // one free chip per socket
    const ShardingPlan plan = planner.plan(300_GiB, 8_GiB, occupied);
    EXPECT_TRUE(plan.chips.empty());
}

TEST(GemmKernelTunerTest, VariantSpaceCoversSupportedTiersScalarFirst)
{
    const std::vector<GemmVariant> space =
        GemmKernelTuner::variantSpace();
    ASSERT_FALSE(space.empty());
    EXPECT_EQ(space.front().isa, simd::SimdIsa::Scalar);
    for (const GemmVariant &v : space) {
        EXPECT_TRUE(simd::isaSupported(v.isa)) << v.name();
        EXPECT_GT(v.blocking.mc, 0);
        EXPECT_GT(v.blocking.kc, 0);
        EXPECT_GT(v.blocking.nc, 0);
    }
    // Every supported tier appears, with every blocking config.
    std::size_t tiers = 0;
    for (const simd::SimdIsa isa :
         {simd::SimdIsa::Scalar, simd::SimdIsa::Sse2,
          simd::SimdIsa::Neon, simd::SimdIsa::Avx2,
          simd::SimdIsa::Avx512}) {
        if (simd::isaSupported(isa))
            ++tiers;
    }
    EXPECT_EQ(space.size() % tiers, 0u);
    EXPECT_GE(space.size() / tiers, 3u);
}

TEST(GemmKernelTunerTest, NonScalarVariantWinsGemmHeavyWorkload)
{
    // The measured sweep must pick a vectorized variant on a
    // GEMM-heavy shape whenever one exists: the blocked SSE2/NEON
    // kernels are several-fold faster than the blocked scalar path,
    // far outside scheduler noise.
    const GemmKernelTuner tuner;
    const GemmTuneResult r = tuner.tuneMeasured(FcShape{256, 256, 256});
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.gflops, 0.0);
    const bool has_vector = simd::isaSupported(simd::SimdIsa::Sse2) ||
        simd::isaSupported(simd::SimdIsa::Neon);
    if (has_vector) {
        EXPECT_NE(r.variant.isa, simd::SimdIsa::Scalar)
            << "picked " << r.variant.name();
    }
}

TEST(GemmKernelTunerTest, ApproximateAdoptsNeighborAndFillsMisses)
{
    const GemmKernelTuner tuner(1);
    GemmVariantDatabase db;
    // Miss: falls back to a measured sweep and records it.
    const GemmTuneResult first =
        tuner.tuneApproximate(FcShape{96, 96, 96}, db);
    EXPECT_EQ(db.size(), 1u);
    // Hit: a nearby shape adopts the recorded winner's variant.
    const GemmTuneResult near =
        tuner.tuneApproximate(FcShape{100, 100, 100}, db);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_EQ(near.variant.name(), first.variant.name());
}

TEST(GemmKernelTunerTest, BuildDatabaseMeasuresWholeCorpus)
{
    const GemmKernelTuner tuner(1);
    const std::vector<FcShape> corpus = {
        {64, 64, 64}, {32, 128, 64}, {128, 32, 96}};
    const GemmVariantDatabase db = tuner.buildDatabase(corpus);
    EXPECT_EQ(db.size(), corpus.size());
    const auto hit = db.lookup(FcShape{64, 64, 64});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->shape.m, 64);
    EXPECT_GT(hit->best_seconds, 0.0);
    EXPECT_GT(hit->best_gflops, 0.0);
}

} // namespace
} // namespace mtia
