/**
 * @file
 * Tests for the autotuning framework: KD-tree ANN vs brute force
 * (property sweep), k-nearest queries with deterministic tie-breaks,
 * kernel tuning (1000x cheaper within 5%), batch tuning with the
 * placement fallback, coalescing tuning (>95% fill), NUMA-aware
 * sharding, and the surrogate-guided explore -> predict -> verify
 * loop: training determinism across lane counts, monotone-feature
 * sanity, warm-start equivalence, held-out accuracy, and the
 * MTIA_SURROGATE=0 exhaustive fallback.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "autotune/autotune_stats.h"
#include "autotune/batch_tuner.h"
#include "autotune/coalescing_tuner.h"
#include "autotune/kernel_tuner.h"
#include "autotune/perf_database.h"
#include "autotune/sharding.h"
#include "autotune/surrogate.h"
#include "core/parallel.h"
#include "models/model_zoo.h"
#include "sim/random.h"

namespace mtia {
namespace {

TEST(KdTreeTest, NearestMatchesBruteForceOnRandomSets)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.below(200);
        std::vector<ShapeKey> pts(n);
        for (auto &p : pts)
            for (auto &x : p)
                x = rng.uniform(0.0, 16.0);
        KdTree tree(pts);
        for (int q = 0; q < 20; ++q) {
            ShapeKey query;
            for (auto &x : query)
                x = rng.uniform(-1.0, 17.0);
            const std::size_t got = tree.nearest(query);
            double best = KdTree::dist2(pts[got], query);
            for (const auto &p : pts)
                EXPECT_GE(KdTree::dist2(p, query) + 1e-12, best);
        }
    }
}

TEST(KdTreeTest, NearestKMatchesBruteForceOnRandomSets)
{
    Rng rng(53);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 1 + rng.below(150);
        std::vector<ShapeKey> pts(n);
        for (auto &p : pts)
            for (auto &x : p)
                x = rng.uniform(0.0, 16.0);
        KdTree tree(pts);
        for (const std::size_t k :
             {std::size_t{1}, std::size_t{5}, n, n + 3}) {
            ShapeKey query;
            for (auto &x : query)
                x = rng.uniform(-1.0, 17.0);
            // Brute-force reference: sort every index by
            // (distance, index) and truncate.
            std::vector<std::size_t> want(n);
            std::iota(want.begin(), want.end(), std::size_t{0});
            std::sort(want.begin(), want.end(),
                      [&](std::size_t a, std::size_t b) {
                          const double da = KdTree::dist2(pts[a], query);
                          const double db = KdTree::dist2(pts[b], query);
                          if (da != db)
                              return da < db;
                          return a < b;
                      });
            want.resize(std::min(k, n));
            EXPECT_EQ(tree.nearestK(query, k), want);
        }
    }
}

TEST(KdTreeTest, EqualDistanceTiesPreferLowestIndex)
{
    // Four copies of the same point plus a far one: every query tie
    // must resolve to the lowest index, in every result slot.
    std::vector<ShapeKey> pts = {{1.0, 1.0, 1.0},
                                 {1.0, 1.0, 1.0},
                                 {1.0, 1.0, 1.0},
                                 {1.0, 1.0, 1.0},
                                 {9.0, 9.0, 9.0}};
    KdTree tree(pts);
    const ShapeKey q{1.5, 1.0, 1.0};
    EXPECT_EQ(tree.nearest(q), 0u);
    const std::vector<std::size_t> want = {0, 1, 2, 3};
    EXPECT_EQ(tree.nearestK(q, 4), want);
}

TEST(KdTreeTest, QueriesInvariantToInsertionOrderOfDuplicates)
{
    // Regression for the KD-tree build tie-break: nth_element's
    // partitioning of equal keys is unspecified, so without the
    // index tie-break in the build comparator, permuting duplicate
    // points could reshape the tree and change which tied index a
    // query returns. Queries over any permutation must return the
    // same coordinates.
    Rng rng(59);
    std::vector<ShapeKey> pts;
    for (int i = 0; i < 40; ++i) {
        // Coarse grid: plenty of duplicate coordinates.
        pts.push_back(ShapeKey{static_cast<double>(rng.below(4)),
                               static_cast<double>(rng.below(4)),
                               static_cast<double>(rng.below(4))});
    }
    std::vector<ShapeKey> reversed(pts.rbegin(), pts.rend());
    KdTree a(pts);
    KdTree b(reversed);
    for (int t = 0; t < 40; ++t) {
        const ShapeKey q{rng.uniform(-0.5, 4.5), rng.uniform(-0.5, 4.5),
                         rng.uniform(-0.5, 4.5)};
        const std::vector<std::size_t> ka = a.nearestK(q, 6);
        const std::vector<std::size_t> kb = b.nearestK(q, 6);
        ASSERT_EQ(ka.size(), kb.size());
        for (std::size_t i = 0; i < ka.size(); ++i)
            EXPECT_EQ(pts[ka[i]], reversed[kb[i]]);
    }
}

TEST(PerfDatabaseTest, LookupReturnsNearestShape)
{
    PerfDatabase db;
    db.insert({FcShape{128, 256, 256}, FcOptions{}, 100});
    db.insert({FcShape{2048, 2048, 2048}, FcOptions{}, 200});
    const auto hit = db.lookup(FcShape{1900, 2100, 2000});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->shape.m, 2048);
    const auto hit2 = db.lookup(FcShape{100, 300, 200});
    ASSERT_TRUE(hit2.has_value());
    EXPECT_EQ(hit2->shape.m, 128);
}

TEST(PerfDatabaseTest, LookupKReturnsNeighboursClosestFirst)
{
    PerfDatabase db;
    db.insert({FcShape{128, 256, 256}, FcOptions{}, 100});
    db.insert({FcShape{256, 512, 512}, FcOptions{}, 150});
    db.insert({FcShape{2048, 2048, 2048}, FcOptions{}, 200});
    const auto near = db.lookupK(FcShape{128, 256, 256}, 2);
    ASSERT_EQ(near.size(), 2u);
    EXPECT_EQ(near[0].shape.m, 128);
    EXPECT_EQ(near[1].shape.m, 256);
    // k beyond the database size clamps; empty database yields empty.
    EXPECT_EQ(db.lookupK(FcShape{64, 64, 64}, 10).size(), 3u);
    EXPECT_TRUE(PerfDatabase{}.lookupK(FcShape{64, 64, 64}, 4).empty());
}

TEST(PerfDatabaseTest, LookupKBreaksDistanceTiesByInsertionOrder)
{
    // Two identical shapes with different recorded variants: the
    // first inserted must come back first, whatever the tree layout.
    PerfDatabase db;
    FcOptions first;
    first.weights = Placement::Llc;
    FcOptions second;
    second.weights = Placement::Dram;
    db.insert({FcShape{512, 512, 512}, first, 100});
    db.insert({FcShape{512, 512, 512}, second, 200});
    const auto near = db.lookupK(FcShape{512, 512, 512}, 2);
    ASSERT_EQ(near.size(), 2u);
    EXPECT_EQ(near[0].best_time, 100u);
    EXPECT_EQ(near[1].best_time, 200u);
}

class KernelTunerTest : public ::testing::Test
{
  protected:
    KernelTunerTest()
        : dev_(ChipConfig::mtia2i()), km_(dev_), tuner_(km_) {}

    std::vector<FcShape>
    corpus() const
    {
        std::vector<FcShape> shapes;
        Rng rng(37);
        for (int i = 0; i < 60; ++i) {
            shapes.push_back(FcShape{
                static_cast<std::int64_t>(32u << rng.below(6)),
                static_cast<std::int64_t>(128u << rng.below(6)),
                static_cast<std::int64_t>(128u << rng.below(5))});
        }
        return shapes;
    }

    Device dev_;
    KernelCostModel km_;
    KernelTuner tuner_;
};

TEST_F(KernelTunerTest, ExhaustivePicksFeasibleBest)
{
    const TuneResult r = tuner_.tuneExhaustive(FcShape{512, 512, 512});
    EXPECT_GT(r.kernel_time, 0u);
    // Small weights: the cached (LLC) variant must win over DRAM.
    EXPECT_EQ(r.variant.weights, Placement::Llc);
}

TEST_F(KernelTunerTest, HugeWeightsForceStreamingVariant)
{
    // 26592 x 20480 fp16 ~ 1 GB: cannot be LLC-resident.
    const TuneResult r =
        tuner_.tuneExhaustive(FcShape{512, 26592, 20480});
    EXPECT_EQ(r.variant.weights, Placement::Dram);
    EXPECT_TRUE(r.variant.coordinated_loading);
}

TEST_F(KernelTunerTest, AnnWithinFivePercentAndOrdersOfMagnitudeCheaper)
{
    // Section 4.1: ANN tuning cut FC tuning time by up to 1000x while
    // staying within 5% of exhaustive kernel performance.
    PerfDatabase db = tuner_.buildDatabase(corpus());
    Rng rng(41);
    double worst_ratio = 1.0;
    double total_exhaustive_cost = 0.0;
    double total_ann_cost = 0.0;
    for (int i = 0; i < 40; ++i) {
        // Query shapes near (but not equal to) the corpus.
        const FcShape q{
            static_cast<std::int64_t>(24u << rng.below(6)),
            static_cast<std::int64_t>(96u << rng.below(6)),
            static_cast<std::int64_t>(160u << rng.below(5))};
        const TuneResult ex = tuner_.tuneExhaustive(q);
        const TuneResult ann = tuner_.tuneApproximate(q, db);
        worst_ratio = std::max(
            worst_ratio, static_cast<double>(ann.kernel_time) /
                static_cast<double>(ex.kernel_time));
        total_exhaustive_cost += static_cast<double>(ex.tuning_cost);
        total_ann_cost += static_cast<double>(ann.tuning_cost);
    }
    EXPECT_LT(worst_ratio, 1.05);
    EXPECT_GT(total_exhaustive_cost / total_ann_cost, 1000.0);
}

TEST(BatchTunerTest, PrefersLargerBatchUnderSlo)
{
    Device dev(ChipConfig::mtia2i());
    BatchSizeTuner tuner(dev);
    auto builder = [](std::int64_t batch) {
        RankingModelParams p;
        p.batch = batch;
        p.tbe = TbeTableSpec{.tables = 16,
                             .rows_per_table = 1 << 20,
                             .dim = 64,
                             .dtype = DType::FP16,
                             .zipf_alpha = 0.9};
        p.dhen_layers = 1;
        p.dhen_width = 256;
        return buildRankingModel(p);
    };
    std::size_t winner = 0;
    const auto snaps = tuner.evaluate(builder, {128, 512, 2048},
                                      fromMillis(100.0), winner);
    ASSERT_EQ(snaps.size(), 3u);
    // Bigger batches amortize launches: throughput grows.
    EXPECT_GT(snaps[2].cost.qps, snaps[0].cost.qps);
    EXPECT_EQ(snaps[winner].batch, 2048);
}

TEST(CoalescingTunerTest, TunedConfigFillsBatches)
{
    Rng rng(43);
    TrafficParams t;
    t.qps = 4000.0;
    t.duration = fromSeconds(5.0);
    t.candidates_mean = 64;
    const auto trace = generateTrace(rng, t);

    CoalescingTuner tuner(fromMillis(10.0));
    const auto candidates = tuner.sweep(
        trace, /*batch_capacity=*/512,
        {fromMillis(0.5), fromMillis(2.0), fromMillis(8.0),
         fromMillis(32.0)},
        {1, 2, 4});
    ASSERT_FALSE(candidates.empty());
    // Section 4.1: with effective autotuning, >95% fill is typical.
    EXPECT_GT(candidates.front().stats.mean_fill, 0.95);
    EXPECT_LE(candidates.front().stats.mean_wait, fromMillis(40.0));
    // The sweep must actually discriminate configurations.
    EXPECT_GT(candidates.front().score, candidates.back().score);
}

TEST(ShardingTest, ShardCountFromMemoryFootprint)
{
    ShardingPlanner planner(ChipConfig::mtia2i()); // 128 GB LPDDR
    EXPECT_EQ(planner.shardsNeeded(40_GiB, 8_GiB), 1u);
    EXPECT_EQ(planner.shardsNeeded(200_GiB, 8_GiB), 2u);
    EXPECT_EQ(planner.shardsNeeded(1024_GiB, 8_GiB), 9u);
}

TEST(ShardingTest, NumaAwarePlacementStaysOnOneSocket)
{
    ShardingPlanner planner(ChipConfig::mtia2i());
    std::vector<bool> occupied(24, false);
    // Occupy most of socket 0 (chips 0..11): only 2 free there.
    for (unsigned c = 0; c < 10; ++c)
        occupied[c] = true;
    const ShardingPlan plan =
        planner.plan(300_GiB, 8_GiB, occupied); // needs 3 shards
    ASSERT_EQ(plan.shards, 3u);
    ASSERT_EQ(plan.chips.size(), 3u);
    ServerTopology topo;
    // Socket 0 has only 2 free chips: the plan must use socket 1.
    for (unsigned chip : plan.chips)
        EXPECT_EQ(topo.socketOf(chip), 1u);
}

TEST(ShardingTest, FailsCleanlyWhenNoSocketFits)
{
    ShardingPlanner planner(ChipConfig::mtia2i());
    std::vector<bool> occupied(24, true);
    occupied[0] = occupied[12] = false; // one free chip per socket
    const ShardingPlan plan = planner.plan(300_GiB, 8_GiB, occupied);
    EXPECT_TRUE(plan.chips.empty());
}

TEST(GemmKernelTunerTest, VariantSpaceCoversSupportedTiersScalarFirst)
{
    const std::vector<GemmVariant> space =
        GemmKernelTuner::variantSpace();
    ASSERT_FALSE(space.empty());
    EXPECT_EQ(space.front().isa, simd::SimdIsa::Scalar);
    for (const GemmVariant &v : space) {
        EXPECT_TRUE(simd::isaSupported(v.isa)) << v.name();
        EXPECT_GT(v.blocking.mc, 0);
        EXPECT_GT(v.blocking.kc, 0);
        EXPECT_GT(v.blocking.nc, 0);
    }
    // Every supported tier appears, with every blocking config.
    std::size_t tiers = 0;
    for (const simd::SimdIsa isa :
         {simd::SimdIsa::Scalar, simd::SimdIsa::Sse2,
          simd::SimdIsa::Neon, simd::SimdIsa::Avx2,
          simd::SimdIsa::Avx512}) {
        if (simd::isaSupported(isa))
            ++tiers;
    }
    EXPECT_EQ(space.size() % tiers, 0u);
    EXPECT_GE(space.size() / tiers, 3u);
}

TEST(GemmKernelTunerTest, NonScalarVariantWinsGemmHeavyWorkload)
{
    // The measured sweep must pick a vectorized variant on a
    // GEMM-heavy shape whenever one exists: the blocked SSE2/NEON
    // kernels are several-fold faster than the blocked scalar path,
    // far outside scheduler noise.
    const GemmKernelTuner tuner;
    const GemmTuneResult r = tuner.tuneMeasured(FcShape{256, 256, 256});
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.gflops, 0.0);
    const bool has_vector = simd::isaSupported(simd::SimdIsa::Sse2) ||
        simd::isaSupported(simd::SimdIsa::Neon);
    if (has_vector) {
        EXPECT_NE(r.variant.isa, simd::SimdIsa::Scalar)
            << "picked " << r.variant.name();
    }
}

TEST(GemmKernelTunerTest, ApproximateAdoptsNeighborAndFillsMisses)
{
    const GemmKernelTuner tuner(1);
    GemmVariantDatabase db;
    // Miss: falls back to a measured sweep and records it.
    const GemmTuneResult first =
        tuner.tuneApproximate(FcShape{96, 96, 96}, db);
    EXPECT_EQ(db.size(), 1u);
    // Hit: a nearby shape adopts the recorded winner's variant.
    const GemmTuneResult near =
        tuner.tuneApproximate(FcShape{100, 100, 100}, db);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_EQ(near.variant.name(), first.variant.name());
}

TEST(GemmKernelTunerTest, BuildDatabaseMeasuresWholeCorpus)
{
    const GemmKernelTuner tuner(1);
    const std::vector<FcShape> corpus = {
        {64, 64, 64}, {32, 128, 64}, {128, 32, 96}};
    const GemmVariantDatabase db = tuner.buildDatabase(corpus);
    EXPECT_EQ(db.size(), corpus.size());
    const auto hit = db.lookup(FcShape{64, 64, 64});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->shape.m, 64);
    EXPECT_GT(hit->best_seconds, 0.0);
    EXPECT_GT(hit->best_gflops, 0.0);
}

// ---------------------------------------------------------- surrogate

/** Smooth synthetic cost over a 1-D index grid (pure per index). */
double
syntheticCost(std::size_t i)
{
    const double x = static_cast<double>(i) / 40.0;
    return 50.0 + 30.0 * (x - 4.0) * (x - 4.0) + 5.0 * std::sin(3.0 * x);
}

FeatureVec
syntheticFeatures(std::size_t i)
{
    FeatureVec f{};
    f[0] = static_cast<double>(i) / 40.0;
    f[1] = std::log2(static_cast<double>(i + 1));
    return f;
}

TEST(SurrogateTest, TrainingIsByteIdenticalAcrossLaneCounts)
{
    // Build a deterministic training set once.
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (std::size_t i = 0; i < 48; ++i) {
        x.push_back(syntheticFeatures(i * 7));
        y.push_back(syntheticCost(i * 7));
    }
    for (const SurrogateKind kind :
         {SurrogateKind::Stumps, SurrogateKind::Mlp}) {
        std::string ref_dump;
        std::vector<double> ref_pred;
        for (const unsigned lanes : {1u, 2u, 8u}) {
            ScopedParallelism scoped(lanes);
            const auto model = makeSurrogate(kind);
            model->fit(x, y);
            std::vector<double> pred;
            for (std::size_t i = 0; i < 300; i += 11)
                pred.push_back(model->predict(syntheticFeatures(i)));
            if (lanes == 1) {
                ref_dump = model->describe();
                ref_pred = pred;
                continue;
            }
            // Byte-identical model (hex-float dump) and predictions.
            EXPECT_EQ(model->describe(), ref_dump)
                << surrogateKindName(kind) << " at " << lanes
                << " lanes";
            EXPECT_EQ(pred, ref_pred);
        }
    }
}

TEST(SurrogateTest, SweepIsByteIdenticalAcrossLaneCounts)
{
    ScopedSurrogate on(true);
    SurrogateSweepResult ref;
    for (const unsigned lanes : {1u, 2u, 8u}) {
        ScopedParallelism scoped(lanes);
        const SurrogateSweepResult r = surrogateArgmin(
            400, syntheticFeatures, syntheticCost);
        if (lanes == 1) {
            ref = r;
            EXPECT_TRUE(r.used_surrogate);
            continue;
        }
        EXPECT_EQ(r.best_index, ref.best_index);
        EXPECT_EQ(r.best_cost, ref.best_cost);
        EXPECT_EQ(r.predicted, ref.predicted);
        EXPECT_EQ(r.measured, ref.measured);
        EXPECT_EQ(r.measured_cost, ref.measured_cost);
        EXPECT_EQ(r.mae, ref.mae);
    }
}

TEST(SurrogateTest, MonotoneCostLearnsMonotonePredictions)
{
    // Cost strictly increasing in feature 0: the fitted model must
    // rank a far-right candidate above a far-left one, for both
    // backends.
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (std::size_t i = 0; i < 64; ++i) {
        FeatureVec f{};
        f[0] = static_cast<double>(i);
        x.push_back(f);
        y.push_back(10.0 + 3.0 * static_cast<double>(i));
    }
    for (const SurrogateKind kind :
         {SurrogateKind::Stumps, SurrogateKind::Mlp}) {
        const auto model = makeSurrogate(kind);
        model->fit(x, y);
        FeatureVec lo{};
        lo[0] = 4.0;
        FeatureVec mid{};
        mid[0] = 32.0;
        FeatureVec hi{};
        hi[0] = 60.0;
        EXPECT_LT(model->predict(lo), model->predict(mid))
            << surrogateKindName(kind);
        EXPECT_LT(model->predict(mid), model->predict(hi))
            << surrogateKindName(kind);
    }
}

TEST(SurrogateTest, HeldOutAccuracyOnSmoothSyntheticCost)
{
    // Train on a 48-sample stride, score on held-out indices: the
    // relative MAE must clear a loose bound for both backends (the
    // synthetic landscape spans ~[50, 530]).
    std::vector<FeatureVec> x;
    std::vector<double> y;
    for (std::size_t i = 0; i < 400; i += 8) {
        x.push_back(syntheticFeatures(i));
        y.push_back(syntheticCost(i));
    }
    for (const SurrogateKind kind :
         {SurrogateKind::Stumps, SurrogateKind::Mlp}) {
        const auto model = makeSurrogate(kind);
        model->fit(x, y);
        double abs_err = 0.0;
        double mean = 0.0;
        std::size_t held = 0;
        for (std::size_t i = 3; i < 400; i += 8) {
            abs_err += std::abs(model->predict(syntheticFeatures(i)) -
                                syntheticCost(i));
            mean += syntheticCost(i);
            ++held;
        }
        const double mae_pct =
            abs_err / mean * 100.0;
        EXPECT_LT(mae_pct, 10.0) << surrogateKindName(kind);
    }
}

TEST(SurrogateTest, DisabledSweepIsExhaustiveAndFindsTrueArgmin)
{
    ScopedSurrogate off(false);
    const SurrogateSweepResult r = surrogateArgmin(
        400, syntheticFeatures, syntheticCost);
    EXPECT_FALSE(r.used_surrogate);
    EXPECT_EQ(r.real_evals, 400u);
    EXPECT_EQ(r.surrogate_evals, 0u);
    EXPECT_TRUE(r.predicted.empty());
    ASSERT_EQ(r.measured.size(), 400u);
    // True argmin with lowest-index tie-breaking.
    std::size_t want = 0;
    for (std::size_t i = 1; i < 400; ++i)
        if (syntheticCost(i) < syntheticCost(want))
            want = i;
    EXPECT_EQ(r.best_index, want);
    EXPECT_EQ(r.best_cost, syntheticCost(want));
}

TEST(SurrogateTest, SmallGridFallsBackToExhaustiveEvenWhenEnabled)
{
    ScopedSurrogate on(true);
    SurrogateSweepOptions o;
    o.seed_count = 8;
    o.top_k = 4;
    const SurrogateSweepResult r =
        surrogateArgmin(12, syntheticFeatures, syntheticCost, o);
    EXPECT_FALSE(r.used_surrogate);
    EXPECT_EQ(r.real_evals, 12u);
}

TEST(SurrogateTest, SurrogateSweepFindsNearOptimalWithFewEvals)
{
    ScopedSurrogate on(true);
    const SurrogateSweepResult r = surrogateArgmin(
        400, syntheticFeatures, syntheticCost);
    EXPECT_TRUE(r.used_surrogate);
    EXPECT_LT(r.real_evals, 40u); // seeds + top-k, not 400
    EXPECT_EQ(r.surrogate_evals, 400u);
    // The smooth landscape's optimum must be recovered exactly.
    std::size_t want = 0;
    for (std::size_t i = 1; i < 400; ++i)
        if (syntheticCost(i) < syntheticCost(want))
            want = i;
    EXPECT_EQ(r.best_index, want);
}

TEST(SurrogateTest, EnvVariableTogglesAndScopesNest)
{
    // No override: MTIA_SURROGATE=0 (and only "0") disables.
    ASSERT_EQ(setenv("MTIA_SURROGATE", "0", 1), 0);
    EXPECT_FALSE(surrogateEnabled());
    ASSERT_EQ(setenv("MTIA_SURROGATE", "1", 1), 0);
    EXPECT_TRUE(surrogateEnabled());
    ASSERT_EQ(setenv("MTIA_SURROGATE", "0", 1), 0);
    {
        ScopedSurrogate outer(true);
        EXPECT_TRUE(surrogateEnabled());
        {
            ScopedSurrogate inner(false);
            EXPECT_FALSE(surrogateEnabled());
        }
        EXPECT_TRUE(surrogateEnabled());
    }
    EXPECT_FALSE(surrogateEnabled());
    ASSERT_EQ(unsetenv("MTIA_SURROGATE"), 0);
    EXPECT_TRUE(surrogateEnabled());
}

TEST(SurrogateTest, StatsCountEvalsAndErrors)
{
    autotune::resetStats();
    ScopedSurrogate on(true);
    SurrogateSweepOptions o;
    o.seed_count = 16;
    o.top_k = 8;
    const SurrogateSweepResult r =
        surrogateArgmin(300, syntheticFeatures, syntheticCost, o);
    EXPECT_EQ(autotune::surrogateEvals(), 300u);
    EXPECT_EQ(autotune::realEvals(), r.real_evals);
    EXPECT_EQ(autotune::surrogateMae(), r.mae);
    autotune::resetStats();
    EXPECT_EQ(autotune::surrogateEvals(), 0u);
    EXPECT_EQ(autotune::realEvals(), 0u);
    EXPECT_EQ(autotune::surrogateMae(), 0.0);
}

TEST_F(KernelTunerTest, SurrogateDisabledMatchesExhaustiveGridSweep)
{
    // With the surrogate off, tuneSurrogate must pick the true argmin
    // of the extended grid, bit-identically at any lane count.
    ScopedSurrogate off(false);
    const FcShape q{384, 1536, 768};
    KernelSurrogateResult ref;
    for (const unsigned lanes : {1u, 8u}) {
        ScopedParallelism scoped(lanes);
        const KernelSurrogateResult r = tuner_.tuneSurrogate(q);
        EXPECT_FALSE(r.loop.used_surrogate);
        EXPECT_EQ(r.loop.real_evals, r.grid_size);
        if (lanes == 1) {
            ref = r;
            continue;
        }
        EXPECT_EQ(r.loop.best_index, ref.loop.best_index);
        EXPECT_EQ(r.result.kernel_time, ref.result.kernel_time);
        EXPECT_EQ(r.loop.measured_cost, ref.loop.measured_cost);
    }
}

TEST_F(KernelTunerTest, SurrogateZeroRegretOnReferenceShapes)
{
    // Verify budget sized at the tie-cluster width (see tuneSurrogate
    // docs): the surrogate winner must match the exhaustive winner of
    // the same extended grid bit-exactly.
    SurrogateSweepOptions o;
    o.top_k = 24;
    for (const FcShape q : {FcShape{256, 1024, 512},
                            FcShape{768, 768, 384}}) {
        KernelSurrogateResult ex;
        {
            ScopedSurrogate off(false);
            ex = tuner_.tuneSurrogate(q);
        }
        KernelSurrogateResult sg;
        {
            ScopedSurrogate on(true);
            sg = tuner_.tuneSurrogate(q, nullptr, o);
        }
        EXPECT_TRUE(sg.loop.used_surrogate);
        EXPECT_LT(sg.loop.real_evals, ex.loop.real_evals / 4);
        EXPECT_EQ(sg.loop.best_index, ex.loop.best_index);
        EXPECT_EQ(sg.result.kernel_time, ex.result.kernel_time);
        EXPECT_EQ(sg.loop.best_cost, ex.loop.best_cost);
    }
}

TEST_F(KernelTunerTest, WarmStartFromDatabaseEqualsManualWarmSamples)
{
    // tuneSurrogate's KD-tree warm start must be exactly "prepend the
    // k nearest entries as training rows": running the raw loop with
    // manually assembled warm vectors reproduces it byte-for-byte.
    PerfDatabase db = tuner_.buildDatabase(corpus());
    const FcShape q{192, 1152, 576};
    SurrogateSweepOptions o;
    o.top_k = 24;

    ScopedSurrogate on(true);
    const KernelSurrogateResult via_db = tuner_.tuneSurrogate(q, &db, o);

    SurrogateSweepOptions manual = o;
    for (const PerfEntry &e : db.lookupK(q, 8)) {
        manual.warm_features.push_back(
            KernelTuner::variantFeatures(e.shape, e.best_variant));
        manual.warm_costs.push_back(static_cast<double>(e.best_time));
    }
    const std::vector<FcOptions> space =
        KernelTuner::extendedVariantSpace();
    const Bytes llc = dev_.sramPartition().llcBytes();
    const SurrogateSweepResult raw = surrogateArgmin(
        space.size(),
        [&](std::size_t i) {
            return KernelTuner::variantFeatures(q, space[i]);
        },
        [&](std::size_t i) -> double {
            const FcOptions &variant = space[i];
            if (variant.weights == Placement::Llc &&
                q.weightBytes(variant.dtype) > llc) {
                return 1e18;
            }
            const Device dev = dev_.cloneConfigured();
            const KernelCostModel km(dev);
            return static_cast<double>(km.fc(q, variant).total);
        },
        manual);

    EXPECT_EQ(via_db.loop.best_index, raw.best_index);
    EXPECT_EQ(via_db.loop.best_cost, raw.best_cost);
    EXPECT_EQ(via_db.loop.predicted, raw.predicted);
    EXPECT_EQ(via_db.loop.measured, raw.measured);
    EXPECT_EQ(via_db.loop.measured_cost, raw.measured_cost);
    EXPECT_EQ(via_db.loop.mae, raw.mae);
}

TEST(BatchTunerTest, SurrogateWinnerRuleMatchesEvaluate)
{
    Device dev(ChipConfig::mtia2i());
    BatchSizeTuner tuner(dev);
    auto builder = [](std::int64_t batch) {
        RankingModelParams p;
        p.batch = batch;
        p.tbe = TbeTableSpec{.tables = 16,
                             .rows_per_table = 1 << 20,
                             .dim = 64,
                             .dtype = DType::FP16,
                             .zipf_alpha = 0.9};
        p.dhen_layers = 1;
        p.dhen_width = 256;
        return buildRankingModel(p);
    };
    const std::vector<std::int64_t> grid = {128, 256, 512, 1024, 2048};
    std::size_t winner = 0;
    const auto snaps =
        tuner.evaluate(builder, grid, fromMillis(100.0), winner);
    // Small grid: the loop falls back to exhaustive even when the
    // surrogate is on, and its cost encoding must reproduce
    // evaluate()'s highest-QPS-under-SLO winner rule exactly.
    ScopedSurrogate on(true);
    const BatchSurrogateResult r =
        tuner.tuneSurrogate(builder, grid, fromMillis(100.0));
    EXPECT_FALSE(r.loop.used_surrogate);
    EXPECT_EQ(r.loop.best_index, winner);
    EXPECT_EQ(r.best.batch, snaps[winner].batch);
    EXPECT_EQ(r.best.cost.qps, snaps[winner].cost.qps);
    EXPECT_EQ(r.grid_size, grid.size());
}

TEST(CoalescingTunerTest, SurrogateFallbackMatchesSweepFront)
{
    Rng rng(47);
    TrafficParams t;
    t.qps = 3000.0;
    t.duration = fromSeconds(2.0);
    t.candidates_mean = 64;
    const auto trace = generateTrace(rng, t);
    CoalescingTuner tuner(fromMillis(10.0));
    const std::vector<Tick> windows = {fromMillis(0.5), fromMillis(2.0),
                                       fromMillis(8.0),
                                       fromMillis(32.0)};
    const std::vector<unsigned> parallel = {1, 2, 4};
    const auto ranked = tuner.sweep(trace, 512, windows, parallel);
    ScopedSurrogate off(false);
    const CoalescingSurrogateResult r =
        tuner.sweepSurrogate(trace, 512, windows, parallel);
    EXPECT_FALSE(r.loop.used_surrogate);
    EXPECT_EQ(r.best.score, ranked.front().score);
    EXPECT_EQ(r.best.config.window, ranked.front().config.window);
    EXPECT_EQ(r.best.config.parallel_windows,
              ranked.front().config.parallel_windows);
    EXPECT_EQ(r.grid_size, windows.size() * parallel.size());
}

} // namespace
} // namespace mtia
