/**
 * @file
 * Unit and property tests for the simulation foundation: tick math,
 * RNG distributions, Zipf sampling, stats, and the event queue.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace mtia {
namespace {

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(fromSeconds(1.0), kTicksPerSec);
    EXPECT_EQ(fromMillis(1.0), kTicksPerMs);
    EXPECT_EQ(fromMicros(1.0), kTicksPerUs);
    EXPECT_EQ(fromNanos(1.0), kTicksPerNs);
    EXPECT_DOUBLE_EQ(toSeconds(fromSeconds(2.5)), 2.5);
    EXPECT_DOUBLE_EQ(toMillis(fromMillis(99.0)), 99.0);
}

TEST(Types, ByteLiteralsAndTransfer)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(256_MiB, 256ull << 20);
    EXPECT_EQ(64_GiB, 64ull << 30);
    // 1 GB at 1 GB/s takes one second.
    EXPECT_EQ(transferTicks(1000000000ull, gbPerSec(1.0)), kTicksPerSec);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMean)
{
    Rng rng(13);
    for (double mean : {0.5, 5.0, 50.0}) {
        double sum = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << mean;
    }
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

class ZipfAlpha : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfAlpha, RankFrequenciesFollowPowerLaw)
{
    const double alpha = GetParam();
    Rng rng(23);
    const std::uint64_t n = 1000;
    ZipfSampler zipf(n, alpha);
    std::vector<std::uint64_t> counts(n, 0);
    const int draws = 400000;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t k = zipf.sample(rng);
        ASSERT_LT(k, n);
        ++counts[k];
    }
    // Frequency ratio between rank 1 and rank 10 should be ~10^alpha.
    const double expected = std::pow(10.0, alpha);
    const double observed =
        static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
    EXPECT_NEAR(observed / expected, 1.0, 0.25) << "alpha=" << alpha;
    // Monotone-decreasing on average: head rank dominates the tail.
    EXPECT_GT(counts[0], counts[n - 1]);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfAlpha,
                         ::testing::Values(0.6, 0.8, 1.05, 1.2));

TEST(DiscreteSampler, MatchesWeights)
{
    Rng rng(29);
    DiscreteSampler s({1.0, 2.0, 7.0});
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[s.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Histogram, PercentilesExact)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, InterleavedAddAndQuery)
{
    Histogram h;
    h.add(5.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    h.add(1.0);
    h.add(9.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(StatsRegistry, FindOrCreateAndDump)
{
    StatsRegistry reg;
    reg.counter("a.b").inc(3);
    reg.counter("a.b").inc();
    EXPECT_EQ(reg.counter("a.b").value(), 4u);
    reg.histogram("lat").add(1.0);
    reg.scalar("util") = 0.5;
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.b = 4"), std::string::npos);
    reg.resetAll();
    EXPECT_EQ(reg.counter("a.b").value(), 0u);
    EXPECT_TRUE(reg.histogram("lat").empty());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMore)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 10)
            q.scheduleAfter(5, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(q.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    q.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

} // namespace
} // namespace mtia
