/**
 * @file
 * Unit and property tests for the simulation foundation: tick math,
 * RNG distributions, Zipf sampling, stats, and the event queue.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/parallel.h"
#include "sim/event_queue.h"
#include "sim/parallel_des.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "telemetry/metrics.h"

namespace mtia {
namespace {

TEST(Types, TickConversionsRoundTrip)
{
    EXPECT_EQ(fromSeconds(1.0), kTicksPerSec);
    EXPECT_EQ(fromMillis(1.0), kTicksPerMs);
    EXPECT_EQ(fromMicros(1.0), kTicksPerUs);
    EXPECT_EQ(fromNanos(1.0), kTicksPerNs);
    EXPECT_DOUBLE_EQ(toSeconds(fromSeconds(2.5)), 2.5);
    EXPECT_DOUBLE_EQ(toMillis(fromMillis(99.0)), 99.0);
}

TEST(Types, ByteLiteralsAndTransfer)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(256_MiB, 256ull << 20);
    EXPECT_EQ(64_GiB, 64ull << 30);
    // 1 GB at 1 GB/s takes one second.
    EXPECT_EQ(transferTicks(1000000000ull, gbPerSec(1.0)), kTicksPerSec);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMean)
{
    Rng rng(13);
    for (double mean : {0.5, 5.0, 50.0}) {
        double sum = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << mean;
    }
}

TEST(Rng, ExponentialMean)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

class ZipfAlpha : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfAlpha, RankFrequenciesFollowPowerLaw)
{
    const double alpha = GetParam();
    Rng rng(23);
    const std::uint64_t n = 1000;
    ZipfSampler zipf(n, alpha);
    std::vector<std::uint64_t> counts(n, 0);
    const int draws = 400000;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t k = zipf.sample(rng);
        ASSERT_LT(k, n);
        ++counts[k];
    }
    // Frequency ratio between rank 1 and rank 10 should be ~10^alpha.
    const double expected = std::pow(10.0, alpha);
    const double observed =
        static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
    EXPECT_NEAR(observed / expected, 1.0, 0.25) << "alpha=" << alpha;
    // Monotone-decreasing on average: head rank dominates the tail.
    EXPECT_GT(counts[0], counts[n - 1]);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfAlpha,
                         ::testing::Values(0.6, 0.8, 1.05, 1.2));

TEST(DiscreteSampler, MatchesWeights)
{
    Rng rng(29);
    DiscreteSampler s({1.0, 2.0, 7.0});
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[s.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(Histogram, PercentilesExact)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, InterleavedAddAndQuery)
{
    Histogram h;
    h.add(5.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    h.add(1.0);
    h.add(9.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(StatsRegistry, FindOrCreateAndDump)
{
    StatsRegistry reg;
    reg.counter("a.b").inc(3);
    reg.counter("a.b").inc();
    EXPECT_EQ(reg.counter("a.b").value(), 4u);
    reg.histogram("lat").add(1.0);
    reg.scalar("util") = 0.5;
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.b = 4"), std::string::npos);
    reg.resetAll();
    EXPECT_EQ(reg.counter("a.b").value(), 0u);
    EXPECT_TRUE(reg.histogram("lat").empty());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(100, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMore)
{
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 10)
            q.scheduleAfter(5, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(q.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    q.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.clear();
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, MoveOnlyCallbackIsNeverCopied)
{
    // Regression for the seed queue's closure deep-copy on dispatch:
    // a callback owning unique_ptr state must compile and run.
    EventQueue q;
    auto payload = std::make_unique<int>(41);
    int got = 0;
    q.schedule(5, [p = std::move(payload), &got] { got = *p + 1; });
    q.run();
    EXPECT_EQ(got, 42);
}

TEST(EventQueue, MoveOnlyStateThreadsThroughReschedules)
{
    EventQueue q;
    int final_count = 0;
    struct Hop
    {
        EventQueue *q;
        std::unique_ptr<int> token;
        int *out;
        void
        operator()()
        {
            ++*token;
            if (*token < 3)
                q->scheduleAfter(7, Hop{q, std::move(token), out});
            else
                *out = *token;
        }
    };
    static_assert(EventQueue::Callback::storesInline<Hop>());
    q.schedule(0, Hop{&q, std::make_unique<int>(0), &final_count});
    q.run();
    EXPECT_EQ(final_count, 3);
    EXPECT_EQ(q.now(), 14u);
}

TEST(EventQueue, ClearTenThousandEventsIsAStructuralReset)
{
    EventQueue q;
    int fired = 0;
    q.schedule(3, [&] { ++fired; });
    q.run();
    const Tick before = q.now();
    // Spread events over both the calendar ring and the overflow heap.
    for (int i = 0; i < 10000; ++i)
        q.scheduleAfter(static_cast<Tick>(i) * 7, [&] { ++fired; });
    EXPECT_EQ(q.pending(), 10000u);
    q.clear();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.now(), before);
    EXPECT_EQ(q.executed(), 1u);
    // The queue stays usable and its slots are recycled.
    q.scheduleAfter(1, [&] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilEventExactlyAtLimitFires)
{
    EventQueue q;
    int fired = 0;
    q.schedule(50, [&] { ++fired; });
    q.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, RunUntilCallbackSchedulingAtNowRunsInSameCall)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(20, [&] {
        order.push_back(1);
        q.schedule(q.now(), [&] { order.push_back(2); });
    });
    q.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, RunUntilEarlyExitLeavesWindowConsistent)
{
    // Regression: nextRingTick() used to advance the ring window base
    // before runUntil() checked the limit, so an early exit left the
    // base ahead of now(). A later schedule() could then admit a ring
    // event under the stale window (B@1900 below lands in a slot keyed
    // off base 900), and once a far event below the window retreated
    // the base, that event fired at the wrong tick (876 instead of
    // 1900) — silently in release builds, where the drain DCHECK is
    // compiled out.
    EventQueue q;
    std::vector<Tick> ticks;
    auto record = [&] { ticks.push_back(q.now()); };
    q.schedule(900, record);
    q.runUntil(100); // exits early: earliest event is past the limit
    EXPECT_EQ(q.now(), 100u);
    EXPECT_EQ(q.pending(), 1u);
    // One event inside the stale window [900, 900 + kRingSlots) the
    // bug would have admitted into the ring...
    q.schedule(1900, record);
    // ...and one below it (but >= now()) to force the base to retreat.
    q.schedule(500, record);
    q.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{500, 900, 1900}));
    EXPECT_EQ(q.now(), 1900u);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, RunUntilEarlyExitThenScheduleBelowPendingTick)
{
    // Same stale-window shape, far-heap flavor: after an early exit,
    // scheduling between now() and the pending tick must not wrap the
    // window subtraction into misrouting.
    EventQueue q;
    std::vector<Tick> ticks;
    const Tick far = static_cast<Tick>(EventQueue::kRingSlots) * 3;
    q.schedule(far, [&] { ticks.push_back(q.now()); });
    q.runUntil(10);
    EXPECT_EQ(q.now(), 10u);
    q.schedule(20, [&] { ticks.push_back(q.now()); });
    q.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{20, far}));
}

TEST(EventQueue, RunUntilDrainingEarlyAdvancesToLimit)
{
    EventQueue q;
    q.runUntil(1234);
    EXPECT_EQ(q.now(), 1234u);
    q.schedule(2000, [] {});
    q.runUntil(5000);
    EXPECT_EQ(q.now(), 5000u);
}

TEST(EventQueue, OverflowEventPrecedesLaterRingEventAtSameTick)
{
    // An event parked in the overflow heap predates — and must run
    // before — a same-tick event accepted into the ring after the
    // window slid forward.
    EventQueue q;
    std::vector<int> order;
    const Tick target = static_cast<Tick>(EventQueue::kRingSlots) + 700;
    q.schedule(target, [&] { order.push_back(1); }); // overflow, seq 0
    q.schedule(900, [&] {
        q.schedule(target, [&] { order.push_back(2); }); // ring, later seq
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.overflowPromotions(), 1u);
    EXPECT_EQ(q.now(), target);
}

TEST(EventQueue, WindowSlideDispatchesOverflowBeforeLaterRingTicks)
{
    // Overflow tick 1034 precedes ring tick 1324 even though the ring
    // event was accepted while 1034 still sat in the overflow heap.
    EventQueue q;
    std::vector<int> order;
    q.schedule(static_cast<Tick>(EventQueue::kRingSlots) + 10,
               [&] { order.push_back(1); });
    q.schedule(600, [&] {
        q.schedule(static_cast<Tick>(EventQueue::kRingSlots) + 300,
                   [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, FarFutureJumpsPreserveOrderAcrossGaps)
{
    EventQueue q;
    std::vector<std::uint64_t> order;
    // Deltas far beyond the window force jump promotions every event.
    for (std::uint64_t i = 0; i < 64; ++i) {
        const Tick gap = static_cast<Tick>(EventQueue::kRingSlots) * 50;
        q.schedule(static_cast<Tick>(64 - i) * gap,
                   [&order, i] { order.push_back(i); });
    }
    q.run();
    std::vector<std::uint64_t> want(64);
    for (std::uint64_t i = 0; i < 64; ++i)
        want[i] = 63 - i;
    EXPECT_EQ(order, want);
    EXPECT_EQ(q.overflowPromotions(), 64u);
}

TEST(EventQueue, TelemetryCountersAndPublish)
{
    EventQueue q;
    for (int i = 0; i < 4; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.schedule(static_cast<Tick>(EventQueue::kRingSlots) * 8, [] {});
    EXPECT_EQ(q.scheduledCount(), 5u);
    EXPECT_EQ(q.inlineCallbackCount(), 5u);
    EXPECT_EQ(q.nearPending(), 4u);
    EXPECT_EQ(q.farPending(), 1u);
    EXPECT_EQ(q.pending(), 5u);

    telemetry::MetricRegistry reg;
    q.publishMetrics(reg);
    EXPECT_EQ(reg.counter("event_queue.scheduled").value(), 5u);
    EXPECT_EQ(reg.counter("event_queue.inline_callbacks").value(), 5u);
    EXPECT_EQ(reg.counter("event_queue.overflow_promotions").value(), 0u);
    EXPECT_DOUBLE_EQ(
        reg.gauge("event_queue.bucket_occupancy", {{"level", "near"}})
            .value(),
        4.0);
    EXPECT_DOUBLE_EQ(
        reg.gauge("event_queue.bucket_occupancy", {{"level", "far"}})
            .value(),
        1.0);

    q.run();
    EXPECT_EQ(q.overflowPromotions(), 1u);
    EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, OversizedCaptureFallsBackToHeapBox)
{
    EventQueue q;
    std::array<std::uint64_t, 16> big{};
    big[15] = 7;
    std::uint64_t got = 0;
    auto cb = [big, &got] { got = big[15]; };
    static_assert(!EventQueue::Callback::storesInline<decltype(cb)>());
    q.schedule(1, std::move(cb));
    EXPECT_EQ(q.scheduledCount(), 1u);
    EXPECT_EQ(q.inlineCallbackCount(), 0u);
    q.run();
    EXPECT_EQ(got, 7u);
}

TEST(EventQueue, RunUntilLimitIsInclusiveOnBothExitPaths)
{
    // Epoch-barrier contract pin-down (release-mode: pure EXPECTs, no
    // DCHECK reliance). An epoch runs runUntil(epoch_end) on every
    // partition; the barrier then delivers messages at epoch_end + 1.
    // That is only sound if (a) an event landing exactly on epoch_end
    // runs INSIDE the epoch — not held over — and (b) every partition
    // clock reads exactly epoch_end afterwards, whether it dispatched
    // events up to the limit or exited early with work beyond it.
    EventQueue busy;
    std::vector<Tick> fired;
    busy.schedule(99, [&] { fired.push_back(busy.now()); });
    busy.schedule(100, [&] { fired.push_back(busy.now()); }); // at limit
    busy.schedule(101, [&] { fired.push_back(busy.now()); }); // beyond
    busy.runUntil(100);
    EXPECT_EQ(fired, (std::vector<Tick>{99, 100}));
    EXPECT_EQ(busy.now(), 100u);
    EXPECT_EQ(busy.pending(), 1u);

    EventQueue idle; // early exit: earliest pending is past the limit
    idle.schedule(500, [] {});
    idle.runUntil(100);
    EXPECT_EQ(idle.now(), 100u);

    // Both clocks agree at the epoch end, so a cross-partition message
    // delivered at epoch_end + 1 is schedulable on either queue.
    busy.schedule(101, [] {});
    idle.schedule(101, [] {});
    busy.run();
    idle.run();
    EXPECT_EQ(busy.executed(), 4u);
    EXPECT_EQ(idle.executed(), 2u);
}

TEST(EventQueue, RunUntilAtLimitFiresWhenParkedInFarHeap)
{
    // The at-the-limit event must dispatch inside the epoch even when
    // it sits in the overflow heap rather than the calendar ring.
    EventQueue q;
    const Tick limit = static_cast<Tick>(EventQueue::kRingSlots) * 4;
    int fired = 0;
    q.schedule(limit, [&] { ++fired; });
    q.schedule(limit + 1, [&] { ++fired; });
    q.runUntil(limit);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), limit);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, NextEventTickSeesRingAndFarHeap)
{
    EventQueue q;
    q.schedule(static_cast<Tick>(EventQueue::kRingSlots) * 2, [] {});
    EXPECT_EQ(q.nextEventTick(),
              static_cast<Tick>(EventQueue::kRingSlots) * 2);
    q.schedule(7, [] {}); // ring event below the far one
    EXPECT_EQ(q.nextEventTick(), 7u);
    q.runUntil(7);
    EXPECT_EQ(q.nextEventTick(),
              static_cast<Tick>(EventQueue::kRingSlots) * 2);
}

TEST(EventQueue, SameTickFifoDeterministicAcrossLaneCounts)
{
    // Property: the dispatch trace of a same-tick-heavy workload is a
    // pure function of the shard seed, independent of how many worker
    // lanes the surrounding harness runs shards on.
    constexpr std::size_t kShards = 16;
    auto trace = [](std::size_t shard) {
        EventQueue q;
        Rng rng(1000 + static_cast<std::uint64_t>(shard));
        std::vector<std::uint64_t> order;
        std::uint64_t id = 0;
        for (int round = 0; round < 50; ++round) {
            const Tick t = q.now() + rng.below(4);
            for (int k = 0; k < 8; ++k) {
                const std::uint64_t my = id++;
                q.schedule(t, [&order, my] { order.push_back(my); });
            }
            q.runUntil(t);
        }
        q.run();
        return order;
    };
    std::vector<std::vector<std::uint64_t>> base;
    {
        ScopedParallelism one(1);
        base = parallelMap(kShards, trace);
    }
    for (const unsigned lanes : {2u, 8u}) {
        ScopedParallelism scope(lanes);
        EXPECT_EQ(parallelMap(kShards, trace), base)
            << "dispatch trace changed at " << lanes << " lanes";
    }
}

TEST(ParallelDes, CrossPartitionLatencyAndCountsAreExact)
{
    ParallelDes des(2, 10);
    std::vector<Tick> arrivals;
    des.queue(0).schedule(5, [&] {
        des.post(0, 1, des.queue(0).now() + 10, [&] {
            arrivals.push_back(des.queue(1).now());
        });
    });
    des.run();
    // Delivery lands at exactly send + latency, not rounded to the
    // barrier grid.
    EXPECT_EQ(arrivals, (std::vector<Tick>{15}));
    EXPECT_EQ(des.messagesDelivered(), 1u);
    EXPECT_EQ(des.executed(), 2u);
    EXPECT_EQ(des.epochsRun(), 2u);
}

TEST(ParallelDes, IdleEpochsAreSkipped)
{
    // A sparse timeline must not grind through every empty window:
    // each epoch anchors at the globally earliest pending event.
    ParallelDes des(4, 100);
    int early = 0;
    int late = 0;
    des.queue(3).schedule(5, [&] { ++early; });
    des.queue(2).schedule(1000000, [&] { ++late; });
    des.run();
    EXPECT_EQ(early, 1);
    EXPECT_EQ(late, 1);
    EXPECT_EQ(des.epochsRun(), 2u);
}

TEST(ParallelDes, MailboxFifoPreservesSendOrderAtSameTick)
{
    ParallelDes des(2, 10);
    std::vector<int> order;
    des.queue(0).schedule(3, [&] {
        des.post(0, 1, 13, [&] { order.push_back(1); });
        des.post(0, 1, 13, [&] { order.push_back(2); });
    });
    des.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ParallelDes, BarrierDrainOrdersSourcesByIndex)
{
    // Both sources post to partition 0 at the same delivery tick; the
    // barrier drains mailboxes in (dst, src, FIFO) index order, so
    // source 1 precedes source 2 no matter which lane finished its
    // epoch first.
    ParallelDes des(3, 10);
    std::vector<int> order;
    des.queue(2).schedule(0, [&] {
        des.post(2, 0, 10, [&] { order.push_back(2); });
    });
    des.queue(1).schedule(0, [&] {
        des.post(1, 0, 10, [&] { order.push_back(1); });
    });
    des.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ParallelDes, TokenRingTraceIdenticalAcrossLaneCounts)
{
    // Property: a token-ring workload with per-partition local chatter
    // produces byte-identical per-partition event traces at any lane
    // count — each partition logs only into its own slot, and all
    // cross-partition flow rides the mailboxes.
    constexpr unsigned kParts = 4;
    constexpr Tick kLat = 50;
    auto trace = []() {
        ParallelDes des(kParts, kLat);
        std::vector<std::vector<Tick>> logs(kParts);
        std::function<void(unsigned, int)> hop = [&](unsigned p,
                                                     int hops) {
            logs[p].push_back(des.queue(p).now());
            if (hops == 0)
                return;
            const unsigned next = (p + 1) % kParts;
            des.post(p, next, des.queue(p).now() + kLat,
                     [&hop, next, hops]() { hop(next, hops - 1); });
        };
        des.queue(0).schedule(0, [&hop]() { hop(0, 40); });
        for (unsigned p = 0; p < kParts; ++p)
            for (int i = 0; i < 8; ++i)
                des.queue(p).schedule(
                    static_cast<Tick>(i) * 7 + p, [&logs, &des, p]() {
                        logs[p].push_back(des.queue(p).now());
                    });
        des.run();
        return logs;
    };
    std::vector<std::vector<Tick>> base;
    {
        ScopedParallelism one(1);
        base = trace();
    }
    for (const unsigned lanes : {2u, 8u}) {
        ScopedParallelism scope(lanes);
        EXPECT_EQ(trace(), base)
            << "partition traces changed at " << lanes << " lanes";
    }
}

} // namespace
} // namespace mtia
