/**
 * @file
 * Tests for the serving stack: coalescer conservation and fill
 * properties, the remote/merge DES (including the Figure 5 TBE-
 * consolidation effect), and the A/B harness with normalized entropy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "models/model_zoo.h"
#include "models/workload.h"
#include "ops/dense_ops.h"
#include "serving/ab_testing.h"
#include "serving/coalescer.h"
#include "serving/serving_sim.h"
#include "telemetry/telemetry.h"

namespace mtia {
namespace {

std::vector<Request>
makeTrace(double qps, double seconds, std::uint64_t seed = 51)
{
    Rng rng(seed);
    TrafficParams p;
    p.qps = qps;
    p.duration = fromSeconds(seconds);
    p.candidates_mean = 64;
    return generateTrace(rng, p);
}

TEST(CoalescerTest, ConservesEveryRequest)
{
    const auto trace = makeTrace(3000.0, 3.0);
    Coalescer c(CoalescerConfig{fromMillis(2.0), 2, 512});
    const auto batches = c.coalesce(trace);
    std::size_t total = 0;
    for (const auto &b : batches)
        total += b.requests.size();
    EXPECT_EQ(total, trace.size());
}

TEST(CoalescerTest, WindowBoundsWait)
{
    const auto trace = makeTrace(500.0, 3.0);
    const Tick window = fromMillis(4.0);
    Coalescer c(CoalescerConfig{window, 2, 1 << 20});
    const auto batches = c.coalesce(trace);
    for (const auto &b : batches)
        for (const Request &r : b.requests)
            EXPECT_LE(b.dispatch_time - r.arrival, window);
}

TEST(CoalescerTest, LargerWindowsFillBetter)
{
    const auto trace = makeTrace(4000.0, 3.0);
    const CoalescerConfig small{fromMillis(0.25), 2, 512};
    const CoalescerConfig large{fromMillis(8.0), 2, 512};
    const auto s = Coalescer::stats(Coalescer(small).coalesce(trace));
    const auto l = Coalescer::stats(Coalescer(large).coalesce(trace));
    EXPECT_GT(l.mean_fill, s.mean_fill);
    EXPECT_GT(l.mean_requests_per_batch, s.mean_requests_per_batch);
}

TEST(CoalescerTest, DeadlineForcesEarlyClose)
{
    // Two small requests, then silence. Without a deadline the batch
    // waits out the full 10 ms window; with a 3 ms deadline the
    // oldest member's slack forces dispatch at its arrival + 3 ms
    // even though the batch has plenty of room left.
    Request a;
    a.id = 0;
    a.arrival = fromMillis(1.0);
    a.candidates = 4;
    Request b = a;
    b.id = 1;
    b.arrival = fromMillis(2.0);
    const std::vector<Request> trace = {a, b};

    CoalescerConfig cfg{fromMillis(10.0), 2, 512};
    const auto lazy = Coalescer(cfg).coalesce(trace);
    ASSERT_EQ(lazy.size(), 1u);
    EXPECT_EQ(lazy[0].dispatch_time, fromMillis(11.0));

    cfg.deadline = fromMillis(3.0);
    const auto eager = Coalescer(cfg).coalesce(trace);
    ASSERT_EQ(eager.size(), 1u);
    EXPECT_EQ(eager[0].requests.size(), 2u);
    EXPECT_EQ(eager[0].dispatch_time, fromMillis(4.0));
}

TEST(CoalescerTest, SlackRichQueueStillFillsToCapacity)
{
    // A hot queue with an SLO-sized deadline closes batches full (or
    // at the window) before any deadline binds: the deadline is a
    // backstop, not the operating point. The schedule is identical to
    // the no-deadline run, and every member's wait stays within the
    // deadline bound regardless.
    const auto trace = makeTrace(8000.0, 2.0);
    CoalescerConfig cfg{fromMillis(4.0), 2, 256};
    const auto no_deadline = Coalescer(cfg).coalesce(trace);
    cfg.deadline = fromMillis(50.0);
    const auto with_deadline = Coalescer(cfg).coalesce(trace);

    ASSERT_EQ(with_deadline.size(), no_deadline.size());
    for (std::size_t i = 0; i < with_deadline.size(); ++i) {
        EXPECT_EQ(with_deadline[i].dispatch_time,
                  no_deadline[i].dispatch_time);
        EXPECT_EQ(with_deadline[i].rows, no_deadline[i].rows);
        for (const Request &r : with_deadline[i].requests)
            EXPECT_LE(with_deadline[i].dispatch_time - r.arrival,
                      cfg.deadline);
    }
    EXPECT_GT(Coalescer::stats(with_deadline).mean_fill, 0.9);
}

TEST(CoalescerTest, BatchesRecordTheirOwnCapacity)
{
    // Regression for the old stats(batches, cfg) footgun: fill was
    // computed against a caller-supplied config, so scoring batches
    // with a different config than the one that coalesced them gave
    // silently wrong fills. Capacity now rides on each batch.
    const auto trace = makeTrace(4000.0, 2.0);
    const CoalescerConfig narrow{fromMillis(2.0), 2, 256};
    const CoalescerConfig wide{fromMillis(2.0), 2, 1024};
    const auto narrow_batches = Coalescer(narrow).coalesce(trace);
    const auto wide_batches = Coalescer(wide).coalesce(trace);
    for (const auto &b : narrow_batches) {
        EXPECT_EQ(b.capacity, 256);
        EXPECT_LE(b.rows, b.capacity);
    }
    for (const auto &b : wide_batches)
        EXPECT_EQ(b.capacity, 1024);

    // Mixing batches from differently-configured coalescers now
    // aggregates each batch against its own capacity: the mean fill
    // lands strictly between the two homogeneous means.
    const double narrow_fill = Coalescer::stats(narrow_batches).mean_fill;
    const double wide_fill = Coalescer::stats(wide_batches).mean_fill;
    std::vector<CoalescedBatch> mixed = narrow_batches;
    mixed.insert(mixed.end(), wide_batches.begin(), wide_batches.end());
    const auto stats = Coalescer::stats(mixed);
    EXPECT_GT(stats.mean_fill, std::min(narrow_fill, wide_fill));
    EXPECT_LT(stats.mean_fill, std::max(narrow_fill, wide_fill));
    EXPECT_EQ(stats.batches, narrow_batches.size() + wide_batches.size());
}

TEST(ServingSimTest, LowLoadMeetsSlo)
{
    ServingModelParams p;
    const ServingSimulator sim(p);
    const ServingResult r = sim.simulate(10.0, fromSeconds(20.0));
    EXPECT_TRUE(r.meets_slo);
    // Unloaded latency: two 3 ms remotes with a dispatch gap, then
    // the 12 ms merge after another gap ~ 22 ms.
    EXPECT_NEAR(r.p50_ms, 22.0, 4.0);
}

TEST(ServingSimTest, OverloadViolatesSlo)
{
    ServingModelParams p;
    const ServingSimulator sim(p);
    // Merge alone saturates shard 0 at ~83 QPS.
    const ServingResult r = sim.simulate(120.0, fromSeconds(20.0));
    EXPECT_FALSE(r.meets_slo);
    EXPECT_LT(r.completed_qps, 100.0);
}

TEST(ServingSimTest, SweepPercentilesAreScopedPerLoadPoint)
{
    // Regression: with telemetry attached, simulate() used to compute
    // ServingResult percentiles straight from the registry histograms,
    // which accumulate across calls — so in a sweep every later load
    // point's p99 smeared in all earlier points' samples. Per-point
    // results must match a detached run exactly; the registry series
    // still accumulates every sample across the sweep.
    ServingModelParams p;
    ServingSimulator sim(p);
    const Tick dur = fromSeconds(10.0);
    const ServingResult detached = sim.simulate(10.0, dur);

    telemetry::Telemetry tel;
    sim.setTelemetry(&tel);
    const ServingResult hot = sim.simulate(120.0, dur); // pollutes
    const ServingResult low = sim.simulate(10.0, dur);
    sim.setTelemetry(nullptr);

    EXPECT_GT(hot.p99_ms, detached.p99_ms); // distinct load points
    EXPECT_EQ(low.p50_ms, detached.p50_ms); // same seed, same scope
    EXPECT_EQ(low.p99_ms, detached.p99_ms);
    EXPECT_EQ(low.merge_p99_ms, detached.merge_p99_ms);
    EXPECT_EQ(low.remote_p99_ms, detached.remote_p99_ms);

    // The exported series keeps its cross-call accumulation contract.
    const auto &reg = tel.metrics.histogram(
        "serving.latency_ms", {{"class", "total"}},
        telemetry::LogHistogram::Config{1e-3, 1e5, 32});
    const double secs = toSeconds(dur);
    const auto completions = static_cast<std::uint64_t>(
        (hot.completed_qps + low.completed_qps) * secs + 0.5);
    EXPECT_GE(reg.count(), completions);
}

TEST(ServingSimTest, ConsolidationRaisesThroughputAtSlo)
{
    // Figure 5: merging weighted and unweighted TBE instances halves
    // the remote job count; total remote/merge execution time is
    // unchanged, yet throughput at the P99 SLO improves and P99 drops
    // because merges stop queueing behind later requests' remotes.
    ServingModelParams split;
    split.remote_jobs_per_shard = 2;
    ServingModelParams merged = split;
    merged.remote_jobs_per_shard = 1;

    const ServingSimulator sim_split(split);
    const ServingSimulator sim_merged(merged);
    const Tick dur = fromSeconds(60.0);
    const double qps_split = sim_split.maxQpsAtSlo(5.0, 90.0, dur);
    const double qps_merged = sim_merged.maxQpsAtSlo(5.0, 90.0, dur);
    EXPECT_GT(qps_merged, qps_split * 1.05);

    // At the split system's sustainable load, consolidation lowers
    // P99 and the gain shows up in the merge component, not remote.
    const ServingResult a = sim_split.simulate(qps_split, dur);
    const ServingResult b = sim_merged.simulate(qps_split, dur);
    EXPECT_LT(b.p99_ms, a.p99_ms);
    EXPECT_LT(b.merge_p99_ms, a.merge_p99_ms);
}

TEST(NormalizedEntropyTest, PerfectAndBasePredictors)
{
    // A predictor matching the empirical CTR exactly scores NE ~ 1.
    std::vector<double> base(1000, 0.3);
    std::vector<int> labels(1000, 0);
    for (int i = 0; i < 300; ++i)
        labels[static_cast<std::size_t>(i * 3)] = 1;
    EXPECT_NEAR(normalizedEntropy(base, labels), 1.0, 0.01);

    // A sharper correct predictor scores below 1.
    std::vector<double> sharp;
    sharp.reserve(1000);
    for (int i = 0; i < 1000; ++i)
        sharp.push_back(labels[static_cast<std::size_t>(i)] == 1
                            ? 0.9
                            : 0.05);
    EXPECT_LT(normalizedEntropy(sharp, labels), 0.6);
}

TEST(AbTest, MtiaArmMatchesGpuArmWithinTolerance)
{
    // Section 5.6: A/B tests confirmed comparable model quality. The
    // arms differ only by the LUT approximation, so NE deltas must be
    // far below the ~0.1% launch-blocking threshold used in practice.
    RankingModelParams p;
    p.batch = 64;
    p.dense_features = 32;
    p.bottom_mlp = {32};
    p.tbe = TbeTableSpec{.tables = 4,
                         .rows_per_table = 4096,
                         .dim = 16,
                         .dtype = DType::FP16,
                         .zipf_alpha = 0.9};
    p.tbe_pooling = 8;
    p.top_mlp = {64, 1};
    p.dhen_layers = 1;
    p.dhen_width = 64;
    ModelInfo model = buildRankingModel(p);

    AbTestHarness harness;
    const AbResult r = harness.compare(model.graph, 4);
    EXPECT_GT(r.samples, 0u);
    EXPECT_GT(r.max_pred_diff, 0.0);          // a real numeric delta
    EXPECT_LT(r.max_pred_diff, 0.01);          // but a small one
    EXPECT_LT(std::abs(r.neDeltaPercent()), 0.5);
    EXPECT_NEAR(r.mean_pred_candidate, r.mean_pred_reference, 0.002);
}

} // namespace
} // namespace mtia
