/**
 * @file
 * Tests for the memory substrates: SECDED ECC codec (exhaustive
 * single-bit property sweep), LPDDR bandwidth/error model, LLC model
 * vs Che's approximation, SRAM partitioning, LLS allocator, and the
 * memory-error injector.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mem/ecc.h"
#include "mem/error_injector.h"
#include "mem/llc.h"
#include "mem/lpddr.h"
#include "mem/sram.h"
#include "sim/random.h"

namespace mtia {
namespace {

TEST(Ecc, CleanWordDecodesOk)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t data = rng.next();
        EccCodeword cw = EccCodec::encode(data);
        std::uint64_t out = 0;
        EXPECT_EQ(EccCodec::decode(cw, out), EccResult::Ok);
        EXPECT_EQ(out, data);
    }
}

class EccSingleBit : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EccSingleBit, EverySingleBitFlipIsCorrected)
{
    // Property: for several data words, flipping THIS bit position
    // always corrects back to the original data.
    const unsigned bit = GetParam();
    Rng rng(2 + bit);
    for (int trial = 0; trial < 50; ++trial) {
        const std::uint64_t data = rng.next();
        EccCodeword cw = EccCodec::encode(data);
        cw.flipBit(bit);
        std::uint64_t out = 0;
        ASSERT_EQ(EccCodec::decode(cw, out), EccResult::CorrectedSingle)
            << "bit=" << bit;
        EXPECT_EQ(out, data) << "bit=" << bit;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBits, EccSingleBit, ::testing::Range(0u, 72u));

TEST(Ecc, DoubleBitFlipsAreDetectedNotMiscorrected)
{
    Rng rng(3);
    int detected = 0;
    int trials = 0;
    for (int t = 0; t < 2000; ++t) {
        const std::uint64_t data = rng.next();
        EccCodeword cw = EccCodec::encode(data);
        const unsigned b1 = static_cast<unsigned>(rng.below(72));
        unsigned b2 = b1;
        while (b2 == b1)
            b2 = static_cast<unsigned>(rng.below(72));
        cw.flipBit(b1);
        cw.flipBit(b2);
        std::uint64_t out = 0;
        const EccResult r = EccCodec::decode(cw, out);
        ++trials;
        if (r == EccResult::DetectedDouble)
            ++detected;
        // SECDED guarantee: a double error must never be reported as
        // Ok or silently "corrected" into wrong data being trusted.
        EXPECT_NE(r, EccResult::Ok);
        EXPECT_NE(r, EccResult::CorrectedSingle);
    }
    EXPECT_EQ(detected, trials);
}

TEST(Ecc, StorageOverheadIsTwelvePointFivePercent)
{
    EXPECT_DOUBLE_EQ(EccCodec::storageOverhead(), 0.125);
}

TEST(Lpddr, EccCostsBandwidth)
{
    LpddrConfig cfg;
    cfg.capacity = 64_GiB;
    cfg.peak_bandwidth = gbPerSec(204.8);
    LpddrChannel ch(cfg);

    // Read path: 64/72 of peak = 11.1% loss.
    EXPECT_NEAR(ch.effectiveReadBandwidth() / cfg.peak_bandwidth,
                64.0 / 72.0, 1e-9);
    // Write path is worse due to read-modify-write on partial lines.
    EXPECT_LT(ch.effectiveWriteBandwidth(), ch.effectiveReadBandwidth());

    ch.setEccMode(EccMode::None);
    EXPECT_DOUBLE_EQ(ch.effectiveReadBandwidth(), cfg.peak_bandwidth);
    EXPECT_DOUBLE_EQ(ch.effectiveWriteBandwidth(), cfg.peak_bandwidth);
}

TEST(Lpddr, ReadTimeMatchesBandwidth)
{
    LpddrConfig cfg;
    cfg.peak_bandwidth = gbPerSec(200.0);
    cfg.ecc = EccMode::None;
    LpddrChannel ch(cfg);
    // 200 GB at 200 GB/s = 1 s.
    EXPECT_EQ(ch.readTime(200000000000ull), kTicksPerSec);
}

TEST(Lpddr, ErrorProcessScalesWithResidencyAndTime)
{
    LpddrConfig cfg;
    cfg.peak_bandwidth = gbPerSec(204.8);
    cfg.bit_error_rate = 1e-12;
    LpddrChannel ch(cfg);
    const double e1 = ch.expectedBitErrors(1_GiB, 3600.0);
    const double e2 = ch.expectedBitErrors(2_GiB, 3600.0);
    const double e3 = ch.expectedBitErrors(1_GiB, 7200.0);
    EXPECT_DOUBLE_EQ(e2, 2.0 * e1);
    EXPECT_DOUBLE_EQ(e3, 2.0 * e1);
    Rng rng(5);
    double acc = 0.0;
    for (int i = 0; i < 2000; ++i)
        acc += static_cast<double>(ch.sampleBitErrors(rng, 1_GiB, 3600.0));
    EXPECT_NEAR(acc / 2000.0, e1, e1 * 0.1);
}

TEST(Llc, SmallWorkingSetAlwaysHitsAfterWarmup)
{
    LlcModel llc({.capacity = 1_MiB, .line_size = 64, .associativity = 8});
    // Working set of 512 KiB fits comfortably.
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t a = 0; a < 512 * 1024; a += 64)
            llc.access(a);
    }
    // After the cold pass, everything hits.
    const double expected_hits = 2.0 * 8192.0;
    EXPECT_EQ(llc.stats().hits, expected_hits);
}

TEST(Llc, ThrashingWorkingSetMisses)
{
    LlcModel llc({.capacity = 64_KiB, .line_size = 64, .associativity = 4});
    // Working set 16x the capacity, streamed cyclically: LRU gets no
    // reuse at all.
    std::uint64_t hits = 0;
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t a = 0; a < 1024 * 1024; a += 64)
            hits += llc.access(a);
    }
    EXPECT_EQ(hits, 0u);
}

TEST(Llc, DirtyWritebacksTracked)
{
    LlcModel llc({.capacity = 4_KiB, .line_size = 64, .associativity = 1});
    for (std::uint64_t a = 0; a < 4096; a += 64)
        llc.access(a, true); // fill with dirty lines
    for (std::uint64_t a = 4096; a < 8192; a += 64)
        llc.access(a, false); // evict them all
    EXPECT_EQ(llc.stats().dirty_writebacks, 64u);
}

class LlcZipf : public ::testing::TestWithParam<double>
{
};

TEST_P(LlcZipf, TraceDrivenHitRateTracksCheApproximation)
{
    const double alpha = GetParam();
    // 100k embedding rows of 128 B each, cache holding 20% of them.
    const std::uint64_t rows = 100000;
    const Bytes row_bytes = 128;
    LlcModel llc({.capacity = 20000 * row_bytes,
                  .line_size = row_bytes,
                  .associativity = 16});
    Rng rng(7);
    ZipfSampler zipf(rows, alpha);
    const int accesses = 400000;
    for (int i = 0; i < accesses; ++i)
        llc.access(zipf.sample(rng) * row_bytes);

    const double analytic = zipfLruHitRate(20000, rows, alpha);
    EXPECT_NEAR(llc.stats().hitRate(), analytic, 0.05)
        << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, LlcZipf,
                         ::testing::Values(0.7, 0.9, 1.1));

TEST(LlcZipfAnalytic, BoundsAndMonotonicity)
{
    EXPECT_DOUBLE_EQ(zipfLruHitRate(1000, 1000, 0.9), 1.0);
    const double h1 = zipfLruHitRate(100, 10000, 0.9);
    const double h2 = zipfLruHitRate(1000, 10000, 0.9);
    const double h3 = zipfLruHitRate(5000, 10000, 0.9);
    EXPECT_LT(h1, h2);
    EXPECT_LT(h2, h3);
    EXPECT_GT(h1, 0.0);
    EXPECT_LT(h3, 1.0);
}

TEST(Sram, PartitionGranularity)
{
    SramConfig cfg; // 256 MB, 32 MB regions
    SramPartition p(cfg, 3);
    EXPECT_EQ(p.llsBytes(), 96_MiB);
    EXPECT_EQ(p.llcBytes(), 160_MiB);
    EXPECT_EQ(p.totalRegions(), 8u);
}

TEST(Sram, FitLlsRoundsUpToRegions)
{
    SramConfig cfg;
    SramPartition p(cfg, 0);
    ASSERT_TRUE(SramPartition::fitLls(cfg, 33_MiB, p));
    EXPECT_EQ(p.llsRegions(), 2u);
    ASSERT_TRUE(SramPartition::fitLls(cfg, 256_MiB, p));
    EXPECT_EQ(p.llsRegions(), 8u);
    EXPECT_EQ(p.llcBytes(), 0u);
    EXPECT_FALSE(SramPartition::fitLls(cfg, 257_MiB, p));
}

TEST(Lls, AllocatorFitAndRollback)
{
    LlsAllocator a(1024, 64);
    EXPECT_EQ(a.allocate(100), 0);  // rounds to 128
    EXPECT_EQ(a.used(), 128u);
    const Bytes m = a.mark();
    EXPECT_EQ(a.allocate(512), 128);
    EXPECT_EQ(a.allocate(512), -1); // would exceed 1024
    a.release(m);
    EXPECT_EQ(a.used(), 128u);
    EXPECT_EQ(a.peak(), 640u);
    EXPECT_TRUE(a.fits(896));
    EXPECT_FALSE(a.fits(897));
}

TEST(Injector, ExponentBitFlipsInFloatWeightsCauseLargeErrors)
{
    // Section 5.1: specific bits of floating-point weights cause
    // severe corruption with high probability. Statistically, a
    // random bit flip in FP32 data must produce a non-negligible rate
    // of Corrupted/NaN outcomes.
    MemoryErrorInjector inj(11);
    Tensor w(Shape{64, 64}, DType::FP32);
    w.fillGaussian(inj.rng());
    InjectionReport rep;
    rep.region = MemRegion::DenseWeights;
    for (int t = 0; t < 4000; ++t) {
        Tensor copy = w;
        switch (inj.injectAndClassify(copy)) {
          case ErrorOutcome::Benign: ++rep.benign; break;
          case ErrorOutcome::Corrupted: ++rep.corrupted; break;
          case ErrorOutcome::NaN: ++rep.nan; break;
          case ErrorOutcome::OutOfBounds: ++rep.out_of_bounds; break;
        }
        ++rep.trials;
    }
    EXPECT_GT(rep.failureRate(), 0.3);
    EXPECT_GT(rep.nan, 0u);       // exponent-field flips produce NaN/Inf
    EXPECT_GT(rep.benign, 0u);    // low mantissa bits are harmless
}

TEST(Injector, TbeIndexFlipsAreOftenCrashEquivalent)
{
    MemoryErrorInjector inj(13);
    const std::int64_t rows = 1 << 20; // 1M-row table
    int oob = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        std::int64_t idx =
            static_cast<std::int64_t>(inj.rng().below(rows));
        if (inj.injectIndexError(idx, rows) == ErrorOutcome::OutOfBounds)
            ++oob;
    }
    // Bits 20..63 of a 1M-row index all take it out of range: ~69%.
    EXPECT_NEAR(static_cast<double>(oob) / trials, 44.0 / 64.0, 0.05);
}

TEST(Injector, FlipRandomBitsCountsAreHonored)
{
    MemoryErrorInjector inj(17);
    Tensor t(Shape{128}, DType::FP32);
    t.fill(0.0f);
    inj.flipRandomBits(t, 16);
    int set_bits = 0;
    for (std::uint8_t b : t.raw())
        set_bits += __builtin_popcount(b);
    // Collisions are possible but rare: between 14 and 16 bits set.
    EXPECT_GE(set_bits, 14);
    EXPECT_LE(set_bits, 16);
}

} // namespace
} // namespace mtia
