/**
 * @file
 * Tests for the tensor layer: bit-exact FP16/BF16 conversion, dense and
 * jagged tensors, dynamic/static INT8 quantization, and 2:4 sparsity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/random.h"
#include "tensor/dtype.h"
#include "tensor/jagged.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace mtia {
namespace {

TEST(DTypeTest, Sizes)
{
    EXPECT_EQ(dtypeSize(DType::FP32), 4u);
    EXPECT_EQ(dtypeSize(DType::FP16), 2u);
    EXPECT_EQ(dtypeSize(DType::BF16), 2u);
    EXPECT_EQ(dtypeSize(DType::INT8), 1u);
    EXPECT_EQ(dtypeSize(DType::INT32), 4u);
}

TEST(Fp16, KnownValues)
{
    EXPECT_EQ(fp32ToFp16Bits(0.0f), 0x0000u);
    EXPECT_EQ(fp32ToFp16Bits(-0.0f), 0x8000u);
    EXPECT_EQ(fp32ToFp16Bits(1.0f), 0x3c00u);
    EXPECT_EQ(fp32ToFp16Bits(-2.0f), 0xc000u);
    EXPECT_EQ(fp32ToFp16Bits(65504.0f), 0x7bffu);      // fp16 max
    EXPECT_EQ(fp32ToFp16Bits(65536.0f), 0x7c00u);      // overflow -> inf
    EXPECT_EQ(fp32ToFp16Bits(5.9604645e-8f), 0x0001u); // smallest denorm
    EXPECT_FLOAT_EQ(fp16BitsToFp32(0x3c00u), 1.0f);
    EXPECT_FLOAT_EQ(fp16BitsToFp32(0x7bffu), 65504.0f);
    EXPECT_FLOAT_EQ(fp16BitsToFp32(0x0001u), 5.9604645e-8f);
    EXPECT_TRUE(std::isinf(fp16BitsToFp32(0x7c00u)));
    EXPECT_TRUE(std::isnan(fp16BitsToFp32(0x7c01u)));
    EXPECT_TRUE(
        std::isnan(fp16BitsToFp32(fp32ToFp16Bits(std::nanf("")))));
}

TEST(Fp16, AllBitPatternsRoundTripExactly)
{
    // Every finite fp16 value converts to fp32 and back unchanged
    // (modulo NaN payloads and the denorm sign of zero).
    for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
        const auto h = static_cast<std::uint16_t>(bits);
        const float f = fp16BitsToFp32(h);
        if (std::isnan(f))
            continue;
        EXPECT_EQ(fp32ToFp16Bits(f), h) << "bits=" << bits;
    }
}

TEST(Fp16, RoundToNearestEven)
{
    // 1.0 + 2^-11 is exactly halfway between fp16(1.0) and the next
    // representable value; round-to-nearest-even keeps the even one.
    const float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(fp32ToFp16Bits(halfway), 0x3c00u);
    // Slightly above halfway rounds up.
    const float above = 1.0f + std::ldexp(1.0f, -11) * 1.01f;
    EXPECT_EQ(fp32ToFp16Bits(above), 0x3c01u);
}

TEST(Bf16, KnownValuesAndRoundTrip)
{
    EXPECT_EQ(fp32ToBf16Bits(1.0f), 0x3f80u);
    EXPECT_EQ(fp32ToBf16Bits(-1.0f), 0xbf80u);
    EXPECT_FLOAT_EQ(bf16BitsToFp32(0x3f80u), 1.0f);
    // bf16 keeps fp32 range: large magnitudes survive.
    const float big = 3.0e38f;
    EXPECT_TRUE(std::isfinite(bf16BitsToFp32(fp32ToBf16Bits(big))));
    EXPECT_TRUE(std::isnan(bf16BitsToFp32(fp32ToBf16Bits(
        std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Bf16, RelativeErrorBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const float f = static_cast<float>(rng.uniform(-100.0, 100.0));
        const float r = bf16BitsToFp32(fp32ToBf16Bits(f));
        if (std::abs(f) > 1e-30f) {
            EXPECT_LE(std::abs(r - f) / std::abs(f), 1.0f / 128.0f);
        }
    }
}

class DTypePrecision : public ::testing::TestWithParam<DType>
{
};

TEST_P(DTypePrecision, RoundTripIsIdempotent)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const float f = static_cast<float>(rng.gaussian(0.0, 10.0));
        const float once = roundTrip(f, GetParam());
        const float twice = roundTrip(once, GetParam());
        EXPECT_EQ(once, twice);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, DTypePrecision,
                         ::testing::Values(DType::FP32, DType::FP16,
                                           DType::BF16, DType::INT8));

TEST(TensorTest, ShapeBasics)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.numel(), 24);
    EXPECT_EQ(s.toString(), "[2x3x4]");
}

TEST(TensorTest, SetGetAcrossDtypes)
{
    for (DType t : {DType::FP32, DType::FP16, DType::BF16}) {
        Tensor x(Shape{4, 4}, t);
        x.set2(1, 2, 3.5f);
        EXPECT_FLOAT_EQ(x.at2(1, 2), 3.5f) << dtypeName(t);
        EXPECT_EQ(x.sizeBytes(), 16 * dtypeSize(t));
    }
}

TEST(TensorTest, CastReducesPrecision)
{
    Rng rng(9);
    Tensor x(Shape{32, 32}, DType::FP32);
    x.fillGaussian(rng);
    const Tensor h = x.cast(DType::FP16);
    const Tensor back = h.cast(DType::FP32);
    EXPECT_GT(Tensor::maxAbsDiff(x, back), 0.0);
    EXPECT_LT(Tensor::rmse(x, back), 1e-3);
}

TEST(TensorTest, FlipBitChangesValue)
{
    Tensor x(Shape{8}, DType::FP32);
    x.fill(1.0f);
    x.flipBit(23); // mantissa MSB region of element 0
    EXPECT_NE(x.at(0), 1.0f);
    EXPECT_FLOAT_EQ(x.at(1), 1.0f);
}

TEST(TensorTest, FlipExponentBitCanProduceHugeError)
{
    Tensor x(Shape{1}, DType::FP32);
    x.set(0, 1.0f);
    x.flipBit(30); // high exponent bit: 1.0 -> 2^128-ish territory
    EXPECT_TRUE(std::abs(x.at(0)) > 1e30f || !std::isfinite(x.at(0)));
}

TEST(TensorTest, NonFiniteDetection)
{
    Tensor x(Shape{4}, DType::FP32);
    EXPECT_FALSE(x.hasNonFinite());
    x.set(2, std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(x.hasNonFinite());
}

TEST(JaggedTest, OffsetsAndDense)
{
    JaggedTensor j({2, 0, 3}, 4);
    EXPECT_EQ(j.batchSize(), 3);
    EXPECT_EQ(j.totalRows(), 5);
    EXPECT_EQ(j.lengthOf(0), 2);
    EXPECT_EQ(j.lengthOf(1), 0);
    EXPECT_EQ(j.lengthOf(2), 3);

    for (std::int64_t r = 0; r < 5; ++r)
        for (std::int64_t c = 0; c < 4; ++c)
            j.set(r, c, static_cast<float>(10 * r + c));

    const Tensor dense = j.toDense();
    EXPECT_EQ(dense.shape(), (Shape{3, 3, 4}));
    EXPECT_FLOAT_EQ(dense.at((0 * 3 + 1) * 4 + 2), 12.0f);
    EXPECT_FLOAT_EQ(dense.at((1 * 3 + 0) * 4 + 0), 0.0f); // padding
    EXPECT_FLOAT_EQ(dense.at((2 * 3 + 2) * 4 + 3), 43.0f);
}

TEST(JaggedTest, DenseRoundTrip)
{
    Rng rng(21);
    JaggedTensor j =
        JaggedTensor::randomHistory(rng, 16, 8, 20.0, 100);
    const Tensor dense = j.toDense();
    std::vector<std::int64_t> lengths;
    for (std::int64_t b = 0; b < j.batchSize(); ++b)
        lengths.push_back(j.lengthOf(b));
    const JaggedTensor j2 = JaggedTensor::fromDense(dense, lengths);
    EXPECT_EQ(j2.totalRows(), j.totalRows());
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(j.values(), j2.values()), 0.0);
}

TEST(JaggedTest, HistoryLengthsSkewed)
{
    Rng rng(31);
    JaggedTensor j =
        JaggedTensor::randomHistory(rng, 2000, 4, 50.0, 1000);
    double mean = static_cast<double>(j.totalRows()) / 2000.0;
    EXPECT_NEAR(mean, 50.0, 15.0);
    // Skew: max length far above the mean.
    std::int64_t max_len = 0;
    for (std::int64_t b = 0; b < j.batchSize(); ++b)
        max_len = std::max(max_len, j.lengthOf(b));
    EXPECT_GT(max_len, static_cast<std::int64_t>(3 * mean));
}

class QuantScheme : public ::testing::TestWithParam<QuantGranularity>
{
};

TEST_P(QuantScheme, ReconstructionErrorBounded)
{
    Rng rng(41);
    Tensor x(Shape{64, 128}, DType::FP32);
    x.fillGaussian(rng, 0.0f, 2.0f);
    const QuantizedTensor q = quantizeDynamic(x, GetParam(), 8);
    const Tensor deq = dequantize(q);
    // Symmetric INT8 max error is scale/2 per element.
    for (std::int64_t r = 0; r < 64; ++r) {
        for (std::int64_t c = 0; c < 128; ++c) {
            EXPECT_LE(std::abs(x.at2(r, c) - deq.at2(r, c)),
                      q.scaleFor(r) * 0.5f + 1e-6f);
        }
    }
    EXPECT_GT(sqnrDb(x, deq), 25.0);
}

INSTANTIATE_TEST_SUITE_P(Granularities, QuantScheme,
                         ::testing::Values(QuantGranularity::PerTensor,
                                           QuantGranularity::PerRow,
                                           QuantGranularity::PerRowGroup));

TEST(QuantTest, RowWiseBeatsPerTensorOnSkewedRows)
{
    // Rows with very different magnitudes: one scale for all rows
    // crushes the small rows (they quantize to zero); row-wise scales
    // preserve them. This is the Section 4.4 finding that row-wise
    // activation quantization matches FP16 quality.
    Rng rng(43);
    Tensor x(Shape{32, 64}, DType::FP32);
    for (std::int64_t r = 0; r < 32; ++r) {
        const float mag = (r % 2 == 0) ? 100.0f : 0.1f;
        for (std::int64_t c = 0; c < 64; ++c)
            x.set2(r, c, static_cast<float>(rng.gaussian(0.0, mag)));
    }
    const Tensor pt =
        dequantize(quantizeDynamic(x, QuantGranularity::PerTensor));
    const Tensor pr =
        dequantize(quantizeDynamic(x, QuantGranularity::PerRow)) ;
    // Relative RMSE of a small-magnitude row.
    auto row_rel_rmse = [&](const Tensor &deq, std::int64_t r) {
        double err = 0.0;
        double sig = 0.0;
        for (std::int64_t c = 0; c < 64; ++c) {
            const double d = x.at2(r, c) - deq.at2(r, c);
            err += d * d;
            sig += x.at2(r, c) * x.at2(r, c);
        }
        return std::sqrt(err / sig);
    };
    // Per-tensor quantization flattens the small row almost entirely;
    // per-row keeps it within ~1% relative error.
    EXPECT_GT(row_rel_rmse(pt, 1), 0.5);
    EXPECT_LT(row_rel_rmse(pr, 1), 0.02);
}

TEST(QuantTest, StaticSaturationImprovesHeavyTails)
{
    Rng rng(47);
    Tensor w(Shape{64, 64}, DType::FP32);
    w.fillGaussian(rng);
    w.set2(0, 0, 500.0f); // a single large outlier
    const Tensor full = dequantize(quantizeStatic(w, 100.0));
    const Tensor clipped = dequantize(quantizeStatic(w, 99.9));
    // Clipping the outlier shrinks the step size, so the bulk of the
    // weights (everything except the outlier) reconstructs better.
    auto bulk_rmse = [&](const Tensor &deq) {
        double acc = 0.0;
        for (std::int64_t i = 1; i < w.numel(); ++i) {
            const double d = w.at(i) - deq.at(i);
            acc += d * d;
        }
        return std::sqrt(acc / static_cast<double>(w.numel() - 1));
    };
    EXPECT_LT(bulk_rmse(clipped), bulk_rmse(full) / 10.0);
}

TEST(SparsityTest, TwoFourStructure)
{
    Rng rng(53);
    Tensor w(Shape{16, 32}, DType::FP32);
    w.fillGaussian(rng);
    const double retained = applyTwoFourSparsity(w);
    // Exactly two nonzeros per group of four.
    for (std::int64_t r = 0; r < 16; ++r) {
        for (std::int64_t c0 = 0; c0 < 32; c0 += 4) {
            int nonzero = 0;
            for (std::int64_t j = 0; j < 4; ++j)
                nonzero += (w.at2(r, c0 + j) != 0.0f);
            EXPECT_LE(nonzero, 2);
        }
    }
    // Keeping the two largest of four Gaussians retains most energy.
    EXPECT_GT(retained, 0.75);
    EXPECT_LT(retained, 1.0);
}

TEST(SparsityTest, AlreadySparseLosesNothing)
{
    Tensor w(Shape{4, 8}, DType::FP32);
    for (std::int64_t r = 0; r < 4; ++r)
        for (std::int64_t c = 0; c < 8; c += 4)
            w.set2(r, c, 1.0f); // one nonzero per group
    EXPECT_DOUBLE_EQ(applyTwoFourSparsity(w), 1.0);
}

} // namespace
} // namespace mtia
