/**
 * @file
 * Tests for the processing-element units: DPE functional GEMM and
 * utilization model, SIMD LUT approximation, reduction engine, MLU
 * layout ops, command-processor instruction accounting, circular
 * buffers, fabric interface, and the eager-mode work-queue engine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pe/command_processor.h"
#include "pe/dpe.h"
#include "pe/fabric_interface.h"
#include "pe/mlu.h"
#include "pe/reduction_engine.h"
#include "pe/simd_engine.h"
#include "pe/work_queue_engine.h"
#include "sim/random.h"
#include "tensor/quantize.h"

namespace mtia {
namespace {

Tensor
randomTensor(Rng &rng, Shape shape, float stddev = 1.0f)
{
    Tensor t(std::move(shape), DType::FP32);
    t.fillGaussian(rng, 0.0f, stddev);
    return t;
}

/** Naive double-precision reference GEMM. */
Tensor
refGemm(const Tensor &a, const Tensor &b)
{
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    const std::int64_t n = b.shape().dim(1);
    Tensor c(Shape{m, n}, DType::FP32);
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t x = 0; x < k; ++x)
                acc += static_cast<double>(a.at2(i, x)) * b.at2(x, j);
            c.set2(i, j, static_cast<float>(acc));
        }
    }
    return c;
}

TEST(Dpe, Fp16GemmTracksReference)
{
    Rng rng(1);
    DotProductEngine dpe;
    const Tensor a = randomTensor(rng, Shape{16, 64});
    const Tensor b = randomTensor(rng, Shape{64, 24});
    const Tensor c = dpe.gemm(a, b, DType::FP16);
    const Tensor ref = refGemm(a, b);
    // FP16 inputs with FP32 accumulation: relative error ~2^-11 * K.
    EXPECT_LT(Tensor::rmse(c, ref) / 8.0, 3e-3);
}

TEST(Dpe, Fp32GemmIsNearExact)
{
    Rng rng(2);
    DotProductEngine dpe;
    const Tensor a = randomTensor(rng, Shape{8, 32});
    const Tensor b = randomTensor(rng, Shape{32, 8});
    EXPECT_LT(Tensor::maxAbsDiff(dpe.gemm(a, b, DType::FP32),
                                 refGemm(a, b)),
              1e-4);
}

TEST(Dpe, Bf16LosesMorePrecisionThanFp16)
{
    Rng rng(3);
    DotProductEngine dpe;
    const Tensor a = randomTensor(rng, Shape{16, 128});
    const Tensor b = randomTensor(rng, Shape{128, 16});
    const Tensor ref = refGemm(a, b);
    const double err16 = Tensor::rmse(dpe.gemm(a, b, DType::FP16), ref);
    const double errbf = Tensor::rmse(dpe.gemm(a, b, DType::BF16), ref);
    EXPECT_GT(errbf, err16);
}

TEST(Dpe, Int8PathMatchesDequantizedReference)
{
    Rng rng(4);
    DotProductEngine dpe;
    const Tensor a = randomTensor(rng, Shape{8, 64}, 2.0f);
    const Tensor w = randomTensor(rng, Shape{64, 16}, 0.5f);
    const QuantizedTensor qa =
        quantizeDynamic(a, QuantGranularity::PerRow);
    const QuantizedTensor qw = quantizeStatic(w);
    const Tensor c = dpe.gemmInt8(qa, qw);
    const Tensor ref = refGemm(a, w);
    // INT8 quantization noise, but clearly correlated with reference.
    double ref_mag = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        ref_mag += std::abs(ref.at(i));
    ref_mag /= static_cast<double>(ref.numel());
    EXPECT_LT(Tensor::rmse(c, ref), 0.1 * ref_mag + 0.2);
}

TEST(Dpe, ShapeUtilization)
{
    DotProductEngine dpe;
    EXPECT_DOUBLE_EQ(dpe.shapeUtilization(2048, 2048, 2048), 1.0);
    EXPECT_DOUBLE_EQ(dpe.shapeUtilization(64, 64, 64), 1.0);
    // 48 columns pad to 64: three quarters used.
    EXPECT_DOUBLE_EQ(dpe.shapeUtilization(64, 48, 64), 0.75);
    // Tiny M wastes the stream pipeline.
    EXPECT_DOUBLE_EQ(dpe.shapeUtilization(8, 64, 64), 0.25);
    // Utilization is monotone in padding waste.
    EXPECT_GT(dpe.shapeUtilization(64, 33, 64),
              dpe.shapeUtilization(64, 1, 64));
}

TEST(Dpe, PeakFlopsTable2)
{
    DotProductEngine dpe; // MTIA 2i config
    // Per PE at 1.35 GHz: 2.76 TFLOPS FP16.
    EXPECT_NEAR(dpe.peakFlops(1.35, DType::FP16, false) / 1e12, 2.76,
                0.01);
    EXPECT_NEAR(dpe.peakFlops(1.35, DType::INT8, false) / 1e12, 5.53,
                0.01);
    EXPECT_NEAR(dpe.peakFlops(1.35, DType::INT8, true) / 1e12, 11.06,
                0.02);
}

class SimdLut : public ::testing::TestWithParam<Nonlinearity>
{
};

TEST_P(SimdLut, ApproximationErrorSmallInRange)
{
    SimdEngine se;
    const Nonlinearity f = GetParam();
    float lo = -4.0f;
    float hi = 4.0f;
    if (f == Nonlinearity::Rsqrt) {
        lo = 0.25f;
        hi = 4.0f;
    }
    double bound = 5e-3;
    if (f == Nonlinearity::Exp)
        bound = 0.05; // exp grows; absolute error largest near hi
    EXPECT_LT(se.maxLutError(f, lo, hi), bound)
        << nonlinearityName(f);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, SimdLut,
    ::testing::Values(Nonlinearity::Relu, Nonlinearity::Sigmoid,
                      Nonlinearity::Tanh, Nonlinearity::Gelu,
                      Nonlinearity::Silu));

TEST(Simd, ReluIsExact)
{
    SimdEngine se;
    EXPECT_DOUBLE_EQ(se.maxLutError(Nonlinearity::Relu, -10.0f, 10.0f),
                     0.0);
}

TEST(Simd, LutAndExactDivergeMeasurably)
{
    // The LUT path is an approximation: A/B parity experiments must
    // see a real, nonzero numeric difference.
    SimdEngine se;
    Rng rng(5);
    Tensor x(Shape{1024}, DType::FP32);
    x.fillGaussian(rng, 0.0f, 2.0f);
    const Tensor lut = se.apply(Nonlinearity::Sigmoid, x);
    const Tensor exact = SimdEngine::applyExact(Nonlinearity::Sigmoid, x);
    const double diff = Tensor::maxAbsDiff(lut, exact);
    EXPECT_GT(diff, 0.0);
    EXPECT_LT(diff, 1e-3);
}

TEST(Simd, LutMemoryFitsTheSmallBudget)
{
    SimdEngine se;
    LookupTable lut([](float x) { return x; }, 0.0f, 1.0f,
                    se.config().lut_entries);
    EXPECT_LE(lut.sizeBytes(), 4096u);
}

TEST(Reduction, AccumulateAndReduceAll)
{
    Tensor a(Shape{2, 2}, DType::FP32);
    a.fill(1.0f);
    Tensor b(Shape{2, 2}, DType::FP32);
    b.fill(2.5f);
    ReductionEngine::accumulate(a, b);
    EXPECT_FLOAT_EQ(a.at(0), 3.5f);

    std::vector<Tensor> parts;
    for (int i = 0; i < 8; ++i) {
        Tensor t(Shape{2, 2}, DType::FP32);
        t.fill(1.0f);
        parts.push_back(t);
    }
    const Tensor sum = ReductionEngine::reduceAll(parts);
    EXPECT_FLOAT_EQ(sum.at(3), 8.0f);
}

TEST(Reduction, RowMinMaxFeedsSymmetricScale)
{
    Tensor t(Shape{2, 3}, DType::FP32);
    t.set2(0, 0, -4.0f);
    t.set2(0, 1, 1.0f);
    t.set2(0, 2, 2.0f);
    t.set2(1, 0, 0.5f);
    t.set2(1, 1, -0.25f);
    t.set2(1, 2, 0.125f);
    const auto mm = ReductionEngine::rowMinMax(t);
    ASSERT_EQ(mm.size(), 2u);
    EXPECT_FLOAT_EQ(mm[0].min, -4.0f);
    EXPECT_FLOAT_EQ(mm[0].max, 2.0f);
    EXPECT_FLOAT_EQ(mm[0].symmetricScale(), 4.0f / 127.0f);
    EXPECT_FLOAT_EQ(mm[1].symmetricScale(), 0.5f / 127.0f);
}

TEST(Mlu, TransposeInvolution)
{
    Rng rng(6);
    const Tensor t = randomTensor(rng, Shape{5, 9});
    const Tensor tt =
        MemoryLayoutUnit::transpose(MemoryLayoutUnit::transpose(t));
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(t, tt), 0.0);
}

TEST(Mlu, Permute3RoundTrip)
{
    Rng rng(7);
    const Tensor t = randomTensor(rng, Shape{3, 4, 5});
    const Tensor p = MemoryLayoutUnit::permute3(t, {2, 0, 1});
    EXPECT_EQ(p.shape(), (Shape{5, 3, 4}));
    const Tensor back = MemoryLayoutUnit::permute3(p, {1, 2, 0});
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(t, back), 0.0);
}

TEST(Mlu, ConcatSliceRoundTrip)
{
    Rng rng(8);
    const Tensor a = randomTensor(rng, Shape{3, 4});
    const Tensor b = randomTensor(rng, Shape{2, 4});
    const Tensor c = MemoryLayoutUnit::concat({a, b}, 0);
    EXPECT_EQ(c.shape(), (Shape{5, 4}));
    EXPECT_DOUBLE_EQ(
        Tensor::maxAbsDiff(MemoryLayoutUnit::sliceRows(c, 0, 3), a), 0.0);
    EXPECT_DOUBLE_EQ(
        Tensor::maxAbsDiff(MemoryLayoutUnit::sliceRows(c, 3, 5), b), 0.0);
}

TEST(Mlu, ConcatAxis1)
{
    Rng rng(9);
    const Tensor a = randomTensor(rng, Shape{2, 3});
    const Tensor b = randomTensor(rng, Shape{2, 2});
    const Tensor c = MemoryLayoutUnit::concat({a, b}, 1);
    EXPECT_EQ(c.shape(), (Shape{2, 5}));
    EXPECT_FLOAT_EQ(c.at2(1, 3), b.at2(1, 0));
}

TEST(Mlu, ReshapePreservesData)
{
    Rng rng(10);
    const Tensor t = randomTensor(rng, Shape{4, 6});
    const Tensor r = MemoryLayoutUnit::reshape(t, Shape{2, 12});
    EXPECT_EQ(r.numel(), t.numel());
    EXPECT_FLOAT_EQ(r.at(13), t.at(13));
}

TEST(CircularBufferTest, CreditsAndStalls)
{
    CircularBuffer cb(4, 1024);
    EXPECT_EQ(cb.footprint(), 4096u);
    EXPECT_TRUE(cb.empty());
    EXPECT_FALSE(cb.pop()); // consumer stall
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(cb.push());
    EXPECT_TRUE(cb.full());
    EXPECT_FALSE(cb.push()); // producer stall
    EXPECT_TRUE(cb.pop());
    EXPECT_TRUE(cb.push());
    EXPECT_EQ(cb.producerStalls(), 1u);
    EXPECT_EQ(cb.consumerStalls(), 1u);
}

TEST(CommandProc, FeatureBitsReduceGemmInstructions)
{
    CommandProcessor modern{IsaFeatures{}};
    CommandProcessor legacy{IsaFeatures::mtia1()};
    const auto modern_count = modern.gemmInstructions(256, 256, 2048);
    const auto legacy_count = legacy.gemmInstructions(256, 256, 2048);
    EXPECT_EQ(legacy_count, 5 * modern_count);
}

TEST(CommandProc, TbeInstructionReduction)
{
    CommandProcessor modern{IsaFeatures{}};
    CommandProcessor legacy{IsaFeatures::mtia1()};
    const std::uint64_t rows = 100000;
    // Modern: 1 instr/row + rows/128 accums. Legacy: 5/row + rows/32.
    EXPECT_EQ(modern.tbeInstructions(rows), rows + (rows + 127) / 128);
    EXPECT_EQ(legacy.tbeInstructions(rows),
              5 * rows + (rows + 31) / 32);
    EXPECT_GT(legacy.tbeInstructions(rows),
              4 * modern.tbeInstructions(rows));
}

TEST(CommandProc, IssueTimeScalesWithClock)
{
    CommandProcessor cp{IsaFeatures{}};
    const Tick slow = cp.issueTime(100000, 1.1);
    const Tick fast = cp.issueTime(100000, 1.35);
    EXPECT_NEAR(static_cast<double>(slow) / fast, 1.35 / 1.1, 0.01);
}

TEST(Fabric, PrefetchOverlapsDramLatency)
{
    FabricInterfaceConfig with;
    with.prefetch = true;
    FabricInterfaceConfig without = with;
    without.prefetch = false;
    FabricInterface fi_with(with);
    FabricInterface fi_without(without);
    // Per-PE view: this PE's share of DRAM bandwidth is ~2.8 GB/s
    // (182 GB/s across 64 PEs); the SRAM hop runs at the FI's 42 GB/s
    // port rate.
    const Bytes bytes = 16_MiB;
    const Tick t1 =
        fi_with.dramReadTime(bytes, gbPerSec(2.8), gbPerSec(42.0));
    const Tick t2 =
        fi_without.dramReadTime(bytes, gbPerSec(2.8), gbPerSec(42.0));
    EXPECT_LT(t1, t2);
    // With prefetch the DRAM leg alone bounds the time.
    EXPECT_EQ(t1, transferTicks(bytes, gbPerSec(2.8)));
}

TEST(Wqe, EagerLaunchMeetsPaperBudgets)
{
    WorkQueueEngine modern{WorkQueueConfig{}};
    WorkQueueEngine legacy{WorkQueueConfig::mtia1()};
    const Tick launch = modern.launchTime(64);
    const Tick replace = modern.replaceTime(64);
    const Tick old_launch = legacy.launchTime(64);
    // Section 3.3: launch < 1 us, replace < 0.5 us, ~80% reduction.
    EXPECT_LT(toMicros(launch), 1.0);
    EXPECT_LT(toMicros(replace), 0.5);
    const double reduction =
        1.0 - static_cast<double>(launch) / old_launch;
    EXPECT_GE(reduction, 0.75);
}

TEST(Wqe, AsyncLaunchFiresCompletionAtLaunchTime)
{
    WorkQueueEngine wqe{WorkQueueConfig{}};
    EventQueue eq;
    Tick fired_at = 0;
    int fired = 0;
    const Tick done = wqe.launchAsync(eq, 64, [&] {
        fired_at = eq.now();
        ++fired;
    });
    EXPECT_EQ(done, wqe.launchTime(64));
    EXPECT_EQ(fired, 0);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(fired_at, done);
}

TEST(Wqe, AsyncReplaceChainsFromCompletion)
{
    // Launch, then replace from inside the completion callback — the
    // event-driven shape the serving simulator uses.
    WorkQueueEngine wqe{WorkQueueConfig{}};
    EventQueue eq;
    Tick replaced_at = 0;
    wqe.launchAsync(eq, 64, [&] {
        wqe.replaceAsync(eq, 64, [&] { replaced_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(replaced_at, wqe.launchTime(64) + wqe.replaceTime(64));
    EXPECT_EQ(eq.executed(), 2u);
}

} // namespace
} // namespace mtia
