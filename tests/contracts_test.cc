/**
 * Precondition tests: every contract-bearing module fires a
 * MTIA_CHECK on invalid input. ScopedCheckThrow swaps the aborting
 * failure handler for one that throws CheckFailedError, so a fired
 * contract is observable with EXPECT_THROW.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/check.h"
#include "fleet/firmware.h"
#include "graph/graph.h"
#include "host/compression.h"
#include "mem/ecc.h"
#include "noc/noc.h"
#include "pe/command_processor.h"
#include "pe/simd_engine.h"
#include "serving/coalescer.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace mtia {
namespace {

// ---------------------------------------------------------------- sim

TEST(ContractsSim, EventQueueRejectsScheduleInThePast)
{
    ScopedCheckThrow guard;
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_EQ(q.now(), 100u);
    EXPECT_THROW(q.schedule(99, [] {}), CheckFailedError);
}

TEST(ContractsSim, EventQueueRejectsNullCallback)
{
    ScopedCheckThrow guard;
    EventQueue q;
    EXPECT_THROW(q.schedule(1, nullptr), CheckFailedError);
}

TEST(ContractsSim, RngBelowRejectsEmptyRange)
{
    ScopedCheckThrow guard;
    Rng rng(42);
    EXPECT_THROW(rng.below(0), CheckFailedError);
}

TEST(ContractsSim, RngExponentialRejectsNonPositiveRate)
{
    ScopedCheckThrow guard;
    Rng rng(42);
    EXPECT_THROW(rng.exponential(0.0), CheckFailedError);
}

TEST(ContractsSim, ZipfSamplerRejectsEmptyItemSet)
{
    ScopedCheckThrow guard;
    EXPECT_THROW(ZipfSampler(0, 0.8), CheckFailedError);
}

TEST(ContractsSim, ZipfSamplerRejectsAlphaOne)
{
    // alpha == 1 hits the 1/(1-alpha) singularity of the
    // rejection-inversion sampler; it must fail loudly rather than
    // silently nudge the exponent.
    ScopedCheckThrow guard;
    EXPECT_THROW(ZipfSampler(100, 1.0), CheckFailedError);
}

TEST(ContractsSim, DiscreteSamplerRejectsEmptyWeights)
{
    ScopedCheckThrow guard;
    EXPECT_THROW(DiscreteSampler(std::vector<double>{}), CheckFailedError);
}

TEST(ContractsSim, DiscreteSamplerRejectsNegativeWeight)
{
    ScopedCheckThrow guard;
    EXPECT_THROW(DiscreteSampler({1.0, -0.5, 2.0}), CheckFailedError);
}

TEST(ContractsSim, HistogramPercentileRejectsEmptyAndOutOfRange)
{
    ScopedCheckThrow guard;
    Histogram h;
    EXPECT_THROW(h.percentile(50.0), CheckFailedError);
    h.add(1.0);
    EXPECT_THROW(h.percentile(101.0), CheckFailedError);
    EXPECT_THROW(h.percentile(-0.5), CheckFailedError);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(h.percentile(nan), CheckFailedError);
}

TEST(ContractsSim, HistogramPercentileEdgeBehavior)
{
    Histogram h;
    h.add(7.0);
    // Single sample: every percentile is that sample.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 7.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 7.0);

    h.add(3.0);
    h.add(11.0);
    // p=0 is the minimum, p=100 the maximum, exactly.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 11.0);
    // Tiny but nonzero p never falls below the minimum.
    EXPECT_DOUBLE_EQ(h.percentile(1e-9), 3.0);
}

// ------------------------------------------------------------- tensor

TEST(ContractsTensor, ShapeDimRejectsOutOfRangeAxis)
{
    ScopedCheckThrow guard;
    Shape s{4, 8};
    EXPECT_THROW(s.dim(2), CheckFailedError);
}

TEST(ContractsTensor, FromFloatsRejectsMismatchedShape)
{
    ScopedCheckThrow guard;
    EXPECT_THROW(
        Tensor::fromFloats({1.0f, 2.0f, 3.0f}, Shape{2, 2}, DType::FP32),
        CheckFailedError);
}

TEST(ContractsTensor, QuantizedScaleForRejectsOutOfRangeRow)
{
#if MTIA_DCHECK_ENABLED
    ScopedCheckThrow guard;
    const Tensor act =
        Tensor::fromFloats({1.0f, -2.0f, 3.0f, -4.0f}, Shape{2, 2},
                           DType::FP32);
    const QuantizedTensor q =
        quantizeDynamic(act, QuantGranularity::PerRow);
    EXPECT_FLOAT_EQ(q.scaleFor(0), 2.0f / 127.0f);
    EXPECT_THROW(q.scaleFor(-1), CheckFailedError);
    EXPECT_THROW(q.scaleFor(2), CheckFailedError);
#else
    GTEST_SKIP() << "MTIA_DCHECK compiled out (NDEBUG build)";
#endif
}

// ---------------------------------------------------------------- mem

TEST(ContractsMem, EccFlipBitRejectsIndexPast72)
{
    ScopedCheckThrow guard;
    EccCodeword cw = EccCodec::encode(0xdeadbeefULL);
    EXPECT_THROW(cw.flipBit(72), CheckFailedError);
}

// ---------------------------------------------------------------- noc

TEST(ContractsNoc, NocModelRejectsNonPositiveBisectionBandwidth)
{
    ScopedCheckThrow guard;
    NocConfig cfg;
    cfg.bisection_bandwidth = 0.0;
    EXPECT_THROW(NocModel{cfg}, CheckFailedError);
}

// ----------------------------------------------------------------- pe

TEST(ContractsPe, CircularBufferRejectsZeroSlots)
{
    ScopedCheckThrow guard;
    EXPECT_THROW(CircularBuffer(0, 256), CheckFailedError);
}

TEST(ContractsPe, LookupTableRejectsEmptyRange)
{
    ScopedCheckThrow guard;
    EXPECT_THROW(
        LookupTable([](float x) { return x; }, 1.0f, 1.0f, 16),
        CheckFailedError);
}

// ------------------------------------------------------------ serving

TEST(ContractsServing, CoalescerRejectsZeroBatchCapacity)
{
    ScopedCheckThrow guard;
    CoalescerConfig cfg;
    cfg.batch_capacity = 0;
    Coalescer c(cfg);
    EXPECT_THROW(c.coalesce({}), CheckFailedError);
}

TEST(ContractsServing, CoalescerRejectsUnsortedTrace)
{
    ScopedCheckThrow guard;
    Coalescer c{CoalescerConfig{}};
    std::vector<Request> trace;
    trace.push_back(Request{0, /*arrival=*/200, /*candidates=*/4});
    trace.push_back(Request{1, /*arrival=*/100, /*candidates=*/4});
    EXPECT_THROW(c.coalesce(trace), CheckFailedError);
}

// -------------------------------------------------------------- fleet

TEST(ContractsFleet, RolloutRejectsZeroConcurrentRestarts)
{
    ScopedCheckThrow guard;
    FirmwareManager mgr(/*seed=*/7, /*fleet_servers=*/100);
    FirmwareBundle bundle;
    bundle.version = "test";
    bundle.image = {1, 2, 3};
    bundle.sign();
    EXPECT_THROW(
        mgr.rollout(bundle, FirmwareManager::standardPlan(), 0),
        CheckFailedError);
}

TEST(ContractsFleet, RolloutRejectsNonMonotoneStageFractions)
{
    ScopedCheckThrow guard;
    FirmwareManager mgr(/*seed=*/7, /*fleet_servers=*/100);
    FirmwareBundle bundle;
    bundle.version = "test";
    bundle.image = {1, 2, 3};
    bundle.sign();
    std::vector<RolloutStage> plan = {
        {"wide", 0.5, fromSeconds(1.0)},
        {"narrow", 0.25, fromSeconds(1.0)}, // fraction went backwards
    };
    EXPECT_THROW(mgr.rollout(bundle, plan, 4), CheckFailedError);
}

// -------------------------------------------------------------- graph

TEST(ContractsGraph, GraphAddRejectsNullOp)
{
    ScopedCheckThrow guard;
    Graph g;
    EXPECT_THROW(g.add(nullptr), CheckFailedError);
}

// --------------------------------------------------------------- host

TEST(ContractsHost, RansDecompressRejectsTruncatedStream)
{
    ScopedCheckThrow guard;
    ByteBuffer truncated = {0x01, 0x02};
    EXPECT_THROW(RansCodec::decompress(truncated), CheckFailedError);
}

// ------------------------------------------------------------- macros

TEST(ContractsMacros, StreamedMessageReachesHandler)
{
    ScopedCheckThrow guard;
    try {
        MTIA_CHECK_EQ(2 + 2, 5) << ": arithmetic still works";
        FAIL() << "check did not fire";
    } catch (const CheckFailedError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("MTIA_CHECK_EQ"), std::string::npos) << what;
        EXPECT_NE(what.find("arithmetic still works"), std::string::npos)
            << what;
        EXPECT_NE(what.find("4 vs. 5"), std::string::npos) << what;
    }
}

TEST(ContractsMacros, PassingChecksEvaluateOperandsOnce)
{
    ScopedCheckThrow guard;
    int evals = 0;
    auto once = [&evals] { return ++evals; };
    MTIA_CHECK_GE(once(), 1);
    EXPECT_EQ(evals, 1);
    MTIA_CHECK(once() == 2);
    EXPECT_EQ(evals, 2);
}

TEST(ContractsMacros, HandlerIsRestoredAfterScopeExit)
{
    const auto before = getCheckFailureHandler();
    {
        ScopedCheckThrow guard;
        EXPECT_NE(getCheckFailureHandler(), before);
    }
    EXPECT_EQ(getCheckFailureHandler(), before);
}

} // namespace
} // namespace mtia
