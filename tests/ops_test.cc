/**
 * @file
 * Tests for the operator library: functional correctness of dense,
 * sparse, and attention ops, and the cost-model behaviours the
 * co-design story depends on (fusion savings, TBE hit rates, MHA
 * custom transpose, ragged-vs-padded attention).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "chip/device.h"
#include "chip/kernel_cost_model.h"
#include "ops/attention_ops.h"
#include "ops/dense_ops.h"
#include "ops/sparse_ops.h"

namespace mtia {
namespace {

class OpsTest : public ::testing::Test
{
  protected:
    OpsTest() : dev_(ChipConfig::mtia2i()), km_(dev_) {}

    Device dev_;
    KernelCostModel km_;
    OpContext ctx_{};
    Rng rng_{42};
};

TEST_F(OpsTest, FcComputesLinearLayer)
{
    ctx_.rng = &rng_;
    FullyConnectedOp fc(4, 8, 3, DType::FP32);
    Tensor x(Shape{4, 8}, DType::FP32);
    x.fillGaussian(rng_);
    const Tensor y = fc.run({x}, ctx_);
    EXPECT_EQ(y.shape(), (Shape{4, 3}));
    // Check one element against a manual dot product.
    double expect = 0.0;
    for (std::int64_t k = 0; k < 8; ++k)
        expect += static_cast<double>(x.at2(1, k)) *
            fc.weights().at2(k, 2);
    EXPECT_NEAR(y.at2(1, 2), expect, 1e-4);
}

TEST_F(OpsTest, FcDeterministicWeightsPerSeed)
{
    FullyConnectedOp a(2, 4, 4, DType::FP16, false, Nonlinearity::Relu,
                       99);
    FullyConnectedOp b(2, 4, 4, DType::FP16, false, Nonlinearity::Relu,
                       99);
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(a.weights(), b.weights()), 0.0);
}

TEST_F(OpsTest, FusedActivationClampsNegatives)
{
    ctx_.rng = &rng_;
    FullyConnectedOp fc(8, 16, 16, DType::FP32, true,
                        Nonlinearity::Relu);
    Tensor x(Shape{8, 16}, DType::FP32);
    x.fillGaussian(rng_);
    const Tensor y = fc.run({x}, ctx_);
    for (std::int64_t i = 0; i < y.numel(); ++i)
        EXPECT_GE(y.at(i), 0.0f);
}

TEST_F(OpsTest, LayerNormNormalizesRows)
{
    ctx_.rng = &rng_;
    LayerNormOp ln(4, 64);
    Tensor x(Shape{4, 64}, DType::FP32);
    x.fillGaussian(rng_, 5.0f, 3.0f);
    const Tensor y = ln.run({x}, ctx_);
    for (std::int64_t r = 0; r < 4; ++r) {
        double mean = 0.0;
        double var = 0.0;
        for (std::int64_t c = 0; c < 64; ++c)
            mean += y.at2(r, c);
        mean /= 64.0;
        for (std::int64_t c = 0; c < 64; ++c)
            var += (y.at2(r, c) - mean) * (y.at2(r, c) - mean);
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST_F(OpsTest, BatchedLayerNormMatchesIndividuals)
{
    ctx_.rng = &rng_;
    Tensor a(Shape{4, 32}, DType::FP32);
    Tensor b(Shape{4, 32}, DType::FP32);
    a.fillGaussian(rng_, 1.0f, 2.0f);
    b.fillGaussian(rng_, -3.0f, 0.5f);

    LayerNormOp single(4, 32);
    const Tensor ya = single.run({a}, ctx_);
    const Tensor yb = single.run({b}, ctx_);

    LayerNormOp batched(4, 32, 2);
    const Tensor y = batched.run({a, b}, ctx_);
    for (std::int64_t r = 0; r < 4; ++r) {
        for (std::int64_t c = 0; c < 32; ++c) {
            EXPECT_FLOAT_EQ(y.at2(r, c), ya.at2(r, c));
            EXPECT_FLOAT_EQ(y.at2(r, 32 + c), yb.at2(r, c));
        }
    }
    // And one batched launch is cheaper than two separate ones.
    CostContext cc;
    const Tick two = 2 * single.cost(km_, cc).total;
    const Tick one = batched.cost(km_, cc).total;
    EXPECT_LT(one, two);
}

TEST_F(OpsTest, SoftmaxRowsSumToOne)
{
    ctx_.rng = &rng_;
    SoftmaxOp sm(8, 16);
    Tensor x(Shape{8, 16}, DType::FP32);
    x.fillGaussian(rng_, 0.0f, 3.0f);
    const Tensor y = sm.run({x}, ctx_);
    for (std::int64_t r = 0; r < 8; ++r) {
        double sum = 0.0;
        for (std::int64_t c = 0; c < 16; ++c) {
            sum += y.at2(r, c);
            EXPECT_GE(y.at2(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0, 1e-3); // LUT exp is approximate
    }
}

TEST_F(OpsTest, BroadcastTilesRows)
{
    ctx_.rng = &rng_;
    BroadcastOp bc(Shape{2, 3}, 3);
    Tensor x(Shape{2, 3}, DType::FP32);
    x.fillGaussian(rng_);
    const Tensor y = bc.run({x}, ctx_);
    EXPECT_EQ(y.shape(), (Shape{6, 3}));
    EXPECT_FLOAT_EQ(y.at2(0, 1), y.at2(2, 1));
    EXPECT_FLOAT_EQ(y.at2(1, 2), y.at2(5, 2));
}

TEST_F(OpsTest, InteractionComputesPairwiseDots)
{
    ctx_.rng = &rng_;
    InteractionOp inter(2, 3, 4);
    Tensor x(Shape{2, 3, 4}, DType::FP32);
    x.fillGaussian(rng_);
    const Tensor y = inter.run({x}, ctx_);
    EXPECT_EQ(y.shape(), (Shape{2, 3}));
    // Pair (0, 1) of batch 0.
    double expect = 0.0;
    for (std::int64_t d = 0; d < 4; ++d)
        expect += static_cast<double>(x.at(0 * 12 + 0 * 4 + d)) *
            x.at(0 * 12 + 1 * 4 + d);
    EXPECT_NEAR(y.at2(0, 0), expect, 1e-4);
}

TEST_F(OpsTest, TbeOutputBoundedByPooling)
{
    ctx_.rng = &rng_;
    TbeTableSpec spec{.tables = 4,
                      .rows_per_table = 1024,
                      .dim = 8,
                      .dtype = DType::FP16,
                      .zipf_alpha = 0.9};
    TbeOp tbe(spec, 16, 10, false);
    const Tensor y = tbe.run({}, ctx_);
    EXPECT_EQ(y.shape(), (Shape{16, 32}));
    // Pooled sums of 10 rows with |value| <= 0.17 stay within 1.7.
    for (std::int64_t i = 0; i < y.numel(); ++i)
        EXPECT_LE(std::abs(y.at(i)), 1.7f);
}

TEST_F(OpsTest, TbeHitRateMatchesCacheScaling)
{
    TbeTableSpec spec{.tables = 16,
                      .rows_per_table = 1 << 20,
                      .dim = 64,
                      .dtype = DType::FP16,
                      .zipf_alpha = 0.9};
    TbeOp tbe(spec, 512, 32, false);
    const double small = tbe.expectedHitRate(16_MiB);
    const double large = tbe.expectedHitRate(128_MiB);
    EXPECT_LT(small, large);
    // Production regime: 40-60% hits with a sizeable LLC share.
    EXPECT_GT(large, 0.35);
    EXPECT_LT(large, 0.75);
}

TEST_F(OpsTest, WeightedTbeCostsMore)
{
    TbeTableSpec spec{.tables = 32,
                      .rows_per_table = 1 << 20,
                      .dim = 64,
                      .dtype = DType::FP16,
                      .zipf_alpha = 0.9};
    TbeOp unweighted(spec, 512, 32, false);
    TbeOp weighted(spec, 512, 32, true);
    CostContext cc;
    cc.tbe_hit_rate = 0.99; // make compute visible
    EXPECT_GE(weighted.cost(km_, cc).compute,
              unweighted.cost(km_, cc).compute);
}

TEST_F(OpsTest, MhaPreservesShapeAndIsFinite)
{
    ctx_.rng = &rng_;
    MhaOp mha(2, 4, 16, 2, DType::FP32);
    Tensor x(Shape{8, 16}, DType::FP32);
    x.fillGaussian(rng_);
    const Tensor y = mha.run({x}, ctx_);
    EXPECT_EQ(y.shape(), x.shape());
    EXPECT_FALSE(y.hasNonFinite());
}

TEST_F(OpsTest, MhaAcceptsFoldedView)
{
    ctx_.rng = &rng_;
    MhaOp mha(2, 4, 16, 2, DType::FP32);
    Tensor x(Shape{2, 64}, DType::FP32); // [B, S*D] view
    x.fillGaussian(rng_);
    const Tensor y = mha.run({x}, ctx_);
    EXPECT_EQ(y.shape(), x.shape());
}

TEST_F(OpsTest, MhaCustomTransposeIsCheaper)
{
    MhaOp naive(64, 16, 128, 4);
    MhaOp custom(64, 16, 128, 4);
    custom.useCustomTranspose(true);
    CostContext cc;
    EXPECT_LT(custom.cost(km_, cc).total, naive.cost(km_, cc).total);
}

TEST_F(OpsTest, RaggedAttentionShapePreservingAndCausalScale)
{
    ctx_.rng = &rng_;
    RaggedAttentionOp ra(2, 4.0, 8, 16, 2);
    Tensor x(Shape{2, 8, 16}, DType::FP32);
    x.fillGaussian(rng_);
    const Tensor y = ra.run({x}, ctx_);
    EXPECT_EQ(y.shape(), x.shape());
    EXPECT_FALSE(y.hasNonFinite());
}

TEST_F(OpsTest, RaggedCostScalesWithTrueHistoryNotPadding)
{
    // Two ops with the same padded maximum but different expected
    // history lengths: the ragged kernel's cost tracks the mean.
    RaggedAttentionOp short_hist(64, 32.0, 2048, 256, 4);
    RaggedAttentionOp long_hist(64, 512.0, 2048, 256, 4);
    CostContext cc;
    const Tick t_short = short_hist.cost(km_, cc).total;
    const Tick t_long = long_hist.cost(km_, cc).total;
    EXPECT_GT(t_long, 10 * t_short);
}

TEST_F(OpsTest, BiasGatherUsesLogBuckets)
{
    RaggedAttentionOp ra(1, 4.0, 8, 16, 2);
    // Distances inside one bucket share a bias value.
    EXPECT_FLOAT_EQ(ra.biasFor(0), ra.biasFor(0));
    // Far-apart distances generally differ.
    bool any_diff = false;
    for (std::int64_t d = 1; d < 1000; d *= 2)
        any_diff |= (ra.biasFor(d) != ra.biasFor(d * 512));
    EXPECT_TRUE(any_diff);
}

TEST_F(OpsTest, FusedTransposeFcMatchesUnfusedPipeline)
{
    ctx_.rng = &rng_;
    // Reference: transpose -> two FCs -> concat.
    Tensor x(Shape{6, 10}, DType::FP32);
    x.fillGaussian(rng_);

    FusedTransposeFcOp fused(Shape{6, 10}, {4, 8}, DType::FP32);
    const Tensor y = fused.run({x}, ctx_);
    EXPECT_EQ(y.shape(), (Shape{10, 12}));
    EXPECT_FALSE(y.hasNonFinite());
    // Cost: one launch instead of four.
    CostContext cc;
    const Tick fused_t = fused.cost(km_, cc).total;
    EXPECT_GT(fused_t, 0u);
}

} // namespace
} // namespace mtia
