// Positive fixture: layer-violation — module `a` is the bottom
// layer in graph/layers.def, so including upward into `b` is an
// inverted dependency. Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_A_LOW_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_A_LOW_H_

#include "b/high.h"

inline int
low()
{
    return high() - 1;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_A_LOW_H_
