// Part of the include-cycle fixture: completes the loop back into
// high.h. Same module, so this is a cycle, not a layer violation.
// Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_B_HELPER_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_B_HELPER_H_

#include "b/high.h"

inline int
helperValue()
{
    return 41;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_B_HELPER_H_
