// Part of the include-cycle fixture: high.h -> helper.h -> high.h.
// Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_B_HIGH_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_B_HIGH_H_

#include "b/helper.h"

inline int
high()
{
    return helperValue() + 1;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_BAD_B_HIGH_H_
