// Negative fixture: the upper layer reaching DOWN into `a` is the
// sanctioned direction. Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_OK_B_HIGH_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_OK_B_HIGH_H_

#include "a/low.h"

inline int
high()
{
    return low() + 2;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_OK_B_HIGH_H_
