// Negative fixture: the bottom layer includes nothing above it.
// Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_OK_A_LOW_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_OK_A_LOW_H_

inline int
low()
{
    return 40;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_OK_A_LOW_H_
