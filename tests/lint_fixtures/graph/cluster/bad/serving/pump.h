// Positive fixture: layer-violation — `serving` sits below `cluster`
// in cluster/layers.def (as in the real tools/mtia-lint/layers.def),
// so a serving header reaching up into the cluster layer is an
// inverted dependency mtia-lint must flag. Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_BAD_SERVING_PUMP_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_BAD_SERVING_PUMP_H_

#include "cluster/controller.h"

inline int
pump()
{
    return controllerEpoch() - 1;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_BAD_SERVING_PUMP_H_
