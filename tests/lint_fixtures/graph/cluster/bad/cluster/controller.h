// Target of the serving -> cluster inverted include. Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_BAD_CLUSTER_CONTROLLER_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_BAD_CLUSTER_CONTROLLER_H_

inline int
controllerEpoch()
{
    return 7;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_BAD_CLUSTER_CONTROLLER_H_
