// Negative fixture: the serving layer includes nothing above it.
// Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_OK_SERVING_PUMP_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_OK_SERVING_PUMP_H_

inline int
pump()
{
    return 6;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_OK_SERVING_PUMP_H_
