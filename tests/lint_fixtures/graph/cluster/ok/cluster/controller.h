// Negative fixture: the cluster layer reaching DOWN into serving is
// the sanctioned direction (cluster is the top rank in layers.def;
// every layer below it is fair game). Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_OK_CLUSTER_CONTROLLER_H_
#define MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_OK_CLUSTER_CONTROLLER_H_

#include "serving/pump.h"

inline int
controllerEpoch()
{
    return pump() + 1;
}

#endif // MTIA_TESTS_LINT_FIXTURES_GRAPH_CLUSTER_OK_CLUSTER_CONTROLLER_H_
