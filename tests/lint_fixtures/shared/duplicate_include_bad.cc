// Positive fixture: duplicate-include — the same header spelled
// twice in one translation unit. Never compiled.

#include <cstdint>
#include <vector>
#include <cstdint>

#include "some/header.h"
#include "other/header.h"
#include "some/header.h"

int
violations()
{
    return 0;
}
