// Negative fixture: wall-clock — time-like spellings that must stay
// clean in both linters. Never compiled.

#include <cstdint>

// Simulated time derives from EventQueue ticks, never the host clock.
std::uint64_t
toMicros(std::uint64_t ticks)
{
    return ticks / 1000;
}

struct RateLimiter
{
    // A member named time( takes an ordinary argument: not the libc
    // time(NULL) pattern.
    long time(long x) const { return x; }
};

long
fine(const RateLimiter &r)
{
    long v = r.time(0); // member call: qualified, exempt
    // A word-prefixed identifier must not match the clock() rule.
    const auto rate_clock = []() { return 7L; };
    v += rate_clock();
    // "clock()" and "time(NULL)" in a string literal stay invisible.
    const char *s = "wall: clock() time(NULL) gettimeofday(";
    // std::chrono::steady_clock in a comment is not a finding.
    return v + static_cast<long>(s[0]);
}
