// Positive fixture: telemetry-wall-clock — host time headers and
// std::chrono vocabulary in code linted as telemetry (the
// --treat-as-src mode applies the telemetry rule everywhere). Never
// compiled.

#include <ctime>
#include <time.h>

int
violations()
{
    // Durations, not just clocks: any std::chrono token is banned.
    auto budget = std::chrono::milliseconds(5);
    return static_cast<int>(budget.count());
}
