// Negative fixture: include-guard — a conforming guard. Never
// compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_SHARED_INCLUDE_GUARD_OK_H_
#define MTIA_TESTS_LINT_FIXTURES_SHARED_INCLUDE_GUARD_OK_H_

inline int
properGuard()
{
    return 3;
}

#endif // MTIA_TESTS_LINT_FIXTURES_SHARED_INCLUDE_GUARD_OK_H_
