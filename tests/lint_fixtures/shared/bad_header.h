// include-guard: this header has no #ifndef/#define guard.

namespace mtia {
inline int
answer()
{
    return 42;
}
} // namespace mtia
