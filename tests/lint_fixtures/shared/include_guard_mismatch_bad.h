// Positive fixture: include-guard — the #define does not match the
// #ifndef, so the guard is ineffective. Never compiled.
#ifndef MTIA_TESTS_LINT_FIXTURES_SHARED_MISMATCH_H_
#define MTIA_TESTS_LINT_FIXTURES_SHARED_WRONG_NAME_H_

inline int
mismatchedGuard()
{
    return 1;
}

#endif
