// Negative fixture: bare-allow — a justified suppression that also
// exercises the allow mechanism itself: the printf below would be a
// raw-output finding under --treat-as-src without it. Never
// compiled.

#include <cstdio>

void
fine()
{
    printf("ok\n"); // sim-lint: allow(raw-output) — fixture demonstrates a justified suppression
}
