// Deliberately broken file seeding the scalar-hot-loop rule: a
// per-element dtype conversion inside a loop, outside the kernel
// layer (src/tensor/dtype.*). Never compiled — the
// lint_fixture_detects_violations ctest asserts the linter flags it.

#include <cstdint>
#include <vector>

namespace mtia {

std::uint16_t fp32ToFp16Bits(float f);
float fp16BitsToFp32(std::uint16_t h);

float
scalarHotLoop(const std::vector<float> &src)
{
    float sum = 0.0f;
    // scalar-hot-loop: bulk conversion one element at a time; this
    // must go through convertBuffer so the batch kernels run.
    for (const float v : src)
        sum += fp16BitsToFp32(fp32ToFp16Bits(v));
    return sum;
}

} // namespace mtia
