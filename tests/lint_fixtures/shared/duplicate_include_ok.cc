// Negative fixture: duplicate-include — distinct headers that share
// a basename, and angle/quote spellings that are different include
// texts. Never compiled.

#include <cstdint>
#include "a/util.h"
#include "b/util.h"

int
fine()
{
    // #include <cstdint> repeated in a comment is not a directive.
    const char *s = "#include <cstdint>";
    return static_cast<int>(s[0]);
}
