// Positive fixture: wall-clock — host time sources in simulator
// code. Never compiled. Linted with --treat-as-src, so the
// telemetry-wall-clock rule fires on the same lines; both linters
// must report the identical set (lint_parity asserts it).

#include <chrono>
#include <sys/time.h>

long
violations()
{
    auto a = std::chrono::system_clock::now();
    auto b = std::chrono::steady_clock::now();
    auto c = std::chrono::high_resolution_clock::now();
    long t = time(nullptr);
    long u = clock();
    timeval tv;
    gettimeofday(&tv, nullptr);
    (void)a;
    (void)b;
    (void)c;
    return t + u + tv.tv_sec;
}
