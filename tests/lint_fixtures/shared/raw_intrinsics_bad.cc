// Positive fixture: raw-intrinsics — platform SIMD intrinsics called
// outside the kernel layer (src/core/simd*). Never compiled. Linted
// with --treat-as-src, so both linters must flag every call site.

void
badX86(float *p)
{
    auto v = _mm_loadu_ps(p);
    _mm_storeu_ps(p, _mm_add_ps(v, v));
    auto w = _mm256_loadu_ps(p);
    _mm256_storeu_ps(p, w);
}

void
badNeon(float *p, signed char *q)
{
    auto v = vld1q_f32(p);
    vst1q_f32(p, vaddq_f32(v, v));
    auto b = vld1q_s8(q);
    vst1q_s8(q, b);
}
