// Negative fixture: raw-intrinsics — intrinsic-shaped spellings that
// must stay clean in both linters. Never compiled.

struct Vec
{
    float lane(float x) const { return x; }
};

// Intrinsic-like names defined with an explicit qualifier: exempt.
float Vec::vaddq_f32(float x) const { return lane(x); }
float Vec::_mm_helper(float x) const { return lane(x); }

float
fine(const Vec &v, const float *data, int n)
{
    float acc = v.vaddq_f32(1.0f) + v._mm_helper(2.0f);
    // A v-prefixed name whose lane suffix is not terminal.
    const auto vscale_f32_apply = [](float x) { return x * 2.0f; };
    acc += vscale_f32_apply(acc);
    // A lane-typed identifier that is indexed, not called.
    for (int i = 0; i < n; ++i)
        acc += data[i];
    int lanes_f32[4] = {0, 1, 2, 3};
    acc += static_cast<float>(lanes_f32[0]);
    // "_mm_add_ps(" inside a string literal stays invisible.
    const char *doc = "wrapper over _mm_add_ps( and vld1q_f32(";
    return acc + static_cast<float>(doc[0]);
}
