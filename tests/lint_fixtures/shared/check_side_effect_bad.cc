// Positive fixture: check-side-effect — mutations inside CHECK
// macro conditions, which vanish in builds that compile the checks
// out. Never compiled.

#define MTIA_CHECK(x) (void)(x)
#define MTIA_DCHECK_EQ(a, b) (void)((a) == (b))

int
violations(int n, int m)
{
    MTIA_CHECK(n++ > 0);
    MTIA_CHECK(--m > 0);
    MTIA_DCHECK_EQ(n = m, 1);
    MTIA_CHECK(n
               ++ > 0); // reported at the MTIA_CHECK line by both tools
    return n + m;
}
