// Positive fixture: heap-top-copy — copying the top of an event
// queue instead of binding a reference (linted with --treat-as-src,
// which applies the sim-core rule). Never compiled.

struct Event
{
    long tick;
};

struct Heap
{
    const Event &top() const;
    void pop();
};

long
violations(Heap &heap_, Heap *queue)
{
    Event copied = heap_.top();
    auto by_ptr = queue->top();
    Event nested;
    nested = heap_.top();
    heap_.pop();
    return copied.tick + by_ptr.tick + nested.tick;
}
