// Negative fixture: check-side-effect — pure conditions and
// mutations outside the macro argument. Never compiled.

#define MTIA_CHECK(x) (void)(x)
#define MTIA_DCHECK_EQ(a, b) (void)((a) == (b))

int
fine(int n, int m)
{
    MTIA_CHECK(n > 0);
    MTIA_CHECK(n == m);
    MTIA_CHECK(n <= m && m != 0);
    n++; // the mutation happens outside the condition
    MTIA_DCHECK_EQ(n, m);
    // MTIA_CHECK(n++) in a comment is not a finding.
    const char *s = "MTIA_CHECK(n++)";
    return n + m + static_cast<int>(s[0]);
}
