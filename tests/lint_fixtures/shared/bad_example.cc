// Deliberately broken file exercising every check_sim_invariants.py
// rule. It is never compiled — the `lint_fixture_detects_violations`
// ctest runs the linter over this directory and asserts a non-zero
// exit. If you add a linter rule, seed a violation of it here.

// telemetry-wall-clock: time-source includes (the fixture is linted
// with --treat-as-src, which also applies the src/telemetry/ rule).
#include <chrono>
#include <cstdio>
#include <ctime>
#include <random>

// duplicate-include: the same header pulled in twice.
#include <cstdio>

namespace mtia {

int
violations()
{
    // wall-clock: host time in simulator code.
    auto t0 = std::chrono::system_clock::now();
    (void)t0;

    // unseeded-rng: global C PRNG and default-constructed engines.
    int r = rand();
    std::random_device rd;
    std::mt19937 gen;

    // raw-output: console output outside sim/logging.
    printf("%d\n", r);

    // heap-top-copy: copying a priority-queue top before pop
    // deep-copies the entry's callback on every dispatch.
    struct FakeHeap
    {
        int top() const { return 0; }
        void pop() {}
    } heap_;
    int copied = heap_.top();
    heap_.pop();
    (void)copied;

    // check-side-effect: mutation inside a check condition.
    int n = static_cast<int>(rd()) + static_cast<int>(gen());
#define MTIA_CHECK(x) (void)(x)
    MTIA_CHECK(n++ > 0);
#undef MTIA_CHECK
    return n;
}

} // namespace mtia
