// Negative fixture: scalar-hot-loop — per-element dtype accessors
// used outside loops, and bulk conversion inside loops. Never
// compiled.

#include <cstdint>

std::uint16_t fp32ToFp16Bits(float f);
float fp16BitsToFp32(std::uint16_t bits);
void convertBufferFp32ToFp16(const float *src, std::uint16_t *dst,
                             int n);

// A single round-trip far from any loop is fine.
float
roundTrip(float f)
{
    return fp16BitsToFp32(fp32ToFp16Bits(f));
}

// The sanctioned pattern: one bulk call, then a loop that does no
// per-element conversion.
void
bulk(const float *src, std::uint16_t *dst, int n)
{
    convertBufferFp32ToFp16(src, dst, n);
    for (int i = 0; i < n; ++i)
        dst[i] ^= 1;
}
