// Positive fixture: raw-output — direct console output (linted with
// --treat-as-src, which applies the src/-only rule). Never compiled.

#include <cstdio>
#include <iostream>

void
violations(int n)
{
    printf("%d\n", n);
    fprintf(stdout, "%d\n", n);
    std::cout << n;
    std::cerr << n;
    puts("done");
}
