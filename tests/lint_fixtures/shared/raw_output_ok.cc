// Negative fixture: raw-output — output spellings that must stay
// clean even under --treat-as-src. Never compiled.

#include <cstdio>

void
fine(int n, char *buf, unsigned long cap)
{
    fprintf(stderr, "%d\n", n); // stderr is not the flagged stream
    snprintf(buf, cap, "%d", n); // word-prefixed identifier
    const auto my_printf = [](const char *) { return 0; };
    my_printf("x");
    // printf("%d") and std::cout << x in a comment are invisible.
    const char *s = "printf(\"%d\") std::cout << std::cerr";
    // A multi-line raw string: the per-line stripper used to leak
    // its interior lines into the rule regexes.
    const char *doc = R"doc(
        printf("%d\n", n);
        std::cout << n;
        puts("inside a raw string");
    )doc";
    (void)s;
    (void)doc;
}
/* A multi-line block comment is equally invisible:
   printf("%d\n", 1);
   std::cout << 2;
*/
