// Negative fixture: telemetry-wall-clock — tick-derived timestamps
// and time-like spellings that stay clean. Never compiled.

#include <cstdint>

// Telemetry timestamps derive from the simulated tick counter.
std::uint64_t
exportTimestamp(std::uint64_t tick, std::uint64_t ps_per_tick)
{
    return tick * ps_per_tick;
}

int
fine()
{
    // #include <chrono> inside a string literal is invisible.
    const char *s = "#include <chrono> std::chrono::seconds";
    // std::chrono::steady_clock in a comment is not a finding.
    return static_cast<int>(s[0]);
}
