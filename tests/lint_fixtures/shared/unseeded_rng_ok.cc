// Negative fixture: unseeded-rng — explicitly seeded engines and
// rand-like spellings that must stay clean. Never compiled.

#include <random>

// (Fixtures are linted, never compiled: Sampler's rand() member is
// left undeclared because the declaration itself would spell an
// unqualified `rand(`.)
struct Sampler
{
};

int
fine(unsigned seed, const Sampler &s)
{
    std::mt19937 gen(seed);      // explicitly seeded: allowed
    std::mt19937_64 gen64{seed}; // explicitly seeded: allowed
    int v = s.rand();            // member call: qualified, exempt
    const auto brand = [](int x) { return x + 1; };
    v += brand(3); // word-prefixed identifier, not rand(
    // rand() and srand() in a comment are not findings.
    const char *t = "rand() srand(7) std::random_device";
    return v + static_cast<int>(gen()) + static_cast<int>(gen64()) +
           static_cast<int>(t[0]);
}
