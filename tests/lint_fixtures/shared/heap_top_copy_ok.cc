// Negative fixture: heap-top-copy — reference binds against the
// heap top, the sanctioned pattern. Never compiled.

struct Event
{
    long tick;
};

struct Heap
{
    const Event &top() const;
    Event &top();
    void pop();
};

long
fine(Heap &heap_)
{
    const Event &e = heap_.top(); // const-ref bind: exempt
    Event &mut = heap_.top();     // ref bind: exempt
    long tick = e.tick;           // copying a field is fine
    mut.tick += 1;
    heap_.pop();
    // copied = heap_.top() in a comment is not a finding.
    const char *s = "= heap_.top()";
    return tick + static_cast<long>(s[0]);
}
