// Positive fixture: unseeded-rng — global or default-seeded
// randomness. Never compiled.

#include <cstdlib>
#include <random>

int
violations()
{
    int a = rand();
    srand(42);
    std::random_device rd;
    std::mt19937 gen;
    std::mt19937_64 gen64{};
    return a + static_cast<int>(rd()) + static_cast<int>(gen()) +
           static_cast<int>(gen64());
}
