// Positive fixture: bare-allow — a suppression comment with no
// trailing justification. Never compiled.

int
violations()
{
    return 0; // sim-lint: allow(raw-output)
}
