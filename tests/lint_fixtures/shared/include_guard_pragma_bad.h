// Positive fixture: include-guard — #pragma once instead of the
// project-standard #ifndef guard. Never compiled.
#pragma once

inline int
pragmaGuard()
{
    return 2;
}
