// Negative fixture: unordered-iteration — point lookups into
// unordered containers are deterministic and stay clean; iterating
// an ordered std::map is fine. Never compiled.

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

double
fine(const std::unordered_map<int, double> &weights,
     const std::map<int, double> &ordered)
{
    double sum = 0.0;
    for (const auto &kv : ordered) // std::map: deterministic order
        sum += kv.second;
    auto it = weights.find(3); // lookups are fine
    if (it != weights.end())   // .end() alone is the find idiom
        sum += it->second;
    if (weights.count(4) != 0)
        sum += 1.0;
    // The sorted-snapshot idiom: copy keys out, sort, then iterate.
    std::vector<int> keys;
    keys.reserve(weights.size());
    for (const auto &kv : ordered)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end()); // vector .begin() is fine
    for (int k : keys)
        sum += static_cast<double>(k);
    return sum;
}
