// Positive fixture: pointer-key-ordered — std::map/std::set keyed
// by raw pointer with the default std::less, whose order is the
// allocation order of the heap and differs run to run. Only
// mtia-lint carries this rule. Never compiled.

#include <map>
#include <set>

struct Node;

int
violations(Node *a, const Node *b)
{
    std::map<Node *, int> order;
    std::set<const Node *> seen;
    order[a] = 1;
    seen.insert(b);
    return order.size() + seen.size();
}
