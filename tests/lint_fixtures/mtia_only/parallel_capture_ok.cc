// Negative fixture: parallel-capture — the sanctioned idiom: each
// worker writes only its own index slot, and the reduction happens
// after the join in index order. Never compiled.

#include <cstddef>
#include <vector>

namespace mtia
{
template <typename Fn>
void parallelFor(std::size_t n, Fn fn);
}

std::vector<double>
fine(std::size_t n, const std::vector<double> &in)
{
    std::vector<double> out(n);
    mtia::parallelFor(n, [&](std::size_t i) {
        double local = in[i] * 2.0; // lambda-local state is fine
        local += 1.0;
        out[i] = local; // indexed slot write: the idiom
    });
    // Deterministic reduction after the join, in index order.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += out[i];
    out[0] = total;
    return out;
}
