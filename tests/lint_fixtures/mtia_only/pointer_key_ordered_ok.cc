// Negative fixture: pointer-key-ordered — stable-id keys, pointer
// VALUES, and pointer keys under an explicit deterministic
// comparator all stay clean. Never compiled.

#include <cstdint>
#include <map>
#include <set>

struct Node
{
    std::uint32_t id;
};

struct ById
{
    bool operator()(const Node *x, const Node *y) const
    {
        return x->id < y->id;
    }
};

int
fine(Node *a, std::uint64_t key)
{
    std::map<std::uint64_t, int> by_id;    // stable-id key: fine
    std::set<Node *, ById> with_cmp;       // explicit comparator
    std::map<int, Node *> ptr_values;      // pointer values: fine
    by_id[key] = 1;
    with_cmp.insert(a);
    ptr_values[2] = a;
    return by_id.size() + with_cmp.size() + ptr_values.size();
}
