// Positive fixture: unordered-iteration — iterating an unordered
// container, whose visit order depends on hashing and load factor
// and therefore varies across libc++/libstdc++ and across runs with
// pointer-derived keys. Only mtia-lint carries this rule (the Python
// linter has no token-level view). Never compiled.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

double
violations(const std::unordered_map<int, double> &weights,
           std::unordered_set<std::uint64_t> &seen)
{
    double sum = 0.0;
    for (const auto &kv : weights) // range-for over unordered_map
        sum += kv.second;
    for (auto it = seen.begin(); it != seen.end(); ++it) // .begin()
        sum += 1.0;
    return sum;
}
