// Positive fixture: parallel-capture — parallelFor/parallelMap
// lambdas mutating shared state captured by reference. The worker
// interleaving is nondeterministic, so these races also break
// replay determinism. Only mtia-lint carries this rule. Never
// compiled.

#include <cstddef>
#include <vector>

namespace mtia
{
template <typename Fn>
void parallelFor(std::size_t n, Fn fn);
}

double
violations(std::size_t n)
{
    double sum = 0.0;
    std::vector<double> trace;
    mtia::parallelFor(n, [&](std::size_t i) {
        sum += static_cast<double>(i); // racy compound assign
        trace.push_back(sum);          // racy container mutation
    });
    long counter = 0;
    mtia::parallelFor(n, [&counter](std::size_t i) {
        if (i % 2 == 0)
            ++counter; // racy increment through explicit ref capture
    });
    return sum + static_cast<double>(counter);
}
