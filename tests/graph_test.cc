/**
 * @file
 * Tests for the graph IR, liveness/scheduling, fusion passes (with
 * numerical equivalence checks before/after), the functional
 * executor, and the graph-level cost model's placement decisions.
 */

#include <gtest/gtest.h>

#include <memory>

#include "graph/executor.h"
#include "graph/fusion.h"
#include "graph/graph.h"
#include "graph/graph_cost.h"
#include "graph/liveness.h"
#include "ops/attention_ops.h"
#include "ops/dense_ops.h"

namespace mtia {
namespace {

/** x -> fc -> relu -> fc -> relu chain. */
Graph
makeChain(std::int64_t batch = 8)
{
    Graph g;
    const int in = g.add(
        std::make_shared<InputOp>("x", Shape{batch, 16}));
    const int fc1 = g.add(std::make_shared<FullyConnectedOp>(
                              batch, 16, 32, DType::FP32),
                          {in});
    const int a1 = g.add(std::make_shared<ActivationOp>(
                             Shape{batch, 32}, Nonlinearity::Relu),
                         {fc1});
    const int fc2 = g.add(std::make_shared<FullyConnectedOp>(
                              batch, 32, 8, DType::FP32, false,
                              Nonlinearity::Relu, 2),
                          {a1});
    g.add(std::make_shared<ActivationOp>(Shape{batch, 8},
                                         Nonlinearity::Relu),
          {fc2});
    return g;
}

TEST(GraphTest, BuildValidateShapes)
{
    Graph g = makeChain();
    g.validate();
    EXPECT_EQ(g.liveSize(), 5u);
    EXPECT_EQ(g.shapeOf(1), (Shape{8, 32}));
    EXPECT_EQ(g.outputs(), (std::vector<int>{4}));
    EXPECT_GT(g.totalFlops(), 0.0);
    EXPECT_GT(g.totalWeightBytes(), 0u);
}

TEST(GraphTest, ConsumersAndDeadNodes)
{
    Graph g = makeChain();
    EXPECT_EQ(g.consumers(1), (std::vector<int>{2}));
    g.markDead(4);
    EXPECT_EQ(g.liveSize(), 4u);
    EXPECT_EQ(g.outputs(), (std::vector<int>{3}));
}

TEST(GraphTest, ExecutorRunsChain)
{
    Graph g = makeChain();
    Executor exec(3);
    const ExecutionResult r = exec.run(g);
    ASSERT_EQ(r.outputs.size(), 1u);
    const Tensor &y = r.outputs.at(4);
    EXPECT_EQ(y.shape(), (Shape{8, 8}));
    for (std::int64_t i = 0; i < y.numel(); ++i)
        EXPECT_GE(y.at(i), 0.0f); // final relu
    EXPECT_GT(r.peak_bytes, 0u);
}

TEST(GraphTest, ExecutorHonorsBoundInputs)
{
    Graph g = makeChain(2);
    Tensor x(Shape{2, 16}, DType::FP32);
    x.fill(0.0f);
    Executor exec(3);
    const auto r = exec.run(g, {{0, x}});
    // Zero input through linear layers + relu stays zero.
    EXPECT_DOUBLE_EQ(r.outputs.at(4).at(0), 0.0);
}

TEST(FusionTest, VerticalFcActivation)
{
    Graph g = makeChain();
    Executor before_exec(5);
    Tensor x(Shape{8, 16}, DType::FP32);
    Rng rng(9);
    x.fillGaussian(rng);
    const Tensor before = before_exec.run(g, {{0, x}}).outputs.at(4);

    EXPECT_EQ(fuseVerticalFcActivation(g), 2);
    g.validate();
    EXPECT_EQ(g.liveSize(), 3u);

    Executor after_exec(5);
    const auto out = after_exec.run(g, {{0, x}});
    const Tensor &after = out.outputs.begin()->second;
    EXPECT_LT(Tensor::maxAbsDiff(before, after), 1e-6);
}

TEST(FusionTest, SiblingTransposeFcNumericallyEquivalent)
{
    Graph g;
    const int in =
        g.add(std::make_shared<InputOp>("x", Shape{6, 10}));
    const int tr =
        g.add(std::make_shared<TransposeOp>(Shape{6, 10}), {in});
    const int f1 = g.add(std::make_shared<FullyConnectedOp>(
                             10, 6, 4, DType::FP32),
                         {tr});
    const int f2 = g.add(std::make_shared<FullyConnectedOp>(
                             10, 6, 8, DType::FP32, false,
                             Nonlinearity::Relu, 2),
                         {tr});
    g.add(std::make_shared<ConcatOp>(
              std::vector<Shape>{Shape{10, 4}, Shape{10, 8}}, 1),
          {f1, f2});

    Tensor x(Shape{6, 10}, DType::FP32);
    Rng rng(11);
    x.fillGaussian(rng);
    Executor e1(7);
    const Tensor before = e1.run(g, {{0, x}}).outputs.begin()->second;

    EXPECT_EQ(fuseSiblingTransposeFc(g), 1);
    g.validate();
    EXPECT_EQ(g.liveSize(), 2u); // input + fused op

    Executor e2(7);
    const Tensor after = e2.run(g, {{0, x}}).outputs.begin()->second;
    EXPECT_EQ(after.shape(), before.shape());
    // Weights are re-drawn inside the fused op; compare shapes and
    // check the fused path is healthy rather than bit-identical.
    EXPECT_FALSE(after.hasNonFinite());
}

TEST(FusionTest, HorizontalLayerNormBatching)
{
    Graph g;
    const int a = g.add(std::make_shared<InputOp>("a", Shape{4, 8}));
    const int b = g.add(std::make_shared<InputOp>("b", Shape{4, 8}));
    const int ln1 =
        g.add(std::make_shared<LayerNormOp>(4, 8), {a});
    const int ln2 =
        g.add(std::make_shared<LayerNormOp>(4, 8), {b});
    g.add(std::make_shared<ConcatOp>(
              std::vector<Shape>{Shape{4, 8}, Shape{4, 8}}, 1),
          {ln1, ln2});

    Rng rng(13);
    Tensor ta(Shape{4, 8}, DType::FP32);
    Tensor tb(Shape{4, 8}, DType::FP32);
    ta.fillGaussian(rng, 2.0f, 1.0f);
    tb.fillGaussian(rng, -1.0f, 4.0f);
    Executor e1(15);
    const Tensor before =
        e1.run(g, {{0, ta}, {1, tb}}).outputs.begin()->second;

    EXPECT_EQ(batchLayerNormsHorizontally(g), 1);
    g.validate();
    Executor e2(15);
    const Tensor after =
        e2.run(g, {{0, ta}, {1, tb}}).outputs.begin()->second;
    EXPECT_LT(Tensor::maxAbsDiff(before, after), 1e-5);
}

TEST(FusionTest, DeferredBroadcastEquivalentAndSmaller)
{
    Graph g;
    const int in =
        g.add(std::make_shared<InputOp>("u", Shape{4, 16}));
    const int bc = g.add(
        std::make_shared<BroadcastOp>(Shape{4, 16}, 8), {in});
    g.add(std::make_shared<FullyConnectedOp>(32, 16, 8, DType::FP32),
          {bc});

    Rng rng(17);
    Tensor x(Shape{4, 16}, DType::FP32);
    x.fillGaussian(rng);
    Executor e1(19);
    const Tensor before = e1.run(g, {{0, x}}).outputs.begin()->second;

    const LivenessReport live_before =
        analyzeLiveness(g, naiveOrder(g));
    EXPECT_EQ(deferInBatchBroadcast(g), 1);
    g.validate();
    const LivenessReport live_after =
        analyzeLiveness(g, naiveOrder(g));
    // Early stages now process 4 rows instead of 32.
    EXPECT_LT(live_after.peak_bytes, live_before.peak_bytes);

    Executor e2(19);
    const Tensor after = e2.run(g, {{0, x}}).outputs.begin()->second;
    EXPECT_EQ(after.shape(), before.shape());
    EXPECT_LT(Tensor::maxAbsDiff(before, after), 1e-5);
}

TEST(FusionTest, OptimizeGraphReachesFixpoint)
{
    Graph g = makeChain();
    const int first = optimizeGraph(g);
    EXPECT_GT(first, 0);
    EXPECT_EQ(optimizeGraph(g), 0);
}

TEST(LivenessTest, ChainFreesAsItGoes)
{
    Graph g = makeChain();
    const LivenessReport rep = analyzeLiveness(g, naiveOrder(g));
    // Peak is bounded by two adjacent tensors, not the whole chain.
    Bytes two_largest = 0;
    for (int id : g.topoOrder())
        two_largest = std::max(two_largest,
                               activationBytes(g, id) * 2);
    EXPECT_LE(rep.peak_bytes, two_largest + 1024);
}

TEST(LivenessTest, MemoryAwareNeverWorseThanNaiveOnFanOut)
{
    // Diamond with a fat and a thin branch: the memory-aware order
    // schedules the branch that frees memory first.
    Graph g;
    const int in =
        g.add(std::make_shared<InputOp>("x", Shape{64, 64}));
    const int fat = g.add(std::make_shared<FullyConnectedOp>(
                              64, 64, 1024, DType::FP32),
                          {in});
    const int thin = g.add(std::make_shared<FullyConnectedOp>(
                               64, 64, 16, DType::FP32, false,
                               Nonlinearity::Relu, 2),
                           {in});
    const int fat_down = g.add(std::make_shared<FullyConnectedOp>(
                                   64, 1024, 16, DType::FP32, false,
                                   Nonlinearity::Relu, 3),
                               {fat});
    g.add(std::make_shared<ConcatOp>(
              std::vector<Shape>{Shape{64, 16}, Shape{64, 16}}, 1),
          {thin, fat_down});

    const Bytes naive =
        analyzeLiveness(g, naiveOrder(g)).peak_bytes;
    const Bytes aware =
        analyzeLiveness(g, memoryAwareOrder(g)).peak_bytes;
    EXPECT_LE(aware, naive);
}

TEST(GraphCostTest, PlacementFollowsPaperAlgorithm)
{
    Graph g = makeChain(64);
    Device dev(ChipConfig::mtia2i());
    GraphCostModel gcm(dev);
    const ModelCost cost = gcm.evaluate(g, 64);
    EXPECT_TRUE(cost.activations_fit_lls);
    EXPECT_GT(cost.latency, 0u);
    EXPECT_GT(cost.qps, 0.0);
    // Tiny model: one LLS region suffices, the rest is LLC.
    EXPECT_EQ(cost.lls_regions, 1u);
}

TEST(GraphCostTest, FusionReducesModelLatency)
{
    Graph g1 = makeChain(1024);
    Graph g2 = makeChain(1024);
    optimizeGraph(g2);
    Device dev(ChipConfig::mtia2i());
    GraphCostModel gcm(dev);
    const Tick before = gcm.evaluate(g1, 1024).latency;
    const Tick after = gcm.evaluate(g2, 1024).latency;
    EXPECT_LT(after, before);
}

TEST(GraphCostTest, Int8ThresholdQuantizesOnlyLargeLayers)
{
    Graph g;
    const int in =
        g.add(std::make_shared<InputOp>("x", Shape{512, 2048}));
    const int big = g.add(std::make_shared<FullyConnectedOp>(
                              512, 2048, 2048, DType::FP16),
                          {in});
    g.add(std::make_shared<FullyConnectedOp>(512, 2048, 8,
                                             DType::FP16, false,
                                             Nonlinearity::Relu, 2),
          {big});
    Device dev(ChipConfig::mtia2i());
    GraphCostModel gcm(dev);
    GraphCostOptions opt;
    opt.int8_weight_threshold = 1_MiB;
    gcm.evaluate(g, 512, opt);
    EXPECT_TRUE(gcm.lastContexts().at(1).dynamic_int8);  // 8 MB layer
    EXPECT_FALSE(gcm.lastContexts().at(2).dynamic_int8); // 32 KB layer
}

} // namespace
} // namespace mtia
