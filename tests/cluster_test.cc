/**
 * @file
 * Tests for the cluster serving layer: trace sharding, routing
 * policies, the deadline-aware dynamic batcher, controller health
 * transitions, chaos timelines, and the end-to-end cluster simulator
 * — including the chaos determinism bar (byte-identical summaries at
 * MTIA_THREADS 1 vs 8 and across same-seed runs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/cluster_sim.h"
#include "cluster/cluster_trace.h"
#include "cluster/controller.h"
#include "cluster/dynamic_batcher.h"
#include "cluster/routing.h"
#include "core/parallel.h"
#include "sim/event_queue.h"

namespace mtia {
namespace {

ClusterTraceParams
smallTraceParams(double qps, double seconds)
{
    ClusterTraceParams p;
    p.traffic.qps = qps;
    p.traffic.duration = fromSeconds(seconds);
    p.traffic.candidates_mean = 64;
    p.users = 100'000;
    p.embedding_shards = 8;
    return p;
}

TEST(ClusterTraceTest, DeterministicAndShardSkewed)
{
    const auto params = smallTraceParams(2000.0, 2.0);
    Rng rng_a(7);
    Rng rng_b(7);
    const auto a = generateClusterTrace(rng_a, params);
    const auto b = generateClusterTrace(rng_b, params);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].user, b[i].user);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].home_shard, b[i].home_shard);
        EXPECT_LT(a[i].home_shard, params.embedding_shards);
        EXPECT_LT(a[i].user, params.users);
    }

    // Range-partitioned Zipf users: the head lands on shard 0, so the
    // trace itself is skewed before any routing happens.
    const auto rows = shardRowLoad(a, params.embedding_shards);
    ASSERT_EQ(rows.size(), params.embedding_shards);
    const auto hottest =
        std::max_element(rows.begin(), rows.end()) - rows.begin();
    EXPECT_EQ(hottest, 0);
    EXPECT_GT(shardSkew(rows), 1.5);
}

TEST(RoutingTest, LeastLoadedPicksLightestAndBreaksTiesLow)
{
    LeastLoadedPolicy policy;
    ClusterRequest req;
    std::vector<ReplicaLoadView> view(4);
    view[0].outstanding_rows = 10;
    view[1].outstanding_rows = 3;
    view[2].outstanding_rows = 3;
    view[3].outstanding_rows = 7;
    EXPECT_EQ(policy.route(req, view), 1u); // tie 1 vs 2 -> lowest
    view[1].routable = false;
    EXPECT_EQ(policy.route(req, view), 2u);
}

TEST(RoutingTest, ShardHashIsStickyAndRemapsMinimally)
{
    const unsigned replicas = 4;
    ShardHashPolicy policy(replicas);
    std::vector<ReplicaLoadView> view(replicas);

    // Same shard always lands on the same replica.
    std::vector<unsigned> owner(16);
    std::set<unsigned> used;
    for (unsigned s = 0; s < 16; ++s) {
        ClusterRequest req;
        req.home_shard = s;
        owner[s] = policy.route(req, view);
        EXPECT_EQ(policy.route(req, view), owner[s]);
        used.insert(owner[s]);
    }
    EXPECT_GT(used.size(), 1u); // vnodes spread shards around

    // Killing one replica only remaps the shards it owned.
    const unsigned dead = owner[0];
    view[dead].routable = false;
    for (unsigned s = 0; s < 16; ++s) {
        ClusterRequest req;
        req.home_shard = s;
        const unsigned now_on = policy.route(req, view);
        EXPECT_NE(now_on, dead);
        if (owner[s] != dead) {
            EXPECT_EQ(now_on, owner[s]);
        }
    }
}

TEST(DynamicBatcherTest, ClosesFullDeadlineAndWindow)
{
    EventQueue eq;
    BatcherConfig cfg;
    cfg.capacity = 100;
    cfg.window = fromMillis(2.0);
    cfg.slo = fromMillis(50.0);
    cfg.close_slack = fromMillis(5.0);
    std::vector<ClusterBatch> dispatched;
    DynamicBatcher batcher(eq, cfg, [&](ClusterBatch &&b) {
        dispatched.push_back(std::move(b));
    });

    // Full: two 50-row requests hit capacity exactly and dispatch
    // synchronously inside the second add().
    ClusterRequest r;
    r.candidates = 50;
    eq.schedule(fromMillis(1.0), [&]() {
        batcher.add(r);
        batcher.add(r);
    });
    // Window: a lone small request with slack to spare waits out the
    // full window.
    ClusterRequest small;
    small.candidates = 5;
    small.arrival = fromMillis(10.0);
    eq.schedule(small.arrival, [&]() { batcher.add(small); });
    // Deadline: a request that already waited most of its SLO budget
    // upstream closes the batch well before the window expires.
    ClusterRequest old_req;
    old_req.candidates = 5;
    old_req.arrival = fromMillis(20.0);
    eq.schedule(fromMillis(66.0), [&]() { batcher.add(old_req); });
    eq.run();

    ASSERT_EQ(dispatched.size(), 3u);
    EXPECT_EQ(dispatched[0].reason, BatchClose::Full);
    EXPECT_EQ(dispatched[0].dispatch_time, fromMillis(1.0));
    EXPECT_EQ(dispatched[1].reason, BatchClose::Window);
    EXPECT_EQ(dispatched[1].dispatch_time,
              small.arrival + cfg.window);
    EXPECT_EQ(dispatched[2].reason, BatchClose::Deadline);
    // Slack at add time: (20 + 50) - 66 = 4 ms, already inside
    // close_slack + service estimate -> closes immediately.
    EXPECT_EQ(dispatched[2].dispatch_time, fromMillis(66.0));
    EXPECT_EQ(batcher.stats().batches, 3u);
    EXPECT_EQ(batcher.stats().closed_full, 1u);
    EXPECT_EQ(batcher.stats().closed_window, 1u);
    EXPECT_EQ(batcher.stats().closed_deadline, 1u);
    EXPECT_EQ(batcher.stats().requests, 4u);
}

TEST(RoutingTest, ShardHashWrapsPastLastVnodeToSoleSurvivor)
{
    // Regression guard for the ring wrap-around: keys hashing past the
    // last vnode must wrap to position 0 (that is the normal clockwise
    // step, not a miss), and the failover walk must be able to reach
    // EVERY vnode — including the ring's first — when all but one
    // replica are Down. A wrap bug here either drops routable keys or
    // never terminates; with thousands of keys some are guaranteed to
    // hash into the wrap gap above the highest vnode.
    const unsigned replicas = 4;
    ShardHashPolicy policy(replicas);
    for (unsigned survivor = 0; survivor < replicas; ++survivor) {
        std::vector<ReplicaLoadView> view(replicas);
        for (unsigned r = 0; r < replicas; ++r)
            view[r].routable = (r == survivor);
        for (unsigned s = 0; s < 10000; ++s) {
            ClusterRequest req;
            req.home_shard = s;
            ASSERT_EQ(policy.route(req, view), survivor)
                << "shard " << s << " missed survivor " << survivor;
        }
    }
}

TEST(DynamicBatcherTest, FailoverReroutedOldRequestTightensDeadline)
{
    // Regression: the deadline close used requests.front().arrival as
    // the batch's oldest member. After a failover re-route, an OLD
    // request (original arrival preserved) joins a YOUNGER open batch
    // as a later member, so front() understated the deadline pressure
    // and the old request could blow its SLO budget while the batch
    // idled toward the window close.
    EventQueue eq;
    BatcherConfig cfg;
    cfg.capacity = 1000;
    cfg.window = fromMillis(100.0); // window close out of the picture
    cfg.slo = fromMillis(50.0);
    cfg.close_slack = fromMillis(5.0);
    std::vector<ClusterBatch> dispatched;
    DynamicBatcher batcher(eq, cfg, [&](ClusterBatch &&b) {
        dispatched.push_back(std::move(b));
    });

    ClusterRequest young;
    young.candidates = 5;
    young.arrival = fromMillis(100.0);
    eq.schedule(young.arrival, [&]() { batcher.add(young); });

    // Re-routed survivor of a dead replica: admitted at 101 ms but
    // carrying its original 60 ms arrival, with 9 ms of SLO left.
    ClusterRequest old_req;
    old_req.candidates = 5;
    old_req.arrival = fromMillis(60.0);
    eq.schedule(fromMillis(101.0), [&]() { batcher.add(old_req); });
    eq.run();

    ASSERT_EQ(dispatched.size(), 1u);
    EXPECT_EQ(dispatched[0].reason, BatchClose::Deadline);
    EXPECT_EQ(dispatched[0].oldest_arrival, old_req.arrival);
    // The close keys off the OLDEST member: arrival + slo minus the
    // service estimate and slack — ~104 ms, not ~144 ms (front()) and
    // not 200 ms (window).
    const Tick estimated = cfg.service_base + cfg.service_per_row * 10;
    EXPECT_EQ(dispatched[0].dispatch_time,
              old_req.arrival + cfg.slo - estimated - cfg.close_slack);
    EXPECT_LT(dispatched[0].dispatch_time, old_req.arrival + cfg.slo);
}

TEST(DynamicBatcherTest, DrainEmptiesWithoutDispatch)
{
    EventQueue eq;
    BatcherConfig cfg;
    std::uint64_t dispatches = 0;
    DynamicBatcher batcher(eq, cfg,
                           [&](ClusterBatch &&) { ++dispatches; });
    ClusterRequest r;
    r.candidates = 8;
    eq.schedule(fromMillis(1.0), [&]() {
        batcher.add(r);
        batcher.add(r);
        const auto drained = batcher.drain();
        EXPECT_EQ(drained.size(), 2u);
        EXPECT_FALSE(batcher.hasOpenBatch());
        EXPECT_EQ(batcher.pendingRows(), 0);
    });
    eq.run(); // the stale close timer must not fire a dispatch
    EXPECT_EQ(dispatches, 0u);
}

TEST(ControllerTest, HealthTransitionsAndFailoverRecord)
{
    HealthConfig cfg;
    cfg.heartbeat_interval = fromMillis(5.0);
    cfg.miss_threshold = 3;
    ClusterController ctl(
        2, cfg, makeRoutingPolicy(RoutingPolicyKind::LeastLoaded, 2));

    // Both ack at 5 ms; replica 1 then goes silent.
    ctl.heartbeat(0, fromMillis(5.0));
    ctl.heartbeat(1, fromMillis(5.0));
    ctl.noteDeath(1, fromMillis(6.0));

    ctl.heartbeat(0, fromMillis(10.0));
    EXPECT_TRUE(ctl.checkHealth(fromMillis(12.5)).empty());
    EXPECT_EQ(ctl.health(1), ReplicaHealth::Suspect);

    ctl.heartbeat(0, fromMillis(15.0));
    ctl.heartbeat(0, fromMillis(20.0));
    const auto down = ctl.checkHealth(fromMillis(22.5));
    ASSERT_EQ(down.size(), 1u);
    EXPECT_EQ(down[0], 1u);
    EXPECT_EQ(ctl.health(1), ReplicaHealth::Down);
    EXPECT_TRUE(ctl.anyRoutable());

    // Down replicas never route; restart completes the record.
    ClusterRequest req;
    EXPECT_EQ(ctl.route(req, {0, 0}), 0u);
    ctl.markWarmingUp(1, fromMillis(200.0));
    EXPECT_EQ(ctl.health(1), ReplicaHealth::WarmingUp);
    ctl.markHealthy(1, fromMillis(300.0));
    EXPECT_EQ(ctl.health(1), ReplicaHealth::Healthy);

    ASSERT_EQ(ctl.failovers().size(), 1u);
    const FailoverRecord &rec = ctl.failovers()[0];
    EXPECT_EQ(rec.replica, 1u);
    EXPECT_EQ(rec.died, fromMillis(6.0));
    EXPECT_EQ(rec.detected, fromMillis(22.5));
    EXPECT_EQ(rec.restored, fromMillis(300.0));
}

TEST(ControllerTest, SuspectRecoversOnAck)
{
    HealthConfig cfg;
    cfg.heartbeat_interval = fromMillis(5.0);
    ClusterController ctl(
        1, cfg, makeRoutingPolicy(RoutingPolicyKind::LeastLoaded, 1));
    ctl.heartbeat(0, fromMillis(5.0));
    ctl.checkHealth(fromMillis(12.5));
    EXPECT_EQ(ctl.health(0), ReplicaHealth::Suspect);
    ctl.heartbeat(0, fromMillis(13.0));
    EXPECT_EQ(ctl.health(0), ReplicaHealth::Healthy);
    EXPECT_TRUE(ctl.failovers().empty());
}

TEST(ChaosTest, TimelineIsDeterministicSortedAndComplete)
{
    ChaosParams params;
    params.enabled = true;
    params.mean_kill_interval_s = 0.5;
    params.mean_storm_interval_s = 0.4;
    const Tick dur = fromSeconds(4.0);
    const auto a = buildChaosTimeline(params, 4, dur, Rng(11));
    const auto b = buildChaosTimeline(params, 4, dur, Rng(11));
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    bool any_kill = false;
    bool any_ecc = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].replica, b[i].replica);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].outcome, b[i].outcome);
        EXPECT_LT(a[i].time, dur);
        EXPECT_LT(a[i].replica, 4u);
        if (i > 0) {
            EXPECT_GE(a[i].time, a[i - 1].time);
        }
        any_kill = any_kill || a[i].kind == ChaosKind::ReplicaKill;
        any_ecc = any_ecc || a[i].kind == ChaosKind::EccError;
    }
    EXPECT_TRUE(any_kill);
    EXPECT_TRUE(any_ecc);

    // Disabled chaos is empty; the caller's rng is pass-by-value so
    // two identical calls cannot perturb each other.
    ChaosParams off;
    EXPECT_TRUE(buildChaosTimeline(off, 4, dur, Rng(11)).empty());
}

ClusterConfig
testClusterConfig()
{
    ClusterConfig cfg;
    cfg.replicas = 4;
    cfg.chips_per_replica = 2;
    cfg.embedding_shards = 8;
    cfg.trace = smallTraceParams(0.0, 0.0); // qps/duration per run
    return cfg;
}

TEST(ClusterSimTest, QuietClusterMeetsSloAndConservesRequests)
{
    ClusterConfig cfg = testClusterConfig();
    const ClusterSimulator sim(cfg);
    const ClusterResult r = sim.simulate(500.0, fromSeconds(2.0));
    EXPECT_GT(r.arrivals, 0u);
    // No chaos: every arrival completes, none re-route or drop.
    EXPECT_EQ(r.completed, r.arrivals);
    EXPECT_EQ(r.rerouted, 0u);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_EQ(r.kills, 0u);
    EXPECT_EQ(r.failovers, 0u);
    EXPECT_GT(r.slo_attainment, 0.99);
    EXPECT_GT(r.batches, 0u);
    EXPECT_EQ(r.batches,
              r.batches_full + r.batches_deadline + r.batches_window);
    EXPECT_GT(r.shard_skew, 1.0);
    ASSERT_EQ(r.shard_rows.size(), cfg.embedding_shards);
    std::int64_t gathered = 0;
    for (const std::int64_t rows : r.shard_rows)
        gathered += rows;
    EXPECT_GT(gathered, 0);
}

TEST(ClusterSimTest, ChaosFailoverRecoversAndConserves)
{
    ClusterConfig cfg = testClusterConfig();
    cfg.chaos.enabled = true;
    cfg.chaos.mean_kill_interval_s = 1.0;
    const ClusterSimulator sim(cfg);
    const ClusterResult r = sim.simulate(500.0, fromSeconds(4.0));
    ASSERT_GT(r.kills, 0u);
    ASSERT_GT(r.failovers, 0u);
    EXPECT_GT(r.rerouted, 0u);
    // Every arrival is accounted for: completed or dropped (dropping
    // requires a total outage, so usually none).
    EXPECT_EQ(r.completed + r.dropped, r.arrivals);
    // Detection needs miss_threshold heartbeats; recovery adds
    // restart + warm-up. Both are bounded by the health config.
    const double hb_ms = toMillis(cfg.health.heartbeat_interval);
    EXPECT_GT(r.mean_detection_ms, hb_ms);
    const double recovery_floor = toMillis(cfg.health.restart_delay) +
        toMillis(cfg.health.warmup);
    if (r.mean_recovery_ms > 0) {
        EXPECT_GT(r.mean_recovery_ms,
                  r.mean_detection_ms + recovery_floor * 0.99);
        EXPECT_GE(r.max_recovery_ms, r.mean_recovery_ms);
    }
    // Chaos hurts the SLO but the cluster keeps serving.
    EXPECT_GT(r.slo_attainment, 0.5);
}

TEST(ClusterSimTest, EccStormsLandAndClassify)
{
    ClusterConfig cfg = testClusterConfig();
    cfg.chaos.enabled = true;
    cfg.chaos.mean_kill_interval_s = 0; // storms only
    cfg.chaos.mean_storm_interval_s = 0.5;
    const ClusterSimulator sim(cfg);
    const ClusterResult r = sim.simulate(200.0, fromSeconds(4.0));
    ASSERT_GT(r.ecc_errors, 0u);
    EXPECT_EQ(r.ecc_errors, r.ecc_benign + r.ecc_corrupted +
                  r.ecc_retries + r.ecc_crashes);
    // Section 5.1: the overwhelming majority of injected flips are
    // benign; crashes come only from OutOfBounds consequences.
    EXPECT_GT(r.ecc_benign, r.ecc_crashes);
    EXPECT_EQ(r.kills, r.ecc_crashes);
}

TEST(ClusterSimTest, RoutingPoliciesTradeSkewForAffinity)
{
    ClusterConfig cfg = testClusterConfig();
    const ClusterSimulator least(cfg);
    cfg.routing = RoutingPolicyKind::ShardHash;
    const ClusterSimulator hash(cfg);
    const ClusterResult a = least.simulate(500.0, fromSeconds(2.0));
    const ClusterResult b = hash.simulate(500.0, fromSeconds(2.0));
    EXPECT_EQ(a.policy, "least_loaded");
    EXPECT_EQ(b.policy, "shard_hash");
    EXPECT_EQ(a.arrivals, b.arrivals); // same trace replayed
    EXPECT_EQ(a.completed, a.arrivals);
    EXPECT_EQ(b.completed, b.arrivals);
}

TEST(ClusterSimTest, ChaosRunByteIdenticalAcrossLaneCountsAndRuns)
{
    // The determinism bar for the whole stack: a chaos run (replica
    // kills + ECC storms) must render byte-identical summaries across
    // MTIA_THREADS lane counts and across same-seed runs. sweep()
    // exercises the parallel harness; the scenario exercises failover,
    // re-routing, retries, and crash-kills.
    ClusterConfig cfg = testClusterConfig();
    cfg.chaos.enabled = true;
    cfg.chaos.mean_kill_interval_s = 1.0;
    const ClusterSimulator sim(cfg);
    const std::vector<double> points = {200.0, 500.0, 800.0};
    const Tick dur = fromSeconds(3.0);

    std::string lane1;
    std::string lane8;
    {
        ScopedParallelism serial(1);
        for (const ClusterResult &r : sim.sweep(points, dur))
            lane1 += r.summary();
    }
    {
        ScopedParallelism wide(8);
        for (const ClusterResult &r : sim.sweep(points, dur))
            lane8 += r.summary();
    }
    EXPECT_EQ(lane1, lane8);

    // Same seed, second run of the same process: byte-identical.
    std::string again;
    {
        ScopedParallelism wide(8);
        for (const ClusterResult &r : sim.sweep(points, dur))
            again += r.summary();
    }
    EXPECT_EQ(lane8, again);

    // A different seed is a genuinely different experiment.
    std::string reseeded;
    {
        ScopedParallelism serial(1);
        for (const ClusterResult &r : sim.sweep(points, dur, 1234))
            reseeded += r.summary();
    }
    EXPECT_NE(lane1, reseeded);
}

TEST(ClusterSimTest, PartitionedChaosByteIdenticalAcrossLanes)
{
    // The tentpole determinism bar: ONE simulate() call is itself a
    // parallel program now (controller + one partition per replica on
    // the lane pool), and a full-chaos run — kills AND an ECC storm,
    // exercising failover drains, re-routes, restarts, retries, and
    // crash-kills across the epoch-barrier mailboxes — must render a
    // byte-identical summary at every lane count and across same-seed
    // repeats.
    ClusterConfig cfg = testClusterConfig();
    cfg.replicas = 8; // more partitions than some lane counts
    cfg.chaos.enabled = true;
    cfg.chaos.mean_kill_interval_s = 1.0;
    cfg.chaos.mean_storm_interval_s = 0.5;
    const ClusterSimulator sim(cfg);
    const Tick dur = fromSeconds(3.0);

    std::string base;
    {
        ScopedParallelism serial(1);
        base = sim.simulate(400.0, dur).summary();
    }
    ASSERT_NE(base.find("kills="), std::string::npos);
    EXPECT_EQ(base.find("kills=0 "), std::string::npos)
        << "chaos scenario produced no kills; the property is vacuous";
    for (const unsigned lanes : {2u, 8u}) {
        ScopedParallelism scope(lanes);
        EXPECT_EQ(sim.simulate(400.0, dur).summary(), base)
            << "summary changed at " << lanes << " lanes";
    }
    {
        ScopedParallelism scope(8);
        EXPECT_EQ(sim.simulate(400.0, dur).summary(), base)
            << "same-seed repeat diverged";
    }
    // A different seed is a genuinely different experiment.
    ScopedParallelism serial(1);
    EXPECT_NE(sim.simulate(400.0, dur, 1234).summary(), base);
}

} // namespace
} // namespace mtia
