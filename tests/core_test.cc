/**
 * @file
 * Tests for the chip/device layer: Table 2 specification values, the
 * device clock/power/SRAM state, and — most importantly — the
 * kernel-cost-model calibration against every quantitative operating
 * point Sections 3.3, 4.2, 4.4 and 5.1 publish.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "chip/chip_config.h"
#include "chip/device.h"
#include "core/inline_function.h"
#include "chip/kernel_cost_model.h"
#include "chip/tco_model.h"

namespace mtia {
namespace {

TEST(ChipConfigTest, Table2PeakNumbers)
{
    const ChipConfig c2 = ChipConfig::mtia2i();
    EXPECT_EQ(c2.peCount(), 64u);
    EXPECT_NEAR(c2.peakGemmFlops(DType::FP16) / 1e12, 177.0, 1.0);
    EXPECT_NEAR(c2.peakGemmFlops(DType::BF16) / 1e12, 177.0, 1.0);
    EXPECT_NEAR(c2.peakGemmFlops(DType::INT8) / 1e12, 354.0, 2.0);
    EXPECT_NEAR(c2.peakGemmFlops(DType::INT8, true) / 1e12, 708.0, 4.0);
    EXPECT_EQ(c2.sram.capacity, 256_MiB);
    EXPECT_EQ(c2.local_memory_per_pe, 384_KiB);
    EXPECT_DOUBLE_EQ(c2.lpddr.peak_bandwidth, gbPerSec(204.8));

    const ChipConfig c1 = ChipConfig::mtia1();
    EXPECT_NEAR(c1.peakGemmFlops(DType::FP16) / 1e12, 51.2, 0.5);
    EXPECT_NEAR(c1.peakGemmFlops(DType::INT8) / 1e12, 102.4, 1.0);
    EXPECT_EQ(c1.sram.capacity, 128_MiB);
    EXPECT_EQ(c1.local_memory_per_pe, 128_KiB);

    // Generational ratios the paper quotes: >3x FLOPS, >3x SRAM BW,
    // 2x DRAM capacity, ~1.4x DRAM bandwidth, 3x local memory.
    EXPECT_GT(c2.peakGemmFlops(DType::FP16) /
                  c1.peakGemmFlops(DType::FP16),
              3.0);
    EXPECT_GT(c2.sram.bandwidth / c1.sram.bandwidth, 3.0);
    EXPECT_EQ(c2.lpddr.capacity / c1.lpddr.capacity, 2u);
    // Table 2 lists 204.8 vs 176 GB/s (1.16x); the paper's prose says
    // "approximately 1.4x". We follow the table.
    EXPECT_NEAR(c2.lpddr.peak_bandwidth / c1.lpddr.peak_bandwidth, 1.16,
                0.05);
    EXPECT_EQ(c2.local_memory_per_pe / c1.local_memory_per_pe, 3u);
    EXPECT_NEAR(c2.noc.bisection_bandwidth / c1.noc.bisection_bandwidth,
                3.3, 0.1);
}

TEST(DeviceTest, ClockScalingAffectsOnChipRatesOnly)
{
    Device dev(ChipConfig::mtia2i());
    const double sram_at_135 = dev.sramBandwidth();
    const double dram_at_135 = dev.dram().effectiveReadBandwidth();
    dev.setFrequencyGhz(1.1);
    EXPECT_NEAR(dev.sramBandwidth() / sram_at_135, 1.1 / 1.35, 1e-9);
    EXPECT_DOUBLE_EQ(dev.dram().effectiveReadBandwidth(), dram_at_135);
    EXPECT_NEAR(dev.peakGemmFlops(DType::FP16) / 1e12,
                177.0 * 1.1 / 1.35, 1.0);
}

TEST(DeviceTest, PowerModelBudgets)
{
    Device dev(ChipConfig::mtia2i());
    EXPECT_NEAR(dev.powerWatts(0.0), 18.0, 0.1);
    EXPECT_LE(dev.powerWatts(1.0), 85.0);
    // Typical serving load (~70% util) lands near the 65 W typical.
    EXPECT_NEAR(dev.powerWatts(0.7), 65.0, 5.0);
    // Underclocking cuts dynamic power.
    Device slow(ChipConfig::mtia2i());
    slow.setFrequencyGhz(1.1);
    EXPECT_LT(slow.powerWatts(0.7), dev.powerWatts(0.7));
}

TEST(DeviceTest, EagerLaunchBudgets)
{
    Device dev(ChipConfig::mtia2i());
    EXPECT_LT(toMicros(dev.jobLaunchTime()), 1.0);
    EXPECT_LT(toMicros(dev.jobReplaceTime()), 0.5);
    Device old(ChipConfig::mtia1());
    EXPECT_GE(1.0 - static_cast<double>(dev.jobLaunchTime()) /
                  old.jobLaunchTime(),
              0.75);
}

TEST(CostModel, LargeGemmExceeds92PercentOfPeak)
{
    // Section 3.3: >92% of peak FLOPS for 2K x 2K GEMM shapes.
    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    const FcShape shape{2048, 2048, 2048};
    const KernelTime t = km.fc(shape, {});
    const Tick ideal =
        fromSeconds(shape.flops() / dev.peakGemmFlops(DType::FP16));
    EXPECT_GT(t.efficiencyVs(ideal), 0.92);
    EXPECT_EQ(t.bottleneck, "compute");
}

TEST(CostModel, DynamicInt8SpeedupIsAboutOnePointSix)
{
    // Section 4.4: 2x DPE rate but ~1.6x end-to-end on 2048^3.
    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    const FcShape shape{2048, 2048, 2048};
    const KernelTime fp16 = km.fc(shape, {});
    FcOptions int8;
    int8.dtype = DType::INT8;
    int8.dynamic_int8 = true;
    const KernelTime i8 = km.fc(shape, int8);
    const double speedup =
        static_cast<double>(fp16.total) / static_cast<double>(i8.total);
    EXPECT_GT(speedup, 1.4);
    EXPECT_LT(speedup, 1.8);
    EXPECT_GT(i8.quant_overhead, 0u);
}

TEST(CostModel, SparsityDoublesComputeBoundThroughput)
{
    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    const FcShape shape{2048, 2048, 2048};
    const KernelTime dense = km.fc(shape, {});
    FcOptions sparse;
    sparse.sparse_24 = true;
    const KernelTime sp = km.fc(shape, sparse);
    EXPECT_NEAR(static_cast<double>(dense.total) / sp.total, 2.0, 0.15);
}

TEST(CostModel, WeightBroadcastShapeMatchesSection42)
{
    // 512 x 26592 x 2048 with a 109 MB FP16 weight tensor: with
    // coordinated loading >95% of DRAM bandwidth; the uncoordinated
    // baseline is ~45% slower end to end.
    const FcShape shape{512, 26592, 2048};
    EXPECT_NEAR(static_cast<double>(shape.weightBytes(DType::FP16)) /
                    (1 << 20),
                104.0, 5.0);

    Device coord(ChipConfig::mtia2i());
    KernelCostModel km_c(coord);
    FcOptions opt;
    opt.weights = Placement::Dram;
    opt.coordinated_loading = true;
    const KernelTime tc = km_c.fc(shape, opt);

    Device unc(ChipConfig::mtia2i());
    unc.noc().setBroadcastReads(false);
    KernelCostModel km_u(unc);
    opt.coordinated_loading = false;
    const KernelTime tu = km_u.fc(shape, opt);

    const double latency_gain =
        1.0 - static_cast<double>(tc.total) / tu.total;
    EXPECT_GT(latency_gain, 0.40);
    EXPECT_LT(latency_gain, 0.55);

    // Achieved DRAM bandwidth fraction (vs the ECC-adjusted peak).
    const double achieved =
        static_cast<double>(shape.weightBytes(DType::FP16)) /
        toSeconds(tc.total) / coord.dram().effectiveReadBandwidth();
    EXPECT_GT(achieved, 0.95);
    EXPECT_EQ(tc.bottleneck, "weight-stream");
}

TEST(CostModel, EccPenaltyTenToFifteenPercentOnDramBound)
{
    // Section 5.1: controller-based ECC costs 10-15% end to end on
    // bandwidth-sensitive kernels.
    const FcShape shape{512, 26592, 2048};
    FcOptions opt;
    opt.weights = Placement::Dram;

    Device with(ChipConfig::mtia2i()); // ECC on by default
    Device without(ChipConfig::mtia2i());
    without.dram().setEccMode(EccMode::None);
    const KernelTime t_ecc = KernelCostModel(with).fc(shape, opt);
    const KernelTime t_raw = KernelCostModel(without).fc(shape, opt);
    const double penalty =
        1.0 - static_cast<double>(t_raw.total) / t_ecc.total;
    EXPECT_GT(penalty, 0.08);
    EXPECT_LT(penalty, 0.15);
}

TEST(CostModel, SmallBatchWideGemmIsIssueBoundWithoutNewInstructions)
{
    // Section 3.3: initial kernels were bottlenecked by the custom-
    // instruction issue rate, especially for small GEMM shapes.
    const FcShape shape{32, 4096, 4096};
    FcOptions opt;
    opt.include_launch = false;

    ChipConfig legacy_isa = ChipConfig::mtia2i();
    legacy_isa.isa = IsaFeatures::mtia1();
    Device legacy(legacy_isa);
    Device modern(ChipConfig::mtia2i());

    const KernelTime t_old = KernelCostModel(legacy).fc(shape, opt);
    const KernelTime t_new = KernelCostModel(modern).fc(shape, opt);
    EXPECT_EQ(t_old.bottleneck, "instruction-issue");
    EXPECT_NE(t_new.bottleneck, "instruction-issue");
    EXPECT_GT(static_cast<double>(t_old.total) / t_new.total, 1.5);
}

TEST(CostModel, TbeIsDramBoundAtProductionHitRates)
{
    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    const TbeShape shape{.tables = 64,
                         .batch = 512,
                         .pooling = 40,
                         .dim = 64,
                         .dtype = DType::FP16};
    const KernelTime t = km.tbe(shape, {.sram_hit_rate = 0.5});
    EXPECT_EQ(t.bottleneck, "weight-stream");
    // Higher hit rate means faster.
    const KernelTime t9 = km.tbe(shape, {.sram_hit_rate = 0.9});
    EXPECT_LT(t9.total, t.total);
}

TEST(CostModel, TbeInstructionBoundWithLegacyIsaAtHighHitRate)
{
    ChipConfig legacy_isa = ChipConfig::mtia2i();
    legacy_isa.isa = IsaFeatures::mtia1();
    Device legacy(legacy_isa);
    Device modern(ChipConfig::mtia2i());
    const TbeShape shape{.tables = 64,
                         .batch = 512,
                         .pooling = 40,
                         .dim = 64,
                         .dtype = DType::FP16};
    const TbeOptions hot{.sram_hit_rate = 0.95};
    const KernelTime t_old = KernelCostModel(legacy).tbe(shape, hot);
    const KernelTime t_new = KernelCostModel(modern).tbe(shape, hot);
    EXPECT_EQ(t_old.bottleneck, "instruction-issue");
    EXPECT_GT(static_cast<double>(t_old.total) / t_new.total, 2.0);
}

TEST(CostModel, SoftmaxSmallInnerDimPaysTranspose)
{
    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    const KernelTime wide = km.softmax(1024, 256, false);
    const KernelTime narrow = km.softmax(1024 * 16, 16, false);
    // Same element count; the narrow one is slower per element.
    const double wide_per_elem =
        static_cast<double>(wide.total) / (1024.0 * 256.0);
    const double narrow_per_elem =
        static_cast<double>(narrow.total) / (1024.0 * 16.0 * 16.0);
    EXPECT_GT(narrow_per_elem, wide_per_elem * 1.2);
}

TEST(CostModel, PlacementBandwidthOrdering)
{
    Device dev(ChipConfig::mtia2i());
    KernelCostModel km(dev);
    const auto lm = km.placementBandwidth(Placement::LocalMemory, true);
    const auto sram = km.placementBandwidth(Placement::Lls, true);
    const auto dram = km.placementBandwidth(Placement::Dram, true);
    EXPECT_GT(lm, sram);
    EXPECT_GT(sram, dram);
    // SRAM : DRAM is roughly the 13x the paper quotes (ECC and edge
    // efficiency shave the DRAM side).
    EXPECT_GT(sram / dram, 12.0);
    EXPECT_LT(sram / dram, 18.0);
}

TEST(Tco, MatchedThroughputReductionNear44Percent)
{
    // The headline: serving the same load on MTIA 2i instead of GPUs
    // cuts TCO by ~44% when one GPU does the work of ~3 MTIA chips.
    TcoModel tco;
    const PlatformCost gpu = PlatformCost::gpuServer();
    const PlatformCost mtia = PlatformCost::mtia2iServer();
    const double reduction = tco.tcoReduction(
        /*qps_per_dev_a=*/3000.0, gpu, gpu.typical_watts,
        /*qps_per_dev_b=*/1000.0, mtia, mtia.typical_watts);
    EXPECT_NEAR(reduction, 0.44, 0.08);
}

TEST(Tco, PerfPerWattHarderThanPerfPerTco)
{
    // Section 7: beating GPUs on Perf/TCO is easier than Perf/Watt.
    TcoModel tco;
    const PlatformCost gpu = PlatformCost::gpuServer();
    const PlatformCost mtia = PlatformCost::mtia2iServer();
    const double gpu_qps = 3000.0;
    const double mtia_qps = 1000.0;
    const double tco_ratio =
        tco.perfPerTco(mtia_qps, mtia, mtia.typical_watts) /
        tco.perfPerTco(gpu_qps, gpu, gpu.typical_watts);
    const double watt_ratio =
        tco.perfPerWatt(mtia_qps, mtia.typical_watts) /
        tco.perfPerWatt(gpu_qps, gpu.typical_watts);
    EXPECT_GT(tco_ratio, watt_ratio);
    EXPECT_GT(tco_ratio, 1.5);
    EXPECT_GT(watt_ratio, 0.9);
    EXPECT_LT(watt_ratio, 1.4);
}

// Typical DES captures — a few pointers plus a tick or an index —
// must stay inside the small buffer; that contract is what makes
// steady-state scheduling allocation-free.
struct SixPointerCapture
{
    void *p[6];
    void operator()() {}
};
struct SevenPointerCapture
{
    void *p[7];
    void operator()() {}
};
static_assert(InlineFunction<void()>::storesInline<SixPointerCapture>());
static_assert(
    !InlineFunction<void()>::storesInline<SevenPointerCapture>());
static_assert(
    InlineFunction<void()>::kInlineCapacity >= 48,
    "DES callbacks assume at least six pointers of inline capture");

TEST(InlineFunction, InvokesAndForwardsArguments)
{
    InlineFunction<int(int, int)> f = [](int a, int b) { return a + b; };
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(2, 40), 42);
    EXPECT_TRUE(f.storedInline());
}

TEST(InlineFunction, EmptyStateAndNullptrComparisons)
{
    InlineFunction<void()> f;
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_TRUE(f == nullptr);
    f = [] {};
    EXPECT_TRUE(f != nullptr);
    f = nullptr;
    EXPECT_TRUE(f == nullptr);
}

TEST(InlineFunction, MoveOnlyTargetWorksAndMoveEmptiesSource)
{
    auto owned = std::make_unique<int>(7);
    InlineFunction<int()> f = [p = std::move(owned)] { return *p; };
    InlineFunction<int()> g = std::move(f);
    EXPECT_TRUE(f == nullptr);
    ASSERT_TRUE(g != nullptr);
    EXPECT_EQ(g(), 7);
}

TEST(InlineFunction, MoveAssignmentDestroysPreviousTarget)
{
    int destroyed = 0;
    struct CountsDtor
    {
        int *out;
        bool armed = true;
        CountsDtor(int *o) : out(o) {}
        CountsDtor(CountsDtor &&other) noexcept
            : out(other.out), armed(other.armed)
        {
            other.armed = false;
        }
        ~CountsDtor()
        {
            if (armed)
                ++*out;
        }
        void operator()() {}
    };
    {
        InlineFunction<void()> f = CountsDtor(&destroyed);
        EXPECT_EQ(destroyed, 0);
        f = [] {};
        EXPECT_EQ(destroyed, 1);
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, TriviallyCopyableTargetSurvivesMoves)
{
    struct Trivial
    {
        std::uint64_t a, b, c;
        std::uint64_t operator()() const { return a + b + c; }
    };
    static_assert(InlineFunction<std::uint64_t()>::storesInline<Trivial>());
    InlineFunction<std::uint64_t()> f = Trivial{1, 2, 3};
    InlineFunction<std::uint64_t()> g;
    g = std::move(f);
    InlineFunction<std::uint64_t()> h = std::move(g);
    EXPECT_EQ(h(), 6u);
}

TEST(InlineFunction, OversizedTargetIsBoxedButFullyFunctional)
{
    struct Big
    {
        std::uint64_t words[9];
        std::uint64_t operator()() const { return words[8]; }
    };
    static_assert(!InlineFunction<std::uint64_t()>::storesInline<Big>());
    Big big{};
    big.words[8] = 99;
    InlineFunction<std::uint64_t()> f = big;
    EXPECT_FALSE(f.storedInline());
    InlineFunction<std::uint64_t()> g = std::move(f);
    EXPECT_TRUE(f == nullptr);
    EXPECT_EQ(g(), 99u);
}

TEST(InlineFunction, MutableStatePersistsAcrossCalls)
{
    InlineFunction<int()> f = [n = 0]() mutable { return ++n; };
    EXPECT_EQ(f(), 1);
    EXPECT_EQ(f(), 2);
    EXPECT_EQ(f(), 3);
}

} // namespace
} // namespace mtia
