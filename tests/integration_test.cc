/**
 * @file
 * Cross-module integration tests: whole models through the functional
 * executor and the cost model together, error injection into a live
 * graph (NaN propagation through real arithmetic), the full co-design
 * loop (build -> optimize -> place -> compare), firmware + deadlock +
 * control-core interplay, and end-to-end determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/comparison.h"
#include "fleet/firmware.h"
#include "graph/executor.h"
#include "graph/fusion.h"
#include "graph/graph_cost.h"
#include "mem/error_injector.h"
#include "models/case_study.h"
#include "models/model_zoo.h"
#include "ops/dense_ops.h"
#include "serving/ab_testing.h"
#include "serving/serving_sim.h"

namespace mtia {
namespace {

RankingModelParams
tinyParams()
{
    RankingModelParams p;
    p.name = "tiny";
    p.batch = 32;
    p.dense_features = 16;
    p.bottom_mlp = {16};
    p.tbe = TbeTableSpec{.tables = 2,
                         .rows_per_table = 1024,
                         .dim = 8,
                         .dtype = DType::FP16,
                         .zipf_alpha = 0.9};
    p.tbe_pooling = 4;
    p.top_mlp = {32, 1};
    p.dhen_layers = 1;
    p.dhen_width = 32;
    return p;
}

TEST(Integration, FunctionalRunIsDeterministicPerSeed)
{
    ModelInfo m1 = buildRankingModel(tinyParams());
    ModelInfo m2 = buildRankingModel(tinyParams());
    Executor e1(123);
    Executor e2(123);
    const Tensor a = e1.run(m1.graph).outputs.begin()->second;
    const Tensor b = e2.run(m2.graph).outputs.begin()->second;
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(a, b), 0.0);

    Executor e3(124);
    ModelInfo m3 = buildRankingModel(tinyParams());
    const Tensor c = e3.run(m3.graph).outputs.begin()->second;
    EXPECT_GT(Tensor::maxAbsDiff(a, c), 0.0);
}

TEST(Integration, FusionPreservesPredictionsOnWholeModel)
{
    ModelInfo plain = buildRankingModel(tinyParams());
    ModelInfo fused = buildRankingModel(tinyParams());
    const int rewrites = optimizeGraph(fused.graph);
    EXPECT_GT(rewrites, 0);

    Executor e1(55);
    Executor e2(55);
    const Tensor a = e1.run(plain.graph).outputs.begin()->second;
    const Tensor b = e2.run(fused.graph).outputs.begin()->second;
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_LT(Tensor::maxAbsDiff(a, b), 1e-5);
}

TEST(Integration, PredictionsAreProbabilities)
{
    ModelInfo model = buildRankingModel(tinyParams());
    Executor exec(77);
    const Tensor out = exec.run(model.graph).outputs.begin()->second;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        EXPECT_GE(out.at(i), 0.0f);
        EXPECT_LE(out.at(i), 1.0f);
    }
}

TEST(Integration, InjectedWeightErrorPropagatesToOutputs)
{
    // The Section 5.1 experiment, end to end through real math: flip
    // an exponent bit in a first-layer weight and watch the model
    // output corrupt or go non-finite.
    ModelInfo model = buildRankingModel(tinyParams());
    Executor clean_exec(99);
    const Tensor clean =
        clean_exec.run(model.graph).outputs.begin()->second;

    // Find the first FC and blast a high exponent bit of weight 0.
    for (int id : model.graph.topoOrder()) {
        auto *fc = dynamic_cast<FullyConnectedOp *>(
            model.graph.node(id).op.get());
        if (fc == nullptr)
            continue;
        Tensor &w = const_cast<Tensor &>(fc->weights());
        // FP16 weight: bit 14 is the exponent MSB.
        w.flipBit(14);
        break;
    }
    Executor dirty_exec(99);
    const Tensor dirty =
        dirty_exec.run(model.graph).outputs.begin()->second;
    // A single flipped exponent bit must visibly perturb predictions.
    EXPECT_GT(Tensor::maxAbsDiff(clean, dirty), 1e-4);
}

TEST(Integration, CostModelAndExecutorAgreeOnActivationFootprint)
{
    ModelInfo model = buildRankingModel(tinyParams());
    const LivenessReport live =
        analyzeLiveness(model.graph, naiveOrder(model.graph));
    Executor exec(11);
    const ExecutionResult run = exec.run(model.graph);
    // The executor runs FP32 (4 B) and keeps the weights out of its
    // accounting; the liveness model uses FP16 (2 B). Within 4x is a
    // real cross-check of the shared freeing discipline.
    EXPECT_LT(run.peak_bytes, live.peak_bytes * 4);
    EXPECT_GT(run.peak_bytes, live.peak_bytes / 4);
}

TEST(Integration, FullCoDesignLoopImprovesEveryKnob)
{
    // Build -> optimize -> place -> compare, asserting each knob
    // moves throughput the right way on the month-6 case study.
    Device dev(ChipConfig::mtia2i());
    dev.setFrequencyGhz(1.1); // pre-overclocking production clock
    GraphCostModel gcm(dev);

    ModelInfo model = buildCaseStudyModel(6);
    GraphCostOptions untuned;
    untuned.memory_aware_schedule = false;
    untuned.coordinated_loading = false;
    untuned.tuned_placement = false;
    const double q0 =
        gcm.evaluate(model.graph, model.batch, untuned).qps;

    GraphCostOptions tuned;
    const double q1 =
        gcm.evaluate(model.graph, model.batch, tuned).qps;
    EXPECT_GT(q1, q0 * 1.3);

    optimizeGraph(model.graph);
    const double q2 =
        gcm.evaluate(model.graph, model.batch, tuned).qps;
    EXPECT_GT(q2, q1);

    dev.setFrequencyGhz(1.35);
    GraphCostModel fast(dev);
    const double q3 =
        fast.evaluate(model.graph, model.batch, tuned).qps;
    EXPECT_GT(q3, q2);
}

TEST(Integration, ComparisonAndServingAgreeOnSloFeasibility)
{
    // The comparison harness says what one device sustains; the
    // serving simulator must be able to run that load within SLO
    // when the per-batch latency is mapped to merge/remote jobs.
    Device dev(ChipConfig::mtia2i());
    ComparisonHarness harness(dev);
    ModelInfo model = buildRankingModel(tinyParams());
    optimizeGraph(model.graph);
    const ModelComparison cmp = harness.compare(model);
    EXPECT_GT(cmp.mtia.qps, 0.0);
    EXPECT_GT(cmp.gpu.qps, 0.0);

    ServingModelParams sp;
    sp.shards = 1;
    sp.remote_jobs_per_shard = 1;
    sp.remote_total = fromMillis(1.0);
    sp.merge_time = fromMillis(2.0);
    const ServingSimulator sim(sp);
    const ServingResult r = sim.simulate(50.0, fromSeconds(10.0));
    EXPECT_TRUE(r.meets_slo);
}

TEST(Integration, AbHarnessOnOptimizedGraphStillWithinTolerance)
{
    // Fusions change the kernel composition; A/B parity must survive.
    ModelInfo model = buildRankingModel(tinyParams());
    optimizeGraph(model.graph);
    AbTestHarness harness;
    const AbResult r = harness.compare(model.graph, 3);
    EXPECT_LT(std::abs(r.neDeltaPercent()), 1.0);
    EXPECT_LT(r.max_pred_diff, 0.02);
}

TEST(Integration, FirmwareLifecycleEndToEnd)
{
    // Build buggy firmware -> stress catches it -> fix -> verify ->
    // emergency rollout completes -> scenario clean afterwards.
    FirmwareManager mgr(2024, 5000);
    const FirmwareBundle buggy =
        mgr.build("candidate", ControlMemLocation::HostMemory);
    ASSERT_FALSE(mgr.stressTest(buggy, 3000).passed);

    const FirmwareBundle fix =
        mgr.build("hotfix", ControlMemLocation::DeviceSram);
    ASSERT_TRUE(mgr.stressTest(fix, 3000).passed);
    const RolloutResult rollout = mgr.rollout(
        fix, FirmwareManager::emergencyPlan(false), 400);
    EXPECT_TRUE(rollout.completed);

    ControlCore cc(ControlCoreConfig{4, fix.control_mem});
    EXPECT_FALSE(cc.buildHighLoadScenario().hasDeadlock());
}

TEST(Integration, OverclockOnlyHelpsComputeBoundModels)
{
    // The whole point of the 5-20% band: uplift moves on-chip rates
    // only, so DRAM-bound models barely move.
    auto gain = [](ModelInfo model) {
        optimizeGraph(model.graph);
        Device slow(ChipConfig::mtia2i());
        slow.setFrequencyGhz(1.1);
        Device fast(ChipConfig::mtia2i());
        fast.setFrequencyGhz(1.35);
        const double a = GraphCostModel(slow)
                             .evaluate(model.graph, model.batch)
                             .qps;
        const double b = GraphCostModel(fast)
                             .evaluate(model.graph, model.batch)
                             .qps;
        return b / a - 1.0;
    };
    const double compute_bound = gain(buildCaseStudyModel(6));
    const double dram_bound = gain(buildEarlyStageModel(2048));
    EXPECT_GT(compute_bound, dram_bound);
    EXPECT_LT(dram_bound, 0.15);
    EXPECT_GT(compute_bound, 0.05);
}

} // namespace
} // namespace mtia
