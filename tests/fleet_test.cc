/**
 * @file
 * Tests for the productionization substrates: fleet memory-error
 * telemetry (24%-of-servers regime), injection campaigns by region,
 * the overclocking study, power provisioning (~40% reduction), and
 * the firmware lifecycle with deadlock detection and mitigation.
 */

#include <gtest/gtest.h>

#include "chip/device.h"
#include "fleet/firmware.h"
#include "fleet/memory_error_study.h"
#include "fleet/overclocking.h"
#include "fleet/power_provisioning.h"

namespace mtia {
namespace {

TEST(FleetErrors, AboutAQuarterOfServersShowErrors)
{
    // Section 5.1: from 1,700 servers, 24% exhibited ECC errors,
    // typically on a single card per server. The channel BER is
    // calibrated to that observation window.
    LpddrConfig cfg;
    cfg.peak_bandwidth = gbPerSec(204.8);
    cfg.bit_error_rate = 1.9e-20;
    LpddrChannel channel(cfg);
    MemoryErrorStudy study(61);
    const FleetErrorReport rep =
        study.sampleFleet(channel, 1700, /*days=*/90.0, 64_GiB);
    EXPECT_NEAR(rep.serverErrorFraction(), 0.24, 0.07);
    // Typically a single bad card on affected servers.
    EXPECT_GT(static_cast<double>(rep.single_card_servers),
              0.6 * rep.servers_with_errors);
}

TEST(FleetErrors, RegionSensitivityOrdering)
{
    MemoryErrorStudy study(67);
    const auto reports = study.injectAllRegions(3000);
    ASSERT_EQ(reports.size(), 6u);
    double weights_nan = 0.0;
    double index_oob = 0.0;
    for (const auto &r : reports) {
        if (r.region == MemRegion::DenseWeights) {
            // FP bit flips produce NaNs directly (exponent field)
            // and corruptions that cascade to NaN downstream.
            weights_nan = static_cast<double>(r.nan) / r.trials;
            EXPECT_GT(static_cast<double>(r.corrupted) / r.trials,
                      0.2);
        }
        if (r.region == MemRegion::TbeIndices) {
            index_oob =
                static_cast<double>(r.out_of_bounds) / r.trials;
            EXPECT_EQ(r.benign, 0u); // index flips are never benign
        }
    }
    EXPECT_GT(weights_nan, 0.001);
    EXPECT_GT(index_oob, 0.5); // most index flips are crash-equivalent
}

TEST(Overclocking, PassRatesBarelyMoveFrom1p1To1p35)
{
    // Section 5.2: ~3,000 chips x 10 tests x {1.1, 1.25, 1.35} GHz
    // with negligible pass-rate decrease.
    OverclockingStudy study(71);
    const OverclockReport rep = study.run(3000, {1.1, 1.25, 1.35});
    ASSERT_EQ(rep.cells.size(), 30u);
    const double p110 = rep.passRateAt(1.1);
    const double p135 = rep.passRateAt(1.35);
    EXPECT_GT(p110, 0.9999);
    EXPECT_GT(p135, 0.995);
    EXPECT_LT(p110 - p135, 0.005);
}

TEST(Overclocking, FrequencyUpliftSpeedsCompute)
{
    Device dev(ChipConfig::mtia2i());
    dev.setFrequencyGhz(1.1);
    const double flops_low = dev.peakGemmFlops(DType::FP16);
    dev.setFrequencyGhz(1.35);
    EXPECT_NEAR(dev.peakGemmFlops(DType::FP16) / flops_low, 1.227,
                0.01);
}

TEST(PowerProvisioning, ReductionNearFortyPercent)
{
    Device dev(ChipConfig::mtia2i());
    PowerProvisioningStudy study(73, dev);
    const PowerBudgetReport rep = study.run(/*servers=*/200,
                                            /*days=*/14);
    EXPECT_GT(rep.reduction(), 0.30);
    EXPECT_LT(rep.reduction(), 0.50);
    // The final budget is the max of the two methods and both must
    // be meaningfully below the stress-test number.
    EXPECT_DOUBLE_EQ(rep.final_budget_w,
                     std::max(rep.experiment_budget_w,
                              rep.analysis_budget_w));
    EXPECT_LT(rep.experiment_budget_w, rep.initial_budget_w);
    EXPECT_LT(rep.analysis_budget_w, rep.initial_budget_w);
}

TEST(Firmware, SignAndVerify)
{
    FirmwareManager mgr(79, 1000);
    FirmwareBundle bundle =
        mgr.build("fw-2024.10.1", ControlMemLocation::HostMemory);
    EXPECT_TRUE(bundle.verify());
    bundle.image[100] ^= 0x01; // corrupt one bit
    EXPECT_FALSE(bundle.verify());
}

TEST(Firmware, StressTestCatchesDeadlockAndMitigationClearsIt)
{
    // Section 5.5: the enhanced stress suite found ~1% of servers
    // losing PCIe connectivity; the firmware fix relocated the
    // Control Core's memory to device SRAM.
    FirmwareManager mgr(83, 10000);
    const FirmwareBundle buggy =
        mgr.build("fw-buggy", ControlMemLocation::HostMemory);
    const StressTestResult bad = mgr.stressTest(buggy, 2000);
    EXPECT_FALSE(bad.passed);
    EXPECT_NEAR(bad.pcie_loss_fraction, 0.01, 0.007);

    const FirmwareBundle fixed =
        mgr.build("fw-fixed", ControlMemLocation::DeviceSram);
    const StressTestResult good = mgr.stressTest(fixed, 2000);
    EXPECT_TRUE(good.passed);
    EXPECT_DOUBLE_EQ(good.pcie_loss_fraction, 0.0);
}

TEST(Firmware, RolloutTimelines)
{
    FirmwareManager mgr(89, 10000);
    const FirmwareBundle bundle =
        mgr.build("fw-ok", ControlMemLocation::DeviceSram);

    // Standard rollout: ~18 days.
    const RolloutResult standard = mgr.rollout(
        bundle, FirmwareManager::standardPlan(), 400);
    EXPECT_TRUE(standard.completed);
    EXPECT_NEAR(toSeconds(standard.duration) / 86400.0, 18.0, 1.5);

    // Emergency with safety policies: within ~3 hours.
    const RolloutResult emergency = mgr.rollout(
        bundle, FirmwareManager::emergencyPlan(false), 400);
    EXPECT_TRUE(emergency.completed);
    EXPECT_LT(toSeconds(emergency.duration), 3.0 * 3600.0);

    // Overridden policies: within ~1 hour, at the cost of much
    // larger restart waves.
    const RolloutResult urgent = mgr.rollout(
        bundle, FirmwareManager::emergencyPlan(true), 1200);
    EXPECT_TRUE(urgent.completed);
    EXPECT_LT(toSeconds(urgent.duration), 3600.0);
    EXPECT_GT(urgent.concurrent_restart_peak,
              emergency.concurrent_restart_peak);
}

TEST(Firmware, RefusesCorruptImage)
{
    FirmwareManager mgr(97, 100);
    FirmwareBundle bundle =
        mgr.build("fw-corrupt", ControlMemLocation::DeviceSram);
    bundle.image[0] ^= 0xff;
    const RolloutResult r = mgr.rollout(
        bundle, FirmwareManager::emergencyPlan(true), 100);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.servers_updated, 0u);
}

} // namespace
} // namespace mtia
