/**
 * @file
 * Allocation accounting for the DES hot path. The event queue's
 * acceptance criterion is zero steady-state heap allocations: once the
 * slab freelist and the overflow vector are warm, scheduling and
 * dispatching inline-sized callbacks must never touch the allocator.
 * This binary replaces global operator new/delete with counting
 * versions, so it is its own test executable.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

} // namespace

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace mtia {
namespace {

/** Self-rescheduling chain with a production-shaped capture. */
struct Chain
{
    EventQueue *q;
    std::uint64_t remaining;
    std::uint64_t *fired;
    Tick delta;

    void
    operator()()
    {
        ++*fired;
        if (remaining > 0)
            q->scheduleAfter(delta, Chain{q, remaining - 1, fired, delta});
    }
};
static_assert(EventQueue::Callback::storesInline<Chain>(),
              "the steady-state guarantee only holds for inline captures");

TEST(EventQueueAllocation, SteadyStateSchedulingIsAllocationFree)
{
    EventQueue q;
    std::uint64_t fired = 0;

    // Warm-up: grow the node slabs and the overflow heap's vector on
    // both the ring path (small delta) and the far path (delta beyond
    // the window).
    q.schedule(q.now(), Chain{&q, 512, &fired, 3});
    q.schedule(q.now(),
               Chain{&q, 64, &fired,
                     static_cast<Tick>(EventQueue::kRingSlots) * 4});
    q.run();
    const std::uint64_t warmed = fired;

    const std::uint64_t before = allocationCount();
    q.schedule(q.now(), Chain{&q, 50000, &fired, 3});
    q.schedule(q.now(),
               Chain{&q, 64, &fired,
                     static_cast<Tick>(EventQueue::kRingSlots) * 4});
    q.run();
    const std::uint64_t after = allocationCount();

    EXPECT_EQ(after - before, 0u)
        << "steady-state schedule/dispatch touched the heap";
    EXPECT_EQ(fired - warmed, 50000u + 64u + 2u);
}

TEST(EventQueueAllocation, BoxedCallbacksAllocateOnlyTheirBox)
{
    // Sanity-check the counter itself: an oversized capture must heap-
    // box exactly once per schedule.
    EventQueue q;
    struct Big
    {
        std::uint64_t words[9];
        std::uint64_t *out;
        void operator()() const { *out += words[8]; }
    };
    static_assert(!EventQueue::Callback::storesInline<Big>());
    std::uint64_t sum = 0;
    Big big{};
    big.words[8] = 5;
    big.out = &sum;
    q.schedule(1, big); // warm the slab
    q.run();
    const std::uint64_t before = allocationCount();
    q.schedule(2, big);
    q.run();
    EXPECT_EQ(allocationCount() - before, 1u);
    EXPECT_EQ(sum, 10u);
}

} // namespace
} // namespace mtia
