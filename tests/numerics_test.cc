/**
 * Vectorized numerics kernel layer: the SIMD batch paths
 * (tensor/dtype convertBuffer, tensor/quantize, host/compression rANS
 * v2 + hash-chain LZ, ops/sparse_ops gather) must be bit-identical to
 * their element-at-a-time scalar references on every backend,
 * including the forced-scalar MTIA_NO_SIMD build.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/numerics_stats.h"
#include "core/simd.h"
#include "host/compression.h"
#include "ops/sparse_ops.h"
#include "sim/random.h"
#include "telemetry/metrics.h"
#include "tensor/dtype.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace mtia {
namespace {

std::uint32_t
floatBits(float f)
{
    std::uint32_t b;
    std::memcpy(&b, &f, 4);
    return b;
}

std::vector<std::uint16_t>
narrowSimd(const std::vector<float> &src, DType to)
{
    std::vector<std::uint16_t> dst(src.size());
    convertBuffer(src.data(), dst.data(), src.size(), to);
    return dst;
}

std::vector<std::uint16_t>
narrowScalar(const std::vector<float> &src, DType to)
{
    std::vector<std::uint16_t> dst(src.size());
    scalar::convertBuffer(src.data(), dst.data(), src.size(), to);
    return dst;
}

/** The fp32 specials every conversion path must agree on. */
std::vector<float>
specialFloats()
{
    return {
        0.0f,
        -0.0f,
        1.0f,
        -1.0f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity(),
        std::numeric_limits<float>::quiet_NaN(),
        std::numeric_limits<float>::signaling_NaN(),
        65504.0f,   // fp16 max normal
        -65504.0f,
        65519.9f,   // rounds to fp16 max normal
        65520.0f,   // first value rounding to fp16 inf
        1e30f,      // far overflow
        6.103515625e-5f,  // 2^-14, smallest fp16 normal
        6.0975552e-5f,    // just below: fp16 denormal range
        5.9604645e-8f,    // 2^-24, smallest fp16 denormal
        2.9802322e-8f,    // 2^-25: ties to even (zero)
        2.9802326e-8f,    // just above 2^-25: rounds up
        1e-40f,     // fp32 denormal, flushes to fp16 zero
        std::numeric_limits<float>::denorm_min(),
        0.1f, 0.5f, 1.5f, 2.5f, // RTNE tie patterns after scaling
        3.14159265f,
    };
}

TEST(NumericsDtype, Fp16SpecialsMatchScalarAndPerElement)
{
    const std::vector<float> src = specialFloats();
    const auto vec = narrowSimd(src, DType::FP16);
    const auto ref = narrowScalar(src, DType::FP16);
    ASSERT_EQ(vec.size(), ref.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(vec[i], ref[i]) << "input " << src[i];
        EXPECT_EQ(vec[i], fp32ToFp16Bits(src[i])) << "input " << src[i];
    }
    // Absolute anchors for the interesting classes.
    EXPECT_EQ(fp32ToFp16Bits(0.0f), 0x0000);
    EXPECT_EQ(fp32ToFp16Bits(-0.0f), 0x8000);
    EXPECT_EQ(fp32ToFp16Bits(65504.0f), 0x7bff);
    EXPECT_EQ(fp32ToFp16Bits(65520.0f), 0x7c00); // rounds to inf
    EXPECT_EQ(fp32ToFp16Bits(2.9802322e-8f), 0x0000); // 2^-25 tie
    EXPECT_EQ(fp32ToFp16Bits(2.9802326e-8f), 0x0001); // rounds up
    EXPECT_EQ(fp32ToFp16Bits(1e-40f), 0x0000); // denormal flush
    const std::uint16_t nan16 =
        fp32ToFp16Bits(std::numeric_limits<float>::quiet_NaN());
    EXPECT_EQ(nan16 & 0x7c00, 0x7c00);
    EXPECT_NE(nan16 & 0x03ff, 0); // NaN payload survives
}

TEST(NumericsDtype, Bf16SpecialsAndTiesMatchScalar)
{
    std::vector<float> src = specialFloats();
    // Exact RTNE tie patterns: low half == 0x8000 rounds to even.
    float even_tie, odd_tie, nan_payload;
    std::uint32_t b = 0x3f808000; // tie, upper 0x3f80 even -> stays
    std::memcpy(&even_tie, &b, 4);
    b = 0x3f818000; // tie, upper 0x3f81 odd -> rounds up to 0x3f82
    std::memcpy(&odd_tie, &b, 4);
    b = 0x7fa00001; // NaN with payload
    std::memcpy(&nan_payload, &b, 4);
    src.push_back(even_tie);
    src.push_back(odd_tie);
    src.push_back(nan_payload);

    const auto vec = narrowSimd(src, DType::BF16);
    const auto ref = narrowScalar(src, DType::BF16);
    for (std::size_t i = 0; i < src.size(); ++i) {
        EXPECT_EQ(vec[i], ref[i]) << "input " << src[i];
        EXPECT_EQ(vec[i], fp32ToBf16Bits(src[i])) << "input " << src[i];
    }
    EXPECT_EQ(fp32ToBf16Bits(even_tie), 0x3f80);
    EXPECT_EQ(fp32ToBf16Bits(odd_tie), 0x3f82);
    const std::uint16_t n = fp32ToBf16Bits(nan_payload);
    EXPECT_EQ(n & 0x7f80, 0x7f80);
    EXPECT_NE(n & 0x007f, 0);
}

TEST(NumericsDtype, Fp16WidenExhaustiveAllBitPatterns)
{
    std::vector<std::uint16_t> bits(1 << 16);
    for (std::size_t i = 0; i < bits.size(); ++i)
        bits[i] = static_cast<std::uint16_t>(i);
    std::vector<float> vec(bits.size()), ref(bits.size());
    convertBuffer(bits.data(), vec.data(), bits.size(), DType::FP16);
    scalar::convertBuffer(bits.data(), ref.data(), bits.size(),
                          DType::FP16);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        EXPECT_EQ(floatBits(vec[i]), floatBits(ref[i])) << "bits " << i;
        EXPECT_EQ(floatBits(vec[i]), floatBits(fp16BitsToFp32(bits[i])))
            << "bits " << i;
    }
    // Anchors: inf, -0, smallest denormal.
    EXPECT_EQ(fp16BitsToFp32(0x7c00),
              std::numeric_limits<float>::infinity());
    EXPECT_EQ(floatBits(fp16BitsToFp32(0x8000)), 0x80000000u);
    EXPECT_EQ(fp16BitsToFp32(0x0001), std::ldexp(1.0f, -24));
}

TEST(NumericsDtype, Bf16WidenExhaustiveAllBitPatterns)
{
    std::vector<std::uint16_t> bits(1 << 16);
    for (std::size_t i = 0; i < bits.size(); ++i)
        bits[i] = static_cast<std::uint16_t>(i);
    std::vector<float> vec(bits.size()), ref(bits.size());
    convertBuffer(bits.data(), vec.data(), bits.size(), DType::BF16);
    scalar::convertBuffer(bits.data(), ref.data(), bits.size(),
                          DType::BF16);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        EXPECT_EQ(floatBits(vec[i]), floatBits(ref[i])) << "bits " << i;
        EXPECT_EQ(floatBits(vec[i]), floatBits(bf16BitsToFp32(bits[i])))
            << "bits " << i;
    }
}

TEST(NumericsDtype, RandomizedMillionElementEquivalence)
{
    constexpr std::size_t kN = std::size_t{1} << 20;
    Rng rng(77);
    std::vector<float> src(kN);
    for (std::size_t i = 0; i < kN; ++i) {
        // Span the whole exponent range, specials included.
        const double mag = rng.uniform(-44.0, 44.0);
        src[i] = static_cast<float>(
            rng.gaussian(0.0, 1.0) * std::pow(10.0, mag));
        if (i % 997 == 0)
            src[i] = std::numeric_limits<float>::quiet_NaN();
        if (i % 991 == 0)
            src[i] = std::numeric_limits<float>::infinity();
    }
    EXPECT_EQ(narrowSimd(src, DType::FP16), narrowScalar(src, DType::FP16));
    EXPECT_EQ(narrowSimd(src, DType::BF16), narrowScalar(src, DType::BF16));

    const auto h = narrowSimd(src, DType::FP16);
    std::vector<float> wide_vec(kN), wide_ref(kN);
    convertBuffer(h.data(), wide_vec.data(), kN, DType::FP16);
    scalar::convertBuffer(h.data(), wide_ref.data(), kN, DType::FP16);
    EXPECT_EQ(std::memcmp(wide_vec.data(), wide_ref.data(), kN * 4), 0);
}

TEST(NumericsDtype, OddLengthsExerciseVectorTails)
{
    Rng rng(5);
    for (const std::size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 15u, 33u}) {
        std::vector<float> src(n);
        for (float &v : src)
            v = static_cast<float>(rng.gaussian(0.0, 100.0));
        EXPECT_EQ(narrowSimd(src, DType::FP16),
                  narrowScalar(src, DType::FP16))
            << "n=" << n;
        EXPECT_EQ(narrowSimd(src, DType::BF16),
                  narrowScalar(src, DType::BF16))
            << "n=" << n;
    }
}

// ----------------------------------------------------------- quantize

TEST(NumericsQuantize, DynamicMatchesScalarAcrossGranularities)
{
    Rng rng(11);
    // Odd shape so every kernel tail path runs; a zero row and an
    // outlier row stress the scale guard and the clamp.
    Tensor act(Shape{37, 129}, DType::FP32);
    act.fillGaussian(rng, 0.0f, 3.0f);
    for (std::int64_t k = 0; k < 129; ++k)
        act.set(5 * 129 + k, 0.0f);
    act.set(7 * 129 + 3, 1e6f);

    struct Case
    {
        QuantGranularity g;
        std::int64_t group_rows;
    };
    for (const Case c : {Case{QuantGranularity::PerTensor, 1},
                         Case{QuantGranularity::PerRow, 1},
                         Case{QuantGranularity::PerRowGroup, 4},
                         Case{QuantGranularity::PerRowGroup, 16}}) {
        const QuantizedTensor a =
            quantizeDynamic(act, c.g, c.group_rows);
        const QuantizedTensor b =
            scalar::quantizeDynamic(act, c.g, c.group_rows);
        EXPECT_EQ(a.values.raw(), b.values.raw());
        EXPECT_EQ(a.group_rows, b.group_rows);
        ASSERT_EQ(a.scales.size(), b.scales.size());
        EXPECT_EQ(std::memcmp(a.scales.data(), b.scales.data(),
                              a.scales.size() * 4),
                  0);
        const Tensor da = dequantize(a);
        const Tensor db = scalar::dequantize(b);
        EXPECT_EQ(da.raw(), db.raw());
    }
}

TEST(NumericsQuantize, StaticPercentileClippedOutliersStaySaturated)
{
    Rng rng(13);
    Tensor w(Shape{64, 64}, DType::FP32);
    w.fillGaussian(rng);
    w.set(0, 1e8f); // outlier far beyond the percentile clip
    const QuantizedTensor q = quantizeStatic(w, 99.0);
    // The clipped outlier must pin to +127, not wrap (the int32
    // overflow case the float-domain pre-clamp guards against).
    EXPECT_EQ(static_cast<std::int8_t>(q.values.raw()[0]), 127);
    const Tensor deq = dequantize(q);
    EXPECT_GT(sqnrDb(w, deq), 0.0);
}

// -------------------------------------------------------------- codec

TEST(NumericsCodec, RansV2RoundTripsAcrossPayloads)
{
    Rng rng(17);
    std::vector<ByteBuffer> payloads;
    payloads.push_back({});                      // empty
    payloads.push_back({0x42});                  // single byte
    payloads.push_back(ByteBuffer(5, 0xaa));     // tiny constant
    ByteBuffer gauss(200000);
    for (auto &b : gauss)
        b = static_cast<std::uint8_t>(
            static_cast<std::int8_t>(rng.gaussian(0.0, 9.0)));
    payloads.push_back(gauss);
    ByteBuffer uniform(70000);
    for (auto &b : uniform)
        b = static_cast<std::uint8_t>(rng.below(256));
    payloads.push_back(uniform);

    for (const ByteBuffer &p : payloads) {
        const ByteBuffer v2 =
            RansCodec::compress(p, RansFormat::V2Interleaved);
        EXPECT_EQ(RansCodec::decompress(v2), p) << p.size();
        const ByteBuffer v1 =
            RansCodec::compress(p, RansFormat::V1Scalar);
        EXPECT_EQ(RansCodec::decompress(v1), p) << p.size();
    }
}

TEST(NumericsCodec, LegacyV1StreamsStillDecode)
{
    // A v1 container has no sentinel: its first word is the payload
    // length. decompress must keep reading those (format versioning
    // guarantee for already-written streams).
    Rng rng(19);
    ByteBuffer data(60000);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(
            static_cast<std::int8_t>(rng.gaussian(0.0, 5.0)));
    const ByteBuffer v1 = RansCodec::compress(data, RansFormat::V1Scalar);
    ASSERT_GE(v1.size(), 4u);
    std::uint32_t first_word;
    std::memcpy(&first_word, v1.data(), 4);
    EXPECT_EQ(first_word, data.size()); // no 0xffffffff sentinel
    EXPECT_EQ(RansCodec::decompress(v1), data);

    const ByteBuffer v2 =
        RansCodec::compress(data, RansFormat::V2Interleaved);
    std::memcpy(&first_word, v2.data(), 4);
    EXPECT_EQ(first_word, 0xffffffffu); // sentinel + version byte
    EXPECT_EQ(v2[4], 2);
    EXPECT_EQ(RansCodec::decompress(v2), data);
}

TEST(NumericsCodec, LzHashChainMatchesGreedySemantics)
{
    Rng rng(23);
    std::vector<ByteBuffer> payloads;
    payloads.push_back({});
    ByteBuffer repetitive(150000);
    for (std::size_t i = 0; i < repetitive.size(); ++i) {
        repetitive[i] = static_cast<std::uint8_t>((i % 96) * 5);
        if (rng.chance(0.01))
            repetitive[i] ^= 0xff;
    }
    payloads.push_back(repetitive);
    ByteBuffer random(50000);
    for (auto &b : random)
        b = static_cast<std::uint8_t>(rng.below(256));
    payloads.push_back(random);
    ByteBuffer overlap; // overlapping matches (run-length style)
    for (int i = 0; i < 5000; ++i)
        overlap.push_back(static_cast<std::uint8_t>(i % 3));
    payloads.push_back(overlap);

    for (const ByteBuffer &p : payloads) {
        const ByteBuffer chain = LzCodec::compress(p);
        const ByteBuffer greedy = LzCodec::compressGreedy(p);
        EXPECT_EQ(LzCodec::decompress(chain), p) << p.size();
        EXPECT_EQ(LzCodec::decompress(greedy), p) << p.size();
        // The chain matcher searches strictly more candidates.
        EXPECT_LE(chain.size(), greedy.size()) << p.size();
    }
}

// ------------------------------------------------------------- gather

TEST(NumericsGather, AccumulateMatchesScalarAcrossDims)
{
    Rng rng(29);
    for (const std::int64_t dim : {1, 3, 4, 8, 11, 64, 103}) {
        constexpr std::size_t kPool = 64;
        std::vector<float> pool(kPool * static_cast<std::size_t>(dim));
        for (float &v : pool)
            v = static_cast<float>(rng.gaussian(0.0, 0.3));
        for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                        std::size_t{7},
                                        std::size_t{256}}) {
            std::vector<const float *> rows(count);
            std::vector<float> weights(count);
            for (std::size_t p = 0; p < count; ++p) {
                rows[p] = pool.data() +
                    rng.below(kPool) * static_cast<std::size_t>(dim);
                weights[p] = static_cast<float>(rng.uniform(0.5, 1.5));
            }
            std::vector<float> a(static_cast<std::size_t>(dim), 0.0f);
            std::vector<float> b(static_cast<std::size_t>(dim), 0.0f);
            tbe_kernels::gatherAccumulate(rows.data(), weights.data(),
                                          count, dim, a.data());
            tbe_kernels::gatherAccumulateScalar(
                rows.data(), weights.data(), count, dim, b.data());
            EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * 4), 0)
                << "dim=" << dim << " count=" << count;
        }
    }
}

// ------------------------------------------------------ simd + stats

TEST(NumericsSimd, AlignedBufferAndRtneBasics)
{
    EXPECT_NE(simd::backendName(), nullptr);
    simd::AlignedBuffer<float> buf(37);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  simd::kAlignment,
              0u);

    // RTNE through the lane-wide converter: ties go to even.
    alignas(64) float in[4] = {0.5f, 1.5f, 2.5f, -0.5f};
    alignas(64) std::int32_t out[4];
    const auto v = simd::toI32Rtne(simd::VecF32::load(in));
    v.store(out);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[1], 2);
    EXPECT_EQ(out[2], 2);
    EXPECT_EQ(out[3], 0);
}

TEST(NumericsStats, CountersAccumulateAndPublish)
{
    numerics::resetStats();
    EXPECT_EQ(numerics::bytesConverted(), 0u);

    std::vector<float> src(100, 1.0f);
    std::vector<std::uint16_t> dst(100);
    convertBuffer(src.data(), dst.data(), 100, DType::FP16);
    EXPECT_EQ(numerics::bytesConverted(), 400u); // input floats
    convertBuffer(dst.data(), src.data(), 100, DType::FP16);
    EXPECT_EQ(numerics::bytesConverted(), 600u); // + input halves

    ByteBuffer data(1000, 0x5a);
    (void)RansCodec::compress(data);
    EXPECT_EQ(numerics::bytesCompressed(), 1000u);
    (void)LzCodec::compress(data);
    EXPECT_EQ(numerics::bytesCompressed(), 2000u);

    numerics::noteGatherRows(42);
    EXPECT_EQ(numerics::gatherRows(), 42u);

    telemetry::MetricRegistry registry;
    numerics::publishNumericsMetrics(registry);
    EXPECT_EQ(registry.counter("numerics.bytes_converted").value(),
              600u);
    EXPECT_EQ(registry.counter("numerics.bytes_compressed").value(),
              2000u);
    EXPECT_EQ(registry.counter("numerics.gather_rows").value(), 42u);

    numerics::resetStats();
    EXPECT_EQ(numerics::bytesConverted(), 0u);
    EXPECT_EQ(numerics::bytesCompressed(), 0u);
    EXPECT_EQ(numerics::gatherRows(), 0u);
}

// Tensor-level fast paths ride the same kernels; spot-check the cast
// round trip stays identical to the per-element accessors.
TEST(NumericsTensor, CastFastPathMatchesElementAccessors)
{
    Rng rng(31);
    Tensor t(Shape{9, 13}, DType::FP32);
    t.fillGaussian(rng, 0.0f, 10.0f);
    for (const DType half : {DType::FP16, DType::BF16}) {
        const Tensor h = t.cast(half);
        for (std::int64_t i = 0; i < t.numel(); ++i) {
            const std::uint16_t expect = half == DType::FP16
                ? fp32ToFp16Bits(t.at(i))
                : fp32ToBf16Bits(t.at(i));
            std::uint16_t got;
            std::memcpy(&got,
                        h.raw().data() + static_cast<std::size_t>(i) * 2,
                        2);
            EXPECT_EQ(got, expect) << "i=" << i;
        }
        const Tensor back = h.cast(DType::FP32);
        for (std::int64_t i = 0; i < t.numel(); ++i)
            EXPECT_EQ(floatBits(back.at(i)), floatBits(h.at(i)))
                << "i=" << i;
    }
}

} // namespace
} // namespace mtia
