// Tests for the deterministic parallel harness: static sharding,
// index-ordered results, exception propagation, Rng::fork substream
// discipline, and end-to-end byte-identity of a Monte-Carlo study at
// 1, 2, and 8 lanes. These run under the tsan preset in CI.

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "fleet/memory_error_study.h"
#include "mem/lpddr.h"
#include "sim/random.h"

namespace mtia {
namespace {

TEST(ParallelTest, ParallelForVisitsEveryIndexOnce)
{
    ScopedParallelism lanes(4);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    parallelFor(n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelTest, ParallelMapKeepsIndexOrder)
{
    ScopedParallelism lanes(8);
    const auto out =
        parallelMap(257, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ParallelTest, MapMatchesSerialAtEveryLaneCount)
{
    const std::size_t n = 113; // prime: uneven shard boundaries
    const auto run = [&] {
        return parallelMap(n, [](std::size_t i) {
            Rng rng(static_cast<std::uint64_t>(i) + 7);
            double acc = 0.0;
            for (int k = 0; k < 32; ++k)
                acc += rng.gaussian(0.0, 1.0);
            return acc;
        });
    };
    std::vector<double> serial;
    {
        ScopedParallelism one(1);
        serial = run();
    }
    for (unsigned lanes : {2u, 3u, 8u}) {
        ScopedParallelism scope(lanes);
        const auto parallel = run();
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(parallel[i], serial[i])
                << "lanes " << lanes << " index " << i;
    }
}

TEST(ParallelTest, EmptyAndSingleElementRanges)
{
    ScopedParallelism lanes(4);
    parallelFor(0, [](std::size_t) { FAIL() << "body ran for n=0"; });
    const auto one =
        parallelMap(1, [](std::size_t i) { return i + 41; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 41u);
}

TEST(ParallelTest, MoreIndicesThanLanesAndViceVersa)
{
    ScopedParallelism lanes(8);
    // n < lanes: only n shards may run.
    const auto small =
        parallelMap(3, [](std::size_t i) { return i * i; });
    EXPECT_EQ(small, (std::vector<std::size_t>{0, 1, 4}));
    // n >> lanes: contiguous static shards cover everything.
    const auto big = parallelMap(10000, [](std::size_t i) { return i; });
    EXPECT_EQ(std::accumulate(big.begin(), big.end(), std::size_t{0}),
              std::size_t{10000} * 9999 / 2);
}

TEST(ParallelTest, LowestIndexedExceptionWins)
{
    ScopedParallelism lanes(4);
    const auto attempt = [&] {
        parallelFor(100, [](std::size_t i) {
            if (i == 17)
                throw std::runtime_error("boom@17");
            if (i == 83)
                throw std::runtime_error("boom@83");
        });
    };
    EXPECT_THROW(attempt(), std::runtime_error);
    try {
        attempt();
    } catch (const std::runtime_error &e) {
        // Shard owning index 17 precedes the shard owning 83, so the
        // surviving exception is deterministic.
        EXPECT_STREQ(e.what(), "boom@17");
    }
}

TEST(ParallelTest, NestedRegionsRunInline)
{
    ScopedParallelism lanes(4);
    std::vector<std::atomic<int>> visits(64);
    parallelFor(8, [&](std::size_t outer) {
        // Inside a shard the harness reports one lane and the nested
        // region must run inline on this thread.
        EXPECT_EQ(parallelLanes(), 1u);
        const auto tid = std::this_thread::get_id();
        parallelFor(8, [&](std::size_t inner) {
            EXPECT_EQ(std::this_thread::get_id(), tid);
            ++visits[outer * 8 + inner];
        });
    });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelTest, ScopedParallelismNestsInnermostWins)
{
    ScopedParallelism outer(8);
    EXPECT_EQ(parallelLanes(), 8u);
    {
        ScopedParallelism inner(2);
        EXPECT_EQ(parallelLanes(), 2u);
    }
    EXPECT_EQ(parallelLanes(), 8u);
}

TEST(ParallelTest, PoolRunsEachShardOnItsOwnLane)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3u);
    std::vector<std::thread::id> ids(4);
    pool.run(4, [&](unsigned shard) {
        ids[shard] = std::this_thread::get_id();
    });
    std::set<std::thread::id> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), 4u);
    EXPECT_EQ(ids[0], std::this_thread::get_id());
}

TEST(RngForkTest, ForkIsPureAndDoesNotAdvanceParent)
{
    Rng parent(1234);
    const std::uint64_t before = Rng(1234).next();
    Rng a = parent.fork(5);
    Rng b = parent.fork(5);
    EXPECT_EQ(a.next(), b.next()); // same index, same substream
    EXPECT_EQ(parent.next(), before); // parent stream untouched
}

TEST(RngForkTest, DistinctIndicesGiveDistinctStreams)
{
    Rng parent(99);
    std::set<std::uint64_t> firsts;
    for (std::uint64_t i = 0; i < 1000; ++i)
        firsts.insert(parent.fork(i).next());
    EXPECT_EQ(firsts.size(), 1000u);
}

TEST(RngForkTest, ForkDependsOnParentState)
{
    Rng a(7);
    Rng b(8);
    EXPECT_NE(a.fork(0).next(), b.fork(0).next());
    // Advancing the parent changes what its forks see.
    Rng c(7);
    (void)c.next();
    EXPECT_NE(a.fork(0).next(), c.fork(0).next());
}

TEST(RngForkTest, SpareGaussianDoesNotLeakAcrossFork)
{
    // Box-Muller generates pairs and caches the spare. A fork taken
    // after an odd number of gaussian() calls must not inherit that
    // cached spare: the child substream is a function of the parent's
    // counter state only.
    // After one gaussian() the spare is cached; after two it has been
    // consumed. In both cases the underlying counter state is the
    // same, so the forks must be identical — any difference means the
    // spare leaked into the child.
    Rng odd(42);
    (void)odd.gaussian(0.0, 1.0); // leaves a spare cached
    Rng even(42);
    (void)even.gaussian(0.0, 1.0);
    (void)even.gaussian(0.0, 1.0); // consumes the spare
    Rng fork_odd = odd.fork(3);
    Rng fork_even = even.fork(3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(fork_odd.gaussian(0.0, 1.0),
                  fork_even.gaussian(0.0, 1.0));

    // Interleaving parent gaussians with forked-child gaussians stays
    // reproducible: child draws never splice the parent's pair cache.
    Rng p1(5);
    Rng p2(5);
    const double g1 = p1.gaussian(0.0, 1.0);
    const double g2 = p2.gaussian(0.0, 1.0);
    EXPECT_EQ(g1, g2);
    Rng c1 = p1.fork(0);
    const double child_draw = c1.gaussian(0.0, 1.0);
    (void)child_draw;
    // The parent's next gaussian is the cached spare in both cases —
    // untouched by the child's own draws.
    EXPECT_EQ(p1.gaussian(0.0, 1.0), p2.gaussian(0.0, 1.0));
}

TEST(ParallelDeterminismTest, MemoryErrorStudyIsLaneCountInvariant)
{
    LpddrConfig cfg;
    cfg.peak_bandwidth = gbPerSec(204.8);
    cfg.bit_error_rate = 1.9e-20;
    const LpddrChannel channel(cfg);

    const auto run = [&] {
        MemoryErrorStudy study(61);
        const FleetErrorReport fleet =
            study.sampleFleet(channel, 400, 90.0, 64_GiB);
        const auto regions = study.injectAllRegions(500);
        return std::pair<FleetErrorReport,
                         std::vector<InjectionReport>>(fleet, regions);
    };

    std::pair<FleetErrorReport, std::vector<InjectionReport>> serial;
    {
        ScopedParallelism one(1);
        serial = run();
    }
    for (unsigned lanes : {2u, 8u}) {
        ScopedParallelism scope(lanes);
        const auto parallel = run();
        EXPECT_EQ(parallel.first.servers_with_errors,
                  serial.first.servers_with_errors);
        EXPECT_EQ(parallel.first.cards_with_errors,
                  serial.first.cards_with_errors);
        EXPECT_EQ(parallel.first.single_card_servers,
                  serial.first.single_card_servers);
        ASSERT_EQ(parallel.second.size(), serial.second.size());
        for (std::size_t i = 0; i < serial.second.size(); ++i) {
            EXPECT_EQ(parallel.second[i].benign,
                      serial.second[i].benign);
            EXPECT_EQ(parallel.second[i].corrupted,
                      serial.second[i].corrupted);
            EXPECT_EQ(parallel.second[i].nan, serial.second[i].nan);
            EXPECT_EQ(parallel.second[i].out_of_bounds,
                      serial.second[i].out_of_bounds);
        }
    }
}

} // namespace
} // namespace mtia
