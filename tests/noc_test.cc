/**
 * @file
 * Tests for the NoC substrate: leaky-bucket shaping, packet
 * fragmentation, broadcast-read amplification, and wait-for-graph
 * deadlock detection (randomized against a brute-force cycle oracle).
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>

#include "noc/deadlock.h"
#include "noc/noc.h"
#include "noc/traffic_shaper.h"
#include "sim/random.h"

namespace mtia {
namespace {

TEST(Shaper, BurstPassesImmediately)
{
    TrafficShaper s(gbPerSec(1.0), 4096);
    EXPECT_EQ(s.offer(0, 4096), 0u);
}

TEST(Shaper, SustainedRateIsEnforced)
{
    TrafficShaper s(gbPerSec(1.0), 1024);
    Tick t = 0;
    // Send 10 MB in 1 KB chunks starting at time 0; the last chunk
    // cannot start before (10MB - burst) / rate.
    for (int i = 0; i < 10240; ++i)
        t = s.offer(0, 1024);
    const double expected_s = (10240.0 * 1024.0 - 1024.0) / 1e9;
    EXPECT_NEAR(toSeconds(t), expected_s, 1e-6);
}

TEST(Shaper, TokensRefillOverTime)
{
    TrafficShaper s(gbPerSec(1.0), 2048);
    s.offer(0, 2048); // drain the bucket
    EXPECT_NEAR(s.tokensAt(fromMicros(1.0)), 1000.0, 1.0);
    EXPECT_NEAR(s.tokensAt(fromMicros(10.0)), 2048.0, 1.0); // capped
}

TEST(Shaper, IdleDoesNotAccumulateBeyondBurst)
{
    TrafficShaper s(gbPerSec(10.0), 1024);
    // After a long idle the bucket holds exactly one burst.
    EXPECT_EQ(s.offer(fromMillis(100.0), 1024), fromMillis(100.0));
    // And an immediate second burst must wait.
    EXPECT_GT(s.offer(fromMillis(100.0), 1024), fromMillis(100.0));
}

TEST(Fragmenter, CountsAndWireBytes)
{
    PacketFragmenter f{.max_payload = 256, .header_bytes = 16};
    EXPECT_EQ(f.packetCount(0), 0u);
    EXPECT_EQ(f.packetCount(1), 1u);
    EXPECT_EQ(f.packetCount(256), 1u);
    EXPECT_EQ(f.packetCount(257), 2u);
    EXPECT_EQ(f.wireBytes(1024), 1024u + 4 * 16u);
    const auto frags = f.fragment(600);
    ASSERT_EQ(frags.size(), 3u);
    EXPECT_EQ(frags[0], 256u);
    EXPECT_EQ(frags[2], 88u);
}

TEST(Noc, BroadcastEliminatesRedundantTraffic)
{
    NocConfig cfg;
    cfg.broadcast_reads = true;
    NocModel with(cfg);
    cfg.broadcast_reads = false;
    NocModel without(cfg);

    const Bytes tile = 1_MiB;
    const Tick t_with = with.broadcastReadTime(tile, 8);
    const Tick t_without = without.broadcastReadTime(tile, 8);
    EXPECT_GT(t_without, 7 * t_with);
    EXPECT_EQ(with.stats().redundant_bytes, 0u);
    EXPECT_GT(without.stats().redundant_bytes, 7 * tile);
}

TEST(Noc, DramEdgeEfficiencyMatchesPaperRegimes)
{
    NocModel noc(NocConfig{});
    // Coordinated broadcast loading exceeds 95% of DRAM bandwidth.
    EXPECT_GT(noc.dramEdgeEfficiency(8, true), 0.95);
    // Uncoordinated per-column reads land near half the peak.
    const double uncoord = noc.dramEdgeEfficiency(8, false);
    EXPECT_GT(uncoord, 0.4);
    EXPECT_LT(uncoord, 0.6);
}

TEST(Deadlock, NoCycleOnChain)
{
    WaitForGraph g;
    g.addWait("a", "b");
    g.addWait("b", "c");
    g.addWait("c", "d");
    EXPECT_FALSE(g.hasDeadlock());
}

TEST(Deadlock, DetectsSimpleCycle)
{
    WaitForGraph g;
    g.addWait("a", "b");
    g.addWait("b", "a");
    EXPECT_TRUE(g.hasDeadlock());
    const auto cycle = g.findCycle();
    ASSERT_EQ(cycle.size(), 2u);
    EXPECT_EQ(cycle[0], "a");
}

TEST(Deadlock, TheProductionIncidentCycle)
{
    // Section 5.5: Control Core waits on a host read; the host read
    // is ordered behind earlier PCIe transactions; those are
    // back-pressured by the NoC serialization point; the NoC waits on
    // the Control Core. Removing the Control Core's host access (the
    // firmware mitigation) breaks the cycle.
    WaitForGraph g;
    g.addWait("control-core", "pcie-read-response");
    g.addWait("pcie-read-response", "pcie-earlier-txns");
    g.addWait("pcie-earlier-txns", "noc-serialization");
    g.addWait("noc-serialization", "control-core");
    EXPECT_TRUE(g.hasDeadlock());
    const auto cycle = g.findCycle();
    EXPECT_EQ(cycle.size(), 4u);

    g.removeWait("control-core", "pcie-read-response");
    EXPECT_FALSE(g.hasDeadlock());
}

TEST(Deadlock, RandomGraphsAgreeWithOracle)
{
    // Property: detector output equals a brute-force reachability
    // oracle on random digraphs.
    Rng rng(19);
    for (int trial = 0; trial < 200; ++trial) {
        const int n = 2 + static_cast<int>(rng.below(8));
        WaitForGraph g;
        std::set<std::pair<int, int>> edges;
        const int m = static_cast<int>(rng.below(12));
        for (int e = 0; e < m; ++e) {
            const int a = static_cast<int>(rng.below(n));
            const int b = static_cast<int>(rng.below(n));
            if (a == b)
                continue;
            edges.insert({a, b});
            g.addWait("n" + std::to_string(a), "n" + std::to_string(b));
        }
        // Oracle: DFS from each node looking for a path back to it.
        bool oracle = false;
        for (int start = 0; start < n && !oracle; ++start) {
            std::set<int> seen;
            std::function<bool(int)> dfs = [&](int u) {
                for (const auto &[a, b] : edges) {
                    if (a != u)
                        continue;
                    if (b == start)
                        return true;
                    if (seen.insert(b).second && dfs(b))
                        return true;
                }
                return false;
            };
            oracle = dfs(start);
        }
        EXPECT_EQ(g.hasDeadlock(), oracle) << "trial " << trial;
    }
}

TEST(Shaper, EventDrivenSendFiresAtDepartureTime)
{
    TrafficShaper s(gbPerSec(1.0), 2048);
    EventQueue eq;
    std::vector<Tick> departures;
    // First packet drains the bucket and departs immediately; the
    // second must wait for refill.
    const Tick d0 = s.send(eq, 2048, [&] { departures.push_back(eq.now()); });
    const Tick d1 = s.send(eq, 1024, [&] { departures.push_back(eq.now()); });
    EXPECT_EQ(d0, 0u);
    EXPECT_GT(d1, d0);
    eq.run();
    EXPECT_EQ(departures, (std::vector<Tick>{d0, d1}));
    EXPECT_EQ(eq.now(), d1);
}

} // namespace
} // namespace mtia
