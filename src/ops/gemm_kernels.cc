#include "ops/gemm_kernels.h"

#include <cstdint>
#include <vector>

#include "core/check.h"
#include "tensor/dtype.h"

namespace mtia::gemm_kernels
{
namespace
{

/**
 * Round-tripped fp32 copy of a tensor: the reference gemm's
 * `roundTrip(at2(i,x), compute_dtype)` hoisted out of the k loop.
 * Elementwise, so hoisting is value-identical; halves go through the
 * vectorized convertBuffer pair (itself bit-identical to the scalar
 * conversions).
 */
std::vector<float>
roundTrippedFloats(const Tensor &t, DType dt)
{
    std::vector<float> out = t.toFloats();
    if (dt == DType::FP32 || out.empty())
        return out;
    if (dt == DType::FP16 || dt == DType::BF16) {
        std::vector<std::uint16_t> bits(out.size());
        convertBuffer(out.data(), bits.data(), out.size(), dt);
        convertBuffer(bits.data(), out.data(), out.size(), dt);
        return out;
    }
    for (float &x : out)
        x = roundTrip(x, dt);
    return out;
}

struct ActEpilogue
{
    float *c;
    std::int64_t n;
    Nonlinearity f;
    bool use_lut;
};

// Runs on pool workers inside the GEMM's parallel region, once per
// finished row block. Replicates applyNonlinearity in dense_ops.cc:
// use_lut → SimdEngine::apply semantics (ReLU exact on ALUs, LUT
// otherwise), else the exact reference.
void
applyActivationRows(void *arg, std::int64_t r0, std::int64_t r1)
{
    const auto *e = static_cast<const ActEpilogue *>(arg);
    float *p = e->c + r0 * e->n;
    const std::int64_t count = (r1 - r0) * e->n;
    if (e->use_lut) {
        const SimdEngine &eng = sharedSimdEngine();
        for (std::int64_t i = 0; i < count; ++i)
            p[i] = eng.applyOne(e->f, p[i]);
        return;
    }
    for (std::int64_t i = 0; i < count; ++i)
        p[i] = nonlinearityExact(e->f, p[i]);
}

struct DequantEpilogue
{
    const std::int32_t *acc;
    float *out;
    const QuantizedTensor *qa;
    float sb;
    std::int64_t n;
    bool has_activation;
    Nonlinearity f;
    bool use_lut;
};

// Dequant exactly as DotProductEngine::gemmInt8: (float(acc)*sa)*sb,
// sa per activation row, sb the per-tensor weight scale; then the
// optional activation, all while the block is cache-hot.
void
dequantRows(void *arg, std::int64_t r0, std::int64_t r1)
{
    const auto *e = static_cast<const DequantEpilogue *>(arg);
    for (std::int64_t i = r0; i < r1; ++i) {
        const float sa = e->qa->scaleFor(i);
        const std::int32_t *src = e->acc + i * e->n;
        float *dst = e->out + i * e->n;
        for (std::int64_t j = 0; j < e->n; ++j)
            dst[j] = static_cast<float>(src[j]) * sa * e->sb;
    }
    if (e->has_activation) {
        ActEpilogue act{e->out, e->n, e->f, e->use_lut};
        applyActivationRows(&act, r0, r1);
    }
}

void
checkGemmShapes(const Tensor &a, const Tensor &b)
{
    MTIA_CHECK_EQ(a.shape().rank(), 2u) << ": gemm lhs must be rank-2";
    MTIA_CHECK_EQ(b.shape().rank(), 2u) << ": gemm rhs must be rank-2";
    MTIA_CHECK_EQ(a.shape().dim(1), b.shape().dim(0))
        << ": gemm inner dimensions must match";
}

} // namespace

const SimdEngine &
sharedSimdEngine()
{
    static const SimdEngine engine;
    return engine;
}

Tensor
gemm(const Tensor &a, const Tensor &b, DType compute_dtype)
{
    return gemm(a, b, compute_dtype, simd::activeIsa(),
                simd::GemmBlocking{});
}

Tensor
gemm(const Tensor &a, const Tensor &b, DType compute_dtype,
     simd::SimdIsa isa, const simd::GemmBlocking &blk)
{
    checkGemmShapes(a, b);
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    const std::int64_t n = b.shape().dim(1);
    const std::vector<float> av = roundTrippedFloats(a, compute_dtype);
    const std::vector<float> bv = roundTrippedFloats(b, compute_dtype);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    simd::gemmF32(av.data(), bv.data(), c.data(), m, n, k, isa, blk);
    return Tensor::fromFloats(c, Shape{m, n}, DType::FP32);
}

Tensor
fusedGemmActivation(const Tensor &a, const Tensor &b, DType compute_dtype,
                    Nonlinearity f, bool use_lut)
{
    return fusedGemmActivation(a, b, compute_dtype, f, use_lut,
                               simd::activeIsa(), simd::GemmBlocking{});
}

Tensor
fusedGemmActivation(const Tensor &a, const Tensor &b, DType compute_dtype,
                    Nonlinearity f, bool use_lut, simd::SimdIsa isa,
                    const simd::GemmBlocking &blk)
{
    checkGemmShapes(a, b);
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    const std::int64_t n = b.shape().dim(1);
    const std::vector<float> av = roundTrippedFloats(a, compute_dtype);
    const std::vector<float> bv = roundTrippedFloats(b, compute_dtype);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    ActEpilogue ep{c.data(), n, f, use_lut};
    simd::gemmF32(av.data(), bv.data(), c.data(), m, n, k, isa, blk,
                  &applyActivationRows, &ep);
    return Tensor::fromFloats(c, Shape{m, n}, DType::FP32);
}

Tensor
fusedQuantizedGemm(const Tensor &a, const QuantizedTensor &w,
                   bool has_activation, Nonlinearity f, bool use_lut)
{
    return fusedQuantizedGemm(a, w, has_activation, f, use_lut,
                              simd::activeIsa(), simd::GemmBlocking{});
}

Tensor
fusedQuantizedGemm(const Tensor &a, const QuantizedTensor &w,
                   bool has_activation, Nonlinearity f, bool use_lut,
                   simd::SimdIsa isa, const simd::GemmBlocking &blk)
{
    checkGemmShapes(a, w.values);
    MTIA_CHECK_EQ(w.scales.size(), 1u)
        << ": fusedQuantizedGemm expects per-tensor weight scales";
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    const std::int64_t n = w.values.shape().dim(1);
    const QuantizedTensor qa =
        quantizeDynamic(a, QuantGranularity::PerRow);
    const auto *ai =
        reinterpret_cast<const std::int8_t *>(qa.values.raw().data());
    const auto *wi =
        reinterpret_cast<const std::int8_t *>(w.values.raw().data());
    std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
    std::vector<float> out(static_cast<std::size_t>(m * n));
    DequantEpilogue ep{acc.data(), out.data(), &qa,       w.scales[0],
                       n,          has_activation, f,     use_lut};
    simd::gemmI8(ai, wi, acc.data(), m, n, k, isa, blk, &dequantRows,
                 &ep);
    return Tensor::fromFloats(out, Shape{m, n}, DType::FP32);
}

} // namespace mtia::gemm_kernels
