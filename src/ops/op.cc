#include "ops/op.h"

// Currently header-only; this translation unit anchors the vtable.

namespace mtia {
} // namespace mtia
