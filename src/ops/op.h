#ifndef MTIA_OPS_OP_H_
#define MTIA_OPS_OP_H_

/**
 * @file
 * Operator abstraction shared by the graph IR, the functional
 * executor, and the kernel cost model. Every operator can both
 * compute real tensors (through the PE units' functional paths) and
 * report its timing on a Device (through the KernelCostModel), so the
 * same graph drives numerics experiments and performance experiments.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chip/kernel_cost_model.h"
#include "sim/random.h"
#include "tensor/tensor.h"

namespace mtia {

/** Runtime context for functional execution. */
struct OpContext
{
    Rng *rng = nullptr;       ///< for ops that sample (TBE indices)
    bool use_lut_simd = true; ///< LUT approximation vs exact math
};

/**
 * Per-node cost context, produced by the placement planner and the
 * autotuner.
 */
struct CostContext
{
    Placement weights = Placement::Llc;
    Placement activations = Placement::Lls;
    Placement output = Placement::Lls;
    bool dynamic_int8 = false;
    bool sparse_24 = false;
    /** Fused into an already-running job: no per-op launch. */
    bool fused = false;
    /** SRAM hit rate for embedding fetches. */
    double tbe_hit_rate = 0.5;
    bool coordinated_loading = true;
};

/** Base class of all operators. */
class Op
{
  public:
    virtual ~Op() = default;

    /** Operator kind, e.g. "fc", "layernorm" (used by fusion passes). */
    virtual std::string kind() const = 0;

    /** Number of graph inputs this op consumes. */
    virtual std::size_t arity() const = 0;

    /** True when run() executes through a fused kernel (one pass over
     * the output tiles instead of a chain of elementwise passes). The
     * executor counts these dispatches in telemetry. */
    virtual bool fusedKernel() const { return false; }

    /** Output shape given input shapes. */
    virtual Shape outputShape(const std::vector<Shape> &inputs) const = 0;

    /** Functional execution. */
    virtual Tensor run(const std::vector<Tensor> &inputs,
                       OpContext &ctx) const = 0;

    /** Timing on a device. */
    virtual KernelTime cost(const KernelCostModel &km,
                            const CostContext &ctx) const = 0;

    /** Model parameters (weights) held by this op, in bytes. */
    virtual Bytes weightBytes() const { return 0; }

    /** Floating-point work per invocation. */
    virtual double flops() const = 0;

    /** Debug string. */
    virtual std::string toString() const { return kind(); }
};

using OpPtr = std::shared_ptr<Op>;

} // namespace mtia

#endif // MTIA_OPS_OP_H_
