#include "ops/attention_ops.h"

#include <cmath>

#include "pe/mlu.h"
#include "pe/simd_engine.h"
#include "core/check.h"
#include "ops/gemm_kernels.h"

namespace mtia {

MhaOp::MhaOp(std::int64_t batch, std::int64_t seq, std::int64_t dim,
             std::int64_t heads, DType dtype, std::uint64_t weight_seed)
    : batch_(batch),
      seq_(seq),
      dim_(dim),
      heads_(heads),
      dtype_(dtype),
      weight_seed_(weight_seed)
{
    MTIA_CHECK_GT(heads_, 0) << ": MhaOp head count";
    MTIA_CHECK_EQ(dim_ % heads_, 0)
        << ": MhaOp dim must divide evenly into heads";
}

const std::vector<Tensor> &
MhaOp::projections() const
{
    if (proj_.empty()) {
        Rng rng(weight_seed_);
        const float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
        for (int i = 0; i < 4; ++i) {
            Tensor w(Shape{dim_, dim_}, dtype_);
            w.fillGaussian(rng, 0.0f, scale);
            proj_.push_back(std::move(w));
        }
    }
    return proj_;
}

Tensor
MhaOp::run(const std::vector<Tensor> &inputs, OpContext &ctx) const
{
    // [B, S*D] and [B*S, D] share a memory layout; normalize the view.
    const Tensor x = MemoryLayoutUnit::reshape(
        inputs[0], Shape{batch_ * seq_, dim_});
    const auto &w = projections();
    // Projections go through the runtime-dispatched blocked GEMM
    // (bit-identical to the DPE reference path it replaced).
    const Tensor q = gemm_kernels::gemm(x, w[0], dtype_);
    const Tensor k = gemm_kernels::gemm(x, w[1], dtype_);
    const Tensor v = gemm_kernels::gemm(x, w[2], dtype_);

    const std::int64_t dh = dim_ / heads_;
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
    Tensor attn_out(Shape{batch_ * seq_, dim_}, DType::FP32);

    for (std::int64_t b = 0; b < batch_; ++b) {
        for (std::int64_t h = 0; h < heads_; ++h) {
            // Scores for this (batch, head): [S, S].
            Tensor scores(Shape{seq_, seq_}, DType::FP32);
            for (std::int64_t i = 0; i < seq_; ++i) {
                for (std::int64_t j = 0; j < seq_; ++j) {
                    double dot = 0.0;
                    for (std::int64_t d = 0; d < dh; ++d) {
                        dot += static_cast<double>(
                                   q.at2(b * seq_ + i, h * dh + d)) *
                            static_cast<double>(
                                   k.at2(b * seq_ + j, h * dh + d));
                    }
                    scores.set2(i, j,
                                static_cast<float>(dot) * inv_sqrt);
                }
            }
            // Row softmax through the (LUT) exp path.
            for (std::int64_t i = 0; i < seq_; ++i) {
                float mx = scores.at2(i, 0);
                for (std::int64_t j = 1; j < seq_; ++j)
                    mx = std::max(mx, scores.at2(i, j));
                Tensor row(Shape{seq_}, DType::FP32);
                for (std::int64_t j = 0; j < seq_; ++j)
                    row.set(j, scores.at2(i, j) - mx);
                const Tensor e = ctx.use_lut_simd
                    ? SimdEngine().apply(Nonlinearity::Exp, row)
                    : SimdEngine::applyExact(Nonlinearity::Exp, row);
                double sum = 0.0;
                for (std::int64_t j = 0; j < seq_; ++j)
                    sum += static_cast<double>(e.at(j));
                for (std::int64_t j = 0; j < seq_; ++j)
                    scores.set2(i, j,
                                static_cast<float>(
                                    static_cast<double>(e.at(j)) / sum));
            }
            // Attention output A * V for this head.
            for (std::int64_t i = 0; i < seq_; ++i) {
                for (std::int64_t d = 0; d < dh; ++d) {
                    double acc = 0.0;
                    for (std::int64_t j = 0; j < seq_; ++j) {
                        acc += static_cast<double>(scores.at2(i, j)) *
                            static_cast<double>(
                                v.at2(b * seq_ + j, h * dh + d));
                    }
                    attn_out.set2(b * seq_ + i, h * dh + d,
                                  static_cast<float>(acc));
                }
            }
        }
    }
    return MemoryLayoutUnit::reshape(
        gemm_kernels::gemm(attn_out, w[3], dtype_), inputs[0].shape());
}

KernelTime
MhaOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    const std::int64_t rows = batch_ * seq_;
    const std::int64_t dh = dim_ / heads_;
    FcOptions fc_opt;
    fc_opt.dtype = dtype_;
    fc_opt.weights = ctx.weights;
    fc_opt.activations = ctx.activations;
    fc_opt.output = ctx.output;
    fc_opt.include_launch = false; // composed below

    KernelTime total;
    total.launch = ctx.fused ? 0 : km.device().jobLaunchTime();
    Tick sum = total.launch;

    // QKV + output projections.
    const KernelTime proj =
        km.fc(FcShape{rows, dim_, dim_}, fc_opt);
    sum += 4 * proj.total;

    // Q*K^T and A*V, batched over (batch, head).
    const KernelTime qk = km.fc(
        FcShape{batch_ * heads_ * seq_, seq_, dh}, fc_opt);
    sum += 2 * qk.total;

    // Softmax over every score row.
    const KernelTime sm =
        km.softmax(batch_ * heads_ * seq_, seq_, false);
    sum += sm.total;

    // Head plumbing: Slice+Reshape+Concat chains for Q, K, V and the
    // output, or a single custom transpose kernel.
    const Bytes act_bytes = static_cast<Bytes>(rows) * dim_ * 2;
    if (custom_transpose_) {
        sum += km.simdOp(0, 0.0, act_bytes * 2, false).total;
    } else {
        for (int chain = 0; chain < 4; ++chain) {
            // Three layout ops, each a separate (unfused) kernel.
            for (int op = 0; op < 3; ++op)
                sum += km.simdOp(0, 0.0, act_bytes * 2, true).total;
        }
    }

    total.total = sum;
    total.compute = sum - total.launch;
    total.bottleneck = "composite";
    return total;
}

Bytes
MhaOp::weightBytes() const
{
    return static_cast<Bytes>(4) * dim_ * dim_ * dtypeSize(dtype_);
}

double
MhaOp::flops() const
{
    const double rows =
        static_cast<double>(batch_) * static_cast<double>(seq_);
    const double dim = static_cast<double>(dim_);
    const double proj = 4.0 * 2.0 * rows * dim * dim;
    const double attn = 2.0 * 2.0 * rows * static_cast<double>(seq_) *
        static_cast<double>(dim_ / heads_);
    return proj + attn;
}

RaggedAttentionOp::RaggedAttentionOp(std::int64_t batch,
                                     double mean_history,
                                     std::int64_t max_history,
                                     std::int64_t dim,
                                     std::int64_t heads,
                                     std::int64_t bias_buckets,
                                     std::uint64_t seed)
    : batch_(batch),
      mean_history_(mean_history),
      max_history_(max_history),
      dim_(dim),
      heads_(heads),
      bias_buckets_(bias_buckets),
      seed_(seed)
{
    MTIA_CHECK_GT(heads_, 0) << ": RaggedAttentionOp head count";
    MTIA_CHECK_EQ(dim_ % heads_, 0)
        << ": RaggedAttentionOp dim must divide into heads";
}

float
RaggedAttentionOp::biasFor(std::int64_t distance) const
{
    if (bias_table_.empty()) {
        Rng rng(seed_);
        bias_table_.resize(static_cast<std::size_t>(bias_buckets_));
        for (auto &b : bias_table_)
            b = static_cast<float>(rng.gaussian(0.0, 0.1));
    }
    // Logarithmic distance bucketing, as positional-bias tables use.
    std::int64_t bucket = 0;
    if (distance > 0) {
        bucket = static_cast<std::int64_t>(
            std::log2(static_cast<double>(distance)) * 8.0);
    }
    bucket = std::min(bucket, bias_buckets_ - 1);
    return bias_table_[static_cast<std::size_t>(bucket)];
}

Tensor
RaggedAttentionOp::run(const std::vector<Tensor> &inputs,
                       OpContext &ctx) const
{
    // Input: [B, L, D] padded histories; causal ragged attention with
    // a gathered relative-position bias, SiLU-gated as in HSTU.
    const Tensor &x = inputs[0];
    const std::int64_t l = x.shape().dim(1);
    Tensor out(x.shape(), DType::FP32);
    const std::int64_t dh = dim_ / heads_;
    const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
    SimdEngine se;

    for (std::int64_t b = 0; b < batch_; ++b) {
        for (std::int64_t h = 0; h < heads_; ++h) {
            for (std::int64_t i = 0; i < l; ++i) {
                // Causal window: keys 0..i.
                std::vector<float> score(
                    static_cast<std::size_t>(i) + 1);
                for (std::int64_t j = 0; j <= i; ++j) {
                    double dot = 0.0;
                    for (std::int64_t d = 0; d < dh; ++d) {
                        dot += static_cast<double>(x.at(
                                   (b * l + i) * dim_ + h * dh + d)) *
                            static_cast<double>(
                                x.at((b * l + j) * dim_ + h * dh + d));
                    }
                    score[static_cast<std::size_t>(j)] =
                        static_cast<float>(dot) * inv_sqrt +
                        biasFor(i - j);
                }
                // HSTU uses a pointwise SiLU gate rather than softmax.
                for (auto &s : score) {
                    s = ctx.use_lut_simd
                        ? se.apply(Nonlinearity::Silu,
                                   Tensor::fromFloats({s}, Shape{1}))
                              .at(0)
                        : nonlinearityExact(Nonlinearity::Silu, s);
                }
                for (std::int64_t d = 0; d < dh; ++d) {
                    double acc = 0.0;
                    for (std::int64_t j = 0; j <= i; ++j) {
                        acc += static_cast<double>(
                                   score[static_cast<std::size_t>(j)]) *
                            static_cast<double>(
                                x.at((b * l + j) * dim_ + h * dh + d));
                    }
                    out.set((b * l + i) * dim_ + h * dh + d,
                            static_cast<float>(
                                acc / static_cast<double>(i + 1)));
                }
            }
        }
    }
    return out;
}

KernelTime
RaggedAttentionOp::cost(const KernelCostModel &km,
                        const CostContext &ctx) const
{
    // Ragged execution works on true history lengths (expected value
    // E), not the padded maximum: that is the point of jagged tensors.
    const auto e = static_cast<std::int64_t>(mean_history_);
    const std::int64_t dh = dim_ / heads_;
    FcOptions fc_opt;
    fc_opt.weights = Placement::Lls;
    fc_opt.activations = ctx.activations;
    fc_opt.output = ctx.output;
    fc_opt.include_launch = false;

    KernelTime total;
    total.launch = ctx.fused ? 0 : km.device().jobLaunchTime();
    Tick sum = total.launch;

    // Q*K^T and (gated scores)*V over causal windows: ~E^2/2 each.
    const KernelTime qk = km.fc(
        FcShape{batch_ * heads_ * e, e / 2 + 1, dh}, fc_opt);
    sum += 2 * qk.total;

    // Bias: index computation on the RISC-V vector core plus the
    // piecewise LUT gather. The limited LUT memory forces the bias
    // table in segments: charge 3 SIMD ops per score plus a reload
    // pass of traffic.
    const std::int64_t scores = batch_ * heads_ * e * (e / 2 + 1);
    sum += km.simdOp(scores, 3.0, static_cast<Bytes>(scores) * 2,
                     false)
               .total;

    // SiLU gating of the scores.
    sum += km.simdOp(scores, 1.0, 0, false).total;

    total.total = sum;
    total.compute = sum - total.launch;
    total.bottleneck = "composite";
    return total;
}

Bytes
RaggedAttentionOp::weightBytes() const
{
    return static_cast<Bytes>(bias_buckets_) * 4;
}

double
RaggedAttentionOp::flops() const
{
    const double e = mean_history_;
    return 2.0 * 2.0 * static_cast<double>(batch_) *
        static_cast<double>(heads_) * e * (e / 2.0) *
        static_cast<double>(dim_ / heads_);
}

} // namespace mtia
