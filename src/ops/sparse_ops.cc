#include "ops/sparse_ops.h"

#include <cmath>

#include "mem/llc.h"
#include "core/check.h"

namespace mtia {

namespace {

/** splitmix-style hash for deterministic pseudo-weights. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

TbeOp::TbeOp(TbeTableSpec spec, std::int64_t batch, std::int64_t pooling,
             bool weighted, std::uint64_t table_seed)
    : spec_(spec),
      batch_(batch),
      pooling_(pooling),
      weighted_(weighted),
      table_seed_(table_seed)
{
    MTIA_CHECK_GT(spec_.tables, 0) << ": TbeOp table count";
    MTIA_CHECK_GT(batch_, 0) << ": TbeOp batch size";
    MTIA_CHECK_GT(pooling_, 0) << ": TbeOp pooling factor";
}

float
TbeOp::rowValue(std::int64_t table, std::int64_t row,
                std::int64_t col) const
{
    const std::uint64_t h = mix(
        table_seed_ ^ mix(static_cast<std::uint64_t>(table) << 40) ^
        mix(static_cast<std::uint64_t>(row) << 8) ^
        static_cast<std::uint64_t>(col));
    // Map to roughly N(0, 0.1): embeddings are small-magnitude.
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    return static_cast<float>(u * 0.17);
}

Tensor
TbeOp::run(const std::vector<Tensor> &, OpContext &ctx) const
{
    MTIA_CHECK(ctx.rng != nullptr)
        << ": TbeOp::run needs an rng for index sampling";
    ZipfSampler zipf(static_cast<std::uint64_t>(spec_.rows_per_table),
                     spec_.zipf_alpha);
    Tensor out(Shape{batch_, spec_.tables * spec_.dim}, DType::FP32);
    for (std::int64_t b = 0; b < batch_; ++b) {
        for (std::int64_t t = 0; t < spec_.tables; ++t) {
            for (std::int64_t p = 0; p < pooling_; ++p) {
                const auto row = static_cast<std::int64_t>(
                    zipf.sample(*ctx.rng));
                const float w = weighted_
                    ? static_cast<float>(ctx.rng->uniform(0.5, 1.5))
                    : 1.0f;
                for (std::int64_t d = 0; d < spec_.dim; ++d) {
                    const std::int64_t idx =
                        b * spec_.tables * spec_.dim + t * spec_.dim + d;
                    out.set(idx, out.at(idx) +
                                     w * rowValue(t, row, d));
                }
            }
        }
    }
    return out;
}

double
TbeOp::expectedHitRate(Bytes llc_bytes) const
{
    const Bytes row_bytes =
        static_cast<Bytes>(spec_.dim) * dtypeSize(spec_.dtype);
    const std::uint64_t cache_rows = llc_bytes / row_bytes;
    // Tables share the cache; model them as one popularity universe.
    const std::uint64_t universe = static_cast<std::uint64_t>(
        spec_.tables * spec_.rows_per_table);
    const std::uint64_t per_table_cache =
        std::min<std::uint64_t>(cache_rows, universe);
    return zipfLruHitRate(per_table_cache, universe, spec_.zipf_alpha);
}

KernelTime
TbeOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    TbeShape shape;
    shape.tables = spec_.tables;
    shape.batch = batch_;
    shape.pooling = pooling_;
    shape.dim = spec_.dim;
    shape.dtype = spec_.dtype;
    TbeOptions opt;
    opt.sram_hit_rate = ctx.tbe_hit_rate;
    opt.weighted = weighted_;
    opt.include_launch = !ctx.fused;
    return km.tbe(shape, opt);
}

double
TbeOp::flops() const
{
    return static_cast<double>(spec_.tables) *
        static_cast<double>(batch_) * static_cast<double>(pooling_) *
        static_cast<double>(spec_.dim) * (weighted_ ? 2.0 : 1.0);
}

std::string
TbeOp::toString() const
{
    return std::string("tbe:") + (weighted_ ? "w" : "u") + ":" +
        std::to_string(spec_.tables) + "x" + std::to_string(batch_) +
        "x" + std::to_string(pooling_) + "x" +
        std::to_string(spec_.dim);
}

SequenceTbeOp::SequenceTbeOp(TbeTableSpec spec, std::int64_t batch,
                             double mean_history,
                             std::int64_t max_history,
                             std::uint64_t seed)
    : spec_(spec),
      batch_(batch),
      mean_history_(mean_history),
      max_history_(max_history),
      seed_(seed)
{
}

Tensor
SequenceTbeOp::run(const std::vector<Tensor> &, OpContext &ctx) const
{
    MTIA_CHECK(ctx.rng != nullptr) << ": SequenceTbeOp::run needs an rng";
    const JaggedTensor hist = JaggedTensor::randomHistory(
        *ctx.rng, batch_, spec_.dim, mean_history_, max_history_);
    return hist.toDense(max_history_);
}

KernelTime
SequenceTbeOp::cost(const KernelCostModel &km,
                    const CostContext &ctx) const
{
    // Expected events: mean history per item, one row each, no pool.
    TbeShape shape;
    shape.tables = 1;
    shape.batch = batch_;
    shape.pooling =
        std::max<std::int64_t>(1,
                               static_cast<std::int64_t>(mean_history_));
    shape.dim = spec_.dim;
    shape.dtype = spec_.dtype;
    TbeOptions opt;
    opt.sram_hit_rate = ctx.tbe_hit_rate;
    opt.include_launch = !ctx.fused;
    return km.tbe(shape, opt);
}

} // namespace mtia
