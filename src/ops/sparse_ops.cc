#include "ops/sparse_ops.h"

#include <cmath>
#include <memory>
#include <unordered_map>

#include "mem/llc.h"
#include "core/check.h"
#include "core/numerics_stats.h"
#include "core/simd.h"

namespace mtia {

namespace {

/** splitmix-style hash for deterministic pseudo-weights. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Cap on materialized embedding rows kept across a TbeOp::run (the
 * Zipf head; ~8 MB at dim 64). Beyond it rows are synthesized into a
 * per-group scratch arena. */
constexpr std::size_t kMaxCachedRows = 1u << 15;

} // namespace

namespace tbe_kernels {

void
gatherAccumulateScalar(const float *const *rows, const float *weights,
                       std::size_t count, std::int64_t dim, float *out)
{
    for (std::size_t p = 0; p < count; ++p) {
        const float w = weights[p];
        const float *row = rows[p];
        for (std::int64_t d = 0; d < dim; ++d) {
            // Separate multiply and add statements so no FMA
            // contraction can change the rounding vs the vector path.
            const float prod = w * row[d];
            out[d] = out[d] + prod;
        }
    }
}

void
gatherAccumulate(const float *const *rows, const float *weights,
                 std::size_t count, std::int64_t dim, float *out)
{
    using simd::VecF32;
    constexpr std::size_t kLookahead = 4;
    constexpr std::int64_t kFloatsPerLine = 16;
    for (std::size_t p = 0; p < count; ++p) {
        if (p + kLookahead < count) {
            const float *next = rows[p + kLookahead];
            for (std::int64_t off = 0; off < dim; off += kFloatsPerLine)
                simd::prefetch(next + off);
        }
        const float *row = rows[p];
        const VecF32 w = VecF32::broadcast(weights[p]);
        std::int64_t d = 0;
        for (; d + 2 * static_cast<std::int64_t>(simd::kLanes) <= dim;
             d += 2 * static_cast<std::int64_t>(simd::kLanes)) {
            const auto l = static_cast<std::int64_t>(simd::kLanes);
            (VecF32::load(out + d) + VecF32::load(row + d) * w)
                .store(out + d);
            (VecF32::load(out + d + l) + VecF32::load(row + d + l) * w)
                .store(out + d + l);
        }
        for (; d + static_cast<std::int64_t>(simd::kLanes) <= dim;
             d += static_cast<std::int64_t>(simd::kLanes)) {
            (VecF32::load(out + d) + VecF32::load(row + d) * w)
                .store(out + d);
        }
        for (; d < dim; ++d) {
            const float prod = weights[p] * row[d];
            out[d] = out[d] + prod;
        }
    }
}

} // namespace tbe_kernels

TbeOp::TbeOp(TbeTableSpec spec, std::int64_t batch, std::int64_t pooling,
             bool weighted, std::uint64_t table_seed)
    : spec_(spec),
      batch_(batch),
      pooling_(pooling),
      weighted_(weighted),
      table_seed_(table_seed)
{
    MTIA_CHECK_GT(spec_.tables, 0) << ": TbeOp table count";
    MTIA_CHECK_GT(batch_, 0) << ": TbeOp batch size";
    MTIA_CHECK_GT(pooling_, 0) << ": TbeOp pooling factor";
}

float
TbeOp::rowValue(std::int64_t table, std::int64_t row,
                std::int64_t col) const
{
    const std::uint64_t h = mix(
        table_seed_ ^ mix(static_cast<std::uint64_t>(table) << 40) ^
        mix(static_cast<std::uint64_t>(row) << 8) ^
        static_cast<std::uint64_t>(col));
    // Map to roughly N(0, 0.1): embeddings are small-magnitude.
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    return static_cast<float>(u * 0.17);
}

Tensor
TbeOp::run(const std::vector<Tensor> &, OpContext &ctx) const
{
    MTIA_CHECK(ctx.rng != nullptr)
        << ": TbeOp::run needs an rng for index sampling";
    ZipfSampler zipf(static_cast<std::uint64_t>(spec_.rows_per_table),
                     spec_.zipf_alpha);
    Tensor out(Shape{batch_, spec_.tables * spec_.dim}, DType::FP32);
    auto *outf = reinterpret_cast<float *>(out.raw().data());

    const auto udim = static_cast<std::size_t>(spec_.dim);
    const auto pool = static_cast<std::size_t>(pooling_);

    // Synthesize an embedding row once and gather it by pointer. The
    // per-element math matches rowValue exactly (the (table, row)
    // hash terms are merely hoisted out of the column loop), so the
    // accumulated output is bit-identical to the seed per-element
    // loop. Zipf reuse makes the cache hit for the popular head.
    auto synthesize = [&](float *dst, std::int64_t t, std::int64_t row) {
        const std::uint64_t base = table_seed_ ^
            mix(static_cast<std::uint64_t>(t) << 40) ^
            mix(static_cast<std::uint64_t>(row) << 8);
        for (std::int64_t d = 0; d < spec_.dim; ++d) {
            const std::uint64_t h =
                mix(base ^ static_cast<std::uint64_t>(d));
            const double u =
                static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
            dst[d] = static_cast<float>(u * 0.17);
        }
    };

    std::unordered_map<std::uint64_t, std::size_t> slot_of;
    std::vector<std::unique_ptr<float[]>> cached;
    std::vector<float> arena(pool * udim); // cap-overflow scratch
    std::vector<std::int64_t> rows(pool);
    std::vector<float> weights(pool);
    std::vector<const float *> ptrs(pool);

    std::uint64_t gathered = 0;
    for (std::int64_t b = 0; b < batch_; ++b) {
        for (std::int64_t t = 0; t < spec_.tables; ++t) {
            // Sample all (row, weight) pairs first, in the exact rng
            // order of the seed loop.
            for (std::size_t p = 0; p < pool; ++p) {
                rows[p] =
                    static_cast<std::int64_t>(zipf.sample(*ctx.rng));
                weights[p] = weighted_
                    ? static_cast<float>(ctx.rng->uniform(0.5, 1.5))
                    : 1.0f;
            }
            std::size_t arena_used = 0;
            for (std::size_t p = 0; p < pool; ++p) {
                const std::uint64_t key =
                    static_cast<std::uint64_t>(t) *
                        static_cast<std::uint64_t>(spec_.rows_per_table) +
                    static_cast<std::uint64_t>(rows[p]);
                const auto it = slot_of.find(key);
                if (it != slot_of.end()) {
                    ptrs[p] = cached[it->second].get();
                } else if (cached.size() < kMaxCachedRows) {
                    cached.emplace_back(new float[udim]);
                    synthesize(cached.back().get(), t, rows[p]);
                    slot_of.emplace(key, cached.size() - 1);
                    ptrs[p] = cached.back().get();
                } else {
                    float *dst = arena.data() + arena_used;
                    synthesize(dst, t, rows[p]);
                    ptrs[p] = dst;
                    arena_used += udim;
                }
            }
            float *dst =
                outf + (b * spec_.tables + t) * spec_.dim;
            tbe_kernels::gatherAccumulate(ptrs.data(), weights.data(),
                                          pool, spec_.dim, dst);
            gathered += pool;
        }
    }
    numerics::noteGatherRows(gathered);
    return out;
}

double
TbeOp::expectedHitRate(Bytes llc_bytes) const
{
    const Bytes row_bytes =
        static_cast<Bytes>(spec_.dim) * dtypeSize(spec_.dtype);
    const std::uint64_t cache_rows = llc_bytes / row_bytes;
    // Tables share the cache; model them as one popularity universe.
    const std::uint64_t universe = static_cast<std::uint64_t>(
        spec_.tables * spec_.rows_per_table);
    const std::uint64_t per_table_cache =
        std::min<std::uint64_t>(cache_rows, universe);
    return zipfLruHitRate(per_table_cache, universe, spec_.zipf_alpha);
}

KernelTime
TbeOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    TbeShape shape;
    shape.tables = spec_.tables;
    shape.batch = batch_;
    shape.pooling = pooling_;
    shape.dim = spec_.dim;
    shape.dtype = spec_.dtype;
    TbeOptions opt;
    opt.sram_hit_rate = ctx.tbe_hit_rate;
    opt.weighted = weighted_;
    opt.include_launch = !ctx.fused;
    return km.tbe(shape, opt);
}

double
TbeOp::flops() const
{
    return static_cast<double>(spec_.tables) *
        static_cast<double>(batch_) * static_cast<double>(pooling_) *
        static_cast<double>(spec_.dim) * (weighted_ ? 2.0 : 1.0);
}

std::string
TbeOp::toString() const
{
    return std::string("tbe:") + (weighted_ ? "w" : "u") + ":" +
        std::to_string(spec_.tables) + "x" + std::to_string(batch_) +
        "x" + std::to_string(pooling_) + "x" +
        std::to_string(spec_.dim);
}

SequenceTbeOp::SequenceTbeOp(TbeTableSpec spec, std::int64_t batch,
                             double mean_history,
                             std::int64_t max_history,
                             std::uint64_t seed)
    : spec_(spec),
      batch_(batch),
      mean_history_(mean_history),
      max_history_(max_history),
      seed_(seed)
{
}

Tensor
SequenceTbeOp::run(const std::vector<Tensor> &, OpContext &ctx) const
{
    MTIA_CHECK(ctx.rng != nullptr) << ": SequenceTbeOp::run needs an rng";
    const JaggedTensor hist = JaggedTensor::randomHistory(
        *ctx.rng, batch_, spec_.dim, mean_history_, max_history_);
    return hist.toDense(max_history_);
}

KernelTime
SequenceTbeOp::cost(const KernelCostModel &km,
                    const CostContext &ctx) const
{
    // Expected events: mean history per item, one row each, no pool.
    TbeShape shape;
    shape.tables = 1;
    shape.batch = batch_;
    shape.pooling =
        std::max<std::int64_t>(1,
                               static_cast<std::int64_t>(mean_history_));
    shape.dim = spec_.dim;
    shape.dtype = spec_.dtype;
    TbeOptions opt;
    opt.sram_hit_rate = ctx.tbe_hit_rate;
    opt.include_launch = !ctx.fused;
    return km.tbe(shape, opt);
}

} // namespace mtia
