#ifndef MTIA_OPS_GEMM_KERNELS_H_
#define MTIA_OPS_GEMM_KERNELS_H_

/**
 * @file
 * Tensor-level entry points for the runtime-dispatched blocked GEMM
 * (core/simd_gemm.h) and the fused operator layer. Every function is
 * bit-identical to the element-at-a-time reference composition it
 * replaces, on every dispatch tier and at any MTIA_THREADS:
 *
 *  - gemm()                ≡ DotProductEngine::gemm
 *  - fusedGemmActivation() ≡ DotProductEngine::gemm followed by
 *                            SimdEngine::apply / applyExact
 *  - fusedQuantizedGemm()  ≡ quantizeDynamic(PerRow) →
 *                            DotProductEngine::gemmInt8 → dequant →
 *                            optional activation
 *
 * The fused variants run their dequant/activation epilogues inside
 * the GEMM's parallel region, once per finished mc-row block while it
 * is cache-hot; only the per-row dynamic quantization of A remains a
 * (vectorized) pre-pass, like panel packing.
 *
 * The ISA tier defaults to simd::activeIsa() (ScopedIsa override →
 * MTIA_SIMD_ISA env → cpuid) and is resolved on the calling thread.
 */

#include "core/simd_gemm.h"
#include "pe/simd_engine.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace mtia::gemm_kernels
{

/** Process-wide SimdEngine (default config) shared by the dense ops
 *  and the fused epilogues, so LUT tables are built once. */
const SimdEngine &sharedSimdEngine();

/** C = A·B with inputs rounded through @p compute_dtype, bit-identical
 *  to DotProductEngine::gemm. */
Tensor gemm(const Tensor &a, const Tensor &b, DType compute_dtype);
Tensor gemm(const Tensor &a, const Tensor &b, DType compute_dtype,
            simd::SimdIsa isa, const simd::GemmBlocking &blk);

/** GEMM plus elementwise activation fused into the row-block
 *  epilogue. @p use_lut selects the LUT path (SimdEngine::apply
 *  semantics: ReLU exact on the ALUs) vs the exact reference. */
Tensor fusedGemmActivation(const Tensor &a, const Tensor &b,
                           DType compute_dtype, Nonlinearity f,
                           bool use_lut);
Tensor fusedGemmActivation(const Tensor &a, const Tensor &b,
                           DType compute_dtype, Nonlinearity f,
                           bool use_lut, simd::SimdIsa isa,
                           const simd::GemmBlocking &blk);

/**
 * Dynamic-int8 fused path: per-row quantize A, int8 GEMM against
 * per-tensor-quantized weights @p w, dequantize and (optionally)
 * activate in the row-block epilogue. Returns FP32.
 */
Tensor fusedQuantizedGemm(const Tensor &a, const QuantizedTensor &w,
                          bool has_activation, Nonlinearity f,
                          bool use_lut);
Tensor fusedQuantizedGemm(const Tensor &a, const QuantizedTensor &w,
                          bool has_activation, Nonlinearity f,
                          bool use_lut, simd::SimdIsa isa,
                          const simd::GemmBlocking &blk);

} // namespace mtia::gemm_kernels

#endif // MTIA_OPS_GEMM_KERNELS_H_
