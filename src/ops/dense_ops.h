#ifndef MTIA_OPS_DENSE_OPS_H_
#define MTIA_OPS_DENSE_OPS_H_

/**
 * @file
 * Dense operators: inputs, fully-connected layers (with optional fused
 * activation and dynamic INT8), layer norm (with horizontal batching),
 * softmax, elementwise math, layout ops, in-batch broadcast, and the
 * DLRM pairwise-interaction operator.
 */

#include <cstdint>
#include <vector>

#include "ops/op.h"
#include "pe/simd_engine.h"

namespace mtia {

/** A graph input / placeholder of fixed shape. */
class InputOp : public Op
{
  public:
    InputOp(std::string name, Shape shape)
        : name_(std::move(name)), shape_(std::move(shape)) {}

    std::string kind() const override { return "input"; }
    std::size_t arity() const override { return 0; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return shape_;
    }
    Tensor run(const std::vector<Tensor> &, OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &,
                    const CostContext &) const override
    {
        return {};
    }
    double flops() const override { return 0.0; }
    std::string toString() const override { return "input:" + name_; }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    Shape shape_;
};

/** Fully-connected layer: X[M,K] * W[K,N] (+ bias, + activation). */
class FullyConnectedOp : public Op
{
  public:
    /**
     * @param batch M (rows).
     * @param in_features K.
     * @param out_features N.
     * @param dtype Compute dtype (weights stored likewise).
     * @param activation Fused nonlinearity (Relu-as-identity trick is
     *        not used; pass has_activation=false for a linear layer).
     */
    FullyConnectedOp(std::int64_t batch, std::int64_t in_features,
                     std::int64_t out_features,
                     DType dtype = DType::FP16,
                     bool has_activation = false,
                     Nonlinearity activation = Nonlinearity::Relu,
                     std::uint64_t weight_seed = 1);

    std::string kind() const override { return "fc"; }
    std::size_t arity() const override { return 1; }
    bool fusedKernel() const override { return has_activation_; }
    Shape outputShape(const std::vector<Shape> &inputs) const override;
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    Bytes weightBytes() const override;
    double flops() const override;
    std::string toString() const override;

    const FcShape &shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    bool hasActivation() const { return has_activation_; }
    Nonlinearity activation() const { return activation_; }
    std::uint64_t weightSeed() const { return weight_seed_; }

    /** Fuse an activation into this layer (vertical fusion pass). */
    void fuseActivation(Nonlinearity f)
    {
        has_activation_ = true;
        activation_ = f;
    }

    /** Lazily materialized weights (deterministic per seed). */
    const Tensor &weights() const;

  private:
    FcShape shape_;
    DType dtype_;
    bool has_activation_;
    Nonlinearity activation_;
    std::uint64_t weight_seed_;
    mutable Tensor weights_; // lazy
};

/** Standalone activation (before vertical fusion). */
class ActivationOp : public Op
{
  public:
    ActivationOp(Shape shape, Nonlinearity f)
        : shape_(std::move(shape)), fn_(f) {}

    std::string kind() const override { return "activation"; }
    std::size_t arity() const override { return 1; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return shape_;
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override
    {
        return static_cast<double>(shape_.numel());
    }
    Nonlinearity fn() const { return fn_; }

  private:
    Shape shape_;
    Nonlinearity fn_;
};

/**
 * LayerNorm over the last dimension; @p instances > 1 models the
 * horizontally-batched variant from the Section 6 case study (one
 * kernel launch normalizing many sibling layers).
 */
class LayerNormOp : public Op
{
  public:
    LayerNormOp(std::int64_t rows, std::int64_t cols,
                std::int64_t instances = 1)
        : rows_(rows), cols_(cols), instances_(instances) {}

    std::string kind() const override { return "layernorm"; }
    std::size_t arity() const override
    {
        return static_cast<std::size_t>(instances_) > 1
            ? static_cast<std::size_t>(instances_)
            : 1;
    }
    Shape outputShape(const std::vector<Shape> &inputs) const override;
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override
    {
        return 8.0 * static_cast<double>(rows_) *
               static_cast<double>(cols_) * static_cast<double>(instances_);
    }
    std::int64_t instances() const { return instances_; }
    std::int64_t rows() const { return rows_; }
    std::int64_t cols() const { return cols_; }

  private:
    std::int64_t rows_;
    std::int64_t cols_;
    std::int64_t instances_;
};

/** Softmax over the last dimension of a rank-2 tensor. */
class SoftmaxOp : public Op
{
  public:
    SoftmaxOp(std::int64_t rows, std::int64_t cols)
        : rows_(rows), cols_(cols) {}

    std::string kind() const override { return "softmax"; }
    std::size_t arity() const override { return 1; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return Shape{rows_, cols_};
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override
    {
        return 5.0 * static_cast<double>(rows_) *
               static_cast<double>(cols_);
    }

  private:
    std::int64_t rows_;
    std::int64_t cols_;
};

/** Elementwise binary op (same-shape add/mul). */
class ElementwiseOp : public Op
{
  public:
    enum class Kind { Add, Mul };

    ElementwiseOp(Shape shape, Kind kind)
        : shape_(std::move(shape)), op_(kind) {}

    std::string kind() const override { return "elementwise"; }
    std::size_t arity() const override { return 2; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return shape_;
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override
    {
        return static_cast<double>(shape_.numel());
    }

  private:
    Shape shape_;
    Kind op_;
};

/** Rank-2 transpose through the MLU. */
class TransposeOp : public Op
{
  public:
    explicit TransposeOp(Shape in) : in_(std::move(in)) {}

    std::string kind() const override { return "transpose"; }
    std::size_t arity() const override { return 1; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return Shape{in_.dim(1), in_.dim(0)};
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override { return 0.0; }

  private:
    Shape in_;
};

/** Concatenate along an axis (0 or 1). */
class ConcatOp : public Op
{
  public:
    ConcatOp(std::vector<Shape> inputs, int axis);

    std::string kind() const override { return "concat"; }
    std::size_t arity() const override { return inputs_.size(); }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return out_;
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override { return 0.0; }

  private:
    std::vector<Shape> inputs_;
    int axis_;
    Shape out_;
};

/**
 * In-batch broadcast: expand user-side rows to align with per-ad
 * rows (the IBB operator from the Section 6 case study). Input
 * [M, D] -> output [M * factor, D].
 */
class BroadcastOp : public Op
{
  public:
    BroadcastOp(Shape in, std::int64_t factor)
        : in_(std::move(in)), factor_(factor) {}

    std::string kind() const override { return "broadcast"; }
    std::size_t arity() const override { return 1; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return Shape{in_.dim(0) * factor_, in_.dim(1)};
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override { return 0.0; }
    std::int64_t factor() const { return factor_; }

  private:
    Shape in_;
    std::int64_t factor_;
};

/**
 * DLRM pairwise feature interaction: given [B, F, D] stacked feature
 * vectors, emit the upper triangle of the F x F dot-product matrix
 * per batch item: output [B, F*(F-1)/2].
 */
class InteractionOp : public Op
{
  public:
    InteractionOp(std::int64_t batch, std::int64_t features,
                  std::int64_t dim)
        : batch_(batch), features_(features), dim_(dim) {}

    std::string kind() const override { return "interaction"; }
    std::size_t arity() const override { return 1; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return Shape{batch_, features_ * (features_ - 1) / 2};
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    double flops() const override
    {
        return 2.0 * static_cast<double>(batch_) *
               static_cast<double>(features_) *
               static_cast<double>(features_) *
               static_cast<double>(dim_) / 2.0;
    }

  private:
    std::int64_t batch_;
    std::int64_t features_;
    std::int64_t dim_;
};

/**
 * Sibling-transpose-FC fusion result: one transposed input feeding
 * several FC layers as a single fused kernel whose outputs are
 * concatenated along the feature axis (Section 4.2 / Section 6).
 */
class FusedTransposeFcOp : public Op
{
  public:
    FusedTransposeFcOp(Shape input, /* pre-transpose [K, M] */
                       std::vector<std::int64_t> out_features,
                       DType dtype = DType::FP16,
                       std::uint64_t weight_seed = 11);

    std::string kind() const override { return "fused-transpose-fc"; }
    std::size_t arity() const override { return 1; }
    bool fusedKernel() const override { return true; }
    Shape outputShape(const std::vector<Shape> &) const override;
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    Bytes weightBytes() const override;
    double flops() const override;

  private:
    Shape input_;
    std::vector<std::int64_t> out_features_;
    DType dtype_;
    std::uint64_t weight_seed_;
    mutable std::vector<Tensor> weights_;
};

} // namespace mtia

#endif // MTIA_OPS_DENSE_OPS_H_
