#ifndef MTIA_OPS_SPARSE_OPS_H_
#define MTIA_OPS_SPARSE_OPS_H_

/**
 * @file
 * Sparse-network operators: Table Batched Embedding (pooled, weighted
 * or unweighted) and sequence embedding lookups that produce jagged
 * tensors. TBE indices follow a Zipf popularity distribution, which
 * is what gives the LLC its 40-60% hit rate on embedding traffic.
 */

#include <cstdint>
#include <vector>

#include "ops/op.h"
#include "tensor/jagged.h"

namespace mtia {

namespace tbe_kernels {

/**
 * Accumulate @p count weighted embedding rows into one output row:
 * out[d] += weights[p] * rows[p][d] for p in order. Blocked over the
 * embedding dimension with software prefetch of upcoming rows;
 * bit-identical to gatherAccumulateScalar (separate multiply and add,
 * accumulation order over p preserved).
 */
void gatherAccumulate(const float *const *rows, const float *weights,
                      std::size_t count, std::int64_t dim, float *out);

/** Element-at-a-time reference for gatherAccumulate. */
void gatherAccumulateScalar(const float *const *rows,
                            const float *weights, std::size_t count,
                            std::int64_t dim, float *out);

} // namespace tbe_kernels

/** Static description of one group of embedding tables. */
struct TbeTableSpec
{
    std::int64_t tables = 1;
    std::int64_t rows_per_table = 1 << 20;
    std::int64_t dim = 64;
    DType dtype = DType::FP16;
    double zipf_alpha = 0.9;

    Bytes
    totalBytes() const
    {
        return static_cast<Bytes>(tables) * rows_per_table * dim *
            dtypeSize(dtype);
    }
};

/**
 * Table Batched Embedding: for each (table, batch item) pool
 * @p pooling embedding rows into one output row. A source op: it
 * samples its own indices (deterministically via the executor rng).
 */
class TbeOp : public Op
{
  public:
    TbeOp(TbeTableSpec spec, std::int64_t batch, std::int64_t pooling,
          bool weighted, std::uint64_t table_seed = 101);

    std::string kind() const override { return "tbe"; }
    std::size_t arity() const override { return 0; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return Shape{batch_, spec_.tables * spec_.dim};
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    Bytes weightBytes() const override { return spec_.totalBytes(); }
    double flops() const override;
    std::string toString() const override;

    const TbeTableSpec &spec() const { return spec_; }
    std::int64_t batch() const { return batch_; }
    std::int64_t pooling() const { return pooling_; }
    bool weighted() const { return weighted_; }

    /**
     * Measured SRAM hit rate for this op's index stream against an
     * LLC of @p llc_bytes, from the analytic Zipf/LRU model.
     */
    double expectedHitRate(Bytes llc_bytes) const;

  private:
    /** Embedding row value: deterministic hash of (table, row, col)
     * so functional runs are reproducible without materializing
     * multi-GB tables. */
    float rowValue(std::int64_t table, std::int64_t row,
                   std::int64_t col) const;

    TbeTableSpec spec_;
    std::int64_t batch_;
    std::int64_t pooling_;
    bool weighted_;
    std::uint64_t table_seed_;
};

/**
 * Sequence embedding lookup: emits one embedding row per history
 * event, producing a jagged [total_events, dim] value buffer
 * (materialized densely padded for graph plumbing).
 */
class SequenceTbeOp : public Op
{
  public:
    SequenceTbeOp(TbeTableSpec spec, std::int64_t batch,
                  double mean_history, std::int64_t max_history,
                  std::uint64_t seed = 202);

    std::string kind() const override { return "sequence-tbe"; }
    std::size_t arity() const override { return 0; }
    Shape outputShape(const std::vector<Shape> &) const override
    {
        return Shape{batch_, max_history_, spec_.dim};
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    Bytes weightBytes() const override { return spec_.totalBytes(); }
    double flops() const override { return 0.0; }

    double meanHistory() const { return mean_history_; }

  private:
    TbeTableSpec spec_;
    std::int64_t batch_;
    double mean_history_;
    std::int64_t max_history_;
    std::uint64_t seed_;
};

} // namespace mtia

#endif // MTIA_OPS_SPARSE_OPS_H_
