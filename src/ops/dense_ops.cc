#include "ops/dense_ops.h"

#include <algorithm>
#include <cmath>

#include "pe/mlu.h"
#include "core/check.h"
#include "ops/gemm_kernels.h"
#include "tensor/quantize.h"

namespace mtia {

namespace {

Tensor
applyNonlinearity(Nonlinearity f, const Tensor &x, bool use_lut)
{
    return use_lut ? gemm_kernels::sharedSimdEngine().apply(f, x)
                   : SimdEngine::applyExact(f, x);
}

} // namespace

Tensor
InputOp::run(const std::vector<Tensor> &, OpContext &ctx) const
{
    Tensor t(shape_, DType::FP32);
    if (ctx.rng != nullptr)
        t.fillGaussian(*ctx.rng);
    return t;
}

FullyConnectedOp::FullyConnectedOp(std::int64_t batch,
                                   std::int64_t in_features,
                                   std::int64_t out_features, DType dtype,
                                   bool has_activation,
                                   Nonlinearity activation,
                                   std::uint64_t weight_seed)
    : shape_{batch, out_features, in_features},
      dtype_(dtype),
      has_activation_(has_activation),
      activation_(activation),
      weight_seed_(weight_seed)
{
}

const Tensor &
FullyConnectedOp::weights() const
{
    if (weights_.raw().empty()) {
        Rng rng(weight_seed_);
        weights_ = Tensor(Shape{shape_.k, shape_.n}, dtype_);
        // Xavier-ish init keeps activations in a sane range through
        // deep stacks.
        const float scale =
            1.0f / std::sqrt(static_cast<float>(shape_.k));
        weights_.fillGaussian(rng, 0.0f, scale);
    }
    return weights_;
}

Shape
FullyConnectedOp::outputShape(const std::vector<Shape> &inputs) const
{
    MTIA_CHECK_EQ(inputs.size(), 1u) << ": fc takes one input";
    MTIA_CHECK_EQ(inputs[0].rank(), 2u) << ": fc input rank";
    MTIA_CHECK_EQ(inputs[0].dim(1), shape_.k)
        << ": fc input width must match weight K";
    return Shape{inputs[0].dim(0), shape_.n};
}

Tensor
FullyConnectedOp::run(const std::vector<Tensor> &inputs,
                      OpContext &ctx) const
{
    // Runtime-dispatched blocked GEMM (bit-identical to the DPE
    // reference); with an activation the whole op runs as one fused
    // kernel with the activation in the row-block epilogue.
    if (has_activation_)
        return gemm_kernels::fusedGemmActivation(inputs[0], weights(),
                                                 dtype_, activation_,
                                                 ctx.use_lut_simd);
    return gemm_kernels::gemm(inputs[0], weights(), dtype_);
}

KernelTime
FullyConnectedOp::cost(const KernelCostModel &km,
                       const CostContext &ctx) const
{
    FcOptions opt;
    opt.dtype = ctx.dynamic_int8 ? DType::INT8 : dtype_;
    opt.dynamic_int8 = ctx.dynamic_int8;
    opt.sparse_24 = ctx.sparse_24;
    opt.weights = ctx.weights;
    opt.activations = ctx.activations;
    opt.output = ctx.output;
    opt.coordinated_loading = ctx.coordinated_loading;
    opt.include_launch = !ctx.fused;
    KernelTime t = km.fc(shape_, opt);
    if (has_activation_) {
        // Fused activation rides the SIMD engine as results stream
        // out of the reduction engine: it overlaps, costing only when
        // it exceeds the residual SIMD capacity. Approximate as a
        // small additive term.
        const KernelTime act = km.simdOp(
            shape_.m * shape_.n, 1.0, 0, /*include_launch=*/false);
        t.total += act.total / 4;
    }
    return t;
}

Bytes
FullyConnectedOp::weightBytes() const
{
    return shape_.weightBytes(dtype_);
}

double
FullyConnectedOp::flops() const
{
    return shape_.flops();
}

std::string
FullyConnectedOp::toString() const
{
    return "fc:" + shape_.toString();
}

Tensor
ActivationOp::run(const std::vector<Tensor> &inputs, OpContext &ctx) const
{
    return applyNonlinearity(fn_, inputs[0], ctx.use_lut_simd);
}

KernelTime
ActivationOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    const std::int64_t n = shape_.numel();
    return km.simdOp(n, 1.0, static_cast<Bytes>(n) * 4, !ctx.fused,
                     ctx.activations);
}

Shape
LayerNormOp::outputShape(const std::vector<Shape> &inputs) const
{
    if (instances_ == 1)
        return inputs.at(0);
    return Shape{rows_, cols_ * instances_};
}

Tensor
LayerNormOp::run(const std::vector<Tensor> &inputs, OpContext &) const
{
    auto normalize = [&](const Tensor &x, Tensor &out,
                         std::int64_t col_off) {
        const std::int64_t rows = x.shape().dim(0);
        const std::int64_t cols = x.shape().dim(1);
        for (std::int64_t r = 0; r < rows; ++r) {
            double mean = 0.0;
            for (std::int64_t c = 0; c < cols; ++c)
                mean += static_cast<double>(x.at2(r, c));
            mean /= static_cast<double>(cols);
            double var = 0.0;
            for (std::int64_t c = 0; c < cols; ++c) {
                const double d =
                    static_cast<double>(x.at2(r, c)) - mean;
                var += d * d;
            }
            var /= static_cast<double>(cols);
            const double inv = 1.0 / std::sqrt(var + 1e-5);
            for (std::int64_t c = 0; c < cols; ++c) {
                out.set2(r, col_off + c,
                         static_cast<float>(
                             (static_cast<double>(x.at2(r, c)) - mean) *
                             inv));
            }
        }
    };

    if (instances_ == 1) {
        Tensor out(inputs[0].shape(), DType::FP32);
        normalize(inputs[0], out, 0);
        return out;
    }
    Tensor out(Shape{rows_, cols_ * instances_}, DType::FP32);
    for (std::int64_t i = 0; i < instances_; ++i)
        normalize(inputs[static_cast<std::size_t>(i)], out, i * cols_);
    return out;
}

KernelTime
LayerNormOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    // One launch regardless of how many instances are batched in:
    // this is precisely the horizontal-batching win.
    return km.layerNorm(rows_ * instances_, cols_, !ctx.fused,
                        ctx.activations);
}

Tensor
SoftmaxOp::run(const std::vector<Tensor> &inputs, OpContext &ctx) const
{
    const Tensor &x = inputs[0];
    Tensor out(x.shape(), DType::FP32);
    for (std::int64_t r = 0; r < rows_; ++r) {
        float mx = x.at2(r, 0);
        for (std::int64_t c = 1; c < cols_; ++c)
            mx = std::max(mx, x.at2(r, c));
        // exp through the (LUT) SIMD path on the shifted values.
        Tensor shifted(Shape{cols_}, DType::FP32);
        for (std::int64_t c = 0; c < cols_; ++c)
            shifted.set(c, x.at2(r, c) - mx);
        const Tensor e =
            applyNonlinearity(Nonlinearity::Exp, shifted,
                              ctx.use_lut_simd);
        double sum = 0.0;
        for (std::int64_t c = 0; c < cols_; ++c)
            sum += static_cast<double>(e.at(c));
        for (std::int64_t c = 0; c < cols_; ++c)
            out.set2(r, c,
                     static_cast<float>(
                         static_cast<double>(e.at(c)) / sum));
    }
    return out;
}

KernelTime
SoftmaxOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    return km.softmax(rows_, cols_, !ctx.fused, ctx.activations);
}

Tensor
ElementwiseOp::run(const std::vector<Tensor> &inputs, OpContext &) const
{
    const Tensor &a = inputs[0];
    const Tensor &b = inputs[1];
    Tensor out(a.shape(), DType::FP32);
    const std::int64_t n = a.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        out.set(i, op_ == Kind::Add ? a.at(i) + b.at(i)
                                    : a.at(i) * b.at(i));
    }
    return out;
}

KernelTime
ElementwiseOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    const std::int64_t n = shape_.numel();
    return km.simdOp(n, 1.0, static_cast<Bytes>(n) * 3 * 2, !ctx.fused,
                     ctx.activations);
}

Tensor
TransposeOp::run(const std::vector<Tensor> &inputs, OpContext &) const
{
    return MemoryLayoutUnit::transpose(inputs[0]);
}

KernelTime
TransposeOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    // Pure data movement: read + write every element.
    const std::int64_t n = in_.numel();
    return km.simdOp(0, 0.0, static_cast<Bytes>(n) * 2 * 2, !ctx.fused,
                     ctx.activations);
}

ConcatOp::ConcatOp(std::vector<Shape> inputs, int axis)
    : inputs_(std::move(inputs)), axis_(axis)
{
    MTIA_CHECK(!inputs_.empty()) << ": concat with no inputs";
    std::int64_t rows = inputs_[0].dim(0);
    std::int64_t cols = inputs_[0].dim(1);
    for (std::size_t i = 1; i < inputs_.size(); ++i) {
        if (axis_ == 0)
            rows += inputs_[i].dim(0);
        else
            cols += inputs_[i].dim(1);
    }
    out_ = Shape{rows, cols};
}

Tensor
ConcatOp::run(const std::vector<Tensor> &inputs, OpContext &) const
{
    return MemoryLayoutUnit::concat(inputs, axis_);
}

KernelTime
ConcatOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    const std::int64_t n = out_.numel();
    return km.simdOp(0, 0.0, static_cast<Bytes>(n) * 2 * 2, !ctx.fused,
                     ctx.activations);
}

Tensor
BroadcastOp::run(const std::vector<Tensor> &inputs, OpContext &) const
{
    const Tensor &x = inputs[0];
    const std::int64_t rows = x.shape().dim(0);
    const std::int64_t cols = x.shape().dim(1);
    Tensor out(Shape{rows * factor_, cols}, x.dtype());
    for (std::int64_t f = 0; f < factor_; ++f)
        for (std::int64_t r = 0; r < rows; ++r)
            for (std::int64_t c = 0; c < cols; ++c)
                out.set2(f * rows + r, c, x.at2(r, c));
    return out;
}

KernelTime
BroadcastOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    // Writes factor copies of the input.
    const std::int64_t n = in_.numel();
    return km.simdOp(0, 0.0,
                     static_cast<Bytes>(n) * (1 + factor_) * 2,
                     !ctx.fused, ctx.activations);
}

Tensor
InteractionOp::run(const std::vector<Tensor> &inputs, OpContext &) const
{
    const Tensor &x = inputs[0]; // [B, F, D]
    Tensor out(Shape{batch_, features_ * (features_ - 1) / 2},
               DType::FP32);
    for (std::int64_t b = 0; b < batch_; ++b) {
        std::int64_t slot = 0;
        for (std::int64_t i = 0; i < features_; ++i) {
            for (std::int64_t j = i + 1; j < features_; ++j) {
                double dot = 0.0;
                for (std::int64_t d = 0; d < dim_; ++d) {
                    dot += static_cast<double>(
                               x.at((b * features_ + i) * dim_ + d)) *
                        static_cast<double>(
                            x.at((b * features_ + j) * dim_ + d));
                }
                out.set2(b, slot++, static_cast<float>(dot));
            }
        }
    }
    return out;
}

KernelTime
InteractionOp::cost(const KernelCostModel &km, const CostContext &ctx) const
{
    // Implemented as a batched X * X^T GEMM on the DPE.
    FcOptions opt;
    opt.weights = Placement::Lls; // the "weights" are activations here
    opt.activations = ctx.activations;
    opt.output = ctx.output;
    opt.include_launch = !ctx.fused;
    const FcShape shape{batch_ * features_, features_, dim_};
    return km.fc(shape, opt);
}

FusedTransposeFcOp::FusedTransposeFcOp(Shape input,
                                       std::vector<std::int64_t>
                                           out_features,
                                       DType dtype,
                                       std::uint64_t weight_seed)
    : input_(std::move(input)),
      out_features_(std::move(out_features)),
      dtype_(dtype),
      weight_seed_(weight_seed)
{
    MTIA_CHECK(!out_features_.empty())
        << ": fused-transpose-fc with no branches";
}

Shape
FusedTransposeFcOp::outputShape(const std::vector<Shape> &) const
{
    std::int64_t total = 0;
    for (std::int64_t n : out_features_)
        total += n;
    return Shape{input_.dim(1), total}; // transposed rows become batch
}

Tensor
FusedTransposeFcOp::run(const std::vector<Tensor> &inputs,
                        OpContext &) const
{
    const Tensor xt = MemoryLayoutUnit::transpose(inputs[0]);
    if (weights_.empty()) {
        Rng rng(weight_seed_);
        for (std::int64_t n : out_features_) {
            Tensor w(Shape{input_.dim(0), n}, dtype_);
            const float scale =
                1.0f / std::sqrt(static_cast<float>(input_.dim(0)));
            w.fillGaussian(rng, 0.0f, scale);
            weights_.push_back(std::move(w));
        }
    }
    std::vector<Tensor> outs;
    outs.reserve(weights_.size());
    for (const Tensor &w : weights_)
        outs.push_back(gemm_kernels::gemm(xt, w, dtype_));
    return MemoryLayoutUnit::concat(outs, 1);
}

KernelTime
FusedTransposeFcOp::cost(const KernelCostModel &km,
                         const CostContext &ctx) const
{
    // One launch; the transpose is folded into the activation stream
    // (read once instead of once per branch), and the branch GEMMs
    // share the staged input.
    std::int64_t total_n = 0;
    for (std::int64_t n : out_features_)
        total_n += n;
    FcOptions opt;
    opt.dtype = dtype_;
    opt.weights = ctx.weights;
    opt.activations = ctx.activations;
    opt.output = ctx.output;
    opt.include_launch = !ctx.fused;
    const FcShape shape{input_.dim(1), total_n, input_.dim(0)};
    return km.fc(shape, opt);
}

Bytes
FusedTransposeFcOp::weightBytes() const
{
    Bytes total = 0;
    for (std::int64_t n : out_features_)
        total += static_cast<Bytes>(input_.dim(0)) * n *
            dtypeSize(dtype_);
    return total;
}

double
FusedTransposeFcOp::flops() const
{
    double total = 0.0;
    for (std::int64_t n : out_features_)
        total += 2.0 * static_cast<double>(input_.dim(1)) *
            static_cast<double>(n) * static_cast<double>(input_.dim(0));
    return total;
}

} // namespace mtia
