#ifndef MTIA_OPS_ATTENTION_OPS_H_
#define MTIA_OPS_ATTENTION_OPS_H_

/**
 * @file
 * Attention operators: classic multi-headed attention (the MHA blocks
 * that entered the Section 6 case-study model) and HSTU's fused
 * ragged attention with its positional/timestamp bias gathered
 * piecewise through the SIMD engine's lookup tables (Section 4.3).
 */

#include <cstdint>

#include "ops/op.h"
#include "tensor/jagged.h"

namespace mtia {

/**
 * Multi-headed self attention over [B*S, D] activations (sequence
 * folded into rows). Functional path computes real QKV projections,
 * scaled dot-product attention, and the output projection.
 */
class MhaOp : public Op
{
  public:
    MhaOp(std::int64_t batch, std::int64_t seq, std::int64_t dim,
          std::int64_t heads, DType dtype = DType::FP16,
          std::uint64_t weight_seed = 303);

    std::string kind() const override { return "mha"; }
    std::size_t arity() const override { return 1; }
    /** Shape-preserving: accepts [B*S, D] or the equivalent-layout
     * [B, S*D] view. */
    Shape outputShape(const std::vector<Shape> &inputs) const override
    {
        return inputs.at(0);
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    Bytes weightBytes() const override;
    double flops() const override;

    std::int64_t heads() const { return heads_; }

    /**
     * Replace the Slice-Reshape-Concat head plumbing with the custom
     * MLU transpose kernel (the Section 6 optimization); affects cost
     * only, numerics are identical.
     */
    void useCustomTranspose(bool enabled) { custom_transpose_ = enabled; }

  private:
    const std::vector<Tensor> &projections() const;

    std::int64_t batch_;
    std::int64_t seq_;
    std::int64_t dim_;
    std::int64_t heads_;
    DType dtype_;
    std::uint64_t weight_seed_;
    bool custom_transpose_ = false;
    mutable std::vector<Tensor> proj_; // Wq, Wk, Wv, Wo
};

/**
 * HSTU fused ragged attention: jagged user-history sequences with a
 * relative-position/timestamp bias whose entries are gathered from
 * bias tables. On MTIA 2i the gather runs piecewise through the
 * SIMD-engine LUT (limited LUT memory) and the index arithmetic runs
 * on the RISC-V vector core.
 */
class RaggedAttentionOp : public Op
{
  public:
    RaggedAttentionOp(std::int64_t batch, double mean_history,
                      std::int64_t max_history, std::int64_t dim,
                      std::int64_t heads,
                      std::int64_t bias_buckets = 128,
                      std::uint64_t seed = 404);

    std::string kind() const override { return "ragged-attention"; }
    std::size_t arity() const override { return 1; }
    Shape outputShape(const std::vector<Shape> &inputs) const override
    {
        return inputs.at(0);
    }
    Tensor run(const std::vector<Tensor> &inputs,
               OpContext &ctx) const override;
    KernelTime cost(const KernelCostModel &km,
                    const CostContext &ctx) const override;
    Bytes weightBytes() const override;
    double flops() const override;

    /** Relative-position bias for a (query, key) distance. */
    float biasFor(std::int64_t distance) const;

  private:
    std::int64_t batch_;
    double mean_history_;
    std::int64_t max_history_;
    std::int64_t dim_;
    std::int64_t heads_;
    std::int64_t bias_buckets_;
    std::uint64_t seed_;
    mutable std::vector<float> bias_table_;
};

} // namespace mtia

#endif // MTIA_OPS_ATTENTION_OPS_H_
