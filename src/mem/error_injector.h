#ifndef MTIA_MEM_ERROR_INJECTOR_H_
#define MTIA_MEM_ERROR_INJECTOR_H_

/**
 * @file
 * The memory-error injection tool of Section 5.1: flips bits in the
 * raw representation of model memory regions (weights, activations,
 * TBE tables, TBE indices) and classifies the consequences (silent,
 * corrupted outputs, NaN, crash-equivalent). Used to decide whether
 * forgoing ECC is survivable.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"
#include "tensor/tensor.h"

namespace mtia {

/** Memory regions of a deployed model that can be targeted. */
enum class MemRegion : std::uint8_t {
    DenseWeights,
    Activations,
    EmbeddingTable,
    TbeIndices,
    Inputs,
    Outputs,
};

/** Human-readable region name. */
std::string memRegionName(MemRegion r);

/** Consequence class of an injected error on inference output. */
enum class ErrorOutcome : std::uint8_t {
    Benign,        ///< output unchanged or negligibly perturbed
    Corrupted,     ///< output visibly wrong but finite
    NaN,           ///< NaN/Inf reached the output
    OutOfBounds,   ///< index error (crash-equivalent for TBE indices)
};

/** Human-readable outcome name. */
std::string errorOutcomeName(ErrorOutcome o);

/** Aggregate outcome counts for one injection campaign. */
struct InjectionReport
{
    MemRegion region = MemRegion::DenseWeights;
    std::uint64_t trials = 0;
    std::uint64_t benign = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t nan = 0;
    std::uint64_t out_of_bounds = 0;

    double
    failureRate() const
    {
        return trials == 0
            ? 0.0
            : static_cast<double>(corrupted + nan + out_of_bounds) /
                static_cast<double>(trials);
    }
};

/** Bit-flip injector over tensors and index buffers. */
class MemoryErrorInjector
{
  public:
    explicit MemoryErrorInjector(std::uint64_t seed) : rng_(seed) {}

    /** Flip @p n uniformly random bits of @p t's raw bytes. */
    void flipRandomBits(Tensor &t, std::uint64_t n);

    /**
     * Flip one random bit of a single random element and classify the
     * damage by comparing against the clean value. Thresholds: a
     * relative change above @p corrupt_rel counts as corruption.
     */
    ErrorOutcome injectAndClassify(Tensor &t, double corrupt_rel = 0.05);

    /**
     * Flip one random bit of a TBE index (int64 row index into a
     * table with @p num_rows rows); out-of-range results are
     * crash-equivalent, in-range results fetch the wrong row
     * (corruption).
     */
    ErrorOutcome injectIndexError(std::int64_t &index,
                                  std::int64_t num_rows);

    Rng &rng() { return rng_; }

  private:
    Rng rng_;
};

} // namespace mtia

#endif // MTIA_MEM_ERROR_INJECTOR_H_
