#ifndef MTIA_MEM_LPDDR_H_
#define MTIA_MEM_LPDDR_H_

/**
 * @file
 * Off-chip LPDDR5 channel model. Captures the Section 5.1 trade-off:
 * LPDDR lacks native ECC, so protection must come from the memory
 * controller, costing storage (8/64 check bits), read-modify-write
 * traffic on partial writes, and therefore 10-15% end-to-end
 * throughput on bandwidth-sensitive models. Also models the raw
 * bit-error process used by the fleet memory-error study.
 */

#include <cstdint>
#include <string>

#include "sim/random.h"
#include "sim/types.h"

namespace mtia::telemetry {
class MetricRegistry;
} // namespace mtia::telemetry

namespace mtia {

/** Protection policy for the LPDDR channel. */
enum class EccMode : std::uint8_t {
    None,        ///< raw LPDDR, errors reach the application
    Controller,  ///< SECDED computed by the memory controller
};

/** Static configuration of one device's LPDDR subsystem. */
struct LpddrConfig
{
    Bytes capacity = 0;             ///< usable capacity
    BytesPerSec peak_bandwidth = 0; ///< vendor peak (no ECC)
    EccMode ecc = EccMode::Controller;
    /** Fraction of write traffic that is partial-line and pays a
     * read-modify-write under controller ECC. */
    double partial_write_fraction = 0.2;
    /** Raw bit-error rate: expected bit flips per byte-second of
     * resident data. Calibrated so ~24% of servers see errors over a
     * months-long observation (Section 5.1). */
    double bit_error_rate = 1e-17;
};

/** Cumulative LPDDR traffic totals. */
struct LpddrStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    Bytes bytes_read = 0;
    Bytes bytes_written = 0;
    Tick busy_ticks = 0; ///< channel time the modeled transfers occupy
};

/**
 * Bandwidth/latency/error model of the LPDDR channel. Stateless with
 * respect to simulated data; stateful counters track traffic and
 * error events.
 */
class LpddrChannel
{
  public:
    explicit LpddrChannel(LpddrConfig cfg);

    const LpddrConfig &config() const { return cfg_; }

    /**
     * Effective sequential-read bandwidth after ECC overhead. The
     * controller fetches 72 bits per 64 data bits, so useful
     * bandwidth shrinks by 8/72.
     */
    BytesPerSec effectiveReadBandwidth() const;

    /**
     * Effective write bandwidth after ECC overhead, including the
     * read-modify-write amplification for partial-line writes.
     */
    BytesPerSec effectiveWriteBandwidth() const;

    /** Time to read @p bytes of useful data. */
    Tick readTime(Bytes bytes) const;

    /** Time to write @p bytes of useful data. */
    Tick writeTime(Bytes bytes) const;

    /**
     * Expected number of raw bit errors developing in @p resident
     * bytes over @p seconds of wall time.
     */
    double expectedBitErrors(Bytes resident, double seconds) const;

    /**
     * Sample the number of bit errors for a residency interval
     * (Poisson around the expectation).
     */
    std::uint64_t sampleBitErrors(Rng &rng, Bytes resident,
                                  double seconds) const;

    /** Switch ECC mode at runtime (the productionization decision). */
    void setEccMode(EccMode mode) { cfg_.ecc = mode; }

    const LpddrStats &stats() const { return stats_; }

    /**
     * Snapshot the cumulative traffic totals into @p registry as
     * lpddr.* gauges labeled {device=@p device} (gauges overwrite, so
     * repeated exports never double-count).
     */
    void exportMetrics(telemetry::MetricRegistry &registry,
                       const std::string &device) const;

  private:
    LpddrConfig cfg_;
    // readTime()/writeTime() are logically const queries of the cost
    // model; the traffic accounting they feed is observability state.
    mutable LpddrStats stats_;
};

} // namespace mtia

#endif // MTIA_MEM_LPDDR_H_
