#include "mem/llc.h"

#include <cmath>

#include "sim/logging.h"
#include "telemetry/metrics.h"

namespace mtia {

LlcModel::LlcModel(LlcConfig cfg) : cfg_(cfg)
{
    if (cfg_.line_size == 0 || cfg_.associativity == 0)
        MTIA_FATAL("LlcModel: line size and associativity must be > 0");
    const std::uint64_t lines = cfg_.capacity / cfg_.line_size;
    num_sets_ = lines / cfg_.associativity;
    if (num_sets_ == 0)
        num_sets_ = 1;
    ways_.assign(num_sets_ * cfg_.associativity, Way{});
}

bool
LlcModel::access(std::uint64_t addr, bool write)
{
    ++stats_.accesses;
    const std::uint64_t line = addr / cfg_.line_size;
    const std::uint64_t set = line % num_sets_;
    const std::uint64_t tag = line / num_sets_;
    Way *base = &ways_[set * cfg_.associativity];

    Way *victim = base;
    for (unsigned w = 0; w < cfg_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = ++stamp_;
            way.dirty |= write;
            ++stats_.hits;
            return true;
        }
        if (!way.valid) {
            victim = &way; // free way wins over any LRU victim
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }

    ++stats_.misses;
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty)
            ++stats_.dirty_writebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++stamp_;
    victim->dirty = write;
    return false;
}

std::uint64_t
LlcModel::accessRange(std::uint64_t addr, Bytes len, bool write)
{
    std::uint64_t hits = 0;
    const std::uint64_t first = addr / cfg_.line_size;
    const std::uint64_t last = (addr + (len ? len - 1 : 0)) / cfg_.line_size;
    for (std::uint64_t line = first; line <= last; ++line)
        hits += access(line * cfg_.line_size, write);
    return hits;
}

void
LlcModel::reset()
{
    for (auto &w : ways_)
        w = Way{};
    stats_ = LlcStats{};
    stamp_ = 0;
}

double
zipfLruHitRate(std::uint64_t cache_items, std::uint64_t n_items,
               double alpha)
{
    if (n_items == 0)
        return 0.0;
    if (cache_items >= n_items)
        return 1.0;

    // For huge universes (hundreds of millions of embedding rows),
    // exact per-rank sums are infeasible; bucket the rank axis
    // geometrically and weight each representative by its bucket
    // population. ~4k buckets keep the error well under a percent.
    std::vector<double> p;      // representative probability
    std::vector<double> count;  // ranks represented
    const double nd = static_cast<double>(n_items);
    double norm = 0.0;
    if (n_items <= (1u << 20)) {
        p.resize(static_cast<std::size_t>(n_items));
        count.assign(p.size(), 1.0);
        for (std::size_t i = 0; i < p.size(); ++i) {
            p[i] = std::pow(static_cast<double>(i + 1), -alpha);
            norm += p[i];
        }
    } else {
        const int buckets = 4096;
        double lo = 1.0;
        for (int b = 0; b < buckets && lo <= nd; ++b) {
            double hi = std::min(
                nd, std::max(lo + 1.0,
                             lo * std::pow(nd, 1.0 / buckets)));
            const double mid = std::sqrt(lo * hi); // geometric mean
            const double width = hi - lo + (b == 0 ? 1.0 : 0.0);
            p.push_back(std::pow(mid, -alpha));
            count.push_back(width);
            norm += p.back() * width;
            lo = hi + 1.0;
        }
    }
    for (auto &v : p)
        v /= norm;

    // Solve sum_i (1 - exp(-p_i * T)) = C for the characteristic time
    // T by bisection, then hit rate = sum_i p_i (1 - exp(-p_i T)).
    const double c = static_cast<double>(cache_items);
    auto occupancy = [&](double t) {
        double acc = 0.0;
        for (std::size_t i = 0; i < p.size(); ++i)
            acc += count[i] * (1.0 - std::exp(-p[i] * t));
        return acc;
    };
    double lo = 0.0;
    double hi = 1.0;
    while (occupancy(hi) < c)
        hi *= 2.0;
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (lo + hi);
        (occupancy(mid) < c ? lo : hi) = mid;
    }
    const double t = 0.5 * (lo + hi);

    double hit = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        hit += count[i] * p[i] * (1.0 - std::exp(-p[i] * t));
    return hit;
}

void
LlcModel::exportMetrics(telemetry::MetricRegistry &registry,
                        const std::string &device) const
{
    const telemetry::Labels labels{{"device", device}};
    registry.gauge("llc.accesses", labels)
        .set(static_cast<double>(stats_.accesses));
    registry.gauge("llc.hits", labels)
        .set(static_cast<double>(stats_.hits));
    registry.gauge("llc.misses", labels)
        .set(static_cast<double>(stats_.misses));
    registry.gauge("llc.evictions", labels)
        .set(static_cast<double>(stats_.evictions));
    registry.gauge("llc.dirty_writebacks", labels)
        .set(static_cast<double>(stats_.dirty_writebacks));
    registry.gauge("llc.hit_rate", labels).set(stats_.hitRate());
}

} // namespace mtia
