#include "mem/ecc.h"

#include <array>

#include "core/check.h"

namespace mtia {

namespace {

// The codeword is laid out in classic Hamming positions 1..71 with the
// overall parity in position 0. Positions that are powers of two hold
// the Hamming check bits; the rest hold data bits in ascending order.

constexpr unsigned kCodeBits = 72;

/** True if position p (1-based Hamming index) is a parity position. */
constexpr bool
isParityPos(unsigned p)
{
    return (p & (p - 1)) == 0; // p is a power of two
}

/** Map data bit index (0..63) to Hamming position (3..71). */
constexpr std::array<std::uint8_t, 64>
makeDataPositions()
{
    std::array<std::uint8_t, 64> pos{};
    unsigned d = 0;
    for (unsigned p = 1; p < kCodeBits && d < 64; ++p) {
        if (!isParityPos(p))
            pos[d++] = static_cast<std::uint8_t>(p);
    }
    return pos;
}

constexpr auto kDataPos = makeDataPositions();

/** Full 72-bit codeword as a flat bit array keyed by Hamming position
 * (index 0 is the overall parity). */
struct Bits
{
    std::array<std::uint8_t, kCodeBits> b{};

    static Bits
    fromCodeword(const EccCodeword &cw)
    {
        Bits bits;
        for (unsigned d = 0; d < 64; ++d)
            bits.b[kDataPos[d]] = (cw.data >> d) & 1;
        // check layout: bit 7 = overall parity (pos 0), bits 0..6 =
        // Hamming parities at positions 1,2,4,8,16,32,64.
        for (unsigned k = 0; k < 7; ++k)
            bits.b[1u << k] = (cw.check >> k) & 1;
        bits.b[0] = (cw.check >> 7) & 1;
        return bits;
    }

    EccCodeword
    toCodeword() const
    {
        EccCodeword cw;
        for (unsigned d = 0; d < 64; ++d)
            cw.data |= static_cast<std::uint64_t>(b[kDataPos[d]]) << d;
        for (unsigned k = 0; k < 7; ++k)
            cw.check |= static_cast<std::uint8_t>(b[1u << k] << k);
        cw.check |= static_cast<std::uint8_t>(b[0] << 7);
        return cw;
    }
};

/** Hamming syndrome over positions 1..71 (0 means no error there). */
unsigned
syndromeOf(const Bits &bits)
{
    unsigned syn = 0;
    for (unsigned k = 0; k < 7; ++k) {
        unsigned parity = 0;
        for (unsigned p = 1; p < kCodeBits; ++p) {
            if (p & (1u << k))
                parity ^= bits.b[p];
        }
        syn |= parity << k;
    }
    return syn;
}

/** Parity of every bit including the overall parity bit. */
unsigned
overallParity(const Bits &bits)
{
    unsigned parity = 0;
    for (unsigned p = 0; p < kCodeBits; ++p)
        parity ^= bits.b[p];
    return parity;
}

} // namespace

void
EccCodeword::flipBit(unsigned i)
{
    if (i < 64) {
        data ^= std::uint64_t{1} << i;
    } else if (i < 72) {
        check ^= static_cast<std::uint8_t>(1u << (i - 64));
    } else {
        MTIA_CHECK_LT(i, 72u) << ": EccCodeword::flipBit out of the "
                                 "72-bit codeword";
    }
}

EccCodeword
EccCodec::encode(std::uint64_t data)
{
    EccCodeword cw;
    cw.data = data;
    Bits bits = Bits::fromCodeword(cw);
    // Compute each Hamming parity so the syndrome of the final word
    // is zero.
    for (unsigned k = 0; k < 7; ++k) {
        unsigned parity = 0;
        for (unsigned p = 1; p < kCodeBits; ++p) {
            if ((p & (1u << k)) && !isParityPos(p))
                parity ^= bits.b[p];
        }
        bits.b[1u << k] = static_cast<std::uint8_t>(parity);
    }
    // Overall parity makes the whole word even.
    unsigned parity = 0;
    for (unsigned p = 1; p < kCodeBits; ++p)
        parity ^= bits.b[p];
    bits.b[0] = static_cast<std::uint8_t>(parity);
    return bits.toCodeword();
}

EccResult
EccCodec::decode(EccCodeword &cw, std::uint64_t &data)
{
    Bits bits = Bits::fromCodeword(cw);
    const unsigned syn = syndromeOf(bits);
    const unsigned parity = overallParity(bits);

    if (syn == 0 && parity == 0) {
        data = cw.data;
        return EccResult::Ok;
    }
    if (parity == 1) {
        // Odd overall parity: a single-bit error at position syn (or,
        // when syn == 0, in the overall parity bit itself).
        if (syn >= kCodeBits) {
            // Syndrome points outside the word: treat as detected-
            // uncorrectable (can occur for some multi-bit patterns).
            data = cw.data;
            return EccResult::DetectedDouble;
        }
        bits.b[syn] ^= 1;
        cw = bits.toCodeword();
        data = cw.data;
        return EccResult::CorrectedSingle;
    }
    // Even parity with nonzero syndrome: double-bit error.
    data = cw.data;
    return EccResult::DetectedDouble;
}

} // namespace mtia
