#ifndef MTIA_MEM_SRAM_H_
#define MTIA_MEM_SRAM_H_

/**
 * @file
 * The shared on-chip SRAM and its partitioning into hardware-managed
 * cache (LLC) and software-managed scratch (LLS). Partitioning happens
 * at 32 MB region granularity; the autotuner's data-placement pass
 * picks the split (Section 4.1: size the LLS to the activation buffer,
 * give the rest to the LLC).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace mtia {

/** Static shape of the shared SRAM. */
struct SramConfig
{
    Bytes capacity = 256_MiB;
    Bytes region_granularity = 32_MiB;
    BytesPerSec bandwidth = gbPerSec(2700.0);
};

/**
 * A partition of the SRAM into LLS and LLC regions.
 */
class SramPartition
{
  public:
    SramPartition(const SramConfig &cfg, unsigned lls_regions);

    /** Build the smallest partition whose LLS holds @p bytes; fails
     * (returns false) if even all regions are not enough. */
    static bool fitLls(const SramConfig &cfg, Bytes bytes,
                       SramPartition &out);

    Bytes llsBytes() const;
    Bytes llcBytes() const;
    unsigned llsRegions() const { return lls_regions_; }
    unsigned totalRegions() const;

    const SramConfig &config() const { return cfg_; }

    std::string toString() const;

  private:
    SramConfig cfg_;
    unsigned lls_regions_;
};

/**
 * Bump allocator over the LLS scratch region. Tensors pinned in LLS
 * are never evicted by hardware; the allocator exposes exactly the
 * fit/doesn't-fit decision the autotuner reasons about, plus a
 * checkpoint/rollback facility for liveness-scoped buffers.
 */
class LlsAllocator
{
  public:
    explicit LlsAllocator(Bytes capacity, Bytes alignment = 64);

    /**
     * Allocate @p bytes; returns the offset or -1 if it does not fit.
     */
    std::int64_t allocate(Bytes bytes);

    /** Current watermark for later rollback. */
    Bytes mark() const { return used_; }

    /** Roll back to a previous watermark (frees everything above). */
    void release(Bytes mark);

    /** Free everything. */
    void reset() { used_ = 0; }

    Bytes used() const { return used_; }
    Bytes capacity() const { return capacity_; }
    Bytes free() const { return capacity_ - used_; }
    bool fits(Bytes bytes) const;

    /** Peak watermark observed since construction/reset. */
    Bytes peak() const { return peak_; }

  private:
    Bytes capacity_;
    Bytes alignment_;
    Bytes used_ = 0;
    Bytes peak_ = 0;
};

} // namespace mtia

#endif // MTIA_MEM_SRAM_H_
