#include "mem/lpddr.h"

#include "sim/logging.h"
#include "telemetry/metrics.h"

namespace mtia {

LpddrChannel::LpddrChannel(LpddrConfig cfg) : cfg_(cfg)
{
    if (cfg_.peak_bandwidth <= 0.0)
        MTIA_FATAL("LpddrChannel: peak bandwidth must be positive");
}

BytesPerSec
LpddrChannel::effectiveReadBandwidth() const
{
    if (cfg_.ecc == EccMode::None)
        return cfg_.peak_bandwidth;
    // 72 bits transferred per 64 useful bits.
    return cfg_.peak_bandwidth * 64.0 / 72.0;
}

BytesPerSec
LpddrChannel::effectiveWriteBandwidth() const
{
    if (cfg_.ecc == EccMode::None)
        return cfg_.peak_bandwidth;
    // Full-line writes pay the 72/64 code overhead; partial-line
    // writes additionally read the old line to recompute check bits
    // (one extra line transfer), doubling their cost.
    const double code = 72.0 / 64.0;
    const double rmw = 1.0 + cfg_.partial_write_fraction;
    return cfg_.peak_bandwidth / (code * rmw);
}

Tick
LpddrChannel::readTime(Bytes bytes) const
{
    const Tick t = transferTicks(bytes, effectiveReadBandwidth());
    ++stats_.reads;
    stats_.bytes_read += bytes;
    stats_.busy_ticks += t;
    return t;
}

Tick
LpddrChannel::writeTime(Bytes bytes) const
{
    const Tick t = transferTicks(bytes, effectiveWriteBandwidth());
    ++stats_.writes;
    stats_.bytes_written += bytes;
    stats_.busy_ticks += t;
    return t;
}

double
LpddrChannel::expectedBitErrors(Bytes resident, double seconds) const
{
    return cfg_.bit_error_rate * static_cast<double>(resident) * seconds;
}

std::uint64_t
LpddrChannel::sampleBitErrors(Rng &rng, Bytes resident,
                              double seconds) const
{
    return rng.poisson(expectedBitErrors(resident, seconds));
}

void
LpddrChannel::exportMetrics(telemetry::MetricRegistry &registry,
                            const std::string &device) const
{
    const telemetry::Labels labels{{"device", device}};
    registry.gauge("lpddr.reads", labels)
        .set(static_cast<double>(stats_.reads));
    registry.gauge("lpddr.writes", labels)
        .set(static_cast<double>(stats_.writes));
    registry.gauge("lpddr.bytes_read", labels)
        .set(static_cast<double>(stats_.bytes_read));
    registry.gauge("lpddr.bytes_written", labels)
        .set(static_cast<double>(stats_.bytes_written));
    registry.gauge("lpddr.busy_ms", labels)
        .set(toMillis(stats_.busy_ticks));
}

} // namespace mtia
