#include "mem/error_injector.h"

#include <cmath>

#include "core/check.h"

namespace mtia {

std::string
memRegionName(MemRegion r)
{
    switch (r) {
      case MemRegion::DenseWeights: return "dense-weights";
      case MemRegion::Activations: return "activations";
      case MemRegion::EmbeddingTable: return "embedding-table";
      case MemRegion::TbeIndices: return "tbe-indices";
      case MemRegion::Inputs: return "inputs";
      case MemRegion::Outputs: return "outputs";
    }
    return "?";
}

std::string
errorOutcomeName(ErrorOutcome o)
{
    switch (o) {
      case ErrorOutcome::Benign: return "benign";
      case ErrorOutcome::Corrupted: return "corrupted";
      case ErrorOutcome::NaN: return "nan";
      case ErrorOutcome::OutOfBounds: return "out-of-bounds";
    }
    return "?";
}

void
MemoryErrorInjector::flipRandomBits(Tensor &t, std::uint64_t n)
{
    const std::uint64_t bits =
        static_cast<std::uint64_t>(t.raw().size()) * 8;
    MTIA_CHECK_GT(bits, 0u)
        << ": flipRandomBits target tensor is empty";
    for (std::uint64_t i = 0; i < n; ++i)
        t.flipBit(rng_.below(bits));
}

ErrorOutcome
MemoryErrorInjector::injectAndClassify(Tensor &t, double corrupt_rel)
{
    const std::int64_t n = t.numel();
    MTIA_CHECK_GT(n, 0) << ": injectAndClassify target tensor is empty";
    const std::int64_t elem =
        static_cast<std::int64_t>(rng_.below(static_cast<std::uint64_t>(n)));
    const float before = t.at(elem);

    const std::uint64_t elem_bits = dtypeSize(t.dtype()) * 8;
    const std::uint64_t bit =
        static_cast<std::uint64_t>(elem) * elem_bits +
        rng_.below(elem_bits);
    t.flipBit(bit);
    const float after = t.at(elem);

    if (!std::isfinite(after))
        return ErrorOutcome::NaN;
    const double denom = std::max(1e-12, std::abs(
        static_cast<double>(before)));
    const double rel =
        std::abs(static_cast<double>(after) -
                 static_cast<double>(before)) / denom;
    return rel > corrupt_rel ? ErrorOutcome::Corrupted
                             : ErrorOutcome::Benign;
}

ErrorOutcome
MemoryErrorInjector::injectIndexError(std::int64_t &index,
                                      std::int64_t num_rows)
{
    const unsigned bit = static_cast<unsigned>(rng_.below(64));
    index ^= std::int64_t{1} << bit;
    if (index < 0 || index >= num_rows)
        return ErrorOutcome::OutOfBounds;
    return ErrorOutcome::Corrupted; // fetches the wrong embedding row
}

} // namespace mtia
