#include "mem/sram.h"

#include <sstream>

#include "core/check.h"
#include "sim/logging.h"

namespace mtia {

SramPartition::SramPartition(const SramConfig &cfg, unsigned lls_regions)
    : cfg_(cfg), lls_regions_(lls_regions)
{
    if (lls_regions_ > totalRegions())
        MTIA_FATAL("SramPartition: ", lls_regions_,
                   " LLS regions exceed the ", totalRegions(),
                   " available");
}

bool
SramPartition::fitLls(const SramConfig &cfg, Bytes bytes,
                      SramPartition &out)
{
    const Bytes gran = cfg.region_granularity;
    const unsigned total =
        static_cast<unsigned>(cfg.capacity / gran);
    const unsigned needed =
        static_cast<unsigned>((bytes + gran - 1) / gran);
    if (needed > total)
        return false;
    out = SramPartition(cfg, needed);
    return true;
}

Bytes
SramPartition::llsBytes() const
{
    return static_cast<Bytes>(lls_regions_) * cfg_.region_granularity;
}

Bytes
SramPartition::llcBytes() const
{
    return cfg_.capacity - llsBytes();
}

unsigned
SramPartition::totalRegions() const
{
    return static_cast<unsigned>(cfg_.capacity / cfg_.region_granularity);
}

std::string
SramPartition::toString() const
{
    std::ostringstream os;
    os << "LLS " << (llsBytes() >> 20) << "MB / LLC "
       << (llcBytes() >> 20) << "MB";
    return os.str();
}

LlsAllocator::LlsAllocator(Bytes capacity, Bytes alignment)
    : capacity_(capacity), alignment_(alignment)
{
    if (alignment_ == 0)
        MTIA_FATAL("LlsAllocator: alignment must be positive");
}

std::int64_t
LlsAllocator::allocate(Bytes bytes)
{
    const Bytes aligned =
        (bytes + alignment_ - 1) / alignment_ * alignment_;
    if (used_ + aligned > capacity_)
        return -1;
    const Bytes off = used_;
    used_ += aligned;
    if (used_ > peak_)
        peak_ = used_;
    return static_cast<std::int64_t>(off);
}

void
LlsAllocator::release(Bytes mark)
{
    MTIA_CHECK_LE(mark, used_)
        << ": LlsAllocator::release mark above the allocation watermark";
    used_ = mark;
}

bool
LlsAllocator::fits(Bytes bytes) const
{
    const Bytes aligned =
        (bytes + alignment_ - 1) / alignment_ * alignment_;
    return used_ + aligned <= capacity_;
}

} // namespace mtia
