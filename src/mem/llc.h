#ifndef MTIA_MEM_LLC_H_
#define MTIA_MEM_LLC_H_

/**
 * @file
 * Hardware-managed last-level cache (LLC) model for the shared on-chip
 * SRAM. The autotuner partitions the 256 MB SRAM between this LLC and
 * software-managed scratch (LLS) at 32 MB granularity; the LLC then
 * mostly serves FC weights and the 40-60%-cacheable embedding-table
 * traffic of sparse networks.
 *
 * Two views are provided: a trace-driven set-associative LRU model
 * (exact, used for kernels and tests) and Che's analytic approximation
 * for Zipf-distributed streams (fast, used inside the cost model when
 * streaming billions of accesses would be wasteful).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace mtia::telemetry {
class MetricRegistry;
} // namespace mtia::telemetry

namespace mtia {

/** Configuration of the set-associative LLC model. */
struct LlcConfig
{
    Bytes capacity = 128_MiB;
    Bytes line_size = 128;
    unsigned associativity = 16;
};

/** Access statistics. */
struct LlcStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_writebacks = 0;

    double
    hitRate() const
    {
        return accesses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(accesses);
    }
};

/** Trace-driven set-associative LRU cache. */
class LlcModel
{
  public:
    explicit LlcModel(LlcConfig cfg);

    /**
     * Access one byte address.
     * @param addr Byte address.
     * @param write True for stores (marks the line dirty).
     * @return true on hit.
     */
    bool access(std::uint64_t addr, bool write = false);

    /**
     * Access a byte range, touching every line it covers.
     * @return number of line hits.
     */
    std::uint64_t accessRange(std::uint64_t addr, Bytes len,
                              bool write = false);

    /** Drop all contents and statistics. */
    void reset();

    const LlcStats &stats() const { return stats_; }
    const LlcConfig &config() const { return cfg_; }
    std::uint64_t numSets() const { return num_sets_; }

    /**
     * Snapshot the cumulative access totals into @p registry as llc.*
     * gauges labeled {device=@p device} (gauges overwrite, so repeated
     * exports never double-count).
     */
    void exportMetrics(telemetry::MetricRegistry &registry,
                       const std::string &device) const;

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; // last-use stamp
        bool valid = false;
        bool dirty = false;
    };

    LlcConfig cfg_;
    std::uint64_t num_sets_;
    std::uint64_t stamp_ = 0;
    std::vector<Way> ways_; // num_sets_ * associativity, row-major
    LlcStats stats_;
};

/**
 * Che's approximation of the hit rate of an LRU cache holding
 * @p cache_items out of @p n_items accessed with Zipf(alpha)
 * popularity. Accurate to a few percent for the regimes used here.
 */
double zipfLruHitRate(std::uint64_t cache_items, std::uint64_t n_items,
                      double alpha);

} // namespace mtia

#endif // MTIA_MEM_LLC_H_
