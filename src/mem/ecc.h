#ifndef MTIA_MEM_ECC_H_
#define MTIA_MEM_ECC_H_

/**
 * @file
 * SECDED(72,64) extended Hamming code, the scheme a memory controller
 * computes for LPDDR that (unlike server DDR/HBM stacks) has no
 * native ECC. Section 5.1's central trade-off — run without ECC and
 * absorb bit flips, or pay the controller-side overhead — is modeled
 * with this real codec: single-bit errors correct, double-bit errors
 * detect, and the storage overhead (8 check bits per 64 data bits)
 * plus read-modify-write traffic feed the bandwidth penalty model.
 */

#include <cstdint>

namespace mtia {

/** A 72-bit SECDED codeword: 64 data bits + 8 check bits. */
struct EccCodeword
{
    std::uint64_t data = 0;  ///< the 64 data bits (positionally encoded)
    std::uint8_t check = 0;  ///< 7 Hamming parity bits + overall parity

    /** Flip bit @p i of the codeword; i in [0, 72). Bits [0,64) are
     * data bits, [64, 72) are check bits. */
    void flipBit(unsigned i);
};

/** Outcome of decoding a possibly corrupted codeword. */
enum class EccResult : std::uint8_t {
    Ok,                 ///< no error
    CorrectedSingle,    ///< single-bit error corrected
    DetectedDouble,     ///< double-bit error detected, not correctable
};

/** SECDED(72,64) encoder/decoder. */
class EccCodec
{
  public:
    /** Encode 64 data bits into a 72-bit codeword. */
    static EccCodeword encode(std::uint64_t data);

    /**
     * Decode a codeword, correcting a single-bit error in place.
     * @param[in,out] cw The codeword; repaired when correctable.
     * @param[out] data The recovered 64 data bits (valid unless the
     *                  result is DetectedDouble).
     */
    static EccResult decode(EccCodeword &cw, std::uint64_t &data);

    /** Check-bit storage overhead (8/64 = 12.5%). */
    static constexpr double storageOverhead() { return 8.0 / 64.0; }
};

} // namespace mtia

#endif // MTIA_MEM_ECC_H_
