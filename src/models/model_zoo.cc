#include "models/model_zoo.h"

#include <memory>

#include "ops/attention_ops.h"
#include "ops/dense_ops.h"
#include "sim/logging.h"

namespace mtia {

namespace {

/** Append an unfused FC + ReLU pair; returns the activation node. */
int
addFcRelu(Graph &g, int input, std::int64_t batch, std::int64_t in_f,
          std::int64_t out_f, std::uint64_t seed)
{
    const int fc = g.add(
        std::make_shared<FullyConnectedOp>(batch, in_f, out_f,
                                           DType::FP16, false,
                                           Nonlinearity::Relu, seed),
        {input});
    return g.add(std::make_shared<ActivationOp>(Shape{batch, out_f},
                                                Nonlinearity::Relu),
                 {fc});
}

/**
 * One DHEN-style layer: an ensemble of a Factorization-Machine-like
 * block and a Linear Compression block, each LayerNorm-ed, their
 * concatenation compressed back to the layer width, with a skip
 * connection — the stacked-layer recipe of the Section 6 model.
 * Built unfused so the optimization passes have real work to do.
 */
int
addDhenLayer(Graph &g, int input, std::int64_t batch,
             std::int64_t width, std::uint64_t seed)
{
    const int fm = addFcRelu(g, input, batch, width, width, seed);
    const int fm_ln = g.add(
        std::make_shared<LayerNormOp>(batch, width), {fm});
    const int lcb = g.add(
        std::make_shared<FullyConnectedOp>(batch, width, width,
                                           DType::FP16, false,
                                           Nonlinearity::Relu,
                                           seed + 1),
        {input});
    const int lcb_ln = g.add(
        std::make_shared<LayerNormOp>(batch, width), {lcb});
    const int cat = g.add(
        std::make_shared<ConcatOp>(
            std::vector<Shape>{Shape{batch, width},
                               Shape{batch, width}},
            1),
        {fm_ln, lcb_ln});
    const int compress = addFcRelu(g, cat, batch, 2 * width, width,
                                   seed + 2);
    return g.add(std::make_shared<ElementwiseOp>(Shape{batch, width},
                                                 ElementwiseOp::Kind::Add),
                 {compress, input});
}

} // namespace

ModelInfo
buildRankingModel(const RankingModelParams &params)
{
    ModelInfo info;
    info.name = params.name;
    info.batch = params.batch;
    info.embedding_bytes = params.tbe.totalBytes();
    info.host_overhead_fraction = params.host_overhead_fraction;

    Graph &g = info.graph;
    const std::int64_t b = params.batch;
    std::uint64_t seed = 1000;

    // Dense side: bottom MLP.
    int x = g.add(std::make_shared<InputOp>(
                      "dense", Shape{b, params.dense_features}),
                  {}, "dense-input");
    std::int64_t width = params.dense_features;
    for (std::int64_t w : params.bottom_mlp) {
        x = addFcRelu(g, x, b, width, w, seed++);
        width = w;
    }

    // Sparse side: pooled embeddings.
    const int tbe = g.add(
        std::make_shared<TbeOp>(params.tbe, b, params.tbe_pooling,
                                /*weighted=*/false),
        {}, "tbe");
    const std::int64_t tbe_width = params.tbe.tables * params.tbe.dim;

    // Merge dense and sparse features.
    int feat = g.add(
        std::make_shared<ConcatOp>(
            std::vector<Shape>{Shape{b, width}, Shape{b, tbe_width}},
            1),
        {x, tbe}, "feature-concat");
    width += tbe_width;

    // Project to the interaction width.
    if (params.dhen_layers > 0 || params.mha_blocks > 0) {
        feat = addFcRelu(g, feat, b, width, params.dhen_width, seed++);
        width = params.dhen_width;
    }

    for (int layer = 0; layer < params.dhen_layers; ++layer)
        feat = addDhenLayer(g, feat, b, width, seed += 4);

    for (int blk = 0; blk < params.mha_blocks; ++blk) {
        if (width != params.mha_seq * params.mha_dim) {
            feat = addFcRelu(g, feat, b, width,
                             params.mha_seq * params.mha_dim, seed++);
            width = params.mha_seq * params.mha_dim;
        }
        feat = g.add(std::make_shared<MhaOp>(b, params.mha_seq,
                                             params.mha_dim, 4,
                                             DType::FP16, seed++),
                     {feat}, "mha");
    }

    // Top MLP ending in the prediction head.
    for (std::size_t i = 0; i < params.top_mlp.size(); ++i) {
        const std::int64_t w = params.top_mlp[i];
        if (i + 1 == params.top_mlp.size()) {
            const int fc = g.add(
                std::make_shared<FullyConnectedOp>(
                    b, width, w, DType::FP16, false,
                    Nonlinearity::Relu, seed++),
                {feat});
            feat = g.add(
                std::make_shared<ActivationOp>(Shape{b, w},
                                               Nonlinearity::Sigmoid),
                {fc}, "prediction");
        } else {
            feat = addFcRelu(g, feat, b, width, w, seed++);
        }
        width = w;
    }

    g.validate();
    return info;
}

ModelInfo
buildRetrievalModel(std::int64_t batch)
{
    RankingModelParams p;
    p.name = "retrieval";
    p.batch = batch;
    p.dense_features = 128;
    p.bottom_mlp = {128, 64};
    // ~50-100 GB of embeddings: 96 tables x 4M rows x 64 dims FP16.
    p.tbe = TbeTableSpec{.tables = 96,
                         .rows_per_table = 4 << 20,
                         .dim = 64,
                         .dtype = DType::FP16,
                         .zipf_alpha = 0.85};
    p.tbe_pooling = 8;
    p.top_mlp = {256, 64};
    p.dhen_layers = 0;
    // Retrieval preprocessing is host-heavy (Section 2).
    p.host_overhead_fraction = 0.35;
    ModelInfo info = buildRankingModel(p);
    info.latency_slo = fromMillis(50.0);
    return info;
}

ModelInfo
buildEarlyStageModel(std::int64_t batch)
{
    RankingModelParams p;
    p.name = "early-stage";
    p.batch = batch;
    p.dense_features = 256;
    p.bottom_mlp = {256, 128};
    // 100-300 GB class: 160 tables x 8M rows x 64 dims.
    p.tbe = TbeTableSpec{.tables = 160,
                         .rows_per_table = 8 << 20,
                         .dim = 64,
                         .dtype = DType::FP16,
                         .zipf_alpha = 0.9};
    p.tbe_pooling = 24;
    p.top_mlp = {512, 128, 1};
    p.dhen_layers = 1;
    p.dhen_width = 256;
    p.host_overhead_fraction = 0.12;
    return buildRankingModel(p);
}

ModelInfo
buildLateStageModel(std::int64_t batch)
{
    RankingModelParams p;
    p.name = "late-stage";
    p.batch = batch;
    p.dense_features = 512;
    p.bottom_mlp = {512, 256};
    p.tbe = TbeTableSpec{.tables = 192,
                         .rows_per_table = 8 << 20,
                         .dim = 96,
                         .dtype = DType::FP16,
                         .zipf_alpha = 0.95};
    p.tbe_pooling = 40;
    p.top_mlp = {1024, 512, 1};
    p.dhen_layers = 8;
    p.dhen_width = 1024;
    p.mha_blocks = 2;
    p.host_overhead_fraction = 0.08;
    return buildRankingModel(p);
}

ModelInfo
buildHstuModel(std::int64_t batch, double mean_history,
               std::int64_t max_history)
{
    ModelInfo info;
    info.name = "hstu-ranking";
    info.batch = batch;
    info.host_overhead_fraction = 0.1;
    info.latency_slo = fromMillis(200.0);

    Graph &g = info.graph;
    const std::int64_t dim = 256;
    const TbeTableSpec seq_spec{.tables = 1,
                                .rows_per_table = 512 << 20,
                                .dim = dim,
                                .dtype = DType::FP16,
                                .zipf_alpha = 0.8};
    info.embedding_bytes = seq_spec.totalBytes(); // ~256 GB/shard class

    const int hist = g.add(
        std::make_shared<SequenceTbeOp>(seq_spec, batch, mean_history,
                                        max_history),
        {}, "sequence-embeddings");
    int x = hist;
    for (int layer = 0; layer < 4; ++layer) {
        x = g.add(std::make_shared<RaggedAttentionOp>(
                      batch, mean_history, max_history, dim, 4),
                  {x}, "ragged-attention");
    }
    g.validate();
    return info;
}

std::vector<ModelInfo>
figure6Models()
{
    std::vector<ModelInfo> models;
    auto make = [&](const char *name, std::int64_t batch,
                    std::int64_t width, int layers, int mha,
                    std::int64_t tables, std::int64_t rows,
                    std::int64_t pooling, double host_ovh,
                    double alpha = 0.9) {
        RankingModelParams p;
        p.name = name;
        p.batch = batch;
        p.dense_features = 256;
        p.bottom_mlp = {256, 128};
        p.tbe = TbeTableSpec{.tables = tables,
                             .rows_per_table = rows,
                             .dim = 64,
                             .dtype = DType::FP16,
                             .zipf_alpha = alpha};
        p.tbe_pooling = pooling;
        p.top_mlp = {512, 128, 1};
        p.dhen_layers = layers;
        p.dhen_width = width;
        p.mha_blocks = mha;
        p.host_overhead_fraction = host_ovh;
        models.push_back(buildRankingModel(p));
    };

    // Low complexity: 15-105 MFLOPS/sample (Section 7). LC1 runs at a
    // 4K batch with a cache-friendly embedding working set and almost
    // no host-side serving work, which is why it and LC5 top the
    // efficiency chart; LC2 pays for its 512 batch, LC4 for its big
    // tables and host features.
    make("LC1", 4096, 768, 2, 0, 32, 256 << 10, 16, 0.02, 1.02);
    make("LC2", 512, 896, 3, 0, 48, 2 << 20, 24, 0.06);
    make("LC3", 1024, 1024, 4, 0, 64, 4 << 20, 24, 0.10);
    make("LC4", 1024, 1152, 5, 0, 96, 8 << 20, 32, 0.18);
    make("LC5", 2048, 1280, 6, 0, 48, 256 << 10, 16, 0.02, 1.02);

    // High complexity: 480-1000 MFLOPS/sample. HC1 keeps a small
    // memory footprint and pushes batch to 2K; HC2 carries heavy
    // host-side serving features; HC3 is the co-designed case-study
    // model; HC4 is big in every dimension.
    make("HC1", 2048, 2048, 14, 0, 48, 2 << 20, 24, 0.05);
    make("HC2", 256, 2048, 18, 0, 128, 8 << 20, 40, 0.18);
    make("HC3", 512, 2048, 26, 2, 96, 8 << 20, 32, 0.05);
    make("HC4", 256, 2560, 19, 2, 160, 8 << 20, 48, 0.10);
    return models;
}

} // namespace mtia
