#ifndef MTIA_MODELS_CASE_STUDY_H_
#define MTIA_MODELS_CASE_STUDY_H_

/**
 * @file
 * The Section 6 case study: one of Meta's top-five ranking models,
 * ported to MTIA 2i over eight months while its complexity grew from
 * 140 to 940 MFLOPS/sample. Provides the model at each evolution
 * point, the optimization timeline for Figure 4, and the
 * rejected-vs-accepted model-change pair (tripled remote embedding
 * inputs vs two extra DHEN layers).
 */

#include <string>
#include <vector>

#include "models/model_zoo.h"

namespace mtia {

/**
 * Build the case-study model as of @p month (0..8). Structure: a
 * DHEN-based merge network with an In-Batch-Broadcast on the
 * user-side inputs, hundreds of LayerNorms, sibling-transpose-FC
 * patterns, and (from month 4) MHA blocks.
 *
 * @param width_scale Variant knob (the paper's multiple lines).
 */
ModelInfo buildCaseStudyModel(int month, double width_scale = 1.0);

/** One step of the Figure 4 optimization timeline. */
struct CaseStudyStage
{
    int month;
    std::string label;
    bool fusions;            ///< vertical/sibling/LN/MHA fusion passes
    bool memory_aware;       ///< memory-aware operator scheduling
    bool coordinated;        ///< tuned FC kernel variants
    bool defer_ibb;          ///< deferred in-batch broadcast
    bool tbe_consolidated;   ///< weighted+unweighted TBE merged (Fig 5)
    double frequency_ghz;    ///< device clock
};

/** The eight-month optimization timeline. */
std::vector<CaseStudyStage> caseStudyStages();

/**
 * The rejected model change: triple the remote embedding inputs to
 * the merge network, blowing the activation buffer out of LLS
 * (Section 6 reports a 90% throughput drop).
 */
ModelInfo buildCaseStudyRejectedChange(double width_scale = 1.0);

/**
 * The accepted alternative: two additional DHEN layers deepen the
 * merge network for similar quality while keeping activations
 * pinned in SRAM.
 */
ModelInfo buildCaseStudyAlternative(double width_scale = 1.0);

} // namespace mtia

#endif // MTIA_MODELS_CASE_STUDY_H_
