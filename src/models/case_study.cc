#include "models/case_study.h"

#include <memory>

#include "ops/attention_ops.h"
#include "ops/dense_ops.h"
#include "core/check.h"

namespace mtia {

namespace {

constexpr std::int64_t kBatch = 2048;
constexpr std::int64_t kUserRows = kBatch / 4; // pre-IBB user rows

/** FC + ReLU pair (unfused; passes fuse them). */
int
addFcRelu(Graph &g, int input, std::int64_t batch, std::int64_t in_f,
          std::int64_t out_f, std::uint64_t seed)
{
    const int fc = g.add(
        std::make_shared<FullyConnectedOp>(batch, in_f, out_f,
                                           DType::FP16, false,
                                           Nonlinearity::Relu, seed),
        {input});
    return g.add(std::make_shared<ActivationOp>(Shape{batch, out_f},
                                                Nonlinearity::Relu),
                 {fc});
}

/** DHEN layer with the parallel-LayerNorm pattern. */
int
addDhenLayer(Graph &g, int input, std::int64_t batch,
             std::int64_t width, std::uint64_t seed)
{
    const int fm = addFcRelu(g, input, batch, width, width, seed);
    const int fm_ln =
        g.add(std::make_shared<LayerNormOp>(batch, width), {fm});
    const int lcb = g.add(
        std::make_shared<FullyConnectedOp>(batch, width, width,
                                           DType::FP16, false,
                                           Nonlinearity::Relu, seed + 1),
        {input});
    const int lcb_ln =
        g.add(std::make_shared<LayerNormOp>(batch, width), {lcb});
    const int cat = g.add(
        std::make_shared<ConcatOp>(
            std::vector<Shape>{Shape{batch, width}, Shape{batch, width}},
            1),
        {fm_ln, lcb_ln});
    const int compress =
        addFcRelu(g, cat, batch, 2 * width, width, seed + 2);
    return g.add(std::make_shared<ElementwiseOp>(
                     Shape{batch, width}, ElementwiseOp::Kind::Add),
                 {compress, input});
}

/**
 * Sibling-transpose-FC merge head: transpose -> three parallel FCs ->
 * concat -> reduce FC -> transpose back. The fusion pass collapses
 * the first four nodes into one FusedTransposeFcOp.
 */
int
addMergeHead(Graph &g, int input, std::int64_t batch,
             std::int64_t width, std::uint64_t seed)
{
    const int tr =
        g.add(std::make_shared<TransposeOp>(Shape{batch, width}),
              {input});
    std::vector<int> branches;
    std::vector<Shape> branch_shapes;
    for (int i = 0; i < 3; ++i) {
        branches.push_back(g.add(
            std::make_shared<FullyConnectedOp>(width, batch, batch,
                                               DType::FP16, false,
                                               Nonlinearity::Relu,
                                               seed + i),
            {tr}));
        branch_shapes.push_back(Shape{width, batch});
    }
    const int cat = g.add(
        std::make_shared<ConcatOp>(branch_shapes, 1), branches);
    const int reduce = g.add(
        std::make_shared<FullyConnectedOp>(width, 3 * batch, batch,
                                           DType::FP16, false,
                                           Nonlinearity::Relu,
                                           seed + 3),
        {cat});
    return g.add(std::make_shared<TransposeOp>(Shape{width, batch}),
                 {reduce});
}

ModelInfo
buildCaseStudyGraph(int month, double width_scale,
                    std::int64_t tbe_tables, int extra_dhen_layers)
{
    MTIA_CHECK_GE(month, 0) << ": case-study month";
    MTIA_CHECK_LE(month, 8) << ": case-study month";
    ModelInfo info;
    info.name = "case-study-m" + std::to_string(month);
    info.batch = kBatch;
    info.host_overhead_fraction = 0.12;
    info.latency_slo = fromMillis(100.0);

    auto width = static_cast<std::int64_t>(
        (1280 + 160 * month) * width_scale) / 32 * 32;
    const int dhen_layers = 6 + month + extra_dhen_layers;
    const int mha_blocks = month >= 4 ? 2 : 0;

    // Tens of GB of embeddings, sharded across two accelerators.
    const TbeTableSpec tbe_spec{.tables = tbe_tables,
                                .rows_per_table = 512 << 10,
                                .dim = 256,
                                .dtype = DType::FP16,
                                .zipf_alpha = 0.95};
    info.embedding_bytes = tbe_spec.totalBytes();

    Graph &g = info.graph;
    std::uint64_t seed = 5000;

    // User-side inputs arrive once per request and are broadcast to
    // the ad-aligned batch (In-Batch Broadcast).
    int user = g.add(
        std::make_shared<InputOp>("user", Shape{kUserRows, 256}), {},
        "user-input");
    user = g.add(std::make_shared<BroadcastOp>(Shape{kUserRows, 256},
                                               kBatch / kUserRows),
                 {user}, "ibb");
    int dense = addFcRelu(g, user, kBatch, 256, 128, seed++);

    const int tbe = g.add(
        std::make_shared<TbeOp>(tbe_spec, kBatch, 8, false), {},
        "remote-embeddings");
    const std::int64_t tbe_width = tbe_spec.tables * tbe_spec.dim;

    int feat = g.add(
        std::make_shared<ConcatOp>(
            std::vector<Shape>{Shape{kBatch, 128},
                               Shape{kBatch, tbe_width}},
            1),
        {dense, tbe}, "merge-concat");
    feat = addFcRelu(g, feat, kBatch, 128 + tbe_width, width, seed++);

    for (int layer = 0; layer < dhen_layers; ++layer)
        feat = addDhenLayer(g, feat, kBatch, width, seed += 4);

    feat = addMergeHead(g, feat, kBatch, width, seed += 4);
    // Merge head emits [batch, width] again.

    for (int blk = 0; blk < mha_blocks; ++blk) {
        if (width != 16 * 128) {
            feat = addFcRelu(g, feat, kBatch, width, 16 * 128, seed++);
            width = 16 * 128;
        }
        feat = g.add(std::make_shared<MhaOp>(kBatch, 16, 128, 4,
                                             DType::FP16, seed++),
                     {feat}, "mha");
    }

    feat = addFcRelu(g, feat, kBatch, width, 512, seed++);
    const int head = g.add(
        std::make_shared<FullyConnectedOp>(kBatch, 512, 1, DType::FP16,
                                           false, Nonlinearity::Relu,
                                           seed++),
        {feat});
    g.add(std::make_shared<ActivationOp>(Shape{kBatch, 1},
                                         Nonlinearity::Sigmoid),
          {head}, "prediction");

    g.validate();
    return info;
}

} // namespace

ModelInfo
buildCaseStudyModel(int month, double width_scale)
{
    return buildCaseStudyGraph(month, width_scale, /*tbe_tables=*/96,
                               /*extra_dhen_layers=*/0);
}

ModelInfo
buildCaseStudyRejectedChange(double width_scale)
{
    // Triple the remote embedding inputs: the merge-concat and the
    // first merge FC blow the activation buffer out of SRAM.
    ModelInfo info = buildCaseStudyGraph(6, width_scale,
                                         /*tbe_tables=*/288, 0);
    info.name = "case-study-rejected";
    return info;
}

ModelInfo
buildCaseStudyAlternative(double width_scale)
{
    // Similar quality win from two extra DHEN layers that deepen the
    // computation while keeping activations pinned in SRAM.
    ModelInfo info = buildCaseStudyGraph(6, width_scale,
                                         /*tbe_tables=*/96, 2);
    info.name = "case-study-alternative";
    return info;
}

std::vector<CaseStudyStage>
caseStudyStages()
{
    return {
        {0, "initial out-of-the-box port", false, false, false, false,
         false, 1.1},
        {1, "FC kernel variant selection", false, false, true, false,
         false, 1.1},
        {2, "graph fusions + custom MHA transpose", true, false, true,
         false, false, 1.1},
        {3, "memory-aware operator scheduling", true, true, true, false,
         false, 1.1},
        {4, "model growth absorbed (MHA blocks land)", true, true, true,
         false, false, 1.1},
        {5, "deferred in-batch broadcast", true, true, true, true,
         false, 1.1},
        {6, "SRAM-friendly model change (extra DHEN layers)", true,
         true, true, true, false, 1.1},
        {7, "TBE consolidation in serving", true, true, true, true,
         true, 1.1},
        {8, "frequency uplift to 1.35 GHz", true, true, true, true,
         true, 1.35},
    };
}

} // namespace mtia
