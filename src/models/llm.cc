#include "models/llm.h"

#include <algorithm>

#include "chip/kernel_cost_model.h"

namespace mtia {

double
LlamaConfig::params() const
{
    // Per layer: QKV + output projections (accounting for GQA) plus
    // the gated FFN (three matrices), plus embeddings/head.
    const double d = static_cast<double>(dim);
    const double qkv = d * d *
        (1.0 + 2.0 * static_cast<double>(kv_heads) /
                   static_cast<double>(heads));
    const double o = d * d;
    const double ffn3 = 3.0 * d * static_cast<double>(ffn);
    const double per_layer = qkv + o + ffn3;
    const double emb = 2.0 * static_cast<double>(vocab) * d;
    return per_layer * layers + emb;
}

Bytes
LlamaConfig::paramBytes(DType dt) const
{
    return static_cast<Bytes>(
        params() * static_cast<double>(dtypeSize(dt)));
}

LlamaConfig
LlamaConfig::llama2_7b()
{
    return {"llama2-7b", 32, 4096, 11008, 32, 32, 32000};
}

LlamaConfig
LlamaConfig::llama3_8b()
{
    return {"llama3-8b", 32, 4096, 14336, 32, 8, 128256};
}

LlamaConfig
LlamaConfig::llama3_70b()
{
    return {"llama3-70b", 80, 8192, 28672, 64, 8, 128256};
}

LlmLatency
evaluateLlm(const Device &dev, const LlamaConfig &cfg,
            std::int64_t prompt_len, DType dtype)
{
    LlmLatency out;
    const double flops_per_token = 2.0 * cfg.params();
    const double peak = dev.peakGemmFlops(dtype);
    // Large batched GEMMs in prefill sustain high efficiency; weight
    // streaming overlaps because every weight is reused prompt_len
    // times.
    const double prefill_eff = 0.75;
    const double prefill_flops =
        flops_per_token * static_cast<double>(prompt_len);
    const Tick prefill_compute =
        fromSeconds(prefill_flops / (peak * prefill_eff));
    const Tick prefill_weights = dev.dram().readTime(
        cfg.paramBytes(dtype)); // one full pass, overlapped
    out.prefill = std::max(prefill_compute, prefill_weights);

    // Decode: one token reuses nothing; every weight streams from
    // LPDDR once per step. MHA and FFN are both bandwidth-bound.
    const Tick decode_weights =
        dev.dram().readTime(cfg.paramBytes(dtype));
    const Tick decode_compute =
        fromSeconds(flops_per_token / (peak * 0.3));
    out.decode_per_token = std::max(decode_weights, decode_compute);
    return out;
}

} // namespace mtia
