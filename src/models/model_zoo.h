#ifndef MTIA_MODELS_MODEL_ZOO_H_
#define MTIA_MODELS_MODEL_ZOO_H_

/**
 * @file
 * Synthetic analogs of Meta's production recommendation models
 * (Table 1 and Section 7). Each builder produces a real operator
 * graph whose per-sample complexity, embedding footprint, and batch
 * size match the published characteristics; the LC1-LC5 / HC1-HC4
 * registry drives the Figure 6 sweep.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "ops/sparse_ops.h"

namespace mtia {

/** A built model plus its serving-relevant metadata. */
struct ModelInfo
{
    std::string name;
    Graph graph;
    std::int64_t batch = 0;
    /** Embedding (sparse) parameter bytes — 90% of model size. */
    Bytes embedding_bytes = 0;
    /** Host-side work per request relative to device work (feature
     * preprocessing, merge networks that stay on the CPU, ...). */
    double host_overhead_fraction = 0.05;
    /** Serving latency SLO. */
    Tick latency_slo = fromMillis(100.0);

    double
    mflopsPerSample() const
    {
        return batch == 0
            ? 0.0
            : graph.totalFlops() / static_cast<double>(batch) / 1e6;
    }
};

/** Tunable knobs of the generic ranking-model builder. */
struct RankingModelParams
{
    std::string name = "ranking";
    std::int64_t batch = 512;
    std::int64_t dense_features = 256;
    std::vector<std::int64_t> bottom_mlp = {256, 128};
    TbeTableSpec tbe{};
    std::int64_t tbe_pooling = 32;
    std::vector<std::int64_t> top_mlp = {512, 256, 1};
    /** DHEN-style stacked interaction layers (0 = plain DLRM). */
    int dhen_layers = 0;
    std::int64_t dhen_width = 512;
    /** MHA blocks appended after the DHEN stack. */
    int mha_blocks = 0;
    std::int64_t mha_seq = 16;
    std::int64_t mha_dim = 128;
    double host_overhead_fraction = 0.05;
};

/** Build a DLRM/DHEN-family ranking model. */
ModelInfo buildRankingModel(const RankingModelParams &params);

/** Table 1 archetypes. */
ModelInfo buildRetrievalModel(std::int64_t batch = 4096);
ModelInfo buildEarlyStageModel(std::int64_t batch = 2048);
ModelInfo buildLateStageModel(std::int64_t batch = 512);

/** HSTU-style generative recommender (ragged attention). */
ModelInfo buildHstuModel(std::int64_t batch = 64,
                         double mean_history = 256.0,
                         std::int64_t max_history = 2048);

/** The nine production models of Figure 6 (LC1..LC5, HC1..HC4). */
std::vector<ModelInfo> figure6Models();

} // namespace mtia

#endif // MTIA_MODELS_MODEL_ZOO_H_
