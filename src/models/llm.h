#ifndef MTIA_MODELS_LLM_H_
#define MTIA_MODELS_LLM_H_

/**
 * @file
 * LLM serving cost on MTIA 2i (Sections 3.6 and 8): Llama-family
 * transformer configurations and a prefill/decode latency model. The
 * decode step must stream every weight from LPDDR once per token,
 * which is why the chip meets the 600 ms time-to-first-token budget
 * but misses the 60 ms/token decode budget.
 */

#include <cstdint>
#include <string>

#include "chip/device.h"
#include "sim/types.h"
#include "tensor/dtype.h"

namespace mtia {

/** A decoder-only transformer configuration. */
struct LlamaConfig
{
    std::string name;
    int layers = 0;
    std::int64_t dim = 0;
    std::int64_t ffn = 0;
    std::int64_t heads = 0;
    std::int64_t kv_heads = 0;
    std::int64_t vocab = 0;

    /** Total parameter count. */
    double params() const;

    /** Parameter bytes at a given dtype. */
    Bytes paramBytes(DType dt) const;

    static LlamaConfig llama2_7b();
    static LlamaConfig llama3_8b();
    static LlamaConfig llama3_70b();
};

/** Latency verdict for serving one model on one device. */
struct LlmLatency
{
    Tick prefill = 0;           ///< time to first token
    Tick decode_per_token = 0;  ///< steady-state decode step
    Tick ttft_budget = fromMillis(600.0);
    Tick decode_budget = fromMillis(60.0);

    bool meetsTtft() const { return prefill <= ttft_budget; }
    bool meetsDecode() const
    {
        return decode_per_token <= decode_budget;
    }
};

/**
 * Evaluate prefill and decode latency of @p cfg on @p dev with a
 * prompt of @p prompt_len tokens, weights in @p dtype.
 */
LlmLatency evaluateLlm(const Device &dev, const LlamaConfig &cfg,
                       std::int64_t prompt_len,
                       DType dtype = DType::FP16);

} // namespace mtia

#endif // MTIA_MODELS_LLM_H_
