#ifndef MTIA_MODELS_WORKLOAD_H_
#define MTIA_MODELS_WORKLOAD_H_

/**
 * @file
 * Synthetic serving traffic standing in for Meta's production traces:
 * Poisson request arrivals with optional diurnal modulation and load
 * spikes, and replayable traces for offline replayer tests (the
 * paper's traffic-replay and autotuning workflows).
 */

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/types.h"

namespace mtia {

/** One inference request. */
struct Request
{
    std::uint64_t id = 0;
    Tick arrival = 0;
    /** Candidate items to score (batch rows this request produces). */
    std::int64_t candidates = 0;
};

/** Traffic-shape parameters. */
struct TrafficParams
{
    double qps = 1000.0;
    Tick duration = fromSeconds(10.0);
    std::int64_t candidates_mean = 64;
    /** Diurnal modulation depth in [0, 1): rate swings +-depth over
     * a (scaled) day. */
    double diurnal_depth = 0.0;
    Tick diurnal_period = fromSeconds(10.0);
    /** Probability that a request is part of a burst. */
    double burst_fraction = 0.0;
};

/** Generate a replayable trace. */
std::vector<Request> generateTrace(Rng &rng, const TrafficParams &p);

/** Peak-to-average QPS ratio of a trace over fixed windows. */
double peakToAverage(const std::vector<Request> &trace, Tick window);

} // namespace mtia

#endif // MTIA_MODELS_WORKLOAD_H_
