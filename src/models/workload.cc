#include "models/workload.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/logging.h"

namespace mtia {

std::vector<Request>
generateTrace(Rng &rng, const TrafficParams &p)
{
    if (p.qps <= 0.0)
        MTIA_FATAL("generateTrace: qps must be positive");
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(
        p.qps * toSeconds(p.duration) * 1.2));

    Tick now = 0;
    std::uint64_t id = 0;
    while (now < p.duration) {
        // Local rate with diurnal modulation.
        double rate = p.qps;
        if (p.diurnal_depth > 0.0) {
            const double phase = 2.0 * M_PI *
                static_cast<double>(now % p.diurnal_period) /
                static_cast<double>(p.diurnal_period);
            rate *= 1.0 + p.diurnal_depth * std::sin(phase);
        }
        now += fromSeconds(rng.exponential(rate));
        if (now >= p.duration)
            break;
        Request r;
        r.id = id++;
        r.arrival = now;
        r.candidates = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   rng.poisson(static_cast<double>(p.candidates_mean))));
        trace.push_back(r);
        // Bursts: a cluster of near-simultaneous arrivals.
        if (p.burst_fraction > 0.0 && rng.chance(p.burst_fraction)) {
            const int extra = static_cast<int>(1 + rng.below(4));
            for (int i = 0; i < extra && now < p.duration; ++i) {
                Request b = r;
                b.id = id++;
                b.arrival = now + fromMicros(rng.uniform(1.0, 100.0));
                trace.push_back(b);
            }
        }
    }
    std::sort(trace.begin(), trace.end(),
              [](const Request &a, const Request &b) {
                  return a.arrival < b.arrival;
              });
    return trace;
}

double
peakToAverage(const std::vector<Request> &trace, Tick window)
{
    if (trace.empty() || window == 0)
        return 0.0;
    std::map<Tick, std::uint64_t> buckets;
    for (const Request &r : trace)
        ++buckets[r.arrival / window];
    std::uint64_t peak = 0;
    std::uint64_t total = 0;
    for (const auto &[bucket, n] : buckets) {
        peak = std::max(peak, n);
        total += n;
    }
    const double avg =
        static_cast<double>(total) / static_cast<double>(buckets.size());
    return static_cast<double>(peak) / avg;
}

} // namespace mtia
