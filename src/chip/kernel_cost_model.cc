#include "chip/kernel_cost_model.h"

#include <algorithm>
#include <sstream>

#include "core/check.h"

namespace mtia {

std::string
placementName(Placement p)
{
    switch (p) {
      case Placement::LocalMemory: return "local-memory";
      case Placement::Lls: return "lls";
      case Placement::Llc: return "llc";
      case Placement::Dram: return "dram";
    }
    return "?";
}

std::string
FcShape::toString() const
{
    std::ostringstream os;
    os << m << "x" << n << "x" << k;
    return os.str();
}

namespace {

/** Pick the largest contributor for the bottleneck label. */
const char *
bottleneckName(const KernelTime &t)
{
    const Tick mx = std::max({t.compute, t.weight_stream, t.act_stream,
                              t.output_stream, t.issue});
    if (mx == t.compute)
        return "compute";
    if (mx == t.weight_stream)
        return "weight-stream";
    if (mx == t.act_stream)
        return "activation-stream";
    if (mx == t.output_stream)
        return "output-stream";
    return "instruction-issue";
}

} // namespace

Tick
KernelCostModel::launchCost(bool include_launch) const
{
    return include_launch ? dev_.jobLaunchTime() : 0;
}

BytesPerSec
KernelCostModel::placementBandwidth(Placement p, bool coordinated) const
{
    switch (p) {
      case Placement::LocalMemory:
        return dev_.localMemoryBandwidth() * dev_.config().peCount();
      case Placement::Lls:
      case Placement::Llc:
        return dev_.sramBandwidth();
      case Placement::Dram: {
        const double edge = dev_.noc().dramEdgeEfficiency(
            dev_.config().pe_cols, coordinated);
        return dev_.dram().effectiveReadBandwidth() * edge;
      }
    }
    MTIA_UNREACHABLE("placementBandwidth: unknown placement");
}

KernelTime
KernelCostModel::fc(const FcShape &shape, const FcOptions &opt) const
{
    KernelTime t;

    // --- Compute: DPE peak scaled by MAC-tile shape utilization.
    const double util =
        dev_.dpe().shapeUtilization(shape.m, shape.n, shape.k);
    const double peak =
        dev_.peakGemmFlops(opt.dtype, opt.sparse_24) * util;
    t.compute = fromSeconds(shape.flops() / peak);

    // --- Operand streams (overlap with compute, but every DRAM-
    // destined stream shares the single LPDDR channel; scattered
    // activation traffic additionally forfeits the coordinated-
    // streaming efficiency).
    Bytes dram_bytes = 0;
    bool dram_scattered = false;
    auto stream = [&](Bytes bytes, Placement p, bool is_weights,
                      bool is_write) -> Tick {
        if (p != Placement::Dram)
            return transferTicks(bytes, placementBandwidth(p, true));
        // Writes cost more under controller ECC (read-modify-write).
        const double write_amp = is_write
            ? dev_.dram().effectiveReadBandwidth() /
                dev_.dram().effectiveWriteBandwidth()
            : 1.0;
        dram_bytes +=
            static_cast<Bytes>(static_cast<double>(bytes) * write_amp);
        if (!is_weights)
            dram_scattered = true;
        return 0; // accounted in the combined DRAM term below
    };
    t.weight_stream =
        stream(shape.weightBytes(opt.dtype), opt.weights, true, false);
    t.act_stream = stream(shape.activationBytes(opt.dtype),
                          opt.activations, false, false);
    // Accumulator leaves the RE in FP32 before any down-cast.
    t.output_stream = stream(shape.outputBytes(DType::FP32),
                             opt.output, false, true);
    const bool dram_coordinated =
        opt.coordinated_loading && !dram_scattered;
    const Tick dram_time = transferTicks(
        dram_bytes,
        placementBandwidth(Placement::Dram, dram_coordinated));
    if (opt.weights == Placement::Dram)
        t.weight_stream = dram_time;
    else if (opt.activations == Placement::Dram ||
             opt.output == Placement::Dram)
        t.act_stream = std::max(t.act_stream, dram_time);

    // --- Custom-instruction issue, on the per-PE slice of the work.
    const unsigned rows = dev_.config().pe_rows;
    const unsigned cols = dev_.config().pe_cols;
    const std::int64_t m_pe = (shape.m + rows - 1) / rows;
    const std::int64_t n_pe = (shape.n + cols - 1) / cols;
    const std::uint64_t instr =
        dev_.commandProcessor().gemmInstructions(m_pe, n_pe, shape.k);
    t.issue =
        dev_.commandProcessor().issueTime(instr, dev_.frequencyGhz());

    // --- Dynamic INT8 quant/dequant stages (serial with the GEMM).
    if (opt.dynamic_int8) {
        // Quantize activations: FP16 in, INT8 out, 2 SIMD ops/elem
        // (the RE supplies row min/max for free after the previous
        // matmul).
        const std::int64_t act_elems = shape.m * shape.k;
        const Bytes act_traffic =
            static_cast<Bytes>(act_elems) * (2 + 1); // read fp16, write i8
        const Tick quant = std::max(
            fromSeconds(2.0 * static_cast<double>(act_elems) /
                        dev_.peakSimdOps()),
            transferTicks(act_traffic, dev_.sramBandwidth()));
        // Dequantize output: INT32 accum in, FP16 out, 2 ops/elem.
        const std::int64_t out_elems = shape.m * shape.n;
        const Bytes out_traffic =
            static_cast<Bytes>(out_elems) * (4 + 2);
        const Tick dequant = std::max(
            fromSeconds(2.0 * static_cast<double>(out_elems) /
                        dev_.peakSimdOps()),
            transferTicks(out_traffic, dev_.sramBandwidth()));
        t.quant_overhead = quant + dequant;
    }

    t.launch = launchCost(opt.include_launch);
    t.total = t.launch + t.quant_overhead +
        std::max({t.compute, t.weight_stream, t.act_stream,
                  t.output_stream, t.issue});
    t.bottleneck = bottleneckName(t);
    return t;
}

KernelTime
KernelCostModel::tbe(const TbeShape &shape, const TbeOptions &opt) const
{
    MTIA_CHECK_GE(opt.sram_hit_rate, 0.0) << ": tbe SRAM hit rate";
    MTIA_CHECK_LE(opt.sram_hit_rate, 1.0) << ": tbe SRAM hit rate";
    KernelTime t;

    const Bytes total = shape.bytesFetched();
    const auto dram_bytes = static_cast<Bytes>(
        static_cast<double>(total) * (1.0 - opt.sram_hit_rate));

    // Misses stream from LPDDR; embedding-row fetches are scattered,
    // so they never reach the coordinated streaming efficiency.
    t.weight_stream = transferTicks(
        dram_bytes, placementBandwidth(Placement::Dram, false));
    // Every fetched row crosses the SRAM fabric once.
    t.act_stream = transferTicks(total, dev_.sramBandwidth());
    // Pooled output: one row per (table, batch) pair.
    t.output_stream = transferTicks(
        static_cast<Bytes>(shape.tables) * shape.batch *
            shape.rowBytes(),
        dev_.sramBandwidth());

    // SIMD accumulation of fetched rows into the pooled result.
    const double ops_per_row =
        static_cast<double>(shape.dim) * (opt.weighted ? 2.0 : 1.0);
    t.compute = fromSeconds(
        static_cast<double>(shape.rowsFetched()) * ops_per_row /
        dev_.peakSimdOps());

    // Issue path: rows are spread across the PE grid.
    const std::uint64_t rows_pe =
        (static_cast<std::uint64_t>(shape.rowsFetched()) +
         dev_.config().peCount() - 1) /
        dev_.config().peCount();
    const std::uint64_t instr =
        dev_.commandProcessor().tbeInstructions(rows_pe);
    t.issue =
        dev_.commandProcessor().issueTime(instr, dev_.frequencyGhz());

    t.launch = launchCost(opt.include_launch);
    t.total = t.launch +
        std::max({t.compute, t.weight_stream, t.act_stream,
                  t.output_stream, t.issue});
    t.bottleneck = bottleneckName(t);
    return t;
}

KernelTime
KernelCostModel::simdOp(std::int64_t elements, double ops_per_element,
                        Bytes mem_bytes, bool include_launch,
                        Placement mem) const
{
    KernelTime t;
    t.compute = fromSeconds(static_cast<double>(elements) *
                            ops_per_element / dev_.peakSimdOps());
    // Vector-op memory traffic is scattered, never a coordinated
    // stream: overflowed activations pay the full LPDDR cliff.
    t.act_stream =
        transferTicks(mem_bytes, placementBandwidth(mem, false));
    t.launch = launchCost(include_launch);
    t.total = t.launch + std::max(t.compute, t.act_stream);
    t.bottleneck = bottleneckName(t);
    return t;
}

KernelTime
KernelCostModel::layerNorm(std::int64_t rows, std::int64_t cols,
                           bool include_launch, Placement mem) const
{
    // Three passes: row mean, row variance, elementwise normalize.
    const std::int64_t elems = rows * cols;
    const Bytes traffic = static_cast<Bytes>(elems) * 2 * 2; // r+w fp16
    return simdOp(elems, 3.0, traffic, include_launch, mem);
}

KernelTime
KernelCostModel::softmax(std::int64_t rows, std::int64_t cols,
                         bool include_launch, Placement mem) const
{
    // Five passes: max, subtract, exp (LUT), sum, divide.
    const std::int64_t elems = rows * cols;
    Bytes traffic = static_cast<Bytes>(elems) * 2 * 2;
    double passes = 5.0;
    if (cols < 32) {
        // Inner dimension too small for full SIMD width: transpose in
        // and out through the MLU (extra traffic + two passes).
        traffic += static_cast<Bytes>(elems) * 2 * 2;
        passes += 2.0;
    }
    return simdOp(elems, passes, traffic, include_launch, mem);
}

} // namespace mtia
