#include "chip/chip_config.h"

namespace mtia {

double
ChipConfig::peakGemmFlops(DType dtype, bool sparse_24) const
{
    DotProductEngine engine(dpe);
    return engine.peakFlops(reference_frequency_ghz, dtype,
                            sparse_24 && supports_sparsity_24) *
        peCount();
}

double
ChipConfig::peakSimdOps() const
{
    SimdEngine engine(simd);
    return engine.opsPerSec(reference_frequency_ghz) * peCount();
}

ChipConfig
ChipConfig::mtia2i()
{
    ChipConfig cfg;
    cfg.name = "MTIA 2i";
    cfg.process = "TSMC 5nm";
    cfg.reference_frequency_ghz = 1.35;
    cfg.design_frequency_ghz = 1.1;
    cfg.pe_rows = 8;
    cfg.pe_cols = 8;
    cfg.local_memory_per_pe = 384_KiB;
    cfg.local_memory_bandwidth = gbPerSec(1000.0);
    cfg.tdp_watts = 85.0;
    cfg.typical_watts = 65.0;
    cfg.idle_watts = 18.0;

    // DPE: 2 tiles x 512 MACs/cycle x 64 PEs x 1.35 GHz x 2
    //  = 176.9 TFLOPS FP16 (354 INT8, 708 INT8 sparse).
    cfg.dpe = DpeConfig{};
    cfg.simd = SimdConfig{.lanes = 64, .lut_entries = 1024};
    cfg.isa = IsaFeatures{};          // all new instructions present
    cfg.work_queue = WorkQueueConfig{};
    cfg.fabric = FabricInterfaceConfig{};

    cfg.sram = SramConfig{.capacity = 256_MiB,
                          .region_granularity = 32_MiB,
                          .bandwidth = gbPerSec(2700.0)};
    cfg.lpddr = LpddrConfig{.capacity = 128_GiB,
                            .peak_bandwidth = gbPerSec(204.8),
                            .ecc = EccMode::Controller};
    cfg.noc = NocConfig{.bisection_bandwidth = gbPerSec(2700.0),
                        .fragmenter = PacketFragmenter{},
                        .broadcast_reads = true,
                        .start_latency = fromNanos(50.0)};
    cfg.pcie = PcieConfig{.generation = 5, .lanes = 8};
    cfg.control = ControlCoreConfig{.cores = 4};
    cfg.decompress_rate = gbPerSec(25.0);
    cfg.supports_sparsity_24 = true;
    cfg.supports_dynamic_int8 = true;
    return cfg;
}

ChipConfig
ChipConfig::mtia1()
{
    ChipConfig cfg;
    cfg.name = "MTIA 1";
    cfg.process = "TSMC 7nm";
    cfg.reference_frequency_ghz = 0.8;
    cfg.design_frequency_ghz = 0.8;
    cfg.pe_rows = 8;
    cfg.pe_cols = 8;
    cfg.local_memory_per_pe = 128_KiB;
    cfg.local_memory_bandwidth = gbPerSec(400.0);
    cfg.tdp_watts = 35.0;
    cfg.typical_watts = 25.0;
    cfg.idle_watts = 8.0;

    // 51.2 TFLOPS FP16 / 64 PEs / 0.8 GHz / 2 = 500 MACs per cycle.
    cfg.dpe = DpeConfig{.mac_tiles = 2,
                        .tile_rows = 32,
                        .tile_depth = 32,
                        .tile_macs_per_cycle = 250};
    cfg.simd = SimdConfig{.lanes = 64, .lut_entries = 512};
    cfg.isa = IsaFeatures::mtia1();
    cfg.work_queue = WorkQueueConfig::mtia1();
    cfg.fabric = FabricInterfaceConfig{
        .noc_bandwidth = gbPerSec(21.0),
        .descriptor_latency = fromNanos(60.0),
        .prefetch = false};

    cfg.sram = SramConfig{.capacity = 128_MiB,
                          .region_granularity = 32_MiB,
                          .bandwidth = gbPerSec(800.0)};
    cfg.lpddr = LpddrConfig{.capacity = 64_GiB,
                            .peak_bandwidth = gbPerSec(176.0),
                            .ecc = EccMode::Controller};
    cfg.noc = NocConfig{.bisection_bandwidth = gbPerSec(818.0),
                        .fragmenter = PacketFragmenter{},
                        .broadcast_reads = false,
                        .start_latency = fromNanos(70.0)};
    cfg.pcie = PcieConfig{.generation = 4, .lanes = 8};
    cfg.control = ControlCoreConfig{.cores = 1};
    cfg.decompress_rate = 0.0; // no decompression engine
    cfg.supports_sparsity_24 = false;
    cfg.supports_dynamic_int8 = false;
    return cfg;
}

} // namespace mtia
