#ifndef MTIA_CHIP_KERNEL_COST_MODEL_H_
#define MTIA_CHIP_KERNEL_COST_MODEL_H_

/**
 * @file
 * Analytic kernel timing on a Device: the quantitative heart of the
 * reproduction. Every kernel's time is the maximum of its overlapped
 * resource streams — DPE compute, weight stream (DRAM or SRAM),
 * activation stream, output writeback, and the custom-instruction
 * issue path — plus the non-overlapped job launch and (for dynamic
 * INT8) quantize/dequantize stages. The formulas are calibrated
 * against the paper's published operating points:
 *
 *  - >92% of peak FLOPS for 2K x 2K x 2K GEMM (Section 3.3);
 *  - >95% of DRAM bandwidth and 45% latency gain for the
 *    512 x 26592 x 2048 weight-broadcast shape (Section 4.2);
 *  - ~1.6x end-to-end for dynamic INT8 on 2048^3 despite the 2x DPE
 *    rate (Section 4.4);
 *  - 10-15% end-to-end ECC penalty on DRAM-bound kernels (Section 5.1).
 */

#include <cstdint>
#include <string>

#include "chip/device.h"
#include "sim/types.h"
#include "tensor/dtype.h"

namespace mtia {

/** Where a tensor operand resides for a kernel invocation. */
enum class Placement : std::uint8_t {
    LocalMemory,  ///< already staged in PE-local memory
    Lls,          ///< pinned in software-managed SRAM scratch
    Llc,          ///< resident in the hardware-managed SRAM cache
    Dram,         ///< streamed from LPDDR
};

/** Human-readable placement name. */
std::string placementName(Placement p);

/** Problem size of a fully-connected (GEMM) kernel. */
struct FcShape
{
    std::int64_t m = 0; ///< batch rows
    std::int64_t n = 0; ///< output features
    std::int64_t k = 0; ///< input features

    double flops() const
    {
        return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
               static_cast<double>(k);
    }
    Bytes weightBytes(DType dt) const
    {
        return static_cast<Bytes>(n) * k * dtypeSize(dt);
    }
    Bytes activationBytes(DType dt) const
    {
        return static_cast<Bytes>(m) * k * dtypeSize(dt);
    }
    Bytes outputBytes(DType dt) const
    {
        return static_cast<Bytes>(m) * n * dtypeSize(dt);
    }
    std::string toString() const;
};

/** Kernel-variant options for an FC invocation. */
struct FcOptions
{
    DType dtype = DType::FP16;
    bool sparse_24 = false;
    Placement weights = Placement::Llc;
    Placement activations = Placement::Lls;
    Placement output = Placement::Lls;
    /** Decoupled activation preload + weight broadcast across PE
     * columns (the Section 4.2 optimization). */
    bool coordinated_loading = true;
    /** Dynamic INT8: adds the quantize/dequantize stages. */
    bool dynamic_int8 = false;
    /** Charge the per-job eager launch (off when the kernel is fused
     * into an already-running job). */
    bool include_launch = true;
};

/** Problem size of a Table-Batched-Embedding kernel. */
struct TbeShape
{
    std::int64_t tables = 0;
    std::int64_t batch = 0;
    std::int64_t pooling = 0;      ///< rows fetched per bag
    std::int64_t dim = 0;          ///< embedding dimension
    DType dtype = DType::FP16;

    std::int64_t rowsFetched() const { return tables * batch * pooling; }
    Bytes rowBytes() const
    {
        return static_cast<Bytes>(dim) * dtypeSize(dtype);
    }
    Bytes bytesFetched() const { return rowsFetched() * rowBytes(); }
};

/** Options for a TBE invocation. */
struct TbeOptions
{
    /** Fraction of row fetches served by the SRAM (LLC); Section 4.2
     * reports 40-60% in production. */
    double sram_hit_rate = 0.5;
    bool weighted = false;  ///< weighted pooling (extra multiply)
    bool include_launch = true;
};

/** Timing breakdown of one kernel invocation. */
struct KernelTime
{
    Tick compute = 0;
    Tick weight_stream = 0;
    Tick act_stream = 0;
    Tick output_stream = 0;
    Tick issue = 0;
    Tick quant_overhead = 0;
    Tick launch = 0;
    Tick total = 0;
    std::string bottleneck;

    /** Achieved fraction of the bound given by @p ideal. */
    double
    efficiencyVs(Tick ideal) const
    {
        return total == 0
            ? 0.0
            : static_cast<double>(ideal) / static_cast<double>(total);
    }
};

/** Analytic kernel timing against one Device. */
class KernelCostModel
{
  public:
    explicit KernelCostModel(const Device &dev) : dev_(dev) {}

    /** Time a fully-connected kernel. */
    KernelTime fc(const FcShape &shape, const FcOptions &opt = {}) const;

    /** Time a table-batched-embedding kernel. */
    KernelTime tbe(const TbeShape &shape, const TbeOptions &opt = {}) const;

    /**
     * Time an elementwise / reduction SIMD kernel.
     * @param elements Elements processed.
     * @param ops_per_element SIMD operations per element (passes).
     * @param mem_bytes Total memory traffic (reads + writes).
     * @param mem Where that traffic lands; activation buffers that
     *        overflow the SRAM stream from LPDDR instead.
     */
    KernelTime simdOp(std::int64_t elements, double ops_per_element,
                      Bytes mem_bytes, bool include_launch = true,
                      Placement mem = Placement::Lls) const;

    /** LayerNorm: 3 passes (mean, variance, normalize). */
    KernelTime layerNorm(std::int64_t rows, std::int64_t cols,
                         bool include_launch = true,
                         Placement mem = Placement::Lls) const;

    /** Softmax: 5 passes; small inner dims pay a transpose. */
    KernelTime softmax(std::int64_t rows, std::int64_t cols,
                       bool include_launch = true,
                       Placement mem = Placement::Lls) const;

    /** Bandwidth available from a placement, at current clock. */
    BytesPerSec placementBandwidth(Placement p, bool coordinated) const;

    const Device &device() const { return dev_; }

  private:
    Tick launchCost(bool include_launch) const;

    const Device &dev_;
};

} // namespace mtia

#endif // MTIA_CHIP_KERNEL_COST_MODEL_H_
