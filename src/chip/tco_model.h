#ifndef MTIA_CHIP_TCO_MODEL_H_
#define MTIA_CHIP_TCO_MODEL_H_

/**
 * @file
 * Total-cost-of-ownership and efficiency accounting. Meta does not
 * publish absolute costs, so this model works in relative "cost
 * units" calibrated (see tco_model.cc) so the paper's relative
 * results emerge: ~44% average TCO reduction versus the GPU baseline
 * at matched throughput, Perf/TCO being an easier win than Perf/Watt,
 * and the Section 5.4 small-chip utilization advantage.
 */

#include <string>

namespace mtia {

/** Cost/power description of one accelerator platform. */
struct PlatformCost
{
    std::string name;
    double device_capex_units = 0;   ///< per accelerator
    double host_capex_units = 0;     ///< per server (CPU/DRAM/NIC/chassis)
    unsigned devices_per_server = 1;
    double typical_watts = 0;        ///< per accelerator, serving load
    double idle_watts = 0;           ///< per accelerator, idle

    /** MTIA 2i server: 24 accelerators on a Grand Teton host. */
    static PlatformCost mtia2iServer();

    /** GPU baseline: 8 accelerators on the same Grand Teton host. */
    static PlatformCost gpuServer();
};

/** TCO and efficiency calculator. */
class TcoModel
{
  public:
    /**
     * @param energy_units_per_watt Lifetime energy + power-delivery +
     * cooling cost per provisioned watt, in the same units as capex.
     */
    explicit TcoModel(double energy_units_per_watt = 0.04)
        : energy_units_per_watt_(energy_units_per_watt) {}

    /** Amortized TCO units attributable to one accelerator running at
     * @p avg_watts. */
    double tcoPerDevice(const PlatformCost &p, double avg_watts) const;

    /** Throughput per TCO unit. */
    double perfPerTco(double qps, const PlatformCost &p,
                      double avg_watts) const;

    /** Throughput per watt. */
    double
    perfPerWatt(double qps, double avg_watts) const
    {
        return avg_watts <= 0.0 ? 0.0 : qps / avg_watts;
    }

    /**
     * Fractional TCO reduction from serving a fixed throughput on
     * platform @p b instead of @p a (positive = b is cheaper).
     */
    double tcoReduction(double qps_per_dev_a, const PlatformCost &a,
                        double watts_a, double qps_per_dev_b,
                        const PlatformCost &b, double watts_b) const;

  private:
    double energy_units_per_watt_;
};

} // namespace mtia

#endif // MTIA_CHIP_TCO_MODEL_H_
