#ifndef MTIA_CHIP_DEVICE_H_
#define MTIA_CHIP_DEVICE_H_

/**
 * @file
 * A whole accelerator: the chip configuration plus live state — clock
 * (overclockable), SRAM partition (retunable), ECC mode (the Section
 * 5.1 decision), and the power model. On-chip rates scale with the
 * clock; the LPDDR and PCIe interfaces do not, which is exactly why
 * overclocking helps compute-bound models 20% and DRAM-bound models
 * hardly at all.
 */

#include <memory>
#include <string>

#include "chip/chip_config.h"
#include "host/control_core.h"
#include "mem/lpddr.h"
#include "mem/sram.h"
#include "noc/noc.h"
#include "pe/command_processor.h"
#include "pe/dpe.h"
#include "pe/fabric_interface.h"
#include "pe/simd_engine.h"
#include "pe/work_queue_engine.h"

namespace mtia {

/** One accelerator device instance. */
class Device
{
  public:
    explicit Device(ChipConfig cfg);

    const ChipConfig &config() const { return cfg_; }

    /** Current clock (defaults to the reference frequency). */
    double frequencyGhz() const { return frequency_ghz_; }

    /** Overclock / underclock the chip. */
    void setFrequencyGhz(double ghz);

    /** On-chip rate multiplier: current clock / reference clock. */
    double clockScale() const
    {
        return frequency_ghz_ / cfg_.reference_frequency_ghz;
    }

    // Components.
    LpddrChannel &dram() { return dram_; }
    const LpddrChannel &dram() const { return dram_; }
    NocModel &noc() { return noc_; }
    const NocModel &noc() const { return noc_; }
    const DotProductEngine &dpe() const { return dpe_; }
    const SimdEngine &simd() const { return simd_; }
    const CommandProcessor &commandProcessor() const { return cp_; }
    const WorkQueueEngine &workQueue() const { return wqe_; }
    const FabricInterface &fabric() const { return fi_; }
    ControlCore &controlCore() { return control_; }

    /** Current SRAM split between LLS and LLC. */
    const SramPartition &sramPartition() const { return partition_; }
    void setSramPartition(SramPartition p) { partition_ = std::move(p); }

    /**
     * A fresh Device with the same config and live knobs (clock, SRAM
     * partition, ECC mode) but zeroed observability counters. Parallel
     * sweeps give each task its own clone so concurrent cost-model
     * queries never race on the shared device's mutable stats.
     */
    Device cloneConfigured() const;

    // Derived rates at the current clock.
    double peakGemmFlops(DType dtype, bool sparse_24 = false) const;
    double peakSimdOps() const;
    BytesPerSec sramBandwidth() const;
    BytesPerSec localMemoryBandwidth() const; ///< per PE
    BytesPerSec nocBandwidth() const;

    /**
     * Power draw at a given average utilization in [0, 1]. Dynamic
     * power scales with both utilization and clock; the result is
     * capped at TDP.
     */
    double powerWatts(double utilization) const;

    /** Job launch / replace times at the current clock. */
    Tick jobLaunchTime() const;
    Tick jobReplaceTime() const;

    /**
     * Snapshot every instrumented unit (LPDDR, NoC, command processor)
     * plus device-level gauges into @p registry, labeled
     * {device=@p device}.
     */
    void exportTelemetry(telemetry::MetricRegistry &registry,
                         const std::string &device = "device0") const;

  private:
    ChipConfig cfg_;
    double frequency_ghz_;
    LpddrChannel dram_;
    NocModel noc_;
    DotProductEngine dpe_;
    SimdEngine simd_;
    CommandProcessor cp_;
    WorkQueueEngine wqe_;
    FabricInterface fi_;
    ControlCore control_;
    SramPartition partition_;
};

} // namespace mtia

#endif // MTIA_CHIP_DEVICE_H_
