#include "chip/tco_model.h"

#include "core/check.h"

namespace mtia {

// Calibration constants (relative cost units; 1 unit ~ the cost of a
// low-end server component). Not published by the paper; chosen so
// that the model reproduces the paper's relative results:
//   - one GPU costs several times an MTIA 2i module (in-house ASIC on
//     mature LPDDR vs a flagship GPU with HBM);
//   - the shared Grand Teton host platform is identical for both;
//   - at matched throughput the fleet-average TCO reduction lands
//     near the reported 44%, with per-model spread driven by the
//     per-model perf ratios the simulator produces.
// Sensitivity to these constants is reported in EXPERIMENTS.md.

PlatformCost
PlatformCost::mtia2iServer()
{
    PlatformCost p;
    p.name = "mtia2i-server";
    p.device_capex_units = 3.5;
    p.host_capex_units = 30.0;
    p.devices_per_server = 24;
    p.typical_watts = 65.0;
    p.idle_watts = 18.0;
    return p;
}

PlatformCost
PlatformCost::gpuServer()
{
    PlatformCost p;
    p.name = "gpu-server";
    p.device_capex_units = 33.0;
    p.host_capex_units = 30.0;
    p.devices_per_server = 8;
    p.typical_watts = 210.0; // inference-serving average, not TDP
    p.idle_watts = 80.0;
    return p;
}

double
TcoModel::tcoPerDevice(const PlatformCost &p, double avg_watts) const
{
    MTIA_CHECK_GT(p.devices_per_server, 0u)
        << ": TcoModel devices per server";
    return p.device_capex_units +
        p.host_capex_units / p.devices_per_server +
        avg_watts * energy_units_per_watt_;
}

double
TcoModel::perfPerTco(double qps, const PlatformCost &p,
                     double avg_watts) const
{
    const double tco = tcoPerDevice(p, avg_watts);
    return tco <= 0.0 ? 0.0 : qps / tco;
}

double
TcoModel::tcoReduction(double qps_per_dev_a, const PlatformCost &a,
                       double watts_a, double qps_per_dev_b,
                       const PlatformCost &b, double watts_b) const
{
    MTIA_CHECK_GT(qps_per_dev_a, 0.0) << ": tcoReduction throughput A";
    MTIA_CHECK_GT(qps_per_dev_b, 0.0) << ": tcoReduction throughput B";
    // Cost of one unit of throughput on each platform.
    const double cost_a = tcoPerDevice(a, watts_a) / qps_per_dev_a;
    const double cost_b = tcoPerDevice(b, watts_b) / qps_per_dev_b;
    return 1.0 - cost_b / cost_a;
}

} // namespace mtia
