#ifndef MTIA_CHIP_CHIP_CONFIG_H_
#define MTIA_CHIP_CHIP_CONFIG_H_

/**
 * @file
 * Full chip specification (the contents of Table 2) plus factory
 * functions for MTIA 2i and MTIA 1. All bandwidth/FLOPS figures are
 * quoted at the reference frequency; the Device scales the on-chip
 * ones when the clock moves (the Section 5.2 overclocking study).
 */

#include <cstdint>
#include <string>

#include "host/control_core.h"
#include "host/pcie.h"
#include "mem/lpddr.h"
#include "mem/sram.h"
#include "noc/noc.h"
#include "pe/command_processor.h"
#include "pe/dpe.h"
#include "pe/fabric_interface.h"
#include "pe/simd_engine.h"
#include "pe/work_queue_engine.h"
#include "sim/types.h"

namespace mtia {

/** Static specification of one accelerator chip. */
struct ChipConfig
{
    std::string name;
    std::string process;          ///< e.g. "TSMC 5nm"

    // Clocking. Reference frequency is what the quoted bandwidths and
    // FLOPS assume; design frequency is the pre-overclocking spec.
    double reference_frequency_ghz = 1.35;
    double design_frequency_ghz = 1.1;

    // PE grid.
    unsigned pe_rows = 8;
    unsigned pe_cols = 8;
    Bytes local_memory_per_pe = 384_KiB;
    BytesPerSec local_memory_bandwidth = gbPerSec(1000.0);

    // Power.
    double tdp_watts = 85.0;
    double typical_watts = 65.0;
    double idle_watts = 18.0;

    // Subsystem configurations.
    DpeConfig dpe;
    SimdConfig simd;
    IsaFeatures isa;
    WorkQueueConfig work_queue;
    FabricInterfaceConfig fabric;
    SramConfig sram;
    LpddrConfig lpddr;
    NocConfig noc;
    PcieConfig pcie;
    ControlCoreConfig control;

    // Host-to-accelerator decompression engine (0 = absent).
    BytesPerSec decompress_rate = gbPerSec(25.0);
    bool supports_sparsity_24 = true;
    bool supports_dynamic_int8 = true;

    unsigned peCount() const { return pe_rows * pe_cols; }

    /** Chip-wide peak GEMM FLOPS at the reference frequency. */
    double peakGemmFlops(DType dtype, bool sparse_24 = false) const;

    /** Chip-wide SIMD-engine elementwise ops/sec at reference clock. */
    double peakSimdOps() const;

    /** The production MTIA 2i configuration (Table 2). */
    static ChipConfig mtia2i();

    /** The MTIA 1 configuration (Table 2, right column). */
    static ChipConfig mtia1();
};

} // namespace mtia

#endif // MTIA_CHIP_CHIP_CONFIG_H_
