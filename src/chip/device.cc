#include "chip/device.h"

#include <algorithm>

#include "sim/logging.h"
#include "telemetry/metrics.h"

namespace mtia {

Device::Device(ChipConfig cfg)
    : cfg_(std::move(cfg)),
      frequency_ghz_(cfg_.reference_frequency_ghz),
      dram_(cfg_.lpddr),
      noc_(cfg_.noc),
      dpe_(cfg_.dpe),
      simd_(cfg_.simd),
      cp_(cfg_.isa),
      wqe_(cfg_.work_queue),
      fi_(cfg_.fabric),
      control_(cfg_.control),
      partition_(cfg_.sram,
                 /*lls_regions=*/static_cast<unsigned>(
                     cfg_.sram.capacity /
                     cfg_.sram.region_granularity / 2))
{
}

Device
Device::cloneConfigured() const
{
    Device clone(cfg_);
    clone.setFrequencyGhz(frequency_ghz_);
    clone.setSramPartition(partition_);
    clone.dram().setEccMode(dram_.config().ecc);
    return clone;
}

void
Device::setFrequencyGhz(double ghz)
{
    if (ghz <= 0.0)
        MTIA_FATAL("Device::setFrequencyGhz: invalid frequency ", ghz);
    frequency_ghz_ = ghz;
}

double
Device::peakGemmFlops(DType dtype, bool sparse_24) const
{
    return dpe_.peakFlops(frequency_ghz_, dtype,
                          sparse_24 && cfg_.supports_sparsity_24) *
        cfg_.peCount();
}

double
Device::peakSimdOps() const
{
    return simd_.opsPerSec(frequency_ghz_) * cfg_.peCount();
}

BytesPerSec
Device::sramBandwidth() const
{
    return cfg_.sram.bandwidth * clockScale();
}

BytesPerSec
Device::localMemoryBandwidth() const
{
    return cfg_.local_memory_bandwidth * clockScale();
}

BytesPerSec
Device::nocBandwidth() const
{
    return cfg_.noc.bisection_bandwidth * clockScale();
}

double
Device::powerWatts(double utilization) const
{
    const double util = std::clamp(utilization, 0.0, 1.0);
    const double dynamic_range = cfg_.tdp_watts - cfg_.idle_watts;
    const double p =
        cfg_.idle_watts + dynamic_range * util * clockScale();
    return std::min(p, cfg_.tdp_watts);
}

Tick
Device::jobLaunchTime() const
{
    return wqe_.launchTime(cfg_.peCount());
}

Tick
Device::jobReplaceTime() const
{
    return wqe_.replaceTime(cfg_.peCount());
}

void
Device::exportTelemetry(telemetry::MetricRegistry &registry,
                        const std::string &device) const
{
    const telemetry::Labels labels{{"device", device}};
    registry.gauge("device.frequency_ghz", labels).set(frequency_ghz_);
    registry.gauge("device.clock_scale", labels).set(clockScale());
    dram_.exportMetrics(registry, device);
    noc_.exportMetrics(registry, device);
    cp_.exportMetrics(registry, device);
}

} // namespace mtia
