#ifndef MTIA_SERVING_SERVING_SIM_H_
#define MTIA_SERVING_SERVING_SIM_H_

/**
 * @file
 * Discrete-event serving simulator for sharded remote+merge models
 * (Sections 3.4 and 6). Each batched request spawns remote (sparse)
 * jobs on its shard devices followed by one merge (dense) job; jobs
 * execute FIFO per device. Splitting weighted and unweighted TBE
 * instances doubles the remote job count and lets a later request's
 * remote jobs queue ahead of an earlier request's merge — the
 * inefficient remote-remote-merge-merge ordering of Figure 5 that TBE
 * consolidation removes.
 */

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/types.h"

namespace mtia::telemetry {
class Telemetry;
} // namespace mtia::telemetry

namespace mtia {

/** Serving-model parameters for the simulator. */
struct ServingModelParams
{
    /** Devices the model is sharded across. */
    unsigned shards = 2;
    /** Remote (TBE) jobs per request per shard when weighted and
     * unweighted tables are split; 1 when consolidated. */
    unsigned remote_jobs_per_shard = 2;
    /** Total remote execution time per request per shard (unchanged
     * by consolidation — the Figure 5 invariant). */
    Tick remote_total = fromMillis(6.0);
    /** Merge execution time per request. */
    Tick merge_time = fromMillis(12.0);
    /** Host-side scheduling gap between jobs on one device: the
     * serving-stack overhead that makes the job COUNT matter even
     * when total PE-grid execution time is unchanged (Figure 5). */
    Tick job_dispatch_gap = fromMillis(2.0);
    Tick latency_slo = fromMillis(100.0);
};

/** Result of simulating one offered load. */
struct ServingResult
{
    double offered_qps = 0;
    double completed_qps = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double merge_p99_ms = 0;
    double remote_p99_ms = 0;
    double device_utilization = 0;
    bool meets_slo = false;
};

/** The remote/merge serving simulator. */
class ServingSimulator
{
  public:
    explicit ServingSimulator(ServingModelParams params)
        : params_(params) {}

    /** Simulate Poisson arrivals at @p qps for @p duration. */
    ServingResult simulate(double qps, Tick duration,
                           std::uint64_t seed = 99) const;

    /**
     * Largest load whose P99 stays within the SLO (bisection over
     * offered QPS).
     */
    double maxQpsAtSlo(double lo, double hi, Tick duration,
                       std::uint64_t seed = 99) const;

    const ServingModelParams &params() const { return params_; }

    /**
     * Attach an observability context (may be null to detach). While
     * attached, simulate() records per-shard job spans and queue-depth
     * counters into the trace, and latency histograms (labeled by
     * request class: total / remote / merge), throughput counters, and
     * per-shard utilization gauges into the metric registry. Registry
     * metrics accumulate across simulate() calls; the percentiles in
     * each ServingResult always come from histograms scoped to that
     * call, so a sweep's per-point p99 never smears earlier load
     * points even with telemetry attached.
     */
    void setTelemetry(telemetry::Telemetry *telemetry)
    {
        telemetry_ = telemetry;
    }

  private:
    ServingModelParams params_;
    telemetry::Telemetry *telemetry_ = nullptr;
};

} // namespace mtia

#endif // MTIA_SERVING_SERVING_SIM_H_
