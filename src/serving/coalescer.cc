#include "serving/coalescer.h"

#include <algorithm>
#include <deque>

#include "sim/logging.h"

namespace mtia {

std::vector<CoalescedBatch>
Coalescer::coalesce(const std::vector<Request> &trace) const
{
    std::vector<CoalescedBatch> done;
    struct Open
    {
        Tick opened = 0;
        CoalescedBatch batch;
    };
    std::deque<Open> open;

    auto flush_expired = [&](Tick now) {
        while (!open.empty() &&
               open.front().opened + cfg_.window <= now) {
            Open &o = open.front();
            o.batch.dispatch_time = o.opened + cfg_.window;
            done.push_back(std::move(o.batch));
            open.pop_front();
        }
    };

    for (const Request &r : trace) {
        flush_expired(r.arrival);
        // Place into the oldest open batch with room.
        bool placed = false;
        for (std::size_t i = 0; i < open.size(); ++i) {
            Open &o = open[i];
            if (o.batch.rows + r.candidates <= cfg_.batch_capacity) {
                o.batch.requests.push_back(r);
                o.batch.rows += r.candidates;
                placed = true;
                // A full batch dispatches immediately.
                if (o.batch.rows >= cfg_.batch_capacity) {
                    o.batch.dispatch_time = r.arrival;
                    done.push_back(std::move(o.batch));
                    open.erase(open.begin() +
                               static_cast<std::ptrdiff_t>(i));
                }
                break;
            }
        }
        if (!placed) {
            if (open.size() >= cfg_.parallel_windows) {
                // All windows busy: dispatch the oldest early.
                Open &o = open.front();
                o.batch.dispatch_time = r.arrival;
                done.push_back(std::move(o.batch));
                open.pop_front();
            }
            Open o;
            o.opened = r.arrival;
            o.batch.requests.push_back(r);
            o.batch.rows = r.candidates;
            open.push_back(std::move(o));
        }
    }
    for (Open &o : open) {
        o.batch.dispatch_time = o.opened + cfg_.window;
        done.push_back(std::move(o.batch));
    }
    std::sort(done.begin(), done.end(),
              [](const CoalescedBatch &a, const CoalescedBatch &b) {
                  return a.dispatch_time < b.dispatch_time;
              });
    return done;
}

CoalescerStats
Coalescer::stats(const std::vector<CoalescedBatch> &bs,
                 const CoalescerConfig &cfg)
{
    CoalescerStats s;
    s.batches = bs.size();
    if (bs.empty())
        return s;
    double fill = 0.0;
    double reqs = 0.0;
    double wait = 0.0;
    std::uint64_t wait_n = 0;
    for (const auto &b : bs) {
        fill += b.fill(cfg.batch_capacity);
        reqs += static_cast<double>(b.requests.size());
        s.requests += b.requests.size();
        for (const Request &r : b.requests) {
            wait += static_cast<double>(b.dispatch_time - r.arrival);
            ++wait_n;
        }
    }
    s.mean_fill = fill / static_cast<double>(bs.size());
    s.mean_requests_per_batch =
        reqs / static_cast<double>(bs.size());
    s.mean_wait = wait_n == 0
        ? 0
        : static_cast<Tick>(wait / static_cast<double>(wait_n));
    return s;
}

} // namespace mtia
