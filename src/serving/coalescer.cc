#include "serving/coalescer.h"

#include <algorithm>
#include <deque>

#include "core/check.h"

namespace mtia {

std::vector<CoalescedBatch>
Coalescer::coalesce(const std::vector<Request> &trace) const
{
    MTIA_CHECK_GT(cfg_.window, 0u) << ": Coalescer window";
    MTIA_CHECK_GT(cfg_.parallel_windows, 0u)
        << ": Coalescer needs at least one open window";
    MTIA_CHECK_GT(cfg_.batch_capacity, 0) << ": Coalescer batch capacity";
    std::vector<CoalescedBatch> done;
    struct Open
    {
        Tick opened = 0;
        CoalescedBatch batch;
    };
    std::deque<Open> open;

    auto open_batch = [&](Tick now) {
        Open o;
        o.opened = now;
        o.batch.capacity = cfg_.batch_capacity;
        return o;
    };

    // A batch closes at its window expiry or — with a deadline set —
    // when its oldest member's SLO slack runs out, whichever is
    // earlier. The oldest member is always requests.front(): batches
    // open with their first request and the trace is arrival-sorted.
    auto close_time = [&](const Open &o) {
        const Tick by_window = o.opened + cfg_.window;
        if (cfg_.deadline == 0)
            return by_window;
        MTIA_DCHECK(!o.batch.requests.empty())
            << ": open batch with no members";
        const Tick by_deadline =
            o.batch.requests.front().arrival + cfg_.deadline;
        return std::min(by_window, by_deadline);
    };

    auto flush_expired = [&](Tick now) {
        while (!open.empty() && close_time(open.front()) <= now) {
            Open &o = open.front();
            o.batch.dispatch_time = close_time(o);
            done.push_back(std::move(o.batch));
            open.pop_front();
        }
    };

    Tick prev_arrival = 0;
    for (const Request &r : trace) {
        // The sweep assumes an arrival-ordered trace: window expiry is
        // evaluated against each request's timestamp in turn.
        MTIA_CHECK_GE(r.arrival, prev_arrival)
            << ": Coalescer trace must be sorted by arrival";
        prev_arrival = r.arrival;
        MTIA_CHECK_GT(r.candidates, 0)
            << ": Coalescer request with no candidate rows";
        MTIA_CHECK_LE(r.candidates, cfg_.batch_capacity)
            << ": request larger than a whole batch can hold";
        flush_expired(r.arrival);
        // Place into the oldest open batch with room.
        bool placed = false;
        for (std::size_t i = 0; i < open.size(); ++i) {
            Open &o = open[i];
            if (o.batch.rows + r.candidates <= cfg_.batch_capacity) {
                o.batch.requests.push_back(r);
                o.batch.rows += r.candidates;
                placed = true;
                // A full batch dispatches immediately.
                if (o.batch.rows >= cfg_.batch_capacity) {
                    o.batch.dispatch_time = r.arrival;
                    done.push_back(std::move(o.batch));
                    open.erase(open.begin() +
                               static_cast<std::ptrdiff_t>(i));
                }
                break;
            }
        }
        if (!placed) {
            if (open.size() >= cfg_.parallel_windows) {
                // All windows busy: dispatch the oldest early.
                Open &o = open.front();
                o.batch.dispatch_time = r.arrival;
                done.push_back(std::move(o.batch));
                open.pop_front();
            }
            Open o = open_batch(r.arrival);
            o.batch.requests.push_back(r);
            o.batch.rows = r.candidates;
            open.push_back(std::move(o));
        }
    }
    for (Open &o : open) {
        o.batch.dispatch_time = close_time(o);
        done.push_back(std::move(o.batch));
    }
    for (const CoalescedBatch &b : done) {
        MTIA_DCHECK_LE(b.rows, cfg_.batch_capacity)
            << ": coalesced batch overfilled";
        MTIA_DCHECK(!b.requests.empty()) << ": dispatched an empty batch";
    }
    std::sort(done.begin(), done.end(),
              [](const CoalescedBatch &a, const CoalescedBatch &b) {
                  return a.dispatch_time < b.dispatch_time;
              });
    return done;
}

CoalescerStats
Coalescer::stats(const std::vector<CoalescedBatch> &bs)
{
    CoalescerStats s;
    s.batches = bs.size();
    if (bs.empty())
        return s;
    double fill = 0.0;
    double reqs = 0.0;
    double wait = 0.0;
    std::uint64_t wait_n = 0;
    for (const auto &b : bs) {
        MTIA_CHECK_GT(b.capacity, 0)
            << ": CoalescedBatch without a recorded capacity; only "
               "batches produced by Coalescer::coalesce can be scored";
        fill += b.fill();
        reqs += static_cast<double>(b.requests.size());
        s.requests += b.requests.size();
        for (const Request &r : b.requests) {
            wait += static_cast<double>(b.dispatch_time - r.arrival);
            ++wait_n;
        }
    }
    s.mean_fill = fill / static_cast<double>(bs.size());
    s.mean_requests_per_batch =
        reqs / static_cast<double>(bs.size());
    s.mean_wait = wait_n == 0
        ? 0
        : static_cast<Tick>(wait / static_cast<double>(wait_n));
    return s;
}

} // namespace mtia
