#include "serving/ab_testing.h"

#include <algorithm>
#include <cmath>

#include "graph/executor.h"
#include "core/check.h"
#include "core/parallel.h"
#include "sim/random.h"

namespace mtia {

double
normalizedEntropy(const std::vector<double> &predictions,
                  const std::vector<int> &labels)
{
    MTIA_CHECK_EQ(predictions.size(), labels.size())
        << ": normalizedEntropy needs one label per prediction";
    MTIA_CHECK(!predictions.empty())
        << ": normalizedEntropy over an empty sample";
    const double eps = 1e-7;
    double loss = 0.0;
    double positives = 0.0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        const double p = std::clamp(predictions[i], eps, 1.0 - eps);
        loss -= labels[i] == 1 ? std::log(p) : std::log(1.0 - p);
        positives += labels[i];
    }
    const double n = static_cast<double>(predictions.size());
    loss /= n;
    const double ctr = std::clamp(positives / n, eps, 1.0 - eps);
    const double base =
        -(ctr * std::log(ctr) + (1.0 - ctr) * std::log(1.0 - ctr));
    return loss / base;
}

AbResult
AbTestHarness::compare(const Graph &g, int runs,
                       std::uint64_t seed) const
{
    AbResult out;

    struct RunSample
    {
        std::vector<double> ref;
        std::vector<double> cand;
        double max_diff = 0.0;
    };
    const auto run_once = [&](int run) {
        // Identical traffic on both arms: same executor seed.
        Executor gpu_arm(seed + static_cast<std::uint64_t>(run),
                         /*use_lut_simd=*/false);
        Executor mtia_arm(seed + static_cast<std::uint64_t>(run),
                          /*use_lut_simd=*/true);
        const auto ref = gpu_arm.run(g);
        const auto cand = mtia_arm.run(g);
        RunSample sample;
        for (const auto &[id, tensor] : ref.outputs) {
            const Tensor &other = cand.outputs.at(id);
            for (std::int64_t i = 0; i < tensor.numel(); ++i) {
                sample.ref.push_back(tensor.at(i));
                sample.cand.push_back(other.at(i));
                sample.max_diff = std::max(
                    sample.max_diff,
                    std::abs(static_cast<double>(tensor.at(i)) -
                             static_cast<double>(other.at(i))));
            }
        }
        return sample;
    };

    std::vector<double> preds_ref;
    std::vector<double> preds_cand;
    std::vector<RunSample> samples;
    if (runs > 0) {
        // Run 0 serially first: executing the graph fills its lazy
        // shape/weight caches, which must not race. The remaining runs
        // only read those caches and run concurrently, concatenated in
        // run order so the result matches the serial loop exactly.
        samples.push_back(run_once(0));
        std::vector<RunSample> rest = parallelMap(
            static_cast<std::size_t>(runs - 1), [&](std::size_t i) {
                return run_once(static_cast<int>(i) + 1);
            });
        for (auto &s : rest)
            samples.push_back(std::move(s));
    }
    for (const RunSample &s : samples) {
        preds_ref.insert(preds_ref.end(), s.ref.begin(), s.ref.end());
        preds_cand.insert(preds_cand.end(), s.cand.begin(),
                          s.cand.end());
        out.max_pred_diff = std::max(out.max_pred_diff, s.max_diff);
    }
    out.samples = preds_ref.size();
    MTIA_CHECK_GT(out.samples, 0u)
        << ": AbTestHarness model produced no predictions";

    // Synthetic ground truth: clicks drawn from the reference arm's
    // probabilities (the reference is well-calibrated by design).
    Rng label_rng(seed ^ 0xabcdef);
    std::vector<int> labels;
    labels.reserve(out.samples);
    double sum_ref = 0.0;
    double sum_cand = 0.0;
    for (std::size_t i = 0; i < out.samples; ++i) {
        const double p = std::clamp(preds_ref[i], 0.0, 1.0);
        labels.push_back(label_rng.chance(p) ? 1 : 0);
        sum_ref += preds_ref[i];
        sum_cand += preds_cand[i];
    }
    out.mean_pred_reference = sum_ref / static_cast<double>(out.samples);
    out.mean_pred_candidate =
        sum_cand / static_cast<double>(out.samples);
    out.ne_reference = normalizedEntropy(preds_ref, labels);
    out.ne_candidate = normalizedEntropy(preds_cand, labels);
    return out;
}

} // namespace mtia
