#ifndef MTIA_SERVING_COALESCER_H_
#define MTIA_SERVING_COALESCER_H_

/**
 * @file
 * Request coalescing (Section 4.1): requests arriving within a time
 * window are batched together, with several windows open in parallel.
 * Throughput at the P99 SLO is highly sensitive to the window length
 * and window count; with good tuning >95% of batch slots are filled.
 */

#include <cstdint>
#include <vector>

#include "models/workload.h"
#include "sim/types.h"

namespace mtia {

/** Coalescing policy. */
struct CoalescerConfig
{
    Tick window = fromMillis(2.0);   ///< max wait before dispatch
    unsigned parallel_windows = 2;   ///< concurrently filling batches
    std::int64_t batch_capacity = 512; ///< candidate rows per batch
    /**
     * Deadline-aware close: a batch dispatches no later than its
     * oldest member's arrival + deadline, so a near-deadline request
     * forces an early close while a slack-rich queue keeps filling to
     * capacity or the window. 0 disables the deadline.
     */
    Tick deadline = 0;
};

/**
 * One dispatched batch. The capacity it was coalesced against is
 * recorded on the batch itself, so fill is always computed against
 * the config that actually produced the batch — callers can no
 * longer pass a mismatched config to the stats computation.
 */
struct CoalescedBatch
{
    Tick dispatch_time = 0;
    std::vector<Request> requests;
    std::int64_t rows = 0;
    std::int64_t capacity = 0; ///< batch_capacity used to coalesce

    double
    fill() const
    {
        return capacity == 0 ? 0.0
                             : static_cast<double>(rows) /
                static_cast<double>(capacity);
    }
};

/** Aggregate coalescing statistics. */
struct CoalescerStats
{
    std::uint64_t batches = 0;
    std::uint64_t requests = 0;
    double mean_fill = 0.0;
    double mean_requests_per_batch = 0.0;
    Tick mean_wait = 0;
};

/**
 * Offline coalescer: turn an arrival trace into dispatched batches.
 * A batch dispatches when full or when its window expires; up to
 * parallel_windows batches fill simultaneously (arrivals go to the
 * oldest open batch with room).
 */
class Coalescer
{
  public:
    explicit Coalescer(CoalescerConfig cfg) : cfg_(cfg) {}

    std::vector<CoalescedBatch>
    coalesce(const std::vector<Request> &trace) const;

    /**
     * Aggregate statistics over dispatched batches. Fill is computed
     * from each batch's own recorded capacity (set by coalesce()), so
     * batches from differently-configured coalescers aggregate
     * correctly and the old mismatched-config footgun cannot recur.
     */
    static CoalescerStats stats(const std::vector<CoalescedBatch> &bs);

    const CoalescerConfig &config() const { return cfg_; }

  private:
    CoalescerConfig cfg_;
};

} // namespace mtia

#endif // MTIA_SERVING_COALESCER_H_
