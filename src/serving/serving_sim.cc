#include "serving/serving_sim.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "core/check.h"
#include "core/inline_function.h"
#include "telemetry/telemetry.h"

namespace mtia {

namespace {

/** Completion callback of one device job (move-only, inline-sized). */
using JobDone = InlineFunction<void(Tick)>;

/** One FIFO device executing jobs. */
struct SimDevice
{
    std::deque<JobDone> queue; // completion callbacks
    std::deque<Tick> durations;
    std::deque<const char *> kinds; // "remote" / "merge" (trace labels)
    /** Completion of the job currently executing; parked here so the
     * scheduled event captures only (devices, index) and stays inside
     * the event queue's inline-callback fast path. */
    JobDone inflight;
    bool busy = false;
    Tick busy_until = 0;
    Tick busy_accum = 0;
};

struct SimRequest
{
    Tick arrival = 0;
    unsigned remotes_pending = 0;
    Tick remote_done = 0;
    Tick merge_enqueued = 0;
};

/** Latency range for the bounded histograms: 1 us to ~100 s, in ms. */
telemetry::LogHistogram::Config
latencyHistogramConfig()
{
    telemetry::LogHistogram::Config cfg;
    cfg.min_value = 1e-3;
    cfg.max_value = 1e5;
    return cfg;
}

} // namespace

ServingResult
ServingSimulator::simulate(double qps, Tick duration,
                           std::uint64_t seed) const
{
    MTIA_CHECK_GT(params_.shards, 0u)
        << ": ServingSimulator needs at least one shard device";
    MTIA_CHECK_GT(params_.remote_jobs_per_shard, 0u)
        << ": ServingSimulator needs at least one remote job per shard";
    MTIA_CHECK_GT(qps, 0.0) << ": ServingSimulator offered load";
    MTIA_CHECK_GT(duration, 0u) << ": ServingSimulator duration";

    EventQueue eq;
    Rng rng(seed);

    telemetry::Telemetry *tel = telemetry_;
    telemetry::TraceRecorder *tr = tel ? &tel->trace : nullptr;

    std::vector<SimDevice> devices(params_.shards);
    std::vector<std::unique_ptr<SimRequest>> requests;

    // Latency accounting uses the bounded log-bucketed histogram, so
    // multi-million-request runs hold a few KiB per series instead of
    // every sample. The per-call locals are the only source of the
    // returned percentiles: registry series (labeled by request class)
    // accumulate across simulate() calls by design, so computing
    // ServingResult from them would smear every earlier load point
    // into this one's p50/p99. With telemetry attached each sample is
    // double-recorded into the registry for the exported snapshot.
    const auto hist_cfg = latencyHistogramConfig();
    telemetry::LogHistogram local_total(hist_cfg);
    telemetry::LogHistogram local_merge(hist_cfg);
    telemetry::LogHistogram local_remote(hist_cfg);
    telemetry::LogHistogram *reg_total = nullptr;
    telemetry::LogHistogram *reg_merge = nullptr;
    telemetry::LogHistogram *reg_remote = nullptr;
    if (tel) {
        reg_total = &tel->metrics.histogram(
            "serving.latency_ms", {{"class", "total"}}, hist_cfg);
        reg_merge = &tel->metrics.histogram(
            "serving.latency_ms", {{"class", "merge"}}, hist_cfg);
        reg_remote = &tel->metrics.histogram(
            "serving.latency_ms", {{"class", "remote"}}, hist_cfg);
    }
    const auto record = [](telemetry::LogHistogram &local,
                           telemetry::LogHistogram *reg, double ms) {
        local.add(ms);
        if (reg != nullptr)
            reg->add(ms);
    };
    std::uint64_t completed = 0;

    // Per-shard trace tracks: job spans on one row, queue depth on a
    // sibling counter row.
    std::vector<telemetry::TrackId> job_track(params_.shards);
    std::vector<telemetry::TrackId> queue_track(params_.shards);
    if (tr != nullptr && tr->enabled()) {
        for (unsigned i = 0; i < params_.shards; ++i) {
            const std::string dev = "shard" + std::to_string(i);
            job_track[i] = tr->track(dev, "jobs");
            queue_track[i] = tr->track(dev, "queue");
        }
    }

    // Device job execution: start the next queued job when idle.
    std::function<void(unsigned)> pump = [&](unsigned dev_idx) {
        SimDevice &dev = devices[dev_idx];
        if (dev.busy || dev.queue.empty())
            return;
        dev.busy = true;
        const Tick dur = dev.durations.front();
        const char *kind = dev.kinds.front();
        auto done = std::move(dev.queue.front());
        dev.queue.pop_front();
        dev.durations.pop_front();
        dev.kinds.pop_front();
        dev.busy_accum += dur;
        MTIA_TRACE_COMPLETE(tr, job_track[dev_idx], kind, "job",
                            eq.now(), eq.now() + dur);
        MTIA_TRACE_COUNTER(tr, queue_track[dev_idx], "queue_depth",
                           eq.now(),
                           static_cast<std::int64_t>(dev.queue.size()));
        // The job's result is ready after dur; the device only picks
        // up its next job after the host-side dispatch gap. The
        // completion closure is parked on the device (one job runs at
        // a time) rather than captured, so the scheduled callback
        // moves — never copies — and needs no heap box.
        dev.inflight = std::move(done);
        eq.scheduleAfter(dur, [&, dev_idx]() {
            JobDone fire = std::move(devices[dev_idx].inflight);
            fire(eq.now());
        });
        eq.scheduleAfter(dur + params_.job_dispatch_gap,
                         [&, dev_idx]() {
                             devices[dev_idx].busy = false;
                             pump(dev_idx);
                         });
    };

    auto enqueue = [&](unsigned dev_idx, Tick dur, const char *kind,
                       JobDone done) {
        devices[dev_idx].queue.push_back(std::move(done));
        devices[dev_idx].durations.push_back(dur);
        devices[dev_idx].kinds.push_back(kind);
        MTIA_TRACE_COUNTER(
            tr, queue_track[dev_idx], "queue_depth", eq.now(),
            static_cast<std::int64_t>(devices[dev_idx].queue.size()));
        pump(dev_idx);
    };

    // Arrival process.
    Tick t = 0;
    std::uint64_t arrivals = 0;
    while (true) {
        t += fromSeconds(rng.exponential(qps));
        if (t >= duration)
            break;
        ++arrivals;
        eq.schedule(t, [&, t]() {
            auto req = std::make_unique<SimRequest>();
            SimRequest *r = req.get();
            r->arrival = t;
            r->remotes_pending =
                params_.shards * params_.remote_jobs_per_shard;
            requests.push_back(std::move(req));

            const Tick per_job =
                params_.remote_total / params_.remote_jobs_per_shard;
            for (unsigned shard = 0; shard < params_.shards; ++shard) {
                for (unsigned j = 0;
                     j < params_.remote_jobs_per_shard; ++j) {
                    enqueue(shard, per_job, "remote", [&, r](Tick now) {
                        if (--r->remotes_pending != 0)
                            return;
                        r->remote_done = now;
                        record(local_remote, reg_remote,
                               toMillis(now - r->arrival));
                        // Merge runs on the request's home shard 0.
                        r->merge_enqueued = now;
                        enqueue(0, params_.merge_time, "merge",
                                [&, r, duration](Tick end) {
                                    record(local_total, reg_total,
                                           toMillis(end - r->arrival));
                                    record(local_merge, reg_merge,
                                           toMillis(
                                               end - r->remote_done));
                                    // Sustainable throughput counts
                                    // only in-window completions.
                                    if (end <= duration)
                                        ++completed;
                                });
                    });
                }
            }
        });
    }

    eq.run();

    ServingResult out;
    out.offered_qps = qps;
    const double secs = toSeconds(duration);
    out.completed_qps = static_cast<double>(completed) / secs;
    if (!local_total.empty()) {
        out.p50_ms = local_total.percentile(50);
        out.p99_ms = local_total.percentile(99);
        out.merge_p99_ms = local_merge.percentile(99);
        out.remote_p99_ms = local_remote.percentile(99);
    }
    Tick busy_total = 0;
    for (const auto &dev : devices)
        busy_total += dev.busy_accum;
    out.device_utilization = static_cast<double>(busy_total) /
        (static_cast<double>(duration) * params_.shards);
    out.meets_slo = !local_total.empty() &&
        out.p99_ms <= toMillis(params_.latency_slo);

    if (tel) {
        auto &m = tel->metrics;
        m.counter("serving.requests", {{"event", "arrived"}})
            .inc(arrivals);
        m.counter("serving.requests", {{"event", "completed"}})
            .inc(completed);
        for (unsigned i = 0; i < params_.shards; ++i)
            m.gauge("serving.device_utilization",
                    {{"shard", std::to_string(i)}})
                .set(static_cast<double>(devices[i].busy_accum) /
                     static_cast<double>(duration));
        m.counter("sim.events_executed").inc(eq.executed());
        auto &peak = m.gauge("sim.peak_pending_events");
        peak.set(std::max(peak.value(),
                          static_cast<double>(eq.peakPending())));
        // Queue-internals counters: scheduled / inline_callbacks /
        // overflow_promotions plus bucket-occupancy gauges.
        eq.publishMetrics(m);
    }
    return out;
}

double
ServingSimulator::maxQpsAtSlo(double lo, double hi, Tick duration,
                              std::uint64_t seed) const
{
    if (!simulate(lo, duration, seed).meets_slo)
        return 0.0;
    for (int iter = 0; iter < 18; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (simulate(mid, duration, seed).meets_slo) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

} // namespace mtia
