#include "serving/serving_sim.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>

#include "core/check.h"

namespace mtia {

namespace {

/** One FIFO device executing jobs. */
struct SimDevice
{
    std::deque<std::function<void(Tick)>> queue; // completion callbacks
    std::deque<Tick> durations;
    bool busy = false;
    Tick busy_until = 0;
    Tick busy_accum = 0;
};

struct SimRequest
{
    Tick arrival = 0;
    unsigned remotes_pending = 0;
    Tick remote_done = 0;
    Tick merge_enqueued = 0;
};

} // namespace

ServingResult
ServingSimulator::simulate(double qps, Tick duration,
                           std::uint64_t seed) const
{
    MTIA_CHECK_GT(params_.shards, 0u)
        << ": ServingSimulator needs at least one shard device";
    MTIA_CHECK_GT(params_.remote_jobs_per_shard, 0u)
        << ": ServingSimulator needs at least one remote job per shard";
    MTIA_CHECK_GT(qps, 0.0) << ": ServingSimulator offered load";
    MTIA_CHECK_GT(duration, 0u) << ": ServingSimulator duration";

    EventQueue eq;
    Rng rng(seed);

    std::vector<SimDevice> devices(params_.shards);
    std::vector<std::unique_ptr<SimRequest>> requests;
    Histogram latency;
    Histogram merge_latency;
    Histogram remote_latency;
    std::uint64_t completed = 0;

    // Device job execution: start the next queued job when idle.
    std::function<void(unsigned)> pump = [&](unsigned dev_idx) {
        SimDevice &dev = devices[dev_idx];
        if (dev.busy || dev.queue.empty())
            return;
        dev.busy = true;
        const Tick dur = dev.durations.front();
        auto done = std::move(dev.queue.front());
        dev.queue.pop_front();
        dev.durations.pop_front();
        dev.busy_accum += dur;
        // The job's result is ready after dur; the device only picks
        // up its next job after the host-side dispatch gap.
        eq.scheduleAfter(dur, [&, done = std::move(done)]() {
            done(eq.now());
        });
        eq.scheduleAfter(dur + params_.job_dispatch_gap,
                         [&, dev_idx]() {
                             devices[dev_idx].busy = false;
                             pump(dev_idx);
                         });
    };

    auto enqueue = [&](unsigned dev_idx, Tick dur,
                       std::function<void(Tick)> done) {
        devices[dev_idx].queue.push_back(std::move(done));
        devices[dev_idx].durations.push_back(dur);
        pump(dev_idx);
    };

    // Arrival process.
    Tick t = 0;
    std::uint64_t arrivals = 0;
    while (true) {
        t += fromSeconds(rng.exponential(qps));
        if (t >= duration)
            break;
        ++arrivals;
        eq.schedule(t, [&, t]() {
            auto req = std::make_unique<SimRequest>();
            SimRequest *r = req.get();
            r->arrival = t;
            r->remotes_pending =
                params_.shards * params_.remote_jobs_per_shard;
            requests.push_back(std::move(req));

            const Tick per_job =
                params_.remote_total / params_.remote_jobs_per_shard;
            for (unsigned shard = 0; shard < params_.shards; ++shard) {
                for (unsigned j = 0;
                     j < params_.remote_jobs_per_shard; ++j) {
                    enqueue(shard, per_job, [&, r](Tick now) {
                        if (--r->remotes_pending != 0)
                            return;
                        r->remote_done = now;
                        remote_latency.add(
                            toMillis(now - r->arrival));
                        // Merge runs on the request's home shard 0.
                        r->merge_enqueued = now;
                        enqueue(0, params_.merge_time,
                                [&, r, duration](Tick end) {
                                    latency.add(toMillis(
                                        end - r->arrival));
                                    merge_latency.add(toMillis(
                                        end - r->remote_done));
                                    // Sustainable throughput counts
                                    // only in-window completions.
                                    if (end <= duration)
                                        ++completed;
                                });
                    });
                }
            }
        });
    }

    eq.run();

    ServingResult out;
    out.offered_qps = qps;
    const double secs = toSeconds(duration);
    out.completed_qps = static_cast<double>(completed) / secs;
    if (!latency.empty()) {
        out.p50_ms = latency.percentile(50);
        out.p99_ms = latency.percentile(99);
        out.merge_p99_ms = merge_latency.percentile(99);
        out.remote_p99_ms = remote_latency.percentile(99);
    }
    Tick busy_total = 0;
    for (const auto &dev : devices)
        busy_total += dev.busy_accum;
    out.device_utilization = static_cast<double>(busy_total) /
        (static_cast<double>(duration) * params_.shards);
    out.meets_slo =
        !latency.empty() && out.p99_ms <= toMillis(params_.latency_slo);
    return out;
}

double
ServingSimulator::maxQpsAtSlo(double lo, double hi, Tick duration,
                              std::uint64_t seed) const
{
    if (!simulate(lo, duration, seed).meets_slo)
        return 0.0;
    for (int iter = 0; iter < 18; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (simulate(mid, duration, seed).meets_slo) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

} // namespace mtia
