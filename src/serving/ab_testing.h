#ifndef MTIA_SERVING_AB_TESTING_H_
#define MTIA_SERVING_AB_TESTING_H_

/**
 * @file
 * Live A/B testing harness (Section 5.6): serve the same model on two
 * backends — the MTIA numerics path (LUT-approximated nonlinearities)
 * and a GPU-reference path (exact libm math) — on identical traffic,
 * and compare normalized entropy, prediction-value distributions, and
 * raw numeric divergence.
 */

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mtia {

/**
 * Normalized entropy (He et al. 2014): average log loss divided by
 * the entropy of the background CTR. Lower is better; 1.0 means the
 * model is no better than always predicting the average.
 */
double normalizedEntropy(const std::vector<double> &predictions,
                         const std::vector<int> &labels);

/** Outcome of one A/B comparison. */
struct AbResult
{
    double ne_reference = 0;  ///< GPU-arm normalized entropy
    double ne_candidate = 0;  ///< MTIA-arm normalized entropy
    double mean_pred_reference = 0;
    double mean_pred_candidate = 0;
    double max_pred_diff = 0; ///< max |p_mtia - p_gpu| per sample
    std::size_t samples = 0;

    /** Relative NE regression of the candidate (positive = worse). */
    double
    neDeltaPercent() const
    {
        return ne_reference == 0.0
            ? 0.0
            : (ne_candidate - ne_reference) / ne_reference * 100.0;
    }
};

/** The A/B harness. */
class AbTestHarness
{
  public:
    /**
     * Run @p g on both arms over @p runs independent traffic draws
     * (identical per-arm inputs) and score against synthetic labels
     * drawn from the reference arm's predictions.
     */
    AbResult compare(const Graph &g, int runs,
                     std::uint64_t seed = 2024) const;
};

} // namespace mtia

#endif // MTIA_SERVING_AB_TESTING_H_
