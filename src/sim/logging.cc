#include "sim/logging.h"

#include <cstdio>
#include <cstdlib>

namespace mtia {

namespace {

LogLevel g_threshold = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold))
        return;
    std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
}

} // namespace detail

} // namespace mtia
