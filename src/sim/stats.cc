#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "core/check.h"

namespace mtia {

void
Histogram::add(double sample)
{
    samples_.push_back(sample);
    sum_ += sample;
    sorted_ = false;
}

void
Histogram::reset()
{
    samples_.clear();
    sum_ = 0.0;
    sorted_ = true;
}

double
Histogram::mean() const
{
    return samples_.empty() ? 0.0
                            : sum_ / static_cast<double>(samples_.size());
}

double
Histogram::min() const
{
    MTIA_CHECK(!samples_.empty()) << ": Histogram::min on empty histogram";
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Histogram::max() const
{
    MTIA_CHECK(!samples_.empty()) << ": Histogram::max on empty histogram";
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Histogram::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_)
        acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double
Histogram::percentile(double p) const
{
    MTIA_CHECK(!samples_.empty())
        << ": Histogram::percentile on empty histogram";
    MTIA_CHECK(std::isfinite(p)) << ": percentile rank must be finite";
    MTIA_CHECK_GE(p, 0.0) << ": percentile rank below range";
    MTIA_CHECK_LE(p, 100.0) << ": percentile rank above range";
    if (samples_.size() == 1)
        return samples_.front();
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    // Nearest-rank with exact extremes: p=0 is the minimum, p=100 the
    // maximum, regardless of floating-point rounding in the rank
    // computation below.
    if (p <= 0.0)
        return samples_.front();
    if (p >= 100.0)
        return samples_.back();
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    rank = std::clamp<std::size_t>(rank, 1, n);
    return samples_[rank - 1];
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatsRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

double &
StatsRegistry::scalar(const std::string &name)
{
    return scalars_[name];
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " = " << c.value() << "\n";
    for (const auto &[name, v] : scalars_)
        os << name << " = " << v << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << ": n=" << h.count();
        if (!h.empty()) {
            os << std::setprecision(6)
               << " mean=" << h.mean()
               << " p50=" << h.percentile(50)
               << " p99=" << h.percentile(99)
               << " max=" << h.max();
        }
        os << "\n";
    }
}

void
StatsRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
    for (auto &[name, v] : scalars_)
        v = 0.0;
}

} // namespace mtia
