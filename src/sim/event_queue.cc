#include "sim/event_queue.h"

#include "sim/logging.h"

namespace mtia {

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        MTIA_PANIC("EventQueue::schedule in the past: ", when, " < ", now_);
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

Tick
EventQueue::run()
{
    while (!heap_.empty()) {
        // Copy out before pop: the callback may schedule more events.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.cb();
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.cb();
    }
    // No events remain at or before the limit: time advances to it.
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace mtia
