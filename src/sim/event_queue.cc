#include "sim/event_queue.h"

#include <algorithm>

#include "core/check.h"

namespace mtia {

void
EventQueue::schedule(Tick when, Callback cb)
{
    MTIA_CHECK_GE(when, now_) << ": EventQueue::schedule in the past";
    MTIA_CHECK(cb != nullptr) << ": EventQueue::schedule null callback";
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
    peak_pending_ = std::max(peak_pending_, heap_.size());
}

Tick
EventQueue::run()
{
    while (!heap_.empty()) {
        // Copy out before pop: the callback may schedule more events.
        Entry e = heap_.top();
        heap_.pop();
        // Simulated time never moves backwards: the heap orders by
        // (when, seq) and schedule() rejects past timestamps.
        MTIA_DCHECK_GE(e.when, now_) << ": event queue tick regression";
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = heap_.top();
        heap_.pop();
        MTIA_DCHECK_GE(e.when, now_) << ": event queue tick regression";
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    // No events remain at or before the limit: time advances to it.
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace mtia
