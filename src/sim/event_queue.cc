#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "core/check.h"
#include "telemetry/metrics.h"

namespace mtia {

void
EventQueue::schedule(Tick when, Callback &&cb)
{
    MTIA_CHECK_GE(when, now_) << ": EventQueue::schedule in the past";
    MTIA_CHECK(cb != nullptr) << ": EventQueue::schedule null callback";
    Node *n = allocNode();
    n->when = when;
    n->seq = nextSeq_++;
    n->cb = std::move(cb);
    ++scheduled_;
    if (n->cb.storedInline())
        ++inline_callbacks_;
    // Sliding window: ring_base_ only advances when a tick is actually
    // dispatched (committed alongside now_ in run()/runUntil()), so
    // when >= now_ >= ring_base_ holds here and the subtraction cannot
    // wrap. Even if it did, a wrapped difference is huge and routes the
    // event to the far heap, which orders any tick correctly.
    MTIA_DCHECK_GE(now_, ring_base_) << ": ring window base ahead of now";
    if (when - ring_base_ < static_cast<Tick>(kRingSlots)) {
        pushRing(n);
    } else {
        pushFar(n);
    }
    peak_pending_ = std::max(peak_pending_, pending());
}

Tick
EventQueue::run()
{
    while (pending() > 0) {
        if (ring_count_ == 0)
            promoteFar();
        Tick t = nextRingTick();
        if (!far_.empty() && far_.front().when <= t)
            t = pullEligibleFar(t);
        // Simulated time never moves backwards: per-tick FIFOs drain
        // fully before the scan moves on, and schedule() rejects past
        // timestamps.
        MTIA_DCHECK_GE(t, now_) << ": event queue tick regression";
        // Commit the window base together with now_: ring_base_ only
        // ever holds a dispatched tick, so an interrupted run can never
        // leave it ahead of now_.
        now_ = t;
        ring_base_ = t;
        drainCurrentSlot();
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (pending() > 0) {
        if (ring_count_ == 0) {
            if (far_.front().when > limit)
                break;
            promoteFar();
        }
        Tick t = nextRingTick();
        // The dispatch tick is min(earliest ring tick, overflow front):
        // if that minimum is past the limit, nothing at or before the
        // limit remains. Checked before touching any queue state so an
        // early exit leaves the window base and both buckets untouched.
        if (!far_.empty() && far_.front().when < t)
            t = far_.front().when;
        if (t > limit)
            break;
        if (!far_.empty() && far_.front().when <= t)
            t = pullEligibleFar(t);
        MTIA_DCHECK_GE(t, now_) << ": event queue tick regression";
        now_ = t;
        ring_base_ = t;
        drainCurrentSlot();
    }
    // Whether the queue drained or the earliest remaining event sits
    // past the limit, time advances to the limit itself: parallel
    // partitions calling runUntil(epoch_end) in lockstep all agree on
    // now() afterwards, which is what makes barrier-delivered events
    // at epoch_end + 1 schedulable on every partition.
    if (now_ < limit)
        now_ = limit;
    return now_;
}

Tick
EventQueue::nextEventTick() const
{
    MTIA_CHECK_GT(pending(), 0u)
        << ": nextEventTick on an empty queue";
    if (ring_count_ == 0)
        return far_.front().when;
    Tick t = nextRingTick();
    if (!far_.empty() && far_.front().when < t)
        t = far_.front().when;
    return t;
}

void
EventQueue::clear()
{
    // Structural reset: no ordering work, one destructor per dropped
    // callback, every Node slot recycled through the freelist.
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
        std::uint64_t bits = occupied_[w];
        while (bits != 0) {
            const std::size_t slot =
                (w << 6) + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            Node *n = ring_[slot].head;
            while (n != nullptr) {
                Node *next = n->next;
                n->cb = nullptr;
                n->next = free_;
                free_ = n;
                n = next;
            }
            ring_[slot] = Fifo{};
        }
        occupied_[w] = 0;
    }
    ring_count_ = 0;
    for (const FarRef &e : far_) {
        e.node->cb = nullptr;
        e.node->next = free_;
        free_ = e.node;
    }
    far_.clear();
}

void
EventQueue::publishMetrics(telemetry::MetricRegistry &metrics) const
{
    metrics.counter("event_queue.scheduled").inc(scheduled_);
    metrics.counter("event_queue.inline_callbacks").inc(inline_callbacks_);
    metrics.counter("event_queue.overflow_promotions")
        .inc(overflow_promotions_);
    metrics.gauge("event_queue.bucket_occupancy", {{"level", "near"}})
        .set(static_cast<double>(ring_count_));
    metrics.gauge("event_queue.bucket_occupancy", {{"level", "far"}})
        .set(static_cast<double>(far_.size()));
}

EventQueue::Node *
EventQueue::allocNode()
{
    if (free_ == nullptr)
        growSlab();
    Node *n = free_;
    free_ = n->next;
    n->next = nullptr;
    return n;
}

void
EventQueue::freeNode(Node *n)
{
    // The callback has already been moved out or reset by the caller.
    n->next = free_;
    free_ = n;
}

void
EventQueue::growSlab()
{
    slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
    Node *slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
        slab[i].next = free_;
        free_ = &slab[i];
    }
}

void
EventQueue::pushRing(Node *n)
{
    const auto slot = static_cast<std::size_t>(n->when & kSlotMask);
    Fifo &f = ring_[slot];
    n->next = nullptr;
    if (f.head == nullptr) {
        f.head = n;
        f.tail = n;
        occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    } else {
        f.tail->next = n;
        f.tail = n;
    }
    ++ring_count_;
}

EventQueue::Node *
EventQueue::popRing(std::size_t slot)
{
    Fifo &f = ring_[slot];
    Node *n = f.head;
    f.head = n->next;
    if (f.head == nullptr) {
        f.tail = nullptr;
        occupied_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    }
    --ring_count_;
    return n;
}

Tick
EventQueue::nextRingTick() const
{
    MTIA_DCHECK_GT(ring_count_, 0u) << ": ring scan on an empty ring";
    const auto s0 = static_cast<std::size_t>(ring_base_ & kSlotMask);
    std::size_t w = s0 >> 6;
    // First word: only bits at or after s0; the bits before it hold
    // ticks near the far edge of the window and are revisited when the
    // scan wraps around.
    std::uint64_t word = occupied_[w] & (~std::uint64_t{0} << (s0 & 63));
    for (std::size_t i = 0; i <= kBitmapWords; ++i) {
        if (word != 0) {
            const std::size_t slot =
                (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
            return ring_base_ + static_cast<Tick>((slot - s0) & kSlotMask);
        }
        w = (w + 1) & (kBitmapWords - 1);
        word = occupied_[w];
    }
    MTIA_UNREACHABLE("occupancy bitmap disagrees with ring_count_");
}

void
EventQueue::pushFar(Node *n)
{
    far_.push_back(FarRef{n->when, n->seq, n});
    std::push_heap(far_.begin(), far_.end(), farLater);
}

void
EventQueue::promoteFar()
{
    MTIA_DCHECK_EQ(ring_count_, 0u)
        << ": overflow promotion into a non-empty ring";
    MTIA_DCHECK(!far_.empty()) << ": overflow promotion from an empty heap";
    const Tick jump = far_.front().when;
    MTIA_DCHECK_GE(jump, now_) << ": overflow event in the past";
    // Window arithmetic ignores Tick overflow: 2^64 ps is ~213 days of
    // simulated time, far past every workload here.
    ring_base_ = jump;
    // Heap pops ascend in (when, seq), so per-tick FIFOs fill in
    // sequence order and same-tick FIFO dispatch is preserved.
    while (!far_.empty() &&
           far_.front().when - jump < static_cast<Tick>(kRingSlots)) {
        std::pop_heap(far_.begin(), far_.end(), farLater);
        Node *n = far_.back().node;
        far_.pop_back();
        pushRing(n);
        ++overflow_promotions_;
    }
}

Tick
EventQueue::pullEligibleFar(Tick t)
{
    // An overflow event's tick is inside the window now. Every
    // overflow event at a given tick was scheduled while that tick
    // was still out of window — strictly before any ring event at the
    // same tick was accepted — so its sequence number is smaller and
    // it belongs at the FRONT of the per-tick FIFO. Heap pops ascend
    // in (when, seq), so the collected block is already in order.
    const Tick w = far_.front().when;
    if (w < t) {
        // A far-only tick precedes the earliest ring tick. Ring events
        // all satisfy when < p + kRingSlots for some drained tick
        // p <= w, so the caller retreating the base to w (committed on
        // dispatch) keeps the window span collision-free.
        t = w;
    }
    Node *head = nullptr;
    Node *tail = nullptr;
    while (!far_.empty() && far_.front().when == t) {
        std::pop_heap(far_.begin(), far_.end(), farLater);
        Node *n = far_.back().node;
        far_.pop_back();
        n->next = nullptr;
        if (tail == nullptr)
            head = n;
        else
            tail->next = n;
        tail = n;
        ++ring_count_;
        ++overflow_promotions_;
    }
    MTIA_DCHECK(head != nullptr) << ": eligible overflow tick vanished";
    const auto slot = static_cast<std::size_t>(t & kSlotMask);
    Fifo &f = ring_[slot];
    if (f.head == nullptr) {
        f.tail = tail;
        occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    } else {
        tail->next = f.head;
    }
    f.head = head;
    return t;
}

void
EventQueue::drainCurrentSlot()
{
    const auto slot = static_cast<std::size_t>(now_ & kSlotMask);
    // Callbacks may schedule new events at now(): those append to this
    // same FIFO and run in this drain, preserving FIFO order.
    while (ring_[slot].head != nullptr) {
        Node *n = popRing(slot);
        MTIA_DCHECK_EQ(n->when, now_) << ": ring slot holds a foreign tick";
        ++executed_;
        // Zero-copy dispatch: invoke in place in the (already
        // unlinked) slab slot — no closure copy, no move. Anything
        // the callback schedules allocates other slots; this one is
        // recycled right after.
        n->cb();
        n->cb = nullptr;
        freeNode(n);
    }
}

} // namespace mtia
