#ifndef MTIA_SIM_STATS_H_
#define MTIA_SIM_STATS_H_

/**
 * @file
 * Lightweight statistics package: counters, scalar gauges, and sample
 * histograms with percentile queries. Components register their stats
 * with a StatsRegistry so experiments can dump a uniform report.
 */

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mtia {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Collection of scalar samples supporting mean/min/max and exact
 * percentile queries (sorts lazily). Retains every sample — O(n)
 * memory — which is right for small fleet studies where exactness
 * matters; multi-million-request serving runs should use the
 * bounded-memory telemetry::LogHistogram instead.
 */
class Histogram
{
  public:
    void add(double sample);
    void reset();

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    /** Exact percentile via nearest-rank; @p p in [0, 100]. */
    double percentile(double p) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
};

/**
 * Named stats owned by a component tree. Names are dotted paths, e.g.
 * "device0.dram.bytesRead".
 */
class StatsRegistry
{
  public:
    /** Find-or-create a counter with the given dotted name. */
    Counter &counter(const std::string &name);

    /** Find-or-create a histogram with the given dotted name. */
    Histogram &histogram(const std::string &name);

    /** Find-or-create a scalar gauge. */
    double &scalar(const std::string &name);

    /** Dump all stats, sorted by name. */
    void dump(std::ostream &os) const;

    /** Reset every registered stat. */
    void resetAll();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, double> scalars_;
};

} // namespace mtia

#endif // MTIA_SIM_STATS_H_
