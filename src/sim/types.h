#ifndef MTIA_SIM_TYPES_H_
#define MTIA_SIM_TYPES_H_

/**
 * @file
 * Fundamental simulation types: ticks (picoseconds), byte quantities,
 * and conversion helpers shared by every module.
 */

#include <cstdint>

namespace mtia {

/** Simulated time in picoseconds (gem5-style integral tick). */
using Tick = std::uint64_t;

/** A quantity of bytes. */
using Bytes = std::uint64_t;

/** Ticks per common time units. */
inline constexpr Tick kTicksPerNs = 1000;
inline constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
inline constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
inline constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert seconds (double) to ticks. */
constexpr Tick
fromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSec));
}

/** Convert milliseconds to ticks. */
constexpr Tick
fromMillis(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kTicksPerMs));
}

/** Convert microseconds to ticks. */
constexpr Tick
fromMicros(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs));
}

/** Convert nanoseconds to ticks. */
constexpr Tick
fromNanos(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs));
}

/** Convert ticks to seconds (double). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/** Convert ticks to milliseconds (double). */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

/** Convert ticks to microseconds (double). */
constexpr double
toMicros(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert ticks to nanoseconds (double). */
constexpr double
toNanos(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Byte-size helpers. */
inline constexpr Bytes operator""_KiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 10;
}
inline constexpr Bytes operator""_MiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 20;
}
inline constexpr Bytes operator""_GiB(unsigned long long v)
{
    return static_cast<Bytes>(v) << 30;
}

/** Bandwidth expressed in bytes per second. */
using BytesPerSec = double;

/** GB/s (decimal, as vendors quote) to bytes/sec. */
constexpr BytesPerSec
gbPerSec(double gb)
{
    return gb * 1e9;
}

/** Time in ticks to move @p bytes at @p bw bytes/sec. */
constexpr Tick
transferTicks(Bytes bytes, BytesPerSec bw)
{
    return bw <= 0.0
        ? 0
        : static_cast<Tick>(static_cast<double>(bytes) / bw *
                            static_cast<double>(kTicksPerSec));
}

} // namespace mtia

#endif // MTIA_SIM_TYPES_H_
