#ifndef MTIA_SIM_LOGGING_H_
#define MTIA_SIM_LOGGING_H_

/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user errors (bad configuration) and exits with
 * an error code; warn()/inform() report conditions without stopping.
 */

#include <sstream>
#include <string>

namespace mtia {

/** Verbosity levels for status messages. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Global log threshold; messages below it are suppressed. */
LogLevel logThreshold();

/** Set the global log threshold. */
void setLogThreshold(LogLevel level);

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and abort. */
#define MTIA_PANIC(...) \
    ::mtia::detail::panicImpl(__FILE__, __LINE__, \
                              ::mtia::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define MTIA_FATAL(...) \
    ::mtia::detail::fatalImpl(__FILE__, __LINE__, \
                              ::mtia::detail::concat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logImpl(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logImpl(LogLevel::Info,
                    detail::concat(std::forward<Args>(args)...));
}

} // namespace mtia

#endif // MTIA_SIM_LOGGING_H_
