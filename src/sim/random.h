#ifndef MTIA_SIM_RANDOM_H_
#define MTIA_SIM_RANDOM_H_

/**
 * @file
 * Deterministic random-number generation for reproducible simulations.
 *
 * All stochastic components (traffic generators, fleet Monte-Carlo
 * studies, error injectors) draw from an explicitly seeded Rng so that
 * every experiment is replayable bit-for-bit.
 */

#include <cstdint>
#include <vector>

namespace mtia {

/**
 * A small, fast, deterministic generator (xoshiro256**) with the
 * distribution helpers the simulator needs. Not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /**
     * Derive an independent, replayable substream for task @p index
     * (splitmix64 over the current state words and the index). The
     * parent is not advanced, so fork(i) is a pure function of
     * (state, i): every task in a parallel fan-out gets the same
     * stream at any thread count. The Box-Muller spare value is
     * deliberately not inherited — a forked stream starts clean
     * rather than replaying the parent's pending Gaussian.
     */
    Rng fork(std::uint64_t index) const;

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability p. */
    bool chance(double p);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential with given rate (events per unit time). */
    double exponential(double rate);

    /** Poisson-distributed count with given mean. */
    std::uint64_t poisson(double mean);

    /** Log-normal with given underlying mu/sigma. */
    double lognormal(double mu, double sigma);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Zipf-distributed integer sampler over [0, n) with exponent alpha,
 * using the rejection-inversion method of Hormann and Derflinger so
 * that sampling is O(1) even for table sizes in the hundreds of
 * millions (embedding-table index streams).
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items (ranks 1..n internally).
     * @param alpha Skew exponent; larger means more skewed. alpha != 1.
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw one index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    std::uint64_t n_;
    double alpha_;
    double hx0_;
    double hxm_;
    double hx1_;
};

/**
 * Sampler over an arbitrary discrete distribution, built once from
 * weights (alias method, O(1) per draw).
 */
class DiscreteSampler
{
  public:
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw one index in [0, weights.size()). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return prob_.size(); }

  private:
    std::vector<double> prob_;
    std::vector<std::size_t> alias_;
};

} // namespace mtia

#endif // MTIA_SIM_RANDOM_H_
