#include "sim/parallel_des.h"

#include <utility>

#include "core/check.h"
#include "core/parallel.h"

namespace mtia {

ParallelDes::ParallelDes(unsigned partitions, Tick epoch_width)
    : epoch_width_(epoch_width)
{
    MTIA_CHECK_GT(partitions, 0u)
        << ": partitioned DES needs at least one partition";
    MTIA_CHECK_GT(epoch_width_, 0u)
        << ": epoch width must be at least one tick";
    queues_.reserve(partitions);
    for (unsigned p = 0; p < partitions; ++p)
        queues_.push_back(std::make_unique<EventQueue>());
    mailboxes_.resize(static_cast<std::size_t>(partitions) * partitions);
}

EventQueue &
ParallelDes::queue(unsigned p)
{
    MTIA_CHECK_LT(p, queues_.size()) << ": partition index out of range";
    return *queues_[p];
}

const EventQueue &
ParallelDes::queue(unsigned p) const
{
    MTIA_CHECK_LT(p, queues_.size()) << ": partition index out of range";
    return *queues_[p];
}

void
ParallelDes::post(unsigned src, unsigned dst, Tick when,
                  EventQueue::Callback fn)
{
    MTIA_CHECK_LT(src, queues_.size()) << ": post from unknown partition";
    MTIA_CHECK_LT(dst, queues_.size()) << ": post to unknown partition";
    MTIA_CHECK(fn != nullptr) << ": post with a null callback";
    // The conservative guarantee: a message buffered during epoch k
    // must deliver after the barrier at the epoch's end, or partition
    // dst — whose clock already passed epoch_end_ — would receive an
    // event in its past. Callers uphold it by making every cross-
    // partition latency >= epochWidth().
    if (running_)
        MTIA_CHECK_GT(when, epoch_end_)
            << ": cross-partition message lands inside the current "
               "epoch (latency below the epoch width)";
    // Single writer: during a phase only partition src's lane touches
    // the (src, *) mailboxes, so this append needs no synchronization
    // and its order is the sender's deterministic program order.
    mailboxes_[static_cast<std::size_t>(src) * queues_.size() + dst]
        .push_back(Message{when, std::move(fn)});
}

bool
ParallelDes::advanceEpoch()
{
    // Serial barrier, on the caller thread. Delivery walks dst-major,
    // src-minor, FIFO within a mailbox: destination sequence numbers
    // are assigned in this fixed index order, so same-tick dispatch
    // ties resolve identically at every lane count.
    const std::size_t n = queues_.size();
    for (std::size_t dst = 0; dst < n; ++dst) {
        for (std::size_t src = 0; src < n; ++src) {
            std::vector<Message> &box = mailboxes_[src * n + dst];
            for (Message &m : box) {
                queues_[dst]->schedule(m.when, std::move(m.fn));
                ++delivered_;
            }
            box.clear(); // capacity kept: steady state re-uses it
        }
    }

    bool any = false;
    Tick earliest = 0;
    for (const auto &q : queues_) {
        if (q->pending() == 0)
            continue;
        const Tick t = q->nextEventTick();
        if (!any || t < earliest)
            earliest = t;
        any = true;
    }
    if (!any)
        return false; // mailboxes just drained, queues empty: done
    // Fixed grid B_k = k * W, anchored at the window holding the
    // earliest pending event — idle gaps are skipped in one hop, and
    // the grid (unlike an earliest+W-1 window) is identical however
    // the preceding epochs interleaved.
    epoch_end_ = (earliest / epoch_width_ + 1) * epoch_width_ - 1;
    ++epochs_;
    return true;
}

void
ParallelDes::run()
{
    MTIA_CHECK(!running_) << ": ParallelDes::run is not reentrant";
    running_ = true;
    // First barrier delivers setup-time post()s and anchors epoch 0;
    // then each phase runs every partition up to the epoch end in
    // parallel and the between-phase barrier exchanges messages.
    // runUntil leaves every partition clock exactly at epoch_end_
    // (see its contract), so delivery at epoch_end_ + 1 is always
    // schedulable.
    if (advanceEpoch()) {
        parallelPhases(
            queues_.size(),
            [this](std::size_t p) { queues_[p]->runUntil(epoch_end_); },
            [this] { return advanceEpoch(); });
    }
    running_ = false;
}

std::uint64_t
ParallelDes::executed() const
{
    std::uint64_t total = 0;
    for (const auto &q : queues_)
        total += q->executed();
    return total;
}

} // namespace mtia
