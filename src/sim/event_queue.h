#ifndef MTIA_SIM_EVENT_QUEUE_H_
#define MTIA_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Discrete-event simulation core. Serving simulators, fleet rollout
 * simulators, and the job scheduler are all built on this queue.
 *
 * Fast-path design (see DESIGN.md "DES core internals"):
 *
 *  - Two-level bucketed queue. A calendar ring of kRingSlots per-tick
 *    FIFO lists covers the sliding near-future window
 *    [ring_base_, ring_base_ + kRingSlots); events beyond it land in
 *    an overflow min-heap of 24-byte POD references ordered by
 *    (when, seq). When the ring drains, the window jumps to the
 *    earliest overflow tick; as the window slides forward, overflow
 *    events it catches up with are promoted tick-by-tick. Either way
 *    promotion preserves (when, seq) order: a promoted event was
 *    scheduled while its tick was still out of window — before any
 *    ring event at that tick — so it carries a smaller sequence
 *    number and is prepended.
 *
 *  - Zero-copy dispatch. Callbacks are mtia::InlineFunction (small-
 *    buffer-optimized, move-only); dispatch moves the callback out of
 *    its slot and never deep-copies a closure.
 *
 *  - Slab recycling. Events live in fixed Node slots chained through
 *    a freelist; steady-state scheduling of inline-sized callbacks
 *    performs zero heap allocations.
 *
 * Ordering guarantees are identical to the classic binary-heap
 * implementation: events run in (when, seq) order, so same-tick
 * events fire in FIFO order of scheduling and simulations stay
 * byte-for-byte deterministic.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/inline_function.h"
#include "sim/types.h"

namespace mtia::telemetry {
class MetricRegistry;
} // namespace mtia::telemetry

namespace mtia {

/**
 * A time-ordered queue of callbacks. Events scheduled for the same tick
 * fire in FIFO order of scheduling, which keeps simulations
 * deterministic.
 */
class EventQueue
{
  public:
    /** Move-only callable; closures owning unique_ptr state are fine. */
    using Callback = InlineFunction<void()>;

    /** Near-future window width in ticks (one FIFO list per tick). */
    static constexpr std::size_t kRingSlots = 1024;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when (>= now). Takes the
     * callback by rvalue reference so a closure built at the call
     * site moves straight into its slab slot (one move, no copies).
     */
    void schedule(Tick when, Callback &&cb);

    /** Schedule @p cb @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback &&cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Number of pending events. */
    std::size_t pending() const { return ring_count_ + far_.size(); }

    /** Events dispatched so far (telemetry). */
    std::uint64_t executed() const { return executed_; }

    /** High-water mark of pending() over the queue's lifetime. */
    std::size_t peakPending() const { return peak_pending_; }

    /** Run events until the queue drains. Returns final time. */
    Tick run();

    /**
     * Run every event with timestamp <= @p limit — the limit tick is
     * INCLUSIVE — then set now() to max(now(), limit) whether the
     * queue drained or later events remain pending. Epoch-barrier
     * callers rely on both halves of that contract: events landing
     * exactly on an epoch's last tick run inside that epoch, and
     * after the call every partition clock reads exactly the epoch
     * end, so a message scheduled at limit + 1 is never "in the
     * past" on any partition.
     */
    Tick runUntil(Tick limit);

    /**
     * Timestamp of the earliest pending event (ring scan or overflow
     * front, whichever is sooner). @pre pending() > 0. Used by
     * epoch-barrier drivers to pick the next synchronization window
     * without dispatching anything.
     */
    Tick nextEventTick() const;

    /**
     * Drop all pending events (simulation teardown). Constant-time
     * structural reset plus one destructor call per dropped callback;
     * now() and executed() are unchanged.
     */
    void clear();

    /** Events ever scheduled (telemetry: event_queue.scheduled). */
    std::uint64_t scheduledCount() const { return scheduled_; }

    /**
     * Scheduled callbacks stored in the InlineFunction small buffer —
     * i.e. without a heap box (telemetry: event_queue.inline_callbacks).
     */
    std::uint64_t inlineCallbackCount() const { return inline_callbacks_; }

    /**
     * Events that entered the overflow heap and were later promoted
     * into the calendar ring when the window advanced (telemetry:
     * event_queue.overflow_promotions).
     */
    std::uint64_t overflowPromotions() const { return overflow_promotions_; }

    /** Events currently bucketed in the near-future calendar ring. */
    std::size_t nearPending() const { return ring_count_; }

    /** Events currently parked in the far-future overflow heap. */
    std::size_t farPending() const { return far_.size(); }

    /**
     * Publish the queue's counters and bucket-occupancy gauges into
     * @p metrics: counters event_queue.{scheduled, inline_callbacks,
     * overflow_promotions} accumulate (inc-by-total, matching the
     * sim.events_executed convention) and gauges
     * event_queue.bucket_occupancy{level=near|far} are set to the
     * instantaneous occupancy.
     */
    void publishMetrics(telemetry::MetricRegistry &metrics) const;

  private:
    /** One scheduled event in a slab slot. */
    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Node *next = nullptr;
        Callback cb;
    };

    /** Intrusive per-tick FIFO (head-to-tail = scheduling order). */
    struct Fifo
    {
        Node *head = nullptr;
        Node *tail = nullptr;
    };

    /** Overflow-heap element: POD reference, cheap to sift. */
    struct FarRef
    {
        Tick when;
        std::uint64_t seq;
        Node *node;
    };

    /** Max-heap comparator that makes (when, seq)-smallest the front. */
    static bool
    farLater(const FarRef &a, const FarRef &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    static constexpr std::size_t kSlotMask = kRingSlots - 1;
    static constexpr std::size_t kBitmapWords = kRingSlots / 64;
    static constexpr std::size_t kSlabNodes = 256;
    static_assert((kRingSlots & kSlotMask) == 0,
                  "ring size must be a power of two");

    Node *allocNode();
    void freeNode(Node *n);
    void growSlab();

    void pushRing(Node *n);
    /** Pop the FIFO head of @p slot. @pre the slot is non-empty. */
    Node *popRing(std::size_t slot);
    /**
     * Earliest occupied tick in the ring. Pure scan: ring_base_ is
     * committed only when a tick is dispatched, so an early-exiting
     * runUntil() never leaves the window ahead of now().
     * @pre ring_count_ > 0.
     */
    Tick nextRingTick() const;

    void pushFar(Node *n);
    /**
     * Jump the window to the earliest overflow tick and promote every
     * overflow event inside the new window into the ring.
     * @pre ring_count_ == 0 && !far_.empty().
     */
    void promoteFar();
    /**
     * The sliding window caught up with the overflow heap's front
     * (when <= @p t, the earliest ring tick): promote the overflow
     * events at the earliest such tick, prepending them to their
     * slot's FIFO (they predate every ring event at that tick).
     * Returns the tick to dispatch, which is min(t, overflow front);
     * the caller commits ring_base_ to it alongside now_.
     */
    Tick pullEligibleFar(Tick t);

    /** Dispatch every event in the slot holding tick now_. */
    void drainCurrentSlot();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t peak_pending_ = 0;

    /**
     * Ring window base: ring events have when in
     * [ring_base_, ring_base_ + kRingSlots), so when & kSlotMask is
     * collision-free. The window slides as ring_base_ advances.
     */
    Tick ring_base_ = 0;
    std::size_t ring_count_ = 0;
    std::array<Fifo, kRingSlots> ring_{};
    /** Occupancy bit per slot, for O(words) next-event scans. */
    std::array<std::uint64_t, kBitmapWords> occupied_{};

    /** Far-future overflow: min-heap on (when, seq). */
    std::vector<FarRef> far_;

    /** Slab storage + freelist for Node slots. */
    std::vector<std::unique_ptr<Node[]>> slabs_;
    Node *free_ = nullptr;

    std::uint64_t scheduled_ = 0;
    std::uint64_t inline_callbacks_ = 0;
    std::uint64_t overflow_promotions_ = 0;
};

} // namespace mtia

#endif // MTIA_SIM_EVENT_QUEUE_H_
