#ifndef MTIA_SIM_EVENT_QUEUE_H_
#define MTIA_SIM_EVENT_QUEUE_H_

/**
 * @file
 * Discrete-event simulation core. Serving simulators, fleet rollout
 * simulators, and the job scheduler are all built on this queue.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace mtia {

/**
 * A time-ordered queue of callbacks. Events scheduled for the same tick
 * fire in FIFO order of scheduling, which keeps simulations
 * deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void scheduleAfter(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Events dispatched so far (telemetry). */
    std::uint64_t executed() const { return executed_; }

    /** High-water mark of pending() over the queue's lifetime. */
    std::size_t peakPending() const { return peak_pending_; }

    /** Run events until the queue drains. Returns final time. */
    Tick run();

    /**
     * Run events with timestamp <= @p limit; afterwards now() == limit
     * if the queue drained early, else the time of the last event run.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events (simulation teardown). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t peak_pending_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

} // namespace mtia

#endif // MTIA_SIM_EVENT_QUEUE_H_
