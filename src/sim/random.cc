#include "sim/random.h"

#include <cmath>
#include <deque>

#include "core/check.h"

namespace mtia {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

Rng
Rng::fork(std::uint64_t index) const
{
    // Mix the task index through splitmix64 first so dense indices
    // (0, 1, 2, ...) land far apart, then fold in every parent state
    // word. Seeding a fresh Rng re-expands the result through
    // splitmix64, which also guarantees the child starts with no
    // Box-Muller spare state (hasSpare_ defaults to false).
    std::uint64_t x = index;
    std::uint64_t mixed = splitmix64(x);
    mixed ^= s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
    return Rng(mixed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    MTIA_CHECK_GT(n, 0u) << ": Rng::below needs a non-empty range";
    // Modulo bias is negligible for the n used here (<< 2^64).
    return next() % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    MTIA_CHECK_LE(lo, hi) << ": Rng::range bounds reversed";
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    MTIA_CHECK_GT(rate, 0.0) << ": Rng::exponential needs a positive rate";
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

std::uint64_t
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's method for small means.
        const double limit = std::exp(-mean);
        double p = 1.0;
        std::uint64_t k = 0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation for large means.
    const double v = gaussian(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    MTIA_CHECK_GT(n, 0u) << ": ZipfSampler over an empty item set";
    // h()/hInv() integrate x^-alpha assuming alpha != 1; at alpha == 1
    // the closed form divides by zero, so the singularity is a hard
    // precondition rather than a silent nudge.
    MTIA_CHECK_GT(std::abs(alpha - 1.0), 1e-9)
        << ": ZipfSampler alpha == 1 hits the integration singularity; "
           "use 1 +/- epsilon explicitly";
    MTIA_CHECK_GT(alpha, 0.0) << ": ZipfSampler alpha must be positive";
    hx0_ = h(0.5);
    hxm_ = h(static_cast<double>(n_) + 0.5);
    hx1_ = hx0_ - 1.0;
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-alpha (alpha != 1): x^(1-alpha) / (1-alpha).
    return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double
ZipfSampler::hInv(double x) const
{
    return std::pow((1.0 - alpha_) * x, 1.0 / (1.0 - alpha_));
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    // Rejection-inversion (Hormann & Derflinger 1996), simplified.
    while (true) {
        const double u = hxm_ + rng.uniform() * (hx0_ - hxm_);
        const double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= 1.0 ||
            u >= h(kd + 0.5) - std::pow(kd, -alpha_)) {
            return k - 1;
        }
    }
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    const std::size_t n = weights.size();
    MTIA_CHECK_GT(n, 0u) << ": DiscreteSampler needs at least one weight";
    double total = 0.0;
    for (double w : weights) {
        MTIA_CHECK_GE(w, 0.0) << ": DiscreteSampler weights must be >= 0";
        total += w;
    }
    MTIA_CHECK_GT(total, 0.0) << ": DiscreteSampler weights sum to zero";

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);
    std::vector<double> scaled(n);
    std::deque<std::size_t> small;
    std::deque<std::size_t> large;
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * static_cast<double>(n) / total;
        (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
        const std::size_t s = small.front();
        small.pop_front();
        const std::size_t l = large.front();
        large.pop_front();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = scaled[l] + scaled[s] - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (std::size_t i : large)
        prob_[i] = 1.0;
    for (std::size_t i : small)
        prob_[i] = 1.0;
}

std::size_t
DiscreteSampler::sample(Rng &rng) const
{
    const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
    return rng.uniform() < prob_[i] ? i : alias_[i];
}

} // namespace mtia
