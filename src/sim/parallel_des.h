#ifndef MTIA_SIM_PARALLEL_DES_H_
#define MTIA_SIM_PARALLEL_DES_H_

/**
 * @file
 * Deterministic parallel discrete-event simulation by conservative
 * time-windowed synchronization (see DESIGN.md "Parallel multi-chip
 * DES").
 *
 * The model is partitioned: every partition owns a private bucketed
 * EventQueue and all of the simulated state its events touch, so
 * partitions can run concurrently with no locks. Partitions interact
 * ONLY through post(): a cross-partition message that is buffered in
 * a per-(source, dest) ordered mailbox and delivered at the next
 * epoch barrier.
 *
 * Timeline of one epoch of width W on the fixed grid B_k = k * W:
 *
 *     partition 0  |== runUntil(B_{k+1} - 1) ==|
 *     partition 1  |== runUntil(B_{k+1} - 1) ==|   barrier: drain
 *     partition 2  |== runUntil(B_{k+1} - 1) ==|   mailboxes in
 *         ...                                      (dst, src, FIFO)
 *                                                  index order
 *
 * Conservative synchronization: post() requires the delivery time to
 * land strictly after the epoch being executed, which is guaranteed
 * by construction when every cross-partition latency is >= W (pick W
 * = the minimum such latency). No partition can therefore receive an
 * event in its past, and no rollback machinery is needed.
 *
 * Determinism at any MTIA_THREADS count: within an epoch each
 * partition's execution is sequential and touches only its own state,
 * so it cannot depend on the schedule; senders append to their own
 * (src, dst) mailbox in program order (single writer per mailbox, no
 * synchronization needed); and the barrier drain walks mailboxes in
 * fixed (dst-major, src-minor, FIFO) index order on the caller
 * thread, so destination-queue sequence numbers — and with them all
 * (when, seq) tie-breaks — are a pure function of the simulation, not
 * the lane count. Running with one lane executes the exact same
 * protocol inline and produces the same bytes.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace mtia {

/** A partitioned DES run on the deterministic parallel harness. */
class ParallelDes
{
  public:
    /**
     * @p partitions private event queues, synchronized on the fixed
     * epoch grid of width @p epoch_width ticks. @pre partitions >= 1,
     * epoch_width >= 1. epoch_width must not exceed the smallest
     * cross-partition latency any post() will use.
     */
    ParallelDes(unsigned partitions, Tick epoch_width);

    ParallelDes(const ParallelDes &) = delete;
    ParallelDes &operator=(const ParallelDes &) = delete;

    unsigned partitions() const
    {
        return static_cast<unsigned>(queues_.size());
    }
    Tick epochWidth() const { return epoch_width_; }

    /** Partition @p p's private queue (setup and intra-partition use). */
    EventQueue &queue(unsigned p);
    const EventQueue &queue(unsigned p) const;

    /**
     * Send a cross-partition message: @p fn is scheduled on partition
     * @p dst's queue at absolute time @p when, delivered at the next
     * epoch barrier. During run() this must be called from partition
     * @p src's currently-executing epoch (it appends to the private
     * (src, dst) mailbox, so the send order within one epoch is the
     * sender's program order), and @p when must land strictly after
     * the epoch end — guaranteed when when >= send time + epochWidth().
     * Before run() it may be called from setup code with any src.
     */
    void post(unsigned src, unsigned dst, Tick when,
              EventQueue::Callback fn);

    /**
     * Run all partitions to global quiescence (every queue drained,
     * every mailbox empty), epoch by epoch over the PR-3 parallel
     * harness. Idle stretches are skipped: each epoch is anchored at
     * the grid window holding the globally earliest pending event.
     */
    void run();

    /** Barriers executed by run() (telemetry / tests). */
    std::uint64_t epochsRun() const { return epochs_; }
    /** Cross-partition messages delivered (telemetry / tests). */
    std::uint64_t messagesDelivered() const { return delivered_; }
    /** Events dispatched, summed over every partition queue. */
    std::uint64_t executed() const;

  private:
    struct Message
    {
        Tick when;
        EventQueue::Callback fn;
    };

    /**
     * Barrier body: deliver every buffered message in (dst, src,
     * FIFO) order, then anchor the next epoch at the earliest pending
     * event. Returns false when the simulation is quiescent.
     */
    bool advanceEpoch();

    Tick epoch_width_;
    /** Last tick (inclusive) of the epoch being executed. */
    Tick epoch_end_ = 0;
    bool running_ = false;
    std::uint64_t epochs_ = 0;
    std::uint64_t delivered_ = 0;
    /** unique_ptr keeps queue addresses stable and cheaply spaced. */
    std::vector<std::unique_ptr<EventQueue>> queues_;
    /** Mailbox (src, dst) lives at index src * partitions + dst. */
    std::vector<std::vector<Message>> mailboxes_;
};

} // namespace mtia

#endif // MTIA_SIM_PARALLEL_DES_H_
