#include "fleet/power_provisioning.h"

#include <algorithm>
#include <cmath>

#include "sim/stats.h"

namespace mtia {

PowerBudgetReport
PowerProvisioningStudy::run(unsigned servers, unsigned days)
{
    PowerBudgetReport rep;

    // Initial budget: stress test drives every accelerator to TDP
    // with nameplate host power, plus the early-deployment margin
    // (the initial estimates also reflected unoptimized models).
    rep.initial_budget_w =
        (params_.accelerators * dev_.config().tdp_watts +
         params_.host_provisioned_watts) *
        params_.stress_margin;

    // --- Method (a): the experiment. The two largest models' peak
    // per-accelerator throughput varies across the fleet; take the
    // P90 of those peaks and run all 24 accelerators there at once.
    // Even the P90 peak stays well below full utilization because
    // serving reserves buffer capacity for load spikes (Section 5.4).
    Histogram peak_util;
    for (unsigned s = 0; s < servers; ++s) {
        peak_util.add(std::clamp(rng_.gaussian(0.62, 0.08), 0.3, 0.95));
    }
    const double p90_peak = peak_util.percentile(90);
    rep.experiment_budget_w =
        params_.accelerators * dev_.powerWatts(p90_peak) +
        params_.host_measured_watts;

    // --- Method (b): P90 power of fully-utilized production servers
    // over the observation window (hourly samples, diurnal load).
    Histogram server_power;
    for (unsigned s = 0; s < servers; ++s) {
        for (unsigned h = 0; h < days * 24; ++h) {
            const double diurnal = 0.50 +
                0.18 * std::sin(2.0 * M_PI *
                                static_cast<double>(h % 24) / 24.0);
            double watts = params_.host_measured_watts;
            for (unsigned a = 0; a < params_.accelerators; ++a) {
                const double util = std::clamp(
                    diurnal + rng_.gaussian(0.0, 0.08), 0.05, 0.98);
                watts += dev_.powerWatts(util);
            }
            server_power.add(watts);
        }
    }
    rep.analysis_budget_w = server_power.percentile(90);

    rep.final_budget_w =
        std::max(rep.experiment_budget_w, rep.analysis_budget_w);
    return rep;
}

} // namespace mtia
