#include "fleet/power_provisioning.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "sim/stats.h"

namespace mtia {

PowerBudgetReport
PowerProvisioningStudy::run(unsigned servers, unsigned days)
{
    PowerBudgetReport rep;

    // Initial budget: stress test drives every accelerator to TDP
    // with nameplate host power, plus the early-deployment margin
    // (the initial estimates also reflected unoptimized models).
    rep.initial_budget_w =
        (params_.accelerators * dev_.config().tdp_watts +
         params_.host_provisioned_watts) *
        params_.stress_margin;

    // --- Method (a): the experiment. The two largest models' peak
    // per-accelerator throughput varies across the fleet; take the
    // P90 of those peaks and run all 24 accelerators there at once.
    // Even the P90 peak stays well below full utilization because
    // serving reserves buffer capacity for load spikes (Section 5.4).
    // Each server draws from its own substream (Rng::fork) and the
    // per-server values are folded into the histogram in server order,
    // so both methods are byte-identical at any MTIA_THREADS.
    const Rng peak_base(rng_.next());
    Histogram peak_util;
    const std::vector<double> peaks = parallelMap(
        servers, [&](std::size_t s) {
            Rng rng = peak_base.fork(s);
            return std::clamp(rng.gaussian(0.62, 0.08), 0.3, 0.95);
        });
    for (double p : peaks)
        peak_util.add(p);
    const double p90_peak = peak_util.percentile(90);
    rep.experiment_budget_w =
        params_.accelerators * dev_.powerWatts(p90_peak) +
        params_.host_measured_watts;

    // --- Method (b): P90 power of fully-utilized production servers
    // over the observation window (hourly samples, diurnal load).
    const Rng power_base(rng_.next());
    Histogram server_power;
    const std::vector<std::vector<double>> hourly = parallelMap(
        servers, [&](std::size_t s) {
            Rng rng = power_base.fork(s);
            std::vector<double> samples;
            samples.reserve(days * 24);
            for (unsigned h = 0; h < days * 24; ++h) {
                const double diurnal = 0.50 +
                    0.18 *
                        std::sin(2.0 * M_PI *
                                 static_cast<double>(h % 24) / 24.0);
                double watts = params_.host_measured_watts;
                for (unsigned a = 0; a < params_.accelerators; ++a) {
                    const double util = std::clamp(
                        diurnal + rng.gaussian(0.0, 0.08), 0.05, 0.98);
                    watts += dev_.powerWatts(util);
                }
                samples.push_back(watts);
            }
            return samples;
        });
    for (const auto &samples : hourly)
        for (double watts : samples)
            server_power.add(watts);
    rep.analysis_budget_w = server_power.percentile(90);

    rep.final_budget_w =
        std::max(rep.experiment_budget_w, rep.analysis_budget_w);
    return rep;
}

} // namespace mtia
