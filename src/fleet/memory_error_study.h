#ifndef MTIA_FLEET_MEMORY_ERROR_STUDY_H_
#define MTIA_FLEET_MEMORY_ERROR_STUDY_H_

/**
 * @file
 * The Section 5.1 memory-error investigation: (1) fleet telemetry —
 * what fraction of servers develop ECC errors over an observation
 * window; (2) injection campaigns — which model memory regions turn
 * bit flips into NaNs, corrupted rankings, or crash-equivalent index
 * faults; (3) the ECC decision — throughput with controller ECC vs
 * the operational cost of running without it.
 */

#include <cstdint>
#include <map>
#include <vector>

#include "mem/error_injector.h"
#include "mem/lpddr.h"
#include "sim/random.h"

namespace mtia {

/** Fleet-telemetry outcome. */
struct FleetErrorReport
{
    unsigned servers = 0;
    unsigned cards_per_server = 24;
    unsigned servers_with_errors = 0;
    unsigned cards_with_errors = 0;
    /** Of affected servers, how many had exactly one bad card. */
    unsigned single_card_servers = 0;

    double
    serverErrorFraction() const
    {
        return servers == 0
            ? 0.0
            : static_cast<double>(servers_with_errors) / servers;
    }
};

/** Fleet memory-error study. */
class MemoryErrorStudy
{
  public:
    explicit MemoryErrorStudy(std::uint64_t seed) : rng_(seed) {}

    /**
     * Sample ECC-error telemetry for @p servers over
     * @p observation_days, with @p resident_bytes of model data per
     * card and the channel's raw bit-error rate. Card quality varies
     * lognormally (a small fraction of weak parts dominates, which is
     * why affected servers typically show a single bad card).
     */
    FleetErrorReport sampleFleet(const LpddrChannel &channel,
                                 unsigned servers,
                                 double observation_days,
                                 Bytes resident_bytes);

    /**
     * Injection campaign: @p trials single-bit flips into a tensor
     * standing for @p region, classified by consequence.
     */
    InjectionReport injectRegion(MemRegion region, int trials);

    /**
     * Same campaign with an explicit seed instead of the member
     * stream; const, so region campaigns can run concurrently once
     * their seeds were drawn in order.
     */
    InjectionReport injectRegionSeeded(MemRegion region, int trials,
                                       std::uint64_t seed) const;

    /** Run the campaign over every region. */
    std::vector<InjectionReport> injectAllRegions(int trials);

  private:
    Rng rng_;
};

} // namespace mtia

#endif // MTIA_FLEET_MEMORY_ERROR_STUDY_H_
