#ifndef MTIA_FLEET_OVERCLOCKING_H_
#define MTIA_FLEET_OVERCLOCKING_H_

/**
 * @file
 * The Section 5.2 overclocking study: ~3,000 chips, 10 test types,
 * three candidate frequencies (1.1, 1.25, 1.35 GHz). Each chip has a
 * silicon-quality Fmax drawn from the manufacturing distribution;
 * each test stresses a different margin. The study reports pass
 * rates per frequency and end-to-end model speedups from the uplift.
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"

namespace mtia {

/** The production test suite (10 tests as in the paper). */
inline constexpr std::array<const char *, 10> kOverclockTests = {
    "performance", "power",    "memory",      "kernel",
    "module-mfg",  "pcie",     "thermal",     "stress-uniform",
    "stress-burst", "long-soak",
};

/** Pass statistics for one (frequency, test) cell. */
struct TestCell
{
    std::string test;
    double frequency_ghz = 0;
    unsigned passed = 0;
    unsigned failed = 0;

    double
    passRate() const
    {
        const unsigned n = passed + failed;
        return n == 0 ? 0.0 : static_cast<double>(passed) / n;
    }
};

/** Whole-study result. */
struct OverclockReport
{
    unsigned chips = 0;
    std::vector<TestCell> cells; // frequency-major, test-minor

    /** Aggregate pass rate at one frequency. */
    double passRateAt(double frequency_ghz) const;
};

/** The overclocking study. */
class OverclockingStudy
{
  public:
    /**
     * @param fmax_mean Mean silicon Fmax in GHz.
     * @param fmax_sigma Manufacturing spread.
     */
    OverclockingStudy(std::uint64_t seed, double fmax_mean = 1.62,
                      double fmax_sigma = 0.07)
        : rng_(seed), fmax_mean_(fmax_mean), fmax_sigma_(fmax_sigma) {}

    /**
     * Run the full matrix: @p chips x 10 tests x the frequency list.
     * A chip passes a test when its Fmax, derated by the test's
     * margin requirement, still exceeds the target frequency.
     */
    OverclockReport run(unsigned chips,
                        const std::vector<double> &frequencies);

  private:
    Rng rng_;
    double fmax_mean_;
    double fmax_sigma_;
};

} // namespace mtia

#endif // MTIA_FLEET_OVERCLOCKING_H_
