#ifndef MTIA_FLEET_FIRMWARE_H_
#define MTIA_FLEET_FIRMWARE_H_

/**
 * @file
 * Firmware-bundle lifecycle (Section 5.5): bundles (firmware + driver
 * + runtime, deployed atomically) are built three times daily, signed
 * with SHA-256, stress-tested pre-production (which is how the
 * Control-Core/NoC/PCIe deadlock was caught), and rolled out in
 * stages over ~18 days — or fleet-wide within three hours (one hour
 * when safety policies are overridden) in an emergency.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "host/control_core.h"
#include "host/sha256.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/types.h"

namespace mtia {

/** An atomically-deployed firmware + driver + runtime bundle. */
struct FirmwareBundle
{
    std::string version;
    std::vector<std::uint8_t> image;
    Sha256Digest digest{};
    /** Where the Control Core's working memory lives under this
     * firmware (the deadlock mitigation flips this). */
    ControlMemLocation control_mem = ControlMemLocation::HostMemory;

    /** Sign the image (secure-boot digest). */
    void sign() { digest = Sha256::hash(image); }

    /** Secure-boot verification at device reset. */
    bool
    verify() const
    {
        return Sha256::hash(image) == digest;
    }
};

/** Result of the pre-production stress test of one bundle. */
struct StressTestResult
{
    bool passed = false;
    /** Fraction of test servers that lost PCIe connectivity (the
     * deadlock signature; ~1% at 100% PE utilization pre-fix). */
    double pcie_loss_fraction = 0.0;
};

/** One step of a rollout. */
struct RolloutStage
{
    std::string name;
    double fleet_fraction;  ///< cumulative fraction after this stage
    Tick soak;              ///< soak time before the next stage
};

/** Rollout outcome. */
struct RolloutResult
{
    bool completed = false;
    Tick duration = 0;
    unsigned servers_updated = 0;
    unsigned concurrent_restart_peak = 0;
};

/** Fleet firmware manager. */
class FirmwareManager
{
  public:
    FirmwareManager(std::uint64_t seed, unsigned fleet_servers)
        : rng_(seed), fleet_servers_(fleet_servers) {}

    /** Build one bundle (payload is pseudo-random, signed). */
    FirmwareBundle build(const std::string &version,
                         ControlMemLocation control_mem);

    /**
     * Pre-production stress test: drives PE utilization to 100% on a
     * sample of servers; with the un-mitigated firmware, queued PCIe
     * transactions close the wait-for cycle on ~1% of them.
     */
    StressTestResult stressTest(const FirmwareBundle &bundle,
                                unsigned test_servers);

    /** The standard 18-day staged rollout plan. */
    static std::vector<RolloutStage> standardPlan();

    /** Emergency plans: ~3 h fleet-wide, ~1 h with overrides. */
    static std::vector<RolloutStage> emergencyPlan(bool override_safety);

    /**
     * Simulate a rollout: stages gate on soak time, restarts are
     * rate-limited by the cluster-manager policy.
     * @param max_concurrent_restarts Policy cap per restart wave.
     * @param server_restart Time to drain + restart one server.
     */
    RolloutResult rollout(const FirmwareBundle &bundle,
                          const std::vector<RolloutStage> &plan,
                          unsigned max_concurrent_restarts,
                          Tick server_restart = fromSeconds(300.0));

    unsigned fleetServers() const { return fleet_servers_; }

  private:
    Rng rng_;
    unsigned fleet_servers_;
};

} // namespace mtia

#endif // MTIA_FLEET_FIRMWARE_H_
