#include "fleet/overclocking.h"

#include "core/parallel.h"
#include "sim/logging.h"

namespace mtia {

double
OverclockReport::passRateAt(double frequency_ghz) const
{
    std::uint64_t passed = 0;
    std::uint64_t total = 0;
    for (const auto &cell : cells) {
        if (cell.frequency_ghz == frequency_ghz) {
            passed += cell.passed;
            total += cell.passed + cell.failed;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(passed) /
            static_cast<double>(total);
}

OverclockReport
OverclockingStudy::run(unsigned chips,
                       const std::vector<double> &frequencies)
{
    // Margin each test consumes, as a fraction of Fmax: stress and
    // soak tests push closest to the silicon limit.
    const std::array<double, 10> margins = {
        0.97, 0.99, 0.98, 0.97, 0.99, 0.995, 0.96, 0.95, 0.95, 0.94};

    OverclockReport rep;
    rep.chips = chips;

    // Draw every chip's Fmax from its own substream; reuse across the
    // test matrix so the same weak chips fail consistently. Each
    // (frequency, test) cell then gets its own noise substream, making
    // every cell a pure function of its grid index — the report is
    // byte-identical at any MTIA_THREADS.
    const Rng fmax_base(rng_.next());
    const Rng cell_base(rng_.next());
    const std::vector<double> fmax = parallelMap(
        chips, [&](std::size_t c) {
            return fmax_base.fork(c).gaussian(fmax_mean_, fmax_sigma_);
        });

    const std::size_t tests = kOverclockTests.size();
    rep.cells = parallelMap(
        frequencies.size() * tests, [&](std::size_t i) {
            const double freq = frequencies[i / tests];
            const std::size_t t = i % tests;
            Rng rng = cell_base.fork(i);
            TestCell cell;
            cell.test = kOverclockTests[t];
            cell.frequency_ghz = freq;
            for (unsigned c = 0; c < chips; ++c) {
                // Per-run noise: voltage/thermal variation during the
                // test itself.
                const double effective = fmax[c] * margins[t] *
                    (1.0 + rng.gaussian(0.0, 0.004));
                if (effective >= freq) {
                    ++cell.passed;
                } else {
                    ++cell.failed;
                }
            }
            return cell;
        });
    return rep;
}

} // namespace mtia
