#include "fleet/overclocking.h"

#include "sim/logging.h"

namespace mtia {

double
OverclockReport::passRateAt(double frequency_ghz) const
{
    std::uint64_t passed = 0;
    std::uint64_t total = 0;
    for (const auto &cell : cells) {
        if (cell.frequency_ghz == frequency_ghz) {
            passed += cell.passed;
            total += cell.passed + cell.failed;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(passed) /
            static_cast<double>(total);
}

OverclockReport
OverclockingStudy::run(unsigned chips,
                       const std::vector<double> &frequencies)
{
    // Margin each test consumes, as a fraction of Fmax: stress and
    // soak tests push closest to the silicon limit.
    const std::array<double, 10> margins = {
        0.97, 0.99, 0.98, 0.97, 0.99, 0.995, 0.96, 0.95, 0.95, 0.94};

    OverclockReport rep;
    rep.chips = chips;

    // Draw every chip's Fmax once; reuse across the test matrix so
    // the same weak chips fail consistently.
    std::vector<double> fmax(chips);
    for (auto &f : fmax)
        f = rng_.gaussian(fmax_mean_, fmax_sigma_);

    for (double freq : frequencies) {
        for (std::size_t t = 0; t < kOverclockTests.size(); ++t) {
            TestCell cell;
            cell.test = kOverclockTests[t];
            cell.frequency_ghz = freq;
            for (unsigned c = 0; c < chips; ++c) {
                // Per-run noise: voltage/thermal variation during the
                // test itself.
                const double effective =
                    fmax[c] * margins[t] *
                    (1.0 + rng_.gaussian(0.0, 0.004));
                if (effective >= freq) {
                    ++cell.passed;
                } else {
                    ++cell.failed;
                }
            }
            rep.cells.push_back(cell);
        }
    }
    return rep;
}

} // namespace mtia
