#include "fleet/memory_error_study.h"

#include <cmath>

#include "core/parallel.h"
#include "sim/logging.h"

namespace mtia {

FleetErrorReport
MemoryErrorStudy::sampleFleet(const LpddrChannel &channel,
                              unsigned servers, double observation_days,
                              Bytes resident_bytes)
{
    FleetErrorReport rep;
    rep.servers = servers;
    const double seconds = observation_days * 86400.0;

    // One substream per server (Rng::fork discipline): server s draws
    // from base.fork(s) whatever the thread count, so the fleet sample
    // is byte-identical at MTIA_THREADS=1 and =N. The member stream
    // advances once per call so repeated samples stay independent.
    const Rng base(rng_.next());
    const unsigned cards = rep.cards_per_server;
    const std::vector<unsigned> bad_per_server = parallelMap(
        servers, [&](std::size_t s) {
            Rng rng = base.fork(s);
            unsigned bad_cards = 0;
            for (unsigned c = 0; c < cards; ++c) {
                // Per-card quality factor: most parts are much better
                // than the rated BER, a thin tail is much worse. The
                // lognormal keeps the fleet mean near 1 while giving
                // the observed typically-one-bad-card-per-server
                // pattern.
                const double quality = rng.lognormal(-1.5, 1.8);
                const double expected =
                    channel.expectedBitErrors(resident_bytes, seconds) *
                    quality;
                if (rng.poisson(expected) > 0)
                    ++bad_cards;
            }
            return bad_cards;
        });

    for (unsigned bad_cards : bad_per_server) {
        if (bad_cards > 0) {
            ++rep.servers_with_errors;
            rep.cards_with_errors += bad_cards;
            if (bad_cards == 1)
                ++rep.single_card_servers;
        }
    }
    return rep;
}

InjectionReport
MemoryErrorStudy::injectRegion(MemRegion region, int trials)
{
    return injectRegionSeeded(region, trials, rng_.next());
}

InjectionReport
MemoryErrorStudy::injectRegionSeeded(MemRegion region, int trials,
                                     std::uint64_t seed) const
{
    InjectionReport rep;
    rep.region = region;
    MemoryErrorInjector inj(seed);

    // A representative tensor for the region (dtype drives how bit
    // flips express themselves).
    const bool is_index = region == MemRegion::TbeIndices;
    Tensor proto;
    switch (region) {
      case MemRegion::DenseWeights:
        proto = Tensor(Shape{64, 64}, DType::FP16);
        break;
      case MemRegion::Activations:
      case MemRegion::Inputs:
      case MemRegion::Outputs:
        proto = Tensor(Shape{64, 64}, DType::FP32);
        break;
      case MemRegion::EmbeddingTable:
        proto = Tensor(Shape{256, 64}, DType::FP16);
        break;
      case MemRegion::TbeIndices:
        break;
    }
    if (!is_index)
        proto.fillGaussian(inj.rng(), 0.0f, 0.5f);

    for (int t = 0; t < trials; ++t) {
        ErrorOutcome outcome;
        if (is_index) {
            std::int64_t idx = static_cast<std::int64_t>(
                inj.rng().below(1u << 22));
            outcome = inj.injectIndexError(idx, 1 << 22);
        } else {
            Tensor copy = proto;
            outcome = inj.injectAndClassify(copy);
        }
        ++rep.trials;
        switch (outcome) {
          case ErrorOutcome::Benign: ++rep.benign; break;
          case ErrorOutcome::Corrupted: ++rep.corrupted; break;
          case ErrorOutcome::NaN: ++rep.nan; break;
          case ErrorOutcome::OutOfBounds: ++rep.out_of_bounds; break;
        }
    }
    return rep;
}

std::vector<InjectionReport>
MemoryErrorStudy::injectAllRegions(int trials)
{
    const std::vector<MemRegion> regions = {
        MemRegion::DenseWeights, MemRegion::Activations,
        MemRegion::EmbeddingTable, MemRegion::TbeIndices,
        MemRegion::Inputs, MemRegion::Outputs};
    // Draw each region's campaign seed serially in region order (the
    // same stream consumption as the serial path), then run the
    // campaigns concurrently — one region per task, results in region
    // order.
    std::vector<std::uint64_t> seeds(regions.size());
    for (std::size_t i = 0; i < regions.size(); ++i)
        seeds[i] = rng_.next();
    return parallelMap(regions.size(), [&](std::size_t i) {
        return injectRegionSeeded(regions[i], trials, seeds[i]);
    });
}

} // namespace mtia
