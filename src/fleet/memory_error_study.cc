#include "fleet/memory_error_study.h"

#include <cmath>

#include "sim/logging.h"

namespace mtia {

FleetErrorReport
MemoryErrorStudy::sampleFleet(const LpddrChannel &channel,
                              unsigned servers, double observation_days,
                              Bytes resident_bytes)
{
    FleetErrorReport rep;
    rep.servers = servers;
    const double seconds = observation_days * 86400.0;
    for (unsigned s = 0; s < servers; ++s) {
        unsigned bad_cards = 0;
        for (unsigned c = 0; c < rep.cards_per_server; ++c) {
            // Per-card quality factor: most parts are much better
            // than the rated BER, a thin tail is much worse. The
            // lognormal keeps the fleet mean near 1 while giving the
            // observed typically-one-bad-card-per-server pattern.
            const double quality = rng_.lognormal(-1.5, 1.8);
            const double expected =
                channel.expectedBitErrors(resident_bytes, seconds) *
                quality;
            if (rng_.poisson(expected) > 0)
                ++bad_cards;
        }
        if (bad_cards > 0) {
            ++rep.servers_with_errors;
            rep.cards_with_errors += bad_cards;
            if (bad_cards == 1)
                ++rep.single_card_servers;
        }
    }
    return rep;
}

InjectionReport
MemoryErrorStudy::injectRegion(MemRegion region, int trials)
{
    InjectionReport rep;
    rep.region = region;
    MemoryErrorInjector inj(rng_.next());

    // A representative tensor for the region (dtype drives how bit
    // flips express themselves).
    const bool is_index = region == MemRegion::TbeIndices;
    Tensor proto;
    switch (region) {
      case MemRegion::DenseWeights:
        proto = Tensor(Shape{64, 64}, DType::FP16);
        break;
      case MemRegion::Activations:
      case MemRegion::Inputs:
      case MemRegion::Outputs:
        proto = Tensor(Shape{64, 64}, DType::FP32);
        break;
      case MemRegion::EmbeddingTable:
        proto = Tensor(Shape{256, 64}, DType::FP16);
        break;
      case MemRegion::TbeIndices:
        break;
    }
    if (!is_index)
        proto.fillGaussian(inj.rng(), 0.0f, 0.5f);

    for (int t = 0; t < trials; ++t) {
        ErrorOutcome outcome;
        if (is_index) {
            std::int64_t idx = static_cast<std::int64_t>(
                inj.rng().below(1u << 22));
            outcome = inj.injectIndexError(idx, 1 << 22);
        } else {
            Tensor copy = proto;
            outcome = inj.injectAndClassify(copy);
        }
        ++rep.trials;
        switch (outcome) {
          case ErrorOutcome::Benign: ++rep.benign; break;
          case ErrorOutcome::Corrupted: ++rep.corrupted; break;
          case ErrorOutcome::NaN: ++rep.nan; break;
          case ErrorOutcome::OutOfBounds: ++rep.out_of_bounds; break;
        }
    }
    return rep;
}

std::vector<InjectionReport>
MemoryErrorStudy::injectAllRegions(int trials)
{
    std::vector<InjectionReport> out;
    for (MemRegion region :
         {MemRegion::DenseWeights, MemRegion::Activations,
          MemRegion::EmbeddingTable, MemRegion::TbeIndices,
          MemRegion::Inputs, MemRegion::Outputs}) {
        out.push_back(injectRegion(region, trials));
    }
    return out;
}

} // namespace mtia
