#include "fleet/firmware.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>

#include "core/check.h"

namespace mtia {

FirmwareBundle
FirmwareManager::build(const std::string &version,
                       ControlMemLocation control_mem)
{
    FirmwareBundle bundle;
    bundle.version = version;
    bundle.control_mem = control_mem;
    bundle.image.resize(4096);
    for (auto &b : bundle.image)
        b = static_cast<std::uint8_t>(rng_.below(256));
    bundle.sign();
    return bundle;
}

StressTestResult
FirmwareManager::stressTest(const FirmwareBundle &bundle,
                            unsigned test_servers)
{
    StressTestResult result;
    if (!bundle.verify()) {
        result.passed = false;
        return result;
    }
    // Build the high-load scenario under this firmware's Control-
    // Core memory placement and check for the wait-for cycle.
    ControlCore cc(ControlCoreConfig{4, bundle.control_mem});
    const bool deadlock_possible =
        cc.buildHighLoadScenario().hasDeadlock();

    unsigned lost = 0;
    for (unsigned s = 0; s < test_servers; ++s) {
        if (!deadlock_possible)
            continue;
        // The cycle needs 100% PE utilization AND a deep queue of
        // in-flight PCIe transactions at the same instant: ~1% of
        // stress-test servers hit it (Section 5.5).
        const bool queue_deep = rng_.chance(0.10);
        const bool timing_window = rng_.chance(0.10);
        if (queue_deep && timing_window)
            ++lost;
    }
    result.pcie_loss_fraction =
        test_servers == 0 ? 0.0
                          : static_cast<double>(lost) / test_servers;
    result.passed = lost == 0;
    return result;
}

std::vector<RolloutStage>
FirmwareManager::standardPlan()
{
    // Staging -> 1% -> 5% -> 25% -> 100%, with multi-day soaks:
    // ~18 days end to end.
    return {
        {"staging", 0.002, fromSeconds(2.0 * 86400)},
        {"canary-1pct", 0.01, fromSeconds(3.0 * 86400)},
        {"early-5pct", 0.05, fromSeconds(4.0 * 86400)},
        {"broad-25pct", 0.25, fromSeconds(5.0 * 86400)},
        {"fleet", 1.0, fromSeconds(4.0 * 86400)},
    };
}

std::vector<RolloutStage>
FirmwareManager::emergencyPlan(bool override_safety)
{
    if (override_safety) {
        // Everything at once; only the restart waves gate.
        return {{"fleet-now", 1.0, 0}};
    }
    return {
        {"canary", 0.02, fromSeconds(1200.0)},
        {"half", 0.5, fromSeconds(1200.0)},
        {"fleet", 1.0, 0},
    };
}

RolloutResult
FirmwareManager::rollout(const FirmwareBundle &bundle,
                         const std::vector<RolloutStage> &plan,
                         unsigned max_concurrent_restarts,
                         Tick server_restart)
{
    RolloutResult result;
    if (!bundle.verify())
        return result; // refuse to ship an unsigned/corrupt image
    MTIA_CHECK_GT(max_concurrent_restarts, 0u)
        << ": rollout restart policy must allow progress";

    // Rollout stages form a monotone state machine over the fleet:
    // each stage only ever widens the deployed fraction. Validated up
    // front so a bad plan fails before any simulated time passes.
    double prev_fraction = 0.0;
    for (const RolloutStage &stage : plan) {
        MTIA_CHECK_GT(stage.fleet_fraction, 0.0)
            << ": rollout stage '" << stage.name << "' deploys nothing";
        MTIA_CHECK_LE(stage.fleet_fraction, 1.0)
            << ": rollout stage '" << stage.name
            << "' exceeds the whole fleet";
        MTIA_CHECK_GE(stage.fleet_fraction, prev_fraction)
            << ": rollout stage '" << stage.name
            << "' shrinks the deployed fraction";
        prev_fraction = stage.fleet_fraction;
    }

    // Discrete-event rollout: each restart wave and each soak is an
    // event. Waves run back to back (rate-limited by the cluster-
    // manager policy); a stage's soak gates the next stage.
    EventQueue eq;
    std::size_t stage_idx = 0;
    unsigned updated = 0;
    std::function<void()> advance = [&]() {
        if (stage_idx == plan.size())
            return; // rollout complete; the queue drains
        const RolloutStage &stage = plan[stage_idx];
        const auto target = static_cast<unsigned>(
            std::ceil(stage.fleet_fraction * fleet_servers_));
        if (updated < target) {
            const unsigned wave =
                std::min(max_concurrent_restarts, target - updated);
            result.concurrent_restart_peak =
                std::max(result.concurrent_restart_peak, wave);
            eq.scheduleAfter(server_restart, [&, wave]() {
                updated += wave;
                advance();
            });
            return;
        }
        ++stage_idx;
        eq.scheduleAfter(stage.soak, [&]() { advance(); });
    };
    eq.schedule(0, [&]() { advance(); });
    eq.run();

    result.completed = updated >= fleet_servers_;
    result.duration = eq.now();
    result.servers_updated = updated;
    return result;
}

} // namespace mtia
