#ifndef MTIA_FLEET_POWER_PROVISIONING_H_
#define MTIA_FLEET_POWER_PROVISIONING_H_

/**
 * @file
 * The Section 5.3 power-provisioning methodology. The initial rack
 * budget comes from small-scale stress tests (every accelerator at
 * TDP plus host, plus margin). After six months of production the
 * budget is re-derived as the larger of:
 *   (a) an experiment driving all 24 accelerators at the P90 of the
 *       peak per-accelerator throughput of the two largest models;
 *   (b) the P90 power of fully-utilized production servers.
 * The result is ~40% below the initial estimate.
 */

#include <cstdint>
#include <vector>

#include "chip/device.h"
#include "sim/random.h"

namespace mtia {

/** Provisioning study outputs. */
struct PowerBudgetReport
{
    double initial_budget_w = 0;     ///< stress-test based
    double experiment_budget_w = 0;  ///< method (a)
    double analysis_budget_w = 0;    ///< method (b)
    double final_budget_w = 0;       ///< max(a, b)

    double
    reduction() const
    {
        return initial_budget_w == 0.0
            ? 0.0
            : 1.0 - final_budget_w / initial_budget_w;
    }
};

/** Server shape for the study. */
struct ServerPowerParams
{
    unsigned accelerators = 24;
    /** Host power as provisioned (nameplate CPUs/DRAM/NICs/fans). */
    double host_provisioned_watts = 1100.0;
    /** Host power as actually measured under serving load. */
    double host_measured_watts = 800.0;
    /** Initial safety margin applied on top of the stress test. */
    double stress_margin = 1.25;
};

/** The provisioning study. */
class PowerProvisioningStudy
{
  public:
    PowerProvisioningStudy(std::uint64_t seed, Device &dev,
                           ServerPowerParams params = {})
        : rng_(seed), dev_(dev), params_(params) {}

    /**
     * @param days Production observation length.
     * @param servers Fleet sample size.
     *
     * Per-accelerator utilization follows a diurnal curve with noise
     * and a buffer-for-peak policy (mean well below 1.0), which is
     * exactly why the all-at-TDP stress budget is so conservative.
     */
    PowerBudgetReport run(unsigned servers, unsigned days);

  private:
    Rng rng_;
    Device &dev_;
    ServerPowerParams params_;
};

} // namespace mtia

#endif // MTIA_FLEET_POWER_PROVISIONING_H_
