#ifndef MTIA_HOST_CONTROL_CORE_H_
#define MTIA_HOST_CONTROL_CORE_H_

/**
 * @file
 * Control Core: the quad-core RISC-V processor coordinating the 64
 * PEs. Models the two behaviours the paper's productionization story
 * needs: work-queue descriptor broadcast for eager mode, and the
 * placement of its working memory (host memory vs device SRAM), which
 * decides whether the Section 5.5 PCIe-ordering deadlock can form.
 */

#include <cstdint>

#include "noc/deadlock.h"
#include "sim/types.h"

namespace mtia {

/** Where the Control Core's working data structure lives. */
enum class ControlMemLocation : std::uint8_t {
    HostMemory,  ///< original firmware: read over PCIe
    DeviceSram,  ///< mitigated firmware: no host access on the path
};

/** Static Control Core configuration. */
struct ControlCoreConfig
{
    unsigned cores = 4;
    ControlMemLocation working_mem = ControlMemLocation::HostMemory;
};

/** The chip's coordination processor. */
class ControlCore
{
  public:
    explicit ControlCore(ControlCoreConfig cfg = {}) : cfg_(cfg) {}

    const ControlCoreConfig &config() const { return cfg_; }

    /** Apply the firmware mitigation that relocates working memory. */
    void relocateWorkingMem(ControlMemLocation loc)
    {
        cfg_.working_mem = loc;
    }

    /**
     * Build the wait-for graph of the high-load serialization
     * scenario: PE utilization at 100%, the PCIe controller with a
     * queue of in-flight transactions, and the NoC serializing
     * transactions behind a Control Core operation. Whether the graph
     * contains a cycle depends on where the Control Core's working
     * memory lives.
     */
    WaitForGraph buildHighLoadScenario() const;

  private:
    ControlCoreConfig cfg_;
};

} // namespace mtia

#endif // MTIA_HOST_CONTROL_CORE_H_
