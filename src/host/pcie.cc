#include "host/pcie.h"

#include <algorithm>

#include "sim/logging.h"

namespace mtia {

BytesPerSec
PcieConfig::bandwidth() const
{
    // Usable per-lane rates after encoding/protocol: Gen4 ~2 GB/s,
    // Gen5 ~4 GB/s.
    double per_lane = 0.0;
    switch (generation) {
      case 4: per_lane = 2.0; break;
      case 5: per_lane = 4.0; break;
      default:
        MTIA_FATAL("PcieConfig: unsupported generation ", generation);
    }
    return gbPerSec(per_lane * lanes);
}

Tick
PcieLink::transferTime(Bytes bytes) const
{
    return cfg_.base_latency + transferTicks(bytes, cfg_.bandwidth());
}

Tick
PcieLink::compressedTransferTime(Bytes logical_bytes, Bytes wire_bytes,
                                 BytesPerSec decompress_rate) const
{
    const Tick wire = transferTicks(wire_bytes, cfg_.bandwidth());
    const Tick expand = transferTicks(logical_bytes, decompress_rate);
    return cfg_.base_latency + std::max(wire, expand);
}

} // namespace mtia
