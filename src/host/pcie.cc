#include "host/pcie.h"

#include <algorithm>

#include "sim/logging.h"
#include "telemetry/metrics.h"

namespace mtia {

BytesPerSec
PcieConfig::bandwidth() const
{
    // Usable per-lane rates after encoding/protocol: Gen4 ~2 GB/s,
    // Gen5 ~4 GB/s.
    double per_lane = 0.0;
    switch (generation) {
      case 4: per_lane = 2.0; break;
      case 5: per_lane = 4.0; break;
      default:
        MTIA_FATAL("PcieConfig: unsupported generation ", generation);
    }
    return gbPerSec(per_lane * lanes);
}

Tick
PcieLink::transferTime(Bytes bytes) const
{
    const Tick t = cfg_.base_latency + transferTicks(bytes, cfg_.bandwidth());
    ++stats_.transfers;
    stats_.logical_bytes += bytes;
    stats_.wire_bytes += bytes;
    stats_.busy_ticks += t;
    return t;
}

Tick
PcieLink::compressedTransferTime(Bytes logical_bytes, Bytes wire_bytes,
                                 BytesPerSec decompress_rate) const
{
    const Tick wire = transferTicks(wire_bytes, cfg_.bandwidth());
    const Tick expand = transferTicks(logical_bytes, decompress_rate);
    const Tick t = cfg_.base_latency + std::max(wire, expand);
    ++stats_.transfers;
    stats_.logical_bytes += logical_bytes;
    stats_.wire_bytes += wire_bytes;
    stats_.busy_ticks += t;
    return t;
}

void
PcieLink::exportMetrics(telemetry::MetricRegistry &registry,
                        const std::string &device) const
{
    const telemetry::Labels labels{{"device", device}};
    registry.gauge("pcie.transfers", labels)
        .set(static_cast<double>(stats_.transfers));
    registry.gauge("pcie.logical_bytes", labels)
        .set(static_cast<double>(stats_.logical_bytes));
    registry.gauge("pcie.wire_bytes", labels)
        .set(static_cast<double>(stats_.wire_bytes));
    registry.gauge("pcie.busy_ms", labels)
        .set(toMillis(stats_.busy_ticks));
}

} // namespace mtia
