#ifndef MTIA_HOST_SHA256_H_
#define MTIA_HOST_SHA256_H_

/**
 * @file
 * SHA-256, used by the secure-boot processor in the Host Interface to
 * verify firmware-bundle images before they run (Section 3.1's secure
 * boot; Section 5.5's firmware-bundle deployment).
 */

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mtia {

/** A 256-bit digest. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 (FIPS 180-4). */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);
    void update(const std::vector<std::uint8_t> &data)
    {
        update(data.data(), data.size());
    }
    void update(const std::string &s)
    {
        update(reinterpret_cast<const std::uint8_t *>(s.data()),
               s.size());
    }

    /** Finish and return the digest; the object must not be reused. */
    Sha256Digest finish();

    /** One-shot convenience. */
    static Sha256Digest hash(const std::vector<std::uint8_t> &data);
    static Sha256Digest hash(const std::string &s);

    /** Lower-case hex string of a digest. */
    static std::string hex(const Sha256Digest &d);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffered_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace mtia

#endif // MTIA_HOST_SHA256_H_
