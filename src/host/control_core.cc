#include "host/control_core.h"

namespace mtia {

WaitForGraph
ControlCore::buildHighLoadScenario() const
{
    WaitForGraph g;
    g.addAgent("control-core");
    g.addAgent("pcie-read-response");
    g.addAgent("pcie-earlier-txns");
    g.addAgent("noc-serialization");

    // Always present under high load: PCIe ordering rules queue the
    // read response behind earlier transactions, which are back-
    // pressured by the NoC's serialization point, which in turn waits
    // for the Control Core to complete its operation.
    g.addWait("pcie-read-response", "pcie-earlier-txns");
    g.addWait("pcie-earlier-txns", "noc-serialization");
    g.addWait("noc-serialization", "control-core");

    // The closing edge only exists when the Control Core must read
    // host memory: it blocks on the PCIe read response. The firmware
    // mitigation relocates that memory to device SRAM, removing this
    // edge and with it the cycle.
    if (cfg_.working_mem == ControlMemLocation::HostMemory)
        g.addWait("control-core", "pcie-read-response");

    return g;
}

} // namespace mtia
