#include "host/compression.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "core/numerics_stats.h"

namespace mtia {

namespace {

// ---------------------------------------------------------------- rANS

constexpr std::uint32_t kProbBits = 12;
constexpr std::uint32_t kProbScale = 1u << kProbBits;
constexpr std::uint32_t kRansL = 1u << 23; // renormalization bound
constexpr std::size_t kBlockSize = 64 * 1024;
constexpr unsigned kRansStreams = 4; // interleaved states in v2
// v2 streams start with this sentinel where v1 stored the
// uncompressed length; a v1 length of 0xFFFFFFFF would mean a 4 GiB
// input, far beyond what the codec is specified for.
constexpr std::uint32_t kFormatSentinel = 0xffffffffu;

/** Append a 32-bit little-endian value. */
void
put32(ByteBuffer &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
get32(const ByteBuffer &in, std::size_t &pos)
{
    MTIA_CHECK_LE(pos + 4, in.size()) << ": rANS truncated stream";
    const std::uint32_t v = static_cast<std::uint32_t>(in[pos]) |
        (static_cast<std::uint32_t>(in[pos + 1]) << 8) |
        (static_cast<std::uint32_t>(in[pos + 2]) << 16) |
        (static_cast<std::uint32_t>(in[pos + 3]) << 24);
    pos += 4;
    return v;
}

/** Normalize byte counts to sum to kProbScale, keeping every present
 * symbol's frequency >= 1. */
std::array<std::uint32_t, 256>
normalizeFreqs(const std::array<std::uint64_t, 256> &counts,
               std::uint64_t total)
{
    std::array<std::uint32_t, 256> freq{};
    std::uint32_t assigned = 0;
    int largest = 0;
    for (int s = 0; s < 256; ++s) {
        if (counts[s] == 0)
            continue;
        std::uint64_t f = counts[s] * kProbScale / total;
        if (f == 0)
            f = 1;
        freq[s] = static_cast<std::uint32_t>(f);
        assigned += freq[s];
        if (counts[s] > counts[largest])
            largest = s;
    }
    // Fix the rounding drift on the most frequent symbol.
    if (assigned != kProbScale) {
        const std::int64_t delta =
            static_cast<std::int64_t>(kProbScale) - assigned;
        const std::int64_t adjusted = freq[largest] + delta;
        MTIA_CHECK_GE(adjusted, 1)
            << ": rANS frequency normalization failed";
        freq[largest] = static_cast<std::uint32_t>(adjusted);
    }
    return freq;
}

/** Count, normalize, and write the shared block header (length +
 * 512-byte frequency table); returns the normalized frequencies. */
std::array<std::uint32_t, 256>
writeBlockHeader(const std::uint8_t *data, std::size_t n,
                 ByteBuffer &out)
{
    std::array<std::uint64_t, 256> counts{};
    for (std::size_t i = 0; i < n; ++i)
        ++counts[data[i]];
    const auto freq = normalizeFreqs(counts, n);
    put32(out, static_cast<std::uint32_t>(n));
    for (int s = 0; s < 256; ++s) {
        out.push_back(static_cast<std::uint8_t>(freq[s]));
        out.push_back(static_cast<std::uint8_t>(freq[s] >> 8));
    }
    return freq;
}

/** Parse the shared block header written by writeBlockHeader. */
std::uint32_t
readBlockHeader(const ByteBuffer &in, std::size_t &pos,
                std::array<std::uint32_t, 256> &freq,
                std::array<std::uint32_t, 257> &cum,
                std::vector<std::uint8_t> &slot2sym)
{
    const std::uint32_t n = get32(in, pos);
    MTIA_CHECK_LE(pos + 512, in.size())
        << ": rANS truncated frequency table";
    for (int s = 0; s < 256; ++s) {
        freq[s] = static_cast<std::uint32_t>(in[pos]) |
            (static_cast<std::uint32_t>(in[pos + 1]) << 8);
        pos += 2;
    }
    cum[0] = 0;
    for (int s = 0; s < 256; ++s)
        cum[s + 1] = cum[s] + freq[s];
    slot2sym.assign(kProbScale, 0);
    for (int s = 0; s < 256; ++s)
        for (std::uint32_t i = cum[s]; i < cum[s + 1]; ++i)
            slot2sym[i] = static_cast<std::uint8_t>(s);
    return n;
}

void
compressBlockV1(const std::uint8_t *data, std::size_t n, ByteBuffer &out)
{
    const auto freq = writeBlockHeader(data, n, out);
    std::array<std::uint32_t, 257> cum{};
    for (int s = 0; s < 256; ++s)
        cum[s + 1] = cum[s] + freq[s];

    // Encode back-to-front; bytes come out reversed.
    ByteBuffer rev;
    rev.reserve(n);
    std::uint32_t x = kRansL;
    for (std::size_t i = n; i-- > 0;) {
        const std::uint8_t s = data[i];
        const std::uint32_t f = freq[s];
        const std::uint32_t x_max = ((kRansL >> kProbBits) << 8) * f;
        while (x >= x_max) {
            rev.push_back(static_cast<std::uint8_t>(x));
            x >>= 8;
        }
        x = ((x / f) << kProbBits) + (x % f) + cum[s];
    }
    for (int b = 0; b < 4; ++b) {
        rev.push_back(static_cast<std::uint8_t>(x));
        x >>= 8;
    }

    put32(out, static_cast<std::uint32_t>(rev.size()));
    out.insert(out.end(), rev.rbegin(), rev.rend());
}

void
decompressBlockV1(const ByteBuffer &in, std::size_t &pos, ByteBuffer &out)
{
    std::array<std::uint32_t, 256> freq{};
    std::array<std::uint32_t, 257> cum{};
    std::vector<std::uint8_t> slot2sym;
    const std::uint32_t n = readBlockHeader(in, pos, freq, cum, slot2sym);

    const std::uint32_t payload = get32(in, pos);
    const std::size_t end = pos + payload;
    MTIA_CHECK_LE(end, in.size()) << ": rANS truncated payload";

    auto next_byte = [&]() -> std::uint32_t {
        MTIA_CHECK_LT(pos, end) << ": rANS payload underrun";
        return in[pos++];
    };

    std::uint32_t x = 0;
    for (int b = 0; b < 4; ++b)
        x = (x << 8) | next_byte();

    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t slot = x & (kProbScale - 1);
        const std::uint8_t s = slot2sym[slot];
        out.push_back(s);
        x = freq[s] * (x >> kProbBits) + slot - cum[s];
        while (x < kRansL && pos < end)
            x = (x << 8) | next_byte();
    }
    pos = end;
}

/**
 * v2 block: four interleaved rANS states over one shared byte stream
 * (symbol i belongs to state i & 3). Encoding walks the block
 * back-to-front, renormalizing state s before absorbing each symbol;
 * the four final states flush high state first so that the reversed
 * stream starts with state 0. Because every state's renorm bytes
 * enter the shared stream in LIFO order and decode order is the exact
 * reverse of encode order, the decoder's forward walk consumes each
 * byte for the same (symbol, state) step that produced it — the
 * standard interleaved-rANS construction.
 */
void
compressBlockV2(const std::uint8_t *data, std::size_t n, ByteBuffer &out)
{
    const auto freq = writeBlockHeader(data, n, out);
    std::array<std::uint32_t, 257> cum{};
    for (int s = 0; s < 256; ++s)
        cum[s + 1] = cum[s] + freq[s];

    ByteBuffer rev;
    rev.reserve(n + 4 * kRansStreams);
    std::array<std::uint32_t, kRansStreams> x;
    x.fill(kRansL);
    for (std::size_t i = n; i-- > 0;) {
        const unsigned lane = i & (kRansStreams - 1);
        const std::uint8_t s = data[i];
        const std::uint32_t f = freq[s];
        const std::uint32_t x_max = ((kRansL >> kProbBits) << 8) * f;
        while (x[lane] >= x_max) {
            rev.push_back(static_cast<std::uint8_t>(x[lane]));
            x[lane] >>= 8;
        }
        x[lane] = ((x[lane] / f) << kProbBits) + (x[lane] % f) + cum[s];
    }
    for (unsigned lane = kRansStreams; lane-- > 0;) {
        for (int b = 0; b < 4; ++b) {
            rev.push_back(static_cast<std::uint8_t>(x[lane]));
            x[lane] >>= 8;
        }
    }

    put32(out, static_cast<std::uint32_t>(rev.size()));
    out.insert(out.end(), rev.rbegin(), rev.rend());
}

void
decompressBlockV2(const ByteBuffer &in, std::size_t &pos, ByteBuffer &out)
{
    std::array<std::uint32_t, 256> freq{};
    std::array<std::uint32_t, 257> cum{};
    std::vector<std::uint8_t> slot2sym;
    const std::uint32_t n = readBlockHeader(in, pos, freq, cum, slot2sym);

    const std::uint32_t payload = get32(in, pos);
    const std::size_t end = pos + payload;
    MTIA_CHECK_LE(end, in.size()) << ": rANS truncated payload";

    auto next_byte = [&]() -> std::uint32_t {
        MTIA_CHECK_LT(pos, end) << ": rANS payload underrun";
        return in[pos++];
    };

    std::array<std::uint32_t, kRansStreams> x{};
    for (unsigned lane = 0; lane < kRansStreams; ++lane)
        for (int b = 0; b < 4; ++b)
            x[lane] = (x[lane] << 8) | next_byte();

    const std::size_t prev = out.size();
    out.resize(prev + n);
    std::uint8_t *dst = out.data() + prev;
    for (std::uint32_t i = 0; i < n; ++i) {
        const unsigned lane = i & (kRansStreams - 1);
        const std::uint32_t slot = x[lane] & (kProbScale - 1);
        const std::uint8_t s = slot2sym[slot];
        dst[i] = s;
        x[lane] = freq[s] * (x[lane] >> kProbBits) + slot - cum[s];
        while (x[lane] < kRansL && pos < end)
            x[lane] = (x[lane] << 8) | next_byte();
    }
    pos = end;
}

// ----------------------------------------------------------------- LZ

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kChainMask = 65535; // position ring == window
constexpr int kMaxChainWalk = 32;         // candidates tried per pos

std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
writeVarLen(ByteBuffer &out, std::size_t v)
{
    while (v >= 255) {
        out.push_back(255);
        v -= 255;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::size_t
readVarLen(const ByteBuffer &in, std::size_t &pos, std::size_t base)
{
    if (base < 15)
        return base;
    std::size_t v = base;
    while (true) {
        MTIA_CHECK_LT(pos, in.size()) << ": LZ truncated length";
        const std::uint8_t b = in[pos++];
        v += b;
        if (b != 255)
            break;
    }
    return v;
}

void
emitSequence(ByteBuffer &out, const std::uint8_t *lit, std::size_t nlit,
             std::size_t match_len, std::size_t offset)
{
    const std::size_t lit_nib = std::min<std::size_t>(nlit, 15);
    const std::size_t mat_nib =
        match_len >= kMinMatch
            ? std::min<std::size_t>(match_len - kMinMatch, 15)
            : 0;
    out.push_back(static_cast<std::uint8_t>((lit_nib << 4) | mat_nib));
    if (lit_nib == 15)
        writeVarLen(out, nlit - 15);
    out.insert(out.end(), lit, lit + nlit);
    if (match_len >= kMinMatch) {
        out.push_back(static_cast<std::uint8_t>(offset));
        out.push_back(static_cast<std::uint8_t>(offset >> 8));
        if (mat_nib == 15)
            writeVarLen(out, match_len - kMinMatch - 15);
    }
}

} // namespace

ByteBuffer
RansCodec::compress(const ByteBuffer &input, RansFormat format)
{
    numerics::noteBytesCompressed(input.size());
    ByteBuffer out;
    if (format == RansFormat::V2Interleaved) {
        put32(out, kFormatSentinel);
        out.push_back(static_cast<std::uint8_t>(RansFormat::V2Interleaved));
    }
    put32(out, static_cast<std::uint32_t>(input.size()));
    for (std::size_t off = 0; off < input.size(); off += kBlockSize) {
        const std::size_t n = std::min(kBlockSize, input.size() - off);
        if (format == RansFormat::V2Interleaved)
            compressBlockV2(input.data() + off, n, out);
        else
            compressBlockV1(input.data() + off, n, out);
    }
    return out;
}

ByteBuffer
RansCodec::decompress(const ByteBuffer &input)
{
    std::size_t pos = 0;
    std::uint32_t total = get32(input, pos);
    bool interleaved = false;
    if (total == kFormatSentinel) {
        MTIA_CHECK_LT(pos, input.size()) << ": rANS truncated version";
        const unsigned version = input[pos++];
        MTIA_CHECK_EQ(version,
                      static_cast<unsigned>(RansFormat::V2Interleaved))
            << ": rANS unknown container version";
        interleaved = true;
        total = get32(input, pos);
    }
    ByteBuffer out;
    out.reserve(total);
    while (out.size() < total) {
        if (interleaved)
            decompressBlockV2(input, pos, out);
        else
            decompressBlockV1(input, pos, out);
    }
    return out;
}

double
RansCodec::ratio(const ByteBuffer &input)
{
    if (input.empty())
        return 1.0;
    return static_cast<double>(compress(input).size()) /
        static_cast<double>(input.size());
}

double
RansCodec::entropyBitsPerByte(const ByteBuffer &input)
{
    if (input.empty())
        return 0.0;
    std::array<std::uint64_t, 256> counts{};
    for (std::uint8_t b : input)
        ++counts[b];
    double h = 0.0;
    const double n = static_cast<double>(input.size());
    for (std::uint64_t c : counts) {
        if (c == 0)
            continue;
        const double p = static_cast<double>(c) / n;
        h -= p * std::log2(p);
    }
    return h;
}

ByteBuffer
LzCodec::compress(const ByteBuffer &input)
{
    numerics::noteBytesCompressed(input.size());
    ByteBuffer out;
    put32(out, static_cast<std::uint32_t>(input.size()));
    const std::size_t n = input.size();
    if (n == 0)
        return out;

    // Hash-chain matcher: head[h] is the most recent position with
    // hash h; chain[p & kChainMask] links position p to the previous
    // position with the same hash. A slot of chain[] can only be
    // overwritten by a position >= 64 KiB newer, which the window
    // check rejects before the stale link is followed.
    std::vector<std::int64_t> head(1u << kHashBits, -1);
    std::vector<std::int64_t> chain(kChainMask + 1, -1);
    const std::uint8_t *data = input.data();
    const std::size_t last_insert = n - kMinMatch; // last hashable pos

    auto insert = [&](std::size_t p) {
        const std::uint32_t h = hash4(data + p);
        chain[p & kChainMask] = head[h];
        head[h] = static_cast<std::int64_t>(p);
    };

    std::size_t anchor = 0; // start of the pending literal run
    std::size_t i = 0;
    while (i + kMinMatch <= n) {
        std::size_t best_len = 0;
        std::size_t best_off = 0;
        std::int64_t cand = head[hash4(data + i)];
        int walk = kMaxChainWalk;
        while (cand >= 0 &&
               i - static_cast<std::size_t>(cand) <= kMaxOffset &&
               walk-- > 0) {
            if (i + best_len >= n)
                break; // already matched to the end of input
            const auto c = static_cast<std::size_t>(cand);
            // Cheap reject: a longer match must extend past best_len.
            if (best_len == 0 || data[c + best_len] == data[i + best_len]) {
                if (std::memcmp(data + c, data + i, kMinMatch) == 0) {
                    std::size_t len = kMinMatch;
                    while (i + len < n && data[c + len] == data[i + len])
                        ++len;
                    if (len > best_len) {
                        best_len = len;
                        best_off = i - c;
                    }
                }
            }
            cand = chain[c & kChainMask];
        }
        if (best_len >= kMinMatch) {
            emitSequence(out, data + anchor, i - anchor, best_len,
                         best_off);
            const std::size_t stop =
                std::min(i + best_len, last_insert + 1);
            for (std::size_t j = i; j < stop; ++j)
                insert(j);
            i += best_len;
            anchor = i;
        } else {
            insert(i);
            ++i;
        }
    }
    // Trailing literals with no match.
    emitSequence(out, data + anchor, n - anchor, 0, 0);
    return out;
}

ByteBuffer
LzCodec::compressGreedy(const ByteBuffer &input)
{
    numerics::noteBytesCompressed(input.size());
    ByteBuffer out;
    put32(out, static_cast<std::uint32_t>(input.size()));
    const std::size_t n = input.size();
    if (n == 0)
        return out;

    std::vector<std::int64_t> table(1u << kHashBits, -1);
    const std::uint8_t *data = input.data();
    std::size_t anchor = 0; // start of the pending literal run
    std::size_t i = 0;
    while (i + kMinMatch <= n) {
        const std::uint32_t h = hash4(data + i);
        const std::int64_t cand = table[h];
        table[h] = static_cast<std::int64_t>(i);
        if (cand >= 0 &&
            i - static_cast<std::size_t>(cand) <= kMaxOffset &&
            std::memcmp(data + cand, data + i, kMinMatch) == 0) {
            // Extend the match.
            std::size_t len = kMinMatch;
            while (i + len < n &&
                   data[cand + len] == data[i + len]) {
                ++len;
            }
            emitSequence(out, data + anchor, i - anchor, len,
                         i - static_cast<std::size_t>(cand));
            i += len;
            anchor = i;
        } else {
            ++i;
        }
    }
    // Trailing literals with no match.
    emitSequence(out, data + anchor, n - anchor, 0, 0);
    return out;
}

ByteBuffer
LzCodec::decompress(const ByteBuffer &input)
{
    std::size_t pos = 0;
    const std::uint32_t total = get32(input, pos);
    ByteBuffer out;
    out.reserve(total);
    while (out.size() < total) {
        MTIA_CHECK_LT(pos, input.size()) << ": LZ truncated stream";
        const std::uint8_t token = input[pos++];
        std::size_t nlit = readVarLen(input, pos, token >> 4);
        MTIA_CHECK_LE(pos + nlit, input.size())
            << ": LZ truncated literals";
        out.insert(out.end(), input.begin() + pos,
                   input.begin() + pos + nlit);
        pos += nlit;
        if (out.size() >= total)
            break;
        MTIA_CHECK_LE(pos + 2, input.size()) << ": LZ truncated offset";
        const std::size_t offset = input[pos] |
            (static_cast<std::size_t>(input[pos + 1]) << 8);
        pos += 2;
        std::size_t match_len =
            readVarLen(input, pos, token & 0x0f) + kMinMatch;
        MTIA_CHECK_GT(offset, 0u) << ": LZ zero match offset";
        MTIA_CHECK_LE(offset, out.size())
            << ": LZ match offset outside the window";
        const std::size_t start = out.size();
        out.resize(start + match_len);
        std::uint8_t *dst = out.data() + start;
        const std::uint8_t *src = dst - offset;
        if (offset >= match_len) {
            // Non-overlapping: one block copy.
            std::memcpy(dst, src, match_len);
        } else {
            // Overlapping matches replicate the window byte-by-byte.
            for (std::size_t j = 0; j < match_len; ++j)
                dst[j] = src[j];
        }
    }
    return out;
}

double
LzCodec::ratio(const ByteBuffer &input)
{
    if (input.empty())
        return 1.0;
    return static_cast<double>(compress(input).size()) /
        static_cast<double>(input.size());
}

} // namespace mtia
