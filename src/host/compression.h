#ifndef MTIA_HOST_COMPRESSION_H_
#define MTIA_HOST_COMPRESSION_H_

/**
 * @file
 * Real compression codecs backing MTIA 2i's two engines:
 *
 *  - rANS (range asymmetric numeral system), the "ANS" weight
 *    compressor of Section 3.3: order-0 entropy coding that reaches
 *    ~50% on INT8 weight distributions but does little for FP16
 *    (random mantissa bytes carry ~8 bits of entropy).
 *  - An LZ byte codec standing in for the GZIP engine on the PCIe
 *    path (up to 25 GB/s on the device side), which exploits the
 *    repetitive structure of batched input feature data.
 *
 * Both are real encoders/decoders with exact round-trip tests; the
 * benches measure genuine ratios on synthetic weight/input data.
 *
 * The rANS container is format-versioned: streams written by the seed
 * codec (v1, single encoder state) start with their uncompressed
 * length, while v2 streams (four interleaved encoder states, the
 * default — the per-symbol decode dependency chain is the bottleneck,
 * and four states give the CPU four independent chains) start with a
 * 0xFFFFFFFF sentinel + version byte. decompress() sniffs the header,
 * so old golden data keeps decoding bit-exactly.
 */

#include <cstdint>
#include <vector>

namespace mtia {

/** Byte buffer alias used by the codecs. */
using ByteBuffer = std::vector<std::uint8_t>;

/** rANS container format selector (see file comment). */
enum class RansFormat : std::uint8_t {
    V1Scalar = 1,      ///< seed format: one encoder state per block
    V2Interleaved = 2, ///< four interleaved states per block (default)
};

/**
 * Order-0 rANS codec with per-block frequency tables (64 KiB blocks,
 * 12-bit probability resolution).
 */
class RansCodec
{
  public:
    /** Compress @p input; the result always round-trips. */
    static ByteBuffer compress(const ByteBuffer &input,
                               RansFormat format =
                                   RansFormat::V2Interleaved);

    /** Decompress a buffer produced by compress() (any format). */
    static ByteBuffer decompress(const ByteBuffer &input);

    /** compressed/original size; > 1 means expansion. */
    static double ratio(const ByteBuffer &input);

    /** Shannon entropy of the byte distribution, in bits/byte. */
    static double entropyBitsPerByte(const ByteBuffer &input);
};

/**
 * LZ4-flavoured LZ77 codec matching against a 64 KiB window with
 * token/extension encoding. Fast-path analog of the GZIP engine.
 * compress() finds matches with a hash-chain matcher (bounded
 * candidate walk per position); compressGreedy() is the seed
 * single-entry-hash greedy matcher kept as the reference. Both emit
 * the same stream format and decompress() reads either.
 */
class LzCodec
{
  public:
    static ByteBuffer compress(const ByteBuffer &input);
    static ByteBuffer compressGreedy(const ByteBuffer &input);
    static ByteBuffer decompress(const ByteBuffer &input);
    static double ratio(const ByteBuffer &input);
};

} // namespace mtia

#endif // MTIA_HOST_COMPRESSION_H_
