#ifndef MTIA_HOST_PCIE_H_
#define MTIA_HOST_PCIE_H_

/**
 * @file
 * Host Interface: PCIe link and DMA model. MTIA 2i connects over
 * 8 lanes of Gen5 (32 GB/s per direction) versus MTIA 1's Gen4
 * (16 GB/s), and adds a host-to-accelerator decompression engine that
 * raises effective PCIe bandwidth for input-heavy retrieval models.
 */

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace mtia::telemetry {
class MetricRegistry;
} // namespace mtia::telemetry

namespace mtia {

/** PCIe link configuration. */
struct PcieConfig
{
    unsigned generation = 5;  ///< 4 or 5
    unsigned lanes = 8;
    Tick base_latency = fromMicros(1.0);

    /** Raw per-direction bandwidth for the configured gen/lanes. */
    BytesPerSec bandwidth() const;
};

/** Cumulative PCIe transfer totals. */
struct PcieStats
{
    std::uint64_t transfers = 0;
    Bytes logical_bytes = 0; ///< bytes delivered to the consumer
    Bytes wire_bytes = 0;    ///< bytes on the link (post-compression)
    Tick busy_ticks = 0;
};

/** One direction of a PCIe link with optional inline decompression. */
class PcieLink
{
  public:
    explicit PcieLink(PcieConfig cfg) : cfg_(cfg) {}

    const PcieConfig &config() const { return cfg_; }
    const PcieStats &stats() const { return stats_; }

    /** Time to move @p bytes, protocol overhead included. */
    Tick transferTime(Bytes bytes) const;

    /**
     * Time to deliver @p logical_bytes of input data when the host
     * compresses it to @p wire_bytes and the device-side engine
     * (rated at @p decompress_rate, 25 GB/s on MTIA 2i) expands it.
     * The wire and the decompressor pipeline; the slower stage wins.
     */
    Tick compressedTransferTime(Bytes logical_bytes, Bytes wire_bytes,
                                BytesPerSec decompress_rate) const;

    /**
     * Snapshot the cumulative transfer totals into @p registry as
     * pcie.* gauges labeled {device=@p device} (gauges overwrite, so
     * repeated exports never double-count).
     */
    void exportMetrics(telemetry::MetricRegistry &registry,
                       const std::string &device) const;

  private:
    PcieConfig cfg_;
    // Transfer-time queries are logically const; the traffic totals
    // they feed are observability state.
    mutable PcieStats stats_;
};

} // namespace mtia

#endif // MTIA_HOST_PCIE_H_
