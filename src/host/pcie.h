#ifndef MTIA_HOST_PCIE_H_
#define MTIA_HOST_PCIE_H_

/**
 * @file
 * Host Interface: PCIe link and DMA model. MTIA 2i connects over
 * 8 lanes of Gen5 (32 GB/s per direction) versus MTIA 1's Gen4
 * (16 GB/s), and adds a host-to-accelerator decompression engine that
 * raises effective PCIe bandwidth for input-heavy retrieval models.
 */

#include <cstdint>

#include "sim/types.h"

namespace mtia {

/** PCIe link configuration. */
struct PcieConfig
{
    unsigned generation = 5;  ///< 4 or 5
    unsigned lanes = 8;
    Tick base_latency = fromMicros(1.0);

    /** Raw per-direction bandwidth for the configured gen/lanes. */
    BytesPerSec bandwidth() const;
};

/** One direction of a PCIe link with optional inline decompression. */
class PcieLink
{
  public:
    explicit PcieLink(PcieConfig cfg) : cfg_(cfg) {}

    const PcieConfig &config() const { return cfg_; }

    /** Time to move @p bytes, protocol overhead included. */
    Tick transferTime(Bytes bytes) const;

    /**
     * Time to deliver @p logical_bytes of input data when the host
     * compresses it to @p wire_bytes and the device-side engine
     * (rated at @p decompress_rate, 25 GB/s on MTIA 2i) expands it.
     * The wire and the decompressor pipeline; the slower stage wins.
     */
    Tick compressedTransferTime(Bytes logical_bytes, Bytes wire_bytes,
                                BytesPerSec decompress_rate) const;

  private:
    PcieConfig cfg_;
};

} // namespace mtia

#endif // MTIA_HOST_PCIE_H_
