#ifndef MTIA_TELEMETRY_METRICS_H_
#define MTIA_TELEMETRY_METRICS_H_

/**
 * @file
 * Labeled metrics for fleet-style observability: counters, gauges, and
 * a bounded-memory log-bucketed histogram, collected in a
 * MetricRegistry that exports deterministic JSON snapshots.
 *
 * This complements the older sim/stats.h package: StatsRegistry keeps
 * every sample (exact percentiles, O(n) memory — right for small fleet
 * studies), while MetricRegistry is what long serving runs and the
 * bench reports use: constant memory per series, labels for
 * per-device / per-request-class breakdowns, and machine-readable
 * output that can be diffed run-over-run.
 *
 * All values fed to these metrics must be derived from simulated state
 * (DES ticks, byte counts); nothing here may read the wall clock, so
 * identical seeds produce byte-identical snapshots.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mtia::telemetry {

/** Key/value pairs qualifying one metric series, e.g. {{"shard","0"}}. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonic counter (exported as an exact integer). */
class MetricCounter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-value gauge. */
class MetricGauge
{
  public:
    void set(double v) { value_ = v; }
    void add(double d) { value_ += d; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Bounded-memory histogram with logarithmically spaced buckets.
 *
 * Values are bucketed by binary exponent with @c sub_buckets linear
 * subdivisions per octave, so quantile estimates carry a bounded
 * relative error of at most 2^(1/sub_buckets) - 1 (~2.2% at the
 * default 32) while the footprint stays a fixed few tens of KiB no
 * matter how many samples are added — unlike sim/stats.h Histogram,
 * which retains every sample. Exact count/sum/min/max are tracked on
 * the side, and percentile() clamps into [min, max], so p0 and p100
 * are exact.
 */
class LogHistogram
{
  public:
    struct Config
    {
        /** Values below this land in the underflow bucket. */
        double min_value = 1e-6;
        /** Values at or above this land in the overflow bucket. */
        double max_value = 1e15;
        /** Linear subdivisions per power of two. */
        unsigned sub_buckets = 32;
    };

    LogHistogram() : LogHistogram(Config{}) {}
    /** @pre 0 < cfg.min_value < cfg.max_value, cfg.sub_buckets > 0 */
    explicit LogHistogram(const Config &cfg);

    /** Record one sample. @pre v is finite and >= 0. */
    void add(double v);

    /**
     * Fold @p other into this histogram: bucket counts, count, sum,
     * min and max all combine as if every sample of @p other had been
     * add()ed here. @pre identical Config. Deterministic when callers
     * merge partial histograms in a fixed order — how the partitioned
     * cluster sim folds per-replica latency histograms after a run.
     */
    void merge(const LogHistogram &other);

    void reset();

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    double sum() const { return sum_; }
    double mean() const;
    /** @pre !empty() */
    double min() const;
    /** @pre !empty() */
    double max() const;

    /**
     * Nearest-rank percentile estimate; @p p in [0, 100]. Exact at the
     * extremes (p<=0 returns min, p>=100 returns max); in between the
     * error is bounded by one bucket's relative width.
     * @pre !empty(), p finite and in [0, 100].
     */
    double percentile(double p) const;

    const Config &config() const { return cfg_; }

  private:
    std::size_t bucketIndex(double v) const;
    double bucketLowerBound(std::size_t idx) const;
    double bucketUpperBound(std::size_t idx) const;

    Config cfg_;
    int min_exp_ = 0; ///< frexp exponent of cfg_.min_value
    int max_exp_ = 0; ///< frexp exponent of cfg_.max_value
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** The kind of a registered metric family. */
enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/** Name of a metric kind, for messages and the JSON export. */
const char *metricKindName(MetricKind kind);

/**
 * Registry of labeled metric families.
 *
 * A family is one metric name with a fixed kind; each distinct label
 * set under it is an independent series. Registration is
 * find-or-create, so components can call counter()/gauge()/histogram()
 * on the hot path and keep the returned reference (references stay
 * valid for the registry's lifetime).
 *
 * Contract failures (MTIA_CHECK):
 *  - invalid metric name (must match [A-Za-z_][A-Za-z0-9_.]*)
 *  - re-registering a name under a different kind
 *  - empty or duplicate label keys
 */
class MetricRegistry
{
  public:
    MetricCounter &counter(const std::string &name,
                           const Labels &labels = {});
    MetricGauge &gauge(const std::string &name, const Labels &labels = {});
    /** @p cfg applies when the series is first created. */
    LogHistogram &histogram(const std::string &name,
                            const Labels &labels = {},
                            const LogHistogram::Config &cfg = {});

    /** Number of registered series across all families. */
    std::size_t seriesCount() const;

    /**
     * Deterministic JSON snapshot: families sorted by name, series by
     * canonical label order. Byte-identical for identical simulated
     * state.
     */
    void writeJson(std::ostream &os) const;
    std::string json() const;

    /** Reset every series to its initial value (series stay registered). */
    void resetAll();

  private:
    struct Series;
    struct Family;

    Series &series(MetricKind kind, const std::string &name,
                   const Labels &labels,
                   const LogHistogram::Config *hist_cfg);

    std::map<std::string, Family> families_;
};

struct MetricRegistry::Series
{
    Labels labels; // canonical (sorted by key)
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
};

struct MetricRegistry::Family
{
    MetricKind kind = MetricKind::Counter;
    std::map<std::string, Series> series; // canonical label string -> series
};

} // namespace mtia::telemetry

#endif // MTIA_TELEMETRY_METRICS_H_
