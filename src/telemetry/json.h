#ifndef MTIA_TELEMETRY_JSON_H_
#define MTIA_TELEMETRY_JSON_H_

/**
 * @file
 * Tiny deterministic JSON-writing helpers shared by the trace and
 * metric exporters. Doubles are printed with std::to_chars (shortest
 * round-trip form), which is locale-independent and platform-stable,
 * so identical simulated values always serialize to identical bytes.
 */

#include <charconv>
#include <cmath>
#include <ostream>
#include <string>
#include <string_view>

namespace mtia::telemetry {

/** Append @p s to @p os as a quoted, escaped JSON string. */
inline void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/**
 * Append @p v as a JSON number in shortest round-trip form. Non-finite
 * values (not representable in JSON) serialize as null.
 */
inline void
writeJsonDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
}

} // namespace mtia::telemetry

#endif // MTIA_TELEMETRY_JSON_H_
