#include "telemetry/telemetry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace mtia::telemetry {

namespace {

[[noreturn]] void
abortingTelemetryHandler(const std::string &what)
{
    std::fprintf(stderr, "telemetry export failed: %s\n", what.c_str());
    std::abort();
}

std::atomic<TelemetryErrorHandler> g_handler{&abortingTelemetryHandler};

} // namespace

TelemetryErrorHandler
setTelemetryErrorHandler(TelemetryErrorHandler handler)
{
    if (handler == nullptr)
        handler = &abortingTelemetryHandler;
    return g_handler.exchange(handler);
}

TelemetryErrorHandler
getTelemetryErrorHandler()
{
    return g_handler.load();
}

void
exportError(const std::string &what)
{
    g_handler.load()(what);
    // A conforming handler throws or terminates; refuse to continue
    // past a failed export regardless.
    std::fprintf(stderr,
                 "telemetry error handler returned; aborting (%s)\n",
                 what.c_str());
    std::abort();
}

namespace detail {

void
throwingTelemetryHandler(const std::string &what)
{
    throw TelemetryError(what);
}

} // namespace detail

void
Telemetry::exportFiles(const std::string &stem) const
{
    trace.writeFile(stem + ".trace.json");

    const std::string metrics_path = stem + ".metrics.json";
    std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
    if (!out)
        exportError("cannot open metrics file \"" + metrics_path +
                    "\" for writing");
    metrics.writeJson(out);
    out.flush();
    if (!out)
        exportError("failed writing metrics file \"" + metrics_path +
                    "\"");
}

} // namespace mtia::telemetry
