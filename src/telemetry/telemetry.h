#ifndef MTIA_TELEMETRY_TELEMETRY_H_
#define MTIA_TELEMETRY_TELEMETRY_H_

/**
 * @file
 * The observability bundle threaded through the stack: one
 * TraceRecorder (sim-clock Chrome trace events) plus one
 * MetricRegistry (labeled counters / gauges / bounded histograms).
 * Components accept a nullable Telemetry* and record only when one is
 * attached, so the default path stays free of telemetry work.
 *
 * Export failures (unwritable trace/metric files) go through a
 * swappable error handler, mirroring core/check.h: the default handler
 * reports and aborts; tests install ScopedTelemetryThrow to assert the
 * failure path without killing the binary.
 */

#include <stdexcept>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mtia::telemetry {

/** Thrown by the handler ScopedTelemetryThrow installs. */
class TelemetryError : public std::runtime_error
{
  public:
    explicit TelemetryError(const std::string &what)
        : std::runtime_error(what) {}
};

/**
 * Called on a telemetry export failure. Must not return normally: it
 * either throws (test handlers) or terminates the process.
 */
using TelemetryErrorHandler = void (*)(const std::string &what);

/** Install @p handler; returns the previously installed handler. */
TelemetryErrorHandler setTelemetryErrorHandler(TelemetryErrorHandler handler);

/** The currently installed handler. */
TelemetryErrorHandler getTelemetryErrorHandler();

/**
 * Report an export failure through the installed handler. Never
 * returns: the handler throws or terminates; if it returns anyway the
 * process aborts.
 */
[[noreturn]] void exportError(const std::string &what);

/** RAII: install an error handler for one scope. */
class ScopedTelemetryErrorHandler
{
  public:
    explicit ScopedTelemetryErrorHandler(TelemetryErrorHandler handler)
        : prev_(setTelemetryErrorHandler(handler)) {}
    ~ScopedTelemetryErrorHandler() { setTelemetryErrorHandler(prev_); }

    ScopedTelemetryErrorHandler(const ScopedTelemetryErrorHandler &) = delete;
    ScopedTelemetryErrorHandler &
    operator=(const ScopedTelemetryErrorHandler &) = delete;

  private:
    TelemetryErrorHandler prev_;
};

namespace detail {

/** Handler that throws TelemetryError (what ScopedTelemetryThrow uses). */
[[noreturn]] void throwingTelemetryHandler(const std::string &what);

} // namespace detail

/**
 * RAII for tests: while alive, an export failure throws TelemetryError
 * instead of aborting, so EXPECT_THROW can assert it.
 */
class ScopedTelemetryThrow : public ScopedTelemetryErrorHandler
{
  public:
    ScopedTelemetryThrow()
        : ScopedTelemetryErrorHandler(&detail::throwingTelemetryHandler) {}
};

/** The per-run observability context. */
class Telemetry
{
  public:
    TraceRecorder trace;
    MetricRegistry metrics;

    /** Enable/disable trace recording (metrics are always cheap). */
    void setTracing(bool on) { trace.setEnabled(on); }

    /**
     * Write trace and metric snapshots as <stem>.trace.json and
     * <stem>.metrics.json. Failures go through the error handler.
     */
    void exportFiles(const std::string &stem) const;
};

} // namespace mtia::telemetry

#endif // MTIA_TELEMETRY_TELEMETRY_H_
