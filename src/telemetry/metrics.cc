#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/check.h"
#include "telemetry/json.h"

namespace mtia::telemetry {

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_';
    };
    if (!head(name[0]))
        return false;
    for (char c : name)
        if (!head(c) && !(c >= '0' && c <= '9') && c != '.')
            return false;
    return true;
}

/** Sorted-by-key copy of @p labels; rejects empty/duplicate keys. */
Labels
canonicalLabels(const std::string &name, const Labels &labels)
{
    Labels out = labels;
    std::sort(out.begin(), out.end());
    for (std::size_t i = 0; i < out.size(); ++i) {
        MTIA_CHECK(!out[i].first.empty())
            << ": metric \"" << name << "\" has an empty label key";
        if (i > 0)
            MTIA_CHECK(out[i].first != out[i - 1].first)
                << ": metric \"" << name << "\" repeats label key \""
                << out[i].first << "\"";
    }
    return out;
}

std::string
labelKey(const Labels &canonical)
{
    std::string out;
    for (const auto &[k, v] : canonical) {
        if (!out.empty())
            out += ',';
        out += k;
        out += '=';
        out += v;
    }
    return out;
}

} // namespace

// ------------------------------------------------------- LogHistogram

LogHistogram::LogHistogram(const Config &cfg) : cfg_(cfg)
{
    MTIA_CHECK_GT(cfg_.min_value, 0.0) << ": LogHistogram min_value";
    MTIA_CHECK_LT(cfg_.min_value, cfg_.max_value)
        << ": LogHistogram bucket range is empty";
    MTIA_CHECK_GT(cfg_.sub_buckets, 0u) << ": LogHistogram sub_buckets";
    (void)std::frexp(cfg_.min_value, &min_exp_);
    (void)std::frexp(cfg_.max_value, &max_exp_);
    const std::size_t octaves =
        static_cast<std::size_t>(max_exp_ - min_exp_ + 1);
    // Index 0 is the underflow bucket (v < min_value, including 0);
    // the last index is the overflow bucket (v >= max_value).
    buckets_.assign(octaves * cfg_.sub_buckets + 2, 0);
}

std::size_t
LogHistogram::bucketIndex(double v) const
{
    if (v < cfg_.min_value)
        return 0;
    if (v >= cfg_.max_value)
        return buckets_.size() - 1;
    int exp = 0;
    const double m = std::frexp(v, &exp); // v = m * 2^exp, m in [0.5, 1)
    auto sub = static_cast<std::size_t>(
        (m - 0.5) * 2.0 * static_cast<double>(cfg_.sub_buckets));
    sub = std::min<std::size_t>(sub, cfg_.sub_buckets - 1);
    const std::size_t idx = 1 +
        static_cast<std::size_t>(exp - min_exp_) * cfg_.sub_buckets + sub;
    return std::min(idx, buckets_.size() - 2);
}

double
LogHistogram::bucketLowerBound(std::size_t idx) const
{
    if (idx == 0)
        return 0.0;
    if (idx >= buckets_.size() - 1)
        return cfg_.max_value;
    const std::size_t k = idx - 1;
    const std::size_t octave = k / cfg_.sub_buckets;
    const std::size_t sub = k % cfg_.sub_buckets;
    // Bucket holds mantissas [0.5 + sub/2S, 0.5 + (sub+1)/2S) at this
    // exponent, i.e. values from 2^(exp-1) * (1 + sub/S).
    return std::ldexp(1.0 + static_cast<double>(sub) /
                                static_cast<double>(cfg_.sub_buckets),
                      min_exp_ + static_cast<int>(octave) - 1);
}

double
LogHistogram::bucketUpperBound(std::size_t idx) const
{
    if (idx == 0)
        return cfg_.min_value;
    if (idx >= buckets_.size() - 1)
        return cfg_.max_value;
    return bucketLowerBound(idx + 1);
}

void
LogHistogram::add(double v)
{
    MTIA_CHECK(std::isfinite(v)) << ": LogHistogram::add non-finite";
    MTIA_CHECK_GE(v, 0.0) << ": LogHistogram::add negative sample";
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    ++buckets_[bucketIndex(v)];
}

void
LogHistogram::merge(const LogHistogram &other)
{
    MTIA_CHECK(cfg_.min_value == other.cfg_.min_value &&
               cfg_.max_value == other.cfg_.max_value &&
               cfg_.sub_buckets == other.cfg_.sub_buckets)
        << ": LogHistogram::merge across different bucket layouts";
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
}

void
LogHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
LogHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
LogHistogram::min() const
{
    MTIA_CHECK_GT(count_, 0u) << ": LogHistogram::min on empty histogram";
    return min_;
}

double
LogHistogram::max() const
{
    MTIA_CHECK_GT(count_, 0u) << ": LogHistogram::max on empty histogram";
    return max_;
}

double
LogHistogram::percentile(double p) const
{
    MTIA_CHECK_GT(count_, 0u)
        << ": LogHistogram::percentile on empty histogram";
    MTIA_CHECK(std::isfinite(p)) << ": percentile rank must be finite";
    MTIA_CHECK_GE(p, 0.0) << ": percentile rank below range";
    MTIA_CHECK_LE(p, 100.0) << ": percentile rank above range";
    if (p <= 0.0)
        return min_;
    if (p >= 100.0)
        return max_;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);

    std::uint64_t before = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (before + buckets_[i] >= rank) {
            const double lo = bucketLowerBound(i);
            const double hi = bucketUpperBound(i);
            const double frac = static_cast<double>(rank - before) /
                                static_cast<double>(buckets_[i]);
            return std::clamp(lo + (hi - lo) * frac, min_, max_);
        }
        before += buckets_[i];
    }
    return max_; // unreachable with consistent counts
}

// ----------------------------------------------------- MetricRegistry

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    MTIA_UNREACHABLE("metricKindName: bad MetricKind");
}

MetricRegistry::Series &
MetricRegistry::series(MetricKind kind, const std::string &name,
                       const Labels &labels,
                       const LogHistogram::Config *hist_cfg)
{
    MTIA_CHECK(validMetricName(name))
        << ": invalid metric name \"" << name
        << "\" (want [A-Za-z_][A-Za-z0-9_.]*)";
    auto [fit, fresh] = families_.try_emplace(name);
    Family &family = fit->second;
    if (fresh)
        family.kind = kind;
    MTIA_CHECK(family.kind == kind)
        << ": metric \"" << name << "\" already registered as a "
        << metricKindName(family.kind) << ", requested as a "
        << metricKindName(kind);

    const Labels canonical = canonicalLabels(name, labels);
    auto [sit, created] = family.series.try_emplace(labelKey(canonical));
    Series &s = sit->second;
    if (created) {
        s.labels = canonical;
        switch (kind) {
        case MetricKind::Counter:
            s.counter = std::make_unique<MetricCounter>();
            break;
        case MetricKind::Gauge:
            s.gauge = std::make_unique<MetricGauge>();
            break;
        case MetricKind::Histogram:
            s.histogram = std::make_unique<LogHistogram>(
                hist_cfg ? *hist_cfg : LogHistogram::Config{});
            break;
        }
    }
    return s;
}

MetricCounter &
MetricRegistry::counter(const std::string &name, const Labels &labels)
{
    return *series(MetricKind::Counter, name, labels, nullptr).counter;
}

MetricGauge &
MetricRegistry::gauge(const std::string &name, const Labels &labels)
{
    return *series(MetricKind::Gauge, name, labels, nullptr).gauge;
}

LogHistogram &
MetricRegistry::histogram(const std::string &name, const Labels &labels,
                          const LogHistogram::Config &cfg)
{
    return *series(MetricKind::Histogram, name, labels, &cfg).histogram;
}

std::size_t
MetricRegistry::seriesCount() const
{
    std::size_t n = 0;
    for (const auto &[name, family] : families_)
        n += family.series.size();
    return n;
}

void
MetricRegistry::writeJson(std::ostream &os) const
{
    os << "{\"schema\":\"mtia-metrics-v1\",\"metrics\":[";
    bool first = true;
    for (const auto &[name, family] : families_) {
        for (const auto &[key, s] : family.series) {
            os << (first ? "\n" : ",\n");
            first = false;
            os << "{\"name\":";
            writeJsonString(os, name);
            os << ",\"kind\":\"" << metricKindName(family.kind)
               << "\",\"labels\":{";
            for (std::size_t i = 0; i < s.labels.size(); ++i) {
                if (i)
                    os << ',';
                writeJsonString(os, s.labels[i].first);
                os << ':';
                writeJsonString(os, s.labels[i].second);
            }
            os << '}';
            switch (family.kind) {
            case MetricKind::Counter:
                os << ",\"value\":" << s.counter->value();
                break;
            case MetricKind::Gauge:
                os << ",\"value\":";
                writeJsonDouble(os, s.gauge->value());
                break;
            case MetricKind::Histogram: {
                const LogHistogram &h = *s.histogram;
                os << ",\"count\":" << h.count() << ",\"sum\":";
                writeJsonDouble(os, h.sum());
                if (!h.empty()) {
                    os << ",\"min\":";
                    writeJsonDouble(os, h.min());
                    os << ",\"max\":";
                    writeJsonDouble(os, h.max());
                    os << ",\"mean\":";
                    writeJsonDouble(os, h.mean());
                    os << ",\"p50\":";
                    writeJsonDouble(os, h.percentile(50.0));
                    os << ",\"p90\":";
                    writeJsonDouble(os, h.percentile(90.0));
                    os << ",\"p95\":";
                    writeJsonDouble(os, h.percentile(95.0));
                    os << ",\"p99\":";
                    writeJsonDouble(os, h.percentile(99.0));
                }
                break;
            }
            }
            os << '}';
        }
    }
    os << "\n]}\n";
}

std::string
MetricRegistry::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
MetricRegistry::resetAll()
{
    for (auto &[name, family] : families_) {
        for (auto &[key, s] : family.series) {
            if (s.counter)
                s.counter->reset();
            if (s.gauge)
                s.gauge->reset();
            if (s.histogram)
                s.histogram->reset();
        }
    }
}

} // namespace mtia::telemetry
