#include "telemetry/trace.h"

#include <fstream>
#include <sstream>

#include "core/check.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace mtia::telemetry {

namespace {

/**
 * Chrome trace timestamps are microseconds; ticks are picoseconds.
 * Print as integer micros plus a 6-digit fraction — pure integer math,
 * so the output is deterministic to the last byte.
 */
void
writeMicros(std::ostream &os, Tick t)
{
    os << t / 1000000 << '.';
    Tick frac = t % 1000000;
    char buf[7];
    buf[6] = '\0';
    for (int i = 5; i >= 0; --i) {
        buf[i] = static_cast<char>('0' + frac % 10);
        frac /= 10;
    }
    os << buf;
}

} // namespace

TrackId
TraceRecorder::track(const std::string &process, const std::string &thread)
{
    std::uint32_t pid = 0;
    for (const Track &t : tracks_) {
        if (t.process == process) {
            pid = t.id.pid;
            if (t.thread == thread)
                return t.id;
        }
    }
    if (pid == 0) {
        std::uint32_t max_pid = 0;
        for (const Track &t : tracks_)
            max_pid = std::max(max_pid, t.id.pid);
        pid = max_pid + 1;
    }
    std::uint32_t tid = 1;
    for (const Track &t : tracks_)
        if (t.id.pid == pid)
            tid = std::max(tid, t.id.tid + 1);
    const TrackId id{pid, tid};
    tracks_.push_back(Track{process, thread, id});
    return id;
}

bool
TraceRecorder::full()
{
    if (capacity_ != 0 && events_.size() >= capacity_) {
        ++dropped_;
        return true;
    }
    return false;
}

void
TraceRecorder::complete(TrackId t, std::string_view name,
                        std::string_view cat, Tick start, Tick end)
{
    if (!enabled_ || full())
        return;
    MTIA_CHECK_LE(start, end) << ": trace complete event ends before it starts";
    events_.push_back(Event{'X', t, start, end - start, 0,
                            std::string(name), std::string(cat)});
}

void
TraceRecorder::instant(TrackId t, std::string_view name,
                       std::string_view cat, Tick ts)
{
    if (!enabled_ || full())
        return;
    events_.push_back(
        Event{'i', t, ts, 0, 0, std::string(name), std::string(cat)});
}

void
TraceRecorder::counter(TrackId t, std::string_view name, Tick ts,
                       std::int64_t value)
{
    if (!enabled_ || full())
        return;
    events_.push_back(Event{'C', t, ts, 0, value, std::string(name), ""});
}

void
TraceRecorder::clear()
{
    events_.clear();
    tracks_.clear();
    dropped_ = 0;
}

void
TraceRecorder::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        os << (first ? "\n" : ",\n");
        first = false;
    };
    for (const Track &t : tracks_) {
        if (t.id.tid == 1) {
            sep();
            os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
               << t.id.pid << ",\"tid\":0,\"args\":{\"name\":";
            writeJsonString(os, t.process);
            os << "}}";
        }
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
           << t.id.pid << ",\"tid\":" << t.id.tid
           << ",\"args\":{\"name\":";
        writeJsonString(os, t.thread);
        os << "}}";
    }
    for (const Event &e : events_) {
        sep();
        os << "{\"name\":";
        writeJsonString(os, e.name);
        if (!e.cat.empty()) {
            os << ",\"cat\":";
            writeJsonString(os, e.cat);
        }
        os << ",\"ph\":\"" << e.ph << "\",\"pid\":" << e.track.pid
           << ",\"tid\":" << e.track.tid << ",\"ts\":";
        writeMicros(os, e.ts);
        switch (e.ph) {
        case 'X':
            os << ",\"dur\":";
            writeMicros(os, e.dur);
            break;
        case 'i':
            os << ",\"s\":\"t\"";
            break;
        case 'C':
            os << ",\"args\":{\"value\":" << e.value << '}';
            break;
        default:
            MTIA_UNREACHABLE("TraceRecorder: bad event phase");
        }
        os << '}';
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string
TraceRecorder::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
TraceRecorder::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        exportError("cannot open trace file \"" + path + "\" for writing");
        return;
    }
    writeJson(out);
    out.flush();
    if (!out)
        exportError("failed writing trace file \"" + path + "\"");
}

} // namespace mtia::telemetry
