#ifndef MTIA_TELEMETRY_TRACE_H_
#define MTIA_TELEMETRY_TRACE_H_

/**
 * @file
 * Sim-clock tracing in the Chrome trace-event JSON format (loadable in
 * Perfetto / chrome://tracing).
 *
 * Every timestamp is a DES Tick — never the wall clock — so identical
 * seeds produce byte-identical traces and the determinism linter stays
 * green. Tracks follow the trace-event process/thread model: the
 * "process" names a device (e.g. "shard0") and the "thread" names a
 * unit inside it (e.g. "jobs", "queue"), emitted as metadata events so
 * viewers group and label the rows.
 *
 * Cost model: every recording entry point checks a single bool first,
 * so a disabled recorder costs one predictable branch; the
 * MTIA_TRACE_* macros additionally compile to nothing when the build
 * sets MTIA_TRACING_ENABLED=0 (CMake option MTIA_TRACING=OFF), making
 * instrumented hot paths zero-cost.
 */

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace mtia::telemetry {

/** A (process, thread) trace row; cheap value handle. */
struct TrackId
{
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
};

/** Records trace events into memory; exports Chrome trace JSON. */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** Runtime switch; a disabled recorder records nothing. */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Find-or-create the track for @p process / @p thread (device /
     * unit). Safe to call on a disabled recorder (returns a usable
     * id without recording anything else).
     */
    TrackId track(const std::string &process, const std::string &thread);

    /** Duration event spanning [start, end]. @pre start <= end. */
    void complete(TrackId t, std::string_view name, std::string_view cat,
                  Tick start, Tick end);

    /** Point-in-time event. */
    void instant(TrackId t, std::string_view name, std::string_view cat,
                 Tick ts);

    /** Counter sample (e.g. queue depth) at @p ts. */
    void counter(TrackId t, std::string_view name, Tick ts,
                 std::int64_t value);

    /** Recorded (non-metadata) events. */
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /** Events discarded because the capacity cap was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Bound the recorder's memory: once @p max_events are held, new
     * events are counted in dropped() and discarded. 0 = unbounded.
     */
    void setCapacity(std::size_t max_events) { capacity_ = max_events; }

    /** Drop all events and tracks (capacity and enablement persist). */
    void clear();

    /**
     * Emit {"traceEvents":[...]} JSON: track-name metadata first, then
     * events in recording order. Deterministic byte-for-byte.
     */
    void writeJson(std::ostream &os) const;
    std::string json() const;

    /**
     * Write the JSON to @p path. On I/O failure invokes the telemetry
     * error handler (ScopedTelemetryThrow makes it assertable).
     */
    void writeFile(const std::string &path) const;

  private:
    struct Event
    {
        char ph;           ///< 'X' complete, 'i' instant, 'C' counter
        TrackId track;
        Tick ts;
        Tick dur;          ///< 'X' only
        std::int64_t value; ///< 'C' only
        std::string name;
        std::string cat;
    };
    struct Track
    {
        std::string process;
        std::string thread;
        TrackId id;
    };

    bool full();

    bool enabled_ = true;
    std::size_t capacity_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<Event> events_;
    std::vector<Track> tracks_;
};

} // namespace mtia::telemetry

/**
 * Compile-time tracing switch: build with MTIA_TRACING_ENABLED=0 (CMake
 * -DMTIA_TRACING=OFF) and the MTIA_TRACE_* macros vanish entirely.
 * Each macro takes a TraceRecorder* that may be null.
 */
#ifndef MTIA_TRACING_ENABLED
#define MTIA_TRACING_ENABLED 1
#endif

#if MTIA_TRACING_ENABLED
#define MTIA_TRACE_COMPLETE(rec, track, name, cat, start, end) \
    do { \
        if ((rec) != nullptr && (rec)->enabled()) \
            (rec)->complete((track), (name), (cat), (start), (end)); \
    } while (false)
#define MTIA_TRACE_INSTANT(rec, track, name, cat, ts) \
    do { \
        if ((rec) != nullptr && (rec)->enabled()) \
            (rec)->instant((track), (name), (cat), (ts)); \
    } while (false)
#define MTIA_TRACE_COUNTER(rec, track, name, ts, value) \
    do { \
        if ((rec) != nullptr && (rec)->enabled()) \
            (rec)->counter((track), (name), (ts), (value)); \
    } while (false)
#else
#define MTIA_TRACE_COMPLETE(rec, track, name, cat, start, end) ((void)0)
#define MTIA_TRACE_INSTANT(rec, track, name, cat, ts) ((void)0)
#define MTIA_TRACE_COUNTER(rec, track, name, ts, value) ((void)0)
#endif

#endif // MTIA_TELEMETRY_TRACE_H_
