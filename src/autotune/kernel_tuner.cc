#include "autotune/kernel_tuner.h"

#include <algorithm>
#include <chrono> // sim-lint: allow(wall-clock) — measured GEMM variant tuning (see GemmKernelTuner)
#include <cmath>
#include <vector>

#include "core/check.h"
#include "core/parallel.h"

namespace mtia {

namespace {

/**
 * Cost assigned to an infeasible variant (weights that cannot be
 * LLC-resident): large enough that no feasible kernel time (picotick
 * scale, well under 1e16 for any real shape) ever loses to it, small
 * enough that stump/MLP training arithmetic stays finite.
 */
constexpr double kInfeasibleCost = 1e18;

/** KD-tree neighbours contributed to surrogate warm-starts. */
constexpr std::size_t kWarmNeighbors = 8;

double
log2Positive(std::int64_t v)
{
    return std::log2(static_cast<double>(std::max<std::int64_t>(1, v)));
}

} // namespace

std::vector<FcOptions>
KernelTuner::variantSpace()
{
    // Variants differ in operand residency and loading strategy —
    // the "input, output, and weight stationary" variants with
    // different block sizes and DMA scheduling the kernel generator
    // emits.
    std::vector<FcOptions> space;
    for (Placement weights : {Placement::Llc, Placement::Dram}) {
        for (bool coordinated : {true, false}) {
            for (Placement acts : {Placement::Lls, Placement::Llc}) {
                FcOptions opt;
                opt.weights = weights;
                opt.coordinated_loading = coordinated;
                opt.activations = acts;
                space.push_back(opt);
            }
        }
    }
    return space;
}

TuneResult
KernelTuner::tuneExhaustive(const FcShape &shape) const
{
    const std::vector<FcOptions> space = variantSpace();

    // Evaluate every variant concurrently, each against its own
    // device clone (cost-model queries bump mutable observability
    // counters, so tasks must not share one device). Feasibility and
    // timing per variant depend only on (shape, variant), so the
    // reduction below — first minimum in variant order — matches the
    // serial path byte-for-byte at any thread count.
    struct Eval
    {
        Tick time = 0;
        bool feasible = false;
    };
    const std::vector<Eval> evals = parallelMap(
        space.size(), [&](std::size_t i) {
            Eval e;
            const FcOptions &variant = space[i];
            // Weights larger than the LLC cannot use the cached
            // variant.
            if (variant.weights == Placement::Llc &&
                shape.weightBytes(variant.dtype) >
                    km_.device().sramPartition().llcBytes()) {
                return e;
            }
            const Device dev = km_.device().cloneConfigured();
            const KernelCostModel km(dev);
            e.time = km.fc(shape, variant).total;
            e.feasible = true;
            return e;
        });

    TuneResult best;
    bool first = true;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        if (!evals[i].feasible)
            continue;
        if (first || evals[i].time < best.kernel_time) {
            best.variant = space[i];
            best.kernel_time = evals[i].time;
            first = false;
        }
    }
    MTIA_CHECK(!first) << ": tuneExhaustive found no feasible variant";
    best.tuning_cost = replay_cost_ * static_cast<Tick>(space.size());
    return best;
}

std::vector<FcOptions>
KernelTuner::extendedVariantSpace()
{
    // The full placement x precision x loading cross product the cost
    // model can price. Placement order mirrors the legacy grid
    // (cached before streamed) so low-index tie-breaks still prefer
    // the cache-friendly variant.
    std::vector<FcOptions> space;
    for (DType dtype : {DType::FP16, DType::INT8}) {
        for (Placement weights : {Placement::Llc, Placement::Dram}) {
            for (bool coordinated : {true, false}) {
                for (Placement acts :
                     {Placement::Lls, Placement::Llc, Placement::Dram}) {
                    for (Placement out :
                         {Placement::Lls, Placement::Llc,
                          Placement::Dram}) {
                        for (bool dyn_int8 : {false, true}) {
                            for (bool sparse : {false, true}) {
                                FcOptions opt;
                                opt.dtype = dtype;
                                opt.weights = weights;
                                opt.coordinated_loading = coordinated;
                                opt.activations = acts;
                                opt.output = out;
                                opt.dynamic_int8 = dyn_int8;
                                opt.sparse_24 = sparse;
                                space.push_back(opt);
                            }
                        }
                    }
                }
            }
        }
    }
    return space;
}

FeatureVec
KernelTuner::variantFeatures(const FcShape &shape, const FcOptions &opt)
{
    FeatureVec f{};
    f[0] = log2Positive(shape.m);
    f[1] = log2Positive(shape.n);
    f[2] = log2Positive(shape.k);
    f[3] = static_cast<double>(opt.weights);
    f[4] = static_cast<double>(opt.activations);
    f[5] = static_cast<double>(opt.output);
    f[6] = opt.coordinated_loading ? 1.0 : 0.0;
    f[7] = opt.dynamic_int8 ? 1.0 : 0.0;
    f[8] = opt.sparse_24 ? 1.0 : 0.0;
    f[9] = static_cast<double>(dtypeSize(opt.dtype));
    return f;
}

KernelSurrogateResult
KernelTuner::tuneSurrogate(const FcShape &shape, const PerfDatabase *warm,
                           const SurrogateSweepOptions &opts) const
{
    const std::vector<FcOptions> space = extendedVariantSpace();

    SurrogateSweepOptions o = opts;
    if (warm != nullptr) {
        for (const PerfEntry &e : warm->lookupK(shape, kWarmNeighbors)) {
            o.warm_features.push_back(
                variantFeatures(e.shape, e.best_variant));
            o.warm_costs.push_back(static_cast<double>(e.best_time));
        }
    }

    const Bytes llc = km_.device().sramPartition().llcBytes();
    const SurrogateSweepResult loop = surrogateArgmin(
        space.size(),
        [&](std::size_t i) { return variantFeatures(shape, space[i]); },
        [&](std::size_t i) -> double {
            const FcOptions &variant = space[i];
            if (variant.weights == Placement::Llc &&
                shape.weightBytes(variant.dtype) > llc) {
                return kInfeasibleCost;
            }
            // Per-task device clone, as in tuneExhaustive: cost-model
            // queries bump mutable observability counters.
            const Device dev = km_.device().cloneConfigured();
            const KernelCostModel km(dev);
            return static_cast<double>(km.fc(shape, variant).total);
        },
        o);

    MTIA_CHECK_LT(loop.best_cost, kInfeasibleCost)
        << ": tuneSurrogate found no feasible variant for "
        << shape.toString();
    KernelSurrogateResult r;
    r.result.variant = space[loop.best_index];
    r.result.kernel_time = static_cast<Tick>(loop.best_cost);
    r.result.tuning_cost =
        replay_cost_ * static_cast<Tick>(loop.real_evals);
    r.loop = loop;
    r.grid_size = space.size();
    return r;
}

TuneResult
KernelTuner::tuneApproximate(const FcShape &shape,
                             PerfDatabase &db) const
{
    const auto hit = db.lookup(shape);
    if (!hit.has_value()) {
        TuneResult r = tuneExhaustive(shape);
        db.insert(PerfEntry{shape, r.variant, r.kernel_time});
        return r;
    }
    TuneResult r;
    r.variant = hit->best_variant;
    // The adopted variant may be infeasible for this shape's weight
    // size; degrade to the streaming variant instead of failing.
    if (r.variant.weights == Placement::Llc &&
        shape.weightBytes(r.variant.dtype) >
            km_.device().sramPartition().llcBytes()) {
        r.variant.weights = Placement::Dram;
    }
    r.kernel_time = km_.fc(shape, r.variant).total;
    r.tuning_cost = fromMillis(20.0); // one database lookup
    return r;
}

PerfDatabase
KernelTuner::buildDatabase(const std::vector<FcShape> &corpus) const
{
    // Tune every corpus shape concurrently (the inner per-variant
    // fan-out runs inline on the worker), then insert in corpus order
    // so the database is independent of the thread schedule.
    const std::vector<TuneResult> results = parallelMap(
        corpus.size(),
        [&](std::size_t i) { return tuneExhaustive(corpus[i]); });
    PerfDatabase db;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        db.insert(PerfEntry{corpus[i], results[i].variant,
                            results[i].kernel_time});
    return db;
}

// --------------------------------------------- measured GEMM tuning

std::vector<GemmVariant>
GemmKernelTuner::variantSpace()
{
    // Scalar first, then ascending vector width: first-minimum
    // tie-breaking therefore prefers the reference when timings tie.
    static constexpr simd::SimdIsa kTiers[] = {
        simd::SimdIsa::Scalar, simd::SimdIsa::Sse2, simd::SimdIsa::Neon,
        simd::SimdIsa::Avx2, simd::SimdIsa::Avx512};
    static constexpr simd::GemmBlocking kBlockings[] = {
        {64, 256, 512}, {32, 128, 1024}, {128, 512, 256}};
    std::vector<GemmVariant> space;
    for (simd::SimdIsa isa : kTiers) {
        if (!simd::isaSupported(isa))
            continue;
        for (const simd::GemmBlocking &blk : kBlockings)
            space.push_back(GemmVariant{isa, blk});
    }
    return space;
}

std::vector<GemmVariant>
GemmKernelTuner::extendedVariantSpace()
{
    static constexpr simd::SimdIsa kTiers[] = {
        simd::SimdIsa::Scalar, simd::SimdIsa::Sse2, simd::SimdIsa::Neon,
        simd::SimdIsa::Avx2, simd::SimdIsa::Avx512};
    static constexpr std::int64_t kMc[] = {32, 64, 128, 256};
    static constexpr std::int64_t kKc[] = {128, 256, 512, 1024};
    static constexpr std::int64_t kNc[] = {256, 512, 1024};
    std::vector<GemmVariant> space;
    for (simd::SimdIsa isa : kTiers) {
        if (!simd::isaSupported(isa))
            continue;
        for (std::int64_t mc : kMc)
            for (std::int64_t kc : kKc)
                for (std::int64_t nc : kNc)
                    space.push_back(
                        GemmVariant{isa, simd::GemmBlocking{mc, kc, nc}});
    }
    return space;
}

FeatureVec
GemmKernelTuner::variantFeatures(const FcShape &shape,
                                 const GemmVariant &v)
{
    FeatureVec f{};
    f[0] = log2Positive(shape.m);
    f[1] = log2Positive(shape.n);
    f[2] = log2Positive(shape.k);
    f[3] = static_cast<double>(v.isa);
    f[4] = log2Positive(v.blocking.mc);
    f[5] = log2Positive(v.blocking.kc);
    f[6] = log2Positive(v.blocking.nc);
    return f;
}

GemmSurrogateResult
GemmKernelTuner::tuneSurrogate(const FcShape &shape,
                               const GemmVariantDatabase *warm,
                               const SurrogateSweepOptions &opts) const
{
    MTIA_CHECK(shape.m > 0 && shape.n > 0 && shape.k > 0)
        << ": GemmKernelTuner needs a positive shape, got "
        << shape.toString();
    const std::vector<GemmVariant> space = extendedVariantSpace();
    MTIA_CHECK(!space.empty()) << ": empty GEMM variant space";

    const auto m = static_cast<std::size_t>(shape.m);
    const auto n = static_cast<std::size_t>(shape.n);
    const auto k = static_cast<std::size_t>(shape.k);
    std::vector<float> a(m * k);
    std::vector<float> b(k * n);
    std::vector<float> c(m * n);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<float>(static_cast<int>(i % 251) - 125) * 0.01f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(static_cast<int>(i % 241) - 120) * 0.01f;

    SurrogateSweepOptions o = opts;
    // Timing-based evaluator: samples must not run concurrently.
    o.serial_eval = true;
    if (warm != nullptr) {
        for (const GemmPerfEntry &e :
             warm->lookupK(shape, kWarmNeighbors)) {
            o.warm_features.push_back(
                variantFeatures(e.shape, e.best_variant));
            o.warm_costs.push_back(e.best_seconds);
        }
    }

    const SurrogateSweepResult loop = surrogateArgmin(
        space.size(),
        [&](std::size_t i) { return variantFeatures(shape, space[i]); },
        [&](std::size_t i) {
            return measureVariant(space[i], a.data(), b.data(), c.data(),
                                  shape);
        },
        o);

    GemmSurrogateResult r;
    r.result.variant = space[loop.best_index];
    r.result.seconds = loop.best_cost;
    r.result.gflops = shape.flops() / loop.best_cost / 1e9;
    r.loop = loop;
    r.grid_size = space.size();
    return r;
}

double
GemmKernelTuner::measureVariant(const GemmVariant &v, const float *a,
                                const float *b, float *c,
                                const FcShape &s) const
{
    double best = 0.0;
    for (int rep = 0; rep < reps_; ++rep) {
        const auto t0 = std::chrono::steady_clock::now(); // sim-lint: allow(wall-clock) — measured variant tuning times real kernels by design
        simd::gemmF32(a, b, c, s.m, s.n, s.k, v.isa, v.blocking);
        const auto t1 = std::chrono::steady_clock::now(); // sim-lint: allow(wall-clock) — measured variant tuning times real kernels by design
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0 || secs < best)
            best = secs;
    }
    return best;
}

GemmTuneResult
GemmKernelTuner::tuneMeasured(const FcShape &shape) const
{
    MTIA_CHECK(shape.m > 0 && shape.n > 0 && shape.k > 0)
        << ": GemmKernelTuner needs a positive shape, got "
        << shape.toString();
    const auto m = static_cast<std::size_t>(shape.m);
    const auto n = static_cast<std::size_t>(shape.n);
    const auto k = static_cast<std::size_t>(shape.k);
    // Deterministic synthetic operands; values only have to be
    // non-degenerate, timing does not depend on them.
    std::vector<float> a(m * k);
    std::vector<float> b(k * n);
    std::vector<float> c(m * n);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<float>(static_cast<int>(i % 251) - 125) * 0.01f;
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<float>(static_cast<int>(i % 241) - 120) * 0.01f;

    const std::vector<GemmVariant> space = variantSpace();
    MTIA_CHECK(!space.empty()) << ": empty GEMM variant space";
    GemmTuneResult result;
    bool first = true;
    for (const GemmVariant &v : space) {
        const double secs =
            measureVariant(v, a.data(), b.data(), c.data(), shape);
        // Strict less-than: the earliest variant in space order wins
        // ties, mirroring tuneExhaustive's deterministic reduction.
        if (first || secs < result.seconds) {
            result.variant = v;
            result.seconds = secs;
            first = false;
        }
    }
    result.gflops = shape.flops() / result.seconds / 1e9;
    return result;
}

GemmTuneResult
GemmKernelTuner::tuneApproximate(const FcShape &shape,
                                 GemmVariantDatabase &db) const
{
    if (const auto hit = db.lookup(shape)) {
        const auto m = static_cast<std::size_t>(shape.m);
        const auto n = static_cast<std::size_t>(shape.n);
        const auto k = static_cast<std::size_t>(shape.k);
        std::vector<float> a(m * k);
        std::vector<float> b(k * n);
        std::vector<float> c(m * n);
        GemmTuneResult result;
        result.variant = hit->best_variant;
        result.seconds = measureVariant(result.variant, a.data(),
                                        b.data(), c.data(), shape);
        result.gflops = shape.flops() / result.seconds / 1e9;
        return result;
    }
    const GemmTuneResult result = tuneMeasured(shape);
    db.insert(GemmPerfEntry{shape, result.variant, result.seconds,
                            result.gflops});
    return result;
}

GemmVariantDatabase
GemmKernelTuner::buildDatabase(const std::vector<FcShape> &corpus) const
{
    // Serial on purpose: concurrent timing runs would contend for the
    // lane pool and cores, skewing every sample.
    GemmVariantDatabase db;
    for (const FcShape &shape : corpus) {
        const GemmTuneResult r = tuneMeasured(shape);
        db.insert(GemmPerfEntry{shape, r.variant, r.seconds, r.gflops});
    }
    return db;
}

} // namespace mtia
