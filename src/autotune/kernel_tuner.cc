#include "autotune/kernel_tuner.h"

#include "core/check.h"

namespace mtia {

std::vector<FcOptions>
KernelTuner::variantSpace()
{
    // Variants differ in operand residency and loading strategy —
    // the "input, output, and weight stationary" variants with
    // different block sizes and DMA scheduling the kernel generator
    // emits.
    std::vector<FcOptions> space;
    for (Placement weights : {Placement::Llc, Placement::Dram}) {
        for (bool coordinated : {true, false}) {
            for (Placement acts : {Placement::Lls, Placement::Llc}) {
                FcOptions opt;
                opt.weights = weights;
                opt.coordinated_loading = coordinated;
                opt.activations = acts;
                space.push_back(opt);
            }
        }
    }
    return space;
}

TuneResult
KernelTuner::tuneExhaustive(const FcShape &shape) const
{
    TuneResult best;
    bool first = true;
    for (const FcOptions &variant : variantSpace()) {
        // Weights larger than the LLC cannot use the cached variant.
        if (variant.weights == Placement::Llc &&
            shape.weightBytes(variant.dtype) >
                km_.device().sramPartition().llcBytes()) {
            continue;
        }
        const Tick t = km_.fc(shape, variant).total;
        if (first || t < best.kernel_time) {
            best.variant = variant;
            best.kernel_time = t;
            first = false;
        }
    }
    MTIA_CHECK(!first) << ": tuneExhaustive found no feasible variant";
    best.tuning_cost =
        replay_cost_ * static_cast<Tick>(variantSpace().size());
    return best;
}

TuneResult
KernelTuner::tuneApproximate(const FcShape &shape,
                             PerfDatabase &db) const
{
    const auto hit = db.lookup(shape);
    if (!hit.has_value()) {
        TuneResult r = tuneExhaustive(shape);
        db.insert(PerfEntry{shape, r.variant, r.kernel_time});
        return r;
    }
    TuneResult r;
    r.variant = hit->best_variant;
    // The adopted variant may be infeasible for this shape's weight
    // size; degrade to the streaming variant instead of failing.
    if (r.variant.weights == Placement::Llc &&
        shape.weightBytes(r.variant.dtype) >
            km_.device().sramPartition().llcBytes()) {
        r.variant.weights = Placement::Dram;
    }
    r.kernel_time = km_.fc(shape, r.variant).total;
    r.tuning_cost = fromMillis(20.0); // one database lookup
    return r;
}

PerfDatabase
KernelTuner::buildDatabase(const std::vector<FcShape> &corpus) const
{
    PerfDatabase db;
    for (const FcShape &shape : corpus) {
        const TuneResult r = tuneExhaustive(shape);
        db.insert(PerfEntry{shape, r.variant, r.kernel_time});
    }
    return db;
}

} // namespace mtia
