#include "autotune/kernel_tuner.h"

#include "core/check.h"
#include "core/parallel.h"

namespace mtia {

std::vector<FcOptions>
KernelTuner::variantSpace()
{
    // Variants differ in operand residency and loading strategy —
    // the "input, output, and weight stationary" variants with
    // different block sizes and DMA scheduling the kernel generator
    // emits.
    std::vector<FcOptions> space;
    for (Placement weights : {Placement::Llc, Placement::Dram}) {
        for (bool coordinated : {true, false}) {
            for (Placement acts : {Placement::Lls, Placement::Llc}) {
                FcOptions opt;
                opt.weights = weights;
                opt.coordinated_loading = coordinated;
                opt.activations = acts;
                space.push_back(opt);
            }
        }
    }
    return space;
}

TuneResult
KernelTuner::tuneExhaustive(const FcShape &shape) const
{
    const std::vector<FcOptions> space = variantSpace();

    // Evaluate every variant concurrently, each against its own
    // device clone (cost-model queries bump mutable observability
    // counters, so tasks must not share one device). Feasibility and
    // timing per variant depend only on (shape, variant), so the
    // reduction below — first minimum in variant order — matches the
    // serial path byte-for-byte at any thread count.
    struct Eval
    {
        Tick time = 0;
        bool feasible = false;
    };
    const std::vector<Eval> evals = parallelMap(
        space.size(), [&](std::size_t i) {
            Eval e;
            const FcOptions &variant = space[i];
            // Weights larger than the LLC cannot use the cached
            // variant.
            if (variant.weights == Placement::Llc &&
                shape.weightBytes(variant.dtype) >
                    km_.device().sramPartition().llcBytes()) {
                return e;
            }
            const Device dev = km_.device().cloneConfigured();
            const KernelCostModel km(dev);
            e.time = km.fc(shape, variant).total;
            e.feasible = true;
            return e;
        });

    TuneResult best;
    bool first = true;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        if (!evals[i].feasible)
            continue;
        if (first || evals[i].time < best.kernel_time) {
            best.variant = space[i];
            best.kernel_time = evals[i].time;
            first = false;
        }
    }
    MTIA_CHECK(!first) << ": tuneExhaustive found no feasible variant";
    best.tuning_cost = replay_cost_ * static_cast<Tick>(space.size());
    return best;
}

TuneResult
KernelTuner::tuneApproximate(const FcShape &shape,
                             PerfDatabase &db) const
{
    const auto hit = db.lookup(shape);
    if (!hit.has_value()) {
        TuneResult r = tuneExhaustive(shape);
        db.insert(PerfEntry{shape, r.variant, r.kernel_time});
        return r;
    }
    TuneResult r;
    r.variant = hit->best_variant;
    // The adopted variant may be infeasible for this shape's weight
    // size; degrade to the streaming variant instead of failing.
    if (r.variant.weights == Placement::Llc &&
        shape.weightBytes(r.variant.dtype) >
            km_.device().sramPartition().llcBytes()) {
        r.variant.weights = Placement::Dram;
    }
    r.kernel_time = km_.fc(shape, r.variant).total;
    r.tuning_cost = fromMillis(20.0); // one database lookup
    return r;
}

PerfDatabase
KernelTuner::buildDatabase(const std::vector<FcShape> &corpus) const
{
    // Tune every corpus shape concurrently (the inner per-variant
    // fan-out runs inline on the worker), then insert in corpus order
    // so the database is independent of the thread schedule.
    const std::vector<TuneResult> results = parallelMap(
        corpus.size(),
        [&](std::size_t i) { return tuneExhaustive(corpus[i]); });
    PerfDatabase db;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        db.insert(PerfEntry{corpus[i], results[i].variant,
                            results[i].kernel_time});
    return db;
}

} // namespace mtia
