#ifndef MTIA_AUTOTUNE_PERF_DATABASE_H_
#define MTIA_AUTOTUNE_PERF_DATABASE_H_

/**
 * @file
 * The FC-kernel performance database of Section 4.1: tuned shapes are
 * stored in a KD-tree over log-shape space and new shapes pick the
 * variant of their approximate nearest neighbour, cutting tuning time
 * by up to 1000x while staying within 5% of exhaustive tuning.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chip/kernel_cost_model.h"
#include "core/simd_gemm.h"

namespace mtia {

/** A point in tuning space (log2 of M, N, K). */
using ShapeKey = std::array<double, 3>;

/** Build the key for an FC shape. */
ShapeKey shapeKey(const FcShape &shape);

/**
 * Exact 3-D KD-tree with nearest-neighbour and k-nearest-neighbour
 * search. Small and deterministic; used both by the tuner and as a
 * brute-force-checked property-test subject.
 *
 * Tie-breaking contract (what makes query results invariant to the
 * insertion order of duplicate points): the build comparator orders
 * equal coordinates by index, so the tree shape is a pure function of
 * the point sequence; traversal visits every point whose distance
 * ties the current best (the prune test is <=, and an equal-distance
 * point in the far subtree implies delta^2 <= best_d2), and both
 * searches prefer the lowest index among equal distances. A query
 * over any permutation of the same multiset of points therefore
 * returns the same coordinates, and over the same sequence the same
 * indices.
 */
class KdTree
{
  public:
    /** Build from points; indices into the original vector are kept. */
    explicit KdTree(std::vector<ShapeKey> points);

    /** Index of the nearest point to @p q (brute-force-equal). */
    std::size_t nearest(const ShapeKey &q) const;

    /**
     * Indices of the (up to) @p k nearest points to @p q, ordered by
     * (distance, index) ascending — brute-force-equal under the same
     * ordering. Used for surrogate warm-starts.
     */
    std::vector<std::size_t> nearestK(const ShapeKey &q,
                                      std::size_t k) const;

    std::size_t size() const { return points_.size(); }

    /** Squared Euclidean distance between keys. */
    static double dist2(const ShapeKey &a, const ShapeKey &b);

  private:
    struct KdNode
    {
        std::size_t point = 0;
        int axis = 0;
        int left = -1;
        int right = -1;
    };

    int build(std::vector<std::size_t> &idx, std::size_t lo,
              std::size_t hi, int depth);
    void search(int node, const ShapeKey &q, std::size_t &best,
                double &best_d2) const;
    void searchK(int node, const ShapeKey &q, std::size_t k,
                 std::vector<std::pair<double, std::size_t>> &best) const;

    std::vector<ShapeKey> points_;
    std::vector<KdNode> nodes_;
    int root_ = -1;
};

/** One tuned entry: the best variant found for a shape. */
struct PerfEntry
{
    FcShape shape;
    FcOptions best_variant;
    Tick best_time = 0;
};

/** The tuned-kernel database with ANN lookup. */
class PerfDatabase
{
  public:
    void insert(PerfEntry entry);

    /** Nearest tuned neighbour of @p shape (nullopt when empty). */
    std::optional<PerfEntry> lookup(const FcShape &shape) const;

    /**
     * The (up to) @p k nearest tuned entries, closest first with
     * deterministic (distance, insertion-order) tie-breaking; empty
     * when the database is. Surrogate warm-start path.
     */
    std::vector<PerfEntry> lookupK(const FcShape &shape,
                                   std::size_t k) const;

    std::size_t size() const { return entries_.size(); }

  private:
    void rebuild() const;

    std::vector<PerfEntry> entries_;
    mutable std::unique_ptr<KdTree> tree_;
    mutable bool dirty_ = false;
};

/**
 * One functional-GEMM kernel variant: runtime dispatch tier ×
 * cache-blocking config. Unlike FcOptions (modeled variants), these
 * are executed and timed for real by GemmKernelTuner.
 */
struct GemmVariant
{
    simd::SimdIsa isa = simd::SimdIsa::Scalar;
    simd::GemmBlocking blocking;

    /** e.g. "avx2/mc64.kc256.nc512" for reports and logs. */
    std::string name() const;
};

/** One measured entry: the fastest variant found for a shape. */
struct GemmPerfEntry
{
    FcShape shape;
    GemmVariant best_variant;
    double best_seconds = 0.0; ///< best-of-reps wall clock
    double best_gflops = 0.0;
};

/** ANN database over measured GEMM variants (same KD-tree/log-shape
 *  idiom as PerfDatabase). */
class GemmVariantDatabase
{
  public:
    void insert(GemmPerfEntry entry);

    /** Nearest measured neighbour of @p shape (nullopt when empty). */
    std::optional<GemmPerfEntry> lookup(const FcShape &shape) const;

    /** The (up to) @p k nearest measured entries, closest first with
     *  deterministic tie-breaking (surrogate warm-start path). */
    std::vector<GemmPerfEntry> lookupK(const FcShape &shape,
                                       std::size_t k) const;

    std::size_t size() const { return entries_.size(); }

  private:
    void rebuild() const;

    std::vector<GemmPerfEntry> entries_;
    mutable std::unique_ptr<KdTree> tree_;
    mutable bool dirty_ = false;
};

} // namespace mtia

#endif // MTIA_AUTOTUNE_PERF_DATABASE_H_
