#ifndef MTIA_AUTOTUNE_KERNEL_TUNER_H_
#define MTIA_AUTOTUNE_KERNEL_TUNER_H_

/**
 * @file
 * FC kernel tuning (Section 4.1). Exhaustive tuning evaluates every
 * kernel variant with a (simulated) traffic-replay test per variant;
 * ANN tuning reuses the best variant of the nearest tuned shape from
 * the performance database. The tuner tracks simulated tuning cost so
 * the 1000x speedup and the within-5% quality bound are measurable.
 */

#include <vector>

#include "autotune/perf_database.h"
#include "chip/kernel_cost_model.h"

namespace mtia {

/** Result of tuning one shape. */
struct TuneResult
{
    FcOptions variant;
    Tick kernel_time = 0;     ///< kernel latency with this variant
    Tick tuning_cost = 0;     ///< simulated time spent tuning
};

/** The FC kernel tuner. */
class KernelTuner
{
  public:
    /**
     * @param replay_cost Simulated wall-clock cost of one variant
     *        evaluation (a traffic-replay test; minutes in practice).
     */
    explicit KernelTuner(const KernelCostModel &km,
                         Tick replay_cost = fromSeconds(30.0))
        : km_(km), replay_cost_(replay_cost) {}

    /** The kernel-variant search space. */
    static std::vector<FcOptions> variantSpace();

    /** Evaluate every variant; pick the fastest. */
    TuneResult tuneExhaustive(const FcShape &shape) const;

    /**
     * ANN tuning: adopt the nearest tuned shape's variant from @p db.
     * Falls back to exhaustive (and records the result) on a miss.
     */
    TuneResult tuneApproximate(const FcShape &shape,
                               PerfDatabase &db) const;

    /** Exhaustively tune a corpus into a database. */
    PerfDatabase buildDatabase(const std::vector<FcShape> &corpus) const;

  private:
    const KernelCostModel &km_;
    Tick replay_cost_;
};

/** Result of measured-GEMM tuning for one shape. */
struct GemmTuneResult
{
    GemmVariant variant;
    double seconds = 0.0; ///< best-of-reps wall clock of the winner
    double gflops = 0.0;
};

/**
 * Measured tuner for the functional GEMM kernel layer: unlike
 * KernelTuner (analytic cost model), this one executes every
 * supported dispatch tier × blocking config on the real
 * core/simd_gemm kernels and picks the fastest from best-of-reps
 * wall-clock samples (ties break to the earliest variant in
 * variantSpace order, mirroring tuneExhaustive). Selection is
 * timing-based by design — the NeuroScalar/agentic-operator
 * direction of measuring real variants instead of estimating them —
 * so it is the one sanctioned wall-clock consumer in src/.
 */
class GemmKernelTuner
{
  public:
    explicit GemmKernelTuner(int reps = 3) : reps_(reps) {}

    /** Supported tiers (scalar always included) × blocking configs. */
    static std::vector<GemmVariant> variantSpace();

    /** Run and time every variant on @p shape; pick the fastest. */
    GemmTuneResult tuneMeasured(const FcShape &shape) const;

    /**
     * ANN tuning: adopt the nearest measured shape's variant from
     * @p db (one confirmation timing for the reported numbers).
     * Falls back to tuneMeasured (and records the result) on a miss.
     */
    GemmTuneResult tuneApproximate(const FcShape &shape,
                                   GemmVariantDatabase &db) const;

    /** Measure a corpus into a database. */
    GemmVariantDatabase
    buildDatabase(const std::vector<FcShape> &corpus) const;

  private:
    double measureVariant(const GemmVariant &v, const float *a,
                          const float *b, float *c, const FcShape &s) const;

    int reps_;
};

} // namespace mtia

#endif // MTIA_AUTOTUNE_KERNEL_TUNER_H_
