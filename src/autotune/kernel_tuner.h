#ifndef MTIA_AUTOTUNE_KERNEL_TUNER_H_
#define MTIA_AUTOTUNE_KERNEL_TUNER_H_

/**
 * @file
 * FC kernel tuning (Section 4.1). Exhaustive tuning evaluates every
 * kernel variant with a (simulated) traffic-replay test per variant;
 * ANN tuning reuses the best variant of the nearest tuned shape from
 * the performance database. The tuner tracks simulated tuning cost so
 * the 1000x speedup and the within-5% quality bound are measurable.
 *
 * Surrogate tuning (tuneSurrogate) runs the shared explore ->
 * predict -> verify loop of autotune/surrogate.h over the *extended*
 * variant grid — every placement/precision/loading combination the
 * cost model can price, tens of times larger than the legacy grid —
 * really evaluating only a seed batch plus the predicted top-k, with
 * an optional KD-tree warm start from already-tuned shapes. With the
 * surrogate disabled (MTIA_SURROGATE=0 / ScopedSurrogate) the same
 * call degrades to a bit-identical exhaustive sweep of the grid.
 */

#include <vector>

#include "autotune/perf_database.h"
#include "autotune/surrogate.h"
#include "chip/kernel_cost_model.h"

namespace mtia {

/** Result of tuning one shape. */
struct TuneResult
{
    FcOptions variant;
    Tick kernel_time = 0;     ///< kernel latency with this variant
    Tick tuning_cost = 0;     ///< simulated time spent tuning
};

/** Result of a surrogate-guided sweep: the chosen variant plus the
 *  explore/predict/verify loop accounting. */
struct KernelSurrogateResult
{
    TuneResult result;
    SurrogateSweepResult loop;
    std::size_t grid_size = 0; ///< extended-grid candidate count
};

/** The FC kernel tuner. */
class KernelTuner
{
  public:
    /**
     * @param replay_cost Simulated wall-clock cost of one variant
     *        evaluation (a traffic-replay test; minutes in practice).
     */
    explicit KernelTuner(const KernelCostModel &km,
                         Tick replay_cost = fromSeconds(30.0))
        : km_(km), replay_cost_(replay_cost) {}

    /** The kernel-variant search space. */
    static std::vector<FcOptions> variantSpace();

    /**
     * The extended search space the surrogate makes affordable:
     * weights/activation/output placements x coordinated loading x
     * dynamic INT8 x 2:4 sparsity x {FP16, INT8} compute precision
     * (288 variants vs the legacy 8).
     */
    static std::vector<FcOptions> extendedVariantSpace();

    /** Surrogate feature encoding of one (shape, variant) point:
     *  log2 shape dims, placement ordinals, option flags. */
    static FeatureVec variantFeatures(const FcShape &shape,
                                      const FcOptions &opt);

    /** Evaluate every variant; pick the fastest. */
    TuneResult tuneExhaustive(const FcShape &shape) const;

    /**
     * Surrogate-guided tuning over extendedVariantSpace(): seed ->
     * train -> rank -> verify top-k (autotune/surrogate.h). @p warm,
     * when given, contributes its k nearest tuned shapes as extra
     * training rows. Infeasible variants (LLC-resident weights larger
     * than the LLC) carry a large finite penalty cost so the model
     * learns to avoid them; the winner is always feasible as long as
     * one feasible variant exists. tuning_cost charges one replay per
     * real evaluation, so the saving vs exhaustive is measurable in
     * the same simulated-cost terms as tuneExhaustive.
     *
     * The max-based cost model leaves wide exact cost ties (a flag
     * that doesn't move the bottleneck term is free). Zero regret
     * holds at any top_k; recovering the canonical lowest-index tie
     * member bit-exactly additionally needs opts.top_k sized at the
     * expected tie-cluster width (~24 on this grid) so the verify
     * pass measures the whole predicted-best cluster.
     */
    KernelSurrogateResult
    tuneSurrogate(const FcShape &shape, const PerfDatabase *warm = nullptr,
                  const SurrogateSweepOptions &opts = {}) const;

    /**
     * ANN tuning: adopt the nearest tuned shape's variant from @p db.
     * Falls back to exhaustive (and records the result) on a miss.
     */
    TuneResult tuneApproximate(const FcShape &shape,
                               PerfDatabase &db) const;

    /** Exhaustively tune a corpus into a database. */
    PerfDatabase buildDatabase(const std::vector<FcShape> &corpus) const;

  private:
    const KernelCostModel &km_;
    Tick replay_cost_;
};

/** Result of measured-GEMM tuning for one shape. */
struct GemmTuneResult
{
    GemmVariant variant;
    double seconds = 0.0; ///< best-of-reps wall clock of the winner
    double gflops = 0.0;
};

/** Result of surrogate-guided measured-GEMM tuning. */
struct GemmSurrogateResult
{
    GemmTuneResult result;
    SurrogateSweepResult loop;
    std::size_t grid_size = 0; ///< extended-grid candidate count
};

/**
 * Measured tuner for the functional GEMM kernel layer: unlike
 * KernelTuner (analytic cost model), this one executes every
 * supported dispatch tier × blocking config on the real
 * core/simd_gemm kernels and picks the fastest from best-of-reps
 * wall-clock samples (ties break to the earliest variant in
 * variantSpace order, mirroring tuneExhaustive). Selection is
 * timing-based by design — the NeuroScalar/agentic-operator
 * direction of measuring real variants instead of estimating them —
 * so it is the one sanctioned wall-clock consumer in src/.
 */
class GemmKernelTuner
{
  public:
    explicit GemmKernelTuner(int reps = 3) : reps_(reps) {}

    /** Supported tiers (scalar always included) × blocking configs. */
    static std::vector<GemmVariant> variantSpace();

    /**
     * The extended tier x blocking grid for surrogate tuning: every
     * supported tier x mc {32,64,128,256} x kc {128,256,512,1024} x
     * nc {256,512,1024} — 48 blockings per tier vs the legacy 3.
     */
    static std::vector<GemmVariant> extendedVariantSpace();

    /** Surrogate feature encoding of one (shape, variant) point. */
    static FeatureVec variantFeatures(const FcShape &shape,
                                      const GemmVariant &v);

    /** Run and time every variant on @p shape; pick the fastest. */
    GemmTuneResult tuneMeasured(const FcShape &shape) const;

    /**
     * Surrogate-guided measured tuning over extendedVariantSpace().
     * Seed and verify batches run serially on the calling thread
     * (concurrent timing samples would skew each other); the
     * surrogate trains on best-of-reps seconds, warm-started from
     * @p warm's k nearest measured shapes when given. Timing-based by
     * design, so — unlike the analytic tuners — the chosen variant is
     * not bit-reproducible across machines; the loop accounting
     * (grid size, eval counts) is.
     */
    GemmSurrogateResult
    tuneSurrogate(const FcShape &shape,
                  const GemmVariantDatabase *warm = nullptr,
                  const SurrogateSweepOptions &opts = {}) const;

    /**
     * ANN tuning: adopt the nearest measured shape's variant from
     * @p db (one confirmation timing for the reported numbers).
     * Falls back to tuneMeasured (and records the result) on a miss.
     */
    GemmTuneResult tuneApproximate(const FcShape &shape,
                                   GemmVariantDatabase &db) const;

    /** Measure a corpus into a database. */
    GemmVariantDatabase
    buildDatabase(const std::vector<FcShape> &corpus) const;

  private:
    double measureVariant(const GemmVariant &v, const float *a,
                          const float *b, float *c, const FcShape &s) const;

    int reps_;
};

} // namespace mtia

#endif // MTIA_AUTOTUNE_KERNEL_TUNER_H_
