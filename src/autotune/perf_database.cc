#include "autotune/perf_database.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace mtia {

ShapeKey
shapeKey(const FcShape &shape)
{
    return {std::log2(static_cast<double>(std::max<std::int64_t>(
                1, shape.m))),
            std::log2(static_cast<double>(std::max<std::int64_t>(
                1, shape.n))),
            std::log2(static_cast<double>(std::max<std::int64_t>(
                1, shape.k)))};
}

double
KdTree::dist2(const ShapeKey &a, const ShapeKey &b)
{
    double acc = 0.0;
    for (int i = 0; i < 3; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

KdTree::KdTree(std::vector<ShapeKey> points) : points_(std::move(points))
{
    MTIA_CHECK(!points_.empty()) << ": KdTree over an empty point set";
    std::vector<std::size_t> idx(points_.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    nodes_.reserve(points_.size());
    root_ = build(idx, 0, idx.size(), 0);
}

int
KdTree::build(std::vector<std::size_t> &idx, std::size_t lo,
              std::size_t hi, int depth)
{
    if (lo >= hi)
        return -1;
    const int axis = depth % 3;
    const std::size_t mid = (lo + hi) / 2;
    // Index tie-break on equal coordinates: nth_element's partition
    // of equal keys is otherwise unspecified, and the tree shape
    // must be a pure function of the point sequence.
    std::nth_element(idx.begin() + lo, idx.begin() + mid,
                     idx.begin() + hi,
                     [&](std::size_t a, std::size_t b) {
                         if (points_[a][axis] != points_[b][axis])
                             return points_[a][axis] < points_[b][axis];
                         return a < b;
                     });
    const int node = static_cast<int>(nodes_.size());
    nodes_.push_back(KdNode{idx[mid], axis, -1, -1});
    nodes_[node].left = build(idx, lo, mid, depth + 1);
    nodes_[node].right = build(idx, mid + 1, hi, depth + 1);
    return node;
}

void
KdTree::search(int node, const ShapeKey &q, std::size_t &best,
               double &best_d2) const
{
    if (node < 0)
        return;
    const KdNode &n = nodes_[static_cast<std::size_t>(node)];
    const double d2 = dist2(points_[n.point], q);
    if (d2 < best_d2 || (d2 == best_d2 && n.point < best)) {
        best_d2 = d2;
        best = n.point;
    }
    const double delta = q[n.axis] - points_[n.point][n.axis];
    const int near = delta < 0.0 ? n.left : n.right;
    const int far = delta < 0.0 ? n.right : n.left;
    search(near, q, best, best_d2);
    if (delta * delta <= best_d2)
        search(far, q, best, best_d2);
}

std::size_t
KdTree::nearest(const ShapeKey &q) const
{
    std::size_t best = nodes_[static_cast<std::size_t>(root_)].point;
    double best_d2 = dist2(points_[best], q);
    search(root_, q, best, best_d2);
    return best;
}

void
KdTree::searchK(int node, const ShapeKey &q, std::size_t k,
                std::vector<std::pair<double, std::size_t>> &best) const
{
    if (node < 0)
        return;
    const KdNode &n = nodes_[static_cast<std::size_t>(node)];
    const std::pair<double, std::size_t> cand{dist2(points_[n.point], q),
                                              n.point};
    // `best` stays sorted by (distance, index): insert in place, drop
    // the worst once over capacity. The lexicographic comparison is
    // the deterministic tie-break.
    const auto pos = std::lower_bound(best.begin(), best.end(), cand);
    if (pos != best.end() || best.size() < k) {
        best.insert(pos, cand);
        if (best.size() > k)
            best.pop_back();
    }
    const double delta = q[n.axis] - points_[n.point][n.axis];
    const int near = delta < 0.0 ? n.left : n.right;
    const int far = delta < 0.0 ? n.right : n.left;
    searchK(near, q, k, best);
    // Visit the far side while the candidate set is unfilled, and on
    // exact distance ties (<=) so equal-distance points still compete
    // on index.
    if (best.size() < k || delta * delta <= best.back().first)
        searchK(far, q, k, best);
}

std::vector<std::size_t>
KdTree::nearestK(const ShapeKey &q, std::size_t k) const
{
    std::vector<std::pair<double, std::size_t>> best;
    if (k == 0)
        return {};
    best.reserve(k + 1);
    searchK(root_, q, k, best);
    std::vector<std::size_t> out;
    out.reserve(best.size());
    for (const auto &[d2, idx] : best)
        out.push_back(idx);
    return out;
}

void
PerfDatabase::insert(PerfEntry entry)
{
    entries_.push_back(std::move(entry));
    dirty_ = true;
}

void
PerfDatabase::rebuild() const
{
    std::vector<ShapeKey> keys;
    keys.reserve(entries_.size());
    for (const auto &e : entries_)
        keys.push_back(shapeKey(e.shape));
    tree_ = std::make_unique<KdTree>(std::move(keys));
    dirty_ = false;
}

std::optional<PerfEntry>
PerfDatabase::lookup(const FcShape &shape) const
{
    if (entries_.empty())
        return std::nullopt;
    if (dirty_ || !tree_)
        rebuild();
    return entries_[tree_->nearest(shapeKey(shape))];
}

std::vector<PerfEntry>
PerfDatabase::lookupK(const FcShape &shape, std::size_t k) const
{
    if (entries_.empty() || k == 0)
        return {};
    if (dirty_ || !tree_)
        rebuild();
    std::vector<PerfEntry> out;
    for (std::size_t idx : tree_->nearestK(shapeKey(shape), k))
        out.push_back(entries_[idx]);
    return out;
}

std::string
GemmVariant::name() const
{
    return std::string(simd::isaName(isa)) + "/mc" +
           std::to_string(blocking.mc) + ".kc" +
           std::to_string(blocking.kc) + ".nc" +
           std::to_string(blocking.nc);
}

void
GemmVariantDatabase::insert(GemmPerfEntry entry)
{
    entries_.push_back(std::move(entry));
    dirty_ = true;
}

void
GemmVariantDatabase::rebuild() const
{
    std::vector<ShapeKey> keys;
    keys.reserve(entries_.size());
    for (const auto &e : entries_)
        keys.push_back(shapeKey(e.shape));
    tree_ = std::make_unique<KdTree>(std::move(keys));
    dirty_ = false;
}

std::optional<GemmPerfEntry>
GemmVariantDatabase::lookup(const FcShape &shape) const
{
    if (entries_.empty())
        return std::nullopt;
    if (dirty_ || !tree_)
        rebuild();
    return entries_[tree_->nearest(shapeKey(shape))];
}

std::vector<GemmPerfEntry>
GemmVariantDatabase::lookupK(const FcShape &shape, std::size_t k) const
{
    if (entries_.empty() || k == 0)
        return {};
    if (dirty_ || !tree_)
        rebuild();
    std::vector<GemmPerfEntry> out;
    for (std::size_t idx : tree_->nearestK(shapeKey(shape), k))
        out.push_back(entries_[idx]);
    return out;
}

} // namespace mtia
