#ifndef MTIA_AUTOTUNE_COALESCING_TUNER_H_
#define MTIA_AUTOTUNE_COALESCING_TUNER_H_

/**
 * @file
 * Request-coalescing autotuning (Section 4.1): sweep the coalescing
 * window and the number of parallel windows against a replayed
 * traffic trace, scoring each configuration by batch fill (the paper
 * reaches >95% requests per batch) and added wait under the SLO.
 */

#include <vector>

#include "autotune/surrogate.h"
#include "models/workload.h"
#include "serving/coalescer.h"

namespace mtia {

/** One evaluated coalescing configuration. */
struct CoalescingCandidate
{
    CoalescerConfig config;
    CoalescerStats stats;
    double score = 0.0;
};

/** Result of a surrogate-guided coalescing sweep. */
struct CoalescingSurrogateResult
{
    CoalescingCandidate best;
    SurrogateSweepResult loop;
    std::size_t grid_size = 0; ///< (window, parallel) cells considered
};

/** The coalescing tuner. */
class CoalescingTuner
{
  public:
    /**
     * @param max_wait Wait budget: mean coalescing delay must stay
     *        below this slice of the latency SLO.
     */
    explicit CoalescingTuner(Tick max_wait = fromMillis(10.0))
        : max_wait_(max_wait) {}

    /**
     * Sweep windows x parallel-window counts over the trace; returns
     * all candidates, best first.
     */
    std::vector<CoalescingCandidate>
    sweep(const std::vector<Request> &trace,
          std::int64_t batch_capacity,
          const std::vector<Tick> &windows,
          const std::vector<unsigned> &parallel_options) const;

    /**
     * Surrogate-guided sweep over the same (window x parallel) grid
     * (explore -> predict -> verify, autotune/surrogate.h): the full
     * trace is replayed only for the seed batch and the predicted
     * top-k cells, which is what makes window grids 100x denser than
     * sweep()'s affordable. Maximizes the same score sweep() sorts
     * by (the surrogate trains on its negation); the winner equals
     * sweep(...).front() on the same grid, including grid-order
     * tie-breaking. With the surrogate disabled this is a
     * bit-identical exhaustive sweep.
     */
    CoalescingSurrogateResult
    sweepSurrogate(const std::vector<Request> &trace,
                   std::int64_t batch_capacity,
                   const std::vector<Tick> &windows,
                   const std::vector<unsigned> &parallel_options,
                   const SurrogateSweepOptions &opts = {}) const;

  private:
    /** Replay the trace under @p config and score it (the quantity
     *  sweep() maximizes). */
    CoalescingCandidate evalCell(const std::vector<Request> &trace,
                                 const CoalescerConfig &config) const;

    Tick max_wait_;
};

} // namespace mtia

#endif // MTIA_AUTOTUNE_COALESCING_TUNER_H_
