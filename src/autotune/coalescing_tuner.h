#ifndef MTIA_AUTOTUNE_COALESCING_TUNER_H_
#define MTIA_AUTOTUNE_COALESCING_TUNER_H_

/**
 * @file
 * Request-coalescing autotuning (Section 4.1): sweep the coalescing
 * window and the number of parallel windows against a replayed
 * traffic trace, scoring each configuration by batch fill (the paper
 * reaches >95% requests per batch) and added wait under the SLO.
 */

#include <vector>

#include "models/workload.h"
#include "serving/coalescer.h"

namespace mtia {

/** One evaluated coalescing configuration. */
struct CoalescingCandidate
{
    CoalescerConfig config;
    CoalescerStats stats;
    double score = 0.0;
};

/** The coalescing tuner. */
class CoalescingTuner
{
  public:
    /**
     * @param max_wait Wait budget: mean coalescing delay must stay
     *        below this slice of the latency SLO.
     */
    explicit CoalescingTuner(Tick max_wait = fromMillis(10.0))
        : max_wait_(max_wait) {}

    /**
     * Sweep windows x parallel-window counts over the trace; returns
     * all candidates, best first.
     */
    std::vector<CoalescingCandidate>
    sweep(const std::vector<Request> &trace,
          std::int64_t batch_capacity,
          const std::vector<Tick> &windows,
          const std::vector<unsigned> &parallel_options) const;

  private:
    Tick max_wait_;
};

} // namespace mtia

#endif // MTIA_AUTOTUNE_COALESCING_TUNER_H_
