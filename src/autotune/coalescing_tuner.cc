#include "autotune/coalescing_tuner.h"

#include <algorithm>

#include "core/parallel.h"

namespace mtia {

std::vector<CoalescingCandidate>
CoalescingTuner::sweep(const std::vector<Request> &trace,
                       std::int64_t batch_capacity,
                       const std::vector<Tick> &windows,
                       const std::vector<unsigned> &parallel_options)
    const
{
    // Materialize the (window, parallel) grid first so each cell is a
    // pure function of its index; cells replay the shared read-only
    // trace concurrently and land in grid order before the sort.
    std::vector<CoalescerConfig> grid;
    for (Tick window : windows)
        for (unsigned parallel : parallel_options)
            grid.push_back(
                CoalescerConfig{window, parallel, batch_capacity});

    std::vector<CoalescingCandidate> out = parallelMap(
        grid.size(), [&](std::size_t i) {
            CoalescingCandidate c;
            c.config = grid[i];
            Coalescer coalescer(c.config);
            c.stats = Coalescer::stats(coalescer.coalesce(trace));
            // Score: batch fill, discounted heavily once the mean
            // wait exceeds the budget (throughput at P99 SLO is what
            // the paper optimizes).
            c.score = c.stats.mean_fill;
            if (c.stats.mean_wait > max_wait_) {
                c.score *= static_cast<double>(max_wait_) /
                    static_cast<double>(c.stats.mean_wait);
            }
            return c;
        });
    // stable_sort keeps equal-score candidates in grid order, so the
    // ranking never depends on the thread schedule.
    std::stable_sort(out.begin(), out.end(),
                     [](const CoalescingCandidate &a,
                        const CoalescingCandidate &b) {
                         return a.score > b.score;
                     });
    return out;
}

} // namespace mtia
