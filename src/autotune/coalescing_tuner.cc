#include "autotune/coalescing_tuner.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"

namespace mtia {

CoalescingCandidate
CoalescingTuner::evalCell(const std::vector<Request> &trace,
                          const CoalescerConfig &config) const
{
    CoalescingCandidate c;
    c.config = config;
    Coalescer coalescer(c.config);
    c.stats = Coalescer::stats(coalescer.coalesce(trace));
    // Score: batch fill, discounted heavily once the mean wait
    // exceeds the budget (throughput at P99 SLO is what the paper
    // optimizes).
    c.score = c.stats.mean_fill;
    if (c.stats.mean_wait > max_wait_) {
        c.score *= static_cast<double>(max_wait_) /
            static_cast<double>(c.stats.mean_wait);
    }
    return c;
}

std::vector<CoalescingCandidate>
CoalescingTuner::sweep(const std::vector<Request> &trace,
                       std::int64_t batch_capacity,
                       const std::vector<Tick> &windows,
                       const std::vector<unsigned> &parallel_options)
    const
{
    // Materialize the (window, parallel) grid first so each cell is a
    // pure function of its index; cells replay the shared read-only
    // trace concurrently and land in grid order before the sort.
    std::vector<CoalescerConfig> grid;
    for (Tick window : windows)
        for (unsigned parallel : parallel_options)
            grid.push_back(
                CoalescerConfig{window, parallel, batch_capacity});

    std::vector<CoalescingCandidate> out = parallelMap(
        grid.size(),
        [&](std::size_t i) { return evalCell(trace, grid[i]); });
    // stable_sort keeps equal-score candidates in grid order, so the
    // ranking never depends on the thread schedule.
    std::stable_sort(out.begin(), out.end(),
                     [](const CoalescingCandidate &a,
                        const CoalescingCandidate &b) {
                         return a.score > b.score;
                     });
    return out;
}

CoalescingSurrogateResult
CoalescingTuner::sweepSurrogate(
    const std::vector<Request> &trace, std::int64_t batch_capacity,
    const std::vector<Tick> &windows,
    const std::vector<unsigned> &parallel_options,
    const SurrogateSweepOptions &opts) const
{
    std::vector<CoalescerConfig> grid;
    for (Tick window : windows)
        for (unsigned parallel : parallel_options)
            grid.push_back(
                CoalescerConfig{window, parallel, batch_capacity});

    // Minimizing -score with first-minimum tie-breaking picks the
    // same cell sweep()'s stable descending sort puts first.
    const SurrogateSweepResult loop = surrogateArgmin(
        grid.size(),
        [&](std::size_t i) {
            FeatureVec f{};
            f[0] = std::log2(
                std::max(1.0, static_cast<double>(grid[i].window)));
            f[1] = static_cast<double>(grid[i].parallel_windows);
            f[2] = std::log2(std::max(
                1.0, static_cast<double>(grid[i].batch_capacity)));
            return f;
        },
        [&](std::size_t i) { return -evalCell(trace, grid[i]).score; },
        opts);

    CoalescingSurrogateResult r;
    // Re-derive the winner's stats (deterministic, one extra replay)
    // so callers get the same CoalescingCandidate sweep() would.
    r.best = evalCell(trace, grid[loop.best_index]);
    r.loop = loop;
    r.grid_size = grid.size();
    return r;
}

} // namespace mtia
