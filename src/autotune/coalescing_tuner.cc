#include "autotune/coalescing_tuner.h"

#include <algorithm>

namespace mtia {

std::vector<CoalescingCandidate>
CoalescingTuner::sweep(const std::vector<Request> &trace,
                       std::int64_t batch_capacity,
                       const std::vector<Tick> &windows,
                       const std::vector<unsigned> &parallel_options)
    const
{
    std::vector<CoalescingCandidate> out;
    for (Tick window : windows) {
        for (unsigned parallel : parallel_options) {
            CoalescingCandidate c;
            c.config = CoalescerConfig{window, parallel,
                                       batch_capacity};
            Coalescer coalescer(c.config);
            c.stats = Coalescer::stats(coalescer.coalesce(trace),
                                       c.config);
            // Score: batch fill, discounted heavily once the mean
            // wait exceeds the budget (throughput at P99 SLO is what
            // the paper optimizes).
            c.score = c.stats.mean_fill;
            if (c.stats.mean_wait > max_wait_) {
                c.score *= static_cast<double>(max_wait_) /
                    static_cast<double>(c.stats.mean_wait);
            }
            out.push_back(c);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const CoalescingCandidate &a,
                 const CoalescingCandidate &b) {
                  return a.score > b.score;
              });
    return out;
}

} // namespace mtia
