#include "autotune/batch_tuner.h"

#include "graph/fusion.h"
#include "core/check.h"
#include "core/parallel.h"

namespace mtia {

BatchCandidate
BatchSizeTuner::evalOne(const ModelBuilder &builder, std::int64_t batch,
                        Tick slo) const
{
    // Each evaluation owns its model snapshot and a device clone:
    // graph evaluation fills lazy shape caches and cost queries bump
    // the device's mutable traffic counters, so concurrent snapshot
    // evaluations must not share either.
    ModelInfo model = builder(batch);
    optimizeGraph(model.graph);
    Device dev = dev_.cloneConfigured();
    GraphCostModel gcm(dev);
    BatchCandidate c;
    c.batch = batch;
    c.cost = gcm.evaluate(model.graph, static_cast<double>(batch));
    c.meets_slo = c.cost.latency <= slo;
    return c;
}

std::vector<BatchCandidate>
BatchSizeTuner::evaluate(const ModelBuilder &builder,
                         const std::vector<std::int64_t> &candidates,
                         Tick slo, std::size_t &winner) const
{
    MTIA_CHECK(!candidates.empty())
        << ": BatchSizeTuner needs candidate batch sizes";
    // One snapshot per candidate batch, evaluated concurrently;
    // results land in candidate order so the winner scan below is
    // schedule-independent.
    std::vector<BatchCandidate> out = parallelMap(
        candidates.size(),
        [&](std::size_t i) { return evalOne(builder, candidates[i], slo); });

    winner = 0;
    bool any_slo = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].meets_slo) {
            if (!any_slo || out[i].cost.qps > out[winner].cost.qps)
                winner = i;
            any_slo = true;
        }
    }
    if (!any_slo) {
        for (std::size_t i = 1; i < out.size(); ++i) {
            if (out[i].cost.latency < out[winner].cost.latency)
                winner = i;
        }
    }
    return out;
}

BatchCandidate
BatchSizeTuner::tuneWithPlacementFallback(const ModelBuilder &builder,
                                          std::int64_t batch,
                                          Tick slo) const
{
    BatchCandidate current = evalOne(builder, batch, slo);
    if (current.cost.activations_fit_lls)
        return current;
    // Walk down to the nearest power-of-two batch whose activations
    // fit, then keep the faster option (Section 4.1).
    std::int64_t lower = batch / 2;
    while (lower >= 1) {
        BatchCandidate candidate = evalOne(builder, lower, slo);
        if (candidate.cost.activations_fit_lls) {
            return candidate.cost.qps >= current.cost.qps ? candidate
                                                          : current;
        }
        lower /= 2;
    }
    return current;
}

} // namespace mtia
