#include "autotune/batch_tuner.h"

#include <algorithm>
#include <cmath>

#include "graph/fusion.h"
#include "core/check.h"
#include "core/parallel.h"

namespace mtia {

namespace {

/**
 * Scalar cost the surrogate trains on, encoding evaluate()'s winner
 * rule as a minimization: SLO-meeting snapshots compete on -qps
 * (higher throughput is cheaper), violators all cost more than any
 * meeting snapshot and compete on latency. The penalty dwarfs any
 * real latency (picoticks; < 1e16 for sub-hour snapshots) while
 * keeping training arithmetic finite.
 */
constexpr double kSloPenalty = 1e18;

double
batchCost(const BatchCandidate &c)
{
    if (c.meets_slo)
        return -c.cost.qps;
    return kSloPenalty + static_cast<double>(c.cost.latency);
}

} // namespace

BatchCandidate
BatchSizeTuner::evalOne(const ModelBuilder &builder, std::int64_t batch,
                        Tick slo) const
{
    // Each evaluation owns its model snapshot and a device clone:
    // graph evaluation fills lazy shape caches and cost queries bump
    // the device's mutable traffic counters, so concurrent snapshot
    // evaluations must not share either.
    ModelInfo model = builder(batch);
    optimizeGraph(model.graph);
    Device dev = dev_.cloneConfigured();
    GraphCostModel gcm(dev);
    BatchCandidate c;
    c.batch = batch;
    c.cost = gcm.evaluate(model.graph, static_cast<double>(batch));
    c.meets_slo = c.cost.latency <= slo;
    return c;
}

std::vector<BatchCandidate>
BatchSizeTuner::evaluate(const ModelBuilder &builder,
                         const std::vector<std::int64_t> &candidates,
                         Tick slo, std::size_t &winner) const
{
    MTIA_CHECK(!candidates.empty())
        << ": BatchSizeTuner needs candidate batch sizes";
    // One snapshot per candidate batch, evaluated concurrently;
    // results land in candidate order so the winner scan below is
    // schedule-independent.
    std::vector<BatchCandidate> out = parallelMap(
        candidates.size(),
        [&](std::size_t i) { return evalOne(builder, candidates[i], slo); });

    winner = 0;
    bool any_slo = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].meets_slo) {
            if (!any_slo || out[i].cost.qps > out[winner].cost.qps)
                winner = i;
            any_slo = true;
        }
    }
    if (!any_slo) {
        for (std::size_t i = 1; i < out.size(); ++i) {
            if (out[i].cost.latency < out[winner].cost.latency)
                winner = i;
        }
    }
    return out;
}

BatchSurrogateResult
BatchSizeTuner::tuneSurrogate(const ModelBuilder &builder,
                              const std::vector<std::int64_t> &candidates,
                              Tick slo,
                              const SurrogateSweepOptions &opts) const
{
    MTIA_CHECK(!candidates.empty())
        << ": BatchSizeTuner needs candidate batch sizes";
    const SurrogateSweepResult loop = surrogateArgmin(
        candidates.size(),
        [&](std::size_t i) {
            FeatureVec f{};
            f[0] = std::log2(static_cast<double>(
                std::max<std::int64_t>(1, candidates[i])));
            f[1] = static_cast<double>(candidates[i]);
            return f;
        },
        [&](std::size_t i) {
            return batchCost(evalOne(builder, candidates[i], slo));
        },
        opts);

    BatchSurrogateResult r;
    // Re-derive the winner's full snapshot (deterministic, one extra
    // model build) so callers get the same BatchCandidate evaluate()
    // would hand them.
    r.best = evalOne(builder, candidates[loop.best_index], slo);
    r.loop = loop;
    r.grid_size = candidates.size();
    return r;
}

BatchCandidate
BatchSizeTuner::tuneWithPlacementFallback(const ModelBuilder &builder,
                                          std::int64_t batch,
                                          Tick slo) const
{
    BatchCandidate current = evalOne(builder, batch, slo);
    if (current.cost.activations_fit_lls)
        return current;
    // Walk down to the nearest power-of-two batch whose activations
    // fit, then keep the faster option (Section 4.1).
    std::int64_t lower = batch / 2;
    while (lower >= 1) {
        BatchCandidate candidate = evalOne(builder, lower, slo);
        if (candidate.cost.activations_fit_lls) {
            return candidate.cost.qps >= current.cost.qps ? candidate
                                                          : current;
        }
        lower /= 2;
    }
    return current;
}

} // namespace mtia
