#ifndef MTIA_AUTOTUNE_SHARDING_H_
#define MTIA_AUTOTUNE_SHARDING_H_

/**
 * @file
 * Model-sharding autotuning (Section 4.1) and NUMA-aware placement on
 * the Grand Teton server (Section 3.4): a model whose embeddings plus
 * runtime buffers exceed one device's DRAM is sharded across devices,
 * and sharded models must land on modules behind the same PCIe
 * switch / CPU socket.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "chip/chip_config.h"
#include "sim/types.h"

namespace mtia {

/** Topology of one MTIA 2i server (Section 3.4). */
struct ServerTopology
{
    unsigned sockets = 2;
    unsigned modules_per_socket = 6;
    unsigned chips_per_module = 2;

    unsigned
    totalChips() const
    {
        return sockets * modules_per_socket * chips_per_module;
    }

    /** Socket owning a given chip index. */
    unsigned
    socketOf(unsigned chip) const
    {
        return chip / (modules_per_socket * chips_per_module);
    }

    /** Module (global index) owning a given chip index. */
    unsigned
    moduleOf(unsigned chip) const
    {
        return chip / chips_per_module;
    }
};

/** A sharding decision. */
struct ShardingPlan
{
    unsigned shards = 1;
    Bytes bytes_per_shard = 0;
    /** Chip indices chosen on the server (NUMA-aware). */
    std::vector<unsigned> chips;
};

/** The sharding planner. */
class ShardingPlanner
{
  public:
    ShardingPlanner(const ChipConfig &chip, ServerTopology topo = {})
        : chip_(chip), topo_(topo) {}

    /**
     * Number of shards needed for a model with @p embedding_bytes of
     * tables and @p runtime_bytes of buffers per shard.
     */
    unsigned shardsNeeded(Bytes embedding_bytes,
                          Bytes runtime_bytes) const;

    /**
     * Plan shard placement starting from the first free chip in
     * @p occupied (bitmap by chip index). All shards of one model are
     * placed on modules behind the same socket; returns an empty chip
     * list when that is impossible.
     */
    ShardingPlan plan(Bytes embedding_bytes, Bytes runtime_bytes,
                      const std::vector<bool> &occupied) const;

  private:
    ChipConfig chip_;
    ServerTopology topo_;
};

} // namespace mtia

#endif // MTIA_AUTOTUNE_SHARDING_H_
