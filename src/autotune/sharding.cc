#include "autotune/sharding.h"

#include "core/check.h"
#include "sim/logging.h"

namespace mtia {

unsigned
ShardingPlanner::shardsNeeded(Bytes embedding_bytes,
                              Bytes runtime_bytes) const
{
    const Bytes capacity = chip_.lpddr.capacity;
    if (runtime_bytes >= capacity)
        MTIA_FATAL("ShardingPlanner: runtime buffers alone exceed "
                   "device DRAM");
    const Bytes usable = capacity - runtime_bytes;
    return static_cast<unsigned>((embedding_bytes + usable - 1) /
                                 usable);
}

ShardingPlan
ShardingPlanner::plan(Bytes embedding_bytes, Bytes runtime_bytes,
                      const std::vector<bool> &occupied) const
{
    ShardingPlan out;
    out.shards =
        std::max(1u, shardsNeeded(embedding_bytes, runtime_bytes));
    out.bytes_per_shard = embedding_bytes / out.shards + runtime_bytes;

    MTIA_CHECK_GE(occupied.size(), topo_.totalChips())
        << ": ShardingPlanner occupancy bitmap too small";

    // NUMA-aware: find a socket with enough free chips, preferring
    // chips that share modules (minimizes PCIe-switch hops for P2P).
    for (unsigned socket = 0; socket < topo_.sockets; ++socket) {
        std::vector<unsigned> free_chips;
        for (unsigned chip = 0; chip < topo_.totalChips(); ++chip) {
            if (topo_.socketOf(chip) == socket && !occupied[chip])
                free_chips.push_back(chip);
        }
        if (free_chips.size() >= out.shards) {
            out.chips.assign(free_chips.begin(),
                             free_chips.begin() + out.shards);
            return out;
        }
    }
    out.chips.clear(); // no socket can host the sharded model
    return out;
}

} // namespace mtia
