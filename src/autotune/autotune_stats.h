#ifndef MTIA_AUTOTUNE_AUTOTUNE_STATS_H_
#define MTIA_AUTOTUNE_AUTOTUNE_STATS_H_

/**
 * @file
 * Process-wide counters for surrogate-guided autotuning, following
 * the core/numerics_stats.h pattern: header-only atomics the tuning
 * loop bumps without linking telemetry, published into a
 * MetricRegistry by callers that hold one via
 * publishAutotuneMetrics().
 *
 * surrogate_evals counts model predictions, real_evals counts calls
 * into the real analytic/DES/measured evaluator, and the MAE pair
 * (absolute-error sum + sample count) backs the
 * autotune.surrogate_mae gauge. All are monotonic totals under
 * relaxed atomics (attribution, not synchronization), deterministic
 * for a deterministic workload, and resettable for tests/benches.
 */

#include <atomic>
#include <cstdint>

namespace mtia::autotune {

namespace detail {

inline std::atomic<std::uint64_t> &
surrogateEvalsCounter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

inline std::atomic<std::uint64_t> &
realEvalsCounter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

inline std::atomic<double> &
maeSumCounter()
{
    static std::atomic<double> c{0.0};
    return c;
}

inline std::atomic<std::uint64_t> &
maeSamplesCounter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

inline void
atomicAddDouble(std::atomic<double> &target, double by)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + by,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace detail

/** Note @p n surrogate predictions issued by a tuning sweep. */
inline void
noteSurrogateEvals(std::uint64_t n)
{
    detail::surrogateEvalsCounter().fetch_add(n,
                                              std::memory_order_relaxed);
}

/** Note @p n real (analytic/DES/measured) evaluator calls. */
inline void
noteRealEvals(std::uint64_t n)
{
    detail::realEvalsCounter().fetch_add(n, std::memory_order_relaxed);
}

/** Note @p samples verified predictions with absolute-error sum
 *  @p abs_error_sum. */
inline void
noteSurrogateError(double abs_error_sum, std::uint64_t samples)
{
    detail::atomicAddDouble(detail::maeSumCounter(), abs_error_sum);
    detail::maeSamplesCounter().fetch_add(samples,
                                          std::memory_order_relaxed);
}

inline std::uint64_t
surrogateEvals()
{
    return detail::surrogateEvalsCounter().load(std::memory_order_relaxed);
}

inline std::uint64_t
realEvals()
{
    return detail::realEvalsCounter().load(std::memory_order_relaxed);
}

/** Mean |prediction - real| over every verified prediction so far
 *  (0 before any verification). */
inline double
surrogateMae()
{
    const std::uint64_t n =
        detail::maeSamplesCounter().load(std::memory_order_relaxed);
    if (n == 0)
        return 0.0;
    return detail::maeSumCounter().load(std::memory_order_relaxed) /
           static_cast<double>(n);
}

/** Zero all autotune counters (tests and bench isolation). */
inline void
resetStats()
{
    detail::surrogateEvalsCounter().store(0, std::memory_order_relaxed);
    detail::realEvalsCounter().store(0, std::memory_order_relaxed);
    detail::maeSumCounter().store(0.0, std::memory_order_relaxed);
    detail::maeSamplesCounter().store(0, std::memory_order_relaxed);
}

/**
 * Copy the current totals into @p registry as the
 * autotune.{surrogate_evals,real_evals} counters and the
 * autotune.surrogate_mae gauge, following publishNumericsMetrics.
 * Templated so this header stays free of a telemetry dependency;
 * instantiate with telemetry::MetricRegistry.
 */
template <typename Registry>
inline void
publishAutotuneMetrics(Registry &registry)
{
    registry.counter("autotune.surrogate_evals").inc(surrogateEvals());
    registry.counter("autotune.real_evals").inc(realEvals());
    registry.gauge("autotune.surrogate_mae").set(surrogateMae());
}

} // namespace mtia::autotune

#endif // MTIA_AUTOTUNE_AUTOTUNE_STATS_H_
