#ifndef MTIA_AUTOTUNE_SURROGATE_H_
#define MTIA_AUTOTUNE_SURROGATE_H_

/**
 * @file
 * Learned cost surrogate for the autotuners (the NeuroScalar
 * direction): a deterministic, dependency-free regression model
 * trained online from the sweep's own (feature -> measured cost)
 * samples, so a tuner can *predict* the cost of every point in a
 * 100-1000x larger candidate grid and pay the real analytic/DES/
 * measured evaluation only for a small seed batch plus the top-k
 * predicted candidates.
 *
 * Two backends sit behind one CostSurrogate interface:
 *
 *  - GradientBoostedStumps (default): an additive ensemble of
 *    depth-1 regression trees fitted to residuals. Thresholds are
 *    midpoints of sorted unique feature values; every argmin breaks
 *    ties toward the lowest feature index, then the lowest threshold,
 *    so the fitted model is a pure function of the training set.
 *  - TinyMlp: a 10-16-1 tanh network, weights initialized from a
 *    fixed-seed Rng and trained by full-batch gradient descent over a
 *    fixed epoch count on standardized features/targets.
 *
 * Determinism rules (the same contract as core/parallel.h): training
 * and prediction are serial double-precision arithmetic with a fixed
 * iteration order — same samples give a byte-identical model and
 * byte-identical predictions at any MTIA_THREADS. The explore ->
 * predict -> verify loop below only ever touches the lane pool
 * through parallelMap with per-index pure evaluators, so its outputs
 * are byte-identical at any lane count too.
 *
 * The MTIA_SURROGATE environment variable (or a ScopedSurrogate
 * override) gates the whole subsystem: when off ("0"), the loop
 * degrades to the legacy exhaustive path — every candidate is
 * evaluated for real, bit-identically to a plain parallelMap sweep —
 * which is the reference the zero-regret bench gate compares against.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mtia {

/** Fixed-width surrogate feature vector; unused trailing slots stay 0. */
constexpr std::size_t kSurrogateFeatures = 10;
using FeatureVec = std::array<double, kSurrogateFeatures>;

/** Which learned backend a sweep trains. */
enum class SurrogateKind : std::uint8_t {
    Stumps, ///< gradient-boosted regression stumps (default)
    Mlp,    ///< tiny fixed-seed multilayer perceptron
};

/** Human-readable backend name ("stumps" / "mlp"). */
const char *surrogateKindName(SurrogateKind kind);

/**
 * One trained cost model: fit() on (features -> cost) samples, then
 * predict() anywhere in feature space. Implementations are
 * deterministic (see the file comment) and cheap enough to retrain
 * from scratch inside every tuning call.
 */
class CostSurrogate
{
  public:
    virtual ~CostSurrogate() = default;

    /**
     * Train from scratch on @p x / @p y (same length, nonempty).
     * Calling fit again discards the previous model.
     */
    virtual void fit(const std::vector<FeatureVec> &x,
                     const std::vector<double> &y) = 0;

    /** Predicted cost at @p x. @pre fit() has run. */
    virtual double predict(const FeatureVec &x) const = 0;

    /**
     * Deterministic dump of every fitted parameter (hex-float text):
     * byte-equal dumps mean byte-equal models, which is what the
     * lane-invariance tests diff.
     */
    virtual std::string describe() const = 0;

    /** Backend name, e.g. "stumps". */
    virtual const char *name() const = 0;
};

/** Construct an untrained surrogate of the given kind. */
std::unique_ptr<CostSurrogate> makeSurrogate(SurrogateKind kind);

/**
 * Whether surrogate-guided tuning is on: the innermost live
 * ScopedSurrogate if any, else MTIA_SURROGATE (off only when set to
 * exactly "0"), else on.
 */
bool surrogateEnabled();

/**
 * RAII override of surrogateEnabled() for tests and benches: while
 * alive on this thread, the surrogate path is forced on or off
 * independent of the environment. Scopes nest; the innermost wins.
 */
class ScopedSurrogate
{
  public:
    explicit ScopedSurrogate(bool enabled);
    ~ScopedSurrogate();

    ScopedSurrogate(const ScopedSurrogate &) = delete;
    ScopedSurrogate &operator=(const ScopedSurrogate &) = delete;

  private:
    bool prev_value_;
    bool prev_active_;
};

/** Tuning-loop knobs. Defaults suit grids of a few hundred to a few
 *  thousand candidates. */
struct SurrogateSweepOptions
{
    /** Real evaluations used to train the model (evenly strided over
     *  the grid, first and last candidate always included). */
    std::size_t seed_count = 24;
    /** Predicted-best candidates re-checked with the real evaluator. */
    std::size_t top_k = 8;
    /** Backend to train. */
    SurrogateKind kind = SurrogateKind::Stumps;
    /**
     * Warm-start samples (typically k-nearest entries from a
     * PerfDatabase/GemmVariantDatabase KD-tree): extra training rows
     * prepended to the seed batch. They never count as real
     * evaluations of this grid and are never selection candidates.
     */
    std::vector<FeatureVec> warm_features;
    std::vector<double> warm_costs;
    /**
     * Evaluate seed/verify batches serially on the calling thread
     * instead of through the lane pool. Timing-based evaluators
     * (GemmKernelTuner) set this so concurrent samples cannot skew
     * each other.
     */
    bool serial_eval = false;
};

/** What one explore -> predict -> verify sweep did and found. */
struct SurrogateSweepResult
{
    /** Grid index of the chosen candidate (lowest real cost among all
     *  really-evaluated candidates; lowest index wins ties). */
    std::size_t best_index = 0;
    /** Real cost of the chosen candidate. */
    double best_cost = 0.0;
    /** Model predictions for the whole grid (empty on the exhaustive
     *  fallback path). */
    std::vector<double> predicted;
    /** Grid indices evaluated for real, ascending. */
    std::vector<std::size_t> measured;
    /** Real costs aligned with @c measured. */
    std::vector<double> measured_cost;
    /** Predictions issued (grid size when the surrogate ran, else 0). */
    std::size_t surrogate_evals = 0;
    /** Real evaluator calls (seed + verify, or the whole grid). */
    std::size_t real_evals = 0;
    /** Mean |prediction - real| over the verified top-k (0 when the
     *  surrogate did not run). */
    double mae = 0.0;
    /** False when the sweep fell back to exhaustive evaluation
     *  (surrogate disabled or the grid is small enough to measure). */
    bool used_surrogate = false;
};

/**
 * The shared explore -> predict -> verify loop. Minimizes
 * @p real_cost over the candidate grid [0, n):
 *
 *  1. really evaluate an evenly-strided seed batch,
 *  2. train a surrogate on warm-start + seed samples — targets in
 *     asinh space, so 1e18 penalty tiers don't drown the feasible
 *     region's resolution (monotone: ranking is unaffected),
 *  3. predict all n candidates and rank by (prediction, index),
 *  4. really evaluate the top-k not already measured,
 *  5. return the argmin of real cost over everything measured
 *     (lowest index wins ties).
 *
 * @p feature and @p real_cost must be pure functions of the index
 * (plus read-only captures) — the parallelFor contract. When the
 * surrogate is disabled, or n <= seed_count + top_k, every candidate
 * is evaluated for real instead (the legacy exhaustive path,
 * bit-identical to a plain sweep).
 *
 * Every call feeds the autotune.{surrogate_evals,real_evals,
 * surrogate_mae} process-wide stats (autotune_stats.h).
 */
SurrogateSweepResult
surrogateArgmin(std::size_t n,
                const std::function<FeatureVec(std::size_t)> &feature,
                const std::function<double(std::size_t)> &real_cost,
                const SurrogateSweepOptions &opts = {});

} // namespace mtia

#endif // MTIA_AUTOTUNE_SURROGATE_H_
