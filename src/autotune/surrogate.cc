#include "autotune/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "autotune/autotune_stats.h"
#include "core/check.h"
#include "core/parallel.h"
#include "sim/random.h"

namespace mtia {

const char *
surrogateKindName(SurrogateKind kind)
{
    switch (kind) {
    case SurrogateKind::Stumps:
        return "stumps";
    case SurrogateKind::Mlp:
        return "mlp";
    }
    MTIA_UNREACHABLE("bad SurrogateKind");
}

namespace {

/** Hex-float printing: round-trip exact, so describe() dumps are
 *  byte-comparable across runs and lane counts. */
void
hexDouble(std::ostringstream &os, double v)
{
    os << std::hexfloat << v << std::defaultfloat;
}

// ------------------------------------------------------ stump boosting

class GradientBoostedStumps final : public CostSurrogate
{
  public:
    void
    fit(const std::vector<FeatureVec> &x,
        const std::vector<double> &y) override
    {
        MTIA_CHECK(!x.empty()) << ": surrogate fit on an empty sample set";
        MTIA_CHECK_EQ(x.size(), y.size())
            << ": surrogate features/costs length mismatch";
        stumps_.clear();
        const std::size_t n = x.size();
        base_ = std::accumulate(y.begin(), y.end(), 0.0) /
            static_cast<double>(n);

        // Per-feature index order, sorted by (value, index): the scan
        // below visits thresholds ascending, so the first strict
        // improvement is the lowest (feature, threshold) pair and the
        // fitted model is a pure function of the training set.
        std::array<std::vector<std::size_t>, kSurrogateFeatures> order;
        for (std::size_t f = 0; f < kSurrogateFeatures; ++f) {
            order[f].resize(n);
            std::iota(order[f].begin(), order[f].end(), std::size_t{0});
            std::sort(order[f].begin(), order[f].end(),
                      [&](std::size_t a, std::size_t b) {
                          if (x[a][f] != x[b][f])
                              return x[a][f] < x[b][f];
                          return a < b;
                      });
        }

        std::vector<double> resid(y);
        for (double &r : resid)
            r -= base_;

        for (int round = 0; round < kRounds; ++round) {
            const double total =
                std::accumulate(resid.begin(), resid.end(), 0.0);
            double best_gain = 0.0;
            std::size_t best_f = 0;
            double best_thr = 0.0;
            double best_left = 0.0;
            double best_right = 0.0;
            bool found = false;
            for (std::size_t f = 0; f < kSurrogateFeatures; ++f) {
                double left_sum = 0.0;
                for (std::size_t pos = 0; pos + 1 < n; ++pos) {
                    const std::size_t i = order[f][pos];
                    left_sum += resid[i];
                    const double v = x[i][f];
                    const double vn = x[order[f][pos + 1]][f];
                    if (v == vn)
                        continue; // not a split boundary
                    const auto left_cnt = static_cast<double>(pos + 1);
                    const auto right_cnt = static_cast<double>(n - pos - 1);
                    const double right_sum = total - left_sum;
                    // Squared-error reduction of splitting here
                    // (constant terms cancel).
                    const double gain =
                        left_sum * left_sum / left_cnt +
                        right_sum * right_sum / right_cnt;
                    // Strict >: earlier (feature, threshold) wins ties.
                    if (!found || gain > best_gain) {
                        found = true;
                        best_gain = gain;
                        best_f = f;
                        best_thr = v + (vn - v) * 0.5;
                        best_left = left_sum / left_cnt;
                        best_right = right_sum / right_cnt;
                    }
                }
            }
            if (!found || best_gain <= kMinGain)
                break; // residuals are flat: converged
            Stump s;
            s.feature = best_f;
            s.threshold = best_thr;
            s.left = kLearningRate * best_left;
            s.right = kLearningRate * best_right;
            stumps_.push_back(s);
            for (std::size_t i = 0; i < n; ++i)
                resid[i] -= x[i][best_f] < best_thr ? s.left : s.right;
        }
    }

    double
    predict(const FeatureVec &x) const override
    {
        double acc = base_;
        for (const Stump &s : stumps_)
            acc += x[s.feature] < s.threshold ? s.left : s.right;
        return acc;
    }

    std::string
    describe() const override
    {
        std::ostringstream os;
        os << "stumps base=";
        hexDouble(os, base_);
        for (const Stump &s : stumps_) {
            os << " [f" << s.feature << "<";
            hexDouble(os, s.threshold);
            os << " ? ";
            hexDouble(os, s.left);
            os << " : ";
            hexDouble(os, s.right);
            os << ']';
        }
        return os.str();
    }

    const char *
    name() const override
    {
        return "stumps";
    }

  private:
    struct Stump
    {
        std::size_t feature = 0;
        double threshold = 0.0;
        double left = 0.0; ///< learning-rate-scaled response, x[f] < thr
        double right = 0.0;
    };

    static constexpr int kRounds = 400;
    static constexpr double kLearningRate = 0.25;
    static constexpr double kMinGain = 1e-12;

    double base_ = 0.0;
    std::vector<Stump> stumps_;
};

// -------------------------------------------------------------- tiny MLP

class TinyMlp final : public CostSurrogate
{
  public:
    void
    fit(const std::vector<FeatureVec> &x,
        const std::vector<double> &y) override
    {
        MTIA_CHECK(!x.empty()) << ": surrogate fit on an empty sample set";
        MTIA_CHECK_EQ(x.size(), y.size())
            << ": surrogate features/costs length mismatch";
        const std::size_t n = x.size();

        // Standardize features and target from the training set; a
        // constant column keeps scale 1 so the z-score stays finite.
        for (std::size_t f = 0; f < kSurrogateFeatures; ++f) {
            double sum = 0.0;
            for (const FeatureVec &row : x)
                sum += row[f];
            mu_[f] = sum / static_cast<double>(n);
            double var = 0.0;
            for (const FeatureVec &row : x)
                var += (row[f] - mu_[f]) * (row[f] - mu_[f]);
            sd_[f] = std::sqrt(var / static_cast<double>(n));
            if (sd_[f] == 0.0)
                sd_[f] = 1.0;
        }
        y_mu_ = std::accumulate(y.begin(), y.end(), 0.0) /
            static_cast<double>(n);
        double yvar = 0.0;
        for (double v : y)
            yvar += (v - y_mu_) * (v - y_mu_);
        y_sd_ = std::sqrt(yvar / static_cast<double>(n));
        if (y_sd_ == 0.0)
            y_sd_ = 1.0;

        std::vector<FeatureVec> z(n);
        std::vector<double> t(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t f = 0; f < kSurrogateFeatures; ++f)
                z[i][f] = (x[i][f] - mu_[f]) / sd_[f];
            t[i] = (y[i] - y_mu_) / y_sd_;
        }

        // Fixed-seed init: the model is a pure function of the
        // training set, never of wall clock or address layout.
        Rng rng(0x5eedf00dull);
        const double s1 = 1.0 / std::sqrt(double{kSurrogateFeatures});
        const double s2 = 1.0 / std::sqrt(double{kHidden});
        for (auto &row : w1_)
            for (double &w : row)
                w = rng.uniform(-0.5, 0.5) * s1;
        b1_.fill(0.0);
        for (double &w : w2_)
            w = rng.uniform(-0.5, 0.5) * s2;
        b2_ = 0.0;

        // Full-batch gradient descent, fixed epochs and order.
        const double lr = kLearningRate / static_cast<double>(n);
        std::array<double, kHidden> h{};
        std::array<double, kHidden> gh{};
        for (int epoch = 0; epoch < kEpochs; ++epoch) {
            std::array<std::array<double, kSurrogateFeatures>, kHidden>
                gw1{};
            std::array<double, kHidden> gb1{};
            std::array<double, kHidden> gw2{};
            double gb2 = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                double out = b2_;
                for (std::size_t j = 0; j < kHidden; ++j) {
                    double a = b1_[j];
                    for (std::size_t f = 0; f < kSurrogateFeatures; ++f)
                        a += w1_[j][f] * z[i][f];
                    h[j] = std::tanh(a);
                    out += w2_[j] * h[j];
                }
                const double err = out - t[i];
                gb2 += err;
                for (std::size_t j = 0; j < kHidden; ++j) {
                    gw2[j] += err * h[j];
                    gh[j] = err * w2_[j] * (1.0 - h[j] * h[j]);
                    gb1[j] += gh[j];
                    for (std::size_t f = 0; f < kSurrogateFeatures; ++f)
                        gw1[j][f] += gh[j] * z[i][f];
                }
            }
            b2_ -= lr * gb2;
            for (std::size_t j = 0; j < kHidden; ++j) {
                w2_[j] -= lr * gw2[j];
                b1_[j] -= lr * gb1[j];
                for (std::size_t f = 0; f < kSurrogateFeatures; ++f)
                    w1_[j][f] -= lr * gw1[j][f];
            }
        }
    }

    double
    predict(const FeatureVec &x) const override
    {
        double out = b2_;
        for (std::size_t j = 0; j < kHidden; ++j) {
            double a = b1_[j];
            for (std::size_t f = 0; f < kSurrogateFeatures; ++f)
                a += w1_[j][f] * (x[f] - mu_[f]) / sd_[f];
            out += w2_[j] * std::tanh(a);
        }
        return out * y_sd_ + y_mu_;
    }

    std::string
    describe() const override
    {
        std::ostringstream os;
        os << "mlp";
        for (std::size_t j = 0; j < kHidden; ++j) {
            os << " h" << j << "=(";
            for (std::size_t f = 0; f < kSurrogateFeatures; ++f) {
                if (f != 0)
                    os << ',';
                hexDouble(os, w1_[j][f]);
            }
            os << ";";
            hexDouble(os, b1_[j]);
            os << ";";
            hexDouble(os, w2_[j]);
            os << ')';
        }
        os << " b2=";
        hexDouble(os, b2_);
        return os.str();
    }

    const char *
    name() const override
    {
        return "mlp";
    }

  private:
    static constexpr std::size_t kHidden = 16;
    static constexpr int kEpochs = 1500;
    static constexpr double kLearningRate = 0.05;

    std::array<std::array<double, kSurrogateFeatures>, kHidden> w1_{};
    std::array<double, kHidden> b1_{};
    std::array<double, kHidden> w2_{};
    double b2_ = 0.0;
    std::array<double, kSurrogateFeatures> mu_{};
    std::array<double, kSurrogateFeatures> sd_{};
    double y_mu_ = 0.0;
    double y_sd_ = 1.0;
};

// ------------------------------------------------------- toggle plumbing

thread_local bool tls_override_active = false;
thread_local bool tls_override_value = true;

} // namespace

std::unique_ptr<CostSurrogate>
makeSurrogate(SurrogateKind kind)
{
    switch (kind) {
    case SurrogateKind::Stumps:
        return std::make_unique<GradientBoostedStumps>();
    case SurrogateKind::Mlp:
        return std::make_unique<TinyMlp>();
    }
    MTIA_UNREACHABLE("bad SurrogateKind");
}

bool
surrogateEnabled()
{
    if (tls_override_active)
        return tls_override_value;
    // MTIA_SURROGATE=0 pins the legacy exhaustive path; unset or any
    // other value keeps the surrogate on (mirrors MTIA_THREADS
    // parsing: the environment is read per query so tests can flip
    // it).
    if (const char *env = std::getenv("MTIA_SURROGATE")) {
        if (env[0] == '0' && env[1] == '\0')
            return false;
    }
    return true;
}

ScopedSurrogate::ScopedSurrogate(bool enabled)
    : prev_value_(tls_override_value), prev_active_(tls_override_active)
{
    tls_override_active = true;
    tls_override_value = enabled;
}

ScopedSurrogate::~ScopedSurrogate()
{
    tls_override_active = prev_active_;
    tls_override_value = prev_value_;
}

// ------------------------------------------------------------ the loop

namespace {

/** Really evaluate @p idx; through the lane pool unless the caller's
 *  evaluator is timing-based (serial_eval). */
std::vector<double>
evalBatch(const std::vector<std::size_t> &idx,
          const std::function<double(std::size_t)> &real_cost,
          bool serial_eval)
{
    if (serial_eval) {
        std::vector<double> out(idx.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            out[i] = real_cost(idx[i]);
        return out;
    }
    return parallelMap(idx.size(), [&](std::size_t i) {
        return real_cost(idx[i]);
    });
}

/** Argmin over (cost, index): lowest index wins ties. */
std::size_t
argminSlot(const std::vector<double> &cost)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < cost.size(); ++i) {
        if (cost[i] < cost[best])
            best = i;
    }
    return best;
}

} // namespace

SurrogateSweepResult
surrogateArgmin(std::size_t n,
                const std::function<FeatureVec(std::size_t)> &feature,
                const std::function<double(std::size_t)> &real_cost,
                const SurrogateSweepOptions &opts)
{
    MTIA_CHECK_GT(n, std::size_t{0})
        << ": surrogateArgmin over an empty candidate grid";
    MTIA_CHECK_EQ(opts.warm_features.size(), opts.warm_costs.size())
        << ": warm-start features/costs length mismatch";
    MTIA_CHECK_GT(opts.top_k, std::size_t{0})
        << ": surrogateArgmin needs top_k >= 1";
    const std::size_t seed_count = std::max<std::size_t>(2, opts.seed_count);

    SurrogateSweepResult r;
    if (!surrogateEnabled() || n <= seed_count + opts.top_k) {
        // Legacy exhaustive path: every candidate really evaluated,
        // bit-identical to a plain parallelMap sweep.
        std::vector<std::size_t> all(n);
        std::iota(all.begin(), all.end(), std::size_t{0});
        std::vector<double> cost =
            evalBatch(all, real_cost, opts.serial_eval);
        const std::size_t best = argminSlot(cost);
        r.best_index = best;
        r.best_cost = cost[best];
        r.measured = std::move(all);
        r.measured_cost = std::move(cost);
        r.real_evals = n;
        autotune::noteRealEvals(n);
        return r;
    }

    // 1. Seed batch: evenly strided over the grid, first and last
    // candidate always included, deduped (pure index arithmetic, so
    // the same grid always seeds the same rows).
    std::vector<std::size_t> seeds;
    seeds.reserve(seed_count);
    for (std::size_t j = 0; j < seed_count; ++j) {
        const std::size_t idx =
            j * (n - 1) / (seed_count - 1);
        if (seeds.empty() || seeds.back() != idx)
            seeds.push_back(idx);
    }
    const std::vector<double> seed_cost =
        evalBatch(seeds, real_cost, opts.serial_eval);

    // 2. Train on warm-start rows (KD-tree neighbours) then seeds, in
    // that fixed order. Targets are trained in asinh space: tuner
    // costs span feasible values to 1e18 infeasible/SLO penalties,
    // and squared-error fitting on the raw scale would spend the
    // whole model on the penalty tier. asinh is monotone (ranking is
    // preserved), symmetric (the batch/coalescing tuners minimize
    // negative scores), and compresses 1e18 to ~42.
    std::vector<FeatureVec> tx = opts.warm_features;
    std::vector<double> ty;
    ty.reserve(opts.warm_costs.size() + seeds.size());
    for (double c : opts.warm_costs)
        ty.push_back(std::asinh(c));
    tx.reserve(tx.size() + seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        tx.push_back(feature(seeds[i]));
        ty.push_back(std::asinh(seed_cost[i]));
    }
    const std::unique_ptr<CostSurrogate> model = makeSurrogate(opts.kind);
    model->fit(tx, ty);

    // 3. Predict the whole grid (pure per index: lane-invariant).
    // Ranking uses the raw asinh-space outputs; `predicted` is
    // published back in cost units.
    const std::vector<double> pred_raw = parallelMap(
        n, [&](std::size_t i) { return model->predict(feature(i)); });
    r.predicted.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        r.predicted[i] = std::sinh(pred_raw[i]);
    r.surrogate_evals = n;

    // 4. Verify the top-k predicted candidates not already measured.
    std::vector<std::size_t> rank(n);
    std::iota(rank.begin(), rank.end(), std::size_t{0});
    std::sort(rank.begin(), rank.end(),
              [&](std::size_t a, std::size_t b) {
                  if (pred_raw[a] != pred_raw[b])
                      return pred_raw[a] < pred_raw[b];
                  return a < b; // lowest index wins ties
              });
    std::vector<std::size_t> verify;
    verify.reserve(opts.top_k);
    for (std::size_t i = 0; i < n && verify.size() < opts.top_k; ++i) {
        const std::size_t c = rank[i];
        if (!std::binary_search(seeds.begin(), seeds.end(), c))
            verify.push_back(c);
    }
    std::sort(verify.begin(), verify.end());
    const std::vector<double> verify_cost =
        evalBatch(verify, real_cost, opts.serial_eval);

    double abs_err = 0.0;
    for (std::size_t i = 0; i < verify.size(); ++i)
        abs_err += std::abs(r.predicted[verify[i]] - verify_cost[i]);
    r.mae = verify.empty()
        ? 0.0
        : abs_err / static_cast<double>(verify.size());

    // 5. Winner: lowest real cost over everything measured; merging
    // two index-sorted lists keeps `measured` ascending, and the
    // argmin scan's strict < keeps the lowest index on cost ties.
    r.measured.reserve(seeds.size() + verify.size());
    r.measured_cost.reserve(seeds.size() + verify.size());
    std::size_t si = 0;
    std::size_t vi = 0;
    while (si < seeds.size() || vi < verify.size()) {
        const bool take_seed = vi == verify.size() ||
            (si < seeds.size() && seeds[si] < verify[vi]);
        if (take_seed) {
            r.measured.push_back(seeds[si]);
            r.measured_cost.push_back(seed_cost[si]);
            ++si;
        } else {
            r.measured.push_back(verify[vi]);
            r.measured_cost.push_back(verify_cost[vi]);
            ++vi;
        }
    }
    const std::size_t best = argminSlot(r.measured_cost);
    r.best_index = r.measured[best];
    r.best_cost = r.measured_cost[best];
    r.real_evals = r.measured.size();
    r.used_surrogate = true;

    autotune::noteSurrogateEvals(r.surrogate_evals);
    autotune::noteRealEvals(r.real_evals);
    autotune::noteSurrogateError(abs_err, verify.size());
    return r;
}

} // namespace mtia
