#ifndef MTIA_AUTOTUNE_BATCH_TUNER_H_
#define MTIA_AUTOTUNE_BATCH_TUNER_H_

/**
 * @file
 * Batch-size autotuning (Section 4.1): build model snapshots at
 * candidate batch sizes, evaluate each with the cost model (the
 * offline traffic-replay test), and pick the batch that maximizes
 * throughput subject to the latency SLO — including the paper's
 * data-placement fallback rule: when activations stop fitting in LLS,
 * compare the nearest lower batch that fits against the current batch
 * with spilled activations, and keep the winner.
 */

#include <functional>
#include <vector>

#include "autotune/surrogate.h"
#include "graph/graph_cost.h"
#include "models/model_zoo.h"

namespace mtia {

/** One evaluated batch-size snapshot. */
struct BatchCandidate
{
    std::int64_t batch = 0;
    ModelCost cost;
    bool meets_slo = false;
};

/** Result of a surrogate-guided batch sweep. */
struct BatchSurrogateResult
{
    BatchCandidate best;
    SurrogateSweepResult loop;
    std::size_t grid_size = 0; ///< candidate batch sizes considered
};

/** Batch-size tuner. */
class BatchSizeTuner
{
  public:
    using ModelBuilder = std::function<ModelInfo(std::int64_t batch)>;

    explicit BatchSizeTuner(Device &dev) : dev_(dev) {}

    /**
     * Evaluate @p candidates and return all snapshots plus the index
     * of the winner (highest QPS whose latency meets @p slo; if none
     * meets it, the lowest-latency one).
     */
    std::vector<BatchCandidate>
    evaluate(const ModelBuilder &builder,
             const std::vector<std::int64_t> &candidates, Tick slo,
             std::size_t &winner) const;

    /**
     * The paper's placement fallback: starting from @p batch, if
     * activations spill, also evaluate the largest power-of-two batch
     * whose activations fit, and return the faster of the two.
     */
    BatchCandidate tuneWithPlacementFallback(const ModelBuilder &builder,
                                             std::int64_t batch,
                                             Tick slo) const;

    /**
     * Surrogate-guided sweep over a dense candidate grid (the
     * explore -> predict -> verify loop of autotune/surrogate.h):
     * really builds + evaluates model snapshots only for the seed
     * batch and the predicted top-k, so grids 100x denser than
     * evaluate() can afford become tractable. The winner rule matches
     * evaluate() exactly — highest QPS meeting @p slo, else lowest
     * latency, earliest candidate on ties — encoded as the scalar
     * cost the surrogate trains on (-qps for SLO-meeting snapshots, a
     * large SLO-violation penalty plus latency otherwise). With the
     * surrogate disabled this is a bit-identical exhaustive sweep.
     */
    BatchSurrogateResult
    tuneSurrogate(const ModelBuilder &builder,
                  const std::vector<std::int64_t> &candidates, Tick slo,
                  const SurrogateSweepOptions &opts = {}) const;

  private:
    BatchCandidate evalOne(const ModelBuilder &builder,
                           std::int64_t batch, Tick slo) const;

    Device &dev_;
};

} // namespace mtia

#endif // MTIA_AUTOTUNE_BATCH_TUNER_H_
