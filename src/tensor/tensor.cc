#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "core/check.h"

namespace mtia {

std::int64_t
Shape::dim(std::size_t i) const
{
    MTIA_CHECK_LT(i, dims_.size()) << ": Shape::dim axis out of rank";
    return dims_[i];
}

std::int64_t
Shape::numel() const
{
    std::int64_t n = 1;
    for (std::int64_t d : dims_)
        n *= d;
    return n;
}

std::string
Shape::toString() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < dims_.size(); ++i)
        os << (i ? "x" : "") << dims_[i];
    os << "]";
    return os.str();
}

Tensor::Tensor(Shape shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype)
{
    const std::int64_t n = shape_.numel();
    MTIA_CHECK_GE(n, 0) << ": Tensor shape " << shape_.toString()
                        << " has a negative element count";
    data_.assign(static_cast<std::size_t>(n) * dtypeSize(dtype_), 0);
}

float
Tensor::at(std::int64_t i) const
{
    MTIA_DCHECK_GE(i, 0) << ": Tensor::at negative index";
    MTIA_DCHECK_LT(i, numel()) << ": Tensor::at index out of bounds";
    const std::size_t off = static_cast<std::size_t>(i) * dtypeSize(dtype_);
    switch (dtype_) {
      case DType::FP32: {
        float v;
        std::memcpy(&v, data_.data() + off, 4);
        return v;
      }
      case DType::FP16: {
        std::uint16_t b;
        std::memcpy(&b, data_.data() + off, 2);
        return fp16BitsToFp32(b);
      }
      case DType::BF16: {
        std::uint16_t b;
        std::memcpy(&b, data_.data() + off, 2);
        return bf16BitsToFp32(b);
      }
      case DType::INT8:
        return static_cast<float>(
            static_cast<std::int8_t>(data_[off]));
      case DType::INT32: {
        std::int32_t v;
        std::memcpy(&v, data_.data() + off, 4);
        return static_cast<float>(v);
      }
    }
    MTIA_UNREACHABLE("Tensor::at: unknown dtype");
}

void
Tensor::set(std::int64_t i, float v)
{
    MTIA_DCHECK_GE(i, 0) << ": Tensor::set negative index";
    MTIA_DCHECK_LT(i, numel()) << ": Tensor::set index out of bounds";
    const std::size_t off = static_cast<std::size_t>(i) * dtypeSize(dtype_);
    switch (dtype_) {
      case DType::FP32:
        std::memcpy(data_.data() + off, &v, 4);
        return;
      case DType::FP16: {
        const std::uint16_t b = fp32ToFp16Bits(v);
        std::memcpy(data_.data() + off, &b, 2);
        return;
      }
      case DType::BF16: {
        const std::uint16_t b = fp32ToBf16Bits(v);
        std::memcpy(data_.data() + off, &b, 2);
        return;
      }
      case DType::INT8: {
        const float c = std::clamp(std::nearbyint(v), -128.0f, 127.0f);
        data_[off] = static_cast<std::uint8_t>(
            static_cast<std::int8_t>(c));
        return;
      }
      case DType::INT32: {
        const auto iv = static_cast<std::int32_t>(std::nearbyint(v));
        std::memcpy(data_.data() + off, &iv, 4);
        return;
      }
    }
    MTIA_UNREACHABLE("Tensor::set: unknown dtype");
}

float
Tensor::at2(std::int64_t row, std::int64_t col) const
{
    MTIA_DCHECK_EQ(shape_.rank(), 2u) << ": Tensor::at2 needs rank 2";
    return at(row * shape_.dim(1) + col);
}

void
Tensor::set2(std::int64_t row, std::int64_t col, float v)
{
    MTIA_DCHECK_EQ(shape_.rank(), 2u) << ": Tensor::set2 needs rank 2";
    set(row * shape_.dim(1) + col, v);
}

void
Tensor::flipBit(std::uint64_t bit_index)
{
    const std::uint64_t byte = bit_index / 8;
    MTIA_CHECK_LT(byte, data_.size())
        << ": Tensor::flipBit bit " << bit_index << " out of range";
    data_[byte] ^= static_cast<std::uint8_t>(1u << (bit_index % 8));
}

void
Tensor::fillGaussian(Rng &rng, float mean, float stddev)
{
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i)
        set(i, static_cast<float>(rng.gaussian(mean, stddev)));
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i)
        set(i, static_cast<float>(rng.uniform(lo, hi)));
}

void
Tensor::fill(float v)
{
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i)
        set(i, v);
}

namespace {

inline bool
isHalfDtype(DType t)
{
    return t == DType::FP16 || t == DType::BF16;
}

} // namespace

Tensor
Tensor::cast(DType to) const
{
    Tensor out(shape_, to);
    const std::int64_t n = numel();
    // fp32 <-> fp16/bf16 casts go through the batch kernels; they are
    // bit-identical to the per-element at()/set() conversions.
    if (dtype_ == DType::FP32 && isHalfDtype(to)) {
        convertBuffer(reinterpret_cast<const float *>(data_.data()),
                      reinterpret_cast<std::uint16_t *>(out.data_.data()),
                      static_cast<std::size_t>(n), to);
        return out;
    }
    if (isHalfDtype(dtype_) && to == DType::FP32) {
        convertBuffer(
            reinterpret_cast<const std::uint16_t *>(data_.data()),
            reinterpret_cast<float *>(out.data_.data()),
            static_cast<std::size_t>(n), dtype_);
        return out;
    }
    for (std::int64_t i = 0; i < n; ++i)
        out.set(i, at(i));
    return out;
}

std::vector<float>
Tensor::toFloats() const
{
    const std::int64_t n = numel();
    std::vector<float> out(static_cast<std::size_t>(n));
    if (dtype_ == DType::FP32) {
        if (!out.empty())
            std::memcpy(out.data(), data_.data(),
                        out.size() * sizeof(float));
        return out;
    }
    if (isHalfDtype(dtype_)) {
        convertBuffer(
            reinterpret_cast<const std::uint16_t *>(data_.data()),
            out.data(), out.size(), dtype_);
        return out;
    }
    for (std::int64_t i = 0; i < n; ++i)
        out[static_cast<std::size_t>(i)] = at(i);
    return out;
}

Tensor
Tensor::fromFloats(const std::vector<float> &vals, Shape shape, DType dtype)
{
    MTIA_CHECK_EQ(static_cast<std::int64_t>(vals.size()), shape.numel())
        << ": Tensor::fromFloats value count must match shape "
        << shape.toString();
    Tensor t(std::move(shape), dtype);
    if (dtype == DType::FP32) {
        if (!vals.empty())
            std::memcpy(t.data_.data(), vals.data(),
                        vals.size() * sizeof(float));
        return t;
    }
    if (isHalfDtype(dtype)) {
        convertBuffer(vals.data(),
                      reinterpret_cast<std::uint16_t *>(t.data_.data()),
                      vals.size(), dtype);
        return t;
    }
    for (std::size_t i = 0; i < vals.size(); ++i)
        t.set(static_cast<std::int64_t>(i), vals[i]);
    return t;
}

bool
Tensor::hasNonFinite() const
{
    const std::int64_t n = numel();
    for (std::int64_t i = 0; i < n; ++i) {
        if (!std::isfinite(at(i)))
            return true;
    }
    return false;
}

double
Tensor::maxAbsDiff(const Tensor &a, const Tensor &b)
{
    MTIA_CHECK(a.shape() == b.shape())
        << ": maxAbsDiff shape mismatch " << a.shape().toString()
        << " vs " << b.shape().toString();
    double m = 0.0;
    const std::int64_t n = a.numel();
    for (std::int64_t i = 0; i < n; ++i)
        m = std::max(m, std::abs(static_cast<double>(a.at(i)) -
                                 static_cast<double>(b.at(i))));
    return m;
}

double
Tensor::rmse(const Tensor &a, const Tensor &b)
{
    MTIA_CHECK(a.shape() == b.shape())
        << ": rmse shape mismatch " << a.shape().toString() << " vs "
        << b.shape().toString();
    const std::int64_t n = a.numel();
    if (n == 0)
        return 0.0;
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(a.at(i)) -
            static_cast<double>(b.at(i));
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(n));
}

} // namespace mtia
