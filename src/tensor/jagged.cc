#include "tensor/jagged.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace mtia {

JaggedTensor::JaggedTensor(const std::vector<std::int64_t> &lengths,
                           std::int64_t dim, DType dtype)
    : dim_(dim)
{
    offsets_.assign(1, 0);
    offsets_.reserve(lengths.size() + 1);
    for (std::int64_t len : lengths) {
        MTIA_CHECK_GE(len, 0) << ": JaggedTensor segment lengths must "
                                 "be non-negative";
        offsets_.push_back(offsets_.back() + len);
    }
    values_ = Tensor(Shape{offsets_.back(), dim_}, dtype);
}

Tensor
JaggedTensor::toDense(std::int64_t max_len) const
{
    const std::int64_t b = batchSize();
    if (max_len < 0) {
        for (std::int64_t i = 0; i < b; ++i)
            max_len = std::max(max_len, lengthOf(i));
        max_len = std::max<std::int64_t>(max_len, 0);
    }
    Tensor dense(Shape{b, max_len, dim_}, values_.dtype());
    for (std::int64_t i = 0; i < b; ++i) {
        const std::int64_t len = std::min(lengthOf(i), max_len);
        for (std::int64_t r = 0; r < len; ++r) {
            for (std::int64_t c = 0; c < dim_; ++c) {
                dense.set((i * max_len + r) * dim_ + c,
                          at(offsets_[i] + r, c));
            }
        }
    }
    return dense;
}

JaggedTensor
JaggedTensor::fromDense(const Tensor &dense,
                        const std::vector<std::int64_t> &lengths)
{
    MTIA_CHECK_EQ(dense.shape().rank(), 3u)
        << ": JaggedTensor::fromDense expects a [batch, len, dim] tensor";
    const std::int64_t b = dense.shape().dim(0);
    const std::int64_t l = dense.shape().dim(1);
    const std::int64_t d = dense.shape().dim(2);
    MTIA_CHECK_EQ(static_cast<std::int64_t>(lengths.size()), b)
        << ": JaggedTensor::fromDense needs one length per batch row";

    JaggedTensor out(lengths, d, dense.dtype());
    for (std::int64_t i = 0; i < b; ++i) {
        const std::int64_t len = std::min(lengths[i], l);
        for (std::int64_t r = 0; r < len; ++r) {
            for (std::int64_t c = 0; c < d; ++c) {
                out.set(out.offsets_[i] + r, c,
                        dense.at((i * l + r) * d + c));
            }
        }
    }
    return out;
}

JaggedTensor
JaggedTensor::randomHistory(Rng &rng, std::int64_t batch, std::int64_t dim,
                            double mean_len, std::int64_t max_len,
                            DType dtype)
{
    // Lognormal lengths reproduce the heavy right tail of user-history
    // sequence lengths that motivates ragged attention.
    const double sigma = 1.0;
    const double mu = std::log(mean_len) - sigma * sigma / 2.0;
    std::vector<std::int64_t> lengths(static_cast<std::size_t>(batch));
    for (auto &len : lengths) {
        const double v = rng.lognormal(mu, sigma);
        len = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(v) + 1, 1, max_len);
    }
    JaggedTensor out(lengths, dim, dtype);
    out.values_.fillGaussian(rng);
    return out;
}

} // namespace mtia
