#ifndef MTIA_TENSOR_DTYPE_H_
#define MTIA_TENSOR_DTYPE_H_

/**
 * @file
 * Element data types supported by the MTIA 2i datapath, with bit-exact
 * software conversion for FP16 and BF16. The conversions are real
 * (round-to-nearest-even, denormal and NaN handling) so that numerics
 * experiments — quantization quality, bit-flip injection, A/B parity —
 * measure genuine arithmetic effects.
 *
 * Two tiers of API:
 *
 *  - per-element fp32ToFp16Bits / fp16BitsToFp32 / fp32ToBf16Bits /
 *    bf16BitsToFp32 — the branchy scalar reference semantics; fine
 *    for single values and cold paths;
 *  - convertBuffer — the batch kernel layer. Branch-free
 *    (mask/select) round-to-nearest-even over core/simd.h vectors,
 *    bit-identical to the per-element functions for every input
 *    including NaN payloads, ±0, denormals, and ties. scalar::
 *    convertBuffer is the element-at-a-time reference loop the
 *    equivalence tests and benches compare against.
 *
 * Hot loops outside this kernel layer must call convertBuffer, not
 * the per-element functions (enforced by the scalar-hot-loop rule in
 * scripts/check_sim_invariants.py).
 */

#include <cstdint>
#include <string>

namespace mtia {

/** Element types understood by the DPE / SIMD engine. */
enum class DType : std::uint8_t {
    FP32,
    FP16,
    BF16,
    INT8,
    INT32,
};

/** Bytes per element. */
std::size_t dtypeSize(DType t);

/** Human-readable name ("fp16", ...). */
std::string dtypeName(DType t);

/** IEEE binary16 conversion with round-to-nearest-even. */
std::uint16_t fp32ToFp16Bits(float f);
float fp16BitsToFp32(std::uint16_t h);

/** bfloat16 conversion with round-to-nearest-even. */
std::uint16_t fp32ToBf16Bits(float f);
float bf16BitsToFp32(std::uint16_t b);

/** Round-trip a float through the given dtype's representation. */
float roundTrip(float f, DType t);

/**
 * Bulk fp32 -> half conversion (@p to is FP16 or BF16; anything else
 * is a contract violation). Bit-identical to calling fp32ToFp16Bits /
 * fp32ToBf16Bits per element. Buffers must not overlap.
 */
void convertBuffer(const float *src, std::uint16_t *dst, std::size_t n,
                   DType to);

/**
 * Bulk half -> fp32 widening (@p from is FP16 or BF16). Bit-identical
 * to the per-element converters. Buffers must not overlap.
 */
void convertBuffer(const std::uint16_t *src, float *dst, std::size_t n,
                   DType from);

namespace scalar {

/** Element-at-a-time reference loops for the batch kernels above. */
void convertBuffer(const float *src, std::uint16_t *dst, std::size_t n,
                   DType to);
void convertBuffer(const std::uint16_t *src, float *dst, std::size_t n,
                   DType from);

} // namespace scalar

} // namespace mtia

#endif // MTIA_TENSOR_DTYPE_H_
