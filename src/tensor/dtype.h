#ifndef MTIA_TENSOR_DTYPE_H_
#define MTIA_TENSOR_DTYPE_H_

/**
 * @file
 * Element data types supported by the MTIA 2i datapath, with bit-exact
 * software conversion for FP16 and BF16. The conversions are real
 * (round-to-nearest-even, denormal and NaN handling) so that numerics
 * experiments — quantization quality, bit-flip injection, A/B parity —
 * measure genuine arithmetic effects.
 */

#include <cstdint>
#include <string>

namespace mtia {

/** Element types understood by the DPE / SIMD engine. */
enum class DType : std::uint8_t {
    FP32,
    FP16,
    BF16,
    INT8,
    INT32,
};

/** Bytes per element. */
std::size_t dtypeSize(DType t);

/** Human-readable name ("fp16", ...). */
std::string dtypeName(DType t);

/** IEEE binary16 conversion with round-to-nearest-even. */
std::uint16_t fp32ToFp16Bits(float f);
float fp16BitsToFp32(std::uint16_t h);

/** bfloat16 conversion with round-to-nearest-even. */
std::uint16_t fp32ToBf16Bits(float f);
float bf16BitsToFp32(std::uint16_t b);

/** Round-trip a float through the given dtype's representation. */
float roundTrip(float f, DType t);

} // namespace mtia

#endif // MTIA_TENSOR_DTYPE_H_
