#include "tensor/dtype.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/check.h"
#include "core/numerics_stats.h"
#include "core/simd.h"

namespace mtia {

std::size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::FP32: return 4;
      case DType::FP16: return 2;
      case DType::BF16: return 2;
      case DType::INT8: return 1;
      case DType::INT32: return 4;
    }
    MTIA_UNREACHABLE("dtypeSize: unknown dtype");
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::FP32: return "fp32";
      case DType::FP16: return "fp16";
      case DType::BF16: return "bf16";
      case DType::INT8: return "int8";
      case DType::INT32: return "int32";
    }
    return "?";
}

std::uint16_t
fp32ToFp16Bits(float f)
{
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::uint32_t exp32 = (x >> 23) & 0xffu;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp32 == 0xffu) {
        // Inf / NaN: preserve NaN-ness with a quiet payload bit.
        const std::uint32_t nan = mant != 0 ? 0x0200u | (mant >> 13) : 0;
        return static_cast<std::uint16_t>(sign | 0x7c00u | nan);
    }

    const int unbiased = static_cast<int>(exp32) - 127;
    int exp16 = unbiased + 15;

    if (exp16 >= 0x1f) {
        // Overflow -> infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    if (exp16 <= 0) {
        // Denormal (or zero) in fp16.
        if (exp16 < -10)
            return static_cast<std::uint16_t>(sign); // rounds to zero
        mant |= 0x800000u; // restore implicit leading 1
        const int shift = 14 - exp16; // 14..24
        std::uint32_t half = mant >> shift;
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            ++half; // may carry into the exponent field; that is correct
        return static_cast<std::uint16_t>(sign | half);
    }

    // Normal number: round 23-bit mantissa to 10 bits, nearest-even.
    std::uint32_t half = mant >> 13;
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1)))
        ++half;
    std::uint32_t result = sign |
        (static_cast<std::uint32_t>(exp16) << 10) | (half & 0x3ffu);
    if (half == 0x400u)
        result = sign | (static_cast<std::uint32_t>(exp16 + 1) << 10);
    return static_cast<std::uint16_t>(result);
}

float
fp16BitsToFp32(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u)
        << 16;
    const std::uint32_t exp16 = (h >> 10) & 0x1fu;
    const std::uint32_t mant = h & 0x3ffu;

    if (exp16 == 0x1fu) {
        // Inf / NaN.
        const std::uint32_t bits = sign | 0x7f800000u | (mant << 13);
        return std::bit_cast<float>(bits);
    }
    if (exp16 == 0) {
        if (mant == 0)
            return std::bit_cast<float>(sign); // +-0
        // Denormal: normalize.
        int e = -1;
        std::uint32_t m = mant;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        const std::uint32_t exp32 =
            static_cast<std::uint32_t>(127 - 15 - e);
        const std::uint32_t bits =
            sign | (exp32 << 23) | ((m & 0x3ffu) << 13);
        return std::bit_cast<float>(bits);
    }
    const std::uint32_t exp32 = exp16 + 127 - 15;
    const std::uint32_t bits = sign | (exp32 << 23) | (mant << 13);
    return std::bit_cast<float>(bits);
}

std::uint16_t
fp32ToBf16Bits(float f)
{
    std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    if (std::isnan(f)) {
        // Quiet NaN, preserve sign.
        return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
    }
    // Round to nearest even on the truncated 16 bits.
    const std::uint32_t rounding = 0x7fffu + ((x >> 16) & 1u);
    x += rounding;
    return static_cast<std::uint16_t>(x >> 16);
}

float
bf16BitsToFp32(std::uint16_t b)
{
    const std::uint32_t bits = static_cast<std::uint32_t>(b) << 16;
    return std::bit_cast<float>(bits);
}

float
roundTrip(float f, DType t)
{
    switch (t) {
      case DType::FP32:
        return f;
      case DType::FP16:
        return fp16BitsToFp32(fp32ToFp16Bits(f));
      case DType::BF16:
        return bf16BitsToFp32(fp32ToBf16Bits(f));
      case DType::INT8:
        return std::clamp(std::nearbyint(f), -128.0f, 127.0f);
      case DType::INT32:
        return std::nearbyint(f);
    }
    MTIA_UNREACHABLE("roundTrip: unknown dtype");
}

// ------------------------------------------------------ batch kernels

namespace {

using simd::VecF32;
using simd::VecI32;

/**
 * Branch-free fp32 -> fp16 for four lanes of fp32 bit patterns.
 * Bit-identical to fp32ToFp16Bits (proof sketch per case):
 *
 *  - NaN (absx > 0x7f800000): 0x7e00 | (mant >> 13) equals
 *    0x7c00 | 0x0200 | (mant >> 13) — payload preserved, quiet bit
 *    set, exactly the scalar path.
 *  - Inf / overflow (absx >= 0x47800000, i.e. > 65504 + last-ulp
 *    rounding range): 0x7c00. The scalar path reaches infinity either
 *    through exp16 >= 0x1f or rounding carry; inputs in
 *    [0x477ff000, 0x47800000) carry to 0x7c00 inside the normal-path
 *    integer add below, so the explicit overflow select only needs to
 *    start at 0x47800000.
 *  - Subnormal (absx < 0x38800000 = 2^-14): the denormal-magic float
 *    add. absx reinterpreted as a float lies in [0, 2^-14); adding
 *    0.5f aligns its mantissa to the fp16-denormal grid with a single
 *    IEEE RTNE rounding (ulp(0.5) = 2^-24 = one fp16-denormal step),
 *    and subtracting the bits of 0.5 leaves exactly the 11 result
 *    bits. Covers ±0, the 2^-25 tie-to-zero, and the exp16 < -10
 *    flush that the scalar path special-cases.
 *  - Normal: absx + ((15-127) << 23) + 0xfff + lsb(absx >> 13), then
 *    >> 13: the +0xfff+lsb add is RTNE on the low 13 bits (carry
 *    propagates into the exponent field exactly like the scalar
 *    half == 0x400 fixup).
 */
inline VecI32
fp16FromFp32Vec(VecI32 x)
{
    const VecI32 sign = x & VecI32::broadcastBits(0x80000000u);
    const VecI32 absx = x & VecI32::broadcastBits(0x7fffffffu);

    const VecI32 is_nan =
        simd::cmpGt(absx, VecI32::broadcastBits(0x7f800000u));
    const VecI32 nan16 = VecI32::broadcastBits(0x7e00u) |
        simd::shiftRightLogical<13>(x & VecI32::broadcastBits(0x7fffffu));

    const VecI32 is_ovf =
        simd::cmpGt(absx, VecI32::broadcastBits(0x477fffffu));
    const VecI32 is_sub =
        simd::cmpGt(VecI32::broadcastBits(0x38800000u), absx);

    const VecI32 odd =
        simd::shiftRightLogical<13>(absx) & VecI32::broadcastBits(1u);
    const VecI32 norm = simd::shiftRightLogical<13>(
        absx + VecI32::broadcastBits(0xc8000fffu) + odd);

    const VecF32 magic = simd::bitcastToF32(
        VecI32::broadcastBits(0x3f000000u)); // 0.5f
    const VecI32 sub =
        simd::bitcastToI32(simd::bitcastToF32(absx) + magic) -
        VecI32::broadcastBits(0x3f000000u);

    VecI32 r = simd::select(is_sub, sub, norm);
    r = simd::select(is_ovf, VecI32::broadcastBits(0x7c00u), r);
    r = simd::select(is_nan, nan16, r);
    return r | simd::shiftRightLogical<16>(sign);
}

/**
 * Branch-free fp16 -> fp32 for four lanes of zero-extended fp16 bit
 * patterns. Shift the exponent+mantissa into fp32 position and
 * rebias; Inf/NaN lanes get the rest of the exponent rebias (payload
 * and quietness preserved, matching the scalar mant << 13); zero and
 * denormal lanes are fixed up with one exact float subtract of 2^-14
 * (the magic re-normalizes 0..2^10-1 denormal mantissas with no
 * rounding, reproducing the scalar normalization loop).
 */
inline VecI32
fp32FromFp16Vec(VecI32 h)
{
    const VecI32 sign =
        simd::shiftLeft<16>(h & VecI32::broadcastBits(0x8000u));
    const VecI32 em =
        simd::shiftLeft<13>(h & VecI32::broadcastBits(0x7fffu));
    const VecI32 exp = em & VecI32::broadcastBits(0x0f800000u);

    const VecI32 rebias = VecI32::broadcastBits(
        static_cast<std::uint32_t>(127 - 15) << 23);
    const VecI32 o = em + rebias;

    const VecI32 is_infnan =
        simd::cmpEq(exp, VecI32::broadcastBits(0x0f800000u));
    const VecI32 o_infnan = o + rebias;

    const VecI32 is_subz = simd::cmpEq(exp, VecI32::broadcastBits(0u));
    const VecF32 magic = simd::bitcastToF32(
        VecI32::broadcastBits(0x38800000u)); // 2^-14
    const VecI32 o_sub = simd::bitcastToI32(
        simd::bitcastToF32(o + VecI32::broadcastBits(1u << 23)) - magic);

    VecI32 r = simd::select(is_infnan, o_infnan, o);
    r = simd::select(is_subz, o_sub, r);
    return r | sign;
}

/**
 * Branch-free fp32 -> bf16: RTNE on the truncated 16 bits via the
 * same +0x7fff+lsb integer add as the scalar path; NaN lanes get the
 * scalar's truncate-and-quiet treatment instead.
 */
inline VecI32
bf16FromFp32Vec(VecI32 x)
{
    const VecI32 absx = x & VecI32::broadcastBits(0x7fffffffu);
    const VecI32 is_nan =
        simd::cmpGt(absx, VecI32::broadcastBits(0x7f800000u));
    const VecI32 nan16 =
        simd::shiftRightLogical<16>(x) | VecI32::broadcastBits(0x0040u);
    const VecI32 odd =
        simd::shiftRightLogical<16>(x) & VecI32::broadcastBits(1u);
    const VecI32 rne = simd::shiftRightLogical<16>(
        x + VecI32::broadcastBits(0x7fffu) + odd);
    return simd::select(is_nan, nan16, rne);
}

template <VecI32 (&Kernel)(VecI32), std::uint16_t (&Ref)(float)>
void
narrowBuffer(const float *src, std::uint16_t *dst, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 * simd::kLanes <= n; i += 2 * simd::kLanes) {
        const VecI32 a =
            Kernel(simd::bitcastToI32(VecF32::load(src + i)));
        const VecI32 b = Kernel(
            simd::bitcastToI32(VecF32::load(src + i + simd::kLanes)));
        simd::storeLow16(a, b, dst + i);
    }
    for (; i < n; ++i)
        dst[i] = Ref(src[i]);
}

template <float (&Ref)(std::uint16_t)>
void
widenBuffer(const std::uint16_t *src, float *dst, std::size_t n,
            bool bf16)
{
    std::size_t i = 0;
    if (bf16) {
        for (; i + simd::kLanes <= n; i += simd::kLanes) {
            const VecI32 h = simd::loadU16AsI32(src + i);
            simd::bitcastToF32(simd::shiftLeft<16>(h)).store(dst + i);
        }
    } else {
        for (; i + simd::kLanes <= n; i += simd::kLanes) {
            const VecI32 h = simd::loadU16AsI32(src + i);
            simd::bitcastToF32(fp32FromFp16Vec(h)).store(dst + i);
        }
    }
    for (; i < n; ++i)
        dst[i] = Ref(src[i]);
}

} // namespace

void
convertBuffer(const float *src, std::uint16_t *dst, std::size_t n,
              DType to)
{
    MTIA_DCHECK(to == DType::FP16 || to == DType::BF16)
        << ": convertBuffer target must be a 16-bit float dtype";
    if (to == DType::FP16)
        narrowBuffer<fp16FromFp32Vec, fp32ToFp16Bits>(src, dst, n);
    else
        narrowBuffer<bf16FromFp32Vec, fp32ToBf16Bits>(src, dst, n);
    numerics::noteBytesConverted(n * sizeof(float));
}

void
convertBuffer(const std::uint16_t *src, float *dst, std::size_t n,
              DType from)
{
    MTIA_DCHECK(from == DType::FP16 || from == DType::BF16)
        << ": convertBuffer source must be a 16-bit float dtype";
    if (from == DType::FP16)
        widenBuffer<fp16BitsToFp32>(src, dst, n, false);
    else
        widenBuffer<bf16BitsToFp32>(src, dst, n, true);
    numerics::noteBytesConverted(n * sizeof(std::uint16_t));
}

namespace scalar {

void
convertBuffer(const float *src, std::uint16_t *dst, std::size_t n,
              DType to)
{
    MTIA_DCHECK(to == DType::FP16 || to == DType::BF16)
        << ": convertBuffer target must be a 16-bit float dtype";
    if (to == DType::FP16) {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = fp32ToFp16Bits(src[i]);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = fp32ToBf16Bits(src[i]);
    }
    numerics::noteBytesConverted(n * sizeof(float));
}

void
convertBuffer(const std::uint16_t *src, float *dst, std::size_t n,
              DType from)
{
    MTIA_DCHECK(from == DType::FP16 || from == DType::BF16)
        << ": convertBuffer source must be a 16-bit float dtype";
    if (from == DType::FP16) {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = fp16BitsToFp32(src[i]);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = bf16BitsToFp32(src[i]);
    }
    numerics::noteBytesConverted(n * sizeof(std::uint16_t));
}

} // namespace scalar

} // namespace mtia
