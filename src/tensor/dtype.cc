#include "tensor/dtype.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/check.h"

namespace mtia {

std::size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::FP32: return 4;
      case DType::FP16: return 2;
      case DType::BF16: return 2;
      case DType::INT8: return 1;
      case DType::INT32: return 4;
    }
    MTIA_UNREACHABLE("dtypeSize: unknown dtype");
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::FP32: return "fp32";
      case DType::FP16: return "fp16";
      case DType::BF16: return "bf16";
      case DType::INT8: return "int8";
      case DType::INT32: return "int32";
    }
    return "?";
}

std::uint16_t
fp32ToFp16Bits(float f)
{
    const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    const std::uint32_t exp32 = (x >> 23) & 0xffu;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp32 == 0xffu) {
        // Inf / NaN: preserve NaN-ness with a quiet payload bit.
        const std::uint32_t nan = mant != 0 ? 0x0200u | (mant >> 13) : 0;
        return static_cast<std::uint16_t>(sign | 0x7c00u | nan);
    }

    const int unbiased = static_cast<int>(exp32) - 127;
    int exp16 = unbiased + 15;

    if (exp16 >= 0x1f) {
        // Overflow -> infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    if (exp16 <= 0) {
        // Denormal (or zero) in fp16.
        if (exp16 < -10)
            return static_cast<std::uint16_t>(sign); // rounds to zero
        mant |= 0x800000u; // restore implicit leading 1
        const int shift = 14 - exp16; // 14..24
        std::uint32_t half = mant >> shift;
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half & 1)))
            ++half; // may carry into the exponent field; that is correct
        return static_cast<std::uint16_t>(sign | half);
    }

    // Normal number: round 23-bit mantissa to 10 bits, nearest-even.
    std::uint32_t half = mant >> 13;
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1)))
        ++half;
    std::uint32_t result = sign |
        (static_cast<std::uint32_t>(exp16) << 10) | (half & 0x3ffu);
    if (half == 0x400u)
        result = sign | (static_cast<std::uint32_t>(exp16 + 1) << 10);
    return static_cast<std::uint16_t>(result);
}

float
fp16BitsToFp32(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u)
        << 16;
    const std::uint32_t exp16 = (h >> 10) & 0x1fu;
    const std::uint32_t mant = h & 0x3ffu;

    if (exp16 == 0x1fu) {
        // Inf / NaN.
        const std::uint32_t bits = sign | 0x7f800000u | (mant << 13);
        return std::bit_cast<float>(bits);
    }
    if (exp16 == 0) {
        if (mant == 0)
            return std::bit_cast<float>(sign); // +-0
        // Denormal: normalize.
        int e = -1;
        std::uint32_t m = mant;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        const std::uint32_t exp32 =
            static_cast<std::uint32_t>(127 - 15 - e);
        const std::uint32_t bits =
            sign | (exp32 << 23) | ((m & 0x3ffu) << 13);
        return std::bit_cast<float>(bits);
    }
    const std::uint32_t exp32 = exp16 + 127 - 15;
    const std::uint32_t bits = sign | (exp32 << 23) | (mant << 13);
    return std::bit_cast<float>(bits);
}

std::uint16_t
fp32ToBf16Bits(float f)
{
    std::uint32_t x = std::bit_cast<std::uint32_t>(f);
    if (std::isnan(f)) {
        // Quiet NaN, preserve sign.
        return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
    }
    // Round to nearest even on the truncated 16 bits.
    const std::uint32_t rounding = 0x7fffu + ((x >> 16) & 1u);
    x += rounding;
    return static_cast<std::uint16_t>(x >> 16);
}

float
bf16BitsToFp32(std::uint16_t b)
{
    const std::uint32_t bits = static_cast<std::uint32_t>(b) << 16;
    return std::bit_cast<float>(bits);
}

float
roundTrip(float f, DType t)
{
    switch (t) {
      case DType::FP32:
        return f;
      case DType::FP16:
        return fp16BitsToFp32(fp32ToFp16Bits(f));
      case DType::BF16:
        return bf16BitsToFp32(fp32ToBf16Bits(f));
      case DType::INT8:
        return std::clamp(std::nearbyint(f), -128.0f, 127.0f);
      case DType::INT32:
        return std::nearbyint(f);
    }
    MTIA_UNREACHABLE("roundTrip: unknown dtype");
}

} // namespace mtia
