#ifndef MTIA_TENSOR_JAGGED_H_
#define MTIA_TENSOR_JAGGED_H_

/**
 * @file
 * Jagged tensors: batches of variable-length rows sharing one dense
 * value buffer, as used by sequence embeddings and HSTU's ragged
 * attention. Mirrors the FBGEMM jagged-tensor layout: values [total, D]
 * plus offsets [B + 1].
 */

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "tensor/tensor.h"

namespace mtia {

/** Variable-row-length 2-D tensor (rows x embedding dim D). */
class JaggedTensor
{
  public:
    JaggedTensor() = default;

    /**
     * @param lengths Per-batch-item row counts.
     * @param dim Inner (embedding) dimension D.
     * @param dtype Element type of the value buffer.
     */
    JaggedTensor(const std::vector<std::int64_t> &lengths, std::int64_t dim,
                 DType dtype = DType::FP32);

    std::int64_t batchSize() const
    {
        return static_cast<std::int64_t>(offsets_.size()) - 1;
    }
    std::int64_t dim() const { return dim_; }
    std::int64_t totalRows() const { return offsets_.back(); }
    std::int64_t lengthOf(std::int64_t b) const
    {
        return offsets_[b + 1] - offsets_[b];
    }
    const std::vector<std::int64_t> &offsets() const { return offsets_; }

    Tensor &values() { return values_; }
    const Tensor &values() const { return values_; }

    /** Element (global row r, column c) of the value buffer. */
    float at(std::int64_t r, std::int64_t c) const
    {
        return values_.at2(r, c);
    }
    void set(std::int64_t r, std::int64_t c, float v)
    {
        values_.set2(r, c, v);
    }

    /**
     * Convert to a dense [B, max_len, D] tensor, zero-padding short
     * rows (the jagged->dense operator).
     */
    Tensor toDense(std::int64_t max_len = -1) const;

    /**
     * Build from a dense [B, L, D] tensor keeping @p lengths rows per
     * item (the dense->jagged operator).
     */
    static JaggedTensor fromDense(const Tensor &dense,
                                  const std::vector<std::int64_t> &lengths);

    /**
     * Generate a jagged batch whose lengths follow the skewed
     * (lognormal, clamped) user-history distribution HSTU targets.
     */
    static JaggedTensor randomHistory(Rng &rng, std::int64_t batch,
                                      std::int64_t dim, double mean_len,
                                      std::int64_t max_len,
                                      DType dtype = DType::FP32);

  private:
    std::vector<std::int64_t> offsets_{0};
    std::int64_t dim_ = 0;
    Tensor values_;
};

} // namespace mtia

#endif // MTIA_TENSOR_JAGGED_H_
