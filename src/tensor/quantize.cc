#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace mtia {

namespace {

/** Max |x| over rows [r0, r1) of a rank-2 tensor. */
float
absMaxOverRows(const Tensor &t, std::int64_t r0, std::int64_t r1)
{
    const std::int64_t k = t.shape().dim(1);
    float m = 0.0f;
    for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = 0; c < k; ++c)
            m = std::max(m, std::abs(t.at2(r, c)));
    }
    return m;
}

void
quantizeGroup(const Tensor &src, Tensor &dst, std::int64_t r0,
              std::int64_t r1, float scale)
{
    const std::int64_t k = src.shape().dim(1);
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = 0; c < k; ++c)
            dst.set2(r, c, src.at2(r, c) * inv);
    }
}

} // namespace

QuantizedTensor
quantizeDynamic(const Tensor &src, QuantGranularity granularity,
                std::int64_t group_rows)
{
    MTIA_CHECK_EQ(src.shape().rank(), 2u)
        << ": quantizeDynamic expects a rank-2 tensor";
    const std::int64_t m = src.shape().dim(0);

    std::int64_t group = 1;
    switch (granularity) {
      case QuantGranularity::PerTensor:
        group = m;
        break;
      case QuantGranularity::PerRow:
        group = 1;
        break;
      case QuantGranularity::PerRowGroup:
        MTIA_CHECK_GE(group_rows, 1)
            << ": quantizeDynamic row-group size";
        group = group_rows;
        break;
    }

    QuantizedTensor out;
    out.values = Tensor(src.shape(), DType::INT8);
    out.group_rows = group;
    for (std::int64_t r0 = 0; r0 < m; r0 += group) {
        const std::int64_t r1 = std::min(m, r0 + group);
        const float amax = absMaxOverRows(src, r0, r1);
        const float scale = amax / 127.0f;
        out.scales.push_back(scale);
        quantizeGroup(src, out.values, r0, r1, scale);
    }
    return out;
}

QuantizedTensor
quantizeStatic(const Tensor &weights, double saturate_percentile)
{
    MTIA_CHECK_EQ(weights.shape().rank(), 2u)
        << ": quantizeStatic expects a rank-2 tensor";
    const std::int64_t m = weights.shape().dim(0);

    float amax = 0.0f;
    if (saturate_percentile >= 100.0) {
        amax = absMaxOverRows(weights, 0, m);
    } else {
        std::vector<float> mags;
        mags.reserve(static_cast<std::size_t>(weights.numel()));
        for (std::int64_t i = 0; i < weights.numel(); ++i)
            mags.push_back(std::abs(weights.at(i)));
        std::sort(mags.begin(), mags.end());
        const auto rank = static_cast<std::size_t>(
            saturate_percentile / 100.0 *
            static_cast<double>(mags.size() - 1));
        amax = mags[rank];
    }

    QuantizedTensor out;
    out.values = Tensor(weights.shape(), DType::INT8);
    out.group_rows = m;
    out.scales.push_back(amax / 127.0f);
    quantizeGroup(weights, out.values, 0, m, out.scales[0]);
    return out;
}

Tensor
dequantize(const QuantizedTensor &q)
{
    Tensor out(q.values.shape(), DType::FP32);
    const std::int64_t m = q.values.shape().dim(0);
    const std::int64_t k = q.values.shape().dim(1);
    for (std::int64_t r = 0; r < m; ++r) {
        const float s = q.scaleFor(r);
        for (std::int64_t c = 0; c < k; ++c)
            out.set2(r, c, q.values.at2(r, c) * s);
    }
    return out;
}

double
sqnrDb(const Tensor &src, const Tensor &deq)
{
    MTIA_CHECK(src.shape() == deq.shape())
        << ": sqnrDb shape mismatch " << src.shape().toString() << " vs "
        << deq.shape().toString();
    double signal = 0.0;
    double noise = 0.0;
    for (std::int64_t i = 0; i < src.numel(); ++i) {
        const double s = src.at(i);
        const double d = s - static_cast<double>(deq.at(i));
        signal += s * s;
        noise += d * d;
    }
    if (noise <= 0.0)
        return 140.0; // effectively lossless
    return 10.0 * std::log10(signal / noise);
}

double
applyTwoFourSparsity(Tensor &weights)
{
    MTIA_CHECK_EQ(weights.shape().rank(), 2u)
        << ": applyTwoFourSparsity expects a rank-2 tensor";
    const std::int64_t m = weights.shape().dim(0);
    const std::int64_t k = weights.shape().dim(1);

    double total = 0.0;
    double kept = 0.0;
    for (std::int64_t r = 0; r < m; ++r) {
        for (std::int64_t c0 = 0; c0 < k; c0 += 4) {
            const std::int64_t width = std::min<std::int64_t>(4, k - c0);
            // Find the two largest magnitudes in the group.
            std::int64_t best1 = -1;
            std::int64_t best2 = -1;
            for (std::int64_t j = 0; j < width; ++j) {
                const float mag = std::abs(weights.at2(r, c0 + j));
                if (best1 < 0 ||
                    mag > std::abs(weights.at2(r, c0 + best1))) {
                    best2 = best1;
                    best1 = j;
                } else if (best2 < 0 ||
                           mag > std::abs(weights.at2(r, c0 + best2))) {
                    best2 = j;
                }
            }
            for (std::int64_t j = 0; j < width; ++j) {
                const double v = weights.at2(r, c0 + j);
                total += v * v;
                if (j == best1 || j == best2) {
                    kept += v * v;
                } else {
                    weights.set2(r, c0 + j, 0.0f);
                }
            }
        }
    }
    return total > 0.0 ? kept / total : 1.0;
}

} // namespace mtia
