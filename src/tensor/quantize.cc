#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/simd.h"
#include "tensor/dtype.h"

namespace mtia {

namespace {

/** Max |x| over rows [r0, r1) of a rank-2 tensor (reference path). */
float
absMaxOverRows(const Tensor &t, std::int64_t r0, std::int64_t r1)
{
    const std::int64_t k = t.shape().dim(1);
    float m = 0.0f;
    for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = 0; c < k; ++c)
            m = std::max(m, std::abs(t.at2(r, c)));
    }
    return m;
}

/** Reference per-element scale-and-store (the seed code path). */
void
quantizeGroup(const Tensor &src, Tensor &dst, std::int64_t r0,
              std::int64_t r1, float scale)
{
    const std::int64_t k = src.shape().dim(1);
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = 0; c < k; ++c)
            dst.set2(r, c, src.at2(r, c) * inv);
    }
}

using simd::VecF32;
using simd::VecI32;

/**
 * Max |x| over a contiguous range, single fused pass: a running
 * min and max per lane, then amax = max(-min, max) reduced across
 * lanes. Exactly equals the sequential max(|x_i|) because float
 * min/max are exact and associative for non-NaN inputs and
 * |x| = max(-x, x).
 */
float
absMaxRange(const float *src, std::size_t n)
{
    float m = 0.0f;
    std::size_t i = 0;
    if (n >= simd::kLanes) {
        VecF32 lo = VecF32::broadcast(0.0f);
        VecF32 hi = VecF32::broadcast(0.0f);
        for (; i + simd::kLanes <= n; i += simd::kLanes) {
            const VecF32 v = VecF32::load(src + i);
            lo = simd::vmin(lo, v);
            hi = simd::vmax(hi, v);
        }
        float lanes_lo[simd::kLanes];
        float lanes_hi[simd::kLanes];
        lo.store(lanes_lo);
        hi.store(lanes_hi);
        for (std::size_t l = 0; l < simd::kLanes; ++l)
            m = std::max(m, std::max(-lanes_lo[l], lanes_hi[l]));
    }
    for (; i < n; ++i)
        m = std::max(m, std::abs(src[i]));
    return m;
}

/**
 * Fused scale + round + clamp to INT8 over a contiguous range.
 * Per element: clamp(nearbyint(x * inv), -128, 127) — identical to
 * Tensor::set on an INT8 tensor. The vector path clamps the product
 * to [-128.0f, 127.0f] first (so the RTNE float->int32 conversion
 * can never overflow, even for percentile-clipped outliers where
 * |x * inv| >> 127), then rounds and stores with saturating packs.
 * Clamp-then-round equals the scalar round-then-clamp everywhere:
 * both are the identity inside (-128.5, 127.5)-ish, and outside it
 * both pin to the same endpoint (e.g. 127.6 -> 127.0 -> 127 vs
 * nearbyint(127.6) = 128 -> 127).
 */
void
quantizeRange(const float *src, std::uint8_t *dst, std::size_t n,
              float inv)
{
    const VecF32 vinv = VecF32::broadcast(inv);
    const VecF32 lo = VecF32::broadcast(-128.0f);
    const VecF32 hi = VecF32::broadcast(127.0f);
    const auto quant = [&](const float *p) {
        const VecF32 v =
            simd::vmin(simd::vmax(VecF32::load(p) * vinv, lo), hi);
        return simd::toI32Rtne(v);
    };
    std::size_t i = 0;
    for (; i + 4 * simd::kLanes <= n; i += 4 * simd::kLanes) {
        const VecI32 a = quant(src + i);
        const VecI32 b = quant(src + i + simd::kLanes);
        const VecI32 c = quant(src + i + 2 * simd::kLanes);
        const VecI32 d = quant(src + i + 3 * simd::kLanes);
        simd::storeI8Saturate(a, b, c, d, dst + i);
    }
    for (; i < n; ++i) {
        const float q =
            std::clamp(std::nearbyint(src[i] * inv), -128.0f, 127.0f);
        dst[i] = static_cast<std::uint8_t>(static_cast<std::int8_t>(q));
    }
}

/** Contiguous INT8 -> float with one scale: dst = int8 * s. */
void
dequantRange(const std::uint8_t *src, float *dst, std::size_t n,
             float s)
{
    const VecF32 vs = VecF32::broadcast(s);
    std::size_t i = 0;
    for (; i + simd::kLanes <= n; i += simd::kLanes) {
        const VecF32 v = simd::toF32(simd::loadI8AsI32(src + i));
        (v * vs).store(dst + i);
    }
    for (; i < n; ++i) {
        dst[i] =
            static_cast<float>(static_cast<std::int8_t>(src[i])) * s;
    }
}

/**
 * Contiguous float view of a tensor: FP32 storage is used in place;
 * FP16/BF16 widen through the batch conversion kernels (bit-identical
 * to the per-element Tensor::at conversions); other dtypes fall back
 * to the accessor.
 */
const float *
floatView(const Tensor &t, std::vector<float> &scratch)
{
    const auto n = static_cast<std::size_t>(t.numel());
    if (t.dtype() == DType::FP32)
        return reinterpret_cast<const float *>(t.raw().data());
    scratch.resize(n);
    if (t.dtype() == DType::FP16 || t.dtype() == DType::BF16) {
        convertBuffer(
            reinterpret_cast<const std::uint16_t *>(t.raw().data()),
            scratch.data(), n, t.dtype());
    } else {
        for (std::size_t i = 0; i < n; ++i)
            scratch[i] = t.at(static_cast<std::int64_t>(i));
    }
    return scratch.data();
}

std::int64_t
groupRowsFor(QuantGranularity granularity, std::int64_t m,
             std::int64_t group_rows)
{
    switch (granularity) {
      case QuantGranularity::PerTensor:
        return m;
      case QuantGranularity::PerRow:
        return 1;
      case QuantGranularity::PerRowGroup:
        MTIA_CHECK_GE(group_rows, 1)
            << ": quantizeDynamic row-group size";
        return group_rows;
    }
    MTIA_UNREACHABLE("quantizeDynamic: unknown granularity");
}

} // namespace

QuantizedTensor
quantizeDynamic(const Tensor &src, QuantGranularity granularity,
                std::int64_t group_rows)
{
    MTIA_CHECK_EQ(src.shape().rank(), 2u)
        << ": quantizeDynamic expects a rank-2 tensor";
    const std::int64_t m = src.shape().dim(0);
    const std::int64_t k = src.shape().dim(1);
    const std::int64_t group = groupRowsFor(granularity, m, group_rows);

    QuantizedTensor out;
    out.values = Tensor(src.shape(), DType::INT8);
    out.group_rows = group;

    // Rows are contiguous in row-major storage, so each scale group
    // is one contiguous range: a single fused min/max pass for the
    // scale, one fused scale+round+clamp pass for the payload.
    std::vector<float> scratch;
    const float *f = floatView(src, scratch);
    std::uint8_t *q = out.values.raw().data();
    for (std::int64_t r0 = 0; r0 < m; r0 += group) {
        const std::int64_t r1 = std::min(m, r0 + group);
        const auto off = static_cast<std::size_t>(r0 * k);
        const auto len = static_cast<std::size_t>((r1 - r0) * k);
        const float amax = absMaxRange(f + off, len);
        const float scale = amax / 127.0f;
        out.scales.push_back(scale);
        const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
        quantizeRange(f + off, q + off, len, inv);
    }
    return out;
}

QuantizedTensor
quantizeStatic(const Tensor &weights, double saturate_percentile)
{
    MTIA_CHECK_EQ(weights.shape().rank(), 2u)
        << ": quantizeStatic expects a rank-2 tensor";
    const std::int64_t m = weights.shape().dim(0);
    const std::int64_t k = weights.shape().dim(1);
    const auto n = static_cast<std::size_t>(m * k);

    std::vector<float> scratch;
    const float *f = floatView(weights, scratch);

    float amax = 0.0f;
    if (saturate_percentile >= 100.0) {
        amax = absMaxRange(f, n);
    } else {
        std::vector<float> mags(f, f + n);
        for (float &v : mags)
            v = std::abs(v);
        std::sort(mags.begin(), mags.end());
        const auto rank = static_cast<std::size_t>(
            saturate_percentile / 100.0 *
            static_cast<double>(mags.size() - 1));
        amax = mags[rank];
    }

    QuantizedTensor out;
    out.values = Tensor(weights.shape(), DType::INT8);
    out.group_rows = m;
    out.scales.push_back(amax / 127.0f);
    const float scale = out.scales[0];
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    quantizeRange(f, out.values.raw().data(), n, inv);
    return out;
}

Tensor
dequantize(const QuantizedTensor &q)
{
    Tensor out(q.values.shape(), DType::FP32);
    const std::int64_t m = q.values.shape().dim(0);
    const std::int64_t k = q.values.shape().dim(1);
    const std::uint8_t *src = q.values.raw().data();
    auto *dst = reinterpret_cast<float *>(out.raw().data());
    for (std::int64_t r0 = 0; r0 < m; r0 += q.group_rows) {
        const std::int64_t r1 = std::min(m, r0 + q.group_rows);
        const auto off = static_cast<std::size_t>(r0 * k);
        const auto len = static_cast<std::size_t>((r1 - r0) * k);
        dequantRange(src + off, dst + off, len, q.scaleFor(r0));
    }
    return out;
}

double
sqnrDb(const Tensor &src, const Tensor &deq)
{
    MTIA_CHECK(src.shape() == deq.shape())
        << ": sqnrDb shape mismatch " << src.shape().toString() << " vs "
        << deq.shape().toString();
    double signal = 0.0;
    double noise = 0.0;
    for (std::int64_t i = 0; i < src.numel(); ++i) {
        const double s = src.at(i);
        const double d = s - static_cast<double>(deq.at(i));
        signal += s * s;
        noise += d * d;
    }
    if (noise <= 0.0)
        return 140.0; // effectively lossless
    return 10.0 * std::log10(signal / noise);
}

double
applyTwoFourSparsity(Tensor &weights)
{
    MTIA_CHECK_EQ(weights.shape().rank(), 2u)
        << ": applyTwoFourSparsity expects a rank-2 tensor";
    const std::int64_t m = weights.shape().dim(0);
    const std::int64_t k = weights.shape().dim(1);

    double total = 0.0;
    double kept = 0.0;
    for (std::int64_t r = 0; r < m; ++r) {
        for (std::int64_t c0 = 0; c0 < k; c0 += 4) {
            const std::int64_t width = std::min<std::int64_t>(4, k - c0);
            // Find the two largest magnitudes in the group.
            std::int64_t best1 = -1;
            std::int64_t best2 = -1;
            for (std::int64_t j = 0; j < width; ++j) {
                const float mag = std::abs(weights.at2(r, c0 + j));
                if (best1 < 0 ||
                    mag > std::abs(weights.at2(r, c0 + best1))) {
                    best2 = best1;
                    best1 = j;
                } else if (best2 < 0 ||
                           mag > std::abs(weights.at2(r, c0 + best2))) {
                    best2 = j;
                }
            }
            for (std::int64_t j = 0; j < width; ++j) {
                const double v = weights.at2(r, c0 + j);
                total += v * v;
                if (j == best1 || j == best2) {
                    kept += v * v;
                } else {
                    weights.set2(r, c0 + j, 0.0f);
                }
            }
        }
    }
    return total > 0.0 ? kept / total : 1.0;
}

namespace scalar {

QuantizedTensor
quantizeDynamic(const Tensor &src, QuantGranularity granularity,
                std::int64_t group_rows)
{
    MTIA_CHECK_EQ(src.shape().rank(), 2u)
        << ": quantizeDynamic expects a rank-2 tensor";
    const std::int64_t m = src.shape().dim(0);
    const std::int64_t group = groupRowsFor(granularity, m, group_rows);

    QuantizedTensor out;
    out.values = Tensor(src.shape(), DType::INT8);
    out.group_rows = group;
    for (std::int64_t r0 = 0; r0 < m; r0 += group) {
        const std::int64_t r1 = std::min(m, r0 + group);
        const float amax = absMaxOverRows(src, r0, r1);
        const float scale = amax / 127.0f;
        out.scales.push_back(scale);
        quantizeGroup(src, out.values, r0, r1, scale);
    }
    return out;
}

Tensor
dequantize(const QuantizedTensor &q)
{
    Tensor out(q.values.shape(), DType::FP32);
    const std::int64_t m = q.values.shape().dim(0);
    const std::int64_t k = q.values.shape().dim(1);
    for (std::int64_t r = 0; r < m; ++r) {
        const float s = q.scaleFor(r);
        for (std::int64_t c = 0; c < k; ++c)
            out.set2(r, c, q.values.at2(r, c) * s);
    }
    return out;
}

} // namespace scalar

} // namespace mtia
