#ifndef MTIA_TENSOR_TENSOR_H_
#define MTIA_TENSOR_TENSOR_H_

/**
 * @file
 * Dense tensor storing raw bytes in its logical dtype. Elements are
 * read and written through float accessors that perform the bit-exact
 * dtype conversion, while the raw byte view is available for the
 * error-injection and compression experiments, which operate on real
 * memory representations.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/types.h"
#include "tensor/dtype.h"

namespace mtia {

/** Tensor shape: a small vector of dimension extents. */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
    explicit Shape(std::vector<std::int64_t> dims)
        : dims_(std::move(dims)) {}

    std::size_t rank() const { return dims_.size(); }
    std::int64_t dim(std::size_t i) const;
    std::int64_t numel() const;

    const std::vector<std::int64_t> &dims() const { return dims_; }

    bool operator==(const Shape &o) const { return dims_ == o.dims_; }

    std::string toString() const;

  private:
    std::vector<std::int64_t> dims_;
};

/** Dense tensor with dtype-typed raw storage. */
class Tensor
{
  public:
    Tensor() = default;
    Tensor(Shape shape, DType dtype);

    const Shape &shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    std::int64_t numel() const { return shape_.numel(); }
    Bytes sizeBytes() const { return data_.size(); }

    /** Read element @p i (flat index) converted to float. */
    float at(std::int64_t i) const;

    /** Write element @p i (flat index), converting to the dtype. */
    void set(std::int64_t i, float v);

    /** Read element at (row, col) of a rank-2 tensor. */
    float at2(std::int64_t row, std::int64_t col) const;

    /** Write element at (row, col) of a rank-2 tensor. */
    void set2(std::int64_t row, std::int64_t col, float v);

    /** Raw byte storage (for injection / compression). */
    std::vector<std::uint8_t> &raw() { return data_; }
    const std::vector<std::uint8_t> &raw() const { return data_; }

    /** Flip one bit of the raw representation. */
    void flipBit(std::uint64_t bit_index);

    /** Fill with i.i.d. Gaussian(mean, stddev) values. */
    void fillGaussian(Rng &rng, float mean = 0.0f, float stddev = 1.0f);

    /** Fill with uniform values in [lo, hi). */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Fill every element with a constant. */
    void fill(float v);

    /** Copy converted to another dtype (values round-trip). */
    Tensor cast(DType to) const;

    /** Materialize as a flat float vector. */
    std::vector<float> toFloats() const;

    /** Build from a flat float vector. */
    static Tensor fromFloats(const std::vector<float> &vals, Shape shape,
                             DType dtype = DType::FP32);

    /** True if any element is NaN or Inf. */
    bool hasNonFinite() const;

    /** Max |a_i - b_i| between two same-shaped tensors. */
    static double maxAbsDiff(const Tensor &a, const Tensor &b);

    /** Root-mean-square difference between two same-shaped tensors. */
    static double rmse(const Tensor &a, const Tensor &b);

  private:
    Shape shape_;
    DType dtype_ = DType::FP32;
    std::vector<std::uint8_t> data_;
};

} // namespace mtia

#endif // MTIA_TENSOR_TENSOR_H_
