#ifndef MTIA_TENSOR_QUANTIZE_H_
#define MTIA_TENSOR_QUANTIZE_H_

/**
 * @file
 * INT8 quantization schemes evaluated in Section 4.4: per-tensor,
 * per-batch-item (row-wise with M as the batch dimension), and per-N
 * batch-item symmetric dynamic quantization, plus static (offline
 * calibrated) weight quantization.
 *
 * On the chip, the Reduction Engine computes per-row min/max after the
 * matmul and the SIMD Engine applies the row-wise scale; here the same
 * math runs in software so model-quality comparisons are real.
 */

#include <cstdint>
#include <vector>

#include "core/check.h"
#include "tensor/tensor.h"

namespace mtia {

/** Granularity of dynamic activation quantization. */
enum class QuantGranularity {
    PerTensor,    ///< one scale for the whole activation
    PerRow,       ///< one scale per batch item (row-wise)
    PerRowGroup,  ///< one scale per group of N batch items
};

/** An INT8-quantized rank-2 tensor plus its row scales. */
struct QuantizedTensor
{
    Tensor values;               ///< INT8 payload, same shape as source
    std::vector<float> scales;   ///< one per row group
    std::int64_t group_rows = 1; ///< rows sharing one scale

    /** Scale applied to row @p r (@p r must be a valid row). */
    float scaleFor(std::int64_t r) const
    {
        MTIA_DCHECK_GE(r, 0) << ": QuantizedTensor::scaleFor row";
        const auto g = static_cast<std::size_t>(r / group_rows);
        MTIA_DCHECK_LT(g, scales.size())
            << ": QuantizedTensor::scaleFor row " << r
            << " beyond the quantized rows";
        return scales[g];
    }
};

/**
 * Symmetric dynamic quantization of a rank-2 activation tensor.
 * Scales are derived from the observed min/max magnitude, exactly as
 * the RE/SIMD pipeline computes them.
 *
 * @param src Rank-2 float tensor [M, K].
 * @param granularity Scale granularity.
 * @param group_rows Rows per scale group (PerRowGroup only).
 */
QuantizedTensor quantizeDynamic(const Tensor &src,
                                QuantGranularity granularity,
                                std::int64_t group_rows = 1);

/**
 * Static symmetric quantization for weights with a calibration
 * saturation percentile (clipping outliers improves SQNR).
 */
QuantizedTensor quantizeStatic(const Tensor &weights,
                               double saturate_percentile = 100.0);

/** Reconstruct floats from a quantized tensor. */
Tensor dequantize(const QuantizedTensor &q);

/** Signal-to-quantization-noise ratio in dB between src and deq. */
double sqnrDb(const Tensor &src, const Tensor &deq);

/**
 * Apply 2:4 structured sparsity to a rank-2 weight tensor: in every
 * contiguous group of 4 elements along the inner dimension, zero the
 * two smallest magnitudes (the DPE's sparse weight format).
 * Returns the fraction of L2 norm retained.
 */
double applyTwoFourSparsity(Tensor &weights);

namespace scalar {

/**
 * Element-at-a-time reference implementations (the seed code paths)
 * of dynamic quantization and dequantization. The vectorized
 * quantizeDynamic / dequantize above are bit-identical to these —
 * same payload bytes, same scales — which the equivalence tests and
 * bench/numerics.cc verify.
 */
QuantizedTensor quantizeDynamic(const Tensor &src,
                                QuantGranularity granularity,
                                std::int64_t group_rows = 1);
Tensor dequantize(const QuantizedTensor &q);

} // namespace scalar

} // namespace mtia

#endif // MTIA_TENSOR_QUANTIZE_H_
